package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func(grace, every time.Duration, inflight, queue int, thr float64) error {
		return validateFlags(grace, every, inflight, queue, thr)
	}
	if err := ok(10*time.Second, 5*time.Second, 64, 16, 0.5); err != nil {
		t.Fatalf("default configuration rejected: %v", err)
	}
	if err := ok(0, time.Second, 1, 1, 0.01); err != nil {
		t.Fatalf("minimal configuration rejected: %v", err)
	}
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"negative grace", ok(-time.Second, 5*time.Second, 64, 16, 0.5), "-grace"},
		{"negative maintain interval", ok(0, -time.Second, 64, 16, 0.5), "-maintain-interval"},
		{"zero maintain interval", ok(0, 0, 64, 16, 0.5), "-maintain-interval"},
		{"zero inflight", ok(0, time.Second, 0, 16, 0.5), "-inflight"},
		{"negative inflight", ok(0, time.Second, -3, 16, 0.5), "-inflight"},
		{"zero queue", ok(0, time.Second, 64, 0, 0.5), "-queue"},
		{"zero drift threshold", ok(0, time.Second, 64, 16, 0), "-drift-threshold"},
		{"negative drift threshold", ok(0, time.Second, 64, 16, -0.2), "-drift-threshold"},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, tc.err, tc.want)
		}
	}
}
