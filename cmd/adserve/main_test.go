package main

import (
	"strings"
	"testing"
	"time"
)

// base is a valid default-ish configuration; each case mutates one
// aspect of it.
func base() flagConfig {
	return flagConfig{
		grace:      10 * time.Second,
		maintEvery: 5 * time.Second,
		inflight:   64,
		queue:      16,
		driftThr:   0.5,
		listen:     "127.0.0.1:7133",
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(base()); err != nil {
		t.Fatalf("default configuration rejected: %v", err)
	}
	minimal := flagConfig{maintEvery: time.Second, inflight: 1, queue: 1, driftThr: 0.01, listen: ":0"}
	if err := validateFlags(minimal); err != nil {
		t.Fatalf("minimal configuration rejected: %v", err)
	}

	mut := func(f func(*flagConfig)) flagConfig {
		c := base()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  flagConfig
		want string
	}{
		{"negative grace", mut(func(c *flagConfig) { c.grace = -time.Second }), "-grace"},
		{"negative maintain interval", mut(func(c *flagConfig) { c.maintEvery = -time.Second }), "-maintain-interval"},
		{"zero maintain interval", mut(func(c *flagConfig) { c.maintEvery = 0 }), "-maintain-interval"},
		{"zero inflight", mut(func(c *flagConfig) { c.inflight = 0 }), "-inflight"},
		{"negative inflight", mut(func(c *flagConfig) { c.inflight = -3 }), "-inflight"},
		{"zero queue", mut(func(c *flagConfig) { c.queue = 0 }), "-queue"},
		{"zero drift threshold", mut(func(c *flagConfig) { c.driftThr = 0 }), "-drift-threshold"},
		{"negative drift threshold", mut(func(c *flagConfig) { c.driftThr = -0.2 }), "-drift-threshold"},
		{"follower with maintenance", mut(func(c *flagConfig) {
			c.replicaOf = ":7233"
			c.maintain = true
		}), "-replica-of and -maintain"},
		{"follower with repl listener", mut(func(c *flagConfig) {
			c.replicaOf = ":7233"
			c.listenRepl = ":7234"
		}), "-replica-of and -listen-repl"},
		{"follower with promote", mut(func(c *flagConfig) {
			c.replicaOf = ":7233"
			c.promote = true
		}), "-promote"},
		{"repl listener collides with http listener", mut(func(c *flagConfig) {
			c.listenRepl = c.listen
		}), "-listen-repl"},
		{"self replication", mut(func(c *flagConfig) {
			c.replicaOf = c.listen
		}), "-replica-of"},
		{"negative ack followers", mut(func(c *flagConfig) {
			c.listenRepl = ":7233"
			c.ackFollowers = -1
		}), "-ack-followers"},
		{"ack followers without repl listener", mut(func(c *flagConfig) {
			c.ackFollowers = 1
		}), "-ack-followers"},
		{"leader url on a leader", mut(func(c *flagConfig) {
			c.leaderURL = "http://127.0.0.1:7133"
		}), "-leader-url"},
		{"negative lease", mut(func(c *flagConfig) {
			c.replicaOf = ":7233"
			c.promoteAfter = -time.Second
		}), "-promote-after"},
		{"lease on a leader", mut(func(c *flagConfig) {
			c.promoteAfter = time.Second
		}), "-promote-after"},
	}
	for _, tc := range cases {
		err := validateFlags(tc.cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}

	// The full replication topologies both validate.
	lead := mut(func(c *flagConfig) {
		c.listenRepl = ":7233"
		c.ackFollowers = 1
	})
	if err := validateFlags(lead); err != nil {
		t.Fatalf("leader configuration rejected: %v", err)
	}
	fol := mut(func(c *flagConfig) {
		c.replicaOf = ":7233"
		c.leaderURL = "http://127.0.0.1:7133"
		c.promoteAfter = 2 * time.Second
	})
	if err := validateFlags(fol); err != nil {
		t.Fatalf("follower configuration rejected: %v", err)
	}
}
