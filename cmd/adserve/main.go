// Command adserve is the partition-serving daemon: it opens (or
// builds) a durable composite store and serves concurrent sessions
// over HTTP/JSON — algorithm runs, vertex lookups, partition metrics
// and durable edge updates with snapshot-isolated reads.
//
// Usage:
//
//	adserve -store state/ -listen 127.0.0.1:7133
//	adserve -store state/ -graph twitter -n 8 -base Fennel
//
// A directory that already holds a store is recovered (the graph must
// match the one it was built over); an empty one is initialised with
// the five-algorithm batch composite over the named graph. SIGTERM or
// SIGINT drains gracefully: in-flight sessions complete or are
// cancelled after -grace, the WAL is flushed, and the process exits 0.
//
// With -maintain, a background loop watches the served workload for
// learned-cost drift (-drift-threshold, checked every
// -maintain-interval) and re-refines + promotes the partitioning in
// place; see the "maintenance" block of GET /metrics.
//
// Replication (see DESIGN.md, "Replication"):
//
//	adserve -store lead/ -listen :7133 -listen-repl :7233
//	adserve -store fol/  -listen :7134 -replica-of :7233 \
//	        -leader-url http://127.0.0.1:7133
//
// A leader with -listen-repl streams committed WAL frames to pulling
// followers. A follower (-replica-of) bootstraps from the leader's
// newest snapshot when its store directory is empty, replays frames
// into its own durable store, serves reads with an advertised
// staleness watermark (min_lsn on /run and /vertex), and either
// rejects writes with the not_leader class or forwards them to
// -leader-url. Failover: SIGUSR1 promotes a live follower in place;
// -promote fences an offline follower store and exits; -promote-after
// auto-promotes when no pull has succeeded within the lease.
//
// Endpoints:
//
//	POST /run          {"algo":"PR","timeout_ms":5000,"min_lsn":0,...}
//	GET  /vertex/{id}?min_lsn=N  placement + neighborhood under one epoch
//	GET  /metrics      partition, cost-model, wal and replication statistics
//	POST /updates      update-stream body ("+ u v [dests]", "- u v", "commit")
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/maintain"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/replica"
	"adp/internal/serve"
	"adp/internal/store"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7133", "listen address")
		storeDir  = flag.String("store", "", "store directory (created with the batch composite when empty)")
		graphName = flag.String("graph", "social", "named graph (social|twitter|web|road) or edge-list file path")
		symmetric = flag.Bool("undirected", false, "symmetrise the graph (required for TC)")
		n         = flag.Int("n", 8, "number of fragments when building a fresh store")
		baseName  = flag.String("base", "Fennel", "baseline partitioner for a fresh store")
		sessions  = flag.Int("sessions", 2, "engine sessions per algorithm")
		inflight  = flag.Int("inflight", 64, "max admitted concurrent /run requests")
		queue     = flag.Int("queue", 16, "max pending update batches")
		timeout   = flag.Duration("timeout", 30*time.Second, "default /run deadline")
		grace     = flag.Duration("grace", 10*time.Second, "drain grace period before cancelling in-flight runs")
		workers   = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")

		maintainOn = flag.Bool("maintain", false, "enable the background re-refinement maintenance loop")
		driftThr   = flag.Float64("drift-threshold", 0.5, "learned-cost imbalance that triggers a re-refinement cycle")
		maintEvery = flag.Duration("maintain-interval", 5*time.Second, "drift-detector tick interval")

		listenRepl   = flag.String("listen-repl", "", "leader: serve the WAL-shipping replication protocol on this address")
		replicaOf    = flag.String("replica-of", "", "follower: pull committed WAL frames from this leader replication address")
		leaderURL    = flag.String("leader-url", "", "follower: forward POST /updates to this leader HTTP URL (default: reject with not_leader)")
		replicaID    = flag.String("replica-id", "", "follower: identity in the leader's watermark table (default: the listen address)")
		promote      = flag.Bool("promote", false, "fence the follower store at -store (truncate to committed prefix, fresh segment) and exit; next boot leads")
		promoteAfter = flag.Duration("promote-after", 0, "follower: auto-promote when no pull succeeded within this lease (0 = operator-only via SIGUSR1)")
		ackFollowers = flag.Int("ack-followers", 0, "leader: update acks report replicated=true only once this many followers hold the batch durably")
	)
	flag.Parse()
	if *storeDir == "" {
		fatal(fmt.Errorf("-store is required"))
	}
	fc := flagConfig{
		grace: *grace, maintEvery: *maintEvery, inflight: *inflight, queue: *queue,
		driftThr: *driftThr, listen: *listen, listenRepl: *listenRepl,
		replicaOf: *replicaOf, leaderURL: *leaderURL, maintain: *maintainOn,
		promote: *promote, promoteAfter: *promoteAfter, ackFollowers: *ackFollowers,
	}
	if err := validateFlags(fc); err != nil {
		fatal(err)
	}
	if *workers != 0 {
		pool.SetDefaultWorkers(*workers)
	}

	g, err := loadGraph(*graphName, *symmetric)
	if err != nil {
		fatal(err)
	}

	if *promote {
		if err := promoteStore(*storeDir, g); err != nil {
			fatal(err)
		}
		return
	}

	follower := *replicaOf != ""
	var st *store.Store
	if follower {
		st, err = openOrBootstrap(*storeDir, g, *replicaOf)
	} else {
		st, err = openOrCreate(*storeDir, g, *baseName, *n)
	}
	if err != nil {
		fatal(err)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "adserve: "+format+"\n", args...)
	}
	cfg := serve.Config{
		SessionsPerAlgo: *sessions,
		MaxInflight:     *inflight,
		UpdateQueue:     *queue,
		DefaultTimeout:  *timeout,
		ReadOnly:        follower,
		LeaderURL:       *leaderURL,
		Logf:            logf,
	}

	// Leader side: serve committed frames on the replication listener
	// and, when asked, hold update acks for follower durability.
	var leader *replica.Leader
	if *listenRepl != "" {
		leader = replica.NewLeader(st, replica.LeaderConfig{Logf: logf})
		if *ackFollowers > 0 {
			minF := *ackFollowers
			cfg.ReplWait = func(ctx context.Context, lsn uint64) error {
				return leader.WaitDurable(ctx, lsn, minF)
			}
		}
	}

	srv, err := serve.New(st, cfg)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}

	if leader != nil {
		lr, err := net.Listen("tcp", *listenRepl)
		if err != nil {
			fatal(err)
		}
		go leader.Serve(lr)
		defer lr.Close()
		srv.SetReplStatusFunc(replica.LeaderStatus(leader, st))
		fmt.Fprintf(os.Stderr, "adserve: replication leader on %s (ack-followers %d)\n", lr.Addr(), *ackFollowers)
	}

	var pump *replica.Follower
	if follower {
		id := *replicaID
		if id == "" {
			id = *listen
		}
		pump = replica.NewFollower(&replica.ServerApplier{Srv: srv}, replica.FollowerConfig{
			ID:    id,
			Dial:  replica.TCPDialer(*replicaOf),
			Lease: *promoteAfter,
			Logf:  logf,
		})
		srv.SetReplStatusFunc(replica.ServeStatus(pump))
		pump.Start()
		fmt.Fprintf(os.Stderr, "adserve: follower of %s (id %q, lease %v); SIGUSR1 promotes\n", *replicaOf, id, *promoteAfter)
	}

	srv.Start(l)

	var lp *maintain.Loop
	if *maintainOn {
		lp = maintain.New(srv, maintain.Config{
			Interval:       *maintEvery,
			DriftThreshold: *driftThr,
			Logf:           logf,
		})
		lp.Start()
		fmt.Fprintf(os.Stderr, "adserve: maintenance loop on (interval %v, drift threshold %.3f)\n", *maintEvery, *driftThr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGUSR1)
	var sig os.Signal
	for sig = <-sigc; sig == syscall.SIGUSR1; sig = <-sigc {
		if pump == nil {
			fmt.Fprintln(os.Stderr, "adserve: SIGUSR1 ignored (not a follower)")
			continue
		}
		if err := pump.Promote(); err != nil {
			fmt.Fprintf(os.Stderr, "adserve: promotion failed: %v\n", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "adserve: promoted to leader at lsn %d; accepting writes\n", srv.AppliedLSN())
	}
	fmt.Fprintf(os.Stderr, "adserve: %v, draining (grace %v)\n", sig, *grace)
	if lp != nil {
		// Stop the loop first so no maintenance cycle races the drain.
		lp.Stop()
	}
	if pump != nil {
		// Stop the pump before the drain so no replication apply races
		// the store close.
		pump.Stop()
	}
	if leader != nil {
		leader.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "adserve: drained cleanly")
}

// flagConfig is the validated slice of the flag set (kept as a struct
// so the unit tests enumerate bad combinations without a flag.Parse).
type flagConfig struct {
	grace        time.Duration
	maintEvery   time.Duration
	inflight     int
	queue        int
	driftThr     float64
	listen       string
	listenRepl   string
	replicaOf    string
	leaderURL    string
	maintain     bool
	promote      bool
	promoteAfter time.Duration
	ackFollowers int
}

// validateFlags rejects configurations that would only fail later and
// obscurely: a negative grace or tick interval silently disables the
// mechanism it configures, a non-positive admission or queue limit
// wedges every request, and contradictory replication roles (follower
// + maintenance, follower + promote-and-exit, colliding listeners,
// self-replication) corrupt state instead of erroring.
func validateFlags(c flagConfig) error {
	if c.grace < 0 {
		return fmt.Errorf("-grace must be >= 0 (got %v)", c.grace)
	}
	if c.maintEvery <= 0 {
		return fmt.Errorf("-maintain-interval must be > 0 (got %v)", c.maintEvery)
	}
	if c.inflight <= 0 {
		return fmt.Errorf("-inflight must be > 0 (got %d)", c.inflight)
	}
	if c.queue <= 0 {
		return fmt.Errorf("-queue must be > 0 (got %d)", c.queue)
	}
	if c.driftThr <= 0 {
		return fmt.Errorf("-drift-threshold must be > 0 (got %g)", c.driftThr)
	}
	if c.replicaOf != "" && c.maintain {
		return fmt.Errorf("-replica-of and -maintain are mutually exclusive: a follower's partitioning is the leader's, maintained there")
	}
	if c.replicaOf != "" && c.listenRepl != "" {
		return fmt.Errorf("-replica-of and -listen-repl are mutually exclusive: cascading replication is not supported")
	}
	if c.replicaOf != "" && c.promote {
		return fmt.Errorf("-promote fences an offline store; it cannot be combined with -replica-of")
	}
	if c.listenRepl != "" && c.listenRepl == c.listen {
		return fmt.Errorf("-listen-repl %q collides with -listen", c.listenRepl)
	}
	if c.replicaOf != "" && c.replicaOf == c.listen {
		return fmt.Errorf("-replica-of %q is this server's own -listen address", c.replicaOf)
	}
	if c.ackFollowers < 0 {
		return fmt.Errorf("-ack-followers must be >= 0 (got %d)", c.ackFollowers)
	}
	if c.ackFollowers > 0 && c.listenRepl == "" {
		return fmt.Errorf("-ack-followers needs -listen-repl (no followers can register without it)")
	}
	if c.leaderURL != "" && c.replicaOf == "" {
		return fmt.Errorf("-leader-url only applies to a follower (-replica-of)")
	}
	if c.promoteAfter < 0 {
		return fmt.Errorf("-promote-after must be >= 0 (got %v)", c.promoteAfter)
	}
	if c.promoteAfter > 0 && c.replicaOf == "" {
		return fmt.Errorf("-promote-after only applies to a follower (-replica-of)")
	}
	return nil
}

// promoteStore fences a follower store offline: Open already truncated
// to the committed prefix, RotateSegment starts a fresh segment so the
// next boot appends as a leader with no replicated tail behind it.
func promoteStore(dir string, g *graph.Graph) error {
	st, info, err := store.Open(dir, g, store.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "adserve: store: %v\n", info)
	if err := st.RotateSegment(); err != nil {
		st.Close()
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "adserve: promoted: log fenced at lsn %d; restart without -promote to lead\n", st.CommittedLSN())
	return nil
}

// openOrBootstrap recovers an existing follower store (recovery lands
// on the committed prefix) or bootstraps an empty directory from the
// leader's newest snapshot.
func openOrBootstrap(dir string, g *graph.Graph, leaderAddr string) (*store.Store, error) {
	if names, err := os.ReadDir(dir); err == nil && len(names) > 0 {
		st, info, err := store.Open(dir, g, store.Options{})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "adserve: store: %v\n", info)
		return st, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := replica.Bootstrap(ctx, replica.TCPDialer(leaderAddr), dir, g, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("bootstrapping from %s: %w", leaderAddr, err)
	}
	fmt.Fprintf(os.Stderr, "adserve: store: bootstrapped from %s at lsn %d\n", leaderAddr, st.CommittedLSN())
	return st, nil
}

// openOrCreate recovers an existing store in dir, or initialises a
// fresh one with the five-algorithm batch composite over g — the same
// construction `adpart -algo batch -store` uses.
func openOrCreate(dir string, g *graph.Graph, baseName string, n int) (*store.Store, error) {
	if names, err := os.ReadDir(dir); err == nil && len(names) > 0 {
		st, info, err := store.Open(dir, g, store.Options{})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "adserve: store: %v\n", info)
		return st, nil
	}
	spec, ok := partitioner.ByName(baseName)
	if !ok {
		return nil, fmt.Errorf("unknown baseline %q", baseName)
	}
	base, err := spec.Run(g, n)
	if err != nil {
		return nil, err
	}
	models := make([]costmodel.CostModel, 0, len(costmodel.Algos()))
	for _, a := range costmodel.Algos() {
		models = append(models, costmodel.Reference(a))
	}
	var comp *composite.Composite
	switch spec.Family {
	case partitioner.EdgeCutFamily:
		comp, _, err = composite.ME2H(base, models, composite.Options{})
	case partitioner.VertexCutFamily:
		comp, _, err = composite.MV2H(base, models, composite.Options{})
	default:
		return nil, fmt.Errorf("baseline %q is neither edge-cut nor vertex-cut", baseName)
	}
	if err != nil {
		return nil, err
	}
	st, err := store.Create(dir, comp, store.Options{})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "adserve: store: created at %s (%s over %s, %d fragments)\n", dir, spec.Name, graphLabel(g), n)
	return st, nil
}

func graphLabel(g *graph.Graph) string {
	return fmt.Sprintf("%d vertices / %d edges", g.NumVertices(), g.NumEdges())
}

func loadGraph(name string, symmetric bool) (*graph.Graph, error) {
	var g *graph.Graph
	switch strings.ToLower(name) {
	case "social":
		g = gen.SocialSmall()
	case "twitter":
		g = gen.TwitterLike()
	case "web":
		g = gen.WebLike()
	case "road":
		g = gen.RoadLike()
	default:
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
	}
	if symmetric && !g.Undirected() {
		g = graph.Symmetrize(g)
	}
	return g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adserve:", err)
	os.Exit(1)
}
