// Command adserve is the partition-serving daemon: it opens (or
// builds) a durable composite store and serves concurrent sessions
// over HTTP/JSON — algorithm runs, vertex lookups, partition metrics
// and durable edge updates with snapshot-isolated reads.
//
// Usage:
//
//	adserve -store state/ -listen 127.0.0.1:7133
//	adserve -store state/ -graph twitter -n 8 -base Fennel
//
// A directory that already holds a store is recovered (the graph must
// match the one it was built over); an empty one is initialised with
// the five-algorithm batch composite over the named graph. SIGTERM or
// SIGINT drains gracefully: in-flight sessions complete or are
// cancelled after -grace, the WAL is flushed, and the process exits 0.
//
// With -maintain, a background loop watches the served workload for
// learned-cost drift (-drift-threshold, checked every
// -maintain-interval) and re-refines + promotes the partitioning in
// place; see the "maintenance" block of GET /metrics.
//
// Endpoints:
//
//	POST /run          {"algo":"PR","timeout_ms":5000,...}
//	GET  /vertex/{id}  placement + neighborhood under one epoch
//	GET  /metrics      partition, cost-model and server statistics
//	POST /updates      update-stream body ("+ u v [dests]", "- u v", "commit")
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/maintain"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/serve"
	"adp/internal/store"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7133", "listen address")
		storeDir  = flag.String("store", "", "store directory (created with the batch composite when empty)")
		graphName = flag.String("graph", "social", "named graph (social|twitter|web|road) or edge-list file path")
		symmetric = flag.Bool("undirected", false, "symmetrise the graph (required for TC)")
		n         = flag.Int("n", 8, "number of fragments when building a fresh store")
		baseName  = flag.String("base", "Fennel", "baseline partitioner for a fresh store")
		sessions  = flag.Int("sessions", 2, "engine sessions per algorithm")
		inflight  = flag.Int("inflight", 64, "max admitted concurrent /run requests")
		queue     = flag.Int("queue", 16, "max pending update batches")
		timeout   = flag.Duration("timeout", 30*time.Second, "default /run deadline")
		grace     = flag.Duration("grace", 10*time.Second, "drain grace period before cancelling in-flight runs")
		workers   = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")

		maintainOn = flag.Bool("maintain", false, "enable the background re-refinement maintenance loop")
		driftThr   = flag.Float64("drift-threshold", 0.5, "learned-cost imbalance that triggers a re-refinement cycle")
		maintEvery = flag.Duration("maintain-interval", 5*time.Second, "drift-detector tick interval")
	)
	flag.Parse()
	if *storeDir == "" {
		fatal(fmt.Errorf("-store is required"))
	}
	if err := validateFlags(*grace, *maintEvery, *inflight, *queue, *driftThr); err != nil {
		fatal(err)
	}
	if *workers != 0 {
		pool.SetDefaultWorkers(*workers)
	}

	g, err := loadGraph(*graphName, *symmetric)
	if err != nil {
		fatal(err)
	}
	st, err := openOrCreate(*storeDir, g, *baseName, *n)
	if err != nil {
		fatal(err)
	}

	srv, err := serve.New(st, serve.Config{
		SessionsPerAlgo: *sessions,
		MaxInflight:     *inflight,
		UpdateQueue:     *queue,
		DefaultTimeout:  *timeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "adserve: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv.Start(l)

	var lp *maintain.Loop
	if *maintainOn {
		lp = maintain.New(srv, maintain.Config{
			Interval:       *maintEvery,
			DriftThreshold: *driftThr,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "adserve: "+format+"\n", args...)
			},
		})
		lp.Start()
		fmt.Fprintf(os.Stderr, "adserve: maintenance loop on (interval %v, drift threshold %.3f)\n", *maintEvery, *driftThr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "adserve: %v, draining (grace %v)\n", sig, *grace)
	if lp != nil {
		// Stop the loop first so no maintenance cycle races the drain.
		lp.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "adserve: drained cleanly")
}

// validateFlags rejects configurations that would only fail later and
// obscurely: a negative grace or tick interval silently disables the
// mechanism it configures, a non-positive admission or queue limit
// wedges every request.
func validateFlags(grace, maintEvery time.Duration, inflight, queue int, driftThr float64) error {
	if grace < 0 {
		return fmt.Errorf("-grace must be >= 0 (got %v)", grace)
	}
	if maintEvery <= 0 {
		return fmt.Errorf("-maintain-interval must be > 0 (got %v)", maintEvery)
	}
	if inflight <= 0 {
		return fmt.Errorf("-inflight must be > 0 (got %d)", inflight)
	}
	if queue <= 0 {
		return fmt.Errorf("-queue must be > 0 (got %d)", queue)
	}
	if driftThr <= 0 {
		return fmt.Errorf("-drift-threshold must be > 0 (got %g)", driftThr)
	}
	return nil
}

// openOrCreate recovers an existing store in dir, or initialises a
// fresh one with the five-algorithm batch composite over g — the same
// construction `adpart -algo batch -store` uses.
func openOrCreate(dir string, g *graph.Graph, baseName string, n int) (*store.Store, error) {
	if names, err := os.ReadDir(dir); err == nil && len(names) > 0 {
		st, info, err := store.Open(dir, g, store.Options{})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "adserve: store: %v\n", info)
		return st, nil
	}
	spec, ok := partitioner.ByName(baseName)
	if !ok {
		return nil, fmt.Errorf("unknown baseline %q", baseName)
	}
	base, err := spec.Run(g, n)
	if err != nil {
		return nil, err
	}
	models := make([]costmodel.CostModel, 0, len(costmodel.Algos()))
	for _, a := range costmodel.Algos() {
		models = append(models, costmodel.Reference(a))
	}
	var comp *composite.Composite
	switch spec.Family {
	case partitioner.EdgeCutFamily:
		comp, _, err = composite.ME2H(base, models, composite.Options{})
	case partitioner.VertexCutFamily:
		comp, _, err = composite.MV2H(base, models, composite.Options{})
	default:
		return nil, fmt.Errorf("baseline %q is neither edge-cut nor vertex-cut", baseName)
	}
	if err != nil {
		return nil, err
	}
	st, err := store.Create(dir, comp, store.Options{})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "adserve: store: created at %s (%s over %s, %d fragments)\n", dir, spec.Name, graphLabel(g), n)
	return st, nil
}

func graphLabel(g *graph.Graph) string {
	return fmt.Sprintf("%d vertices / %d edges", g.NumVertices(), g.NumEdges())
}

func loadGraph(name string, symmetric bool) (*graph.Graph, error) {
	var g *graph.Graph
	switch strings.ToLower(name) {
	case "social":
		g = gen.SocialSmall()
	case "twitter":
		g = gen.TwitterLike()
	case "web":
		g = gen.WebLike()
	case "road":
		g = gen.RoadLike()
	default:
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
	}
	if symmetric && !g.Undirected() {
		g = graph.Symmetrize(g)
	}
	return g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adserve:", err)
	os.Exit(1)
}
