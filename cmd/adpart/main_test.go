package main

import (
	"os"
	"path/filepath"
	"testing"

	"adp/internal/costmodel"
)

func TestParseAlgo(t *testing.T) {
	for _, c := range []struct {
		in   string
		want costmodel.Algo
		ok   bool
	}{
		{"CN", costmodel.CN, true},
		{"cn", costmodel.CN, true},
		{"sssp", costmodel.SSSP, true},
		{"nope", 0, false},
	} {
		got, err := parseAlgo(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseAlgo(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseAlgo(%q) accepted", c.in)
		}
	}
}

func TestLoadGraphNamed(t *testing.T) {
	for _, name := range []string{"social", "twitter", "web", "road"} {
		g, err := loadGraph(name, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	// Symmetrisation flag.
	g, err := loadGraph("social", true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Undirected() {
		t.Fatal("undirected flag ignored")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path, []byte("# vertices 4 directed\n0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("loaded %v", g)
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.txt"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}
