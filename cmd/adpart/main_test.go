package main

import (
	"os"
	"path/filepath"
	"testing"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/store"
)

func TestParseAlgo(t *testing.T) {
	for _, c := range []struct {
		in   string
		want costmodel.Algo
		ok   bool
	}{
		{"CN", costmodel.CN, true},
		{"cn", costmodel.CN, true},
		{"sssp", costmodel.SSSP, true},
		{"nope", 0, false},
	} {
		got, err := parseAlgo(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseAlgo(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseAlgo(%q) accepted", c.in)
		}
	}
}

func TestLoadGraphNamed(t *testing.T) {
	for _, name := range []string{"social", "twitter", "web", "road"} {
		g, err := loadGraph(name, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	// Symmetrisation flag.
	g, err := loadGraph("social", true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Undirected() {
		t.Fatal("undirected flag ignored")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path, []byte("# vertices 4 directed\n0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("loaded %v", g)
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.txt"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadUpdates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.txt")
	if err := os.WriteFile(path, []byte("# demo\n+ 0 5\n- 1 2\ncommit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	muts, err := loadUpdates(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 3 || muts[0].Kind != store.MutInsert || muts[2].Kind != store.MutCommit {
		t.Fatalf("parsed %v", muts)
	}
	if _, err := loadUpdates(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("frobnicate 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadUpdates(bad); err == nil {
		t.Fatal("bad grammar accepted")
	}
}

// testBatchComposite bundles two partitions of the small social graph.
func testBatchComposite(t *testing.T) *composite.Composite {
	t.Helper()
	g, err := loadGraph("social", false)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 3
	}
	p2, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestApplyCompositeUpdates(t *testing.T) {
	c := testBatchComposite(t)
	muts := []store.Mutation{
		{Kind: store.MutInsert, U: 0, V: 7, Dest: []int{1, 2}},
		{Kind: store.MutInsert, U: 0, V: 9}, // nil dest: locality routed
		{Kind: store.MutCommit},
		{Kind: store.MutDelete, U: 0, V: 7},
	}
	ins, del, err := applyCompositeUpdates(c, muts)
	if err != nil {
		t.Fatal(err)
	}
	if ins != 2 || del != 1 {
		t.Fatalf("applied +%d -%d, want +2 -1", ins, del)
	}
	if err := c.ValidateIndex(); err != nil {
		t.Fatal(err)
	}
	if _, _, present := c.Locate(0, 0, 7); present {
		t.Fatal("deleted edge still present")
	}
	if _, _, present := c.Locate(0, 0, 9); !present {
		t.Fatal("routed insert missing")
	}
}

func TestRunFsckEndToEnd(t *testing.T) {
	c := testBatchComposite(t)
	dir := filepath.Join(t.TempDir(), "state")
	s, err := store.Create(dir, c, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	muts := []store.Mutation{
		{Kind: store.MutInsert, U: 0, V: 7, Dest: []int{1, 2}},
		{Kind: store.MutCommit},
		{Kind: store.MutDelete, U: 0, V: 7},
		{Kind: store.MutCommit},
	}
	if _, _, err := s.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := runFsck(dir, false, "", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatal("clean store reported damaged")
	}

	// Chop the log mid-frame: shallow fsck must flag it, repair must
	// truncate it, and the store must reopen cleanly afterwards.
	var walPath string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			walPath = filepath.Join(dir, e.Name())
		}
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = runFsck(dir, false, "", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("torn log reported healthy")
	}
	if _, err := runFsck(dir, true, "", false, false); err != nil {
		t.Fatal(err)
	}
	rep, err = runFsck(dir, false, "social", false, true) // deep re-check
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatal("store still damaged after repair")
	}
}
