// Command adpart partitions a graph for a given algorithm (or the
// five-algorithm batch) and reports the resulting quality and cost
// metrics: the end-to-end application-driven pipeline of the paper.
//
// Usage:
//
//	adpart -graph twitter -n 8 -base Fennel -algo CN
//	adpart -graph path/to/edges.txt -n 4 -base Grid -algo batch
//	adpart -graph big.txt -n 8 -stream -compressed
//	adpart -graph big.txt -saveflat big.flat && adpart -graph big.flat -mmap
//	adpart -algo batch -store state/ -updates stream.txt
//	adpart -fsck state/ [-repair]
//
// The graph is either a named synthetic stand-in (social, twitter,
// web, road) or a path to an edge-list file (see internal/graph).
// Big-graph data plane: -stream ingests edge-list files with the
// chunk-parallel loader and runs streaming Fennel during the build
// (the baseline partition exists the moment the graph does);
// -compressed holds the partition adjacency in the delta-varint
// compressed form (inflating on demand) and prints the footprint;
// -saveflat writes the loaded graph as a flat binary CSR, which -mmap
// then serves zero-copy from page cache.
// -updates applies an edge-update stream ("+ u v [dests]", "- u v",
// "commit" — the WAL record grammar spelled out); -store keeps the
// batch composite in a crash-consistent on-disk store; -fsck checks a
// store directory frame by frame and -repair truncates damage away.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/prof"
	"adp/internal/refine"
	"adp/internal/store"
)

func main() {
	var (
		graphName = flag.String("graph", "social", "named graph (social|twitter|web|road) or edge-list file path")
		n         = flag.Int("n", 4, "number of fragments")
		baseName  = flag.String("base", "Fennel", "baseline partitioner (xtraPuLP|Fennel|Grid|NE|Ginger|TopoX|Hash|Multilevel|DBH|HDRF)")
		algoName  = flag.String("algo", "PR", "target algorithm (CN|TC|WCC|PR|SSSP) or 'batch' for the composite")
		symmetric = flag.Bool("undirected", false, "symmetrise the graph (required for TC)")
		savePath  = flag.String("save", "", "write the refined partition to this file")
		workers   = flag.Int("workers", 0, "worker-pool size for refinement and simulation (0 = GOMAXPROCS, 1 = single-threaded)")
		seed      = flag.Int64("seed", 1, "seed for rand:N fault schedules")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (0 = no timeout)")
		faultSpec = flag.String("faults", "", `fault schedule for the simulated run: grammar spec ("crash@1:w0,drop@2:d1#0") or "rand:N"`)
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf   = flag.String("memprofile", "", "write a heap profile to this path on exit")
		updates   = flag.String("updates", "", "apply an edge-update stream from this file ('+ u v [dests]', '- u v', 'commit')")
		storeDir  = flag.String("store", "", "with -algo batch: keep the composite in a crash-consistent store at this directory")
		fsckDir   = flag.String("fsck", "", "check the store at this directory and exit (0 healthy, 1 damaged)")
		repair    = flag.Bool("repair", false, "with -fsck: truncate damaged or un-acked log tails in place")
		fsckJSON  = flag.Bool("json", false, "with -fsck: emit the machine-readable report instead of the text format")
		stream    = flag.Bool("stream", false, "one-pass ingest: run streaming Fennel while the graph builds (implies -base Fennel)")
		compress  = flag.Bool("compressed", false, "hold the partition adjacency gap-compressed (inflates on demand) and print the footprint")
		useMmap   = flag.Bool("mmap", false, "load -graph as a flat binary CSR via mmap (write one with -saveflat)")
		saveFlat  = flag.String("saveflat", "", "write the loaded graph in flat binary CSR format to this path and continue")
	)
	flag.Parse()
	if *fsckDir != "" {
		// Deep snapshot verification needs the graph the store was built
		// over; only use one the caller named explicitly.
		graphSet := false
		flag.Visit(func(f *flag.Flag) { graphSet = graphSet || f.Name == "graph" })
		rep, err := runFsck(*fsckDir, *repair, *graphName, *symmetric, graphSet)
		if err != nil {
			fatal(err)
		}
		if *fsckJSON {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			rep.Format(os.Stdout)
		}
		if !rep.Healthy() {
			os.Exit(1)
		}
		return
	}
	if *workers != 0 {
		pool.SetDefaultWorkers(*workers)
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	events, err := fault.FromFlag(*faultSpec, *seed, *n, 8)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	runOpts := engine.Options{Context: ctx, Injector: fault.NewInjector(events...)}

	loadStart := time.Now()
	g, st, mapping, err := loadGraphBig(*graphName, *symmetric, *useMmap, *stream, *n)
	if err != nil {
		fatal(err)
	}
	if mapping != nil {
		defer mapping.Close()
		fmt.Printf("graph mapped zero-copy in %v\n", time.Since(loadStart).Round(time.Millisecond))
	}
	fmt.Printf("graph: %v\n", graph.ComputeStats(g))
	if *saveFlat != "" {
		if err := writeFlat(*saveFlat, g); err != nil {
			fatal(err)
		}
		fmt.Printf("flat CSR written to %s (%d bytes; load it with -mmap)\n", *saveFlat, graph.FixedSizeBytes(g))
	}

	var spec partitioner.Spec
	var base *partition.Partition
	if *stream {
		spec, _ = partitioner.ByName("Fennel")
		start := time.Now()
		if st != nil {
			// The stream already ran during ingestion; materialising the
			// partition is all that is left.
			base, err = st.Partition(g)
		} else {
			base, err = partitioner.FennelStreamEdgeCut(g, *n, partitioner.FennelConfig{})
		}
		if err != nil {
			fatal(err)
		}
		where := "over built graph"
		if st != nil {
			where = "during ingest"
		}
		fmt.Printf("baseline streaming Fennel (%s, materialised in %v): %s\n",
			where, time.Since(start).Round(time.Millisecond), metricsLine(base))
	} else {
		var ok bool
		spec, ok = partitioner.ByName(*baseName)
		if !ok {
			fatal(fmt.Errorf("unknown baseline %q", *baseName))
		}
		start := time.Now()
		base, err = spec.Run(g, *n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("baseline %s (%s) in %v: %s\n", spec.Name, spec.Family, time.Since(start).Round(time.Millisecond), metricsLine(base))
	}
	if *compress {
		packed, compressed := base.CompileCompressed().FootprintBytes()
		fmt.Printf("compressed adjacency: %d bytes vs %d packed (%.1f%% of packed)\n",
			compressed, packed, float64(compressed)/float64(packed)*100)
	}

	var muts []store.Mutation
	if *updates != "" {
		muts, err = loadUpdates(*updates)
		if err != nil {
			fatal(err)
		}
	}
	if strings.EqualFold(*algoName, "batch") {
		runBatch(base, spec, muts, *storeDir)
		return
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}
	model := costmodel.Reference(algo)
	before := costmodel.Evaluate(base, model)
	refined := base.Clone()
	start := time.Now()
	stats := refine.ForFamily(spec.Family, refined, model, refine.Config{})
	if stats == nil {
		fmt.Println("hybrid baseline: no refinement applied")
		return
	}
	after := costmodel.Evaluate(refined, model)
	fmt.Printf("refined for %v in %v: %s\n", algo, stats.Total.Round(time.Millisecond), metricsLine(refined))
	fmt.Printf("  migrated=%d splitEdges=%d merged=%d mastersMoved=%d\n",
		stats.Migrated, stats.SplitEdges, stats.Merged, stats.MastersMoved)
	fmt.Printf("  parallel cost (model): %.4g -> %.4g (%.2fx)\n",
		costmodel.ParallelCost(before), costmodel.ParallelCost(after),
		costmodel.ParallelCost(before)/costmodel.ParallelCost(after))
	fmt.Printf("  cost balance λ%v: %.2f -> %.2f\n", algo,
		costmodel.LambdaCost(before), costmodel.LambdaCost(after))
	if err := refined.Validate(); err != nil {
		fatal(fmt.Errorf("refined partition failed validation: %w", err))
	}
	if len(muts) > 0 {
		// Incremental maintenance (refine.ApplyUpdates): carry the
		// refined placement over to the updated graph and rebalance.
		ins, del := store.SplitEdges(muts)
		start = time.Now()
		updated, ustats, err := refine.ApplyUpdates(refined, model, ins, del, refine.Config{})
		if err != nil {
			fatal(fmt.Errorf("applying updates: %w", err))
		}
		fmt.Printf("  updates (+%d -%d) in %v: carried=%d routed=%d dropped=%d migrated=%d mastersMoved=%d\n",
			len(ins), len(del), time.Since(start).Round(time.Millisecond),
			ustats.CarriedArcs, ustats.RoutedArcs, ustats.DroppedArcs,
			ustats.Migrated, ustats.MastersMoved)
		upd := costmodel.Evaluate(updated, model)
		fmt.Printf("  updated metrics: %s, parallel cost %.4g\n", metricsLine(updated), costmodel.ParallelCost(upd))
		refined = updated
	}
	// Simulate the target algorithm over the refined partition — with
	// -faults this exercises checkpoint/recovery, and the reported cost
	// is identical to the fault-free run by the determinism contract.
	start = time.Now()
	out, err := algorithms.Run(engine.NewCluster(refined).Configure(runOpts), algo,
		algorithms.Options{SSSPSource: 1, PRIterations: 5})
	if err != nil {
		fatal(fmt.Errorf("simulated %v run: %w", algo, err))
	}
	fmt.Printf("  simulated %v run in %v: cost=%.4g supersteps=%d recoveries=%d redelivered=%d stragglers=%d\n",
		algo, time.Since(start).Round(time.Millisecond),
		out.Report.SimCost(engine.DefaultBytesWeight), out.Report.Supersteps,
		out.Report.Recoveries, out.Report.Redelivered, out.Report.Stragglers)
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := partition.Write(f, refined); err != nil {
			fatal(err)
		}
		fmt.Printf("  partition written to %s\n", *savePath)
	}
}

func runBatch(base *partition.Partition, spec partitioner.Spec, muts []store.Mutation, storeDir string) {
	models := make([]costmodel.CostModel, 0, 5)
	for _, a := range costmodel.Algos() {
		models = append(models, costmodel.Reference(a))
	}
	start := time.Now()
	var comp *composite.Composite
	var err error
	switch spec.Family {
	case partitioner.EdgeCutFamily:
		comp, _, err = composite.ME2H(base, models, composite.Options{})
	case partitioner.VertexCutFamily:
		comp, _, err = composite.MV2H(base, models, composite.Options{})
	default:
		fatal(fmt.Errorf("batch mode requires an edge-cut or vertex-cut baseline"))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("composite for %v in %v\n", costmodel.Algos(), time.Since(start).Round(time.Millisecond))

	if storeDir != "" {
		// Durable mode: the composite lives in the crash-consistent
		// store, and updates flow through its WAL. A directory that
		// already holds a store is recovered instead of recreated.
		st, err := store.Create(storeDir, comp, store.Options{})
		if err != nil {
			var info *store.RecoveryInfo
			st, info, err = store.Open(storeDir, base.Graph(), store.Options{})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  store: %v\n", info)
			comp = st.Composite()
		} else {
			fmt.Printf("  store: created at %s (snapshot lsn=0)\n", storeDir)
		}
		if len(muts) > 0 {
			ins, del, err := st.Apply(muts)
			if err != nil {
				fatal(fmt.Errorf("applying updates through store: %w", err))
			}
			fmt.Printf("  updates: +%d -%d committed durably (lsn=%d)\n", ins, del, st.LSN())
		}
		if err := st.Snapshot(); err != nil {
			fatal(err)
		}
		if err := st.Close(); err != nil {
			fatal(err)
		}
	} else if len(muts) > 0 {
		ins, del, err := applyCompositeUpdates(comp, muts)
		if err != nil {
			fatal(fmt.Errorf("applying updates: %w", err))
		}
		if err := comp.ValidateIndex(); err != nil {
			fatal(fmt.Errorf("composite index invalid after updates: %w", err))
		}
		fmt.Printf("  updates: +%d -%d applied coherently\n", ins, del)
	}
	fmt.Printf("  fc=%.2f composite=%d arcs, separate=%d arcs (%.0f%% saved)\n",
		comp.FC(), comp.StorageArcs(), comp.SeparateStorageArcs(),
		(1-float64(comp.StorageArcs())/float64(comp.SeparateStorageArcs()))*100)
	for j, a := range costmodel.Algos() {
		costs := costmodel.Evaluate(comp.Partition(j), costmodel.Reference(a))
		fmt.Printf("  %-4v parallel cost %.4g, λ=%.2f\n", a,
			costmodel.ParallelCost(costs), costmodel.LambdaCost(costs))
	}
}

// applyCompositeUpdates drives an update stream through the coherent
// in-memory composite path: every bundled partition sees every edge
// change, with locality routing standing in for absent destinations.
func applyCompositeUpdates(c *composite.Composite, muts []store.Mutation) (inserts, deletes int, err error) {
	for i, m := range muts {
		switch m.Kind {
		case store.MutInsert:
			dest := m.Dest
			if len(dest) == 0 {
				dest = store.RouteDest(c, m.U, m.V)
			}
			if err := c.InsertEdge(m.U, m.V, dest); err != nil {
				return inserts, deletes, fmt.Errorf("mutation %d: %w", i, err)
			}
			inserts++
		case store.MutDelete:
			if c.DeleteEdge(m.U, m.V) {
				deletes++
			}
		}
	}
	return inserts, deletes, nil
}

func loadUpdates(path string) ([]store.Mutation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.ParseUpdates(f)
}

// runFsck classifies the store at dir. With deep set the graph is
// loaded and snapshots are fully parsed and index-validated; otherwise
// only frame-level WAL integrity and snapshot readability are checked.
func runFsck(dir string, repair bool, graphName string, symmetric, deep bool) (*store.FsckReport, error) {
	var g *graph.Graph
	if deep {
		var err error
		g, err = loadGraph(graphName, symmetric)
		if err != nil {
			return nil, err
		}
	}
	return store.Fsck(dir, g, repair)
}

// loadGraphBig is loadGraph extended with the big-graph ingest paths:
// mmap serves a flat binary CSR zero-copy, and stream runs streaming
// Fennel while an edge-list file parses and builds (the returned
// FennelStream is non-nil exactly when that happened — synthetic or
// symmetrised graphs stream after the build instead, since the
// assignment must see the graph the run will use).
func loadGraphBig(name string, symmetric, useMmap, stream bool, frags int) (*graph.Graph, *partitioner.FennelStream, *graph.Mapping, error) {
	if useMmap {
		g, mapping, err := graph.MapFlatBinary(name)
		if err != nil {
			return nil, nil, nil, err
		}
		if symmetric && !g.Undirected() {
			sg := graph.Symmetrize(g)
			mapping.Close()
			return sg, nil, nil, nil
		}
		return g, nil, mapping, nil
	}
	switch strings.ToLower(name) {
	case "social", "twitter", "web", "road":
	default:
		if stream && !symmetric {
			f, err := os.Open(name)
			if err != nil {
				return nil, nil, nil, err
			}
			defer f.Close()
			st := partitioner.NewFennelStream(frags, partitioner.FennelConfig{})
			g, err := graph.ParallelReadEdgeListStreaming(f, graph.LoadOptions{}, st)
			if err != nil {
				return nil, nil, nil, err
			}
			return g, st, nil, nil
		}
	}
	g, err := loadGraph(name, symmetric)
	return g, nil, nil, err
}

func writeFlat(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteFlatBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadGraph(name string, symmetric bool) (*graph.Graph, error) {
	var g *graph.Graph
	switch strings.ToLower(name) {
	case "social":
		g = gen.SocialSmall()
	case "twitter":
		g = gen.TwitterLike()
	case "web":
		g = gen.WebLike()
	case "road":
		g = gen.RoadLike()
	default:
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
	}
	if symmetric && !g.Undirected() {
		g = graph.Symmetrize(g)
	}
	return g, nil
}

func parseAlgo(s string) (costmodel.Algo, error) {
	for _, a := range costmodel.Algos() {
		if strings.EqualFold(a.String(), s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func metricsLine(p *partition.Partition) string {
	m := p.ComputeMetrics()
	return fmt.Sprintf("fv=%.2f fe=%.2f λv=%.2f λe=%.2f", m.FV, m.FE, m.LambdaV, m.LambdaE)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adpart:", err)
	os.Exit(1)
}
