// Command adbench regenerates the paper's tables and figures.
//
// Usage:
//
//	adbench list              # show available experiment ids
//	adbench all               # run every experiment in paper order
//	adbench table3 fig9b ...  # run selected experiments
package main

import (
	"fmt"
	"os"
	"time"

	"adp/internal/bench"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		args = nil
		for _, e := range bench.Experiments() {
			args = append(args, e.ID)
		}
	}
	for _, id := range args {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "adbench: unknown experiment %q (try 'adbench list')\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "adbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `adbench — regenerate the paper's experiments
usage:
  adbench list                 list experiment ids
  adbench all                  run everything
  adbench <id> [<id> ...]      run selected experiments`)
}
