// Command adbench regenerates the paper's tables and figures.
//
// Usage:
//
//	adbench list                   # show available experiment ids
//	adbench all                    # run every experiment in paper order
//	adbench table3 fig9b ...       # run selected experiments
//	adbench -workers 1 all         # deterministic single-threaded run
//
// Every table's numbers are identical for any -workers value (the
// shared pool guarantees schedule-independent output); the flag only
// trades wall time against CPU.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"adp/internal/bench"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/pool"
	"adp/internal/prof"
)

func main() {
	workers := flag.Int("workers", 0, "worker-pool size for all parallel phases (0 = GOMAXPROCS, 1 = single-threaded)")
	seed := flag.Int64("seed", 1, "seed for rand:N fault schedules")
	timeout := flag.Duration("timeout", 0, "abort the remaining experiments after this duration (0 = no timeout)")
	faultSpec := flag.String("faults", "", `fault schedule injected into every engine run: grammar spec or "rand:N" (costs are unchanged by design)`)
	jsonPath := flag.String("json", "", "run the engine/partition perf suite and write the machine-readable report (e.g. BENCH_4.json) to this path, then exit")
	against := flag.String("against", "", "with -json: gate against this prior report (engine_run ns/op, plus allocs/op and bytes/op of every shared series) and exit 1 on a >20% regression")
	serveLoad := flag.Bool("serve-load", false, "run the serving-plane load measurement (boots adserve's daemon on loopback, drives mixed /run+/vertex traffic) and exit")
	serveDur := flag.Duration("serve-duration", 0, "with -serve-load: duration per phase (default 2s)")
	serveQPS := flag.Float64("serve-qps", 0, "with -serve-load: open-loop target QPS (default 1000)")
	serveWorkers := flag.Int("serve-workers", 0, "with -serve-load: client concurrency (default 16)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Usage = usage
	flag.Parse()
	if *workers != 0 {
		pool.SetDefaultWorkers(*workers)
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adbench:", err)
		os.Exit(1)
	}
	defer stopProf()
	if *serveLoad {
		res, err := bench.ServeLoad(bench.ServeLoadConfig{
			Duration:  *serveDur,
			TargetQPS: *serveQPS,
			Workers:   *serveWorkers,
			Seed:      *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		fmt.Printf("open loop, no writer:   %s\n", res.Open)
		fmt.Printf("open loop, with writer: %s\n", res.OpenWriter)
		fmt.Printf("closed loop (max QPS):  %s\n", res.Closed)
		if ratio := float64(res.OpenWriter.ReadP99) / float64(res.Open.ReadP99); res.Open.ReadP99 > 0 {
			fmt.Printf("writer impact on read p99: %.2fx\n", ratio)
		}
		return
	}
	if *jsonPath != "" {
		rep, err := bench.Perf()
		if err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s\n", *jsonPath, rep.Summary())
		if *against != "" {
			prior, err := os.Open(*against)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adbench:", err)
				stopProf()
				os.Exit(1)
			}
			err = rep.CompareAgainst(prior, 0.20)
			prior.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "adbench:", err)
				stopProf()
				os.Exit(1)
			}
			fmt.Printf("within the +20%% gates of %s (engine_run ns/op; allocs/op and bytes/op of every shared series)\n", *against)
		}
		return
	}
	events, err := fault.FromFlag(*faultSpec, *seed, 8, 8)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adbench:", err)
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	bench.Configure(engine.Options{Context: ctx, Injector: fault.NewInjector(events...)})
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		args = nil
		for _, e := range bench.Experiments() {
			args = append(args, e.ID)
		}
	}
	for _, id := range args {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "adbench: unknown experiment %q (try 'adbench list')\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "adbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `adbench — regenerate the paper's experiments
usage:
  adbench [-workers N] list            list experiment ids
  adbench [-workers N] all             run everything
  adbench [-workers N] <id> [<id>...]  run selected experiments

-workers sizes the shared worker pool (0 = GOMAXPROCS). Results are
identical for every value; only wall time changes.
-json PATH runs the engine/partition perf suite instead and writes the
machine-readable benchmark report (ns/op, allocs/op, speedup vs the
pinned pre-change baselines) to PATH; -against PRIOR then gates
engine_run ns/op plus allocs/op and bytes/op of every series shared
with the prior report at +20% (with small absolute floors for jitter),
exiting 1 on regression.
-serve-load runs the serving-plane load measurement instead: it boots
the adserve daemon over the reference graph on a loopback listener and
drives mixed /run+/vertex traffic in three phases (open loop without
and with a concurrent /updates writer, then closed-loop saturation);
-serve-duration, -serve-qps and -serve-workers shape it.
-cpuprofile / -memprofile write runtime/pprof CPU and heap profiles.
-faults injects a deterministic fault schedule (grammar spec or
"rand:N", drawn from -seed) into every engine run; checkpoint/recovery
replays to identical barrier state, so every reported cost is
unchanged. -timeout aborts the remaining experiments cleanly.`)
}
