// Command adtrain runs the Section-4 learning pipeline: it executes
// each algorithm over the training graphs with per-vertex cost
// recording, harvests [X(v), t(v)] samples, trains the polynomial
// regression models by SGD with an 80/20 split, and prints the
// Table-5-style report. With -out it also writes the learned models as
// JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"adp/internal/bench"
	"adp/internal/costmodel"
)

func main() {
	var (
		algoFlag = flag.String("algo", "all", "algorithm to train (CN|TC|WCC|PR|SSSP|all)")
		out      = flag.String("out", "", "optional path to write learned models as JSON")
	)
	flag.Parse()

	var algos []costmodel.Algo
	if strings.EqualFold(*algoFlag, "all") {
		algos = costmodel.Algos()
	} else {
		found := false
		for _, a := range costmodel.Algos() {
			if strings.EqualFold(a.String(), *algoFlag) {
				algos, found = []costmodel.Algo{a}, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "adtrain: unknown algorithm %q\n", *algoFlag)
			os.Exit(2)
		}
	}

	type entry struct {
		Algo  string           `json:"algo"`
		Kind  string           `json:"kind"`
		MSRE  float64          `json:"msre"`
		Model *costmodel.Model `json:"model"`
	}
	var entries []entry
	fmt.Printf("%-5s %-4s %8s %10s %10s  %s\n", "algo", "kind", "samples", "MSRE", "train", "model")
	for _, a := range algos {
		for _, comm := range []bool{false, true} {
			kind := "hA"
			if comm {
				kind = "gA"
			}
			tm, err := bench.TrainFromLogs(a, comm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "adtrain: %v %s: %v\n", a, kind, err)
				os.Exit(1)
			}
			fmt.Printf("%-5v %-4s %8d %10.4f %10v  %s\n",
				a, kind, tm.Samples, tm.MSRE, tm.TrainTime.Round(1e6), tm.Model)
			entries = append(entries, entry{Algo: a.String(), Kind: kind, MSRE: tm.MSRE, Model: tm.Model})
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "adtrain:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "adtrain:", err)
			os.Exit(1)
		}
		fmt.Printf("models written to %s\n", *out)
	}
}
