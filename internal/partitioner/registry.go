package partitioner

import (
	"adp/internal/graph"
	"adp/internal/partition"
)

// Family classifies a baseline partitioner by the cut it produces.
type Family int

const (
	// EdgeCutFamily partitioners assign vertices (refined by E2H).
	EdgeCutFamily Family = iota
	// VertexCutFamily partitioners assign edges (refined by V2H).
	VertexCutFamily
	// HybridFamily partitioners already cut both; the paper compares
	// against them but does not refine them.
	HybridFamily
)

func (f Family) String() string {
	switch f {
	case EdgeCutFamily:
		return "edge-cut"
	case VertexCutFamily:
		return "vertex-cut"
	case HybridFamily:
		return "hybrid"
	}
	return "?"
}

// Spec names a baseline partitioner; the experiment drivers iterate
// these the way the paper's tables do.
type Spec struct {
	Name   string
	Family Family
	Run    func(g *graph.Graph, n int) (*partition.Partition, error)
}

// Baselines returns the paper's comparison set: xtraPuLP and Fennel
// (edge-cut), Grid and NE (vertex-cut), Ginger and TopoX (hybrid).
// Our xtraPuLP stand-in is the label-propagation partitioner; see
// DESIGN.md for the substitution table.
func Baselines() []Spec {
	return []Spec{
		{Name: "xtraPuLP", Family: EdgeCutFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return LabelPropEdgeCut(g, n, LabelPropConfig{})
		}},
		{Name: "Fennel", Family: EdgeCutFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return FennelEdgeCut(g, n, FennelConfig{})
		}},
		{Name: "Grid", Family: VertexCutFamily, Run: GridVertexCut},
		{Name: "NE", Family: VertexCutFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return NEVertexCut(g, n, NEConfig{})
		}},
		{Name: "Ginger", Family: HybridFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return GingerHybrid(g, n, GingerConfig{})
		}},
		{Name: "TopoX", Family: HybridFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return TopoXHybrid(g, n, TopoXConfig{})
		}},
	}
}

// Extras lists the additional partitioners implemented beyond the
// paper's comparison set: the METIS-style multilevel edge-cut, the
// hash edge-cut and degree-based-hashing vertex-cut. They are
// available to the CLI and refiners but excluded from the reproduced
// tables to keep those aligned with the paper.
func Extras() []Spec {
	return []Spec{
		{Name: "Hash", Family: EdgeCutFamily, Run: HashEdgeCut},
		{Name: "Multilevel", Family: EdgeCutFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return MultilevelEdgeCut(g, n, MultilevelConfig{})
		}},
		{Name: "ReFennel", Family: EdgeCutFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return ReFennelEdgeCut(g, n, 3, FennelConfig{})
		}},
		{Name: "DBH", Family: VertexCutFamily, Run: DBHVertexCut},
		{Name: "HDRF", Family: VertexCutFamily, Run: func(g *graph.Graph, n int) (*partition.Partition, error) {
			return HDRFVertexCut(g, n, HDRFConfig{})
		}},
	}
}

// ByName returns the named partitioner spec, searching the paper's
// baselines first and the extras second.
func ByName(name string) (Spec, bool) {
	for _, s := range Baselines() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range Extras() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
