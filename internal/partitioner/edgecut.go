// Package partitioner implements the baseline graph partitioners the
// paper compares against and refines (Section 7): edge-cut
// partitioners (hash, the streaming Fennel of [47], and a
// label-propagation partitioner in the spirit of xtraPuLP [46]),
// vertex-cut partitioners (the Grid hash partitioner of [28], HDRF
// [43] and a neighbourhood-expansion partitioner in the spirit of NE
// [53]), and the hybrid baselines Ginger [16] and TopoX [35].
//
// Every partitioner returns a *partition.Partition so the refiners of
// Sections 5–6 can post-process any of them uniformly.
package partitioner

import (
	"math"

	"adp/internal/graph"
	"adp/internal/partition"
)

// HashEdgeCut assigns vertex v to fragment v mod n: the trivial
// edge-cut baseline.
func HashEdgeCut(g *graph.Graph, n int) (*partition.Partition, error) {
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % n
	}
	return partition.FromVertexAssignment(g, assign, n)
}

// FennelConfig tunes the streaming Fennel partitioner.
type FennelConfig struct {
	Gamma float64 // objective exponent, default 1.5
	Slack float64 // capacity slack ν: |Vi| ≤ ν·|V|/n, default 1.1
}

func (c *FennelConfig) defaults() {
	if c.Gamma == 0 {
		c.Gamma = 1.5
	}
	if c.Slack == 0 {
		c.Slack = 1.1
	}
}

// FennelEdgeCut implements the one-pass streaming heuristic of
// Tsourakakis et al.: vertex v goes to the fragment maximising
// |N(v) ∩ Vi| − α·γ·|Vi|^(γ−1) subject to a capacity cap. Vertices
// stream in id order, neighbours on either edge direction count.
func FennelEdgeCut(g *graph.Graph, n int, cfg FennelConfig) (*partition.Partition, error) {
	cfg.defaults()
	nv := g.NumVertices()
	m := float64(g.NumEdges())
	alpha := m * math.Pow(float64(n), cfg.Gamma-1) / math.Pow(float64(nv), cfg.Gamma)
	capLimit := int(cfg.Slack*float64(nv)/float64(n)) + 1

	assign := make([]int, nv)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, n)
	neighborIn := make([]int, n)
	for v := 0; v < nv; v++ {
		for i := range neighborIn {
			neighborIn[i] = 0
		}
		countNeighbor := func(w graph.VertexID) {
			if a := assign[w]; a >= 0 {
				neighborIn[a]++
			}
		}
		for _, w := range g.OutNeighbors(graph.VertexID(v)) {
			countNeighbor(w)
		}
		for _, w := range g.InNeighbors(graph.VertexID(v)) {
			countNeighbor(w)
		}
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if sizes[i] >= capLimit {
				continue
			}
			score := float64(neighborIn[i]) - alpha*cfg.Gamma*math.Pow(float64(sizes[i]), cfg.Gamma-1)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 { // every fragment at capacity: put in the smallest
			for i := 0; i < n; i++ {
				if best < 0 || sizes[i] < sizes[best] {
					best = i
				}
			}
		}
		assign[v] = best
		sizes[best]++
	}
	return partition.FromVertexAssignment(g, assign, n)
}

// ReFennelEdgeCut runs Fennel for several restreaming passes (the
// ReLDG/ReFennel technique): after the first streaming pass, vertices
// are re-streamed with full knowledge of everyone else's current
// placement, which repairs the early blind decisions of a single pass.
func ReFennelEdgeCut(g *graph.Graph, n, passes int, cfg FennelConfig) (*partition.Partition, error) {
	cfg.defaults()
	if passes < 1 {
		passes = 2
	}
	nv := g.NumVertices()
	m := float64(g.NumEdges())
	alpha := m * math.Pow(float64(n), cfg.Gamma-1) / math.Pow(float64(nv), cfg.Gamma)
	capLimit := int(cfg.Slack*float64(nv)/float64(n)) + 1

	assign := make([]int, nv)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, n)
	neighborIn := make([]int, n)
	for pass := 0; pass < passes; pass++ {
		for v := 0; v < nv; v++ {
			if old := assign[v]; old >= 0 {
				sizes[old]--
				assign[v] = -1
			}
			for i := range neighborIn {
				neighborIn[i] = 0
			}
			count := func(w graph.VertexID) {
				if a := assign[w]; a >= 0 {
					neighborIn[a]++
				}
			}
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				count(w)
			}
			for _, w := range g.InNeighbors(graph.VertexID(v)) {
				count(w)
			}
			best, bestScore := -1, math.Inf(-1)
			for i := 0; i < n; i++ {
				if sizes[i] >= capLimit {
					continue
				}
				score := float64(neighborIn[i]) - alpha*cfg.Gamma*math.Pow(float64(sizes[i]), cfg.Gamma-1)
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			if best < 0 {
				for i := 0; i < n; i++ {
					if best < 0 || sizes[i] < sizes[best] {
						best = i
					}
				}
			}
			assign[v] = best
			sizes[best]++
		}
	}
	return partition.FromVertexAssignment(g, assign, n)
}

// LabelPropConfig tunes the label-propagation edge-cut partitioner.
type LabelPropConfig struct {
	Iterations int     // sweeps, default 8
	Slack      float64 // size cap (1+Slack)·avg, default 0.1
	Seed       int64
}

func (c *LabelPropConfig) defaults() {
	if c.Iterations == 0 {
		c.Iterations = 8
	}
	if c.Slack == 0 {
		c.Slack = 0.1
	}
}

// LabelPropEdgeCut is a size-constrained label-propagation partitioner
// in the spirit of (xtra)PuLP: vertices start round-robin and
// repeatedly adopt the fragment most common among their neighbours
// when the move keeps fragment sizes within the slack.
func LabelPropEdgeCut(g *graph.Graph, n int, cfg LabelPropConfig) (*partition.Partition, error) {
	cfg.defaults()
	nv := g.NumVertices()
	assign := make([]int, nv)
	sizes := make([]int, n)
	for v := range assign {
		assign[v] = v % n
		sizes[v%n]++
	}
	capLimit := int((1+cfg.Slack)*float64(nv)/float64(n)) + 1
	votes := make([]int, n)
	for it := 0; it < cfg.Iterations; it++ {
		moved := 0
		for v := 0; v < nv; v++ {
			for i := range votes {
				votes[i] = 0
			}
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				votes[assign[w]]++
			}
			for _, w := range g.InNeighbors(graph.VertexID(v)) {
				votes[assign[w]]++
			}
			cur := assign[v]
			best := cur
			for i := 0; i < n; i++ {
				if i == cur || sizes[i] >= capLimit {
					continue
				}
				if votes[i] > votes[best] {
					best = i
				}
			}
			if best != cur {
				assign[v] = best
				sizes[cur]--
				sizes[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return partition.FromVertexAssignment(g, assign, n)
}
