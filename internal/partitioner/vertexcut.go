package partitioner

import (
	"math"

	"adp/internal/graph"
	"adp/internal/partition"
)

// GridVertexCut implements the 2-D hash (grid) vertex-cut of
// GraphBuilder [28]: fragments are arranged in an r×r grid, vertex u
// hashes to row h(u) and vertex v to column h(v); the edge (u,v) is
// placed in the fragment at their intersection. Each vertex's edges
// touch at most 2r−1 fragments, giving the provable replication
// bound.
func GridVertexCut(g *graph.Graph, n int) (*partition.Partition, error) {
	r := int(math.Ceil(math.Sqrt(float64(n))))
	assigner := func(s, d graph.VertexID) int {
		row := int(mix(uint64(s)) % uint64(r))
		col := int(mix(uint64(d)) % uint64(r))
		return (row*r + col) % n
	}
	return partition.FromEdgeAssignment(g, assigner, n)
}

// mix is a 64-bit finaliser (splitmix64) for well-spread hashing of
// dense vertex ids.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HDRFConfig tunes the HDRF streaming vertex-cut partitioner.
type HDRFConfig struct {
	// Lambda weights the balance term against replication affinity.
	// CREP can reach ~3 when both endpoints already live in a
	// fragment, so the default of 4 lets an underloaded fragment win
	// against a fully-affine one; smaller values trade balance for
	// replication.
	Lambda float64
}

// HDRFVertexCut implements High-Degree Replicated First [43]: edges
// stream in order; each edge goes to the fragment maximising a score
// that prefers fragments already holding the lower-degree endpoint
// (replicating high-degree vertices instead) plus a load-balance term.
func HDRFVertexCut(g *graph.Graph, n int, cfg HDRFConfig) (*partition.Partition, error) {
	if cfg.Lambda == 0 {
		cfg.Lambda = 4.0
	}
	nv := g.NumVertices()
	// Partial degree counters, per the streaming formulation.
	pdeg := make([]int, nv)
	inFrag := make([]map[int]bool, nv)
	loads := make([]int, n)
	maxLoad, minLoad := 0, 0

	score := func(u, v graph.VertexID, i int) float64 {
		du, dv := float64(pdeg[u])+1, float64(pdeg[v])+1
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU
		var crep float64
		if inFrag[u] != nil && inFrag[u][i] {
			crep += 1 + (1 - thetaU)
		}
		if inFrag[v] != nil && inFrag[v][i] {
			crep += 1 + (1 - thetaV)
		}
		denom := float64(maxLoad-minLoad) + 1
		cbal := cfg.Lambda * float64(maxLoad-loads[i]) / denom
		return crep + cbal
	}

	assigner := func(s, d graph.VertexID) int {
		best, bestScore := 0, math.Inf(-1)
		for i := 0; i < n; i++ {
			if sc := score(s, d, i); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		pdeg[s]++
		pdeg[d]++
		for _, v := range []graph.VertexID{s, d} {
			if inFrag[v] == nil {
				inFrag[v] = map[int]bool{}
			}
			inFrag[v][best] = true
		}
		loads[best]++
		maxLoad, minLoad = loads[0], loads[0]
		for _, l := range loads[1:] {
			if l > maxLoad {
				maxLoad = l
			}
			if l < minLoad {
				minLoad = l
			}
		}
		return best
	}
	return partition.FromEdgeAssignment(g, assigner, n)
}

// NEConfig tunes the neighbourhood-expansion vertex-cut partitioner.
type NEConfig struct {
	Slack float64 // per-fragment edge budget slack, default 0.05
}

// NEVertexCut implements a neighbourhood-expansion vertex-cut in the
// spirit of Zhang et al. [53]: fragments are grown one at a time from
// a seed by repeatedly absorbing the boundary vertex with the fewest
// unassigned external neighbours and claiming its unassigned incident
// edges, until the fragment's edge budget is met. This maximises
// locality (low fv) at the price of some edge imbalance, matching the
// paper's Table 3 observation (NE: fv 2.7, λv 8.0).
func NEVertexCut(g *graph.Graph, n int, cfg NEConfig) (*partition.Partition, error) {
	if cfg.Slack == 0 {
		cfg.Slack = 0.05
	}
	p := partition.NewEmpty(g, n)
	totalArcs := g.NumEdges()
	if g.Undirected() {
		totalArcs = g.NumUndirectedEdges()
	}
	budget := int((1 + cfg.Slack) * float64(totalArcs) / float64(n))

	nv := g.NumVertices()
	assignedEdge := make(map[uint64]bool, totalArcs)
	edgeKey := func(u, v graph.VertexID) uint64 {
		if g.Undirected() && u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	claimed := make([]bool, nv) // vertex fully processed (all incident edges assigned)

	// unassignedDeg counts incident edges not yet assigned.
	unassignedDeg := make([]int, nv)
	for v := 0; v < nv; v++ {
		unassignedDeg[v] = g.OutDegree(graph.VertexID(v)) + g.InDegree(graph.VertexID(v))
		if g.Undirected() {
			unassignedDeg[v] = g.OutDegree(graph.VertexID(v))
		}
	}

	// claimVertex assigns all still-unassigned edges incident to v to
	// fragment i, returning how many edges were claimed.
	claimVertex := func(i int, v graph.VertexID, boundary map[graph.VertexID]bool) int {
		count := 0
		absorb := func(u, w graph.VertexID) {
			k := edgeKey(u, w)
			if assignedEdge[k] {
				return
			}
			assignedEdge[k] = true
			if g.Undirected() {
				a, b := u, w
				if a > b {
					a, b = b, a
				}
				p.AddEdge(i, a, b)
			} else {
				p.AddArc(i, u, w)
			}
			count++
			unassignedDeg[u]--
			unassignedDeg[w]--
		}
		for _, w := range g.OutNeighbors(v) {
			absorb(v, w)
			if !claimed[w] {
				boundary[w] = true
			}
		}
		for _, w := range g.InNeighbors(v) {
			absorb(w, v)
			if !claimed[w] {
				boundary[w] = true
			}
		}
		claimed[v] = true
		delete(boundary, v)
		return count
	}

	next := 0 // scan cursor for seed selection
	for i := 0; i < n; i++ {
		fragEdges := 0
		boundary := map[graph.VertexID]bool{}
		for fragEdges < budget {
			var pick graph.VertexID
			found := false
			if len(boundary) > 0 {
				// Deterministically choose the boundary vertex with
				// the fewest unassigned incident edges; ties break
				// toward the smaller id, so the map scan order does
				// not matter.
				best := -1
				for v := range boundary {
					if best < 0 || unassignedDeg[v] < unassignedDeg[best] ||
						(unassignedDeg[v] == unassignedDeg[best] && int(v) < best) {
						best = int(v)
					}
				}
				pick, found = graph.VertexID(best), true
			} else {
				for next < nv {
					if !claimed[next] && unassignedDeg[next] > 0 {
						pick, found = graph.VertexID(next), true
						break
					}
					next++
				}
			}
			if !found {
				break
			}
			fragEdges += claimVertex(i, pick, boundary)
		}
		if i == n-1 {
			// Last fragment absorbs everything left.
			for v := 0; v < nv; v++ {
				if unassignedDeg[v] > 0 {
					claimVertex(i, graph.VertexID(v), boundary)
				}
			}
		}
	}
	// Isolated vertices.
	for v := 0; v < nv; v++ {
		if len(p.Copies(graph.VertexID(v))) == 0 {
			p.AddVertex(v%n, graph.VertexID(v))
		}
	}
	return p, nil
}
