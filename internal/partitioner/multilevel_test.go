package partitioner

import (
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
)

func TestMultilevelEdgeCut(t *testing.T) {
	g := testGraph(t)
	p, err := MultilevelEdgeCut(g, 4, MultilevelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsEdgeCut() {
		t.Fatal("multilevel partition not an edge-cut")
	}
	m := p.ComputeMetrics()
	if m.LambdaV > 0.5 {
		t.Errorf("multilevel vertex imbalance λv = %v", m.LambdaV)
	}
	// Multilevel should beat hash on locality.
	hash, _ := HashEdgeCut(g, 4)
	if m.FE >= hash.ComputeMetrics().FE {
		t.Errorf("multilevel fe %v not better than hash %v", m.FE, hash.ComputeMetrics().FE)
	}
}

func TestMultilevelOnGrid(t *testing.T) {
	// Grids coarsen perfectly and region-growing should produce
	// contiguous blocks with low cut.
	g := gen.Grid2D(30, 30)
	p, err := MultilevelEdgeCut(g, 3, MultilevelConfig{CoarsestSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := p.ComputeMetrics()
	// A 30x30 grid cut into 3 parts should replicate well under 30%
	// of arcs.
	if m.FE > 1.3 {
		t.Errorf("grid multilevel cut too large: fe = %v", m.FE)
	}
}

func TestMultilevelCoarseningProgress(t *testing.T) {
	g := gen.ErdosRenyi(2000, 6, true, 8)
	parent, coarse := heavyEdgeMatch(g)
	if coarse.NumVertices() >= g.NumVertices() {
		t.Fatal("matching made no progress on a random graph")
	}
	if len(parent) != g.NumVertices() {
		t.Fatal("parent map wrong length")
	}
	for v, p := range parent {
		if p < 0 || p >= coarse.NumVertices() {
			t.Fatalf("vertex %d has invalid parent %d", v, p)
		}
	}
	if err := coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDBHVertexCut(t *testing.T) {
	g := testGraph(t)
	p, err := DBHVertexCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsVertexCut() {
		t.Fatal("DBH partition not a vertex-cut")
	}
	// DBH's point: replicate hubs, keep low-degree vertices whole. Its
	// fv should beat Grid's.
	grid, _ := GridVertexCut(g, 4)
	if p.ComputeMetrics().FV >= grid.ComputeMetrics().FV {
		t.Errorf("DBH fv %v not better than Grid %v",
			p.ComputeMetrics().FV, grid.ComputeMetrics().FV)
	}
	hub := graph.MaxDegreeVertex(g)
	if p.Replication(hub) == 0 {
		t.Error("DBH did not replicate the hub")
	}
}
