package partitioner

import (
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.PowerLaw(gen.PowerLawConfig{N: 1500, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 77})
}

func TestHashEdgeCut(t *testing.T) {
	g := testGraph(t)
	p, err := HashEdgeCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsEdgeCut() {
		t.Fatal("hash partition not an edge-cut")
	}
	m := p.ComputeMetrics()
	if m.LambdaV > 0.05 {
		t.Errorf("hash edge-cut vertex imbalance λv = %v", m.LambdaV)
	}
}

func TestFennelEdgeCut(t *testing.T) {
	g := testGraph(t)
	p, err := FennelEdgeCut(g, 4, FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsEdgeCut() {
		t.Fatal("fennel partition not an edge-cut")
	}
	m := p.ComputeMetrics()
	if m.LambdaV > 0.25 {
		t.Errorf("fennel vertex imbalance λv = %v beyond slack", m.LambdaV)
	}
	// Fennel should beat hash on locality (fewer replicated arcs).
	hash, _ := HashEdgeCut(g, 4)
	if p.ComputeMetrics().FE >= hash.ComputeMetrics().FE {
		t.Errorf("fennel fe %v not better than hash fe %v", m.FE, hash.ComputeMetrics().FE)
	}
}

func TestLabelPropEdgeCut(t *testing.T) {
	g := testGraph(t)
	p, err := LabelPropEdgeCut(g, 4, LabelPropConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsEdgeCut() {
		t.Fatal("label-prop partition not an edge-cut")
	}
	if m := p.ComputeMetrics(); m.LambdaV > 0.25 {
		t.Errorf("label-prop λv = %v beyond slack", m.LambdaV)
	}
}

func TestGridVertexCut(t *testing.T) {
	g := testGraph(t)
	p, err := GridVertexCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsVertexCut() {
		t.Fatal("grid partition not a vertex-cut")
	}
	// Grid bound: each vertex touches at most 2r−1 fragments (r=2).
	r := 2
	for v := 0; v < g.NumVertices(); v++ {
		if got := len(p.Copies(graph.VertexID(v))); got > 2*r-1 {
			t.Fatalf("vertex %d replicated in %d fragments, grid bound is %d", v, got, 2*r-1)
		}
	}
}

func TestHDRFVertexCut(t *testing.T) {
	g := testGraph(t)
	p, err := HDRFVertexCut(g, 4, HDRFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsVertexCut() {
		t.Fatal("HDRF partition not a vertex-cut")
	}
	if m := p.ComputeMetrics(); m.LambdaE > 0.6 {
		t.Errorf("HDRF edge imbalance λe = %v", m.LambdaE)
	}
}

func TestNEVertexCut(t *testing.T) {
	g := testGraph(t)
	p, err := NEVertexCut(g, 4, NEConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsVertexCut() {
		t.Fatal("NE partition not a vertex-cut")
	}
	// NE's whole point is locality: fv must beat Grid's (Table 3).
	grid, _ := GridVertexCut(g, 4)
	neFV := p.ComputeMetrics().FV
	gridFV := grid.ComputeMetrics().FV
	if neFV >= gridFV {
		t.Errorf("NE fv %v not better than Grid fv %v", neFV, gridFV)
	}
}

func TestNEVertexCutUndirected(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 600, AvgDeg: 5, Exponent: 2.2, Directed: false, Seed: 5})
	p, err := NEVertexCut(g, 3, NEConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsVertexCut() {
		t.Fatal("NE on undirected graph not a vertex-cut")
	}
}

func TestGingerHybrid(t *testing.T) {
	g := testGraph(t)
	p, err := GingerHybrid(g, 4, GingerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ginger scatters hub in-edges: hubs must be replicated while the
	// overall cut stays arc-disjoint (fe = 1).
	if m := p.ComputeMetrics(); m.FE != 1 {
		t.Errorf("ginger fe = %v, want 1", m.FE)
	}
	hub := graph.MaxDegreeVertex(g)
	if p.Replication(hub) == 0 {
		t.Error("highest-degree vertex not split by Ginger")
	}
}

func TestTopoXHybrid(t *testing.T) {
	g := testGraph(t)
	p, err := TopoXHybrid(g, 4, TopoXConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := p.ComputeMetrics(); m.FE != 1 {
		t.Errorf("topox fe = %v, want 1", m.FE)
	}
}

func TestBaselinesRegistry(t *testing.T) {
	g := gen.ErdosRenyi(300, 4, true, 3)
	specs := Baselines()
	if len(specs) != 6 {
		t.Fatalf("expected 6 baselines, got %d", len(specs))
	}
	for _, s := range specs {
		p, err := s.Run(g, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		switch s.Family {
		case EdgeCutFamily:
			if !p.IsEdgeCut() {
				t.Errorf("%s should produce an edge-cut", s.Name)
			}
		case VertexCutFamily:
			if !p.IsVertexCut() {
				t.Errorf("%s should produce a vertex-cut", s.Name)
			}
		}
	}
	if _, ok := ByName("Fennel"); !ok {
		t.Error("ByName(Fennel) missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName invented a partitioner")
	}
}

func TestPartitionersDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(400, 5, true, 9)
	for _, s := range Baselines() {
		p1, err := s.Run(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := s.Run(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if p1.Fragment(i).NumArcs() != p2.Fragment(i).NumArcs() ||
				p1.Fragment(i).NumVertices() != p2.Fragment(i).NumVertices() {
				t.Errorf("%s not deterministic (fragment %d)", s.Name, i)
			}
		}
	}
}

func TestSingleFragment(t *testing.T) {
	g := gen.ErdosRenyi(100, 3, true, 1)
	for _, s := range Baselines() {
		p, err := s.Run(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s n=1: %v", s.Name, err)
		}
		m := p.ComputeMetrics()
		if m.FV != 1 || m.FE != 1 {
			t.Errorf("%s n=1: fv=%v fe=%v, want 1/1", s.Name, m.FV, m.FE)
		}
	}
}

var sinkPartition *partition.Partition

func BenchmarkFennel(b *testing.B) {
	g := testGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := FennelEdgeCut(g, 8, FennelConfig{})
		if err != nil {
			b.Fatal(err)
		}
		sinkPartition = p
	}
}

func BenchmarkNE(b *testing.B) {
	g := testGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NEVertexCut(g, 8, NEConfig{})
		if err != nil {
			b.Fatal(err)
		}
		sinkPartition = p
	}
}

func TestExtrasRegistry(t *testing.T) {
	g := gen.ErdosRenyi(300, 4, true, 4)
	for _, s := range Extras() {
		p, err := s.Run(g, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	if _, ok := ByName("Multilevel"); !ok {
		t.Error("ByName should find extras")
	}
	if _, ok := ByName("DBH"); !ok {
		t.Error("ByName should find DBH")
	}
}

func TestReFennelImprovesOnFennel(t *testing.T) {
	g := testGraph(t)
	single, err := FennelEdgeCut(g, 4, FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := ReFennelEdgeCut(g, 4, 3, FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	if !re.IsEdgeCut() {
		t.Fatal("restreamed partition not an edge-cut")
	}
	// Restreaming must not hurt locality, and usually improves it.
	if re.ComputeMetrics().FE > single.ComputeMetrics().FE*1.02 {
		t.Errorf("ReFennel fe %v worse than single-pass %v",
			re.ComputeMetrics().FE, single.ComputeMetrics().FE)
	}
}
