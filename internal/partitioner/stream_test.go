package partitioner_test

import (
	"runtime"
	"slices"
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partitioner"
)

// TestFennelStreamMatchesBatch pins the streaming Fennel to the batch
// one bit for bit: identical placement on every graph shape and config,
// since the stream's pushed-fragment bookkeeping reconstructs exactly
// the already-assigned-neighbor counts the batch scorer reads.
func TestFennelStreamMatchesBatch(t *testing.T) {
	cfgs := []partitioner.FennelConfig{
		{},
		{Gamma: 1.5, Slack: 1.01}, // tight slack: exercises the at-capacity fallback
		{Gamma: 2.0, Slack: 1.3},
	}
	for _, directed := range []bool{true, false} {
		for seed := int64(0); seed < 3; seed++ {
			g := gen.PowerLaw(gen.PowerLawConfig{N: 400, AvgDeg: 6, Exponent: 2.2, Directed: directed, Seed: seed})
			for _, cfg := range cfgs {
				for _, n := range []int{2, 5, 9} {
					want, err := partitioner.FennelEdgeCut(g, n, cfg)
					if err != nil {
						t.Fatal(err)
					}
					got, err := partitioner.FennelStreamEdgeCut(g, n, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := want.EqualPlacement(got); err != nil {
						t.Fatalf("directed=%v seed=%d n=%d cfg=%+v: stream diverges from batch: %v",
							directed, seed, n, cfg, err)
					}
					if err := got.Validate(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// TestFennelStreamDuringBuild wires FennelStream into BuildStreaming —
// the production ingest path — and checks the partition it produces
// over the finished graph equals the batch Fennel run afterwards.
func TestFennelStreamDuringBuild(t *testing.T) {
	cfg := gen.PowerLawConfig{N: 1200, AvgDeg: 7, Exponent: 2.3, Directed: true, Seed: 4}
	nv, edges := gen.PowerLawChunkedEdges(cfg, 2)
	st := partitioner.NewFennelStream(6, partitioner.FennelConfig{})
	g, err := graph.BuildStreaming(nv, edges, false, graph.LoadOptions{Workers: 2}, st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := st.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := partitioner.FennelEdgeCut(g, 6, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := want.EqualPlacement(p); err != nil {
		t.Fatalf("ingest-time stream diverges from post-hoc batch: %v", err)
	}
}

// TestFennelStreamNotStarted pins the error for using the stream
// without Begin.
func TestFennelStreamNotStarted(t *testing.T) {
	st := partitioner.NewFennelStream(4, partitioner.FennelConfig{})
	g := gen.PowerLaw(gen.PowerLawConfig{N: 10, AvgDeg: 2, Exponent: 2.2, Seed: 1})
	if _, err := st.Partition(g); err == nil {
		t.Fatal("Partition before Begin should error")
	}
}

// TestIngestPipeline is the end-to-end determinism sweep the CI
// ingest-matrix job runs under -race -short: a ~1M-edge chunked
// power-law stream generated, CSR-built, and Fennel-partitioned at
// workers ∈ {1, 4, NumCPU} must be bitwise identical throughout —
// same graph bytes, same assignment, same partition placement.
func TestIngestPipeline(t *testing.T) {
	cfg := gen.PowerLawConfig{N: 125000, AvgDeg: 8, Exponent: 2.3, Directed: true, Seed: 7}
	const frags = 8
	workersSweep := []int{1, 4, runtime.NumCPU()}

	var refGraph *graph.Graph
	var refAssign []int
	for _, w := range workersSweep {
		nv, edges := gen.PowerLawChunkedEdges(cfg, w)
		st := partitioner.NewFennelStream(frags, partitioner.FennelConfig{})
		g, err := graph.BuildStreaming(nv, edges, false, graph.LoadOptions{Workers: w}, st)
		if err != nil {
			t.Fatal(err)
		}
		if refGraph == nil {
			refGraph = g
			refAssign = slices.Clone(st.Assignment())
			if !testing.Short() {
				if err := g.Validate(); err != nil {
					t.Fatal(err)
				}
				p, err := st.Partition(g)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		if g.NumVertices() != refGraph.NumVertices() || g.NumEdges() != refGraph.NumEdges() {
			t.Fatalf("workers=%d: graph shape (%d,%d) vs (%d,%d)",
				w, g.NumVertices(), g.NumEdges(), refGraph.NumVertices(), refGraph.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			if !slices.Equal(g.OutNeighbors(vid), refGraph.OutNeighbors(vid)) ||
				!slices.Equal(g.InNeighbors(vid), refGraph.InNeighbors(vid)) {
				t.Fatalf("workers=%d: adjacency of vertex %d differs from workers=%d",
					w, v, workersSweep[0])
			}
		}
		if !slices.Equal(st.Assignment(), refAssign) {
			t.Fatalf("workers=%d: Fennel assignment differs from workers=%d", w, workersSweep[0])
		}
	}
}
