package partitioner

import (
	"fmt"
	"math"

	"adp/internal/graph"
	"adp/internal/partition"
)

// FennelStream is the one-pass Fennel heuristic decoupled from a
// finished graph: it implements graph.VertexConsumer, so it can run
// *during* ingestion (graph.BuildStreaming hands it each forward star
// the moment it is final, while the in-adjacency still builds).
//
// It reproduces FennelEdgeCut bit for bit. The batch version scores
// fragment i by the count of already-assigned neighbours on either
// edge direction; with vertices streamed in id order, "assigned" means
// id < v, so the count splits into (a) out-neighbours w < v, looked up
// directly, and (b) in-neighbours w < v — exactly the vertices that
// pushed their fragment to v when they were assigned (each w pushes to
// every out-neighbour x > w). No in-adjacency is ever consulted, which
// is what lets the partitioner overlap its construction.
type FennelStream struct {
	n   int
	cfg FennelConfig

	alpha    float64
	capLimit int

	assign     []int
	sizes      []int
	neighborIn []int
	// pushed[x] holds the fragments of x's already-assigned
	// in-neighbours; drained and released at x's own turn.
	pushed [][]int32
}

// NewFennelStream returns a streaming Fennel partitioner over n
// fragments. Feed it to graph.BuildStreaming (it is a VertexConsumer),
// then call Partition.
func NewFennelStream(n int, cfg FennelConfig) *FennelStream {
	cfg.defaults()
	return &FennelStream{n: n, cfg: cfg}
}

// Begin sizes the internal state once the stream's vertex and arc
// counts are known (alpha depends on |E| and |V|, the capacity cap on
// |V|).
func (s *FennelStream) Begin(nv int, m int64) {
	s.alpha = float64(m) * math.Pow(float64(s.n), s.cfg.Gamma-1) / math.Pow(float64(nv), s.cfg.Gamma)
	s.capLimit = int(s.cfg.Slack*float64(nv)/float64(s.n)) + 1
	s.assign = make([]int, nv)
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.sizes = make([]int, s.n)
	s.neighborIn = make([]int, s.n)
	s.pushed = make([][]int32, nv)
}

// Vertex places v. out must be v's final forward star (sorted, deduped,
// loop-free) and calls must arrive in ascending id order — the
// contract BuildStreaming provides.
func (s *FennelStream) Vertex(v graph.VertexID, out []graph.VertexID) {
	for i := range s.neighborIn {
		s.neighborIn[i] = 0
	}
	for _, w := range out {
		if w < v {
			s.neighborIn[s.assign[w]]++
		}
	}
	for _, b := range s.pushed[v] {
		s.neighborIn[b]++
	}
	s.pushed[v] = nil
	best, bestScore := -1, math.Inf(-1)
	for i := 0; i < s.n; i++ {
		if s.sizes[i] >= s.capLimit {
			continue
		}
		score := float64(s.neighborIn[i]) - s.alpha*s.cfg.Gamma*math.Pow(float64(s.sizes[i]), s.cfg.Gamma-1)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 { // every fragment at capacity: put in the smallest
		for i := 0; i < s.n; i++ {
			if best < 0 || s.sizes[i] < s.sizes[best] {
				best = i
			}
		}
	}
	s.assign[int(v)] = best
	s.sizes[best]++
	for _, w := range out {
		if w > v {
			s.pushed[w] = append(s.pushed[w], int32(best))
		}
	}
}

// Assignment exposes the raw vertex→fragment assignment (valid after
// the stream completes).
func (s *FennelStream) Assignment() []int { return s.assign }

// Partition materialises the edge-cut partition over the finished
// graph using the flat (frozen compiled-form) constructor.
func (s *FennelStream) Partition(g *graph.Graph) (*partition.Partition, error) {
	if s.assign == nil {
		return nil, fmt.Errorf("partitioner: FennelStream never streamed (Begin not called)")
	}
	return partition.FromVertexAssignmentFlat(g, s.assign, s.n)
}

// FennelStreamEdgeCut runs the streaming Fennel over an already-built
// graph — the bitwise-equality bridge between FennelEdgeCut and the
// ingest-time streaming path, pinned by the determinism tests.
func FennelStreamEdgeCut(g *graph.Graph, n int, cfg FennelConfig) (*partition.Partition, error) {
	st := NewFennelStream(n, cfg)
	st.Begin(g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		st.Vertex(graph.VertexID(v), g.OutNeighbors(graph.VertexID(v)))
	}
	return st.Partition(g)
}
