package partitioner

import (
	"adp/internal/graph"
	"adp/internal/partition"
)

// GingerConfig tunes the Ginger hybrid baseline.
type GingerConfig struct {
	DegreeThreshold int // vertices with in-degree above this are split, default 2·avg
	Fennel          FennelConfig
}

// GingerHybrid implements the Ginger partitioner of PowerLyra [16]:
// a Fennel-style placement decides a home fragment per vertex; a
// low-degree vertex keeps all its in-edges at its home (locality),
// while a high-degree vertex's in-edges are scattered to the source's
// home fragment (splitting the hub, vertex-cut style). The result is
// a hybrid partition with fe = 1.
func GingerHybrid(g *graph.Graph, n int, cfg GingerConfig) (*partition.Partition, error) {
	if cfg.DegreeThreshold == 0 {
		cfg.DegreeThreshold = int(2*g.AvgDegree()) + 1
	}
	// Reuse the Fennel placement as the "home" assignment.
	base, err := FennelEdgeCut(g, n, cfg.Fennel)
	if err != nil {
		return nil, err
	}
	home := make([]int, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		home[v] = base.Owner(graph.VertexID(v))
	}
	p := partition.NewEmpty(g, n)
	g.Edges(func(s, d graph.VertexID) bool {
		if g.Undirected() && s > d {
			return true
		}
		if g.InDegree(d) > cfg.DegreeThreshold {
			p.AddEdge(home[s], s, d) // split the high-degree target
		} else {
			p.AddEdge(home[d], s, d) // co-locate with the low-degree target
		}
		return true
	})
	for v := 0; v < g.NumVertices(); v++ {
		if len(p.Copies(graph.VertexID(v))) == 0 {
			p.AddVertex(home[v], graph.VertexID(v))
		}
		p.SetOwner(graph.VertexID(v), home[v])
	}
	return p, nil
}

// TopoXConfig tunes the TopoX hybrid baseline.
type TopoXConfig struct {
	DegreeThreshold int // split threshold for hubs, default 4·avg
	SuperNodeSize   int // max vertices merged into one super node, default 4
}

// TopoXHybrid implements the topology-refactorisation idea of TopoX
// [35]: neighbouring low-degree vertices are merged into super nodes
// so that they are never split, super nodes are placed round-robin by
// accumulated load, and high-degree vertices are split across
// fragments like Ginger.
func TopoXHybrid(g *graph.Graph, n int, cfg TopoXConfig) (*partition.Partition, error) {
	if cfg.DegreeThreshold == 0 {
		cfg.DegreeThreshold = int(4*g.AvgDegree()) + 1
	}
	if cfg.SuperNodeSize == 0 {
		cfg.SuperNodeSize = 4
	}
	nv := g.NumVertices()
	isHub := func(v graph.VertexID) bool {
		return g.InDegree(v)+g.OutDegree(v) > cfg.DegreeThreshold
	}
	// Greedy super-node construction: walk vertices in id order; an
	// unmerged low-degree vertex starts a super node and absorbs
	// unmerged low-degree neighbours up to the size cap.
	super := make([]int, nv)
	for v := range super {
		super[v] = -1
	}
	numSuper := 0
	for v := 0; v < nv; v++ {
		if super[v] >= 0 || isHub(graph.VertexID(v)) {
			continue
		}
		id := numSuper
		numSuper++
		super[v] = id
		size := 1
		absorb := func(w graph.VertexID) {
			if size < cfg.SuperNodeSize && super[w] < 0 && !isHub(w) {
				super[w] = id
				size++
			}
		}
		for _, w := range g.OutNeighbors(graph.VertexID(v)) {
			absorb(w)
		}
		for _, w := range g.InNeighbors(graph.VertexID(v)) {
			absorb(w)
		}
	}
	// Hubs get singleton super ids too, so every vertex has a home.
	for v := 0; v < nv; v++ {
		if super[v] < 0 {
			super[v] = numSuper
			numSuper++
		}
	}
	// Place super nodes: least-loaded fragment by accumulated degree.
	superLoad := make([]int, numSuper)
	for v := 0; v < nv; v++ {
		superLoad[super[v]] += g.InDegree(graph.VertexID(v)) + g.OutDegree(graph.VertexID(v))
	}
	fragLoad := make([]int, n)
	superHome := make([]int, numSuper)
	for s := 0; s < numSuper; s++ {
		best := 0
		for i := 1; i < n; i++ {
			if fragLoad[i] < fragLoad[best] {
				best = i
			}
		}
		superHome[s] = best
		fragLoad[best] += superLoad[s]
	}
	home := make([]int, nv)
	for v := 0; v < nv; v++ {
		home[v] = superHome[super[v]]
	}
	p := partition.NewEmpty(g, n)
	g.Edges(func(s, d graph.VertexID) bool {
		if g.Undirected() && s > d {
			return true
		}
		if isHub(d) {
			p.AddEdge(home[s], s, d)
		} else {
			p.AddEdge(home[d], s, d)
		}
		return true
	})
	for v := 0; v < nv; v++ {
		if len(p.Copies(graph.VertexID(v))) == 0 {
			p.AddVertex(home[v], graph.VertexID(v))
		}
		p.SetOwner(graph.VertexID(v), home[v])
	}
	return p, nil
}
