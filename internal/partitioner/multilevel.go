package partitioner

import (
	"sort"

	"adp/internal/graph"
	"adp/internal/partition"
)

// MultilevelConfig tunes the METIS-style multilevel edge-cut
// partitioner.
type MultilevelConfig struct {
	CoarsestSize int     // stop coarsening below this many vertices, default 200·n
	Slack        float64 // size cap (1+Slack)·avg during refinement, default 0.1
}

// MultilevelEdgeCut implements the classic multilevel scheme the paper
// cites via METIS/ParMETIS [29-32]: coarsen by heavy-edge matching
// until the graph is small, split the coarsest graph greedily by BFS
// region growing, then project back level by level with a
// label-propagation refinement pass at each level.
func MultilevelEdgeCut(g *graph.Graph, n int, cfg MultilevelConfig) (*partition.Partition, error) {
	if cfg.CoarsestSize == 0 {
		cfg.CoarsestSize = 200 * n
	}
	if cfg.Slack == 0 {
		cfg.Slack = 0.1
	}

	// Coarsening: levels[k] maps each vertex of level k to its parent
	// in level k+1.
	var levels []level
	cur := g
	for cur.NumVertices() > cfg.CoarsestSize {
		parent, coarse := heavyEdgeMatch(cur)
		if coarse.NumVertices() >= cur.NumVertices() {
			break // matching made no progress (e.g. star graphs)
		}
		levels = append(levels, level{g: cur, parent: parent})
		cur = coarse
	}

	// Coarse vertex weights = number of original vertices represented,
	// obtained by pushing unit weights through the parent maps.
	weight := make([]int, g.NumVertices())
	for i := range weight {
		weight[i] = 1
	}
	for _, lv := range levels {
		next := make([]int, maxParent(lv.parent)+1)
		for v, p := range lv.parent {
			next[p] += weight[v]
		}
		weight = next
	}

	// Initial partition of the coarsest graph: BFS region growing into
	// n parts of roughly equal weight.
	assign := growRegions(cur, n, weight)

	// Uncoarsening with refinement at every level.
	for k := len(levels) - 1; k >= 0; k-- {
		lv := levels[k]
		fine := make([]int, lv.g.NumVertices())
		for v, p := range lv.parent {
			fine[v] = assign[p]
		}
		assign = refineAssignment(lv.g, fine, n, cfg.Slack)
	}
	return partition.FromVertexAssignment(g, assign, n)
}

// level is one coarsening step: its graph and the map from its
// vertices to the next (coarser) level.
type level struct {
	g      *graph.Graph
	parent []int
}

func maxParent(parent []int) int {
	m := 0
	for _, p := range parent {
		if p > m {
			m = p
		}
	}
	return m
}

// heavyEdgeMatch matches each unmatched vertex with its most-connected
// unmatched neighbour (here: first unmatched neighbour in degree
// order, a standard HEM approximation for unweighted graphs) and
// returns the parent mapping plus the coarse graph.
func heavyEdgeMatch(g *graph.Graph) ([]int, *graph.Graph) {
	nv := g.NumVertices()
	parent := make([]int, nv)
	for i := range parent {
		parent[i] = -1
	}
	// Visit vertices in increasing degree order: matching low-degree
	// vertices first preserves more structure.
	order := make([]int, nv)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(graph.VertexID(order[a])), g.Degree(graph.VertexID(order[b]))
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	next := 0
	for _, v := range order {
		if parent[v] >= 0 {
			continue
		}
		mate := -1
		try := func(w graph.VertexID) {
			if mate < 0 && int(w) != v && parent[w] < 0 {
				mate = int(w)
			}
		}
		for _, w := range g.OutNeighbors(graph.VertexID(v)) {
			try(w)
		}
		for _, w := range g.InNeighbors(graph.VertexID(v)) {
			try(w)
		}
		parent[v] = next
		if mate >= 0 {
			parent[mate] = next
		}
		next++
	}
	cb := graph.NewBuilder(next)
	if g.Undirected() {
		cb = graph.NewUndirectedBuilder(next)
	}
	g.Edges(func(u, v graph.VertexID) bool {
		if g.Undirected() && u > v {
			return true
		}
		pu, pv := parent[u], parent[v]
		if pu != pv {
			cb.AddEdge(graph.VertexID(pu), graph.VertexID(pv))
		}
		return true
	})
	return parent, cb.MustBuild()
}

// growRegions BFS-grows n regions of roughly equal weight over the
// coarsest graph.
func growRegions(g *graph.Graph, n int, weight []int) []int {
	nv := g.NumVertices()
	assign := make([]int, nv)
	for i := range assign {
		assign[i] = -1
	}
	total := 0
	for _, w := range weight {
		total += w
	}
	target := (total + n - 1) / n
	frag := 0
	load := 0
	var queue []graph.VertexID
	pop := func() (graph.VertexID, bool) {
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if assign[v] < 0 {
				return v, true
			}
		}
		return 0, false
	}
	seedFrom := 0
	for {
		v, ok := pop()
		if !ok {
			for seedFrom < nv && assign[seedFrom] >= 0 {
				seedFrom++
			}
			if seedFrom == nv {
				break
			}
			v = graph.VertexID(seedFrom)
		}
		assign[v] = frag
		load += weight[v]
		for _, w := range g.OutNeighbors(v) {
			queue = append(queue, w)
		}
		for _, w := range g.InNeighbors(v) {
			queue = append(queue, w)
		}
		if load >= target && frag < n-1 {
			frag++
			load = 0
			queue = queue[:0]
		}
	}
	return assign
}

// refineAssignment runs a size-constrained label-propagation sweep at
// one uncoarsening level.
func refineAssignment(g *graph.Graph, assign []int, n int, slack float64) []int {
	nv := g.NumVertices()
	sizes := make([]int, n)
	for _, a := range assign {
		sizes[a]++
	}
	capLimit := int((1+slack)*float64(nv)/float64(n)) + 1
	votes := make([]int, n)
	for pass := 0; pass < 2; pass++ {
		moved := 0
		for v := 0; v < nv; v++ {
			for i := range votes {
				votes[i] = 0
			}
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				votes[assign[w]]++
			}
			for _, w := range g.InNeighbors(graph.VertexID(v)) {
				votes[assign[w]]++
			}
			cur := assign[v]
			best := cur
			for i := 0; i < n; i++ {
				if i != cur && sizes[i] < capLimit && votes[i] > votes[best] {
					best = i
				}
			}
			if best != cur {
				assign[v] = best
				sizes[cur]--
				sizes[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return assign
}

// DBHVertexCut implements degree-based hashing (Xie et al.): each edge
// is assigned by hashing its lower-degree endpoint, so high-degree
// vertices are the ones replicated. A one-line but strong vertex-cut
// baseline.
func DBHVertexCut(g *graph.Graph, n int) (*partition.Partition, error) {
	assigner := func(s, d graph.VertexID) int {
		pick := s
		if g.Degree(d) < g.Degree(s) || (g.Degree(d) == g.Degree(s) && d < s) {
			pick = d
		}
		return int(mix(uint64(pick)) % uint64(n))
	}
	return partition.FromEdgeAssignment(g, assigner, n)
}
