// Package testutil holds helpers shared by the chaos suites. It is
// imported only from _test files; keep it free of production imports.
package testutil

import (
	"net/http"
	"runtime"
	"time"
)

// GoroutineBaseline snapshots the current goroutine count after a GC.
// Call it after warming long-lived helpers (engine pools, HTTP
// transports) so they land inside the baseline, then hand the result to
// CheckGoroutines once the system under test is torn down.
func GoroutineBaseline() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// CheckGoroutines fails t unless the goroutine count settles back to
// within slack of base before the deadline (5s). Shutdown is
// asynchronous — connection teardown, pool reaping, timer expiry — so
// the check polls instead of sampling once, and dumps all stacks on
// failure so the leaked goroutine is identifiable.
func CheckGoroutines(t TB, base, slack int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines grew from %d to %d\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TB is the slice of testing.TB these helpers need; the indirection
// keeps testutil importable outside _test files without dragging the
// testing package into production binaries' import graphs.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}
