package gen

import (
	"testing"

	"adp/internal/graph"
)

func TestPowerLawDeterministic(t *testing.T) {
	cfg := PowerLawConfig{N: 500, AvgDeg: 6, Exponent: 2.2, Directed: true, Seed: 9}
	a, b := PowerLaw(cfg), PowerLaw(cfg)
	if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
		t.Fatal("generator not deterministic")
	}
}

func TestPowerLawShape(t *testing.T) {
	g := PowerLaw(PowerLawConfig{N: 2000, AvgDeg: 10, Exponent: 2.0, Directed: true, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy skew: the max degree should dwarf the average.
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 5*g.AvgDegree() {
		t.Fatalf("power-law graph not skewed: max in-degree %d, avg %f", maxDeg, g.AvgDegree())
	}
	// No isolated vertices.
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.VertexID(v)) == 0 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
}

func TestPowerLawUndirected(t *testing.T) {
	g := PowerLaw(PowerLawConfig{N: 300, AvgDeg: 4, Exponent: 2.3, Directed: false, Seed: 5})
	if !g.Undirected() {
		t.Fatal("expected undirected graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 8, true, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := float64(g.NumEdges())
	if m < 6000 || m > 8100 {
		t.Fatalf("ER edge count %v far from expected ~8000", m)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 5)
	if g.NumVertices() != 20 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// 4x5 grid: horizontal 4*4=16, vertical 3*5=15 undirected edges.
	if g.NumUndirectedEdges() != 31 {
		t.Fatalf("undirected edges = %d, want 31", g.NumUndirectedEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corner degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(graph.VertexID(1*5+1)) != 4 {
		t.Fatalf("interior degree = %d", g.Degree(6))
	}
}

func TestCliqueCollection(t *testing.T) {
	g := CliqueCollection([]int{3, 4, 2})
	if g.NumVertices() != 9 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// K3 + K4 + K2 = 3 + 6 + 1 undirected edges.
	if g.NumUndirectedEdges() != 10 {
		t.Fatalf("edges = %d, want 10", g.NumUndirectedEdges())
	}
	_, comps := graph.ConnectedComponents(g)
	if comps != 3 {
		t.Fatalf("components = %d, want 3", comps)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 10, AvgDeg: 8, A: 0.57, B: 0.19, C: 0.19, Directed: true, Seed: 2})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
}

func TestDatasetsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("datasets are large for -short")
	}
	for name, f := range map[string]func() *graph.Graph{
		"socialSmall": SocialSmall,
		"roadLike":    RoadLike,
	} {
		g := f()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
}

func TestTrainingGraphsDiverse(t *testing.T) {
	gs := TrainingGraphs()
	if len(gs) != 10 {
		t.Fatalf("want 10 training graphs, got %d", len(gs))
	}
	for i, g := range gs {
		if err := g.Validate(); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

func TestScaledGrows(t *testing.T) {
	g1, g2 := Scaled(1), Scaled(2)
	if g2.NumVertices() != 2*g1.NumVertices() {
		t.Fatalf("Scaled(2) has %d vertices, Scaled(1) has %d", g2.NumVertices(), g1.NumVertices())
	}
	if g2.NumEdges() < g1.NumEdges() {
		t.Fatal("Scaled(2) has fewer edges than Scaled(1)")
	}
}
