package gen

import (
	"math"
	"math/rand"

	"adp/internal/graph"
	"adp/internal/pool"
)

// Chunked generation: PowerLaw draws every sample from one sequential
// rng, so it cannot parallelise without changing its output. The
// chunked variant below fixes the sample space differently — the edge
// stream is cut into fixed-size sample chunks, each driven by an rng
// seeded from (Seed, chunk index) — so chunk c's edges are a pure
// function of the config, never of the worker count or schedule.
// PowerLawChunked(cfg, w) is therefore bitwise identical for every w,
// which the ingest determinism sweep pins.

// genChunkSamples is the fixed number of edge samples per generation
// chunk; a function of the config only.
const genChunkSamples = 1 << 16

// PowerLawChunkedEdges generates the Chung–Lu edge stream of
// PowerLawConfig in parallel chunks and returns the raw edges (self
// loops already skipped, duplicates retained — Build dedups). The
// slice layout and content depend only on cfg.
func PowerLawChunkedEdges(cfg PowerLawConfig, workers int) (int, []graph.Edge) {
	n := cfg.N
	weights := make([]float64, n)
	var total float64
	alpha := 1.0 / (cfg.Exponent - 1.0)
	for i := 0; i < n; i++ {
		weights[i] = math.Pow(float64(i+1), -alpha)
		total += weights[i]
	}
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	sampleWith := func(rng *rand.Rand) graph.VertexID {
		x := rng.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.VertexID(lo)
	}
	m := int(float64(n) * cfg.AvgDeg)
	nchunks := (m + genChunkSamples - 1) / genChunkSamples
	runs := make([][]graph.Edge, nchunks)
	pl := pool.New(workers)
	defer pl.Close()
	pl.Run(nchunks, func(c int) {
		lo, hi := c*genChunkSamples, min((c+1)*genChunkSamples, m)
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(c)*0x9E3779B97F4A7C15)))
		run := make([]graph.Edge, 0, hi-lo)
		for i := lo; i < hi; i++ {
			u, v := sampleWith(rng), sampleWith(rng)
			if u == v {
				continue
			}
			run = append(run, graph.Edge{Src: u, Dst: v})
		}
		runs[c] = run
	})
	edges := make([]graph.Edge, 0, m)
	for _, r := range runs {
		edges = append(edges, r...)
	}
	// Isolated-vertex fixup, sequential and seeded separately so it is
	// schedule-independent: any vertex no sampled edge touched gets one
	// outgoing edge to a sampled hub.
	touched := make([]bool, n)
	for _, e := range edges {
		touched[e.Src] = true
		touched[e.Dst] = true
	}
	fixRng := rand.New(rand.NewSource(cfg.Seed + 1))
	for v := 0; v < n; v++ {
		if !touched[v] {
			w := sampleWith(fixRng)
			if w == graph.VertexID(v) {
				w = graph.VertexID((v + 1) % n)
			}
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: w})
		}
	}
	return n, edges
}

// PowerLawChunked builds the chunked-generation power-law graph with a
// parallel CSR build. Output is a pure function of cfg — identical for
// every workers value — but differs from PowerLaw(cfg), whose stream
// comes from one sequential rng.
func PowerLawChunked(cfg PowerLawConfig, workers int) *graph.Graph {
	n, edges := PowerLawChunkedEdges(cfg, workers)
	pl := pool.New(workers)
	defer pl.Close()
	g, err := graph.FromEdgesParallel(n, edges, !cfg.Directed, pl)
	if err != nil {
		// Generated endpoints are in range by construction.
		panic(err)
	}
	return g
}
