package gen

import (
	"testing"

	"adp/internal/graph"
)

func TestSBMStructure(t *testing.T) {
	cfg := SBMConfig{Communities: 4, CommunitySize: 100, IntraDeg: 8, InterDeg: 1, Directed: false, Seed: 3}
	g := SBM(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 400 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Most edges must be intra-community.
	var intra, inter int64
	g.Edges(func(u, v graph.VertexID) bool {
		if cfg.Community(u) == cfg.Community(v) {
			intra++
		} else {
			inter++
		}
		return true
	})
	if intra < 4*inter {
		t.Fatalf("community structure weak: %d intra vs %d inter", intra, inter)
	}
}

// The planted structure must be exploitable: the multilevel
// partitioner's cut on an SBM should be far below a hash partition's.
func TestSBMCommunityRecovery(t *testing.T) {
	cfg := SBMConfig{Communities: 3, CommunitySize: 150, IntraDeg: 10, InterDeg: 0.5, Directed: false, Seed: 7}
	g := SBM(cfg)
	// Count cross-fragment arcs under the planted assignment: near
	// optimal by construction.
	planted := 0
	g.Edges(func(u, v graph.VertexID) bool {
		if cfg.Community(u) != cfg.Community(v) {
			planted++
		}
		return true
	})
	hash := 0
	g.Edges(func(u, v graph.VertexID) bool {
		if int(u)%3 != int(v)%3 {
			hash++
		}
		return true
	})
	if planted*4 > hash {
		t.Fatalf("planted cut %d not far below hash cut %d", planted, hash)
	}
}

func TestSBMDeterministic(t *testing.T) {
	cfg := SBMConfig{Communities: 2, CommunitySize: 50, IntraDeg: 4, InterDeg: 1, Directed: true, Seed: 11}
	a, b := SBM(cfg), SBM(cfg)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("SBM not deterministic")
	}
}
