package gen

import "adp/internal/graph"

// The paper evaluates on liveJournal (4.8M/68M), Twitter (42M/1.5B),
// UKWeb (106M/3.7B) and a US road network. Those datasets are
// proprietary-scale downloads; this reproduction substitutes seeded
// synthetic stand-ins roughly 1000× smaller that preserve the
// properties the experiments depend on: degree-distribution skew
// (Twitter ≫ liveJournal), community structure (UKWeb) and high
// diameter with uniform degree (traffic). See DESIGN.md.

// SocialSmall is the liveJournal stand-in: a moderately skewed
// power-law social graph.
func SocialSmall() *graph.Graph {
	return PowerLaw(PowerLawConfig{N: 6000, AvgDeg: 9, Exponent: 2.4, Directed: true, Seed: 41})
}

// TwitterLike is the Twitter stand-in: a heavily skewed power-law
// graph whose hubs dominate CN/TC workloads.
func TwitterLike() *graph.Graph {
	return PowerLaw(PowerLawConfig{N: 10000, AvgDeg: 12, Exponent: 2.05, Directed: true, Seed: 42})
}

// WebLike is the UKWeb stand-in: an RMAT graph with community
// structure and skew.
func WebLike() *graph.Graph {
	return RMAT(RMATConfig{Scale: 13, AvgDeg: 10, A: 0.57, B: 0.19, C: 0.19, Directed: true, Seed: 43})
}

// RoadLike is the traffic stand-in: a high-diameter 2-D grid.
func RoadLike() *graph.Graph {
	return Grid2D(70, 70)
}

// Scaled returns a family of synthetic graphs for the Exp-5
// scalability sweep: factor f yields a power-law graph with f×|V| and
// f×|E| of the base size, mirroring the paper's |G| to 5|G| sweep.
func Scaled(factor int) *graph.Graph {
	return PowerLaw(PowerLawConfig{
		N:        3000 * factor,
		AvgDeg:   10,
		Exponent: 2.2,
		Directed: true,
		Seed:     100 + int64(factor),
	})
}

// TrainingGraphs returns the 10 diverse graphs the cost-model training
// harness runs algorithms on (Section 4: "we impose no restrictions on
// either graphs used in the training or how the graphs are
// partitioned").
func TrainingGraphs() []*graph.Graph {
	return []*graph.Graph{
		PowerLaw(PowerLawConfig{N: 3000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 1}),
		PowerLaw(PowerLawConfig{N: 5000, AvgDeg: 12, Exponent: 2.5, Directed: true, Seed: 2}),
		PowerLaw(PowerLawConfig{N: 4000, AvgDeg: 10, Exponent: 1.9, Directed: true, Seed: 3}),
		ErdosRenyi(4000, 10, true, 4),
		ErdosRenyi(2500, 6, true, 5),
		RMAT(RMATConfig{Scale: 12, AvgDeg: 10, A: 0.57, B: 0.19, C: 0.19, Directed: true, Seed: 6}),
		RMAT(RMATConfig{Scale: 11, AvgDeg: 14, A: 0.45, B: 0.25, C: 0.15, Directed: true, Seed: 7}),
		Grid2D(50, 60),
		PowerLaw(PowerLawConfig{N: 6000, AvgDeg: 16, Exponent: 2.2, Directed: true, Seed: 8}),
		ErdosRenyi(3500, 14, true, 9),
	}
}
