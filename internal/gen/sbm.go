package gen

import (
	"math/rand"

	"adp/internal/graph"
)

// SBMConfig parameterises a stochastic block model: k communities of
// equal size with dense intra-community and sparse inter-community
// edges — the planted-partition structure that locality-seeking
// partitioners (NE, multilevel, label propagation) exploit.
type SBMConfig struct {
	Communities   int     // k
	CommunitySize int     // vertices per community
	IntraDeg      float64 // expected within-community degree
	InterDeg      float64 // expected cross-community degree
	Directed      bool
	Seed          int64
}

// SBM generates a stochastic-block-model graph.
func SBM(cfg SBMConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Communities * cfg.CommunitySize
	var b *graph.Builder
	if cfg.Directed {
		b = graph.NewBuilder(n)
	} else {
		b = graph.NewUndirectedBuilder(n)
	}
	pickIn := func(c int) graph.VertexID {
		return graph.VertexID(c*cfg.CommunitySize + rng.Intn(cfg.CommunitySize))
	}
	intra := int(float64(n) * cfg.IntraDeg)
	for i := 0; i < intra; i++ {
		c := rng.Intn(cfg.Communities)
		u, v := pickIn(c), pickIn(c)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	inter := int(float64(n) * cfg.InterDeg)
	for i := 0; i < inter; i++ {
		c1 := rng.Intn(cfg.Communities)
		c2 := rng.Intn(cfg.Communities)
		if c1 == c2 {
			c2 = (c2 + 1) % cfg.Communities
		}
		b.AddEdge(pickIn(c1), pickIn(c2))
	}
	return b.MustBuild()
}

// Community returns the planted community of v under the given config.
func (cfg SBMConfig) Community(v graph.VertexID) int {
	return int(v) / cfg.CommunitySize
}
