// Package gen provides deterministic synthetic graph generators used
// throughout the reproduction: power-law social-network stand-ins for
// the paper's liveJournal/Twitter/UKWeb datasets, Erdős–Rényi and RMAT
// graphs for cost-model training diversity, 2-D grids as road-network
// stand-ins (the paper's traffic dataset), and clique collections for
// the Theorem-1 NP-reduction instances.
//
// All generators are pure functions of their parameters and seed.
package gen

import (
	"math"
	"math/rand"

	"adp/internal/graph"
)

// PowerLawConfig parameterises a Chung–Lu style power-law generator.
type PowerLawConfig struct {
	N        int     // number of vertices
	AvgDeg   float64 // target average out-degree
	Exponent float64 // power-law exponent (2.0–3.0 typical; lower = heavier skew)
	Directed bool    // if false, the result is symmetrised
	Seed     int64
}

// PowerLaw generates a graph whose degree sequence follows a power
// law: vertex i receives weight proportional to (i+1)^(-1/(Exponent-1))
// and edges are sampled with probability proportional to the product
// of endpoint weights (Chung–Lu model). The expected number of arcs is
// N*AvgDeg.
func PowerLaw(cfg PowerLawConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	weights := make([]float64, n)
	var total float64
	alpha := 1.0 / (cfg.Exponent - 1.0)
	for i := 0; i < n; i++ {
		weights[i] = math.Pow(float64(i+1), -alpha)
		total += weights[i]
	}
	// Cumulative distribution for endpoint sampling.
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	sample := func() graph.VertexID {
		x := rng.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.VertexID(lo)
	}
	m := int(float64(n) * cfg.AvgDeg)
	var b *graph.Builder
	if cfg.Directed {
		b = graph.NewBuilder(n)
	} else {
		b = graph.NewUndirectedBuilder(n)
	}
	for i := 0; i < m; i++ {
		u, v := sample(), sample()
		if u == v {
			continue
		}
		b.AddEdge(u, v)
	}
	// Guarantee no isolated vertices: attach stragglers to a sampled
	// hub so WCC/SSSP runs touch the whole graph.
	g0 := b.MustBuild()
	for v := 0; v < n; v++ {
		if g0.OutDegree(graph.VertexID(v)) == 0 && g0.InDegree(graph.VertexID(v)) == 0 {
			b.AddEdge(graph.VertexID(v), sample())
		}
	}
	return b.MustBuild()
}

// ErdosRenyi generates a uniform random directed graph with
// approximately n*avgDeg arcs.
func ErdosRenyi(n int, avgDeg float64, directed bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var b *graph.Builder
	if directed {
		b = graph.NewBuilder(n)
	} else {
		b = graph.NewUndirectedBuilder(n)
	}
	m := int(float64(n) * avgDeg)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.MustBuild()
}

// Grid2D generates a rows×cols undirected grid: the road-network
// stand-in with high diameter and uniform low degree.
func Grid2D(rows, cols int) *graph.Graph {
	b := graph.NewUndirectedBuilder(rows * cols)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// CliqueCollection generates the Theorem-1 reduction graph: a disjoint
// union of cliques K_{sizes[0]}, K_{sizes[1]}, ... Used by the
// NP-completeness sanity tests.
func CliqueCollection(sizes []int) *graph.Graph {
	n := 0
	for _, s := range sizes {
		n += s
	}
	b := graph.NewUndirectedBuilder(n)
	base := 0
	for _, s := range sizes {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdge(graph.VertexID(base+i), graph.VertexID(base+j))
			}
		}
		base += s
	}
	return b.MustBuild()
}

// RMATConfig parameterises a recursive-matrix generator.
type RMATConfig struct {
	Scale    int // 2^Scale vertices
	AvgDeg   float64
	A, B, C  float64 // quadrant probabilities; D = 1-A-B-C
	Directed bool
	Seed     int64
}

// RMAT generates a Kronecker-style graph; with the classic
// (0.57,0.19,0.19) parameters it produces community structure and a
// skewed degree distribution similar to web crawls.
func RMAT(cfg RMATConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 1 << cfg.Scale
	m := int(float64(n) * cfg.AvgDeg)
	var b *graph.Builder
	if cfg.Directed {
		b = graph.NewBuilder(n)
	} else {
		b = graph.NewUndirectedBuilder(n)
	}
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < cfg.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: nothing set
			case r < cfg.A+cfg.B:
				v |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(v))
	}
	return b.MustBuild()
}
