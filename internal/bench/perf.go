package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/refine"
	"adp/internal/store"
)

// PerfResult is one benchmark measurement in machine-readable form.
type PerfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfBaseline records a pinned reference measurement a result is
// compared against.
type PerfBaseline struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Note        string  `json:"note"`
}

// PerfReport is the BENCH_N.json payload: the perf trajectory entry
// this revision contributes.
type PerfReport struct {
	Schema     string         `json:"schema"`
	GoVersion  string         `json:"go_version"`
	GoMaxProcs int            `json:"go_max_procs"`
	Baselines  []PerfBaseline `json:"baselines"`
	Results    []PerfResult   `json:"results"`
	// EngineRunSpeedup is engine_run ns/op of the pinned pre-CSR
	// baseline divided by this build's engine_run ns/op.
	EngineRunSpeedup float64 `json:"engine_run_speedup_vs_baseline"`
	// RefineE2HSpeedup is refine_e2h ns/op of the pinned pre-kernel
	// baseline (map-backed tracker, interpreted Model.Eval) divided by
	// this build's refine_e2h ns/op.
	RefineE2HSpeedup float64 `json:"refine_e2h_speedup_vs_baseline"`
	// SteadyStateAllocsPerSuperstep is the marginal heap allocations of
	// one extra superstep of the PR workload on a warmed serial
	// cluster; the flat message plane keeps it at zero.
	SteadyStateAllocsPerSuperstep float64 `json:"steady_state_allocs_per_superstep"`
	// ProbeSuperstepAllocs is the marginal heap allocations of one
	// parallelMigrate superstep on warmed per-run scratch; the flat
	// probe plane keeps it at zero.
	ProbeSuperstepAllocs float64 `json:"probe_superstep_allocs"`
	// ServeQPS is the closed-loop mixed-traffic throughput of the
	// serving daemon on the reference graph (the ≥1000 QPS acceptance
	// floor of the serving plane).
	ServeQPS float64 `json:"serve_qps"`
	// ServeReadP99Ms / ServeReadP99NoWriterMs are the open-loop vertex
	// read p99 latencies with and without a concurrent /updates writer
	// swapping epochs — writers must never block readers, so the first
	// stays within 2x of the second.
	ServeReadP99Ms         float64 `json:"serve_read_p99_ms"`
	ServeReadP99NoWriterMs float64 `json:"serve_read_p99_nowriter_ms"`
	// DriftRecoverMs is the self-healing latency: wall milliseconds
	// from a structural drift injected through the live update path to
	// the maintenance loop's first validated epoch promotion.
	DriftRecoverMs float64 `json:"drift_recover_ms"`
	// IngestMEdgesPerSec is the end-to-end streaming ingest throughput
	// of the ingest_10m series (chunked generation → parallel CSR build
	// → streaming Fennel → flat partition) in millions of edges per
	// second.
	IngestMEdgesPerSec float64 `json:"ingest_medges_per_sec"`
	// EpochPublishSpeedup is epoch_publish_fullclone ns/op divided by
	// epoch_publish ns/op on the big-graph small-wave workload — the
	// ≥5x acceptance measurement of the COW publication path.
	EpochPublishSpeedup float64 `json:"epoch_publish_speedup_vs_fullclone"`
	// ServeWriteQPS / ServeWriteQPSFullClone are acked closed-loop
	// /updates batches per second through a live daemon on the same
	// big-graph workload, on the COW and the forced-full-clone publish
	// paths respectively.
	ServeWriteQPS          float64 `json:"serve_write_qps"`
	ServeWriteQPSFullClone float64 `json:"serve_write_qps_fullclone"`
	// ReplicationLagMs is the mean wall time from a leader commit to a
	// follower's durable apply of that LSN over the in-process pipe
	// transport on a clean network — the freshness bound a min_lsn
	// reader actually waits out.
	ReplicationLagMs float64 `json:"replication_lag_ms"`
	// FailoverMs is the wall time from a dead leader to the promoted
	// follower acking its first own committed write (pump stop, log
	// fence, segment rotation, write, fsync).
	FailoverMs float64 `json:"failover_ms"`
}

// engineRunBaseline is the pre-flat-data-plane BenchmarkEngineRun
// measurement (map-backed fragments, map foreignArc, allocating
// message plane) on the same workload, recorded before the CSR
// rewrite landed so the trajectory keeps its origin.
var engineRunBaseline = PerfBaseline{
	Name:        "engine_run",
	NsPerOp:     105e6,
	AllocsPerOp: 109723,
	Note:        "pre-CSR map-backed engine, same workload (PowerLaw N=6000 deg=8, Fennel 8 frags, PR x5), measured at the PR-2 tree",
}

// refineBaselines are the pre-compiled-kernel refinement-plane
// measurements (map-backed Tracker, interpreted Model.Eval, allocating
// probe supersteps) on the same workloads, recorded at the PR-3 tree
// before the flattening landed.
var refineBaselines = []PerfBaseline{
	{Name: "refine_e2h", NsPerOp: 180.1e6, AllocsPerOp: 74038,
		Note: "map-backed tracker + interpreted Model.Eval (ParE2H, PowerLaw N=6000 deg=8, Fennel 8 frags, learned-degree model), measured at the PR-3 tree"},
	{Name: "refine_v2h", NsPerOp: 255.0e6, AllocsPerOp: 74878,
		Note: "map-backed tracker + interpreted Model.Eval (ParV2H, same graph, Grid 8 frags), measured at the PR-3 tree"},
	{Name: "tracker_refresh", NsPerOp: 1312, AllocsPerOp: 0,
		Note: "map-backed tracker Refresh across 8 fragments, measured at the PR-3 tree"},
	{Name: "model_eval", NsPerOp: 92415, AllocsPerOp: 0,
		Note: "interpreted Model.Eval, 1024 extracted Vars per op, measured at the PR-3 tree"},
}

// epochPublishBaselines pin the full-clone publication costs the COW
// path is measured against: the same big-graph small-wave workload
// with the deep Clone()+Compile() cut (FullClonePublish) forced.
var epochPublishBaselines = []PerfBaseline{
	{Name: "epoch_publish", NsPerOp: 1001e6, AllocsPerOp: 1189746,
		Note: "full Clone()+Compile() publish (PowerLaw N=40000 deg=8, 16 frags, k=2, 8-mutation waves), measured at the PR-9 tree"},
	{Name: "serve_write_qps", NsPerOp: 228e6, AllocsPerOp: 0,
		Note: "acked /updates batch interval with FullClonePublish forced, same daemon and workload, measured at the PR-9 tree"},
}

// LearnedDegreeModel is the Model-form (learned-shape) cost pair the
// refinement benchmarks are driven by: hA is a degree-2 polynomial
// over {d+L, d+G} with CN-like weights and gA a degree-1 polynomial
// over r with PR-like weights — the shape costmodel.Train produces for
// the paper's algorithms, exercising the compiled-kernel path rather
// than the analytic reference closures.
func LearnedDegreeModel() costmodel.CostModel {
	h := &costmodel.Model{
		// PolyTerms order: [1, dG+, dL+, dG+^2, dL+*dG+, dL+^2].
		Terms:   costmodel.PolyTerms([]costmodel.VarKind{costmodel.DLIn, costmodel.DGIn}, 2),
		Weights: []float64{1.02e-6, 3e-8, 1.04e-6, 2e-9, 9.23e-5, 5e-9},
	}
	g := &costmodel.Model{
		// PolyTerms order: [1, r].
		Terms:   costmodel.PolyTerms([]costmodel.VarKind{costmodel.Repl}, 1),
		Weights: []float64{1.1e-4, 6.6e-4},
	}
	return costmodel.CostModel{H: h, G: g}
}

// Perf runs the engine/partition micro and macro benchmarks via
// testing.Benchmark and assembles the BENCH_3.json report.
func Perf() (*PerfReport, error) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 6000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 23})
	p, err := partitioner.FennelEdgeCut(g, 8, partitioner.FennelConfig{})
	if err != nil {
		return nil, err
	}
	opts := algorithms.Options{PRIterations: 5}
	rep := &PerfReport{
		Schema:     "adp-bench/2",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Baselines:  append(append([]PerfBaseline{engineRunBaseline}, refineBaselines...), epochPublishBaselines...),
	}
	add := func(name string, r testing.BenchmarkResult) {
		rep.Results = append(rep.Results, PerfResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// Macro: the PR workload BenchmarkEngineRun times, on the shared
	// pool — the ≥2x acceptance measurement.
	engineRun := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.Run(engine.NewCluster(p).UsePool(pool.Default()), costmodel.PR, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("engine_run", engineRun)
	ns := float64(engineRun.T.Nanoseconds()) / float64(engineRun.N)
	if ns > 0 {
		rep.EngineRunSpeedup = engineRunBaseline.NsPerOp / ns
	}

	// Micro: arc-presence probes, map form vs compiled CSR form.
	type arc struct{ u, v graph.VertexID }
	var arcsList []arc
	g.Edges(func(u, v graph.VertexID) bool {
		arcsList = append(arcsList, arc{u, v})
		return true
	})
	probe := func(pp *partition.Partition) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			hits := 0
			for i := 0; i < b.N; i++ {
				for _, a := range arcsList {
					for f := 0; f < pp.NumFragments(); f++ {
						if pp.Fragment(f).HasArc(a.u, a.v) {
							hits++
						}
					}
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		})
	}
	add("fragment_has_arc_map", probe(p.Clone()))
	add("fragment_has_arc_csr", probe(p.Clone().Compile()))

	// Micro: per-arc ownership probes on the compiled bitset path.
	c := engine.NewCluster(p)
	add("responsible_for_csr", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		owners := 0
		for i := 0; i < b.N; i++ {
			for _, a := range arcsList {
				for w := 0; w < p.NumFragments(); w++ {
					if c.Worker(w).Responsible(a.u, a.v) {
						owners++
					}
				}
			}
		}
		if owners != len(arcsList)*b.N {
			b.Fatalf("owners = %d", owners)
		}
	}))

	// Refinement plane: the paper's Exp-3 cost — E2H/V2H driven by a
	// learned-shape polynomial model. Clones are built off-clock so the
	// series times refinement only.
	ldm := LearnedDegreeModel()
	refineE2H := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			q := p.Clone()
			b.StartTimer()
			refine.ParE2H(q, ldm, refine.Config{Pool: pool.Default()})
		}
	})
	add("refine_e2h", refineE2H)
	if ns := float64(refineE2H.T.Nanoseconds()) / float64(refineE2H.N); ns > 0 {
		if base := baselineFor(rep, "refine_e2h"); base != nil && base.NsPerOp > 0 {
			rep.RefineE2HSpeedup = base.NsPerOp / ns
		}
	}

	vc, err := partitioner.GridVertexCut(g, 8)
	if err != nil {
		return nil, err
	}
	add("refine_v2h", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			q := vc.Clone()
			b.StartTimer()
			refine.ParV2H(q, ldm, refine.Config{Pool: pool.Default()})
		}
	}))

	// Micro: one Tracker.Refresh (re-extract + re-evaluate one vertex
	// across all 8 fragments) on the refinement workload.
	trq := p.Clone()
	tr := costmodel.NewTracker(trq, ldm)
	nv := g.NumVertices()
	add("tracker_refresh", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Refresh(graph.VertexID(i % nv))
		}
	}))

	// Micro: the cost-kernel evaluation path the tracker drives — 1024
	// extracted Vars per op through the hA kernel.
	corpus := make([]costmodel.Vars, 0, 1024)
	for v := 0; len(corpus) < 1024; v++ {
		corpus = append(corpus, costmodel.Extract(p, v%p.NumFragments(), graph.VertexID(v%nv)))
	}
	kernel := costmodel.Compile(ldm.H)
	add("model_eval", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		sink := 0.0
		for i := 0; i < b.N; i++ {
			for _, x := range corpus {
				sink += kernel.Eval(x)
			}
		}
		if sink == 0 {
			b.Fatal("kernel evaluated to zero everywhere")
		}
	}))

	// Durability plane: the per-mutation cost of the store's logging
	// path and the cost of recovering a recorded run. Both run on a
	// throwaway directory; wal_append batches 64 commits per fsync so it
	// measures framing + write, not raw fsync latency.
	if err := addStoreSeries(rep, add, g); err != nil {
		return nil, err
	}

	// Big-graph data plane: the 10M-edge streaming ingest pipeline and
	// the packed/compressed CSR footprints of the graph it produces.
	if err := addIngestSeries(rep, add); err != nil {
		return nil, err
	}

	// Probe-plane allocation check: marginal allocations of one
	// parallelMigrate superstep on warmed per-run scratch (the
	// zero-allocation probe plane contract).
	rep.ProbeSuperstepAllocs = refine.ProbeLoopAllocs()

	// Steady-state allocation check: marginal allocations of one extra
	// superstep on a warmed serial cluster (the zero-allocation message
	// plane contract, measured the same way TestSteadyStateZeroAllocs
	// asserts it).
	sc := engine.NewCluster(p).UsePool(pool.Serial())
	run := func(iters int) func() {
		o := algorithms.Options{PRIterations: iters}
		return func() {
			if _, err := algorithms.Run(sc, costmodel.PR, o); err != nil {
				panic(err)
			}
		}
	}
	run(32)() // warm buffer capacities
	short := testing.AllocsPerRun(3, run(4))
	long := testing.AllocsPerRun(3, run(32))
	if d := long - short; d > 0 {
		rep.SteadyStateAllocsPerSuperstep = d / 56 // 2 supersteps per extra PR iteration
	}

	// Serving plane: mixed-traffic throughput and read tail latency of
	// the adserve daemon over this same reference graph, with and
	// without a concurrent writer swapping epochs.
	if err := addServeSeries(rep, ServeLoadConfig{}); err != nil {
		return nil, err
	}

	// Epoch-publication plane: O(delta) COW snapshot cuts vs the full
	// deep-clone baseline, micro (publish cost per wave) and macro
	// (acked write QPS through a live daemon on both paths).
	if err := addEpochSeries(rep, add); err != nil {
		return nil, err
	}

	// Maintenance plane: time from an injected structural drift to the
	// first validated promotion by the background re-refinement loop.
	if err := addDriftSeries(rep); err != nil {
		return nil, err
	}

	// Replication plane: leader-commit-to-follower-durable lag and
	// dead-leader-to-first-own-commit failover time over the pipe
	// transport.
	if err := addReplSeries(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// addStoreSeries measures the durable-store hot paths: wal_append (one
// coherent mutation logged and committed through a two-partition
// composite store) and store_recover (Open replaying a recorded
// 500-mutation log onto its snapshot).
func addStoreSeries(rep *PerfReport, add func(string, testing.BenchmarkResult), g *graph.Graph) error {
	buildComposite := func() (*composite.Composite, error) {
		p1, err := partitioner.HashEdgeCut(g, 8)
		if err != nil {
			return nil, err
		}
		assign := make([]int, g.NumVertices())
		for v := range assign {
			assign[v] = (v + 1) % 8
		}
		p2, err := partition.FromVertexAssignment(g, assign, 8)
		if err != nil {
			return nil, err
		}
		return composite.New(g, []*partition.Partition{p1, p2})
	}
	nv := uint32(g.NumVertices())
	// Deterministic fresh-edge stream: a multiplicative stride walks
	// vertex pairs; collisions with live edges flip to deletes so the
	// store never grows without bound.
	edgeAt := func(i int) (graph.VertexID, graph.VertexID) {
		u := uint32(i*2654435761) % nv
		v := (u + 1 + uint32(i*40503)%(nv-1)) % nv
		return graph.VertexID(u), graph.VertexID(v)
	}

	// wal_append: one mutation + commit per op, fsync every 64 commits.
	comp, err := buildComposite()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "adp-bench-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	s, err := store.Create(filepath.Join(dir, "append"), comp, store.Options{SyncEvery: 64})
	if err != nil {
		return err
	}
	dest := []int{0, 1}
	live := map[uint64]bool{}
	step := 0
	add("wal_append", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u, v := edgeAt(step)
			step++
			key := uint64(u)<<32 | uint64(v)
			var err error
			if live[key] {
				delete(live, key)
				_, err = s.Delete(u, v)
			} else {
				live[key] = true
				err = s.Insert(u, v, dest)
			}
			if err == nil {
				err = s.Commit()
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}))
	if err := s.Close(); err != nil {
		return err
	}

	// store_recover: replay a recorded 500-mutation run. The recording
	// happens off-clock; each Open re-reads the snapshot and replays the
	// full committed log.
	comp, err = buildComposite()
	if err != nil {
		return err
	}
	recDir := filepath.Join(dir, "recover")
	s, err = store.Create(recDir, comp, store.Options{SyncEvery: 64})
	if err != nil {
		return err
	}
	for i := 0; i < 500; i++ {
		u, v := edgeAt(i + 1<<20)
		if err := s.Insert(u, v, dest); err != nil {
			return err
		}
		if err := s.Commit(); err != nil {
			return err
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	// The recovery loop itself churns ~17MB/op; collect the garbage the
	// earlier series left behind so their heap watermark doesn't skew
	// GC pacing inside the timed Opens.
	runtime.GC()
	add("store_recover", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, info, err := store.Open(recDir, g, store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if info.Replayed == 0 {
				b.Fatal("nothing replayed")
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return nil
}

// baselineFor returns the pinned baseline with the given name, nil
// when none is recorded.
func baselineFor(rep *PerfReport, name string) *PerfBaseline {
	for i := range rep.Baselines {
		if rep.Baselines[i].Name == name {
			return &rep.Baselines[i]
		}
	}
	return nil
}

// resultFor returns the named measurement of the report, nil when the
// series was not run.
func (r *PerfReport) resultFor(name string) *PerfResult {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Allocation and byte gates tolerate the relative slack plus a small
// absolute floor, so tiny series (a handful of allocs, a few hundred
// bytes) don't trip on scheduler or map-growth jitter.
const (
	allocGateFloor = 16
	bytesGateFloor = 4096
)

// CompareAgainst gates this report against a prior BENCH_N.json. Two
// families of gates run:
//
//   - engine_run ns/op must stay within maxRegress (a fraction; 0.20 =
//     20%) of the prior report's — the original wall-time gate.
//   - every series present in both reports must keep allocs_per_op and
//     bytes_per_op within maxRegress of the prior value plus an
//     absolute floor, so allocation regressions (which are
//     deterministic, unlike wall time) can't ride in unnoticed on any
//     series.
//
// Series missing from either side are not an error — a fresh series
// has no history to regress against.
func (r *PerfReport) CompareAgainst(prior io.Reader, maxRegress float64) error {
	var old PerfReport
	if err := json.NewDecoder(prior).Decode(&old); err != nil {
		return fmt.Errorf("bench: decoding prior report: %w", err)
	}
	wallGates := []struct {
		name    string
		floorNs float64 // absolute slack damping scheduler jitter on tiny values
	}{
		{"engine_run", 0},
		{"serve_qps", 0},         // stored as ns/request, so "higher = slower" holds
		{"serve_p99", 1_000_000}, // 1ms floor: tail latency jitters hardest
	}
	for _, gate := range wallGates {
		cur, prev := r.resultFor(gate.name), old.resultFor(gate.name)
		if cur == nil || prev == nil || prev.NsPerOp <= 0 {
			continue
		}
		if cur.NsPerOp > prev.NsPerOp*(1+maxRegress)+gate.floorNs {
			return fmt.Errorf("bench: %s regressed %.1f%% (%.2fms/op now vs %.2fms/op prior, gate is +%.0f%%)",
				gate.name, (cur.NsPerOp/prev.NsPerOp-1)*100, cur.NsPerOp/1e6, prev.NsPerOp/1e6, maxRegress*100)
		}
	}
	for i := range r.Results {
		cur := &r.Results[i]
		prev := old.resultFor(cur.Name)
		if prev == nil {
			continue
		}
		if gate := int64(float64(prev.AllocsPerOp)*(1+maxRegress)) + allocGateFloor; cur.AllocsPerOp > gate {
			return fmt.Errorf("bench: %s allocs/op regressed: %d now vs %d prior (gate %d)",
				cur.Name, cur.AllocsPerOp, prev.AllocsPerOp, gate)
		}
		if gate := int64(float64(prev.BytesPerOp)*(1+maxRegress)) + bytesGateFloor; cur.BytesPerOp > gate {
			return fmt.Errorf("bench: %s bytes/op regressed: %d now vs %d prior (gate %d)",
				cur.Name, cur.BytesPerOp, prev.BytesPerOp, gate)
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary is a one-line human rendering for the CLI.
func (r *PerfReport) Summary() string {
	var engNs, refNs float64
	for _, res := range r.Results {
		switch res.Name {
		case "engine_run":
			engNs = res.NsPerOp
		case "refine_e2h":
			refNs = res.NsPerOp
		}
	}
	s := fmt.Sprintf("engine_run %.1fms/op (%.2fx vs pre-CSR baseline), refine_e2h %.1fms/op (%.2fx vs map-backed baseline), %.2f allocs/superstep steady-state, %.2f allocs/probe-superstep",
		engNs/1e6, r.EngineRunSpeedup, refNs/1e6, r.RefineE2HSpeedup, r.SteadyStateAllocsPerSuperstep, r.ProbeSuperstepAllocs)
	if r.ServeQPS > 0 {
		s += fmt.Sprintf(", serve %.0f QPS (read p99 %.2fms writer / %.2fms no-writer)",
			r.ServeQPS, r.ServeReadP99Ms, r.ServeReadP99NoWriterMs)
	}
	if r.EpochPublishSpeedup > 0 {
		s += fmt.Sprintf(", epoch publish %.0fx vs full clone (write %.0f QPS vs %.0f full-clone)",
			r.EpochPublishSpeedup, r.ServeWriteQPS, r.ServeWriteQPSFullClone)
	}
	if r.DriftRecoverMs > 0 {
		s += fmt.Sprintf(", drift recovery %.0fms", r.DriftRecoverMs)
	}
	if r.ReplicationLagMs > 0 {
		s += fmt.Sprintf(", repl lag %.2fms, failover %.1fms", r.ReplicationLagMs, r.FailoverMs)
	}
	if r.IngestMEdgesPerSec > 0 {
		s += fmt.Sprintf(", ingest %.1fM edges/s", r.IngestMEdgesPerSec)
	}
	return s
}
