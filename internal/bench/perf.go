package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// PerfResult is one benchmark measurement in machine-readable form.
type PerfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfBaseline records a pinned reference measurement a result is
// compared against.
type PerfBaseline struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Note        string  `json:"note"`
}

// PerfReport is the BENCH_N.json payload: the perf trajectory entry
// this revision contributes.
type PerfReport struct {
	Schema     string         `json:"schema"`
	GoVersion  string         `json:"go_version"`
	GoMaxProcs int            `json:"go_max_procs"`
	Baselines  []PerfBaseline `json:"baselines"`
	Results    []PerfResult   `json:"results"`
	// EngineRunSpeedup is engine_run ns/op of the pinned pre-CSR
	// baseline divided by this build's engine_run ns/op.
	EngineRunSpeedup float64 `json:"engine_run_speedup_vs_baseline"`
	// SteadyStateAllocsPerSuperstep is the marginal heap allocations of
	// one extra superstep of the PR workload on a warmed serial
	// cluster; the flat message plane keeps it at zero.
	SteadyStateAllocsPerSuperstep float64 `json:"steady_state_allocs_per_superstep"`
}

// engineRunBaseline is the pre-flat-data-plane BenchmarkEngineRun
// measurement (map-backed fragments, map foreignArc, allocating
// message plane) on the same workload, recorded before the CSR
// rewrite landed so the trajectory keeps its origin.
var engineRunBaseline = PerfBaseline{
	Name:        "engine_run",
	NsPerOp:     105e6,
	AllocsPerOp: 109723,
	Note:        "pre-CSR map-backed engine, same workload (PowerLaw N=6000 deg=8, Fennel 8 frags, PR x5), measured at the PR-2 tree",
}

// Perf runs the engine/partition micro and macro benchmarks via
// testing.Benchmark and assembles the BENCH_3.json report.
func Perf() (*PerfReport, error) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 6000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 23})
	p, err := partitioner.FennelEdgeCut(g, 8, partitioner.FennelConfig{})
	if err != nil {
		return nil, err
	}
	opts := algorithms.Options{PRIterations: 5}
	rep := &PerfReport{
		Schema:     "adp-bench/1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Baselines:  []PerfBaseline{engineRunBaseline},
	}
	add := func(name string, r testing.BenchmarkResult) {
		rep.Results = append(rep.Results, PerfResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// Macro: the PR workload BenchmarkEngineRun times, on the shared
	// pool — the ≥2x acceptance measurement.
	engineRun := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.Run(engine.NewCluster(p).UsePool(pool.Default()), costmodel.PR, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("engine_run", engineRun)
	ns := float64(engineRun.T.Nanoseconds()) / float64(engineRun.N)
	if ns > 0 {
		rep.EngineRunSpeedup = engineRunBaseline.NsPerOp / ns
	}

	// Micro: arc-presence probes, map form vs compiled CSR form.
	type arc struct{ u, v graph.VertexID }
	var arcsList []arc
	g.Edges(func(u, v graph.VertexID) bool {
		arcsList = append(arcsList, arc{u, v})
		return true
	})
	probe := func(pp *partition.Partition) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			hits := 0
			for i := 0; i < b.N; i++ {
				for _, a := range arcsList {
					for f := 0; f < pp.NumFragments(); f++ {
						if pp.Fragment(f).HasArc(a.u, a.v) {
							hits++
						}
					}
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		})
	}
	add("fragment_has_arc_map", probe(p.Clone()))
	add("fragment_has_arc_csr", probe(p.Clone().Compile()))

	// Micro: per-arc ownership probes on the compiled bitset path.
	c := engine.NewCluster(p)
	add("responsible_for_csr", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		owners := 0
		for i := 0; i < b.N; i++ {
			for _, a := range arcsList {
				for w := 0; w < p.NumFragments(); w++ {
					if c.Worker(w).Responsible(a.u, a.v) {
						owners++
					}
				}
			}
		}
		if owners != len(arcsList)*b.N {
			b.Fatalf("owners = %d", owners)
		}
	}))

	// Steady-state allocation check: marginal allocations of one extra
	// superstep on a warmed serial cluster (the zero-allocation message
	// plane contract, measured the same way TestSteadyStateZeroAllocs
	// asserts it).
	sc := engine.NewCluster(p).UsePool(pool.Serial())
	run := func(iters int) func() {
		o := algorithms.Options{PRIterations: iters}
		return func() {
			if _, err := algorithms.Run(sc, costmodel.PR, o); err != nil {
				panic(err)
			}
		}
	}
	run(32)() // warm buffer capacities
	short := testing.AllocsPerRun(3, run(4))
	long := testing.AllocsPerRun(3, run(32))
	if d := long - short; d > 0 {
		rep.SteadyStateAllocsPerSuperstep = d / 56 // 2 supersteps per extra PR iteration
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary is a one-line human rendering for the CLI.
func (r *PerfReport) Summary() string {
	var ns float64
	for _, res := range r.Results {
		if res.Name == "engine_run" {
			ns = res.NsPerOp
		}
	}
	return fmt.Sprintf("engine_run %.1fms/op (%.2fx vs pre-CSR baseline), %.2f allocs/superstep steady-state",
		ns/1e6, r.EngineRunSpeedup, r.SteadyStateAllocsPerSuperstep)
}
