package bench

import (
	"fmt"
	"time"

	"adp/internal/costmodel"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

// Fig9K reproduces Fig 9(k) / Exp-3: the wall time ParE2H / ParV2H
// spends refining for TC on the Twitter stand-in, against the total
// partitioning time (initial partitioner + refinement), varying the
// fragment count. The paper reports the refinement share at 11.5% /
// 11.1% on average.
func Fig9K() (*Table, error) {
	ds := algoDataset(DSTwitter, costmodel.TC)
	model := costmodel.Reference(costmodel.TC)
	t := &Table{
		ID:     "fig9k",
		Title:  "Partitioning time split for TC on Twitter* (wall ms)",
		Header: []string{"partitioner", "n", "initial(ms)", "refine(ms)", "share"},
	}
	var shareSum, shareCnt float64
	for _, name := range []string{"xtraPuLP", "Fennel", "Grid", "NE"} {
		spec, _ := partitioner.ByName(name)
		for _, n := range fig9NS {
			g := Dataset(ds)
			start := time.Now()
			base, err := spec.Run(g, n)
			if err != nil {
				return nil, err
			}
			initMS := float64(time.Since(start).Microseconds()) / 1000
			p := base.Clone()
			stats := refine.ForFamily(spec.Family, p, model, refine.Config{})
			refineMS := float64(stats.Total.Microseconds()) / 1000
			share := refineMS / (initMS + refineMS)
			shareSum += share
			shareCnt++
			t.addRow(
				[]string{"H" + name, fmt.Sprintf("%d", n), fmtF(initMS), fmtF(refineMS), fmt.Sprintf("%.1f%%", share*100)},
				[]float64{0, float64(n), initMS, refineMS, share},
			)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("average refinement share: %.1f%% (paper: 11.5%% edge-cut / 11.1%% vertex-cut of total partitioning time)", shareSum/shareCnt*100))
	return t, nil
}
