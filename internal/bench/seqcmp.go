package bench

import (
	"fmt"
	"time"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/refine"
)

// SeqCompare reproduces the Exp-6 remark: the paper contrasts its
// pipeline with Gunrock, a monolithic-memory GPU runtime that handles
// liveJournal directly but cannot load Twitter/UKWeb. Our stand-in for
// the monolithic runtime is the single-machine sequential reference;
// the table shows its wall time against the partitioned engine's wall
// time per algorithm, plus the one-off cost-model training time the
// remark weighs against it.
func SeqCompare() (*Table, error) {
	const n = 4
	t := &Table{
		ID:     "seqcmp",
		Title:  "Monolithic reference vs partitioned execution (liveJournal*, wall ms)",
		Header: []string{"algo", "sequential(ms)", "partitioned(ms)", "supersteps"},
	}
	opts := defaultOpts(DSSocial)
	for _, algo := range batchAlgos {
		ds := algoDataset(DSSocial, algo)
		g := Dataset(ds)
		start := time.Now()
		_ = algorithms.SeqOutcome(g, algo, opts)
		seqMS := float64(time.Since(start).Microseconds()) / 1000

		base, err := basePartition(ds, "Fennel", n)
		if err != nil {
			return nil, err
		}
		p := base.Clone()
		refine.ParE2H(p, costmodel.Reference(algo), refine.Config{})
		out, err := algorithms.Run(engine.NewCluster(p), algo, opts)
		if err != nil {
			return nil, err
		}
		parMS := float64(out.Report.WallTime.Microseconds()) / 1000
		t.addRow(
			[]string{algo.String(), fmtF(seqMS), fmtF(parMS), fmt.Sprintf("%d", out.Report.Supersteps)},
			[]float64{0, seqMS, parMS, float64(out.Report.Supersteps)},
		)
	}
	t.Notes = append(t.Notes,
		"paper remark: Gunrock handles liveJournal in 22-221s but cannot load Twitter/UKWeb into 16GB GPU memory; partitioning is a must at scale",
		"cost-model training is offline and one-off (see table5): it amortises across every later graph the algorithm runs on")
	return t, nil
}
