package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"adp/internal/composite"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/maintain"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/serve"
	"adp/internal/store"
)

// DriftRecoverConfig shapes the self-healing measurement: how long the
// maintenance plane takes to notice a workload/structure drift and
// promote a re-refined epoch.
type DriftRecoverConfig struct {
	// SkewEdges is the number of extra edges injected into fragment 0
	// of every partition — the drift event. Default 600.
	SkewEdges int
	// Interval is the drift-detector tick. Default 20ms.
	Interval time.Duration
	// Timeout bounds the whole measurement. Default 120s.
	Timeout time.Duration
}

func (c *DriftRecoverConfig) fill() {
	if c.SkewEdges <= 0 {
		c.SkewEdges = 600
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
}

// DriftRecoverResult is the measured recovery.
type DriftRecoverResult struct {
	// Recover is the wall time from the drift injection (first skewed
	// update batch posted) to the first validated promotion.
	Recover time.Duration
	// Drift is the detector signal that triggered the cycle.
	Drift float64
}

// DriftRecover boots a serving daemon plus its maintenance loop over a
// mid-size reference graph, injects a structural skew through the live
// update path, keeps request traffic flowing, and times how long the
// loop takes to detect the drift, re-refine off the serving path and
// promote a validated epoch.
func DriftRecover(cfg DriftRecoverConfig) (*DriftRecoverResult, error) {
	cfg.fill()
	g := gen.PowerLaw(gen.PowerLawConfig{N: 2000, AvgDeg: 6, Exponent: 2.1, Directed: false, Seed: 29})
	p1, err := partitioner.HashEdgeCut(g, 4)
	if err != nil {
		return nil, err
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 4
	}
	p2, err := partition.FromVertexAssignment(g, assign, 4)
	if err != nil {
		return nil, err
	}
	comp, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "adp-bench-drift-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Create(dir, comp, store.Options{SyncEvery: 8})
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(st, serve.Config{SessionsPerAlgo: 2, MaxInflight: 64, UpdateQueue: 16})
	if err != nil {
		st.Close()
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv.Start(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	url := "http://" + l.Addr().String()

	lp := maintain.New(srv, maintain.Config{
		Interval:       cfg.Interval,
		DriftThreshold: 0.05,
		MinGain:        -1, // measure detection + promotion latency, not gain
		RefineTimeout:  60 * time.Second,
		Watchdog:       maintain.WatchdogConfig{Window: 10 * time.Millisecond, CostFactor: 1000, LatFactor: 1000, MinSamples: 1 << 20},
	})
	lp.Start()
	defer lp.Stop()

	// The drift event: extra edges, all landing in fragment 0 of both
	// partitions, posted through the live update path.
	var sb strings.Builder
	count := 0
	n := g.NumVertices()
	for u := 0; u < n && count < cfg.SkewEdges; u++ {
		for v := u + 1; v < n && count < cfg.SkewEdges; v++ {
			uu, vv := graph.VertexID(u), graph.VertexID(v)
			if !g.HasEdge(uu, vv) && !g.HasEdge(vv, uu) {
				fmt.Fprintf(&sb, "+ %d %d 0 0\n", u, v)
				count++
			}
		}
	}
	start := time.Now()
	resp, err := http.Post(url+"/updates", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bench: drift injection: status %d", resp.StatusCode)
	}

	// Keep traffic flowing so the detector window sees the skewed
	// workload, and wait for the first validated promotion.
	body, _ := json.Marshal(map[string]any{"algo": "WCC"})
	deadline := time.Now().Add(cfg.Timeout)
	for {
		resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("bench: drift traffic: status %d", resp.StatusCode)
		}
		if st := lp.Status(); st.Promoted >= 1 {
			return &DriftRecoverResult{Recover: time.Since(start), Drift: st.LastDrift}, nil
		}
		if time.Now().After(deadline) {
			st := lp.Status()
			return nil, fmt.Errorf("bench: no promotion within %v (drift %.4f, cycles %d, last error %q)",
				cfg.Timeout, st.LastDrift, st.Cycles, st.LastError)
		}
	}
}

// addDriftSeries folds the self-healing measurement into the report:
// drift_recover is ns from drift injection to the first validated
// promotion.
func addDriftSeries(rep *PerfReport) error {
	res, err := DriftRecover(DriftRecoverConfig{})
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, PerfResult{Name: "drift_recover", NsPerOp: float64(res.Recover.Nanoseconds())})
	rep.DriftRecoverMs = float64(res.Recover.Nanoseconds()) / 1e6
	return nil
}
