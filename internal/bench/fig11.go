package bench

import (
	"fmt"

	"adp/internal/costmodel"
	"adp/internal/refine"
)

// Fig11 reproduces the appendix phase decomposition: for each
// algorithm, how much of the total H-refinement speedup each phase of
// ParE2H (EMigrate, ESplit, MAssign) and ParV2H (VMigrate, VMerge,
// MAssign) contributes, measured as reduction of the simulated
// parallel cost on the Twitter stand-in.
func Fig11() (*Table, error) {
	const n = 4
	t := &Table{
		ID:     "fig11",
		Title:  "Phase decomposition of refinement speedup (Twitter*, n=4)",
		Header: []string{"refiner", "algo", "phase1", "phase2", "phase3"},
	}
	for _, side := range []struct {
		refiner string
		base    string
	}{
		{"ParE2H", "Fennel"},
		{"ParV2H", "Grid"},
	} {
		for _, algo := range batchAlgos {
			ds := algoDataset(DSTwitter, algo)
			opts := defaultOpts(DSTwitter)
			base, err := basePartition(ds, side.base, n)
			if err != nil {
				return nil, err
			}
			costs := make([]float64, 4)
			costs[0], err = runCost(base, algo, opts)
			if err != nil {
				return nil, err
			}
			model := costmodel.Reference(algo)
			for phases := 1; phases <= 3; phases++ {
				p := base.Clone()
				if side.refiner == "ParE2H" {
					refine.ParE2H(p, model, refine.Config{Phases: phases})
				} else {
					refine.ParV2H(p, model, refine.Config{Phases: phases})
				}
				costs[phases], err = runCost(p, algo, opts)
				if err != nil {
					return nil, err
				}
			}
			totalGain := costs[0] - costs[3]
			cells := []string{side.refiner, algo.String()}
			values := []float64{0, 0}
			for k := 1; k <= 3; k++ {
				share := 0.0
				if totalGain > 1e-12 {
					share = (costs[k-1] - costs[k]) / totalGain
				}
				cells = append(cells, fmt.Sprintf("%.0f%%", share*100))
				values = append(values, share)
			}
			t.addRow(cells, values)
		}
	}
	t.Notes = append(t.Notes,
		"paper: EMigrate carries 26-89% of the ParE2H speedup; VMigrate 71-97% of ParV2H; MAssign ~10-30%")
	return t, nil
}
