package bench

import (
	"fmt"

	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

// Fig9L reproduces Fig 9(l) / Exp-5: refinement wall time as the
// synthetic graph grows from |G| to 5|G| (the paper sweeps 100M..500M
// vertices on 96 workers; we sweep the scaled stand-ins on 8
// fragments). Near-linear growth is the claim under test.
func Fig9L() (*Table, error) {
	const n = 8
	model := costmodel.Reference(costmodel.CN)
	t := &Table{
		ID:     "fig9l",
		Title:  "Refinement time vs |G| for CN (wall ms, n=8)",
		Header: []string{"size", "|V|", "|E|", "ParE2H(Fennel)", "ParV2H(Grid)"},
	}
	for f := 1; f <= 5; f++ {
		g := gen.Scaled(f)
		ec, err := partitioner.FennelEdgeCut(g, n, partitioner.FennelConfig{})
		if err != nil {
			return nil, err
		}
		e2hStats := refine.ParE2H(ec, model, refine.Config{})
		vc, err := partitioner.GridVertexCut(g, n)
		if err != nil {
			return nil, err
		}
		v2hStats := refine.ParV2H(vc, model, refine.Config{})
		e2hMS := float64(e2hStats.Total.Microseconds()) / 1000
		v2hMS := float64(v2hStats.Total.Microseconds()) / 1000
		t.addRow(
			[]string{fmt.Sprintf("%d|G|", f), fmt.Sprintf("%d", g.NumVertices()), fmt.Sprintf("%d", g.NumEdges()), fmtF(e2hMS), fmtF(v2hMS)},
			[]float64{float64(f), float64(g.NumVertices()), float64(g.NumEdges()), e2hMS, v2hMS},
		)
	}
	t.Notes = append(t.Notes, "paper: ParE2H 12.2s->59.7s, ParV2H 5.7s->32.5s on 100M..500M vertices, 96 workers")
	return t, nil
}
