package bench

import (
	"fmt"
	"time"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

// CollectTrainingSamples runs algo over the Section-4 training graphs
// — randomly partitioned alternately by edge-cut and vertex-cut, per
// the paper — with per-vertex cost recording enabled, and returns the
// harvested computation and communication samples.
func CollectTrainingSamples(algo costmodel.Algo) (comp, comm []costmodel.Sample, err error) {
	graphs := gen.TrainingGraphs()
	for i, g := range graphs {
		if algo == costmodel.TC && !g.Undirected() {
			g = graph.Symmetrize(g)
		}
		var p *partition.Partition
		if i%2 == 0 {
			p, err = partitioner.HashEdgeCut(g, 3)
		} else {
			p, err = partitioner.GridVertexCut(g, 3)
		}
		if err != nil {
			return nil, nil, err
		}
		c := engine.NewCluster(p)
		c.EnableCostRecording()
		opts := algorithms.Options{CNTheta: 300, SSSPSource: 0, PRIterations: 3}
		if _, err := algorithms.Run(c, algo, opts); err != nil {
			return nil, nil, err
		}
		hc, hm := c.HarvestSamples()
		comp = append(comp, hc...)
		comm = append(comm, hm...)
	}
	return comp, comm, nil
}

// TrainedModel is one Table-5 row: the learned polynomial, its test
// MSRE and the training wall time.
type TrainedModel struct {
	Algo      costmodel.Algo
	Model     *costmodel.Model
	MSRE      float64
	Samples   int
	TrainTime time.Duration
}

// TrainFromLogs learns hA (kind "comp") or gA (kind "comm") for algo
// from engine running logs, with the paper's 80/20 split.
func TrainFromLogs(algo costmodel.Algo, comm bool) (*TrainedModel, error) {
	compS, commS, err := CollectTrainingSamples(algo)
	if err != nil {
		return nil, err
	}
	data := compS
	vars, degree := costmodel.LearnableVars(algo)
	if comm {
		data = commS
		vars, degree = costmodel.LearnableCommVars(algo)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("bench: no %v samples harvested", algo)
	}
	train, test := costmodel.Split(data, 0.8, 11)
	start := time.Now()
	m, err := costmodel.Train(costmodel.PolyTerms(vars, degree), train, costmodel.TrainConfig{Seed: 12})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	return &TrainedModel{
		Algo:      algo,
		Model:     m,
		MSRE:      costmodel.MSRE(m, test),
		Samples:   len(data),
		TrainTime: elapsed,
	}, nil
}

// Table5 reproduces Table 5 / Exp-6: per algorithm, the learned
// computation and communication cost functions, their test MSRE and
// training time. The paper's acceptance bar is MSRE ≤ 0.11.
func Table5() (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Accuracy and training time of cost models (engine running logs)",
		Header: []string{"algo", "kind", "samples", "MSRE", "train(ms)", "model"},
	}
	for _, algo := range batchAlgos {
		for _, comm := range []bool{false, true} {
			kind := "hA"
			if comm {
				kind = "gA"
			}
			tm, err := TrainFromLogs(algo, comm)
			if err != nil {
				return nil, fmt.Errorf("%v %s: %w", algo, kind, err)
			}
			ms := float64(tm.TrainTime.Microseconds()) / 1000
			modelStr := tm.Model.String()
			if len(modelStr) > 60 {
				modelStr = modelStr[:57] + "..."
			}
			t.addRow(
				[]string{algo.String(), kind, fmt.Sprintf("%d", tm.Samples), fmt.Sprintf("%.4f", tm.MSRE), fmtF(ms), modelStr},
				[]float64{0, 0, float64(tm.Samples), tm.MSRE, ms, 0},
			)
		}
	}
	t.Notes = append(t.Notes, "paper: MSRE ≤ 0.11 for every model; training ≤ 49.8s on a V100 (PyTorch)")
	return t, nil
}
