package bench

import (
	"testing"

	"adp/internal/costmodel"
)

// hTC is the paper's own accuracy outlier ("node degrees are not
// informative enough for cost prediction"); ours inherits that. This
// regression guard keeps it from degrading past an order of magnitude
// while the well-behaved models are asserted tightly elsewhere.
func TestTCModelOutlierBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("full training sweep")
	}
	tm, err := TrainFromLogs(costmodel.TC, false)
	if err != nil {
		t.Fatal(err)
	}
	if tm.MSRE > 10 {
		t.Fatalf("TC hA MSRE = %v, regression past the documented outlier band", tm.MSRE)
	}
	tg, err := TrainFromLogs(costmodel.TC, true)
	if err != nil {
		t.Fatal(err)
	}
	if tg.MSRE > 0.11 {
		t.Fatalf("TC gA MSRE = %v, want ≤ 0.11", tg.MSRE)
	}
}
