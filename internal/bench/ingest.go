package bench

import (
	"fmt"
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partitioner"
)

// ingestConfig is the big-graph data-plane workload: a 10M-edge
// chunked power-law stream (1.25M vertices, average degree 8),
// generated, CSR-built, and Fennel-partitioned in one pass. Output is
// a pure function of this config — identical at every worker count —
// so the series measures throughput, never placement drift.
var ingestConfig = gen.PowerLawConfig{N: 1_250_000, AvgDeg: 8, Exponent: 2.3, Directed: true, Seed: 42}

const ingestFragments = 8

// addIngestSeries measures the end-to-end streaming ingest pipeline
// (generate → parallel CSR build → streaming Fennel → flat partition)
// and records the packed/compressed adjacency footprints of the
// resulting 10M-edge graph.
func addIngestSeries(rep *PerfReport, add func(string, testing.BenchmarkResult)) error {
	var last *graph.Graph
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nv, edges := gen.PowerLawChunkedEdges(ingestConfig, 0)
			st := partitioner.NewFennelStream(ingestFragments, partitioner.FennelConfig{})
			g, err := graph.BuildStreaming(nv, edges, false, graph.LoadOptions{}, st)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Partition(g); err != nil {
				b.Fatal(err)
			}
			last = g
		}
	})
	add("ingest_10m", res)
	if last == nil {
		return fmt.Errorf("bench: ingest pipeline never ran")
	}
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	if ns > 0 {
		rep.IngestMEdgesPerSec = float64(last.NumEdges()) / 1e6 / (ns / 1e9)
	}
	// Byte-footprint series: ns/allocs are meaningless here, the
	// payload is bytes_per_op — the packed flat CSR vs the delta-varint
	// compressed encoding of the same adjacency.
	rep.Results = append(rep.Results,
		PerfResult{Name: "csr_bytes_packed", BytesPerOp: graph.FixedSizeBytes(last)},
		PerfResult{Name: "csr_bytes_compressed", BytesPerOp: graph.CompressedSizeBytes(last)},
	)
	return nil
}
