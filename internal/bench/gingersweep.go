package bench

import (
	"fmt"

	"adp/internal/costmodel"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

// GingerSweep quantifies contribution (3) of the paper: prior hybrid
// partitioners "manually pick partitioning parameters" (Ginger/
// PowerLyra's degree threshold), while the application-driven
// partitioner derives its decisions from the learned cost model. The
// sweep runs CN over Ginger with a range of thresholds and compares
// the best manually-tuned point against HFennel, which needed no
// tuning.
func GingerSweep() (*Table, error) {
	const n = 8
	g := Dataset(DSTwitter)
	opts := defaultOpts(DSTwitter)
	t := &Table{
		ID:     "gingersweep",
		Title:  "Ginger degree-threshold sweep vs cost-driven refinement (CN, Twitter*, n=8)",
		Header: []string{"configuration", "threshold", "cost (work units)"},
	}
	avg := g.AvgDegree()
	best := 0.0
	for _, mult := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		th := int(mult*avg) + 1
		p, err := partitioner.GingerHybrid(g, n, partitioner.GingerConfig{DegreeThreshold: th})
		if err != nil {
			return nil, err
		}
		cost, err := runCost(p, costmodel.CN, opts)
		if err != nil {
			return nil, err
		}
		if best == 0 || cost < best {
			best = cost
		}
		t.addRow(
			[]string{"Ginger", fmt.Sprintf("%.1f·avg (%d)", mult, th), fmtF(cost)},
			[]float64{0, float64(th), cost},
		)
	}
	base, err := basePartition(DSTwitter, "Fennel", n)
	if err != nil {
		return nil, err
	}
	p := base.Clone()
	refine.ParE2H(p, costmodel.Reference(costmodel.CN), refine.Config{})
	cost, err := runCost(p, costmodel.CN, opts)
	if err != nil {
		return nil, err
	}
	t.addRow(
		[]string{"HFennel (cost-driven)", "learned", fmtF(cost)},
		[]float64{0, 0, cost},
	)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"best manually-tuned Ginger: %s; the cost-driven refinement needs no per-algorithm threshold search", fmtF(best)))
	return t, nil
}
