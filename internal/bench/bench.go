// Package bench reproduces every table and figure of the paper's
// experimental study (Section 7) on the scaled-down substrate of this
// repository: Exp-1 (Fig 9a-j), Exp-2 (Table 4 / Fig 10a), Exp-3
// (Fig 9k), Exp-4 (Fig 10b + space), Exp-5 (Fig 9l), Exp-6 (Table 5),
// Table 3, and the appendix phase decomposition (Fig 11), plus the
// DESIGN.md ablations.
//
// "Execution time" columns report the engine's deterministic simulated
// parallel cost (compute critical path + weighted communication
// critical path, in work units); partitioning and training times are
// wall clock. EXPERIMENTS.md maps these numbers against the paper's.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

// Table is one reproduced table or figure, rendered as rows of text
// plus the raw values for programmatic checks.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Values mirrors Rows numerically where applicable (same shape,
	// NaN for text cells); assertions in tests use it.
	Values [][]float64
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, r := range rows {
		for c, cell := range r {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, r := range rows {
		var parts []string
		for c, cell := range r {
			parts = append(parts, pad(cell, widths[c]))
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
		if ri == 0 {
			total := len(parts) - 1
			for _, wd := range widths {
				total += wd + 2
			}
			fmt.Fprintln(w, strings.Repeat("-", total))
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func (t *Table) addRow(cells []string, values []float64) {
	t.Rows = append(t.Rows, cells)
	t.Values = append(t.Values, values)
}

// Dataset names used throughout the experiments.
const (
	DSSocial  = "liveJournal*" // socialSmall stand-in
	DSTwitter = "Twitter*"     // twitterLike stand-in
	DSWeb     = "UKWeb*"       // webLike stand-in
	DSRoad    = "traffic*"     // roadLike stand-in
)

var datasetCache sync.Map // name -> *graph.Graph

// Dataset returns (and caches) the named stand-in graph. Suffix "-u"
// yields the symmetrised undirected variant used by TC and the
// mixed-workload batch.
func Dataset(name string) *graph.Graph {
	if g, ok := datasetCache.Load(name); ok {
		return g.(*graph.Graph)
	}
	var g *graph.Graph
	switch strings.TrimSuffix(name, "-u") {
	case DSSocial:
		g = gen.SocialSmall()
	case DSTwitter:
		g = gen.TwitterLike()
	case DSWeb:
		g = gen.WebLike()
	case DSRoad:
		g = gen.RoadLike()
	default:
		panic("bench: unknown dataset " + name)
	}
	if strings.HasSuffix(name, "-u") && !g.Undirected() {
		g = graph.Symmetrize(g)
	}
	actual, _ := datasetCache.LoadOrStore(name, g)
	return actual.(*graph.Graph)
}

type partKey struct {
	dataset, partitioner string
	n                    int
}

var partCache sync.Map // partKey -> *partition.Partition

// basePartition returns (and caches) the baseline partition of a
// dataset; callers Clone before refining.
func basePartition(dataset, name string, n int) (*partition.Partition, error) {
	key := partKey{dataset, name, n}
	if p, ok := partCache.Load(key); ok {
		return p.(*partition.Partition), nil
	}
	spec, ok := partitioner.ByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown partitioner %q", name)
	}
	p, err := spec.Run(Dataset(dataset), n)
	if err != nil {
		return nil, err
	}
	actual, _ := partCache.LoadOrStore(key, p)
	return actual.(*partition.Partition), nil
}

// defaultOpts are the shared algorithm options. The paper filters CN
// hubs on Twitter (θ=300) purely to bound memory at 42M-vertex scale;
// our stand-ins are ~1000× smaller, so the filter is disabled and the
// quadratic hub workload of Example 1 is exercised in full — the
// workload hA(CN) balances.
func defaultOpts(dataset string) algorithms.Options {
	return algorithms.Options{SSSPSource: 1, PRIterations: 5}
}

var (
	benchOptsMu sync.Mutex
	benchOpts   engine.Options
)

// Configure sets the engine Options (fault injection, checkpoint
// cadence, superstep budget, run context) applied to every engine run
// the experiments perform. The cmd layer wires -seed/-faults/-timeout
// through here. Because the injected schedule is deterministic and
// recovery replays to the same barrier state, configured faults leave
// every reported cost unchanged — only wall time moves.
func Configure(opts engine.Options) {
	benchOptsMu.Lock()
	benchOpts = opts
	benchOptsMu.Unlock()
}

// runOptions snapshots the configured options for one engine run. The
// injector is cloned per run: experiment grids execute many runs
// concurrently, and each must consume its own copy of the schedule.
func runOptions() engine.Options {
	benchOptsMu.Lock()
	o := benchOpts
	benchOptsMu.Unlock()
	o.Injector = o.Injector.Clone()
	return o
}

// benchCtx is the configured run context (Background when unset); the
// experiment drivers poll it between grid cells so a timeout or Ctrl-C
// aborts between runs, and the engine aborts within one barrier.
func benchCtx() context.Context {
	benchOptsMu.Lock()
	defer benchOptsMu.Unlock()
	if benchOpts.Context != nil {
		return benchOpts.Context
	}
	return context.Background()
}

// runCost executes algo over p and returns the simulated parallel
// cost.
func runCost(p *partition.Partition, algo costmodel.Algo, opts algorithms.Options) (float64, error) {
	out, err := algorithms.Run(engine.NewCluster(p).Configure(runOptions()), algo, opts)
	if err != nil {
		return 0, err
	}
	return out.Report.SimCost(engine.DefaultBytesWeight), nil
}

// algoDataset picks the right graph variant: TC needs the symmetrised
// graph.
func algoDataset(dataset string, algo costmodel.Algo) string {
	if algo == costmodel.TC {
		return dataset + "-u"
	}
	return dataset
}

// fmtF renders a float compactly.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.3g", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Experiment is a registered reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// Experiments lists every reproducible table/figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table3", "Partition metrics of Twitter* (Table 3)", Table3},
		{"fig9a", "CN execution vs n on liveJournal* (Fig 9a)", func() (*Table, error) { return Fig9Exec(costmodel.CN, DSSocial, "fig9a") }},
		{"fig9b", "CN execution vs n on Twitter* (Fig 9b)", func() (*Table, error) { return Fig9Exec(costmodel.CN, DSTwitter, "fig9b") }},
		{"fig9c", "TC execution vs n on liveJournal* (Fig 9c)", func() (*Table, error) { return Fig9Exec(costmodel.TC, DSSocial, "fig9c") }},
		{"fig9d", "TC execution vs n on Twitter* (Fig 9d)", func() (*Table, error) { return Fig9Exec(costmodel.TC, DSTwitter, "fig9d") }},
		{"fig9e", "WCC execution vs n on Twitter* (Fig 9e)", func() (*Table, error) { return Fig9Exec(costmodel.WCC, DSTwitter, "fig9e") }},
		{"fig9f", "WCC execution vs n on UKWeb* (Fig 9f)", func() (*Table, error) { return Fig9Exec(costmodel.WCC, DSWeb, "fig9f") }},
		{"fig9g", "PR execution vs n on Twitter* (Fig 9g)", func() (*Table, error) { return Fig9Exec(costmodel.PR, DSTwitter, "fig9g") }},
		{"fig9h", "PR execution vs n on UKWeb* (Fig 9h)", func() (*Table, error) { return Fig9Exec(costmodel.PR, DSWeb, "fig9h") }},
		{"fig9i", "SSSP execution vs n on Twitter* (Fig 9i)", func() (*Table, error) { return Fig9Exec(costmodel.SSSP, DSTwitter, "fig9i") }},
		{"fig9j", "SSSP execution vs n on traffic* (Fig 9j)", func() (*Table, error) { return Fig9Exec(costmodel.SSSP, DSRoad, "fig9j") }},
		{"fig9k", "Refinement share of partitioning time (Fig 9k / Exp-3)", Fig9K},
		{"fig9l", "Scalability with |G| (Fig 9l / Exp-5)", Fig9L},
		{"table4", "Batch runtime under composite partitions (Table 4 / Fig 10a)", Table4},
		{"fig10b", "Composite partitioning time (Fig 10b / Exp-4)", Fig10B},
		{"space", "Composite space saving (Exp-4)", SpaceTable},
		{"table5", "Learned cost models (Table 5 / Exp-6)", Table5},
		{"fig11", "Phase decomposition (Fig 11, appendix)", Fig11},
		{"seqcmp", "Monolithic reference vs partitioned execution (Exp-6 remark)", SeqCompare},
		{"gingersweep", "Ginger threshold sweep vs cost-driven refinement", GingerSweep},
		{"ablation", "Design-choice ablations (DESIGN.md)", Ablations},
	}
}

// ByID returns the registered experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
