package bench

import (
	"adp/internal/costmodel"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

// Table3 reproduces Table 3: the partition-quality metrics fv, fe, λe,
// λv and the CN cost-balance factor λCN on the Twitter stand-in, for
// every baseline and its CN-driven H-refinement. The paper's headline
// reads off the λCN column: the H-variants collapse it while the
// static metrics barely move.
func Table3() (*Table, error) {
	const n = 8
	t := &Table{
		ID:     "table3",
		Title:  "Partition metrics of Twitter* (n=8)",
		Header: []string{"partitioner", "fv", "fe", "λe", "λv", "λCN"},
	}
	model := costmodel.Reference(costmodel.CN)
	for _, row := range fig9Rows {
		base, err := basePartition(DSTwitter, row.base, n)
		if err != nil {
			return nil, err
		}
		p := base
		name := row.base
		if row.refined {
			name = "H" + name
			spec, _ := partitioner.ByName(row.base)
			p = base.Clone()
			refine.ForFamily(spec.Family, p, model, refine.Config{})
		}
		m := p.ComputeMetrics()
		lcn := costmodel.LambdaCost(costmodel.Evaluate(p, model))
		t.addRow(
			[]string{name, fmtF(m.FV), fmtF(m.FE), fmtF(m.LambdaE), fmtF(m.LambdaV), fmtF(lcn)},
			[]float64{0, m.FV, m.FE, m.LambdaE, m.LambdaV, lcn},
		)
	}
	t.Notes = append(t.Notes,
		"paper (n=96): xtraPuLP λCN 7.2 -> HxtraPuLP 1.4; Fennel 13.7 -> 1.3; Grid 3.2 -> 1.3; NE 3.6 -> 1.4")
	return t, nil
}
