package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adp/internal/composite"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/serve"
	"adp/internal/store"
)

// epochWaveSize is the update-wave size of the epoch_publish series: a
// handful of mutations, the steady-state shape the serving plane's
// apply loop folds per publish. The point of the series is that the
// publish cost tracks this number, not the graph.
const epochWaveSize = 8

// epochGraph builds the large-graph COW workload: a 16-fragment k=2
// composite over a PowerLaw graph an order of magnitude bigger than
// the reference serving graph, so an O(graph) publish is visibly
// expensive while an O(delta) publish is not.
func epochGraph() (*graph.Graph, *composite.Composite, error) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 40000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 29})
	p1, err := partitioner.HashEdgeCut(g, 16)
	if err != nil {
		return nil, nil, err
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 16
	}
	p2, err := partition.FromVertexAssignment(g, assign, 16)
	if err != nil {
		return nil, nil, err
	}
	comp, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		return nil, nil, err
	}
	return g, comp, nil
}

// epochWaver generates the deterministic mutation stream both publish
// arms replay: a multiplicative stride walks vertex pairs, inserting
// absent arcs and deleting the ones it inserted earlier — the same
// scheme as the wal_append series, kept here so the composite never
// grows without bound.
type epochWaver struct {
	nv   uint32
	live map[uint64]bool
	step int
	dest []int
}

func newEpochWaver(g *graph.Graph) *epochWaver {
	return &epochWaver{nv: uint32(g.NumVertices()), live: map[uint64]bool{}, dest: []int{0, 1}}
}

// apply runs one wave of epochWaveSize mutations against comp.
func (w *epochWaver) apply(comp *composite.Composite) error {
	for m := 0; m < epochWaveSize; m++ {
		i := w.step
		w.step++
		u := uint32(i*2654435761) % w.nv
		v := (u + 1 + uint32(i*40503)%(w.nv-1)) % w.nv
		key := uint64(u)<<32 | uint64(v)
		if w.live[key] {
			delete(w.live, key)
			if !comp.DeleteEdge(graph.VertexID(u), graph.VertexID(v)) {
				return fmt.Errorf("bench: epoch wave delete (%d,%d) not present", u, v)
			}
		} else {
			w.live[key] = true
			if err := comp.InsertEdge(graph.VertexID(u), graph.VertexID(v), w.dest); err != nil {
				return fmt.Errorf("bench: epoch wave insert: %w", err)
			}
		}
	}
	return nil
}

// addEpochSeries measures the epoch-publication cost on the big-graph
// workload, both arms replaying identical waves:
//
//	epoch_publish            apply wave, CloneCOW (the serving path)
//	epoch_publish_fullclone  apply wave, deep Clone + Compile all
//
// and then the end-to-end write throughput of a live daemon under
// closed-loop /updates traffic, with and without FullClonePublish. The
// ≥5x acceptance gate is enforced here: a tree where the COW publish
// has decayed to within 5x of the full clone fails the bench run
// outright rather than emitting a quietly regressed number.
func addEpochSeries(rep *PerfReport, add func(string, testing.BenchmarkResult)) error {
	g, comp, err := epochGraph()
	if err != nil {
		return err
	}

	// Warm the composite once: compile everything and cut one snapshot
	// so both timed loops start from the steady serving state (all
	// fragments frozen-shared, waves thawing only what they touch).
	waver := newEpochWaver(g)
	sink := comp.CloneCOW()
	cow := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := waver.apply(comp); err != nil {
				b.Fatal(err)
			}
			sink = comp.CloneCOW()
		}
	})
	add("epoch_publish", cow)
	if sink == nil {
		return fmt.Errorf("bench: epoch_publish produced no snapshot")
	}

	full := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := waver.apply(comp); err != nil {
				b.Fatal(err)
			}
			sink = comp.Clone()
			for j := 0; j < sink.K(); j++ {
				sink.Partition(j).Compile()
			}
		}
	})
	add("epoch_publish_fullclone", full)

	cowNs := float64(cow.T.Nanoseconds()) / float64(cow.N)
	fullNs := float64(full.T.Nanoseconds()) / float64(full.N)
	if cowNs > 0 {
		rep.EpochPublishSpeedup = fullNs / cowNs
	}
	if rep.EpochPublishSpeedup < 5 {
		return fmt.Errorf("bench: epoch_publish speedup %.2fx vs full clone is below the 5x acceptance gate (%.2fms vs %.2fms per publish)",
			rep.EpochPublishSpeedup, cowNs/1e6, fullNs/1e6)
	}

	// End-to-end: acked write batches per second through a live daemon.
	if rep.ServeWriteQPS, err = serveWriteQPS(false); err != nil {
		return err
	}
	if rep.ServeWriteQPSFullClone, err = serveWriteQPS(true); err != nil {
		return err
	}
	if rep.ServeWriteQPS > 0 {
		rep.Results = append(rep.Results, PerfResult{Name: "serve_write_qps", NsPerOp: 1e9 / rep.ServeWriteQPS})
	}
	if rep.ServeWriteQPSFullClone > 0 {
		rep.Results = append(rep.Results, PerfResult{Name: "serve_write_qps_fullclone", NsPerOp: 1e9 / rep.ServeWriteQPSFullClone})
	}
	return nil
}

// serveWriteQPS boots a daemon over the big epoch graph and drives it
// with closed-loop write-only traffic: 8 workers, each owning a
// disjoint slice of writer-safe edges, posting delete+re-insert
// batches back to back. Returns acked batches per second.
func serveWriteQPS(fullClone bool) (float64, error) {
	g, comp, err := epochGraph()
	if err != nil {
		return 0, err
	}
	dir, err := os.MkdirTemp("", "adp-bench-epoch-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Create(dir, comp, store.Options{SyncEvery: 8})
	if err != nil {
		return 0, err
	}
	srv, err := serve.New(st, serve.Config{
		SessionsPerAlgo:  2,
		MaxInflight:      64,
		UpdateQueue:      256,
		FullClonePublish: fullClone,
	})
	if err != nil {
		st.Close()
		return 0, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	srv.Start(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	url := "http://" + l.Addr().String() + "/updates"

	// Writer-safe edges (same rule as serve.RunLoad): both endpoints
	// keep positive base out-degree so PR never divides by zero.
	type edge struct{ u, v graph.VertexID }
	var safe []edge
	g.Edges(func(u, v graph.VertexID) bool {
		if g.OutDegree(u) > 0 && g.OutDegree(v) > 0 {
			safe = append(safe, edge{u, v})
		}
		return len(safe) < 8192
	})
	const workers = 8
	if len(safe) < workers {
		return 0, fmt.Errorf("bench: too few writer-safe edges (%d)", len(safe))
	}
	// Truncate to a multiple of workers so the modular stride below
	// keeps each worker's edge subset disjoint.
	safe = safe[:len(safe)/workers*workers]

	tr := &http.Transport{MaxIdleConns: workers * 2, MaxIdleConnsPerHost: workers * 2}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	defer tr.CloseIdleConnections()

	post := func(e edge) error {
		body := fmt.Sprintf("- %d %d\n+ %d %d\ncommit\n", e.u, e.v, e.u, e.v)
		resp, err := client.Post(url, "text/plain", bytes.NewBufferString(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bench: /updates status %d", resp.StatusCode)
		}
		return nil
	}

	// Short untimed warmup so both arms measure steady state.
	for i := 0; i < 2*workers; i++ {
		if err := post(safe[i%len(safe)]); err != nil {
			return 0, err
		}
	}

	const measure = 1500 * time.Millisecond
	var (
		acked atomic.Int64
		errCh = make(chan error, workers)
		wg    sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(measure)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Disjoint per-worker edge subset: no two workers ever race
			// on deleting the same arc.
			for i := w; time.Now().Before(deadline); i += workers {
				if err := post(safe[i%len(safe)]); err != nil {
					errCh <- err
					return
				}
				acked.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	if acked.Load() == 0 {
		return 0, fmt.Errorf("bench: no write batches acked")
	}
	return float64(acked.Load()) / elapsed.Seconds(), nil
}
