package bench

import (
	"context"
	"errors"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/partitioner"
)

// TestConfiguredFaultsKeepCostsDeterministic: arming the bench layer
// with an injected schedule must not move a single reported cost —
// recovery replays to identical barrier state, so the simulated
// parallel cost is fault-invariant.
func TestConfiguredFaultsKeepCostsDeterministic(t *testing.T) {
	defer Configure(engine.Options{})
	g := gen.PowerLaw(gen.PowerLawConfig{N: 300, AvgDeg: 5, Exponent: 2.2, Directed: true, Seed: 21})
	p, err := partitioner.HashEdgeCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := defaultOpts(DSSocial)

	Configure(engine.Options{})
	want, err := runCost(p, costmodel.WCC, opts)
	if err != nil {
		t.Fatal(err)
	}
	Configure(engine.Options{Injector: fault.NewInjector(fault.Random(5, 6, 4, 6)...)})
	// Two faulty runs back to back: runOptions clones the injector per
	// run, so the second consumes a fresh schedule, not leftovers.
	for i := 0; i < 2; i++ {
		got, err := runCost(p, costmodel.WCC, opts)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("run %d: cost %v under faults, want %v", i, got, want)
		}
	}
}

// TestConfiguredContextCancelsExperiments: a dead configured context
// aborts an experiment driver before it does any work.
func TestConfiguredContextCancelsExperiments(t *testing.T) {
	defer Configure(engine.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Configure(engine.Options{Context: ctx})
	if _, err := Fig9Exec(costmodel.CN, DSSocial, "fig9a"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
