package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"adp/internal/composite"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/replica"
	"adp/internal/store"
)

// addReplSeries measures the replication plane over the in-process
// pipe transport on a clean network:
//
//   - replication_lag: wall time from a leader commit to the follower's
//     durable apply of that LSN — the freshness bound a min_lsn reader
//     actually waits out.
//   - failover: wall time from a dead leader to the promoted follower
//     acking its first own committed write (pump stop + log fence +
//     segment rotation + write + fsync).
func addReplSeries(rep *PerfReport) error {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 3000, AvgDeg: 6, Exponent: 2.1, Directed: true, Seed: 29})
	p1, err := partitioner.HashEdgeCut(g, 8)
	if err != nil {
		return err
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 8
	}
	p2, err := partition.FromVertexAssignment(g, assign, 8)
	if err != nil {
		return err
	}
	comp, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "adp-bench-repl-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Create(filepath.Join(dir, "leader"), comp, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()

	// The same deterministic toggle stream addStoreSeries uses: fresh
	// pairs insert, collisions with the live set delete.
	nv := uint32(g.NumVertices())
	dest := []int{0, 1}
	live := map[uint64]bool{}
	step := 1 << 16
	mutate := func() error {
		u32 := uint32(step*2654435761) % nv
		v32 := (u32 + 1 + uint32(step*40503)%(nv-1)) % nv
		step++
		u, v := graph.VertexID(u32), graph.VertexID(v32)
		key := uint64(u)<<32 | uint64(v)
		if live[key] {
			delete(live, key)
			_, err := st.Delete(u, v)
			return err
		}
		live[key] = true
		return st.Insert(u, v, dest)
	}
	commitBatch := func(muts int) error {
		for i := 0; i < muts; i++ {
			if err := mutate(); err != nil {
				return err
			}
		}
		return st.Commit()
	}

	// Seed history so bootstrap ships a real snapshot.
	for i := 0; i < 10; i++ {
		if err := commitBatch(4); err != nil {
			return err
		}
	}

	ld := replica.NewLeader(st, replica.LeaderConfig{})
	defer ld.Close()
	pipe := replica.NewPipe(ld, nil, nil)
	defer pipe.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fst, err := replica.Bootstrap(ctx, pipe.Dialer(), filepath.Join(dir, "follower"), g, store.Options{})
	if err != nil {
		return err
	}
	defer fst.Close()

	appliedCh := make(chan uint64, 256)
	pump := replica.NewFollower(&replica.StoreApplier{St: fst}, replica.FollowerConfig{
		ID:           "bench-1",
		Dial:         pipe.Dialer(),
		PollInterval: 200 * time.Microsecond,
		MaxFrames:    1024,
		OnApplied: func(lsn uint64) {
			select {
			case appliedCh <- lsn:
			default:
			}
		},
	})
	pump.Start()
	defer pump.Stop()

	waitApplied := func(target uint64) error {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		deadline := time.After(20 * time.Second)
		for pump.Applied() < target {
			select {
			case <-appliedCh:
			case <-tick.C:
			case <-deadline:
				return fmt.Errorf("bench: follower stuck at %d chasing %d", pump.Applied(), target)
			}
		}
		return nil
	}

	// replication_lag: commit on the leader, stamp when the follower's
	// durable watermark covers it. A few warm-up rounds let the pump
	// settle into its poll cadence before the clock starts.
	const warm, rounds = 4, 32
	var total time.Duration
	for i := 0; i < warm+rounds; i++ {
		t0 := time.Now()
		if err := commitBatch(4); err != nil {
			return err
		}
		if err := waitApplied(st.CommittedLSN()); err != nil {
			return err
		}
		if i >= warm {
			total += time.Since(t0)
		}
	}
	lag := total / rounds
	rep.ReplicationLagMs = float64(lag) / float64(time.Millisecond)
	rep.Results = append(rep.Results, PerfResult{Name: "replication_lag", NsPerOp: float64(lag.Nanoseconds())})

	// failover: kill the transport, promote, and time to the first own
	// committed write on the new leader. The follower is fully caught
	// up at this point, so no acked history is at stake.
	t0 := time.Now()
	pipe.Close()
	if err := pump.Promote(); err != nil {
		return err
	}
	u32 := uint32(step*2654435761) % nv
	v32 := (u32 + 1 + uint32(step*40503)%(nv-1)) % nv
	if err := fst.Insert(graph.VertexID(u32), graph.VertexID(v32), dest); err != nil {
		return err
	}
	if err := fst.Commit(); err != nil {
		return err
	}
	fo := time.Since(t0)
	rep.FailoverMs = float64(fo) / float64(time.Millisecond)
	rep.Results = append(rep.Results, PerfResult{Name: "failover", NsPerOp: float64(fo.Nanoseconds())})
	return nil
}
