package bench

import (
	"fmt"
	"time"

	"adp/internal/costmodel"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

// Fig10B reproduces Fig 10(b) / Exp-4 (time): building ONE composite
// partition for the whole batch versus running the per-algorithm
// refiner five times, per baseline. The paper reports ParMHP 19-111%
// faster than the ParHP loop.
func Fig10B() (*Table, error) {
	bases := []string{"xtraPuLP", "Fennel", "Grid", "NE"}
	t := &Table{
		ID:     "fig10b",
		Title:  "Partitioning time for the batch (wall ms)",
		Header: []string{"baseline", "init+ParMHP", "init+5xParHP", "5x(init+ParHP)", "vs ParHP", "vs brute force"},
	}
	g := Dataset(batchGraphName)
	for _, bName := range bases {
		r, err := compositeFor(bName)
		if err != nil {
			return nil, err
		}
		spec, _ := partitioner.ByName(bName)
		initStart := time.Now()
		if _, err := spec.Run(g, batchN); err != nil {
			return nil, err
		}
		initMS := float64(time.Since(initStart).Microseconds()) / 1000
		start := time.Now()
		for _, algo := range batchAlgos {
			p := r.base.Clone()
			refine.ForFamily(spec.Family, p, costmodel.Reference(algo), refine.Config{})
		}
		hpTime := time.Since(start)
		mhpMS := initMS + float64(r.build.Microseconds())/1000
		hpMS := initMS + float64(hpTime.Microseconds())/1000
		// The Example-2 brute force: five fully separate pipelines,
		// each paying the initial partitioner too.
		bruteMS := 5*initMS + float64(hpTime.Microseconds())/1000
		t.addRow(
			[]string{bName, fmtF(mhpMS), fmtF(hpMS), fmtF(bruteMS),
				fmt.Sprintf("%.2fx", hpMS/mhpMS), fmt.Sprintf("%.2fx", bruteMS/mhpMS)},
			[]float64{0, mhpMS, hpMS, bruteMS, hpMS / mhpMS, bruteMS / mhpMS},
		)
	}
	t.Notes = append(t.Notes,
		"paper: ParMHP 109%/104%/19%/111% faster than the ParHP loop for xtraPuLP/Fennel/Grid/NE",
		"in-process, in-place E2H/V2H refinement is cheap relative to building 5 fresh partitions, so the pure-refinement comparison can invert; see EXPERIMENTS.md")
	return t, nil
}

// SpaceTable reproduces the Exp-4 space comparison: composite storage
// versus five separate refined partitions and versus the initial
// static partition. The paper reports 51-67% saving against separate
// storage at 15-58% overhead over the initial partition.
func SpaceTable() (*Table, error) {
	bases := []string{"xtraPuLP", "Fennel", "Grid", "NE"}
	t := &Table{
		ID:     "space",
		Title:  "Composite space (arcs stored)",
		Header: []string{"baseline", "initial", "composite", "separate", "saving", "fc"},
	}
	for _, bName := range bases {
		r, err := compositeFor(bName)
		if err != nil {
			return nil, err
		}
		initial := r.base.StorageArcs()
		comp := r.comp.StorageArcs()
		sep := r.comp.SeparateStorageArcs()
		saving := 1 - float64(comp)/float64(sep)
		t.addRow(
			[]string{bName, fmt.Sprintf("%d", initial), fmt.Sprintf("%d", comp), fmt.Sprintf("%d", sep),
				fmt.Sprintf("%.0f%%", saving*100), fmt.Sprintf("%.2f", r.comp.FC())},
			[]float64{0, float64(initial), float64(comp), float64(sep), saving, r.comp.FC()},
		)
	}
	t.Notes = append(t.Notes, "paper: composite saves 55%/51%/61%/67% vs separate storage for xtraPuLP/Fennel/Grid/NE")
	return t, nil
}
