package bench

import (
	"fmt"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/refine"
)

// Ablations measures the design choices DESIGN.md calls out:
//
//  1. BFS-coherent GetCandidates vs arbitrary candidate order —
//     locality (fe) and cost of the refined partition;
//  2. cost-aware MAssign vs keeping initial masters — parallel cost;
//  3. GetDest greedy set cover vs independent destinations — fc;
//  4. VMerge on/off — v-cut count and parallel cost for TC.
func Ablations() (*Table, error) {
	const n = 4
	t := &Table{
		ID:     "ablation",
		Title:  "Design-choice ablations (Twitter*, n=4)",
		Header: []string{"ablation", "with", "without", "metric"},
	}
	cn := costmodel.Reference(costmodel.CN)

	// (1) GetCandidates BFS order.
	base, err := basePartition(DSTwitter, "Fennel", n)
	if err != nil {
		return nil, err
	}
	bfsP, arbP := base.Clone(), base.Clone()
	refine.E2H(bfsP, cn, refine.Config{})
	refine.E2H(arbP, cn, refine.Config{ArbitraryCandidates: true})
	t.addRow(
		[]string{"GetCandidates BFS", fmtF(bfsP.ComputeMetrics().FE), fmtF(arbP.ComputeMetrics().FE), "fe (locality)"},
		[]float64{0, bfsP.ComputeMetrics().FE, arbP.ComputeMetrics().FE, 0},
	)

	// (2) MAssign on/off.
	withM, noM := base.Clone(), base.Clone()
	refine.E2H(withM, cn, refine.Config{Phases: 3})
	refine.E2H(noM, cn, refine.Config{Phases: 2})
	cw := costmodel.ParallelCost(costmodel.Evaluate(withM, cn))
	cn2 := costmodel.ParallelCost(costmodel.Evaluate(noM, cn))
	t.addRow(
		[]string{"MAssign", fmtF(cw), fmtF(cn2), "parallel cost"},
		[]float64{0, cw, cn2, 0},
	)

	// (3) GetDest greedy cover vs naive destinations.
	greedy, _, err := composite.ME2H(base, batchModels(), composite.Options{})
	if err != nil {
		return nil, err
	}
	naive, _, err := composite.ME2H(base, batchModels(), composite.Options{NaiveDest: true})
	if err != nil {
		return nil, err
	}
	t.addRow(
		[]string{"GetDest set cover", fmt.Sprintf("%.2f", greedy.FC()), fmt.Sprintf("%.2f", naive.FC()), "fc (composite replication)"},
		[]float64{0, greedy.FC(), naive.FC(), 0},
	)

	// (4) VMerge on/off for TC on a vertex-cut.
	tc := costmodel.Reference(costmodel.TC)
	vcBase, err := basePartition(algoDataset(DSTwitter, costmodel.TC), "Grid", n)
	if err != nil {
		return nil, err
	}
	withMerge, noMerge := vcBase.Clone(), vcBase.Clone()
	refine.V2H(withMerge, tc, refine.Config{Phases: 3})
	refine.V2H(noMerge, tc, refine.Config{Phases: 1})
	cwm := costmodel.ParallelCost(costmodel.Evaluate(withMerge, tc))
	cnm := costmodel.ParallelCost(costmodel.Evaluate(noMerge, tc))
	t.addRow(
		[]string{"VMerge (TC)", fmtF(cwm), fmtF(cnm), "parallel cost"},
		[]float64{0, cwm, cnm, 0},
	)

	// (5) Superstep batch size b of Section 5.3: a tiny batch forces
	// many BSP rounds; the quality of the result should be insensitive
	// to it (only the round count changes).
	small, large := base.Clone(), base.Clone()
	refine.ParE2H(small, cn, refine.Config{BatchSize: 4})
	refine.ParE2H(large, cn, refine.Config{BatchSize: 512})
	cs := costmodel.ParallelCost(costmodel.Evaluate(small, cn))
	cl := costmodel.ParallelCost(costmodel.Evaluate(large, cn))
	t.addRow(
		[]string{"batch size b=4 vs 512", fmtF(cs), fmtF(cl), "parallel cost"},
		[]float64{0, cs, cl, 0},
	)
	return t, nil
}
