package bench

import (
	"fmt"
	"time"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/refine"
)

// batchAlgos is the fixed mixed workload of Exp-2/4/5:
// {CN, TC, WCC, PR, SSSP}.
var batchAlgos = []costmodel.Algo{costmodel.CN, costmodel.TC, costmodel.WCC, costmodel.PR, costmodel.SSSP}

func batchModels() []costmodel.CostModel {
	out := make([]costmodel.CostModel, len(batchAlgos))
	for i, a := range batchAlgos {
		out[i] = costmodel.Reference(a)
	}
	return out
}

// batchGraphName is the dataset the mixed-workload experiments run on:
// the symmetrised Twitter stand-in, so TC can share the partition with
// the directed algorithms exactly as the paper runs its batch on one
// graph.
const batchGraphName = DSTwitter + "-u"

const batchN = 4

// compositeFor builds (and caches) the composite partition for one
// baseline, plus the baseline itself and the build wall time.
type compositeResult struct {
	comp  *composite.Composite
	base  *partition.Partition
	build time.Duration
}

var compositeCache = map[string]*compositeResult{}

func compositeFor(baseName string) (*compositeResult, error) {
	if r, ok := compositeCache[baseName]; ok {
		return r, nil
	}
	spec, ok := partitioner.ByName(baseName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown baseline %q", baseName)
	}
	base, err := basePartition(batchGraphName, baseName, batchN)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var comp *composite.Composite
	switch spec.Family {
	case partitioner.EdgeCutFamily:
		comp, _, err = composite.ME2H(base, batchModels(), composite.Options{})
	case partitioner.VertexCutFamily:
		comp, _, err = composite.MV2H(base, batchModels(), composite.Options{})
	default:
		return nil, fmt.Errorf("bench: %s is not refinable", baseName)
	}
	if err != nil {
		return nil, err
	}
	r := &compositeResult{comp: comp, base: base, build: time.Since(start)}
	compositeCache[baseName] = r
	return r, nil
}

// Table4 reproduces Table 4 / Fig 10(a): the simulated runtime of each
// algorithm in the batch over the composite M-partitions against the
// initial baseline partitions, with the speedup ratio X, plus the
// batch totals (row B) and the total over dedicated per-algorithm
// ParHP refinements for the Fig-10(a) comparison.
func Table4() (*Table, error) {
	opts := defaultOpts(DSTwitter)
	bases := []string{"xtraPuLP", "Fennel", "Grid", "NE"}
	t := &Table{
		ID:     "table4",
		Title:  fmt.Sprintf("Batch runtime over composite partitions (Twitter*, n=%d, work units)", batchN),
		Header: []string{"app"},
	}
	for _, b := range bases {
		t.Header = append(t.Header, "M"+b, b, "X")
	}
	// Gather per-algorithm costs.
	type col struct {
		mCost, baseCost []float64 // per algorithm
		parHPTotal      float64
		mTotal, baseTot float64
	}
	cols := map[string]*col{}
	for _, bName := range bases {
		r, err := compositeFor(bName)
		if err != nil {
			return nil, err
		}
		c := &col{}
		spec, _ := partitioner.ByName(bName)
		// One pool item per algorithm in the batch: each simulates the
		// composite, baseline and dedicated-refinement runs for its
		// own slot.
		type algoCosts struct {
			m, base, ded float64
			err          error
		}
		runs := pool.Map(pool.Default(), len(batchAlgos), func(j int) algoCosts {
			algo := batchAlgos[j]
			mc, err := runCost(r.comp.Partition(j), algo, opts)
			if err != nil {
				return algoCosts{err: fmt.Errorf("M%s/%v: %w", bName, algo, err)}
			}
			bc, err := runCost(r.base, algo, opts)
			if err != nil {
				return algoCosts{err: fmt.Errorf("%s/%v: %w", bName, algo, err)}
			}
			// Dedicated ParHP refinement for the Fig-10a comparison.
			ded := r.base.Clone()
			refine.ForFamily(spec.Family, ded, costmodel.Reference(algo), refine.Config{})
			dc, err := runCost(ded, algo, opts)
			if err != nil {
				return algoCosts{err: err}
			}
			return algoCosts{m: mc, base: bc, ded: dc}
		})
		for _, ac := range runs {
			if ac.err != nil {
				return nil, ac.err
			}
			c.mCost = append(c.mCost, ac.m)
			c.baseCost = append(c.baseCost, ac.base)
			c.mTotal += ac.m
			c.baseTot += ac.base
			c.parHPTotal += ac.ded
		}
		cols[bName] = c
	}
	for j, algo := range batchAlgos {
		cells := []string{algo.String()}
		values := []float64{0}
		for _, bName := range bases {
			c := cols[bName]
			x := c.baseCost[j] / c.mCost[j]
			cells = append(cells, fmtF(c.mCost[j]), fmtF(c.baseCost[j]), fmt.Sprintf("%.1f", x))
			values = append(values, c.mCost[j], c.baseCost[j], x)
		}
		t.addRow(cells, values)
	}
	// Batch totals.
	cells := []string{"B"}
	values := []float64{0}
	for _, bName := range bases {
		c := cols[bName]
		x := c.baseTot / c.mTotal
		cells = append(cells, fmtF(c.mTotal), fmtF(c.baseTot), fmt.Sprintf("%.1f", x))
		values = append(values, c.mTotal, c.baseTot, x)
	}
	t.addRow(cells, values)
	// Fig 10(a): composite vs dedicated refinement totals.
	for _, bName := range bases {
		c := cols[bName]
		gap := (c.mTotal - c.parHPTotal) / c.parHPTotal * 100
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: batch over ParMHP %.4g vs ParHP %.4g work units (composite overhead %+.1f%%; paper reports at most +8.2%%)",
			bName, c.mTotal, c.parHPTotal, gap))
	}
	return t, nil
}

// batchOutcomesMatchOracle verifies that every algorithm in the batch
// returns oracle-identical results over its composite partition; used
// by the tests rather than the printed table.
func batchOutcomesMatchOracle(baseName string) error {
	r, err := compositeFor(baseName)
	if err != nil {
		return err
	}
	g := Dataset(batchGraphName)
	opts := defaultOpts(DSTwitter)
	for j, algo := range batchAlgos {
		want := algorithms.SeqOutcome(g, algo, opts)
		got, err := algorithms.Run(engine.NewCluster(r.comp.Partition(j)), algo, opts)
		if err != nil {
			return fmt.Errorf("%v: %w", algo, err)
		}
		if got.Checksum != want.Checksum {
			return fmt.Errorf("%v: checksum mismatch over composite partition %d", algo, j)
		}
	}
	return nil
}
