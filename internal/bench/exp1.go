package bench

import (
	"fmt"

	"adp/internal/costmodel"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

// fig9NS are the fragment counts swept by the Fig-9 experiments —
// the paper's 16..128 workers scaled to in-process size.
var fig9NS = []int{4, 8, 12}

// fig9Rows lists the partitioner variants each Fig-9 chart plots:
// every baseline plus its H-refinement (hybrid baselines have none).
var fig9Rows = []struct {
	base    string
	refined bool
}{
	{"xtraPuLP", false}, {"xtraPuLP", true},
	{"Fennel", false}, {"Fennel", true},
	{"Grid", false}, {"Grid", true},
	{"NE", false}, {"NE", true},
	{"Ginger", false},
	{"TopoX", false},
}

// Fig9Exec reproduces one Fig-9 execution-time chart: the simulated
// parallel cost of algo on dataset for every partitioner variant,
// varying the fragment count.
func Fig9Exec(algo costmodel.Algo, dataset, id string) (*Table, error) {
	ds := algoDataset(dataset, algo)
	opts := defaultOpts(dataset)
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%v on %s: simulated parallel cost (work units)", algo, dataset),
		Header: []string{"partitioner"},
	}
	for _, n := range fig9NS {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	model := costmodel.Reference(algo)
	var sumSpeed, cntSpeed float64
	baseCost := map[int]map[string]float64{}
	for _, row := range fig9Rows {
		name := row.base
		if row.refined {
			name = "H" + name
		}
		cells := []string{name}
		values := []float64{0}
		for _, n := range fig9NS {
			base, err := basePartition(ds, row.base, n)
			if err != nil {
				return nil, err
			}
			p := base
			if row.refined {
				spec, _ := partitioner.ByName(row.base)
				p = base.Clone()
				refine.ForFamily(spec.Family, p, model, refine.Config{})
			}
			cost, err := runCost(p, algo, opts)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", name, n, err)
			}
			cells = append(cells, fmtF(cost))
			values = append(values, cost)
			if baseCost[n] == nil {
				baseCost[n] = map[string]float64{}
			}
			if row.refined {
				if b := baseCost[n][row.base]; b > 0 && cost > 0 {
					sumSpeed += b / cost
					cntSpeed++
				}
			} else {
				baseCost[n][row.base] = cost
			}
		}
		t.addRow(cells, values)
	}
	if cntSpeed > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("average H-refinement speedup: %.2fx", sumSpeed/cntSpeed))
	}
	return t, nil
}
