package bench

import (
	"fmt"

	"adp/internal/costmodel"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/refine"
)

// fig9NS are the fragment counts swept by the Fig-9 experiments —
// the paper's 16..128 workers scaled to in-process size.
var fig9NS = []int{4, 8, 12}

// fig9Rows lists the partitioner variants each Fig-9 chart plots:
// every baseline plus its H-refinement (hybrid baselines have none).
var fig9Rows = []struct {
	base    string
	refined bool
}{
	{"xtraPuLP", false}, {"xtraPuLP", true},
	{"Fennel", false}, {"Fennel", true},
	{"Grid", false}, {"Grid", true},
	{"NE", false}, {"NE", true},
	{"Ginger", false},
	{"TopoX", false},
}

// Fig9Exec reproduces one Fig-9 execution-time chart: the simulated
// parallel cost of algo on dataset for every partitioner variant,
// varying the fragment count.
func Fig9Exec(algo costmodel.Algo, dataset, id string) (*Table, error) {
	ctx := benchCtx()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ds := algoDataset(dataset, algo)
	opts := defaultOpts(dataset)
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%v on %s: simulated parallel cost (work units)", algo, dataset),
		Header: []string{"partitioner"},
	}
	for _, n := range fig9NS {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	model := costmodel.Reference(algo)
	// Warm the baseline-partition cache once per distinct (base, n)
	// pair so the concurrent grid below never runs a partitioner
	// twice for the same key.
	type warmKey struct {
		base string
		n    int
	}
	var warm []warmKey
	seen := map[warmKey]bool{}
	for _, row := range fig9Rows {
		for _, n := range fig9NS {
			k := warmKey{row.base, n}
			if !seen[k] {
				seen[k] = true
				warm = append(warm, k)
			}
		}
	}
	warmErrs := pool.Map(pool.Default(), len(warm), func(i int) error {
		_, err := basePartition(ds, warm[i].base, warm[i].n)
		return err
	})
	for _, err := range warmErrs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Evaluate the whole (variant, n) grid as one pool batch: each
	// cell clones, refines and simulates independently and writes its
	// own slot, so the table is deterministic for any worker count.
	type cell struct {
		cost float64
		err  error
	}
	cols := len(fig9NS)
	grid := pool.Map(pool.Default(), len(fig9Rows)*cols, func(idx int) cell {
		row, n := fig9Rows[idx/cols], fig9NS[idx%cols]
		base, err := basePartition(ds, row.base, n)
		if err != nil {
			return cell{err: err}
		}
		p := base
		if row.refined {
			spec, _ := partitioner.ByName(row.base)
			p = base.Clone()
			refine.ForFamily(spec.Family, p, model, refine.Config{})
		}
		cost, err := runCost(p, algo, opts)
		return cell{cost: cost, err: err}
	})
	var sumSpeed, cntSpeed float64
	baseCost := map[int]map[string]float64{}
	for r, row := range fig9Rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := row.base
		if row.refined {
			name = "H" + name
		}
		cells := []string{name}
		values := []float64{0}
		for c, n := range fig9NS {
			g := grid[r*cols+c]
			if g.err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", name, n, g.err)
			}
			cells = append(cells, fmtF(g.cost))
			values = append(values, g.cost)
			if baseCost[n] == nil {
				baseCost[n] = map[string]float64{}
			}
			if row.refined {
				if b := baseCost[n][row.base]; b > 0 && g.cost > 0 {
					sumSpeed += b / g.cost
					cntSpeed++
				}
			} else {
				baseCost[n][row.base] = g.cost
			}
		}
		t.addRow(cells, values)
	}
	if cntSpeed > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("average H-refinement speedup: %.2fx", sumSpeed/cntSpeed))
	}
	return t, nil
}
