package bench

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/serve"
	"adp/internal/store"
)

// ServeLoadConfig shapes the serving-plane load measurement.
type ServeLoadConfig struct {
	// Duration per phase (three phases run). Default 2s.
	Duration time.Duration
	// Workers is the client concurrency. Default 16.
	Workers int
	// TargetQPS paces the two open-loop phases. Default 1000 — the
	// acceptance floor for mixed traffic on the reference graph.
	TargetQPS float64
	// RunFraction of requests that are POST /run (the rest are vertex
	// reads). Default 0.02.
	RunFraction float64
	// Warmup is the untimed closed-loop phase that runs before any
	// measured phase. A cold daemon pays first-touch costs on its first
	// few hundred requests — lazily built session pools, first engine
	// runs per algorithm, heap growth to steady state — and whichever
	// measured phase runs first would absorb them (BENCH_8 recorded a
	// no-writer p99 above the with-writer p99 purely from this phase-
	// ordering skew). Default 1s.
	Warmup time.Duration
	Seed   int64
}

func (c *ServeLoadConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.TargetQPS <= 0 {
		c.TargetQPS = 1000
	}
	if c.RunFraction <= 0 {
		c.RunFraction = 0.02
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ServeLoadResult carries the three measured phases.
type ServeLoadResult struct {
	// Open is the open-loop phase at TargetQPS with no writer — the
	// honest read-latency baseline.
	Open *serve.LoadResult
	// OpenWriter repeats it with a background /updates mutator swapping
	// epochs under the readers.
	OpenWriter *serve.LoadResult
	// Closed is the closed-loop saturation phase (max mixed QPS).
	Closed *serve.LoadResult
}

// ServeLoad boots a serving daemon over the reference benchmark graph
// (PowerLaw N=6000, the engine_run workload) on a loopback listener and
// drives the three-phase load measurement against it.
func ServeLoad(cfg ServeLoadConfig) (*ServeLoadResult, error) {
	cfg.fill()
	g := gen.PowerLaw(gen.PowerLawConfig{N: 6000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 23})
	p1, err := partitioner.HashEdgeCut(g, 8)
	if err != nil {
		return nil, err
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 8
	}
	p2, err := partition.FromVertexAssignment(g, assign, 8)
	if err != nil {
		return nil, err
	}
	comp, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "adp-bench-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Create(dir, comp, store.Options{SyncEvery: 8})
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(st, serve.Config{SessionsPerAlgo: 4, MaxInflight: 256, UpdateQueue: 64})
	if err != nil {
		st.Close()
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv.Start(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	url := "http://" + l.Addr().String()

	base := serve.LoadConfig{
		Duration:    cfg.Duration,
		Workers:     cfg.Workers,
		RunFraction: cfg.RunFraction,
		Algos:       []costmodel.Algo{costmodel.WCC},
		Seed:        cfg.Seed,
	}
	res := &ServeLoadResult{}

	// Untimed warmup: closed-loop mixed traffic with a writer, heavy on
	// /run, so session pools, engine first-runs and the heap all reach
	// steady state before the first measured phase. Its result is
	// discarded — only its side effects matter.
	warm := base
	warm.Duration = cfg.Warmup
	warm.RunFraction = 0.2
	warm.Writer = true
	warm.WriterEvery = 20 * time.Millisecond
	warm.Seed = cfg.Seed + 3
	if _, err = serve.RunLoad(url, g, warm); err != nil {
		return nil, err
	}

	open := base
	open.TargetQPS = cfg.TargetQPS
	if res.Open, err = serve.RunLoad(url, g, open); err != nil {
		return nil, err
	}
	withWriter := open
	withWriter.Writer = true
	withWriter.WriterEvery = 10 * time.Millisecond
	withWriter.Seed = cfg.Seed + 1
	if res.OpenWriter, err = serve.RunLoad(url, g, withWriter); err != nil {
		return nil, err
	}
	closed := base
	closed.Seed = cfg.Seed + 2
	if res.Closed, err = serve.RunLoad(url, g, closed); err != nil {
		return nil, err
	}
	if res.Closed.Errors > 0 || res.Open.Errors > 0 || res.OpenWriter.Errors > 0 {
		return nil, fmt.Errorf("bench: serve load saw request errors (%d/%d/%d)",
			res.Open.Errors, res.OpenWriter.Errors, res.Closed.Errors)
	}
	return res, nil
}

// addServeSeries folds the serving measurement into the perf report:
// serve_qps (mean ns per request at closed-loop saturation, i.e.
// 1e9/QPS), serve_p99 (open-loop read p99 with a concurrent writer) and
// serve_p99_nowriter (the no-writer baseline the 2x gate compares
// against).
func addServeSeries(rep *PerfReport, cfg ServeLoadConfig) error {
	res, err := ServeLoad(cfg)
	if err != nil {
		return err
	}
	if res.Closed.QPS > 0 {
		rep.Results = append(rep.Results, PerfResult{Name: "serve_qps", NsPerOp: 1e9 / res.Closed.QPS})
	}
	rep.Results = append(rep.Results,
		PerfResult{Name: "serve_p99", NsPerOp: float64(res.OpenWriter.ReadP99)},
		PerfResult{Name: "serve_p99_nowriter", NsPerOp: float64(res.Open.ReadP99)},
	)
	rep.ServeQPS = res.Closed.QPS
	rep.ServeReadP99Ms = float64(res.OpenWriter.ReadP99) / 1e6
	rep.ServeReadP99NoWriterMs = float64(res.Open.ReadP99) / 1e6
	return nil
}
