package bench

import (
	"bytes"
	"strings"
	"testing"

	"adp/internal/costmodel"
)

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := ByID("table3"); !ok {
		t.Fatal("ByID(table3) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID invented an experiment")
	}
	want := []string{"table3", "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
		"fig9g", "fig9h", "fig9i", "fig9j", "fig9k", "fig9l", "table4", "fig10b",
		"space", "table5", "fig11", "seqcmp", "gingersweep", "ablation"}
	if len(Experiments()) != len(want) {
		t.Fatalf("expected %d experiments, got %d", len(want), len(Experiments()))
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestDatasetCacheAndVariants(t *testing.T) {
	a := Dataset(DSSocial)
	b := Dataset(DSSocial)
	if a != b {
		t.Fatal("dataset not cached")
	}
	u := Dataset(DSSocial + "-u")
	if !u.Undirected() {
		t.Fatal("-u variant not symmetrised")
	}
	if u.NumVertices() != a.NumVertices() {
		t.Fatal("-u variant changed the vertex set")
	}
}

func TestDatasetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	Dataset("nope")
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tbl.addRow([]string{"row", "1.0"}, []float64{0, 1})
	tbl.Notes = append(tbl.Notes, "hello")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "row", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Table 3's headline: the CN-driven refinement collapses the cost
// balance factor λCN of the edge-cut baselines while the static
// metrics stay in the same regime.
func TestTable3Claims(t *testing.T) {
	tbl, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	lcn := map[string]float64{}
	for i, row := range tbl.Rows {
		lcn[row[0]] = tbl.Values[i][5]
	}
	for _, base := range []string{"xtraPuLP", "Fennel"} {
		if lcn["H"+base] >= lcn[base] {
			t.Errorf("λCN of H%s (%v) not below %s (%v)", base, lcn["H"+base], base, lcn[base])
		}
	}
}

// Fig 9(a) on the liveJournal stand-in: the H-refinements must beat
// their baselines for CN on average (the paper's headline effect).
func TestFig9CNSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	tbl, err := Fig9Exec(costmodel.CN, DSSocial, "fig9a")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for i, row := range tbl.Rows {
		byName[row[0]] = tbl.Values[i][1:]
	}
	// At the largest n, HFennel must beat Fennel clearly.
	last := len(fig9NS)
	if h, b := byName["HFennel"][last-1], byName["Fennel"][last-1]; h >= b {
		t.Errorf("HFennel (%v) not below Fennel (%v) at n=%d", h, b, fig9NS[last-1])
	}
	if h, b := byName["HxtraPuLP"][last-1], byName["xtraPuLP"][last-1]; h >= b {
		t.Errorf("HxtraPuLP (%v) not below xtraPuLP (%v)", h, b)
	}
}

// Exp-2 correctness gate: every algorithm of the batch must return
// oracle-identical results over its composite partition.
func TestBatchCompositeCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	if err := batchOutcomesMatchOracle("NE"); err != nil {
		t.Fatal(err)
	}
}

// The Exp-4 space claim: composite storage beats separate storage for
// every baseline.
func TestSpaceSaving(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	tbl, err := SpaceTable()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		if saving := tbl.Values[i][4]; saving <= 0.2 {
			t.Errorf("%s: composite saving only %.0f%%", row[0], saving*100)
		}
	}
}

// The ablation invariants that must hold regardless of machine:
// greedy GetDest never yields a worse fc than naive destinations, and
// VMerge never hurts TC's parallel cost.
func TestAblationInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	tbl, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		with, without := tbl.Values[i][1], tbl.Values[i][2]
		switch row[0] {
		case "GetDest set cover":
			if with > without*1.001 {
				t.Errorf("greedy GetDest fc %v worse than naive %v", with, without)
			}
		case "VMerge (TC)":
			if with > without*1.05 {
				t.Errorf("VMerge made TC worse: %v vs %v", with, without)
			}
		case "MAssign":
			if with > without*1.05 {
				t.Errorf("MAssign made things worse: %v vs %v", with, without)
			}
		}
	}
}

// Cost-model learning from engine logs must reach the paper's
// accuracy bar for the well-behaved models.
func TestTrainedModelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full training sweep")
	}
	for _, algo := range []costmodel.Algo{costmodel.PR, costmodel.WCC, costmodel.SSSP} {
		tm, err := TrainFromLogs(algo, false)
		if err != nil {
			t.Fatal(err)
		}
		if tm.MSRE > 0.11 {
			t.Errorf("%v hA MSRE = %v, want ≤ 0.11", algo, tm.MSRE)
		}
		tg, err := TrainFromLogs(algo, true)
		if err != nil {
			t.Fatal(err)
		}
		if tg.MSRE > 0.11 {
			t.Errorf("%v gA MSRE = %v, want ≤ 0.11", algo, tg.MSRE)
		}
	}
}
