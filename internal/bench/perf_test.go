package bench

import (
	"bytes"
	"strings"
	"testing"
)

func reportWith(results ...PerfResult) *PerfReport {
	return &PerfReport{Schema: "adp-bench/2", Results: results}
}

func encode(t *testing.T, r *PerfReport) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// TestCompareAgainstGates exercises every gate family: ns/op on
// engine_run, allocs/op and bytes/op on any shared series, the jitter
// floors, and the missing-series escape hatch.
func TestCompareAgainstGates(t *testing.T) {
	prior := reportWith(
		PerfResult{Name: "engine_run", NsPerOp: 100e6, AllocsPerOp: 1000, BytesPerOp: 1 << 20},
		PerfResult{Name: "csr_bytes_compressed", BytesPerOp: 40 << 20},
		PerfResult{Name: "wal_append", NsPerOp: 10000, AllocsPerOp: 0, BytesPerOp: 300},
	)
	cases := []struct {
		name string
		cur  *PerfReport
		want string // "" = must pass
	}{
		{"identical", prior, ""},
		{"ns regression", reportWith(
			PerfResult{Name: "engine_run", NsPerOp: 130e6, AllocsPerOp: 1000, BytesPerOp: 1 << 20},
		), "engine_run regressed"},
		{"alloc regression", reportWith(
			PerfResult{Name: "engine_run", NsPerOp: 100e6, AllocsPerOp: 1300, BytesPerOp: 1 << 20},
		), "engine_run allocs/op regressed"},
		{"bytes regression", reportWith(
			PerfResult{Name: "csr_bytes_compressed", BytesPerOp: 60 << 20},
		), "csr_bytes_compressed bytes/op regressed"},
		{"small jitter under floors", reportWith(
			PerfResult{Name: "wal_append", NsPerOp: 10000, AllocsPerOp: 2, BytesPerOp: 900},
		), ""},
		{"fresh series skipped", reportWith(
			PerfResult{Name: "ingest_10m", NsPerOp: 9e9, AllocsPerOp: 1 << 20, BytesPerOp: 1 << 30},
		), ""},
		{"improvement passes", reportWith(
			PerfResult{Name: "engine_run", NsPerOp: 50e6, AllocsPerOp: 10, BytesPerOp: 1 << 10},
			PerfResult{Name: "csr_bytes_compressed", BytesPerOp: 10 << 20},
		), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cur.CompareAgainst(encode(t, prior), 0.20)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected gate failure: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
