package costmodel

import (
	"errors"
	"math"
)

// TrainOLS fits the polynomial basis by closed-form weighted least
// squares on the relative residual — the deterministic alternative to
// the SGD trainer. Minimising Σ((h(X)−t)/t)² is ordinary least squares
// in the scaled design z_ij = f_ij/t_i against the all-ones target,
// solved via the normal equations with Tikhonov damping for stability.
//
// The paper trains by SGD (and so do the experiments here); OLS is
// offered for users who want a reproducible one-shot fit and as a
// cross-check on the SGD solution.
func TrainOLS(terms []Term, data []Sample, ridge float64) (*Model, error) {
	if len(terms) == 0 {
		return nil, errors.New("costmodel: empty term basis")
	}
	if len(data) == 0 {
		return nil, errors.New("costmodel: no training samples")
	}
	if ridge <= 0 {
		ridge = 1e-9
	}
	k := len(terms)
	// Normal equations A w = b with A = ZᵀZ + ridge·I, b = Zᵀ1.
	A := make([][]float64, k)
	for i := range A {
		A[i] = make([]float64, k)
	}
	b := make([]float64, k)
	row := make([]float64, k)
	for _, s := range data {
		t := math.Max(s.T, 1e-9)
		for j, term := range terms {
			row[j] = term.Eval(s.X) / t
		}
		for i := 0; i < k; i++ {
			if row[i] == 0 {
				continue
			}
			b[i] += row[i]
			for j := i; j < k; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	// Symmetrise and damp.
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
		A[i][i] += ridge
	}
	w, err := solveGauss(A, b)
	if err != nil {
		return nil, err
	}
	return &Model{Terms: append([]Term(nil), terms...), Weights: w}, nil
}

// solveGauss solves Ax = b by Gaussian elimination with partial
// pivoting. A and b are clobbered.
func solveGauss(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-15 {
			return nil, errors.New("costmodel: singular design matrix (try fewer terms or more data)")
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / A[col][col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= A[r][c] * x[c]
		}
		x[r] = sum / A[r][r]
	}
	return x, nil
}
