package costmodel

// Drift signal: the maintenance plane folds the engine's harvested
// per-fragment cost reports and the live /run algorithm mix into a
// single imbalance number. The partition was refined for a reference
// workload; when the observed per-fragment load skews — hot fragments
// doing several times the mean work — the learned-cost placement has
// drifted from what traffic actually exercises and background
// re-refinement is warranted. Everything here is pure arithmetic over
// slices so the detector is trivially testable and allocation-light.

// FragTotals flattens a per-fragment cost evaluation into total load
// per fragment (Comp + Comm, the same Total the parallel cost takes
// the max of).
func FragTotals(costs []FragCost) []float64 {
	out := make([]float64, len(costs))
	for i, fc := range costs {
		out[i] = fc.Total()
	}
	return out
}

// Imbalance maps a per-fragment load vector to max/mean - 1: zero for
// a perfectly balanced vector, 1.0 when the hottest fragment carries
// twice the mean, and so on. Degenerate inputs (empty, all-zero,
// negative sums) report zero — no load is never drift.
func Imbalance(load []float64) float64 {
	if len(load) == 0 {
		return 0
	}
	var sum, max float64
	for _, v := range load {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := sum / float64(len(load))
	return max/mean - 1
}

// MixWeights normalizes observed per-algorithm request counts into
// weights summing to 1. A window with no traffic yields all zeros, so
// a quiet server never reports drift.
func MixWeights(counts []int64) []float64 {
	w := make([]float64, len(counts))
	var total int64
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return w
	}
	for i, c := range counts {
		if c > 0 {
			w[i] = float64(c) / float64(total)
		}
	}
	return w
}

// WeightedImbalance folds per-algorithm per-fragment load rows with
// the observed mix: the drift signal is the imbalance of the
// mix-weighted aggregate load vector (sum_a w_a * load_a[i] per
// fragment i). Aggregating before the max/mean keeps the signal about
// the *blended* workload — a fragment only reads hot if the traffic
// actually sent at it is hot. Rows whose weight is zero are skipped;
// ragged or empty inputs degrade to zero signal.
func WeightedImbalance(rows [][]float64, weights []float64) float64 {
	var agg []float64
	for a, row := range rows {
		if a >= len(weights) || weights[a] == 0 || len(row) == 0 {
			continue
		}
		if agg == nil {
			agg = make([]float64, len(row))
		}
		if len(row) != len(agg) {
			continue
		}
		for i, v := range row {
			agg[i] += weights[a] * v
		}
	}
	return Imbalance(agg)
}
