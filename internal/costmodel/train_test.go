package costmodel

import (
	"math"
	"math/rand"
	"testing"
)

// synthSamples draws samples whose target follows a known polynomial
// of the metric variables, with multiplicative noise — a stand-in for
// the per-vertex timings of a running log.
func synthSamples(n int, seed int64, f func(x Vars) float64, noise float64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		var x Vars
		x[DLIn] = float64(rng.Intn(200) + 1)
		x[DLOut] = float64(rng.Intn(200) + 1)
		x[DGIn] = x[DLIn] + float64(rng.Intn(100))
		x[DGOut] = x[DLOut] + float64(rng.Intn(100))
		x[Repl] = float64(rng.Intn(5))
		x[AvgDeg] = 12
		if rng.Intn(2) == 0 {
			x[NotECut] = 1
		}
		t := f(x) * (1 + noise*(rng.Float64()*2-1))
		out = append(out, Sample{X: x, T: t})
	}
	return out
}

func TestTrainRecoversCNShape(t *testing.T) {
	truth := func(x Vars) float64 {
		return 9.23e-5*x[DLIn]*x[DGIn] + 1.04e-6*x[DLIn] + 1.02e-6
	}
	data := synthSamples(4000, 17, truth, 0.05)
	train, test := Split(data, 0.8, 1)
	vars, degree := LearnableVars(CN)
	m, err := Train(PolyTerms(vars, degree), train, TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if msre := MSRE(m, test); msre > 0.11 {
		t.Fatalf("test MSRE = %v, want ≤ 0.11 (the paper's worst case)", msre)
	}
	// The dL+·dG+ cross term must dominate: find its weight.
	var crossWeight, maxOther float64
	for j, term := range m.Terms {
		if term.Exps[DLIn] == 1 && term.Exps[DGIn] == 1 {
			crossWeight = m.Weights[j]
		} else if term.Degree() > 0 {
			if a := math.Abs(m.Weights[j]); a > maxOther {
				maxOther = a
			}
		}
	}
	if crossWeight < 5e-5 {
		t.Fatalf("cross-term weight %v, want ≈ 9.23e-5", crossWeight)
	}
	_ = maxOther
}

func TestTrainLinearModels(t *testing.T) {
	for _, a := range []Algo{WCC, PR, SSSP} {
		ref := Reference(a)
		data := synthSamples(2500, 5+int64(a), ref.H.Eval, 0.05)
		train, test := Split(data, 0.8, 3)
		vars, degree := LearnableVars(a)
		m, err := Train(PolyTerms(vars, degree), train, TrainConfig{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if msre := MSRE(m, test); msre > 0.11 {
			t.Errorf("%v: test MSRE = %v, want ≤ 0.11", a, msre)
		}
	}
}

func TestTrainCommModels(t *testing.T) {
	for _, a := range []Algo{PR, SSSP, TC} {
		ref := Reference(a)
		// Communication samples only exist for replicated masters.
		raw := synthSamples(3000, 31+int64(a), ref.G.Eval, 0.05)
		data := raw[:0]
		for _, s := range raw {
			if s.X[Repl] >= 1 && s.T > 0 {
				data = append(data, s)
			}
		}
		train, test := Split(data, 0.8, 7)
		vars, degree := LearnableCommVars(a)
		m, err := Train(PolyTerms(vars, degree), train, TrainConfig{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if msre := MSRE(m, test); msre > 0.11 {
			t.Errorf("%v: comm test MSRE = %v, want ≤ 0.11", a, msre)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, []Sample{{}}, TrainConfig{}); err == nil {
		t.Fatal("empty basis accepted")
	}
	if _, err := Train(PolyTerms([]VarKind{DLIn}, 1), nil, TrainConfig{}); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestMSREZeroForPerfectModel(t *testing.T) {
	f := Func(func(x Vars) float64 { return 3 * x[DLIn] })
	data := []Sample{}
	for i := 1; i <= 10; i++ {
		var x Vars
		x[DLIn] = float64(i)
		data = append(data, Sample{X: x, T: 3 * float64(i)})
	}
	if got := MSRE(f, data); got != 0 {
		t.Fatalf("MSRE of exact model = %v", got)
	}
	if got := MSRE(f, nil); got != 0 {
		t.Fatalf("MSRE of empty set = %v", got)
	}
}

func TestSplitFractions(t *testing.T) {
	data := make([]Sample, 100)
	for i := range data {
		data[i].T = float64(i)
	}
	train, test := Split(data, 0.8, 9)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	// Every element appears exactly once across the two halves.
	seen := map[float64]bool{}
	for _, s := range append(append([]Sample{}, train...), test...) {
		if seen[s.T] {
			t.Fatal("duplicate after split")
		}
		seen[s.T] = true
	}
}

func TestTrainDeterministic(t *testing.T) {
	truth := func(x Vars) float64 { return 1e-4*x[DLIn] + 1e-5 }
	data := synthSamples(500, 3, truth, 0.02)
	terms := PolyTerms([]VarKind{DLIn}, 1)
	m1, _ := Train(terms, data, TrainConfig{Seed: 5})
	m2, _ := Train(terms, data, TrainConfig{Seed: 5})
	for j := range m1.Weights {
		if m1.Weights[j] != m2.Weights[j] {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}
