package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
)

// buildG1 reconstructs the Fig. 1(a) graph (see partition fixtures).
func buildG1(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	for _, e := range [][2]graph.VertexID{
		{0, 5}, {0, 6}, {0, 7}, {1, 5}, {1, 6}, {2, 6}, {2, 7}, {2, 8},
		{3, 6}, {3, 7}, {3, 9}, {4, 8}, {4, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func fig1bPartition(t testing.TB, g *graph.Graph) *partition.Partition {
	t.Helper()
	p, err := partition.FromVertexAssignment(g, []int{0, 0, 1, 1, 1, 0, 0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExtract(t *testing.T) {
	g := buildG1(t)
	p := fig1bPartition(t, g)
	// t2 (id 6) is owned by F0 with global in-degree 4, all four
	// in-arcs local at F0; F1 holds a dummy with the two replicated
	// cut arcs (from s3, s4).
	x0 := Extract(p, 0, 6)
	if x0[DLIn] != 4 || x0[DGIn] != 4 || x0[DLOut] != 0 || x0[Repl] != 1 {
		t.Fatalf("t2@F0 vars = %v", x0)
	}
	if x0[NotECut] != 0 {
		t.Fatal("t2@F0 is the e-cut node, I(v) must be 0")
	}
	x1 := Extract(p, 1, 6)
	if x1[DLIn] != 2 || x1[NotECut] != 1 {
		t.Fatalf("t2@F1 vars = %v", x1)
	}
	if got, want := x0[AvgDeg], 1.3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("D = %v, want %v", got, want)
	}
}

// Example 8 computes CCN under hCN for Fig 1(b): F1 = 2.69e-3 ms and
// F2 = 7.45e-4 ms.
func TestEvaluateMatchesExample8(t *testing.T) {
	g := buildG1(t)
	p := fig1bPartition(t, g)
	costs := Evaluate(p, CostModel{H: Reference(CN).H, G: Zero})
	// Σ over owned targets of hCN with dL+ = dG+:
	// F0: t1(2,2) t2(4,4) t3(3,3); F1: t4(2,2) t5(2,2); sources add the
	// constant term only (dL+=0).
	hcn := func(dl, dg float64) float64 { return 9.23e-5*dl*dg + 1.04e-6*dl + 1.02e-6 }
	want0 := hcn(2, 2) + hcn(4, 4) + hcn(3, 3) + 2*hcn(0, 0)
	want1 := hcn(2, 2) + hcn(2, 2) + 3*hcn(0, 0)
	if math.Abs(costs[0].Comp-want0) > 1e-12 {
		t.Errorf("F0 comp = %v, want %v", costs[0].Comp, want0)
	}
	if math.Abs(costs[1].Comp-want1) > 1e-12 {
		t.Errorf("F1 comp = %v, want %v", costs[1].Comp, want1)
	}
	// Those are within rounding of the paper's 2.69e-3 / 7.45e-4.
	if math.Abs(costs[0].Comp-2.69e-3) > 2e-5 {
		t.Errorf("F0 comp = %v, paper reports 2.69e-3", costs[0].Comp)
	}
	if math.Abs(costs[1].Comp-7.45e-4) > 2e-5 {
		t.Errorf("F1 comp = %v, paper reports 7.45e-4", costs[1].Comp)
	}
}

func TestParallelCostAndLambda(t *testing.T) {
	costs := []FragCost{{Comp: 3, Comm: 1}, {Comp: 2, Comm: 0}}
	if got := ParallelCost(costs); got != 4 {
		t.Fatalf("ParallelCost = %v", got)
	}
	if got := TotalComp(costs); got != 5 {
		t.Fatalf("TotalComp = %v", got)
	}
	if got := LambdaCost(costs); math.Abs(got-(4.0/3.0-1)) > 1e-12 {
		t.Fatalf("LambdaCost = %v", got)
	}
}

func TestCommCountedAtMasterOnly(t *testing.T) {
	g := buildG1(t)
	p := fig1bPartition(t, g)
	m := CostModel{H: Zero, G: Func(func(x Vars) float64 { return 1 })}
	costs := Evaluate(p, m)
	// Border vertices: s3, s4 (dummies in F0, masters at F1 where they
	// were first placed as owners) and t2, t3 (masters at F0).
	total := costs[0].Comm + costs[1].Comm
	if total != 4 {
		t.Fatalf("unit comm total = %v, want 4 border masters", total)
	}
	// Reassigning a master moves its contribution.
	before0 := costs[0].Comm
	if err := p.SetMaster(6, 1); err != nil { // t2 -> F1
		t.Fatal(err)
	}
	costs = Evaluate(p, m)
	if costs[0].Comm != before0-1 {
		t.Fatalf("comm at F0 after master move = %v, want %v", costs[0].Comm, before0-1)
	}
}

// The tracker must agree with the full evaluation after any sequence
// of mutations + refreshes. This is the invariant the refiners rely
// on.
func TestTrackerMatchesEvaluate(t *testing.T) {
	g := gen.ErdosRenyi(80, 4, true, 21)
	rng := rand.New(rand.NewSource(22))
	assign := make([]int, g.NumVertices())
	for i := range assign {
		assign[i] = rng.Intn(3)
	}
	p, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	// storm drives an identical deterministic mutation sequence against
	// the tracker, asserting agreement with the full evaluation before
	// and after; it returns the final per-fragment state so variants of
	// the same model can be compared bitwise.
	storm := func(tr *Tracker, m CostModel, label string) ([]float64, []float64) {
		q := tr2partition(tr)
		assertTrackerMatches(t, tr, q, m, label+" initial")
		srng := rand.New(rand.NewSource(23))
		edges := g.EdgeList()
		for step := 0; step < 200; step++ {
			e := edges[srng.Intn(len(edges))]
			frag := srng.Intn(3)
			switch srng.Intn(3) {
			case 0:
				q.AddArc(frag, e.Src, e.Dst)
			case 1:
				q.RemoveArc(frag, e.Src, e.Dst)
			case 2:
				v := graph.VertexID(srng.Intn(g.NumVertices()))
				cs := q.Copies(v)
				if len(cs) > 0 {
					_ = q.SetMaster(v, int(cs[srng.Intn(len(cs))]))
					tr.Refresh(v)
				}
				continue
			}
			tr.Refresh(e.Src, e.Dst)
		}
		assertTrackerMatches(t, tr, q, m, label+" after mutations")
		comp := make([]float64, q.NumFragments())
		comm := make([]float64, q.NumFragments())
		for i := range comp {
			comp[i], comm[i] = tr.Comp(i), tr.Comm(i)
		}
		return comp, comm
	}
	for _, algo := range Algos() {
		m := Reference(algo)
		rawComp, rawComm := storm(NewTracker(p.Clone(), m), m, algo.String())
		// A pre-compiled model must ride through the same storm to the
		// bitwise-identical state: the dense tracker compiles internally,
		// so handing it already-compiled kernels is a passthrough.
		cm := CompileCostModel(m)
		ccComp, ccComm := storm(NewTracker(p.Clone(), cm), cm, algo.String()+" compiled")
		for i := range rawComp {
			if math.Float64bits(rawComp[i]) != math.Float64bits(ccComp[i]) ||
				math.Float64bits(rawComm[i]) != math.Float64bits(ccComm[i]) {
				t.Fatalf("%v: compiled-model tracker diverged at fragment %d: comp %v vs %v, comm %v vs %v",
					algo, i, rawComp[i], ccComp[i], rawComm[i], ccComm[i])
			}
		}
	}
}

// tr2partition exposes the tracker's partition for the test; the
// tracker stores it unexported, so we reconstruct access via a helper
// method added for tests.
func tr2partition(tr *Tracker) *partition.Partition { return tr.Partition() }

func assertTrackerMatches(t *testing.T, tr *Tracker, p *partition.Partition, m CostModel, label string) {
	t.Helper()
	want := Evaluate(p, m)
	for i := range want {
		if math.Abs(tr.Comp(i)-want[i].Comp) > 1e-9*(1+math.Abs(want[i].Comp)) {
			t.Fatalf("%s: fragment %d comp drift: tracker %v, full %v", label, i, tr.Comp(i), want[i].Comp)
		}
		if math.Abs(tr.Comm(i)-want[i].Comm) > 1e-9*(1+math.Abs(want[i].Comm)) {
			t.Fatalf("%s: fragment %d comm drift: tracker %v, full %v", label, i, tr.Comm(i), want[i].Comm)
		}
	}
}

func TestTrackerCommAt(t *testing.T) {
	g := buildG1(t)
	p := fig1bPartition(t, g)
	tr := NewTracker(p, CostModel{H: Zero, G: Func(func(x Vars) float64 { return 1 + x[Repl] })})
	// t2 (id 6) has one mirror: g = 2 wherever evaluated.
	if got := tr.CommAt(0, 6); got != 2 {
		t.Fatalf("CommAt = %v", got)
	}
	// s5 (id 4) is only in F1; probing at F0 yields 0.
	if got := tr.CommAt(0, 4); got != 0 {
		t.Fatalf("CommAt for absent copy = %v", got)
	}
}

func TestHypotheticalComp(t *testing.T) {
	g := buildG1(t)
	p := fig1bPartition(t, g)
	tr := NewTracker(p, Reference(CN))
	got := tr.HypotheticalComp(6, 4, 0, 0, false)
	want := 9.23e-5*4*4 + 1.04e-6*4 + 1.02e-6
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("HypotheticalComp = %v, want %v", got, want)
	}
}
