// Package costmodel implements the paper's cost model (Section 3.1)
// and its learning pipeline (Section 4): per-vertex metric variables
// X(v), polynomial cost functions hA/gA over X, SGD training with an
// MSRE loss and L1 penalty, and evaluation of a partition's
// computational and communication cost (the quantities the
// partitioners of Sections 5–6 are driven by).
package costmodel

import (
	"adp/internal/graph"
	"adp/internal/partition"
)

// VarKind enumerates the metric variables of Eq. (4) plus the e-cut
// indicator I(v) the paper adds for TC's communication function.
type VarKind int

const (
	// DLIn is d+L(v): v's in-degree in the fragment.
	DLIn VarKind = iota
	// DLOut is d-L(v): v's out-degree in the fragment.
	DLOut
	// DGIn is d+G(v): v's in-degree in G.
	DGIn
	// DGOut is d-G(v): v's out-degree in G.
	DGOut
	// Repl is r(v): the number of mirror copies of v.
	Repl
	// AvgDeg is D: the constant average degree of G.
	AvgDeg
	// NotECut is I(v): 1 when this copy of v is not an e-cut node
	// (v-cut or dummy), 0 otherwise. Used by gTC.
	NotECut
	// VData is the per-vertex data size |Ary| of the Section-3.1
	// remark ("the vertex data size plays a role in determining the
	// input size... and hence should also be included in X"). Defaults
	// to 1; populated via partition.SetVertexWeight.
	VData

	// NumVars is the size of the variable set.
	NumVars
)

var varNames = [NumVars]string{"dL+", "dL-", "dG+", "dG-", "r", "D", "I", "|Ary|"}

func (k VarKind) String() string {
	if k < 0 || k >= NumVars {
		return "?"
	}
	return varNames[k]
}

// Vars is one vertex copy's metric-variable assignment X(v).
type Vars [NumVars]float64

// Extract computes X(v) for the copy of v inside fragment i of p.
// For undirected graphs the in/out pairs coincide by construction.
func Extract(p *partition.Partition, i int, v graph.VertexID) Vars {
	var x Vars
	g := p.Graph()
	x[DGIn] = float64(g.InDegree(v))
	x[DGOut] = float64(g.OutDegree(v))
	x[Repl] = float64(p.Replication(v))
	x[AvgDeg] = g.AvgDegree()
	if adj := p.Fragment(i).Adjacency(v); adj != nil {
		x[DLIn] = float64(len(adj.In))
		x[DLOut] = float64(len(adj.Out))
	}
	if p.Status(i, v) != partition.ECutNode {
		x[NotECut] = 1
	}
	x[VData] = p.VertexWeight(v)
	return x
}

// CostFunc estimates the cost a vertex copy incurs from its metric
// variables. Both learned Models and the paper's analytic reference
// functions implement it.
type CostFunc interface {
	Eval(x Vars) float64
}

// Func adapts a plain function to a CostFunc.
type Func func(x Vars) float64

// Eval implements CostFunc.
func (f Func) Eval(x Vars) float64 { return f(x) }

// Zero is the all-zero cost function, useful when an algorithm incurs
// no communication (or when only one of hA/gA is under study).
var Zero CostFunc = Func(func(Vars) float64 { return 0 })

// CostModel pairs the computation and communication cost functions of
// one algorithm.
type CostModel struct {
	H CostFunc // hA: computational cost per non-dummy vertex copy
	G CostFunc // gA: communication cost per border master
}
