package costmodel

import (
	"math"
	"testing"
)

func TestImbalance(t *testing.T) {
	cases := []struct {
		name string
		load []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all zero", []float64{0, 0, 0}, 0},
		{"balanced", []float64{5, 5, 5, 5}, 0},
		{"hot fragment twice the mean", []float64{4, 1, 1, 2}, 1},
		{"single fragment", []float64{7}, 0},
		{"negative sum degenerate", []float64{-1, -2}, 0},
	}
	for _, tc := range cases {
		if got := Imbalance(tc.load); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Imbalance(%v) = %v, want %v", tc.name, tc.load, got, tc.want)
		}
	}
}

func TestMixWeights(t *testing.T) {
	w := MixWeights([]int64{3, 0, 1, 0, 0})
	want := []float64{0.75, 0, 0.25, 0, 0}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("weights = %v, want %v", w, want)
		}
	}
	for _, v := range MixWeights([]int64{0, 0}) {
		if v != 0 {
			t.Fatal("quiet window must weigh zero")
		}
	}
	// Negative counts (cannot happen, but defend) are ignored.
	w = MixWeights([]int64{-5, 10})
	if w[0] != 0 || w[1] != 1 {
		t.Fatalf("negative count mishandled: %v", w)
	}
}

func TestWeightedImbalance(t *testing.T) {
	// Algorithm 0 hammers fragment 0, algorithm 1 is balanced. With
	// all the traffic on algo 1 the signal is zero; shifting the mix
	// toward algo 0 raises it monotonically.
	rows := [][]float64{
		{9, 1, 1, 1},
		{3, 3, 3, 3},
	}
	if got := WeightedImbalance(rows, []float64{0, 1}); got != 0 {
		t.Fatalf("balanced-only mix reports drift %v", got)
	}
	lo := WeightedImbalance(rows, []float64{0.2, 0.8})
	hi := WeightedImbalance(rows, []float64{0.9, 0.1})
	if !(hi > lo && lo > 0) {
		t.Fatalf("signal not monotone in the hot mix: lo=%v hi=%v", lo, hi)
	}
	// Pure hot algorithm reproduces the plain imbalance of its row.
	pure := WeightedImbalance(rows, []float64{1, 0})
	if math.Abs(pure-Imbalance(rows[0])) > 1e-12 {
		t.Fatalf("pure mix %v != row imbalance %v", pure, Imbalance(rows[0]))
	}
	// Ragged and missing rows degrade, not panic.
	if got := WeightedImbalance([][]float64{{1, 2}, {1, 2, 3}}, []float64{0.5, 0.5}); got != Imbalance([]float64{0.5, 1}) {
		t.Fatalf("ragged row not skipped: %v", got)
	}
	if got := WeightedImbalance(nil, nil); got != 0 {
		t.Fatalf("nil input: %v", got)
	}
}

func TestFragTotals(t *testing.T) {
	costs := []FragCost{{Comp: 1, Comm: 2}, {Comp: 0.5, Comm: 0}}
	got := FragTotals(costs)
	if len(got) != 2 || got[0] != 3 || got[1] != 0.5 {
		t.Fatalf("FragTotals = %v", got)
	}
}
