package costmodel

import (
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/pool"
)

// FragCost is the estimated cost of one fragment under a cost model:
// ChA(Fi) (computation over non-dummy copies) and CgA(Fi)
// (communication over border masters), per Eqs. (2)–(3).
type FragCost struct {
	Comp float64
	Comm float64
}

// Total returns CA(Fi) = ChA(Fi) + CgA(Fi) (Eq. 1).
func (c FragCost) Total() float64 { return c.Comp + c.Comm }

// Evaluate computes the per-fragment costs of algorithm model m on
// partition p by full enumeration, one pool item per fragment. Each
// item accumulates into its own slot over the fragment's sorted
// vertex order, so the result is deterministic for any worker count.
// The partition must not be mutated concurrently.
func Evaluate(p *partition.Partition, m CostModel) []FragCost {
	costs := make([]FragCost, p.NumFragments())
	pool.Default().RunChunks(p.NumFragments(), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f := p.Fragment(i)
			f.Vertices(func(v graph.VertexID, _ *partition.Adj) {
				switch p.Status(i, v) {
				case partition.ECutNode, partition.VCutNode:
					costs[i].Comp += m.H.Eval(Extract(p, i, v))
				}
				if p.IsBorder(v) && p.Master(v) == i {
					costs[i].Comm += m.G.Eval(Extract(p, i, v))
				}
			})
		}
	})
	return costs
}

// ParallelCost returns max_i CA(Fi): the quantity ADP minimises.
func ParallelCost(costs []FragCost) float64 {
	max := 0.0
	for _, c := range costs {
		if t := c.Total(); t > max {
			max = t
		}
	}
	return max
}

// TotalComp sums ChA over fragments.
func TotalComp(costs []FragCost) float64 {
	s := 0.0
	for _, c := range costs {
		s += c.Comp
	}
	return s
}

// LambdaCost returns the cost balance factor λA: the smallest λ with
// CA(Fi) ≤ (1+λ)·avg for all i (Section 3.1, "balance factor
// revised").
func LambdaCost(costs []FragCost) float64 {
	xs := make([]float64, len(costs))
	for i, c := range costs {
		xs[i] = c.Total()
	}
	return partition.BalanceFactor(xs)
}

// Tracker maintains per-fragment Comp/Comm costs of a partition under
// one cost model incrementally while the partition is mutated. The
// refiners perform O(|V|+|E|) mutations; recomputing Evaluate after
// each would be quadratic.
//
// Protocol: after every AddArc/RemoveArc/AddEdge/RemoveEdge touching
// vertices u,v call Refresh(u, v); after SetMaster(v) or SetOwner(v)
// call Refresh(v). Refresh recomputes those vertices' contributions in
// all fragments (a vertex's own variables depend only on its own
// adjacency, copies and status, so this is exact).
type Tracker struct {
	p     *partition.Partition
	m     CostModel
	comp  []float64
	comm  []float64
	vComp map[uint64]float64 // (frag<<32|v) -> current Comp contribution
	vComm map[uint64]float64
}

func trackKey(i int, v graph.VertexID) uint64 { return uint64(i)<<32 | uint64(v) }

// NewTracker evaluates p fully and returns a tracker positioned on it.
func NewTracker(p *partition.Partition, m CostModel) *Tracker {
	t := &Tracker{
		p:     p,
		m:     m,
		comp:  make([]float64, p.NumFragments()),
		comm:  make([]float64, p.NumFragments()),
		vComp: map[uint64]float64{},
		vComm: map[uint64]float64{},
	}
	for i := 0; i < p.NumFragments(); i++ {
		f := p.Fragment(i)
		f.Vertices(func(v graph.VertexID, _ *partition.Adj) {
			t.refreshAt(i, v)
		})
	}
	return t
}

// Partition returns the partition the tracker is positioned on.
func (t *Tracker) Partition() *partition.Partition { return t.p }

// Comp returns the tracked ChA(Fi).
func (t *Tracker) Comp(i int) float64 { return t.comp[i] }

// Comm returns the tracked CgA(Fi).
func (t *Tracker) Comm(i int) float64 { return t.comm[i] }

// Total returns the tracked CA(Fi).
func (t *Tracker) Total(i int) float64 { return t.comp[i] + t.comm[i] }

// Costs snapshots the tracked per-fragment costs.
func (t *Tracker) Costs() []FragCost {
	out := make([]FragCost, len(t.comp))
	for i := range out {
		out[i] = FragCost{Comp: t.comp[i], Comm: t.comm[i]}
	}
	return out
}

// Refresh recomputes the contribution of each vertex in every
// fragment. Cost O(n) per vertex with n = fragment count.
func (t *Tracker) Refresh(vs ...graph.VertexID) {
	for _, v := range vs {
		for i := 0; i < t.p.NumFragments(); i++ {
			t.refreshAt(i, v)
		}
	}
}

func (t *Tracker) refreshAt(i int, v graph.VertexID) {
	k := trackKey(i, v)
	var nc, nm float64
	if t.p.Fragment(i).Has(v) {
		switch t.p.Status(i, v) {
		case partition.ECutNode, partition.VCutNode:
			nc = t.m.H.Eval(Extract(t.p, i, v))
		}
		if t.p.IsBorder(v) && t.p.Master(v) == i {
			nm = t.m.G.Eval(Extract(t.p, i, v))
		}
	}
	if old, ok := t.vComp[k]; ok {
		t.comp[i] -= old
	}
	if old, ok := t.vComm[k]; ok {
		t.comm[i] -= old
	}
	if nc != 0 {
		t.vComp[k] = nc
		t.comp[i] += nc
	} else {
		delete(t.vComp, k)
	}
	if nm != 0 {
		t.vComm[k] = nm
		t.comm[i] += nm
	} else {
		delete(t.vComm, k)
	}
}

// Contribution returns v's current tracked Comp contribution inside
// fragment i (0 when absent or dummy).
func (t *Tracker) Contribution(i int, v graph.VertexID) float64 {
	return t.vComp[trackKey(i, v)]
}

// CommAt evaluates gA for v as if its master were in fragment i — the
// g_i(v) of MAssign's Eq. (5).
func (t *Tracker) CommAt(i int, v graph.VertexID) float64 {
	if !t.p.Fragment(i).Has(v) {
		return 0
	}
	return t.m.G.Eval(Extract(t.p, i, v))
}

// HypotheticalComp evaluates hA for vertex v as if it lived in
// fragment i with the given local degrees — the ChA(Fj ∪ {(v,E')})
// probe of EMigrate/VMigrate, approximated by the moved vertex's own
// contribution (neighbour second-order deltas are reconciled by the
// next Refresh).
func (t *Tracker) HypotheticalComp(v graph.VertexID, localIn, localOut int, repl int, notECut bool) float64 {
	g := t.p.Graph()
	var x Vars
	x[DLIn] = float64(localIn)
	x[DLOut] = float64(localOut)
	x[DGIn] = float64(g.InDegree(v))
	x[DGOut] = float64(g.OutDegree(v))
	x[Repl] = float64(repl)
	x[AvgDeg] = g.AvgDegree()
	if notECut {
		x[NotECut] = 1
	}
	x[VData] = t.p.VertexWeight(v)
	return t.m.H.Eval(x)
}
