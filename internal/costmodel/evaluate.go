package costmodel

import (
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/pool"
)

// FragCost is the estimated cost of one fragment under a cost model:
// ChA(Fi) (computation over non-dummy copies) and CgA(Fi)
// (communication over border masters), per Eqs. (2)–(3).
type FragCost struct {
	Comp float64
	Comm float64
}

// Total returns CA(Fi) = ChA(Fi) + CgA(Fi) (Eq. 1).
func (c FragCost) Total() float64 { return c.Comp + c.Comm }

// Evaluate computes the per-fragment costs of algorithm model m on
// partition p by full enumeration, one pool item per fragment. Each
// item accumulates into its own slot over the fragment's sorted
// vertex order, so the result is deterministic for any worker count.
// The partition must not be mutated concurrently.
func Evaluate(p *partition.Partition, m CostModel) []FragCost {
	costs := make([]FragCost, p.NumFragments())
	pool.Default().RunChunks(p.NumFragments(), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f := p.Fragment(i)
			f.Vertices(func(v graph.VertexID, _ *partition.Adj) {
				switch p.Status(i, v) {
				case partition.ECutNode, partition.VCutNode:
					costs[i].Comp += m.H.Eval(Extract(p, i, v))
				}
				if p.IsBorder(v) && p.Master(v) == i {
					costs[i].Comm += m.G.Eval(Extract(p, i, v))
				}
			})
		}
	})
	return costs
}

// ParallelCost returns max_i CA(Fi): the quantity ADP minimises.
func ParallelCost(costs []FragCost) float64 {
	max := 0.0
	for _, c := range costs {
		if t := c.Total(); t > max {
			max = t
		}
	}
	return max
}

// TotalComp sums ChA over fragments.
func TotalComp(costs []FragCost) float64 {
	s := 0.0
	for _, c := range costs {
		s += c.Comp
	}
	return s
}

// LambdaCost returns the cost balance factor λA: the smallest λ with
// CA(Fi) ≤ (1+λ)·avg for all i (Section 3.1, "balance factor
// revised").
func LambdaCost(costs []FragCost) float64 {
	xs := make([]float64, len(costs))
	for i, c := range costs {
		xs[i] = c.Total()
	}
	return partition.BalanceFactor(xs)
}

// Tracker maintains per-fragment Comp/Comm costs of a partition under
// one cost model incrementally while the partition is mutated. The
// refiners perform O(|V|+|E|) mutations; recomputing Evaluate after
// each would be quadratic.
//
// Protocol: after every AddArc/RemoveArc/AddEdge/RemoveEdge touching
// vertices u,v call Refresh(u, v); after SetMaster(v) or SetOwner(v)
// call Refresh(v). Refresh recomputes those vertices' contributions in
// all fragments (a vertex's own variables depend only on its own
// adjacency, copies and status, so this is exact).
//
// Representation: per-fragment contributions live in dense slabs
// indexed by a compact vertex remap (fragSlab) instead of hash maps,
// and cost functions are lowered by Compile at construction, so the
// refinement hot path — Refresh, Contribution, CommAt,
// HypotheticalComp — performs no map probes, no hashing, and no
// allocation. A stored value of 0 means "no contribution", mirroring
// the retired map's delete-on-zero semantics so the accumulation
// sequence on comp/comm (and therefore every float result) is bitwise
// identical to the map-backed implementation.
type Tracker struct {
	p     *partition.Partition
	m     CostModel // compiled at construction
	comp  []float64
	comm  []float64
	slabs []fragSlab
	// base caches the graph-derived variables that cannot change while
	// the tracker is live (the graph is immutable during refinement):
	// DGIn, DGOut and AvgDeg. extract and HypotheticalComp start from
	// it instead of re-reading the graph on every probe. Mutable
	// per-vertex state (local degrees, replication, status, VData) is
	// filled in fresh each time.
	base []Vars
	// stamp/epoch implement RefreshSet's first-occurrence dedup without
	// a per-call set allocation.
	stamp []uint64
	epoch uint64
}

// fragSlab is one fragment's dense contribution store. slot maps a
// vertex id to a slab index (-1 when the vertex never had a tracked
// contribution here); the slabs grow by appending when refinement
// moves a new vertex into the fragment. On a compiled fragment the
// remap starts as the CSR local-id array (compact); otherwise slots
// are graph-wide vertex ids.
type fragSlab struct {
	slot   []int32
	comp   []float64
	comm   []float64
	vars   []Vars // cached Extract result, valid while varsOK
	varsOK []bool
}

func (s *fragSlab) init(f *partition.Fragment, numVertices int) {
	if remap, n := f.LocalRemap(numVertices); remap != nil {
		s.slot = remap
		s.grow(n)
		return
	}
	s.slot = make([]int32, numVertices)
	for v := range s.slot {
		s.slot[v] = int32(v)
	}
	s.grow(numVertices)
}

func (s *fragSlab) grow(n int) {
	for len(s.comp) < n {
		s.comp = append(s.comp, 0)
		s.comm = append(s.comm, 0)
		s.vars = append(s.vars, Vars{})
		s.varsOK = append(s.varsOK, false)
	}
}

// slotOf returns v's slab index, or -1 when v has never been tracked
// in this fragment.
func (s *fragSlab) slotOf(v graph.VertexID) int32 {
	if int(v) >= len(s.slot) {
		return -1
	}
	return s.slot[v]
}

// ensure returns v's slab index, appending a fresh slot when v enters
// the fragment for the first time.
func (s *fragSlab) ensure(v graph.VertexID) int32 {
	if l := s.slot[v]; l >= 0 {
		return l
	}
	l := int32(len(s.comp))
	s.slot[v] = l
	s.grow(len(s.comp) + 1)
	return l
}

// NewTracker evaluates p fully and returns a tracker positioned on it.
// The cost functions are compiled (see Compile): learned Models run as
// flat term programs on every subsequent probe.
func NewTracker(p *partition.Partition, m CostModel) *Tracker {
	g := p.Graph()
	t := &Tracker{
		p:     p,
		m:     CompileCostModel(m),
		comp:  make([]float64, p.NumFragments()),
		comm:  make([]float64, p.NumFragments()),
		slabs: make([]fragSlab, p.NumFragments()),
		base:  make([]Vars, g.NumVertices()),
		stamp: make([]uint64, g.NumVertices()),
	}
	avg := g.AvgDegree()
	for v := range t.base {
		t.base[v][DGIn] = float64(g.InDegree(graph.VertexID(v)))
		t.base[v][DGOut] = float64(g.OutDegree(graph.VertexID(v)))
		t.base[v][AvgDeg] = avg
	}
	for i := range t.slabs {
		t.slabs[i].init(p.Fragment(i), g.NumVertices())
	}
	for i := 0; i < p.NumFragments(); i++ {
		f := p.Fragment(i)
		f.Vertices(func(v graph.VertexID, _ *partition.Adj) {
			t.refreshAt(i, v, p.CompleteFragment(v))
		})
	}
	return t
}

// Partition returns the partition the tracker is positioned on.
func (t *Tracker) Partition() *partition.Partition { return t.p }

// Comp returns the tracked ChA(Fi).
func (t *Tracker) Comp(i int) float64 { return t.comp[i] }

// Comm returns the tracked CgA(Fi).
func (t *Tracker) Comm(i int) float64 { return t.comm[i] }

// Total returns the tracked CA(Fi).
func (t *Tracker) Total(i int) float64 { return t.comp[i] + t.comm[i] }

// Costs snapshots the tracked per-fragment costs.
func (t *Tracker) Costs() []FragCost {
	out := make([]FragCost, len(t.comp))
	for i := range out {
		out[i] = FragCost{Comp: t.comp[i], Comm: t.comm[i]}
	}
	return out
}

// Refresh recomputes the contribution of each vertex in every
// fragment. Cost per vertex: one completeness classification
// (CompleteFragment) plus an O(1) slab update per fragment — no map
// probes and no allocation.
func (t *Tracker) Refresh(vs ...graph.VertexID) {
	for _, v := range vs {
		cf := t.p.CompleteFragment(v)
		for i := 0; i < t.p.NumFragments(); i++ {
			t.refreshAt(i, v, cf)
		}
	}
}

// RefreshSet refreshes each distinct vertex of vs once, in
// first-occurrence order — the dedup the refiners' touched lists need,
// performed with a per-vertex epoch stamp instead of a per-call set
// allocation.
func (t *Tracker) RefreshSet(vs []graph.VertexID) {
	t.epoch++
	for _, v := range vs {
		if t.stamp[v] == t.epoch {
			continue
		}
		t.stamp[v] = t.epoch
		t.Refresh(v)
	}
}

// extract rebuilds X(v) for fragment i from the cached base vector —
// value-identical to Extract, without re-reading the graph. cf is
// CompleteFragment(v); the copy is an e-cut node exactly when cf == i.
func (t *Tracker) extract(i int, v graph.VertexID, f *partition.Fragment, cf int) Vars {
	x := t.base[v]
	x[Repl] = float64(t.p.Replication(v))
	if adj := f.Adjacency(v); adj != nil {
		x[DLIn] = float64(len(adj.In))
		x[DLOut] = float64(len(adj.Out))
	}
	if cf != i {
		x[NotECut] = 1
	}
	x[VData] = t.p.VertexWeight(v)
	return x
}

// refreshAt replays the map-backed accumulation sequence on the dense
// slab: subtract the stored (nonzero) contributions, then store and
// add the recomputed ones, zero meaning "none". cf is the caller's
// CompleteFragment(v).
func (t *Tracker) refreshAt(i int, v graph.VertexID, cf int) {
	s := &t.slabs[i]
	f := t.p.Fragment(i)
	var nc, nm float64
	slot := int32(-1)
	if f.Has(v) {
		slot = s.ensure(v)
		x := t.extract(i, v, f, cf)
		s.vars[slot] = x
		s.varsOK[slot] = true
		if cf == i || cf < 0 { // ECutNode or VCutNode; dummies compute nothing
			nc = t.m.H.Eval(x)
		}
		if t.p.IsBorder(v) && t.p.Master(v) == i {
			nm = t.m.G.Eval(x)
		}
	} else {
		slot = s.slotOf(v)
		if slot < 0 {
			return
		}
		s.varsOK[slot] = false
	}
	if old := s.comp[slot]; old != 0 {
		t.comp[i] -= old
	}
	if old := s.comm[slot]; old != 0 {
		t.comm[i] -= old
	}
	s.comp[slot], s.comm[slot] = 0, 0
	if nc != 0 {
		s.comp[slot] = nc
		t.comp[i] += nc
	}
	if nm != 0 {
		s.comm[slot] = nm
		t.comm[i] += nm
	}
}

// Contribution returns v's current tracked Comp contribution inside
// fragment i (0 when absent or dummy).
func (t *Tracker) Contribution(i int, v graph.VertexID) float64 {
	s := &t.slabs[i]
	slot := s.slotOf(v)
	if slot < 0 {
		return 0
	}
	return s.comp[slot]
}

// CommAt evaluates gA for v as if its master were in fragment i — the
// g_i(v) of MAssign's Eq. (5). Served from the slab's cached Vars
// when v's copy is current (every Refresh rewrites it), falling back
// to a full Extract otherwise.
func (t *Tracker) CommAt(i int, v graph.VertexID) float64 {
	s := &t.slabs[i]
	if slot := s.slotOf(v); slot >= 0 && s.varsOK[slot] {
		return t.m.G.Eval(s.vars[slot])
	}
	if !t.p.Fragment(i).Has(v) {
		return 0
	}
	return t.m.G.Eval(Extract(t.p, i, v))
}

// HypotheticalComp evaluates hA for vertex v as if it lived in
// fragment i with the given local degrees — the ChA(Fj ∪ {(v,E')})
// probe of EMigrate/VMigrate, approximated by the moved vertex's own
// contribution (neighbour second-order deltas are reconciled by the
// next Refresh). This is the delta entry point of the probe plane:
// only the variables the probe actually perturbs are written over the
// cached base vector; the graph-derived ones are not re-extracted.
func (t *Tracker) HypotheticalComp(v graph.VertexID, localIn, localOut int, repl int, notECut bool) float64 {
	x := t.base[v]
	x[DLIn] = float64(localIn)
	x[DLOut] = float64(localOut)
	x[Repl] = float64(repl)
	if notECut {
		x[NotECut] = 1
	}
	x[VData] = t.p.VertexWeight(v)
	return t.m.H.Eval(x)
}
