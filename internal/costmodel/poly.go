package costmodel

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Term is a monomial over the metric variables: the product of
// x[k]^Exps[k].
type Term struct {
	Exps [NumVars]uint8
}

// Eval evaluates the monomial on x.
func (t Term) Eval(x Vars) float64 {
	v := 1.0
	for k, e := range t.Exps {
		for j := uint8(0); j < e; j++ {
			v *= x[k]
		}
	}
	return v
}

// Degree returns the total degree of the monomial.
func (t Term) Degree() int {
	d := 0
	for _, e := range t.Exps {
		d += int(e)
	}
	return d
}

// String renders the monomial, e.g. "dL+*dG+" or "1" for the constant.
func (t Term) String() string {
	var parts []string
	for k, e := range t.Exps {
		for j := uint8(0); j < e; j++ {
			parts = append(parts, VarKind(k).String())
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "*")
}

// PolyTerms enumerates every monomial of total degree at most p over
// the given variables — the expansion Γ of (1 + Σ x_i)^p of Section 4
// — with the constant term first. Terms are generated in a fixed
// order, so models built from the same inputs are identical.
func PolyTerms(vars []VarKind, p int) []Term {
	var out []Term
	var cur Term
	var rec func(idx, remaining int)
	rec = func(idx, remaining int) {
		if idx == len(vars) {
			out = append(out, cur)
			return
		}
		for e := 0; e <= remaining; e++ {
			cur.Exps[vars[idx]] += uint8(e)
			rec(idx+1, remaining-e)
			cur.Exps[vars[idx]] -= uint8(e)
		}
	}
	rec(0, p)
	// Order by total degree then generation order, constant first.
	stable := make([]Term, 0, len(out))
	for d := 0; d <= p; d++ {
		for _, t := range out {
			if t.Degree() == d {
				stable = append(stable, t)
			}
		}
	}
	return stable
}

// Model is a learned polynomial cost function hA or gA:
// Eval(x) = Σ_j Weights[j]·Terms[j](x).
type Model struct {
	Terms   []Term
	Weights []float64
}

// Eval implements CostFunc.
func (m *Model) Eval(x Vars) float64 {
	sum := 0.0
	for j, t := range m.Terms {
		sum += m.Weights[j] * t.Eval(x)
	}
	return sum
}

// String renders the polynomial with small weights elided.
func (m *Model) String() string {
	var parts []string
	for j, t := range m.Terms {
		w := m.Weights[j]
		if math.Abs(w) < 1e-12 {
			continue
		}
		if t.Degree() == 0 {
			parts = append(parts, fmt.Sprintf("%.3g", w))
		} else {
			parts = append(parts, fmt.Sprintf("%.3g*%s", w, t))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// modelJSON is the serialised form: term exponent vectors + weights.
type modelJSON struct {
	Terms   [][NumVars]uint8 `json:"terms"`
	Weights []float64        `json:"weights"`
}

// MarshalJSON implements json.Marshaler so trained models can be
// stored beside the repository and reloaded by the partitioner CLIs.
func (m *Model) MarshalJSON() ([]byte, error) {
	mj := modelJSON{Weights: m.Weights}
	for _, t := range m.Terms {
		mj.Terms = append(mj.Terms, t.Exps)
	}
	return json.Marshal(mj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return err
	}
	if len(mj.Terms) != len(mj.Weights) {
		return fmt.Errorf("costmodel: %d terms but %d weights", len(mj.Terms), len(mj.Weights))
	}
	m.Terms = m.Terms[:0]
	for _, e := range mj.Terms {
		m.Terms = append(m.Terms, Term{Exps: e})
	}
	m.Weights = mj.Weights
	return nil
}
