package costmodel

// Algo identifies the five graph algorithms the paper evaluates.
type Algo int

const (
	CN   Algo = iota // common neighbours
	TC               // triangle counting
	WCC              // weakly connected components
	PR               // PageRank
	SSSP             // single-source shortest path
	numAlgos
)

var algoNames = [numAlgos]string{"CN", "TC", "WCC", "PR", "SSSP"}

func (a Algo) String() string {
	if a < 0 || a >= numAlgos {
		return "?"
	}
	return algoNames[a]
}

// Algos lists all five algorithms in paper order — the fixed batch of
// the mixed-workload experiments.
func Algos() []Algo { return []Algo{CN, TC, WCC, PR, SSSP} }

// Reference returns the cost model the paper learned for a (Table 5).
// These analytic functions are the inputs our partitioners are driven
// by in the experiments, exactly as the paper feeds its learned models
// into ParE2H/ParV2H. The learning pipeline (Train) reproduces models
// of this shape from running logs; see the Table-5 bench.
//
// Units are milliseconds per vertex from the paper's cluster; only the
// relative shape matters to the partitioners.
func Reference(a Algo) CostModel {
	switch a {
	case CN:
		return CostModel{
			// hCN = 9.23e-5·d+L·d+G + 1.04e-6·d+L + 1.02e-6
			H: Func(func(x Vars) float64 {
				return 9.23e-5*x[DLIn]*x[DGIn] + 1.04e-6*x[DLIn] + 1.02e-6
			}),
			// gCN = 5.57e-5·D·d-G
			G: Func(func(x Vars) float64 {
				return 5.57e-5 * x[AvgDeg] * x[DGOut]
			}),
		}
	case TC:
		return CostModel{
			// hTC = 1.8e-3·dL + 1.7e-7·dL·dG  (undirected degrees)
			H: Func(func(x Vars) float64 {
				return 1.8e-3*x[DLOut] + 1.7e-7*x[DLOut]*x[DGOut]
			}),
			// gTC = 8.42e-5·dG·r·I
			G: Func(func(x Vars) float64 {
				return 8.42e-5 * x[DGOut] * x[Repl] * x[NotECut]
			}),
		}
	case WCC:
		return CostModel{
			// hWCC = 6.53e-6·dL + 3.46e-5
			H: Func(func(x Vars) float64 {
				return 6.53e-6*(x[DLIn]+x[DLOut]) + 3.46e-5
			}),
			// gWCC = 7.51e-5·(1.98r − 0.97)
			G: Func(func(x Vars) float64 {
				v := 7.51e-5 * (1.98*x[Repl] - 0.97)
				if v < 0 {
					return 0
				}
				return v
			}),
		}
	case PR:
		return CostModel{
			// hPR = 4.88e-5·d+L + 4e-4
			H: Func(func(x Vars) float64 {
				return 4.88e-5*x[DLIn] + 4e-4
			}),
			// gPR = 6.60e-4·r + 1.1e-4
			G: Func(func(x Vars) float64 {
				return 6.60e-4*x[Repl] + 1.1e-4
			}),
		}
	case SSSP:
		return CostModel{
			// hSSSP = 6.74e-4·d-L + 1.66e-4
			H: Func(func(x Vars) float64 {
				return 6.74e-4*x[DLOut] + 1.66e-4
			}),
			// gSSSP = 1.30e-4·r + 4.6e-5
			G: Func(func(x Vars) float64 {
				return 1.30e-4*x[Repl] + 4.6e-5
			}),
		}
	}
	return CostModel{H: Zero, G: Zero}
}

// LearnableVars returns the reduced variable set the paper selects per
// algorithm via feature selection + domain knowledge (the "training
// cost reduction" remark of Section 4), and the polynomial degree to
// expand.
func LearnableVars(a Algo) (vars []VarKind, degree int) {
	switch a {
	case CN:
		return []VarKind{DLIn, DGIn}, 2
	case TC:
		return []VarKind{DLOut, DGOut}, 2
	case WCC:
		return []VarKind{DLIn, DLOut}, 1
	case PR:
		return []VarKind{DLIn}, 1
	case SSSP:
		return []VarKind{DLOut}, 1
	}
	return []VarKind{DLIn, DLOut, DGIn, DGOut, Repl}, 2
}

// LearnableCommVars is the communication-side analogue of
// LearnableVars.
func LearnableCommVars(a Algo) (vars []VarKind, degree int) {
	switch a {
	case CN:
		// The engine's CN synchronisation ships in-neighbour lists of
		// split vertices, so the informative variables are d+G, r and
		// the e-cut indicator (the paper's GRAPE aggregation made
		// D·d-G informative instead; see EXPERIMENTS.md).
		return []VarKind{DGIn, Repl, NotECut}, 3
	case TC:
		return []VarKind{DGOut, Repl, NotECut}, 3
	default:
		return []VarKind{Repl}, 1
	}
}
