package costmodel

import (
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
)

// Theorem 1 reduces SET-PARTITION to ADP: given integers S, build the
// clique collection K_{s1},...,K_{sm}, n = 2, B = ΣS/2, hA(v) = 1 and
// gA(v) = r(v)−1 (each counted at... the reduction counts r−1 per
// replicated vertex; we charge it at the master, which is equivalent
// since every replicated vertex has exactly one master). A partition
// of the cliques into two equal-sum halves achieves parallel cost
// exactly B; any split of a clique forces replication and pushes the
// cost above B.
func reductionModel() CostModel {
	return CostModel{
		H: Func(func(x Vars) float64 { return 1 }),
		G: Func(func(x Vars) float64 { return x[Repl] }),
	}
}

func TestSetPartitionReductionYesInstance(t *testing.T) {
	// S = {3, 1, 4, 2, 5, 5} sums to 20; {5,4,1} vs {5,3,2} splits it.
	sizes := []int{3, 1, 4, 2, 5, 5}
	g := gen.CliqueCollection(sizes)
	b := 10.0

	// Assign cliques 2(K4), 4(K5) and 1(K1) to fragment 0, rest to 1.
	assign := make([]int, g.NumVertices())
	base := 0
	fragOf := []int{1, 0, 0, 1, 0, 1} // per clique: sums 4+5+1 = 10 vs 3+2+5
	for ci, s := range sizes {
		for k := 0; k < s; k++ {
			assign[base+k] = fragOf[ci]
		}
		base += s
	}
	p, err := partition.FromVertexAssignment(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	costs := Evaluate(p, reductionModel())
	if got := ParallelCost(costs); got != b {
		t.Fatalf("equal-sum clique partition has parallel cost %v, want exactly B=%v", got, b)
	}
	// No replication: zero communication.
	if costs[0].Comm != 0 || costs[1].Comm != 0 {
		t.Fatalf("clique-aligned partition should have no replication cost, got %+v", costs)
	}
}

func TestSetPartitionReductionSplitCliqueCostsMore(t *testing.T) {
	sizes := []int{3, 1, 4, 2, 5, 5}
	g := gen.CliqueCollection(sizes)
	b := 10.0

	// Split the first K5 (vertices 10..14) across the two fragments:
	// its vertices replicate (cut arcs land on both sides), so either
	// a fragment exceeds B in hA count or gA kicks in.
	assign := make([]int, g.NumVertices())
	base := 0
	fragOf := []int{1, 0, 0, 1, 0, 1}
	for ci, s := range sizes {
		for k := 0; k < s; k++ {
			assign[base+k] = fragOf[ci]
		}
		base += s
	}
	// Move two vertices of the fragment-0 K5 (clique index 4,
	// vertices 10..14) over to fragment 1.
	assign[10], assign[11] = 1, 1
	p, err := partition.FromVertexAssignment(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	costs := Evaluate(p, reductionModel())
	if got := ParallelCost(costs); got <= b {
		t.Fatalf("splitting a clique should exceed B=%v, got %v", b, got)
	}
}

// The reduction's forward direction at a glance: for every balanced
// clique-aligned assignment the bound B is met, so ADP answers yes
// exactly when SET-PARTITION does on this instance family.
func TestSetPartitionReductionCliquesStayWhole(t *testing.T) {
	sizes := []int{2, 2, 4}
	g := gen.CliqueCollection(sizes)
	assign := make([]int, g.NumVertices())
	for v := 0; v < 4; v++ {
		assign[v] = 0 // K2 + K2
	}
	for v := 4; v < 8; v++ {
		assign[v] = 1 // K4
	}
	p, err := partition.FromVertexAssignment(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ParallelCost(Evaluate(p, reductionModel())); got != 4 {
		t.Fatalf("parallel cost %v, want B=4", got)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if p.Replication(graph.VertexID(v)) != 0 {
			t.Fatalf("vertex %d replicated in a clique-aligned partition", v)
		}
	}
}
