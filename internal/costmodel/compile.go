package costmodel

// This file is the compiled form of a Model: a flat term program the
// refinement hot path evaluates instead of the interpreted
// Model.Eval. The interpreted evaluator walks every term's full
// [NumVars]uint8 exponent vector (8 slots, almost all zero) and
// multiplies one factor at a time; the compiled form stores only the
// nonzero factors of each term, packed into three parallel arrays, and
// dispatches degenerate shapes (no terms, constant-only,
// single-variable) to dedicated fast paths.
//
// Bitwise contract: Eval on the compiled form is bit-for-bit identical
// to the interpreted Model.Eval for every input, not merely close.
// Terms are summed in the original term order; within a term, factors
// multiply in ascending variable order; and ipow is an unrolled
// left-to-right multiply chain, exactly the association the
// interpreted exponent loop produces (the leading 1.0·x of the
// interpreted loop is exact under IEEE-754 and drops out). The
// constant fast path folds Σ w_j·1.0 at compile time with the same
// summation order. TestCompiledMatchesInterpreted locks this bitwise,
// and the golden refiner Stats rely on it: refiners driven by a
// compiled model reproduce the map-backed, interpreted trajectory
// exactly.

// compiledKind selects the evaluation fast path.
type compiledKind uint8

const (
	// kindZero: a model with no terms evaluates to 0.
	kindZero compiledKind = iota
	// kindConst: every term has degree 0; the sum is folded at compile
	// time.
	kindConst
	// kindSingle: every factor uses one shared variable; evaluation is
	// a coefficient/exponent scan with no factor indirection.
	kindSingle
	// kindGeneral: the packed term program.
	kindGeneral
)

// CompiledModel is the flat execution form of a Model. It implements
// CostFunc and is immutable after Compile; a single instance may be
// shared by concurrent readers (the parallel probe passes).
type CompiledModel struct {
	kind compiledKind

	// constSum is the compile-time folded value of a kindConst model.
	constSum float64

	// weights[j] is the j-th term's coefficient (all kinds but
	// kindZero/kindConst).
	weights []float64

	// kindSingle program: singleVar is the shared variable, exps[j] the
	// j-th term's exponent of it (0 for interleaved constant terms).
	singleVar uint8
	exps      []uint8

	// kindGeneral program: term j's nonzero factors are
	// factorVar/factorExp[factorOff[j]:factorOff[j+1]], in ascending
	// variable order.
	factorOff []int32
	factorVar []uint8
	factorExp []uint8
}

// Compile lowers a cost function into its fastest evaluable form: a
// *Model becomes a *CompiledModel, an already-compiled kernel or an
// analytic closure (the Table-5 reference functions are plain Go) is
// returned unchanged, and nil becomes Zero. The tracker compiles both
// sides of its CostModel at construction, so refiners transparently
// run on compiled kernels whenever they are handed a learned Model.
func Compile(f CostFunc) CostFunc {
	switch m := f.(type) {
	case *Model:
		return CompileModel(m)
	case *CompiledModel:
		return m
	case nil:
		return Zero
	}
	return f
}

// CompileCostModel compiles both cost functions of a model pair.
func CompileCostModel(m CostModel) CostModel {
	return CostModel{H: Compile(m.H), G: Compile(m.G)}
}

// CompileModel lowers m into its flat term program. The model must be
// well-formed (one weight per term, as Model.Eval requires).
func CompileModel(m *Model) *CompiledModel {
	c := &CompiledModel{}
	if len(m.Terms) == 0 {
		c.kind = kindZero
		return c
	}

	// Classify: degenerate shapes get dedicated programs.
	constOnly := true
	singleVar, multiVar := -1, false
	for _, t := range m.Terms {
		for k, e := range t.Exps {
			if e == 0 {
				continue
			}
			constOnly = false
			if singleVar < 0 {
				singleVar = k
			} else if singleVar != k {
				multiVar = true
			}
		}
	}

	if constOnly {
		// Fold Σ w_j·1.0 now, in term order — the same additions the
		// interpreted evaluator would perform at runtime.
		c.kind = kindConst
		for j := range m.Terms {
			c.constSum += m.Weights[j] * 1.0
		}
		return c
	}

	c.weights = append([]float64(nil), m.Weights[:len(m.Terms)]...)
	if !multiVar {
		c.kind = kindSingle
		c.singleVar = uint8(singleVar)
		c.exps = make([]uint8, len(m.Terms))
		for j, t := range m.Terms {
			c.exps[j] = t.Exps[singleVar]
		}
		return c
	}

	c.kind = kindGeneral
	c.factorOff = make([]int32, 1, len(m.Terms)+1)
	for _, t := range m.Terms {
		for k, e := range t.Exps {
			if e > 0 {
				c.factorVar = append(c.factorVar, uint8(k))
				c.factorExp = append(c.factorExp, e)
			}
		}
		c.factorOff = append(c.factorOff, int32(len(c.factorVar)))
	}
	return c
}

// ipow raises x to a small integer power with an unrolled
// left-to-right multiply chain — the association the interpreted
// exponent loop uses, so results are bitwise identical.
func ipow(x float64, e uint8) float64 {
	switch e {
	case 0:
		return 1
	case 1:
		return x
	case 2:
		return x * x
	case 3:
		return (x * x) * x
	case 4:
		return ((x * x) * x) * x
	}
	v := x
	for i := uint8(1); i < e; i++ {
		v *= x
	}
	return v
}

// Eval implements CostFunc on the compiled program.
func (c *CompiledModel) Eval(x Vars) float64 {
	switch c.kind {
	case kindZero:
		return 0
	case kindConst:
		return c.constSum
	case kindSingle:
		sum := 0.0
		xv := x[c.singleVar]
		for j, w := range c.weights {
			sum += w * ipow(xv, c.exps[j])
		}
		return sum
	}
	sum := 0.0
	for j, w := range c.weights {
		lo, hi := c.factorOff[j], c.factorOff[j+1]
		v := 1.0 // a degree-0 term inside a general model
		if lo < hi {
			// The first factor may use ipow's unrolled chain (1.0·x is
			// exact, so starting from x is the interpreted association);
			// later factors must fold into the running product one
			// multiply at a time — v *= ipow(y, e) would associate as
			// v·(y^e), which is not the interpreted (((v·y)·y)·…).
			v = ipow(x[c.factorVar[lo]], c.factorExp[lo])
			for f := lo + 1; f < hi; f++ {
				xf := x[c.factorVar[f]]
				for e := c.factorExp[f]; e > 0; e-- {
					v *= xf
				}
			}
		}
		sum += w * v
	}
	return sum
}
