package costmodel

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomModel draws a model whose shape covers every compiled kind:
// zero-term, constant-only, single-variable, and general multivariate
// programs up to degree 3 (the largest degree the learning pipeline
// expands), plus raw random exponent vectors that exercise exponents
// beyond the unrolled ipow cases.
func randomModel(rng *rand.Rand) *Model {
	m := &Model{}
	switch rng.Intn(5) {
	case 0: // zero terms
		return m
	case 1: // constant-only (1..3 degree-0 terms)
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			m.Terms = append(m.Terms, Term{})
			m.Weights = append(m.Weights, randWeight(rng))
		}
		return m
	case 2: // single-variable polynomial, degree up to 3
		v := VarKind(rng.Intn(int(NumVars)))
		m.Terms = PolyTerms([]VarKind{v}, 1+rng.Intn(3))
	case 3: // the learning pipeline's shape: PolyTerms over 2-3 vars
		perm := rng.Perm(int(NumVars))
		nv := 2 + rng.Intn(2)
		vars := make([]VarKind, 0, nv)
		for _, k := range perm[:nv] {
			vars = append(vars, VarKind(k))
		}
		m.Terms = PolyTerms(vars, 1+rng.Intn(3))
	default: // raw random exponent vectors, exponents up to 6
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			var t Term
			for f := 0; f < 1+rng.Intn(3); f++ {
				t.Exps[rng.Intn(int(NumVars))] = uint8(rng.Intn(7))
			}
			m.Terms = append(m.Terms, t)
		}
	}
	for range m.Terms {
		m.Weights = append(m.Weights, randWeight(rng))
	}
	return m
}

func randWeight(rng *rand.Rand) float64 {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return -rng.Float64() * 1e-3
	case 2:
		return rng.Float64() * 1e6
	}
	return rng.NormFloat64() * 1e-4
}

func randVars(rng *rand.Rand) Vars {
	var x Vars
	for k := range x {
		switch rng.Intn(4) {
		case 0:
			x[k] = 0
		case 1:
			x[k] = float64(rng.Intn(1000)) // degree-like integers
		case 2:
			x[k] = rng.Float64() * 50
		default:
			x[k] = -rng.Float64() * 10 // bitwise contract holds off-domain too
		}
	}
	return x
}

// TestCompiledMatchesInterpreted is the compiled-kernel property test:
// over randomized models × randomized Vars — including the degenerate
// shapes (zero terms, constant-only, degree-3) — the compiled program
// agrees with the interpreted Model.Eval bit for bit. Equality is
// asserted on Float64bits, not within a tolerance: the compiled form
// preserves term order and factor association exactly, so this is the
// contract the golden refiner Stats rest on.
func TestCompiledMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		m := randomModel(rng)
		c := CompileModel(m)
		for probe := 0; probe < 40; probe++ {
			x := randVars(rng)
			want, got := m.Eval(x), c.Eval(x)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("trial %d: compiled eval drifted:\nmodel %v\nx = %v\ninterpreted %v (%#016x)\ncompiled    %v (%#016x)",
					trial, m, x, want, math.Float64bits(want), got, math.Float64bits(got))
			}
		}
	}
}

func TestCompileFastPaths(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
		kind compiledKind
	}{
		{"zero terms", &Model{}, kindZero},
		{"constant only", &Model{Terms: []Term{{}, {}}, Weights: []float64{2, 3}}, kindConst},
		{"single variable", &Model{Terms: PolyTerms([]VarKind{DLIn}, 3), Weights: []float64{1, 2, 3, 4}}, kindSingle},
		{"general", &Model{Terms: PolyTerms([]VarKind{DLIn, DGIn}, 2), Weights: []float64{1, 2, 3, 4, 5, 6}}, kindGeneral},
	}
	for _, tc := range cases {
		c := CompileModel(tc.m)
		if c.kind != tc.kind {
			t.Errorf("%s: compiled kind = %d, want %d", tc.name, c.kind, tc.kind)
		}
		x := Vars{3, 1, 4, 1, 5, 9, 2, 6}
		if want, got := tc.m.Eval(x), c.Eval(x); math.Float64bits(want) != math.Float64bits(got) {
			t.Errorf("%s: eval = %v, want %v", tc.name, got, want)
		}
	}
}

func TestCompilePassthrough(t *testing.T) {
	f := Func(func(x Vars) float64 { return x[Repl] })
	if got := Compile(f); reflect.ValueOf(got).Pointer() != reflect.ValueOf(f).Pointer() {
		t.Error("Compile(Func) must return the closure unchanged")
	}
	if got := Compile(nil); reflect.ValueOf(got).Pointer() != reflect.ValueOf(Zero).Pointer() {
		t.Error("Compile(nil) must return Zero")
	}
	c := CompileModel(&Model{})
	if got := Compile(c); got != CostFunc(c) {
		t.Error("Compile(*CompiledModel) must be idempotent")
	}
	m := &Model{Terms: PolyTerms([]VarKind{Repl}, 1), Weights: []float64{1, 2}}
	cm := CompileCostModel(CostModel{H: m, G: nil})
	if _, ok := cm.H.(*CompiledModel); !ok {
		t.Errorf("CompileCostModel did not compile H: %T", cm.H)
	}
	if reflect.ValueOf(cm.G).Pointer() != reflect.ValueOf(Zero).Pointer() {
		t.Error("CompileCostModel must map nil G to Zero")
	}
}

// FuzzModelJSON fuzzes the Model JSON codec: any input either fails to
// unmarshal or yields a model whose Marshal → Unmarshal round trip is
// lossless (same terms, same weights, and a compiled form that agrees
// with the original on a probe evaluation). The graph and partition
// readers are fuzzed elsewhere; this covers the remaining untrusted
// decoder, the model files adpart/adtrain exchange.
func FuzzModelJSON(f *testing.F) {
	seed := &Model{Terms: PolyTerms([]VarKind{DLIn, DGIn}, 2), Weights: []float64{1.02e-6, 3e-8, 1.04e-6, 2e-9, 9.23e-5, 5e-9}}
	b, err := json.Marshal(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte(`{"terms":[],"weights":[]}`))
	f.Add([]byte(`{"terms":[[0,0,0,0,0,0,0,0]],"weights":[3.5]}`))
	f.Add([]byte(`{"terms":[[1,0,2,0,0,0,0,0]],"weights":[1e300]}`))
	f.Add([]byte(`{"terms":[[1,0,0,0,0,0,0,0]],"weights":[1,2]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Model
		if err := json.Unmarshal(data, &m); err != nil {
			return // rejected inputs are fine; they must just not panic
		}
		if len(m.Terms) != len(m.Weights) {
			t.Fatalf("decoder accepted mismatched arity: %d terms, %d weights", len(m.Terms), len(m.Weights))
		}
		out, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
		var back Model
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to decode: %v\npayload: %s", err, out)
		}
		if !reflect.DeepEqual(m.Terms, back.Terms) {
			t.Fatalf("terms not preserved:\n in %v\nout %v", m.Terms, back.Terms)
		}
		if len(m.Weights) != len(back.Weights) {
			t.Fatalf("weight count not preserved: %d vs %d", len(m.Weights), len(back.Weights))
		}
		for j := range m.Weights {
			if math.Float64bits(m.Weights[j]) != math.Float64bits(back.Weights[j]) &&
				!(math.IsNaN(m.Weights[j]) && math.IsNaN(back.Weights[j])) {
				t.Fatalf("weight %d not preserved: %v vs %v", j, m.Weights[j], back.Weights[j])
			}
		}
		// The compiled form of the round-tripped model agrees with the
		// interpreted original.
		x := Vars{2, 3, 5, 7, 1, 4, 1, 2}
		if want, got := m.Eval(x), CompileModel(&back).Eval(x); math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("compiled round trip drifted: %v vs %v", want, got)
		}
		_ = bytes.Equal(data, out) // key order may differ; equality not required
	})
}
