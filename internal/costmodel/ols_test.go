package costmodel

import (
	"math"
	"testing"
)

func TestTrainOLSRecoversExactModel(t *testing.T) {
	truth := func(x Vars) float64 { return 2e-4*x[DLIn]*x[DGIn] + 3e-6*x[DLIn] + 1e-6 }
	data := synthSamples(2000, 5, truth, 0) // noiseless
	terms := PolyTerms([]VarKind{DLIn, DGIn}, 2)
	m, err := TrainOLS(terms, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msre := MSRE(m, data); msre > 1e-6 {
		t.Fatalf("noiseless OLS MSRE = %v, want ~0", msre)
	}
}

func TestTrainOLSMatchesSGDBallpark(t *testing.T) {
	truth := Reference(CN).H.Eval
	data := synthSamples(3000, 9, truth, 0.05)
	train, test := Split(data, 0.8, 1)
	terms := PolyTerms([]VarKind{DLIn, DGIn}, 2)
	ols, err := TrainOLS(terms, train, 0)
	if err != nil {
		t.Fatal(err)
	}
	sgd, err := Train(terms, train, TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mo, ms := MSRE(ols, test), MSRE(sgd, test)
	if mo > 0.11 {
		t.Fatalf("OLS test MSRE = %v", mo)
	}
	// The two fits should land in the same accuracy band.
	if mo > 5*ms+0.05 && ms > 5*mo+0.05 {
		t.Fatalf("OLS (%v) and SGD (%v) disagree wildly", mo, ms)
	}
}

func TestTrainOLSErrors(t *testing.T) {
	if _, err := TrainOLS(nil, []Sample{{}}, 0); err == nil {
		t.Fatal("empty basis accepted")
	}
	if _, err := TrainOLS(PolyTerms([]VarKind{DLIn}, 1), nil, 0); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestSolveGaussSingular(t *testing.T) {
	// Two identical columns: singular without damping.
	A := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 1}
	if _, err := solveGauss(A, b); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestSolveGaussKnownSystem(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveGauss(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v, want [1 3]", x)
	}
}
