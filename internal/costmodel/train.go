package costmodel

import (
	"errors"
	"math"
	"math/rand"
)

// Sample is one training example [X(v_k), t_k] harvested from an
// algorithm's running log: the metric variables of a vertex and the
// cost it incurred.
type Sample struct {
	X Vars
	T float64
}

// TrainConfig controls the SGD trainer.
type TrainConfig struct {
	Epochs    int     // passes over the training set (default 60)
	LearnRate float64 // SGD step size in normalised feature space (default 0.05)
	L1        float64 // weight of the Σ|ω| over-fitting penalty (default 1e-6)
	Seed      int64   // shuffle seed
	MinTarget float64 // clamp for tiny targets in the relative error (default 1e-9)
}

func (c *TrainConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 150
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.L1 == 0 {
		c.L1 = 1e-6
	}
	if c.MinTarget == 0 {
		c.MinTarget = 1e-9
	}
}

// Train fits a polynomial model with the given monomial basis to the
// samples by stochastic gradient descent on the MSRE objective of
// Section 4:
//
//	min_Ω  (1/|D|) Σ ((h(X) − t)/t)²  +  L1·Σ|ω|
//
// Features are max-abs normalised internally so that high-degree terms
// (d² can reach 10⁸) do not destabilise SGD; the scale is folded back
// into the returned weights.
func Train(terms []Term, data []Sample, cfg TrainConfig) (*Model, error) {
	if len(terms) == 0 {
		return nil, errors.New("costmodel: empty term basis")
	}
	if len(data) == 0 {
		return nil, errors.New("costmodel: no training samples")
	}
	cfg.defaults()

	// Pre-compute the normalised design matrix.
	k := len(terms)
	feat := make([][]float64, len(data))
	scale := make([]float64, k)
	for j := range scale {
		scale[j] = 1
	}
	// Root-mean-square column scaling: degree features are heavy
	// tailed on power-law graphs, so max-abs scaling would squash the
	// bulk of the samples to near-zero and stall SGD.
	sumSq := make([]float64, k)
	for i, s := range data {
		row := make([]float64, k)
		for j, t := range terms {
			row[j] = t.Eval(s.X)
			sumSq[j] += row[j] * row[j]
		}
		feat[i] = row
	}
	for j := range scale {
		if rms := math.Sqrt(sumSq[j] / float64(len(data))); rms > 0 {
			scale[j] = rms
		}
	}
	for i := range feat {
		for j := range feat[i] {
			feat[i][j] /= scale[j]
		}
	}
	targets := make([]float64, len(data))
	for i, s := range data {
		targets[i] = math.Max(s.T, cfg.MinTarget)
	}

	// Work in relative space: with z_j = f_j/t the residual is
	// ρ = Σ w_j z_j − 1 and the MSRE is mean ρ². The update is the
	// normalised-LMS form of SGD, w_j -= lr·ρ·z_j/(ε+‖z‖²), which is
	// scale-free: it converges for lr ∈ (0,2) regardless of the unit
	// of t (the paper's targets are per-vertex milliseconds, ~1e-6).
	rel := make([][]float64, len(data))
	norms := make([]float64, len(data))
	for i := range feat {
		row := make([]float64, k)
		var nrm float64
		for j, f := range feat[i] {
			row[j] = f / targets[i]
			nrm += row[j] * row[j]
		}
		rel[i] = row
		norms[i] = nrm
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := make([]float64, k)
	order := rng.Perm(len(data))
	lr := math.Min(cfg.LearnRate*10, 0.8) // NLMS tolerates larger steps
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			rho := -1.0
			for j, z := range rel[i] {
				rho += w[j] * z
			}
			scale := lr * rho / (1e-12 + norms[i])
			for j, z := range rel[i] {
				w[j] -= scale * z
				// Proximal L1 shrinkage toward zero.
				if l1 := lr * cfg.L1; w[j] > l1 {
					w[j] -= l1
				} else if w[j] < -l1 {
					w[j] += l1
				} else {
					w[j] = 0
				}
			}
		}
	}
	// Fold normalisation back into the weights.
	weights := make([]float64, k)
	for j := range w {
		weights[j] = w[j] / scale[j]
	}
	return &Model{Terms: append([]Term(nil), terms...), Weights: weights}, nil
}

// MSRE computes the mean squared relative error of a cost function on
// the samples — the accuracy metric of Table 5.
func MSRE(f CostFunc, data []Sample) float64 {
	if len(data) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range data {
		t := math.Max(s.T, 1e-9)
		rel := (f.Eval(s.X) - t) / t
		sum += rel * rel
	}
	return sum / float64(len(data))
}

// Split partitions the samples into train/test sets with the given
// training fraction (the paper uses 80/20), shuffling with the seed.
func Split(data []Sample, trainFrac float64, seed int64) (train, test []Sample) {
	rng := rand.New(rand.NewSource(seed))
	shuffled := append([]Sample(nil), data...)
	rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
	cut := int(float64(len(shuffled)) * trainFrac)
	return shuffled[:cut], shuffled[cut:]
}
