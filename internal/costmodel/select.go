package costmodel

import (
	"math"
	"sort"
)

// SelectVars implements the "training cost reduction" remark of
// Section 4: before expanding a polynomial basis, rank the candidate
// metric variables by the absolute Pearson correlation between the
// target cost and the variable (and its square, so quadratic
// dependencies like CN's d+L·d+G surface), and keep the top maxVars.
// Variables with no variance in the sample set are dropped outright.
func SelectVars(data []Sample, candidates []VarKind, maxVars int) []VarKind {
	if maxVars <= 0 || len(data) == 0 {
		return nil
	}
	type ranked struct {
		v     VarKind
		score float64
	}
	var rs []ranked
	for _, v := range candidates {
		lin := correlation(data, func(s Sample) float64 { return s.X[v] })
		sq := correlation(data, func(s Sample) float64 { return s.X[v] * s.X[v] })
		score := math.Max(math.Abs(lin), math.Abs(sq))
		if math.IsNaN(score) || score == 0 {
			continue
		}
		rs = append(rs, ranked{v, score})
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].score != rs[b].score {
			return rs[a].score > rs[b].score
		}
		return rs[a].v < rs[b].v
	})
	if len(rs) > maxVars {
		rs = rs[:maxVars]
	}
	out := make([]VarKind, 0, len(rs))
	for _, r := range rs {
		out = append(out, r.v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// correlation computes the Pearson correlation between f(sample) and
// the sample target. Returns NaN when either side has no variance.
func correlation(data []Sample, f func(Sample) float64) float64 {
	n := float64(len(data))
	var sx, sy, sxx, syy, sxy float64
	for _, s := range data {
		x, y := f(s), s.T
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}
