package costmodel

import (
	"testing"
)

func allVars() []VarKind {
	return []VarKind{DLIn, DLOut, DGIn, DGOut, Repl, AvgDeg, NotECut}
}

func TestSelectVarsFindsCNDrivers(t *testing.T) {
	// Targets follow hCN: dominated by d+L·d+G; the out-degree columns
	// are uncorrelated noise by construction of synthSamples' target.
	truth := func(x Vars) float64 {
		return 9.23e-5*x[DLIn]*x[DGIn] + 1.04e-6*x[DLIn] + 1.02e-6
	}
	data := synthSamples(3000, 99, truth, 0.05)
	got := SelectVars(data, allVars(), 2)
	want := map[VarKind]bool{DLIn: true, DGIn: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("SelectVars picked %v, want {dL+, dG+}", got)
	}
}

func TestSelectVarsDropsConstants(t *testing.T) {
	truth := func(x Vars) float64 { return 1e-4 * x[Repl] }
	data := synthSamples(1000, 3, truth, 0.02)
	// AvgDeg is constant (12) in synthSamples: zero variance, must
	// never be selected.
	got := SelectVars(data, []VarKind{Repl, AvgDeg}, 2)
	if len(got) != 1 || got[0] != Repl {
		t.Fatalf("SelectVars = %v, want just r", got)
	}
}

func TestSelectVarsEdgeCases(t *testing.T) {
	if got := SelectVars(nil, allVars(), 3); got != nil {
		t.Fatalf("empty data selected %v", got)
	}
	data := synthSamples(100, 1, func(x Vars) float64 { return x[DLIn] }, 0)
	if got := SelectVars(data, allVars(), 0); got != nil {
		t.Fatalf("maxVars=0 selected %v", got)
	}
}

// Selected variables should train as well as the hand-picked ones.
func TestSelectThenTrainPipeline(t *testing.T) {
	ref := Reference(PR)
	data := synthSamples(2000, 21, ref.H.Eval, 0.05)
	vars := SelectVars(data, allVars(), 1)
	if len(vars) != 1 || vars[0] != DLIn {
		t.Fatalf("selected %v, want {dL+}", vars)
	}
	train, test := Split(data, 0.8, 2)
	m, err := Train(PolyTerms(vars, 1), train, TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if msre := MSRE(m, test); msre > 0.11 {
		t.Fatalf("pipeline MSRE = %v", msre)
	}
}
