package costmodel

import (
	"encoding/json"
	"math"
	"testing"
)

func TestPolyTermsCount(t *testing.T) {
	// Monomials of total degree ≤ p over k variables: C(k+p, p).
	cases := []struct {
		vars []VarKind
		p    int
		want int
	}{
		{[]VarKind{DLIn}, 1, 2},
		{[]VarKind{DLIn}, 2, 3},
		{[]VarKind{DLIn, DGIn}, 2, 6},
		{[]VarKind{DLIn, DLOut, DGIn}, 2, 10},
	}
	for _, c := range cases {
		got := PolyTerms(c.vars, c.p)
		if len(got) != c.want {
			t.Errorf("PolyTerms(%v,%d) = %d terms, want %d", c.vars, c.p, len(got), c.want)
		}
		if got[0].Degree() != 0 {
			t.Errorf("constant term should come first, got %v", got[0])
		}
	}
}

func TestPolyTermsDeterministic(t *testing.T) {
	a := PolyTerms([]VarKind{DLIn, DGIn}, 2)
	b := PolyTerms([]VarKind{DLIn, DGIn}, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PolyTerms not deterministic")
		}
	}
}

func TestTermEval(t *testing.T) {
	var x Vars
	x[DLIn] = 3
	x[DGIn] = 4
	term := Term{}
	term.Exps[DLIn] = 2
	term.Exps[DGIn] = 1
	if got := term.Eval(x); got != 36 {
		t.Fatalf("x²y = %v, want 36", got)
	}
	if got := (Term{}).Eval(x); got != 1 {
		t.Fatalf("constant term = %v, want 1", got)
	}
}

func TestTermString(t *testing.T) {
	term := Term{}
	term.Exps[DLIn] = 1
	term.Exps[DGIn] = 1
	if s := term.String(); s != "dL+*dG+" {
		t.Fatalf("term string = %q", s)
	}
	if s := (Term{}).String(); s != "1" {
		t.Fatalf("constant string = %q", s)
	}
}

func TestModelEvalAndString(t *testing.T) {
	terms := PolyTerms([]VarKind{DLIn}, 1) // [1, dL+]
	m := &Model{Terms: terms, Weights: []float64{0.5, 2}}
	var x Vars
	x[DLIn] = 3
	if got := m.Eval(x); got != 6.5 {
		t.Fatalf("model eval = %v, want 6.5", got)
	}
	if s := m.String(); s == "" || s == "0" {
		t.Fatalf("model string = %q", s)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	terms := PolyTerms([]VarKind{DLIn, DGIn}, 2)
	m := &Model{Terms: terms, Weights: make([]float64, len(terms))}
	for i := range m.Weights {
		m.Weights[i] = float64(i) * 0.25
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	var x Vars
	x[DLIn], x[DGIn] = 5, 7
	if math.Abs(m.Eval(x)-back.Eval(x)) > 1e-12 {
		t.Fatal("JSON round trip changed the model")
	}
}

func TestModelJSONMismatch(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"terms":[[0,0,0,0,0,0,0]],"weights":[1,2]}`), &m); err == nil {
		t.Fatal("mismatched terms/weights accepted")
	}
}

func TestReferenceModelsCover(t *testing.T) {
	for _, a := range Algos() {
		m := Reference(a)
		if m.H == nil || m.G == nil {
			t.Fatalf("%v: nil cost function", a)
		}
		var x Vars
		x[DLIn], x[DLOut], x[DGIn], x[DGOut], x[Repl], x[AvgDeg], x[NotECut] = 10, 10, 20, 20, 2, 8, 1
		if m.H.Eval(x) <= 0 {
			t.Errorf("%v: hA non-positive on a busy vertex", a)
		}
		if m.G.Eval(x) <= 0 {
			t.Errorf("%v: gA non-positive on a replicated vertex", a)
		}
	}
}

func TestReferenceWCCCommNonNegative(t *testing.T) {
	m := Reference(WCC)
	var x Vars // r = 0
	if got := m.G.Eval(x); got != 0 {
		t.Fatalf("gWCC(r=0) = %v, want clamped 0", got)
	}
}

func TestAlgoString(t *testing.T) {
	if CN.String() != "CN" || SSSP.String() != "SSSP" {
		t.Fatal("algo names wrong")
	}
	if Algo(99).String() != "?" {
		t.Fatal("out-of-range algo name")
	}
}
