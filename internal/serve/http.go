package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/store"
)

// Handler returns the server's HTTP face:
//
//	POST /run          run an algorithm over the pinned epoch
//	GET  /vertex/{id}  point/neighborhood lookup against one epoch
//	GET  /metrics      partition, cost-model and server statistics
//	POST /updates      durable mutation batch (update-stream grammar)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /vertex/{id}", s.handleVertex)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /updates", s.handleUpdates)
	return mux
}

// errorBody is the uniform error envelope: class is the machine-
// matchable failure taxonomy (bad_request, overloaded, draining,
// timeout, cancelled, failed_run, store_failed, not_leader, stale,
// internal). stale errors carry the bound the reader asked for and the
// watermark the serving epoch actually covers, so clients can retry
// against the leader or wait out the lag.
type errorBody struct {
	Error      string `json:"error"`
	Class      string `json:"class"`
	Reason     string `json:"reason,omitempty"`
	Supersteps int    `json:"supersteps,omitempty"`
	MinLSN     uint64 `json:"min_lsn,omitempty"`
	AppliedLSN uint64 `json:"applied_lsn,omitempty"`
	Leader     string `json:"leader,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, class, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Class: class})
}

func parseAlgo(s string) (costmodel.Algo, bool) {
	for _, a := range costmodel.Algos() {
		if strings.EqualFold(a.String(), s) {
			return a, true
		}
	}
	return 0, false
}

// runRequest is the POST /run body.
type runRequest struct {
	Algo string `json:"algo"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Algorithm knobs (same meaning as algorithms.Options).
	Theta      int    `json:"theta,omitempty"`      // CN in-degree filter
	Source     uint32 `json:"source,omitempty"`     // SSSP source
	Iterations int    `json:"iterations,omitempty"` // PR iterations
	// MinLSN, when > 0, is the bounded-staleness floor: the run is
	// refused with the stale class (412) unless the serving epoch covers
	// at least this committed LSN.
	MinLSN uint64 `json:"min_lsn,omitempty"`
}

// runResponse carries the Outcome plus the deterministic Report
// fields. Every float64 survives the JSON round trip bitwise (Go
// emits the shortest representation that parses back exactly), so the
// isolation tests compare these against offline runs directly.
type runResponse struct {
	Epoch         uint64  `json:"epoch"`
	Algo          string  `json:"algo"`
	Value         float64 `json:"value"`
	Checksum      uint64  `json:"checksum"`
	Supersteps    int     `json:"supersteps"`
	CriticalWork  float64 `json:"critical_work"`
	CriticalBytes float64 `json:"critical_bytes"`
	MsgBytes      int64   `json:"msg_bytes"`
	Recoveries    int     `json:"recoveries"`
	WallMS        float64 `json:"wall_ms"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req runRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
		return
	}
	algo, ok := parseAlgo(req.Algo)
	if !ok {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown algorithm %q", req.Algo))
		return
	}
	// Admission: bounded in-flight run work, reject-don't-queue beyond
	// the session-pool wait.
	select {
	case s.admit <- struct{}{}:
	default:
		s.rejected.Add(1)
		writeErr(w, http.StatusTooManyRequests, "overloaded", "run admission limit reached")
		return
	}
	defer func() { <-s.admit }()
	s.served.Add(1)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancelTO := context.WithTimeout(r.Context(), timeout)
	defer cancelTO()

	ep := s.pin()
	defer ep.unpin()
	if !s.checkFresh(w, ep, req.MinLSN) {
		return
	}
	sp := ep.pools[algoIndex(algo)]
	sess, err := sp.acquire(ctx)
	if err != nil {
		s.runFailures.Add(1)
		s.writeRunErr(w, err, nil)
		return
	}
	opts := engine.Options{MaxSupersteps: s.cfg.MaxSupersteps, Context: ctx}
	if s.cfg.RunInjector != nil {
		opts.Injector = s.cfg.RunInjector.Clone()
	}
	sess.Configure(opts)
	out, err := algorithms.Run(sess, algo, algorithms.Options{
		CNTheta:      req.Theta,
		SSSPSource:   graph.VertexID(req.Source),
		PRIterations: req.Iterations,
	})
	sp.release(sess)
	if err != nil {
		s.runFailures.Add(1)
		s.writeRunErr(w, err, out.Report)
		return
	}
	// Feed the drift detector: the observed algorithm mix plus the
	// engine's harvested per-fragment work, tagged with the epoch.
	s.recordObserved(algoIndex(algo), out.Report.Work, ep.seq, out.Report.WallTime)
	writeJSON(w, http.StatusOK, runResponse{
		Epoch:         ep.seq,
		Algo:          algo.String(),
		Value:         out.Value,
		Checksum:      out.Checksum,
		Supersteps:    out.Report.Supersteps,
		CriticalWork:  out.Report.CriticalWork,
		CriticalBytes: out.Report.CriticalBytes,
		MsgBytes:      out.Report.TotalMsgBytes(),
		Recoveries:    out.Report.Recoveries,
		WallMS:        float64(out.Report.WallTime) / float64(time.Millisecond),
	})
}

// checkFresh enforces a reader's bounded-staleness floor against the
// pinned epoch: the epoch's lsn is the committed watermark it was cut
// at, so ep.lsn >= minLSN means every commit up to minLSN is visible.
// A too-stale epoch writes the typed stale error (412) and reports
// false; the client retries after the follower catches up, or goes to
// the leader.
func (s *Server) checkFresh(w http.ResponseWriter, ep *epoch, minLSN uint64) bool {
	if minLSN == 0 || ep.lsn >= minLSN {
		return true
	}
	writeJSON(w, http.StatusPreconditionFailed, errorBody{
		Error:      fmt.Sprintf("serve: epoch covers lsn %d, behind requested min_lsn %d", ep.lsn, minLSN),
		Class:      "stale",
		MinLSN:     minLSN,
		AppliedLSN: ep.lsn,
	})
	return false
}

// writeRunErr maps the engine's typed failure onto a status code:
// deadline → 504, cancellation (client gone or drain) → 503,
// any other *FailedRunError (non-convergence, exhausted recovery
// budget) → 422, everything else → 500.
func (s *Server) writeRunErr(w http.ResponseWriter, err error, rep *engine.Report) {
	body := errorBody{Error: err.Error()}
	var fre *engine.FailedRunError
	if errors.As(err, &fre) {
		body.Reason = fre.Reason
		if fre.Report != nil {
			body.Supersteps = fre.Report.Supersteps
		}
	} else if rep != nil {
		body.Supersteps = rep.Supersteps
	}
	status := http.StatusInternalServerError
	body.Class = "internal"
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status, body.Class = http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		status, body.Class = http.StatusServiceUnavailable, "cancelled"
	case fre != nil:
		status, body.Class = http.StatusUnprocessableEntity, "failed_run"
	}
	writeJSON(w, status, body)
}

// vertexPlacement is one bundled partition's view of a vertex.
type vertexPlacement struct {
	Copies    []int    `json:"copies"`
	Master    int      `json:"master"`
	Status    []string `json:"status"` // per copy, same order as copies
	OutDegree int      `json:"out_degree"`
	InDegree  int      `json:"in_degree"`
	Out       []uint32 `json:"out"`
}

type vertexResponse struct {
	Epoch uint64 `json:"epoch"`
	// EpochLSN is the committed watermark the serving epoch covers — the
	// advertised staleness bound for this read.
	EpochLSN   uint64            `json:"epoch_lsn"`
	Vertex     uint32            `json:"vertex"`
	Partitions []vertexPlacement `json:"partitions"`
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil || int64(id) >= int64(s.g.NumVertices()) {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("vertex %q out of range [0,%d)", r.PathValue("id"), s.g.NumVertices()))
		return
	}
	var minLSN uint64
	if q := r.URL.Query().Get("min_lsn"); q != "" {
		minLSN, err = strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "min_lsn: "+err.Error())
			return
		}
	}
	v := graph.VertexID(id)
	ep := s.pin()
	defer ep.unpin()
	if !s.checkFresh(w, ep, minLSN) {
		return
	}
	resp := vertexResponse{Epoch: ep.seq, EpochLSN: ep.lsn, Vertex: uint32(id)}
	for _, p := range ep.comp.Partitions() {
		pl := vertexPlacement{Master: p.Master(v)}
		for _, c := range p.Copies(v) {
			pl.Copies = append(pl.Copies, int(c))
			pl.Status = append(pl.Status, p.Status(int(c), v).String())
		}
		// Degrees and neighborhood come from the complete copy when one
		// exists (it holds every incident arc), else the master copy —
		// deterministic, and purely a function of the pinned epoch.
		at := p.CompleteFragment(v)
		if at < 0 {
			at = p.Master(v)
		}
		if adj := p.Fragment(at).Adjacency(v); adj != nil {
			pl.OutDegree = len(adj.Out)
			pl.InDegree = len(adj.In)
			pl.Out = make([]uint32, len(adj.Out))
			for i, u := range adj.Out {
				pl.Out[i] = uint32(u)
			}
		}
		resp.Partitions = append(resp.Partitions, pl)
	}
	writeJSON(w, http.StatusOK, resp)
}

type algoMetrics struct {
	Algo         string  `json:"algo"`
	Partition    int     `json:"partition"`
	FV           float64 `json:"fv"`
	FE           float64 `json:"fe"`
	LambdaV      float64 `json:"lambda_v"`
	LambdaE      float64 `json:"lambda_e"`
	ParallelCost float64 `json:"parallel_cost"`
	LambdaCost   float64 `json:"lambda_cost"`
}

type metricsResponse struct {
	Epoch       uint64         `json:"epoch"`
	EpochLSN    uint64         `json:"epoch_lsn"`
	Pinned      int64          `json:"pinned"`
	K           int            `json:"k"`
	N           int            `json:"n"`
	FC          float64        `json:"fc"`
	StorageArcs int            `json:"storage_arcs"`
	Algorithms  []algoMetrics  `json:"algorithms"`
	Store       storeMetrics   `json:"store"`
	Wal         store.WalStats `json:"wal"`
	Server      serverMetrics  `json:"server"`
	Epochs      epochMetrics   `json:"epochs"`
	Maintenance *MaintStatus   `json:"maintenance,omitempty"`
	Replication *ReplStatus    `json:"replication,omitempty"`
}

// epochMetrics is the epoch memory-accounting block: how many epochs
// are held live (current + superseded-but-pinned), how the last
// publish shared against its predecessor, and the approximate bytes it
// newly materialized versus the epoch's full resident size.
type epochMetrics struct {
	Retained        int   `json:"retained"`
	LastPublishNS   int64 `json:"last_publish_ns"`
	SharedFragments int   `json:"shared_fragments"`
	OwnedFragments  int   `json:"owned_fragments"`
	SharedIndexMaps int   `json:"shared_index_maps"`
	OwnedIndexMaps  int   `json:"owned_index_maps"`
	ApproxNewBytes  int64 `json:"approx_new_bytes"`
	ApproxBytes     int64 `json:"approx_epoch_bytes"`
}

type storeMetrics struct {
	LSN       uint64 `json:"lsn"`
	Committed int64  `json:"committed_mutations"`
	Failed    bool   `json:"write_path_failed"`
}

type serverMetrics struct {
	Inflight        int   `json:"inflight_runs"`
	Served          int64 `json:"runs_served"`
	Rejected        int64 `json:"runs_rejected"`
	RunFailures     int64 `json:"run_failures"`
	EpochSwaps      int64 `json:"epoch_swaps"`
	UpdatesApplied  int64 `json:"updates_applied"`
	ApplyRetries    int64 `json:"apply_retries"`
	MaintPromotions int64 `json:"maint_promotions"`
	MaintRollbacks  int64 `json:"maint_rollbacks"`
	ReplCommits     int64 `json:"repl_commits"`
	ReplSnapshots   int64 `json:"repl_snapshots"`
	ReadOnly        bool  `json:"read_only"`
	Draining        bool  `json:"draining"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ep := s.pin()
	defer ep.unpin()
	met, cost, lambda := ep.metrics()
	resp := metricsResponse{
		Epoch:       ep.seq,
		EpochLSN:    ep.lsn,
		Pinned:      ep.pins.Load(),
		K:           ep.comp.K(),
		N:           ep.comp.N(),
		FC:          ep.comp.FC(),
		StorageArcs: ep.comp.StorageArcs(),
		Store: storeMetrics{
			LSN:       s.lastLSN.Load(),
			Committed: s.committed.Load(),
			Failed:    s.storeFailed.Load(),
		},
		Server: serverMetrics{
			Inflight:        len(s.admit),
			Served:          s.served.Load(),
			Rejected:        s.rejected.Load(),
			RunFailures:     s.runFailures.Load(),
			EpochSwaps:      s.epochSwaps.Load(),
			UpdatesApplied:  s.updatesApplied.Load(),
			ApplyRetries:    s.applyRetries.Load(),
			MaintPromotions: s.maintPromotions.Load(),
			MaintRollbacks:  s.maintRollbacks.Load(),
			ReplCommits:     s.replCommits.Load(),
			ReplSnapshots:   s.replSnapshots.Load(),
			ReadOnly:        s.readOnly.Load(),
			Draining:        s.draining.Load(),
		},
		Wal:         s.st.WalStats(),
		Maintenance: s.maintStatusSnapshot(),
		Replication: s.replStatusSnapshot(),
	}
	retained, ems := s.epochMemSnapshot()
	resp.Epochs = epochMetrics{
		Retained:        retained,
		LastPublishNS:   ems.publishNS,
		SharedFragments: ems.sharedFragments,
		OwnedFragments:  ems.ownedFragments,
		SharedIndexMaps: ems.sharedIndexMaps,
		OwnedIndexMaps:  ems.ownedIndexMaps,
		ApproxNewBytes:  ems.newBytes,
		ApproxBytes:     ems.epochBytes,
	}
	for i, a := range costmodel.Algos() {
		j := i % ep.comp.K()
		resp.Algorithms = append(resp.Algorithms, algoMetrics{
			Algo: a.String(), Partition: j,
			FV: met[j].FV, FE: met[j].FE,
			LambdaV: met[j].LambdaV, LambdaE: met[j].LambdaE,
			ParallelCost: cost[i], LambdaCost: lambda[i],
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// updatesResponse acks a durable batch. Epoch is the snapshot the
// batch became visible in; 0 means the batch committed durably but a
// later batch in the same wave poisoned the store before publish.
// Replicated reports whether the configured replication ack (ReplWait)
// confirmed the batch durable on enough followers; false with Durable
// true is the ambiguous case — locally durable, replication
// unconfirmed — mirroring how an EIO mid-commit leaves durability
// ambiguous until recovery.
type updatesResponse struct {
	Epoch      uint64 `json:"epoch"`
	LSN        uint64 `json:"lsn"`
	Inserts    int    `json:"inserts"`
	Deletes    int    `json:"deletes"`
	Durable    bool   `json:"durable"`
	Visible    bool   `json:"visible"`
	Mutation   int    `json:"mutations"`
	Replicated bool   `json:"replicated,omitempty"`
}

// forwardUpdates proxies a follower's POST /updates to the leader, so
// clients can write to any member. The leader's status and body come
// back verbatim.
func (s *Server) forwardUpdates(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		strings.TrimRight(s.cfg.LeaderURL, "/")+"/updates", http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", "forwarding to leader: "+err.Error())
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{
			Error: "forwarding to leader: " + err.Error(), Class: "not_leader", Leader: s.cfg.LeaderURL})
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	if s.readOnly.Load() {
		if s.cfg.LeaderURL != "" {
			s.forwardUpdates(w, r)
			return
		}
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "follower is read-only; write to the leader", Class: "not_leader"})
		return
	}
	if s.storeFailed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "store_failed", "store write path failed; restart to recover")
		return
	}
	muts, err := store.ParseUpdates(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if len(muts) == 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "empty update stream")
		return
	}
	b := &updateBatch{muts: muts, reply: make(chan updateResult, 1)}
	select {
	case s.updates <- b:
	default:
		s.rejected.Add(1)
		writeErr(w, http.StatusTooManyRequests, "overloaded", "update queue full")
		return
	}
	// The apply loop always replies (the reply channel is buffered, so
	// even an abandoned request cannot block it); waiting here keeps
	// the ack strictly after the durable commit.
	res := <-b.reply
	if res.err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: res.err.Error(), Class: "store_failed"})
		return
	}
	// Replication ack: locally durable already; wait (bounded) for the
	// configured follower quorum. A timeout does not fail the request —
	// the write is durable here and will replicate — but the ack says
	// replicated=false so the client knows the guarantee is unconfirmed.
	replicated := false
	if s.cfg.ReplWait != nil {
		wctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReplWaitTimeout)
		replicated = s.cfg.ReplWait(wctx, res.lsn) == nil
		cancel()
	}
	writeJSON(w, http.StatusOK, updatesResponse{
		Epoch:      res.epoch,
		LSN:        res.lsn,
		Inserts:    res.inserts,
		Deletes:    res.deletes,
		Durable:    true,
		Visible:    res.epoch != 0,
		Mutation:   res.inserts + res.deletes,
		Replicated: replicated,
	})
}
