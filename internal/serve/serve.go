// Package serve is the partition-serving plane: a long-lived daemon
// face over a durable composite store (internal/store), built for the
// ROADMAP north star of serving heavy concurrent traffic.
//
// The concurrency design is single-writer / many-reader with epoch
// snapshots:
//
//   - The store's live composite is the durable ground truth. It is
//     mutated only by the background apply loop (one goroutine), never
//     served directly — the store is not safe for concurrent use.
//   - Each published epoch is a copy-on-write snapshot of the
//     composite (composite.CloneCOW): every partition is pre-compiled
//     to its CSR form and fragments the last wave did not touch are
//     shared — as the same immutable compiled value — with the
//     previous epoch, so a cut costs O(touched fragments + touched
//     index vertices), not O(graph). The snapshot is installed behind
//     an atomic.Pointer. Readers pin exactly one epoch per request
//     (pin/unpin is a refcount used for drain accounting and metrics;
//     reclamation is the garbage collector's job), so every response
//     is internally consistent with one snapshot — snapshot isolation
//     by construction, with zero locks on the read path.
//   - POST /updates batches flow through a bounded queue to the apply
//     loop, which applies them to the store (durable on WAL commit),
//     then clones, compiles and atomically publishes the next epoch.
//     Writers never block readers: readers keep serving the previous
//     epoch until the swap.
//
// Requests are admission-controlled (a semaphore bounds in-flight
// /run work; the update queue bounds writer backlog) and /run sessions
// come from per-algorithm pools of engine clusters built on
// internal/pool. Drain stops the HTTP listener, lets in-flight
// sessions complete (cancelling them after the grace deadline), drains
// the update queue, flushes the WAL and closes the store.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/fault"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/pool"
	"adp/internal/store"
)

// Config tunes the server. The zero value picks serving defaults.
type Config struct {
	// SessionsPerAlgo bounds concurrent engine runs per algorithm (the
	// size of each per-algorithm session pool). Default 2.
	SessionsPerAlgo int
	// MaxInflight bounds admitted concurrent /run requests (including
	// those queueing for a session). Excess requests get 429. Default 64.
	MaxInflight int
	// UpdateQueue bounds pending update batches; a full queue rejects
	// POST /updates with 429. Default 16.
	UpdateQueue int
	// MaxBatch bounds how many queued update batches the apply loop
	// folds into a single epoch publish. Default 8.
	MaxBatch int
	// DefaultTimeout is the per-request /run deadline when the request
	// does not carry timeout_ms. Default 30s.
	DefaultTimeout time.Duration
	// MaxSupersteps, when > 0, overrides every run's superstep budget.
	MaxSupersteps int
	// ApplyRetries bounds the in-place retry ladder for transient
	// commit-time fsync failures: the apply loop re-issues the failed
	// fsync up to this many times (exponential backoff from
	// ApplyRetryBase) before poisoning the write path. Non-fsync write
	// failures (torn writes, crashes) poison immediately. Default 3;
	// negative disables retries.
	ApplyRetries int
	// ApplyRetryBase is the first backoff step of the retry ladder;
	// each attempt doubles it. Default 2ms.
	ApplyRetryBase time.Duration
	// Pool is the engine worker pool sessions run on; nil uses the
	// process-wide shared pool.
	Pool *pool.Pool
	// RunInjector, when non-nil, is cloned into every /run session —
	// the chaos harness threads deterministic engine faults through a
	// live server with it.
	RunInjector *fault.Injector
	// FullClonePublish forces every epoch cut through the full deep
	// Clone()+Compile() path instead of the structural-sharing CloneCOW
	// path. Benchmarks and oracle tests use it to measure the O(graph)
	// baseline the COW publish is gated against; production leaves it
	// off.
	FullClonePublish bool
	// ReadOnly starts the server in follower mode: POST /updates is
	// rejected (or forwarded, see LeaderURL) and the composite advances
	// only through the replication surface (ReplApply and friends).
	// PromoteToLeader clears it at failover.
	ReadOnly bool
	// LeaderURL, when set on a follower, forwards POST /updates to the
	// leader instead of rejecting them with the not_leader error class.
	LeaderURL string
	// ReplWait, when non-nil on a leader, is consulted after each durable
	// update batch: it blocks until the batch's LSN is durably replicated
	// (replica.Leader.WaitDurable) or the context ends. A wait failure
	// does NOT fail the request — the batch is locally durable — but the
	// ack carries replicated=false so the client knows the replication
	// guarantee is unconfirmed.
	ReplWait func(ctx context.Context, lsn uint64) error
	// ReplWaitTimeout bounds each ReplWait call. Default 2s.
	ReplWaitTimeout time.Duration
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.SessionsPerAlgo <= 0 {
		c.SessionsPerAlgo = 2
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.UpdateQueue <= 0 {
		c.UpdateQueue = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.ApplyRetries == 0 {
		c.ApplyRetries = 3
	}
	if c.ApplyRetries < 0 {
		c.ApplyRetries = 0
	}
	if c.ApplyRetryBase <= 0 {
		c.ApplyRetryBase = 2 * time.Millisecond
	}
	if c.ReplWaitTimeout <= 0 {
		c.ReplWaitTimeout = 2 * time.Second
	}
}

// epoch is one published snapshot: an immutable compiled composite
// plus its session pools. seq starts at 1 and increments per publish.
type epoch struct {
	seq  uint64
	lsn  uint64 // store LSN when this epoch was cut
	comp *composite.Composite
	// pins counts readers currently inside a request against this
	// epoch (diagnostics and drain accounting; epochs are reclaimed by
	// the garbage collector, not by refcount).
	pins atomic.Int64
	// pools[i] serves costmodel.Algos()[i]; sessions are built lazily.
	pools []*sessionPool

	metOnce sync.Once
	met     []partition.Metrics // per bundled partition
	cost    []float64           // ParallelCost per algorithm
	lambda  []float64           // LambdaCost per algorithm
}

// Server is the serving daemon: one durable store, one hot epoch, and
// the HTTP face over them.
type Server struct {
	cfg Config
	g   *graph.Graph
	st  *store.Store

	cur     atomic.Pointer[epoch]
	admit   chan struct{}
	updates chan *updateBatch
	// swaps carries maintenance promotion/rollback requests into the
	// apply loop. Unbuffered: senders block until the single writer
	// accepts (or abort on baseCtx when a drain races them).
	swaps chan *swapRequest
	// repl carries replication requests (frame batches, snapshot
	// installs, promotion) into the apply loop, same discipline as
	// swaps: unbuffered, abort on baseCtx.
	repl chan *replReq

	baseCtx context.Context
	cancel  context.CancelFunc
	httpSrv *http.Server
	applyWG sync.WaitGroup

	draining    atomic.Bool
	storeFailed atomic.Bool
	readOnly    atomic.Bool

	// Maintenance delta capture (guarded by capMu; written by the
	// apply loop, armed/drained by the maintenance loop).
	capMu       sync.Mutex
	capOn       bool
	capWaves    []capturedWave
	capCount    int
	capOverflow bool

	// Observation window for the drift detector plus the /run latency
	// ring for the regression watchdog.
	obsMu      sync.Mutex
	obsCounts  []int64
	obsWork    [][]float64
	latSamples []LatencySample
	latNext    int

	// Maintenance /metrics provider (registered by internal/maintain).
	maintMu     sync.Mutex
	maintStatus func() MaintStatus

	// Replication /metrics provider (registered by the process wiring —
	// cmd/adserve or a test harness — never by this package, which must
	// not import internal/replica).
	replMu         sync.Mutex
	replStatusFunc func() ReplStatus

	// Epoch memory accounting (guarded by epochMu): superseded epochs
	// still pinned by in-flight readers, plus the last publish's
	// sharing breakdown. Epochs are reclaimed by the garbage collector;
	// retired only tracks the ones readers are still holding open.
	epochMu     sync.Mutex
	retired     []*epoch
	lastPublish epochMemStats

	// Counters mirrored out of the apply loop so /metrics never
	// touches the store.
	served          atomic.Int64
	rejected        atomic.Int64
	runFailures     atomic.Int64
	epochSwaps      atomic.Int64
	updatesApplied  atomic.Int64
	applyRetries    atomic.Int64
	maintPromotions atomic.Int64
	maintRollbacks  atomic.Int64
	replCommits     atomic.Int64
	replSnapshots   atomic.Int64
	lastLSN         atomic.Uint64
	committed       atomic.Int64
}

// New wraps an opened (or freshly created) store. The server owns the
// store from here on: the apply loop is its only writer and Drain
// closes it. The first epoch is cut immediately.
func New(st *store.Store, cfg Config) (*Server, error) {
	cfg.fill()
	comp := st.Composite()
	if comp == nil || comp.K() == 0 {
		return nil, fmt.Errorf("serve: store holds no composite")
	}
	s := &Server{
		cfg:     cfg,
		g:       comp.Partition(0).Graph(),
		st:      st,
		admit:   make(chan struct{}, cfg.MaxInflight),
		updates: make(chan *updateBatch, cfg.UpdateQueue),
		swaps:   make(chan *swapRequest),
		repl:    make(chan *replReq),
	}
	s.readOnly.Store(cfg.ReadOnly)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.publish(comp)
	s.lastLSN.Store(st.LSN())
	s.committed.Store(st.Committed())
	s.applyWG.Add(1)
	go s.applyLoop()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) pool() *pool.Pool {
	if s.cfg.Pool != nil {
		return s.cfg.Pool
	}
	return pool.Default()
}

// newEpoch compiles the cloned composite and builds its session pools.
func (s *Server) newEpoch(seq uint64, comp *composite.Composite, lsn uint64) *epoch {
	for _, p := range comp.Partitions() {
		p.Compile()
	}
	e := &epoch{seq: seq, lsn: lsn, comp: comp}
	algos := costmodel.Algos()
	e.pools = make([]*sessionPool, len(algos))
	for i := range algos {
		part := comp.Partition(i % comp.K())
		e.pools[i] = newSessionPool(part, s.pool(), s.cfg.SessionsPerAlgo)
	}
	return e
}

// epochMemStats is the sharing breakdown of one publish, surfaced by
// GET /metrics so COW sharing is observable, not assumed.
type epochMemStats struct {
	publishNS       int64
	sharedFragments int
	ownedFragments  int
	sharedIndexMaps int
	ownedIndexMaps  int
	// newBytes approximates the memory the publish newly materialized
	// (owned fragments + owned index maps); epochBytes approximates the
	// epoch's full resident size as if nothing were shared.
	newBytes   int64
	epochBytes int64
}

// cutComposite cuts a publishable snapshot of comp: the structural-
// sharing CloneCOW by default, or the O(graph) deep Clone when
// FullClonePublish is set (bench baselines and oracle tests).
func (s *Server) cutComposite(comp *composite.Composite) *composite.Composite {
	if s.cfg.FullClonePublish {
		return comp.Clone()
	}
	return comp.CloneCOW()
}

// publish cuts a snapshot of comp, installs it as the next epoch, and
// retires the previous one into the pinned-epoch ledger. Called only
// by New and the apply loop (the single writer), so the cut walks the
// composite while nothing mutates it.
func (s *Server) publish(comp *composite.Composite) *epoch {
	old := s.cur.Load()
	seq := uint64(1)
	if old != nil {
		seq = old.seq + 1
	}
	start := time.Now()
	// The epoch advertises the durable watermark, not the last appended
	// LSN: bounded-staleness reads (min_lsn) promise "this epoch covers
	// every commit up to lsn", which only the committed prefix delivers.
	ne := s.newEpoch(seq, s.cutComposite(comp), s.st.CommittedLSN())
	elapsed := time.Since(start)
	s.cur.Store(ne)
	s.recordPublish(old, ne, elapsed)
	return ne
}

// recordPublish updates the epoch memory ledger after a publish.
func (s *Server) recordPublish(old, ne *epoch, d time.Duration) {
	var prev *composite.Composite
	if old != nil {
		prev = old.comp
	}
	delta := ne.comp.ShareStats(prev)
	full := ne.comp.ShareStats(nil)
	st := epochMemStats{
		publishNS:       d.Nanoseconds(),
		sharedFragments: delta.SharedFragments,
		ownedFragments:  delta.OwnedFragments,
		sharedIndexMaps: delta.SharedIndexMaps,
		ownedIndexMaps:  delta.OwnedIndexMaps,
		newBytes:        delta.OwnedBytes,
		epochBytes:      full.OwnedBytes,
	}
	s.epochMu.Lock()
	if old != nil {
		s.retired = append(s.retired, old)
	}
	s.pruneRetiredLocked()
	s.lastPublish = st
	s.epochMu.Unlock()
}

// pruneRetiredLocked drops retired epochs no reader still pins, so the
// ledger (and /metrics epochs_retained) tracks only epochs actually
// held open. Caller holds epochMu.
func (s *Server) pruneRetiredLocked() {
	kept := s.retired[:0]
	for _, e := range s.retired {
		if e.pins.Load() > 0 {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(s.retired); i++ {
		s.retired[i] = nil // release for the garbage collector
	}
	s.retired = kept
}

// epochMemSnapshot returns the count of epochs currently retained
// (current + superseded-but-pinned) and the last publish's stats.
func (s *Server) epochMemSnapshot() (retained int, st epochMemStats) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.pruneRetiredLocked()
	return len(s.retired) + 1, s.lastPublish
}

// pin acquires the current epoch for one request. The retry keeps the
// pin count attached to the epoch the reader actually uses even when a
// publish races the acquisition.
func (s *Server) pin() *epoch {
	for {
		e := s.cur.Load()
		e.pins.Add(1)
		if s.cur.Load() == e {
			return e
		}
		e.pins.Add(-1)
	}
}

func (e *epoch) unpin() { e.pins.Add(-1) }

// algoIndex returns a's position in costmodel.Algos(); the epoch's
// session pool for that index runs over partition index%K — 1:1 when
// the store bundles the full five-algorithm batch, folded modulo K
// for smaller composites.
func algoIndex(a costmodel.Algo) int {
	for i, x := range costmodel.Algos() {
		if x == a {
			return i
		}
	}
	return 0
}

// metrics computes (once per epoch) the structural metrics and
// reference-model costs served by GET /metrics. Safe for concurrent
// callers; the epoch is immutable.
func (e *epoch) metrics() ([]partition.Metrics, []float64, []float64) {
	e.metOnce.Do(func() {
		e.met = make([]partition.Metrics, e.comp.K())
		for j := 0; j < e.comp.K(); j++ {
			e.met[j] = e.comp.Partition(j).ComputeMetrics()
		}
		algos := costmodel.Algos()
		e.cost = make([]float64, len(algos))
		e.lambda = make([]float64, len(algos))
		for i, a := range algos {
			costs := costmodel.Evaluate(e.comp.Partition(i%e.comp.K()), costmodel.Reference(a))
			e.cost[i] = costmodel.ParallelCost(costs)
			e.lambda[i] = costmodel.LambdaCost(costs)
		}
	})
	return e.met, e.cost, e.lambda
}

// updateBatch is one POST /updates body on its way to the apply loop.
type updateBatch struct {
	muts  []store.Mutation
	reply chan updateResult
}

type updateResult struct {
	err              error
	epoch            uint64 // epoch the batch became visible in (0: durable, not published)
	lsn              uint64
	inserts, deletes int
}

// applyLoop is the single writer: it drains the update queue, folds up
// to MaxBatch queued batches into one wave, applies them to the store
// (each batch is one durable WAL commit), and publishes a fresh epoch
// covering the wave. Maintenance swap requests interleave with waves
// on the same goroutine, so promotions serialize with the update
// stream by construction. A non-retryable store write failure poisons
// the write path — the last good epoch keeps serving reads, updates
// fail fast until the process restarts and recovery truncates to the
// committed prefix.
func (s *Server) applyLoop() {
	defer s.applyWG.Done()
	for {
		select {
		case b, ok := <-s.updates:
			if !ok {
				return
			}
			wave := []*updateBatch{b}
		fold:
			for len(wave) < s.cfg.MaxBatch {
				select {
				case nb, ok := <-s.updates:
					if !ok {
						break fold
					}
					wave = append(wave, nb)
				default:
					break fold
				}
			}
			s.applyWave(wave)
		case sr := <-s.swaps:
			s.applySwap(sr)
		case rr := <-s.repl:
			s.applyRepl(rr)
		}
	}
}

// applyBatch runs one batch through the store chunk by chunk (a chunk
// is the run of mutations up to a commit marker, i.e. one durable WAL
// commit). A transient fsync failure is retried in place up to
// cfg.ApplyRetries times with exponential backoff: the store keeps the
// interrupted commit's bytes pending, so a successful RetrySync
// completes that exact commit and the chunk — nothing is reapplied,
// nothing is lost. Only an exhausted ladder or a non-retryable failure
// (torn write, crash, semantic error) leaves the store poisoned.
func (s *Server) applyBatch(muts []store.Mutation) (inserts, deletes int, err error) {
	start := 0
	for start <= len(muts) {
		end := len(muts)
		for i := start; i < len(muts); i++ {
			if muts[i].Kind == store.MutCommit {
				end = i + 1
				break
			}
		}
		if start == end {
			break
		}
		chunk := muts[start:end]
		ins, del, aerr := s.st.Apply(chunk)
		if aerr != nil {
			for attempt := 0; attempt < s.cfg.ApplyRetries && s.st.CanRetrySync(); attempt++ {
				time.Sleep(s.cfg.ApplyRetryBase << attempt)
				s.applyRetries.Add(1)
				if rerr := s.st.RetrySync(); rerr == nil {
					// The interrupted commit is durable now; the chunk's
					// mutations were all applied before the fsync, so the
					// chunk is complete.
					aerr = nil
					break
				}
			}
		}
		inserts += ins
		deletes += del
		if aerr != nil {
			return inserts, deletes, aerr
		}
		start = end
	}
	return inserts, deletes, nil
}

func (s *Server) applyWave(wave []*updateBatch) {
	results := make([]updateResult, len(wave))
	failedAt := -1
	for i, b := range wave {
		if failedAt >= 0 {
			// A poisoned store fails every later batch fast; skip the
			// Apply call so the in-memory composite is not touched.
			results[i] = updateResult{err: fmt.Errorf("serve: store write path failed; restart to recover")}
			continue
		}
		ins, del, err := s.applyBatch(b.muts)
		results[i] = updateResult{err: err, inserts: ins, deletes: del}
		if err != nil {
			failedAt = i
			s.storeFailed.Store(true)
			s.logf("serve: update batch failed, store poisoned: %v", err)
		} else {
			s.updatesApplied.Add(int64(ins + del))
		}
	}
	s.lastLSN.Store(s.st.LSN())
	s.committed.Store(s.st.Committed())

	if failedAt < 0 {
		// Every batch committed: cut and publish the next epoch. The
		// COW cut shares every fragment the wave left untouched with
		// the previous epoch, so its cost is O(touched fragments +
		// touched index vertices), not O(graph). Readers keep the old
		// epoch until the atomic swap.
		ne := s.publish(s.st.Composite())
		s.epochSwaps.Add(1)
		s.captureWave(ne.seq, wave)
		for i := range results {
			results[i].epoch = ne.seq
			results[i].lsn = ne.lsn
		}
	}
	// A failed wave publishes nothing: the batch that poisoned the
	// store may have half-applied to the in-memory composite, so the
	// only trustworthy states are the last published epoch (served
	// until restart) and the committed WAL prefix (recovered on
	// reopen). Batches before the failure are durable but stay
	// invisible; their result says so via epoch == 0.
	for i, b := range wave {
		b.reply <- results[i]
	}
}

// Start serves HTTP on l until Drain. It returns immediately.
func (s *Server) Start(l net.Listener) {
	s.httpSrv = &http.Server{
		Handler: s.Handler(),
		// Request contexts derive from baseCtx so Drain can cancel
		// every in-flight engine run after the grace period.
		BaseContext: func(net.Listener) context.Context { return s.baseCtx },
	}
	go func() {
		if err := s.httpSrv.Serve(l); err != nil && err != http.ErrServerClosed {
			s.logf("serve: http: %v", err)
		}
	}()
	s.logf("serve: listening on %s", l.Addr())
}

// Drain gracefully stops the server: stop accepting, wait for
// in-flight requests up to ctx's deadline, then cancel their runs
// (each returns a typed error within one superstep barrier), drain
// the update queue, flush the WAL and close the store. After Drain
// the server is unusable. Returns the first error; nil means every
// session completed or cancelled cleanly and the log is flushed.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	var shutErr error
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			// Grace expired: cancel in-flight runs and wait again —
			// engine runs observe cancellation at the next barrier, so
			// this second wait is bounded.
			s.cancel()
			shutErr = s.httpSrv.Shutdown(context.Background())
		}
	}
	s.cancel()
	// No handler is in flight now, so nothing can send on updates.
	close(s.updates)
	s.applyWG.Wait()
	closeErr := s.st.Close()
	s.logf("serve: drained (epoch=%d lsn=%d committed=%d)", s.cur.Load().seq, s.lastLSN.Load(), s.committed.Load())
	if shutErr != nil {
		return shutErr
	}
	return closeErr
}

// Epoch returns the sequence number of the currently published epoch.
func (s *Server) Epoch() uint64 { return s.cur.Load().seq }

// Graph returns the immutable base graph the store serves over.
func (s *Server) Graph() *graph.Graph { return s.g }
