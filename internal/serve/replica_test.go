package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/store"
)

// leaderStore builds a bare leader-side store over the standard serve
// fixture and applies n committed single-edge delete batches, so the
// WAL has real frames to ship. Returns the store and the batch count.
func leaderStore(t testing.TB, dir string, n int) (*graph.Graph, *store.Store) {
	t.Helper()
	g := serveGraph()
	st, err := store.Create(dir, serveComposite(t, g), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	applyLeaderBatches(t, g, st, n)
	return g, st
}

// applyLeaderBatches commits n one-edge toggle batches against st.
func applyLeaderBatches(t testing.TB, g *graph.Graph, st *store.Store, n int) {
	t.Helper()
	type edge struct{ u, v graph.VertexID }
	var safe []edge
	g.Edges(func(u, v graph.VertexID) bool {
		if u < v && g.OutDegree(u) > 1 && g.OutDegree(v) > 1 {
			safe = append(safe, edge{u, v})
		}
		return len(safe) < 64
	})
	for i := 0; i < n; i++ {
		e := safe[i%len(safe)]
		op := "-"
		if i%2 == 1 {
			op = "+" // re-insert what the previous batch deleted
		}
		muts, err := store.ParseUpdates(strings.NewReader(fmt.Sprintf("%s %d %d\n", op, e.u, e.v)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Apply(append(muts, store.Mutation{Kind: store.MutCommit})); err != nil {
			t.Fatal(err)
		}
	}
}

// startFollower clones a follower store from st's newest snapshot and
// serves it read-only.
func startFollower(t testing.TB, g *graph.Graph, st *store.Store, cfg Config) (*testServer, uint64) {
	t.Helper()
	lsn, snap, err := st.NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/follower"
	fst, err := store.CreateReplica(dir, g, snap, lsn, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.ReadOnly = true
	return startServerOn(t, dir, g, nil, cfg, store.Options{}), lsn
}

// TestFollowerServePlane drives the whole follower lifecycle through
// the HTTP surface: read-only rejection, replicated catch-up publishing
// epochs, bounded-staleness reads on /vertex and /run, replication
// metrics, and promotion to a writable leader.
func TestFollowerServePlane(t *testing.T) {
	g, st := leaderStore(t, t.TempDir()+"/leader", 6)
	ts, snapLSN := startFollower(t, g, st, Config{})

	if !ts.ReadOnly() {
		t.Fatal("follower does not report read-only")
	}
	if ts.AppliedLSN() != snapLSN {
		t.Fatalf("bootstrap applied %d, snapshot at %d", ts.AppliedLSN(), snapLSN)
	}

	// Writes bounce with the typed not-leader class (no LeaderURL set).
	if status, _, eb := ts.postUpdates(t, "+ 1 2\n"); status != http.StatusConflict || eb.Class != "not_leader" {
		t.Fatalf("follower write: status %d class %q, want 409 not_leader", status, eb.Class)
	}

	// A replication status source surfaces in /metrics.
	ts.SetReplStatusFunc(func() ReplStatus {
		return ReplStatus{Role: "follower", AppliedLSN: ts.AppliedLSN()}
	})
	m := ts.getMetrics(t)
	if !m.Server.ReadOnly {
		t.Fatal("metrics do not report read-only")
	}
	if m.Wal.CommittedLSN != snapLSN {
		t.Fatalf("metrics wal lsn %d, want %d", m.Wal.CommittedLSN, snapLSN)
	}
	if m.Replication == nil || m.Replication.Role != "follower" {
		t.Fatalf("metrics replication block %+v", m.Replication)
	}

	// Catch up through ReplApply: the leader's committed tail lands,
	// publishes an epoch, and advances the staleness bound.
	frames, leaderLSN, err := st.TailFrom(snapLSN+1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	applied, commits, err := ts.ReplApply(frames)
	if err != nil {
		t.Fatal(err)
	}
	if applied != leaderLSN || commits < 1 {
		t.Fatalf("ReplApply landed at %d (%d commits), leader at %d", applied, commits, leaderLSN)
	}
	m = ts.getMetrics(t)
	if m.EpochLSN != leaderLSN {
		t.Fatalf("epoch lsn %d after catch-up, want %d", m.EpochLSN, leaderLSN)
	}
	if m.Server.ReplCommits < 1 {
		t.Fatal("repl_commits not counted")
	}

	// Bounded staleness: a satisfied floor serves, an unsatisfied one is
	// a typed 412 naming both sides of the gap.
	var vr vertexResponse
	if status, eb := doJSON(t, "GET", fmt.Sprintf("%s/vertex/1?min_lsn=%d", ts.URL, leaderLSN), nil, &vr); status != http.StatusOK {
		t.Fatalf("fresh-enough vertex read: status %d (%v)", status, eb)
	}
	if vr.EpochLSN != leaderLSN {
		t.Fatalf("vertex epoch_lsn %d, want %d", vr.EpochLSN, leaderLSN)
	}
	status, eb := doJSON(t, "GET", fmt.Sprintf("%s/vertex/1?min_lsn=%d", ts.URL, leaderLSN+5), nil, nil)
	if status != http.StatusPreconditionFailed || eb.Class != "stale" {
		t.Fatalf("stale vertex read: status %d class %q", status, eb.Class)
	}
	if eb.MinLSN != leaderLSN+5 || eb.AppliedLSN != leaderLSN {
		t.Fatalf("stale error carries (min %d, applied %d), want (%d, %d)", eb.MinLSN, eb.AppliedLSN, leaderLSN+5, leaderLSN)
	}
	if status, eb := doJSON(t, "GET", ts.URL+"/vertex/1?min_lsn=bogus", nil, nil); status != http.StatusBadRequest || eb.Class != "bad_request" {
		t.Fatalf("bogus min_lsn: status %d class %q", status, eb.Class)
	}
	req := runReqFor(costmodel.WCC)
	req.MinLSN = leaderLSN
	if status, _, eb := ts.postRun(t, req); status != http.StatusOK {
		t.Fatalf("fresh-enough run: status %d (%v)", status, eb)
	}
	req.MinLSN = leaderLSN + 1
	if status, _, eb := ts.postRun(t, req); status != http.StatusPreconditionFailed || eb.Class != "stale" {
		t.Fatalf("stale run: status %d class %q", status, eb.Class)
	}

	// Promotion flips the node writable.
	if err := ts.PromoteToLeader(); err != nil {
		t.Fatal(err)
	}
	if ts.ReadOnly() {
		t.Fatal("promoted node still read-only")
	}
	if err := ts.PromoteToLeader(); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("second promote returned %v, want ErrNotFollower", err)
	}
	if _, _, err := ts.ReplApply(frames); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("ReplApply on a leader returned %v, want ErrNotFollower", err)
	}
	if status, ur, eb := ts.postUpdates(t, "- 1 2\n+ 1 2\n"); status != http.StatusOK || !ur.Durable {
		t.Fatalf("post-promotion write: status %d durable %v (%v)", status, ur.Durable, eb)
	}
	if m := ts.getMetrics(t); m.Server.ReadOnly {
		t.Fatal("metrics still read-only after promotion")
	}

	// Mirror the promoted node's write onto the old leader: starting
	// from identical state, the same stream routes identically, so the
	// drained follower directory must match the old leader exactly.
	muts, err := store.ParseUpdates(strings.NewReader("- 1 2\n+ 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Apply(append(muts, store.Mutation{Kind: store.MutCommit})); err != nil {
		t.Fatal(err)
	}
	if err := ts.drain(); err != nil {
		t.Fatal(err)
	}
	re, info, err := store.Open(ts.Dir, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.Damage != nil {
		t.Fatalf("reopen found damage: %v", info)
	}
	if err := re.Composite().EqualState(st.Composite()); err != nil {
		t.Fatalf("promoted state diverged from leader prefix: %v", err)
	}
}

// TestFollowerSnapshotInstall covers the re-base path through the
// serving daemon: installing a leader snapshot publishes a fresh epoch
// at the snapshot's LSN.
func TestFollowerSnapshotInstall(t *testing.T) {
	g, st := leaderStore(t, t.TempDir()+"/leader", 4)
	ts, snapLSN := startFollower(t, g, st, Config{})

	// Leader moves on and snapshots past the follower.
	applyLeaderBatches(t, g, st, 4)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	lsn, snap, err := st.NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= snapLSN {
		t.Fatalf("leader snapshot did not advance (%d <= %d)", lsn, snapLSN)
	}
	applied, err := ts.ReplInstallSnapshot(snap, lsn)
	if err != nil {
		t.Fatal(err)
	}
	if applied != lsn {
		t.Fatalf("snapshot install landed at %d, want %d", applied, lsn)
	}
	m := ts.getMetrics(t)
	if m.EpochLSN != lsn {
		t.Fatalf("epoch lsn %d after install, want %d", m.EpochLSN, lsn)
	}
	if m.Server.ReplSnapshots != 1 {
		t.Fatalf("repl_snapshots %d, want 1", m.Server.ReplSnapshots)
	}
}

// TestFollowerForwarding proves a follower with a leader URL proxies
// writes instead of bouncing them, and degrades to a typed 502 when
// the leader is unreachable.
func TestFollowerForwarding(t *testing.T) {
	lead := newServer(t, Config{})
	ts, _ := startFollower(t, lead.g, lead.Server.st, Config{LeaderURL: lead.URL})

	before := lead.getMetrics(t).Server.UpdatesApplied
	status, ur, eb := ts.postUpdates(t, "- 1 2\n+ 1 2\n")
	if status != http.StatusOK || !ur.Durable {
		t.Fatalf("forwarded write: status %d durable %v (%v)", status, ur.Durable, eb)
	}
	if after := lead.getMetrics(t).Server.UpdatesApplied; after != before+2 {
		t.Fatalf("leader applied %d updates, want %d", after, before+2)
	}

	// Unreachable leader: the forward degrades to a typed 502.
	dead, _ := startFollower(t, lead.g, lead.Server.st, Config{LeaderURL: "http://127.0.0.1:1"})
	if status, _, eb := dead.postUpdates(t, "+ 1 2\n"); status != http.StatusBadGateway || eb.Class != "not_leader" {
		t.Fatalf("forward to dead leader: status %d class %q, want 502 not_leader", status, eb.Class)
	}
}

// TestReplWaitAck pins the replication-ack contract on the leader's
// write path: ReplWait success marks the ack replicated, failure keeps
// the 200 (the write is locally durable) with replicated=false.
func TestReplWaitAck(t *testing.T) {
	var waitErr error
	var waitLSN uint64
	ts := newServer(t, Config{
		ReplWait: func(ctx context.Context, lsn uint64) error {
			waitLSN = lsn
			return waitErr
		},
	})

	status, ur, eb := ts.postUpdates(t, "- 1 2\n")
	if status != http.StatusOK || !ur.Durable || !ur.Replicated {
		t.Fatalf("acked write: status %d durable %v replicated %v (%v)", status, ur.Durable, ur.Replicated, eb)
	}
	if waitLSN == 0 {
		t.Fatal("ReplWait was not handed the batch LSN")
	}

	waitErr = errors.New("quorum timeout")
	status, ur, eb = ts.postUpdates(t, "+ 1 2\n")
	if status != http.StatusOK || !ur.Durable {
		t.Fatalf("unconfirmed write: status %d durable %v (%v)", status, ur.Durable, eb)
	}
	if ur.Replicated {
		t.Fatal("failed ReplWait still reported replicated=true")
	}
}
