package serve

import (
	"errors"
	"fmt"
	"time"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/store"
)

// The maintenance-facing surface of the server. The background
// re-refinement loop (internal/maintain) is a *client* of the serving
// plane: it cuts a base composite from the live epoch, refines a copy
// off the serving path, and asks the apply loop — the single writer —
// to promote the result. Everything that must be serialized with the
// update stream (delta capture, replay, the durable swap, the epoch
// publish) happens inside the apply loop, so readers and writers never
// see a half-promoted state.

// maxCapturedMutations bounds the maintenance delta buffer. A cycle
// whose capture overflows cannot be promoted or rolled back safely
// (the candidate could not be caught up), so the swap is refused and
// the loop starts over from a fresh base.
const maxCapturedMutations = 1 << 14

// capturedWave is the mutation delta of one published epoch, tagged
// with the epoch sequence it became visible in.
type capturedWave struct {
	seq  uint64
	muts []store.Mutation
}

// LatencySample is one served /run observation, tagged with the epoch
// that served it — the regression watchdog splits samples at the
// promotion boundary.
type LatencySample struct {
	Epoch uint64
	Wall  time.Duration
}

// MaintStatus is the maintenance plane's /metrics block. The serve
// package defines it (and serves it) so the HTTP face has no import of
// internal/maintain; the loop registers a provider via
// SetMaintStatusFunc.
type MaintStatus struct {
	Enabled            bool    `json:"enabled"`
	State              string  `json:"state"`
	Cycles             int64   `json:"cycles"`
	Promoted           int64   `json:"promoted"`
	RolledBack         int64   `json:"rolled_back"`
	ValidationFailures int64   `json:"validation_failures"`
	RefineFailures     int64   `json:"refine_failures"`
	RefinePanics       int64   `json:"refine_panics"`
	SwapFailures       int64   `json:"swap_failures"`
	LastDrift          float64 `json:"last_drift"`
	Threshold          float64 `json:"drift_threshold"`
	LastError          string  `json:"last_error,omitempty"`
}

// SetMaintStatusFunc registers the provider behind the /metrics
// "maintenance" block. Pass nil to unregister.
func (s *Server) SetMaintStatusFunc(f func() MaintStatus) {
	s.maintMu.Lock()
	s.maintStatus = f
	s.maintMu.Unlock()
}

func (s *Server) maintStatusSnapshot() *MaintStatus {
	s.maintMu.Lock()
	f := s.maintStatus
	s.maintMu.Unlock()
	if f == nil {
		return nil
	}
	ms := f()
	return &ms
}

// ErrMaintenanceActive rejects overlapping maintenance cycles.
var ErrMaintenanceActive = errors.New("serve: maintenance cycle already active")

// BeginMaintenance arms delta capture and cuts the cycle's base: a
// private clone of the live epoch's composite plus that epoch's
// sequence number. Every update wave published from now on is recorded
// so a candidate refined from the base can be caught up at promotion
// time. Exactly one cycle may be active; EndMaintenance releases it.
func (s *Server) BeginMaintenance() (*composite.Composite, uint64, error) {
	if s.draining.Load() {
		return nil, 0, fmt.Errorf("serve: draining; maintenance refused")
	}
	s.capMu.Lock()
	if s.capOn {
		s.capMu.Unlock()
		return nil, 0, ErrMaintenanceActive
	}
	// Arm BEFORE reading the current epoch: a publish racing this call
	// is then captured with seq <= baseSeq and filtered at replay — a
	// publish after the read is captured and replayed. No gap.
	s.capOn = true
	s.capWaves = nil
	s.capCount = 0
	s.capOverflow = false
	s.capMu.Unlock()
	e := s.cur.Load()
	// The base is cut through the same COW path as epoch publishes: it
	// shares the epoch's immutable compiled fragments, and the refiner
	// thawing a fragment (via exported mutators) copies before writing,
	// so the live epoch is never perturbed.
	return s.cutComposite(e.comp), e.seq, nil
}

// EndMaintenance disarms delta capture and drops the buffer.
func (s *Server) EndMaintenance() {
	s.capMu.Lock()
	s.capOn = false
	s.capWaves = nil
	s.capCount = 0
	s.capOverflow = false
	s.capMu.Unlock()
}

// captureWave records one published wave's mutations (apply loop only).
func (s *Server) captureWave(seq uint64, wave []*updateBatch) {
	s.capMu.Lock()
	defer s.capMu.Unlock()
	if !s.capOn || s.capOverflow {
		return
	}
	n := 0
	for _, b := range wave {
		n += len(b.muts)
	}
	if s.capCount+n > maxCapturedMutations {
		s.capOverflow = true
		return
	}
	var muts []store.Mutation
	for _, b := range wave {
		muts = append(muts, b.muts...)
	}
	s.capWaves = append(s.capWaves, capturedWave{seq: seq, muts: muts})
	s.capCount += n
}

// captureDelta folds every captured wave newer than baseSeq into one
// replayable mutation list (apply loop only).
func (s *Server) captureDelta(baseSeq uint64) (muts []store.Mutation, overflow bool) {
	s.capMu.Lock()
	defer s.capMu.Unlock()
	if s.capOverflow {
		return nil, true
	}
	for _, w := range s.capWaves {
		if w.seq > baseSeq {
			muts = append(muts, w.muts...)
		}
	}
	return muts, false
}

// replayOnto applies a captured delta to a candidate composite.
// Inserts without an explicit destination vector are re-routed by
// locality against the CANDIDATE — the refined placement routes its
// own arcs; the edge set still ends up identical to the store's.
func replayOnto(c *composite.Composite, muts []store.Mutation) error {
	for i, m := range muts {
		switch m.Kind {
		case store.MutInsert:
			dest := m.Dest
			if len(dest) != c.K() {
				dest = store.RouteDest(c, m.U, m.V)
			}
			if err := c.InsertEdge(m.U, m.V, dest); err != nil {
				return fmt.Errorf("replaying insert %d (%d,%d): %w", i, m.U, m.V, err)
			}
		case store.MutDelete:
			if !c.DeleteEdge(m.U, m.V) {
				return fmt.Errorf("replaying delete %d: edge (%d,%d) not present", i, m.U, m.V)
			}
		}
	}
	return nil
}

// swapRequest asks the apply loop to promote (or roll back to) cand.
type swapRequest struct {
	cand     *composite.Composite
	baseSeq  uint64
	rollback bool
	reply    chan swapResult
}

type swapResult struct {
	epoch uint64
	err   error
}

// SwapEpoch hands a candidate composite to the apply loop for a
// guarded, durable promotion: the captured delta since baseSeq is
// replayed onto it, the coherence index re-validated, the store's
// composite durably replaced (snapshot + fresh WAL segment), and a
// fresh epoch published. The candidate must derive from the base
// returned by BeginMaintenance (same edge set as epoch baseSeq); the
// server owns it after a successful swap. Returns the new epoch
// sequence. Any error leaves readers on the previous epoch.
func (s *Server) SwapEpoch(cand *composite.Composite, baseSeq uint64, rollback bool) (uint64, error) {
	sr := &swapRequest{cand: cand, baseSeq: baseSeq, rollback: rollback, reply: make(chan swapResult, 1)}
	select {
	case s.swaps <- sr:
	case <-s.baseCtx.Done():
		return 0, fmt.Errorf("serve: draining; swap aborted")
	}
	// The apply loop always replies once it has accepted the request
	// (the reply channel is buffered), including during a drain.
	res := <-sr.reply
	return res.epoch, res.err
}

// applySwap performs the promotion inside the apply loop, serialized
// with update waves. Failure classes: stale/overflowed capture and
// replay or validation failures reject the candidate without touching
// the store; a durable-swap disk failure poisons the write path like
// any other write error — in every case readers stay on the last good
// epoch.
func (s *Server) applySwap(sr *swapRequest) {
	res := swapResult{}
	defer func() { sr.reply <- res }()
	if s.draining.Load() {
		res.err = fmt.Errorf("serve: draining; swap refused")
		return
	}
	if s.storeFailed.Load() {
		res.err = fmt.Errorf("serve: store write path failed; swap refused")
		return
	}
	delta, overflow := s.captureDelta(sr.baseSeq)
	if overflow {
		res.err = fmt.Errorf("serve: maintenance capture overflowed (> %d mutations); candidate too stale", maxCapturedMutations)
		return
	}
	if err := replayOnto(sr.cand, delta); err != nil {
		res.err = fmt.Errorf("serve: catching candidate up: %w", err)
		return
	}
	if err := sr.cand.ValidateIndex(); err != nil {
		res.err = fmt.Errorf("serve: candidate index invalid after catch-up: %w", err)
		return
	}
	if err := s.st.ReplaceComposite(sr.cand); err != nil {
		if s.st.Failed() {
			s.storeFailed.Store(true)
			s.logf("serve: durable swap failed, store poisoned: %v", err)
		}
		res.err = err
		return
	}
	s.lastLSN.Store(s.st.LSN())
	s.committed.Store(s.st.Committed())
	ne := s.publish(sr.cand)
	s.epochSwaps.Add(1)
	if sr.rollback {
		s.maintRollbacks.Add(1)
	} else {
		s.maintPromotions.Add(1)
	}
	kind := "promoted"
	if sr.rollback {
		kind = "rolled back to"
	}
	s.logf("serve: %s epoch %d (lsn=%d, %d delta mutations replayed)", kind, ne.seq, ne.lsn, len(delta))
	res.epoch = ne.seq
}

// CurrentComposite returns the live epoch's immutable composite and
// sequence — the drift detector evaluates reference costs against it.
// Callers must treat it as read-only.
func (s *Server) CurrentComposite() (*composite.Composite, uint64) {
	e := s.cur.Load()
	return e.comp, e.seq
}

// recordObserved folds one successful /run into the observation
// window: the algorithm mix count and the engine's harvested
// per-worker (== per-fragment) work vector, plus a latency sample.
func (s *Server) recordObserved(algoIdx int, work []float64, epoch uint64, wall time.Duration) {
	s.obsMu.Lock()
	if s.obsCounts == nil {
		n := len(costmodel.Algos())
		s.obsCounts = make([]int64, n)
		s.obsWork = make([][]float64, n)
	}
	if algoIdx < len(s.obsCounts) {
		s.obsCounts[algoIdx]++
		row := s.obsWork[algoIdx]
		if len(row) < len(work) {
			nr := make([]float64, len(work))
			copy(nr, row)
			row = nr
			s.obsWork[algoIdx] = row
		}
		for i, v := range work {
			row[i] += v
		}
	}
	if len(s.latSamples) < latWindow {
		s.latSamples = append(s.latSamples, LatencySample{Epoch: epoch, Wall: wall})
	} else {
		s.latSamples[s.latNext] = LatencySample{Epoch: epoch, Wall: wall}
		s.latNext = (s.latNext + 1) % latWindow
	}
	s.obsMu.Unlock()
}

// latWindow bounds the retained latency ring.
const latWindow = 2048

// ObservedWindow snapshots and RESETS the per-algorithm request counts
// and accumulated per-fragment work since the previous call — the
// drift detector consumes exactly one window per tick.
func (s *Server) ObservedWindow() (counts []int64, work [][]float64) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	counts = append([]int64(nil), s.obsCounts...)
	work = make([][]float64, len(s.obsWork))
	for i, row := range s.obsWork {
		work[i] = append([]float64(nil), row...)
	}
	s.obsCounts = nil
	s.obsWork = nil
	return counts, work
}

// LatencySamples returns a copy of the retained /run latency ring
// (unordered; samples carry the serving epoch).
func (s *Server) LatencySamples() []LatencySample {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	return append([]LatencySample(nil), s.latSamples...)
}
