package serve

import (
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/pool"
	"adp/internal/store"
)

// isolationAlgos are the run mix the isolation readers hammer with —
// one label-propagation and one arithmetic workload, both sensitive to
// any adjacency change.
var isolationAlgos = []costmodel.Algo{costmodel.WCC, costmodel.PR}

// replayPrefix applies batches[from:to) to oc exactly the way the
// store's apply loop does: inserts without an explicit destination are
// routed against the composite's state at that point in the sequence,
// so the replay is order-faithful.
func replayPrefix(t *testing.T, oc *composite.Composite, batches [][]store.Mutation, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		for _, m := range batches[i] {
			switch m.Kind {
			case store.MutInsert:
				dest := m.Dest
				if len(dest) == 0 {
					dest = store.RouteDest(oc, m.U, m.V)
				}
				if err := oc.InsertEdge(m.U, m.V, dest); err != nil {
					t.Fatalf("replay batch %d: %v", i, err)
				}
			case store.MutDelete:
				oc.DeleteEdge(m.U, m.V)
			}
		}
	}
}

// TestServeSnapshotIsolation hammers /run and /vertex from many
// goroutines while a writer mutates the store through /updates and
// epochs swap underneath. Every response must be internally consistent
// with exactly one epoch: all observations tagged with epoch E are
// bitwise what an offline replay of the first prefix(E) update batches
// produces — no torn reads, no cross-epoch mixing. Run under -race in
// CI (serve-matrix).
func TestServeSnapshotIsolation(t *testing.T) {
	ts := newServer(t, Config{SessionsPerAlgo: 4, MaxInflight: 64})
	g := ts.g

	// The update script: delete/re-insert waves over distinct safe
	// edges, so consecutive epochs always differ and the mutation mix
	// exercises both route-on-insert and coherent delete.
	type edge struct{ u, v graph.VertexID }
	var safe []edge
	g.Edges(func(u, v graph.VertexID) bool {
		if u < v && g.OutDegree(u) > 0 && g.OutDegree(v) > 0 {
			safe = append(safe, edge{u, v})
		}
		return len(safe) < 64
	})
	if len(safe) < 8 {
		t.Fatalf("only %d safe edges", len(safe))
	}
	const numBatches = 8
	batches := make([][]store.Mutation, numBatches)
	streams := make([]string, numBatches)
	for i := 0; i < numBatches; i++ {
		e := safe[i%len(safe)]
		var s string
		if i%2 == 0 {
			s = fmt.Sprintf("- %d %d\ncommit\n", e.u, e.v)
		} else {
			s = fmt.Sprintf("+ %d %d\ncommit\n", e.u, e.v)
		}
		muts, err := store.ParseUpdates(strings.NewReader(s))
		if err != nil {
			t.Fatal(err)
		}
		batches[i], streams[i] = muts, s
	}

	// Observations, deduplicated per key: the first response wins, any
	// later response with the same key must match it bitwise.
	type runKey struct {
		epoch uint64
		algo  string
	}
	type vertKey struct {
		epoch uint64
		id    int
	}
	var (
		obsMu   sync.Mutex
		runObs  = map[runKey]runResponse{}
		vertObs = map[vertKey]vertexResponse{}
		torn    []string
	)
	recordRun := func(rr runResponse) {
		obsMu.Lock()
		defer obsMu.Unlock()
		k := runKey{rr.Epoch, rr.Algo}
		rr.WallMS = 0 // wall time is not part of the determinism contract
		rr.Recoveries = 0
		if prev, ok := runObs[k]; ok {
			if !reflect.DeepEqual(prev, rr) {
				torn = append(torn, fmt.Sprintf("run %v: %+v vs %+v", k, prev, rr))
			}
			return
		}
		runObs[k] = rr
	}
	recordVertex := func(vr vertexResponse) {
		obsMu.Lock()
		defer obsMu.Unlock()
		k := vertKey{vr.Epoch, int(vr.Vertex)}
		if prev, ok := vertObs[k]; ok {
			if !reflect.DeepEqual(prev, vr) {
				torn = append(torn, fmt.Sprintf("vertex %v: %+v vs %+v", k, prev, vr))
			}
			return
		}
		vertObs[k] = vr
	}

	// Readers: half run algorithms, half read vertices touched by the
	// update script (the vertices whose snapshots actually change).
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := isolationAlgos[(r+i)%len(isolationAlgos)]
				i++
				status, rr, _ := ts.postRun(t, runReqFor(a))
				if status == http.StatusOK {
					recordRun(rr)
				}
			}
		}(r)
	}
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := safe[(r*31+i)%numBatches]
				i++
				for _, id := range []graph.VertexID{e.u, e.v} {
					status, vr, _ := ts.getVertex(t, int(id))
					if status == http.StatusOK {
						recordVertex(vr)
					}
				}
			}
		}(r)
	}

	// Writer: sequential, so each ack maps one batch prefix to one
	// epoch. prefixByEpoch[E] = number of batches folded into E.
	prefixByEpoch := map[uint64]int{1: 0}
	for i := 0; i < numBatches; i++ {
		status, ur, eb := ts.postUpdates(t, streams[i])
		if status != http.StatusOK {
			t.Fatalf("batch %d: status %d (%v)", i, status, eb)
		}
		if !ur.Visible {
			t.Fatalf("batch %d: durable but not visible: %+v", i, ur)
		}
		prefixByEpoch[ur.Epoch] = i + 1
		time.Sleep(15 * time.Millisecond) // let readers sample this epoch
	}
	close(stop)
	readerWG.Wait()
	if len(torn) > 0 {
		t.Fatalf("%d torn/inconsistent responses, first: %s", len(torn), torn[0])
	}

	// Offline oracle: replay the pristine composite through the exact
	// batch prefixes and check every recorded observation against the
	// state of its epoch, bitwise.
	oracle := serveComposite(t, serveGraph())
	epochs := make([]uint64, 0, len(prefixByEpoch))
	for e := range prefixByEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })

	checkedRuns, checkedVerts, prefix := 0, 0, 0
	for _, e := range epochs {
		replayPrefix(t, oracle, batches, prefix, prefixByEpoch[e])
		prefix = prefixByEpoch[e]
		for _, a := range isolationAlgos {
			rr, ok := runObs[runKey{e, a.String()}]
			if !ok {
				continue
			}
			part := oracle.Partition(algoIndex(a) % oracle.K()).Clone().Compile()
			want, err := algorithms.Run(engine.NewCluster(part).UsePool(pool.Serial()), a, serveAlgoOpts)
			if err != nil {
				t.Fatal(err)
			}
			if rr.Value != want.Value || rr.Checksum != want.Checksum ||
				rr.Supersteps != want.Report.Supersteps ||
				rr.CriticalWork != want.Report.CriticalWork ||
				rr.CriticalBytes != want.Report.CriticalBytes ||
				rr.MsgBytes != want.Report.TotalMsgBytes() {
				t.Errorf("epoch %d %s: served (%v,%d,steps=%d,cw=%v,cb=%v,mb=%d) vs offline (%v,%d,steps=%d,cw=%v,cb=%v,mb=%d)",
					e, a, rr.Value, rr.Checksum, rr.Supersteps, rr.CriticalWork, rr.CriticalBytes, rr.MsgBytes,
					want.Value, want.Checksum, want.Report.Supersteps, want.Report.CriticalWork, want.Report.CriticalBytes, want.Report.TotalMsgBytes())
			}
			checkedRuns++
		}
		for k, vr := range vertObs {
			if k.epoch != e {
				continue
			}
			v := graph.VertexID(k.id)
			for j := 0; j < oracle.K(); j++ {
				p, pl := oracle.Partition(j), vr.Partitions[j]
				if pl.Master != p.Master(v) || len(pl.Copies) != len(p.Copies(v)) {
					t.Errorf("epoch %d vertex %d p%d: placement (%d,%d copies) vs offline (%d,%d)",
						e, k.id, j, pl.Master, len(pl.Copies), p.Master(v), len(p.Copies(v)))
				}
				at := p.CompleteFragment(v)
				if at < 0 {
					at = p.Master(v)
				}
				adj := p.Fragment(at).Adjacency(v)
				wantOut := 0
				if adj != nil {
					wantOut = len(adj.Out)
				}
				if pl.OutDegree != wantOut {
					t.Errorf("epoch %d vertex %d p%d: out-degree %d vs offline %d", e, k.id, j, pl.OutDegree, wantOut)
					continue
				}
				for oi := range pl.Out {
					if graph.VertexID(pl.Out[oi]) != adj.Out[oi] {
						t.Errorf("epoch %d vertex %d p%d: out[%d] = %d vs offline %d", e, k.id, j, oi, pl.Out[oi], adj.Out[oi])
						break
					}
				}
			}
			checkedVerts++
		}
	}
	if checkedRuns == 0 || checkedVerts == 0 {
		t.Fatalf("coverage too thin: %d run and %d vertex observations verified", checkedRuns, checkedVerts)
	}
	t.Logf("verified %d run and %d vertex observations across %d epochs", checkedRuns, checkedVerts, len(epochs))
}
