package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"adp/internal/store"
)

// TestServeDrain: a drain with in-flight requests completes or cleanly
// cancels every session (each client gets 200 or a typed 503, never a
// dropped connection), returns nil after flushing the WAL, and a second
// start recovers the store with zero un-acked tail.
func TestServeDrain(t *testing.T) {
	dir := t.TempDir() + "/store"
	ts := startServer(t, dir, true, Config{SessionsPerAlgo: 4, MaxInflight: 16}, store.Options{})
	g := ts.g

	// One durable batch before the drain — the recovered store must
	// land exactly here.
	u, v := pickLiveEdge(t, g)
	stream := fmt.Sprintf("- %d %d\ncommit\n", u, v)
	muts, err := store.ParseUpdates(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if status, ur, eb := ts.postUpdates(t, stream); status != http.StatusOK || !ur.Visible {
		t.Fatalf("pre-drain update: status %d %+v (%v)", status, ur, eb)
	}

	// In-flight load: short runs that finish within the grace period
	// and long runs the drain must cancel.
	type outcome struct {
		status int
		class  string
		err    error
	}
	results := make(chan outcome, 8)
	var wg sync.WaitGroup
	post := func(req runRequest) {
		defer wg.Done()
		b, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(b))
		if err != nil {
			results <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var eb errorBody
		json.Unmarshal(raw, &eb)
		results <- outcome{status: resp.StatusCode, class: eb.Class}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go post(runRequest{Algo: "WCC"})
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go post(runRequest{Algo: "PR", Iterations: 2000000})
	}
	time.Sleep(100 * time.Millisecond) // let every request get admitted

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := ts.Server.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.once.Do(func() {}) // mark drained for the cleanup hook
	drainTook := time.Since(start)

	wg.Wait()
	close(results)
	completed, cancelled := 0, 0
	for o := range results {
		switch {
		case o.err != nil:
			t.Errorf("in-flight request saw a transport error: %v", o.err)
		case o.status == http.StatusOK:
			completed++
		case o.status == http.StatusServiceUnavailable && (o.class == "cancelled" || o.class == "draining"):
			cancelled++
		default:
			t.Errorf("in-flight request: status %d class %q", o.status, o.class)
		}
	}
	if completed == 0 {
		t.Error("no in-flight run completed within the grace period")
	}
	if cancelled == 0 {
		t.Error("no long run was cancelled — drain either hung or dropped them")
	}
	if drainTook > 5*time.Second {
		t.Errorf("drain took %v; cancellation after grace should bound it", drainTook)
	}
	t.Logf("drain in %v: %d completed, %d cancelled", drainTook.Round(time.Millisecond), completed, cancelled)

	// Second start: the WAL was flushed at drain, so recovery finds a
	// clean store with zero un-acked tail and exactly the acked batch.
	st2, info, err := store.Open(dir, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Damage != nil || info.DiscardedMutations != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("second start found un-acked tail: %s", info)
	}
	want := serveComposite(t, serveGraph())
	replayPrefix(t, want, [][]store.Mutation{muts}, 0, 1)
	if err := st2.Composite().EqualState(want); err != nil {
		t.Fatalf("recovered state diverges from acked prefix: %v", err)
	}
	// And the reopened store serves again.
	srv2, err := New(st2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Epoch() != 1 {
		t.Fatalf("second server starts at epoch %d, want 1", srv2.Epoch())
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
