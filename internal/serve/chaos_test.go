package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/graph"
	"adp/internal/pool"
	"adp/internal/store"
	"adp/internal/testutil"
)

// TestServeChaos threads both injector families through a live server:
// every /run session replays a crash + transient + straggler schedule
// (requests still answer 200 with the deterministic fault-free report),
// a disk-fault schedule poisons the store mid-update-batch (in-flight
// and later writes get typed errors while reads keep serving the last
// good epoch), the server drains without leaking goroutines, and a
// restart recovers exactly the committed WAL prefix.
func TestServeChaos(t *testing.T) {
	g := serveGraph()

	// Dedicated engine pool, warmed before the goroutine baseline so
	// its long-lived helpers are counted in it.
	pl := pool.New(4)
	defer pl.Close()
	warm := serveComposite(t, g).Partition(0).Clone().Compile()
	if _, err := algorithms.Run(engine.NewCluster(warm).UsePool(pl), costmodel.WCC, algorithms.Options{}); err != nil {
		t.Fatal(err)
	}
	baseGoroutines := testutil.GoroutineBaseline()

	// Engine chaos: every /run session gets a clone of this schedule —
	// a worker crash, a transient failure and a straggler per run, all
	// recovered behind the barrier.
	runInj := fault.NewInjector(
		fault.Event{Kind: fault.Crash, Superstep: 1, Worker: 0},
		fault.Event{Kind: fault.Transient, Superstep: 2, Worker: 1},
		fault.Event{Kind: fault.Straggler, Superstep: 1, Worker: 2, Delay: time.Millisecond},
	)
	// Disk chaos: a burst of failing fsyncs starting at the 6th — a few
	// update batches in, mid-wave, with full EIO ambiguity about
	// durability. The burst outlasts the apply loop's retry ladder
	// (default 3 retries), so the write path must still poison; a
	// shorter burst is absorbed (TestServeApplyRetryLadder).
	diskInj := fault.NewDiskInjector(
		fault.DiskEvent{Kind: fault.SyncErr, N: 6},
		fault.DiskEvent{Kind: fault.SyncErr, N: 7},
		fault.DiskEvent{Kind: fault.SyncErr, N: 8},
		fault.DiskEvent{Kind: fault.SyncErr, N: 9},
		fault.DiskEvent{Kind: fault.SyncErr, N: 10},
	)

	ts := startServer(t, t.TempDir()+"/store", true,
		Config{Pool: pl, RunInjector: runInj, SessionsPerAlgo: 2},
		store.Options{Injector: diskInj})

	// Faulted runs still answer 200 with the fault-free deterministic
	// report (the engine's recovery contract, now over HTTP).
	oracle := serveComposite(t, g)
	for _, a := range []costmodel.Algo{costmodel.WCC, costmodel.PR} {
		status, rr, eb := ts.postRun(t, runReqFor(a))
		if status != http.StatusOK {
			t.Fatalf("%s under chaos: status %d (%v)", a, status, eb)
		}
		part := oracle.Partition(algoIndex(a) % oracle.K()).Clone().Compile()
		want, err := algorithms.Run(engine.NewCluster(part).UsePool(pool.Serial()), a, serveAlgoOpts)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Value != want.Value || rr.Checksum != want.Checksum || rr.Supersteps != want.Report.Supersteps {
			t.Fatalf("%s under chaos: (%v,%d,%d) vs fault-free (%v,%d,%d)",
				a, rr.Value, rr.Checksum, rr.Supersteps, want.Value, want.Checksum, want.Report.Supersteps)
		}
		if rr.Recoveries < 2 {
			t.Fatalf("%s under chaos: %d recoveries, want >= 2 (crash + transient)", a, rr.Recoveries)
		}
	}

	// A deadline that cannot fit the run maps to a typed 504 even with
	// fault injection active.
	if status, _, eb := ts.postRun(t, runRequest{Algo: "PR", Iterations: 100000, TimeoutMS: 1}); status != http.StatusGatewayTimeout || eb.Class != "timeout" {
		t.Fatalf("timeout under chaos: status %d class %q", status, eb.Class)
	}

	// Update batches until the armed fsync failure poisons the store.
	type edge struct{ u, v graph.VertexID }
	var safe []edge
	g.Edges(func(u, v graph.VertexID) bool {
		if u < v && g.OutDegree(u) > 0 && g.OutDegree(v) > 0 {
			safe = append(safe, edge{u, v})
		}
		return len(safe) < 32
	})
	var batches [][]store.Mutation
	acked, failed := 0, false
	var lastGoodEpoch uint64 = 1
	for i := 0; i < 12 && !failed; i++ {
		e := safe[i%len(safe)]
		var s string
		if i%2 == 0 {
			s = fmt.Sprintf("- %d %d\n", e.u, e.v)
		} else {
			s = fmt.Sprintf("+ %d %d\n", e.u, e.v)
		}
		muts, err := store.ParseUpdates(strings.NewReader(s))
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, muts)
		status, ur, eb := ts.postUpdates(t, s)
		switch status {
		case http.StatusOK:
			acked++
			lastGoodEpoch = ur.Epoch
		case http.StatusInternalServerError:
			if eb.Class != "store_failed" {
				t.Fatalf("batch %d: 500 with class %q, want store_failed", i, eb.Class)
			}
			failed = true
		default:
			t.Fatalf("batch %d: status %d (%v)", i, status, eb)
		}
	}
	if !failed {
		t.Fatalf("fsync fault never fired (%d batches acked)", acked)
	}
	if acked == 0 {
		t.Fatal("store poisoned before any batch committed; schedule too early")
	}

	// After the poison: writes fail fast with a typed 503, reads keep
	// serving the last published epoch.
	e := safe[0]
	if status, _, eb := ts.postUpdates(t, fmt.Sprintf("+ %d %d\n", e.u, e.v)); status != http.StatusServiceUnavailable || eb.Class != "store_failed" {
		t.Fatalf("post-poison update: status %d class %q, want 503 store_failed", status, eb.Class)
	}
	status, vr, _ := ts.getVertex(t, int(e.u))
	if status != http.StatusOK || vr.Epoch != lastGoodEpoch {
		t.Fatalf("post-poison read: status %d epoch %d, want 200 epoch %d", status, vr.Epoch, lastGoodEpoch)
	}
	if status, rr, eb := ts.postRun(t, runReqFor(costmodel.WCC)); status != http.StatusOK || rr.Epoch != lastGoodEpoch {
		t.Fatalf("post-poison run: status %d epoch %d (%v)", status, rr.Epoch, eb)
	}
	if m := ts.getMetrics(t); !m.Store.Failed {
		t.Fatal("metrics do not report the poisoned write path")
	} else if m.Server.ApplyRetries == 0 {
		t.Fatal("retry ladder never ran before the poison")
	}

	// Drain. Closing a poisoned store may surface the write error —
	// what matters is that drain returns and nothing leaks.
	drainErr := ts.drain()
	t.Logf("drain after poison: %v", drainErr)
	testutil.CheckGoroutines(t, baseGoroutines, 2)

	// Restart: recovery lands on a commit boundary covering either the
	// acked prefix or acked+1 (the failed fsync's data may have reached
	// the disk — exactly the ambiguity a real EIO leaves), with no
	// damage and nothing discarded.
	st2, info, err := store.Open(ts.Dir, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info.Damage != nil {
		t.Fatalf("recovery found damage: %s", info)
	}
	want := serveComposite(t, serveGraph())
	replayPrefix(t, want, batches, 0, acked)
	if err := st2.Composite().EqualState(want); err != nil {
		replayPrefix(t, want, batches, acked, acked+1)
		if err2 := st2.Composite().EqualState(want); err2 != nil {
			t.Fatalf("recovered state matches neither %d nor %d batches:\n  %v\n  %v", acked, acked+1, err, err2)
		}
		t.Logf("recovered state includes the ambiguous batch %d (%s)", acked, info)
	} else {
		t.Logf("recovered exactly the %d acked batches (%s)", acked, info)
	}
}
