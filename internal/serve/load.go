package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adp/internal/costmodel"
	"adp/internal/graph"
)

// LoadConfig shapes one load-generation run against a serving daemon.
type LoadConfig struct {
	// Duration of the measurement window.
	Duration time.Duration
	// Workers is the number of concurrent clients (closed loop: each
	// issues its next request as soon as the previous one answers).
	Workers int
	// TargetQPS > 0 switches to an open loop: the workers collectively
	// pace request starts at this aggregate rate regardless of
	// response latency, the honest way to measure tail latency.
	TargetQPS float64
	// RunFraction of requests are POST /run; the rest GET /vertex.
	RunFraction float64
	// Algos to draw /run requests from (defaults to WCC).
	Algos []costmodel.Algo
	// RunTimeout is the timeout_ms sent with each /run.
	RunTimeout time.Duration
	// Writer, when true, runs a background mutator posting delete+
	// re-insert batches to /updates every WriterEvery, swapping epochs
	// under the readers.
	Writer      bool
	WriterEvery time.Duration
	Seed        int64
}

func (c *LoadConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if len(c.Algos) == 0 {
		c.Algos = []costmodel.Algo{costmodel.WCC}
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 10 * time.Second
	}
	if c.WriterEvery <= 0 {
		c.WriterEvery = 20 * time.Millisecond
	}
}

// LoadResult aggregates one load run.
type LoadResult struct {
	Requests int64         `json:"requests"`
	Runs     int64         `json:"runs"`
	Reads    int64         `json:"reads"`
	Errors   int64         `json:"errors"`
	Rejected int64         `json:"rejected"` // 429 backpressure, not errors
	Updates  int64         `json:"update_batches"`
	Wall     time.Duration `json:"wall_ns"`
	QPS      float64       `json:"qps"`
	ReadP50  time.Duration `json:"read_p50_ns"`
	ReadP99  time.Duration `json:"read_p99_ns"`
	RunP50   time.Duration `json:"run_p50_ns"`
	RunP99   time.Duration `json:"run_p99_ns"`
}

func (r *LoadResult) String() string {
	return fmt.Sprintf("%d req in %v (%.0f QPS; %d runs, %d reads, %d rejected, %d errors, %d update batches) read p50=%v p99=%v run p50=%v p99=%v",
		r.Requests, r.Wall.Round(time.Millisecond), r.QPS, r.Runs, r.Reads, r.Rejected, r.Errors, r.Updates,
		r.ReadP50.Round(time.Microsecond), r.ReadP99.Round(time.Microsecond),
		r.RunP50.Round(time.Microsecond), r.RunP99.Round(time.Microsecond))
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// RunLoad drives baseURL with mixed /run + /vertex traffic for
// cfg.Duration and reports throughput and latency percentiles. The
// graph is only consulted for vertex-ID ranges and writer-safe edges.
func RunLoad(baseURL string, g *graph.Graph, cfg LoadConfig) (*LoadResult, error) {
	cfg.fill()
	tr := &http.Transport{MaxIdleConns: cfg.Workers * 2, MaxIdleConnsPerHost: cfg.Workers * 2}
	client := &http.Client{Transport: tr, Timeout: cfg.RunTimeout + 5*time.Second}
	defer tr.CloseIdleConnections()

	nv := int64(g.NumVertices())
	res := &LoadResult{}
	var errs, rejected, updates atomic.Int64

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	if cfg.Writer {
		// Writer-safe edges: delete+re-insert of an existing edge whose
		// endpoints keep positive base out-degree (PR divides by base
		// out-degree, so never materialize arcs at zero-out-degree
		// sources).
		type edge struct{ u, v graph.VertexID }
		var safe []edge
		g.Edges(func(u, v graph.VertexID) bool {
			if g.OutDegree(u) > 0 && g.OutDegree(v) > 0 {
				safe = append(safe, edge{u, v})
			}
			return len(safe) < 4096
		})
		if len(safe) == 0 {
			return nil, fmt.Errorf("serve: no writer-safe edges in graph")
		}
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			i := 0
			tick := time.NewTicker(cfg.WriterEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				e := safe[i%len(safe)]
				i++
				body := fmt.Sprintf("- %d %d\n+ %d %d\ncommit\n", e.u, e.v, e.u, e.v)
				resp, err := client.Post(baseURL+"/updates", "text/plain", bytes.NewBufferString(body))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					updates.Add(1)
				}
			}
		}()
	}

	type sample struct {
		run bool
		lat time.Duration
	}
	perWorker := make([][]sample, cfg.Workers)
	var interval time.Duration
	if cfg.TargetQPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Workers) / cfg.TargetQPS)
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			next := start
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				if interval > 0 {
					// Open loop: pace starts; never skip a slot, only
					// shift it when we fall behind (coordinated-omission
					// honest enough for a local daemon).
					if d := next.Sub(now); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				isRun := rng.Float64() < cfg.RunFraction
				t0 := time.Now()
				var status int
				var err error
				if isRun {
					algo := cfg.Algos[rng.Intn(len(cfg.Algos))]
					b, _ := json.Marshal(runRequest{Algo: algo.String(), TimeoutMS: cfg.RunTimeout.Milliseconds()})
					var resp *http.Response
					resp, err = client.Post(baseURL+"/run", "application/json", bytes.NewReader(b))
					if err == nil {
						status = resp.StatusCode
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				} else {
					var resp *http.Response
					resp, err = client.Get(fmt.Sprintf("%s/vertex/%d", baseURL, rng.Int63n(nv)))
					if err == nil {
						status = resp.StatusCode
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
				lat := time.Since(t0)
				switch {
				case err != nil:
					errs.Add(1)
				case status == http.StatusTooManyRequests:
					rejected.Add(1)
				case status != http.StatusOK:
					errs.Add(1)
				default:
					perWorker[w] = append(perWorker[w], sample{run: isRun, lat: lat})
				}
			}
		}(w)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	close(stop)
	writerWG.Wait()

	var runLat, readLat []time.Duration
	for _, ss := range perWorker {
		for _, s := range ss {
			if s.run {
				runLat = append(runLat, s.lat)
			} else {
				readLat = append(readLat, s.lat)
			}
		}
	}
	res.Runs = int64(len(runLat))
	res.Reads = int64(len(readLat))
	res.Errors = errs.Load()
	res.Rejected = rejected.Load()
	res.Updates = updates.Load()
	res.Requests = res.Runs + res.Reads + res.Errors + res.Rejected
	if res.Wall > 0 {
		res.QPS = float64(res.Runs+res.Reads) / res.Wall.Seconds()
	}
	sort.Slice(runLat, func(i, j int) bool { return runLat[i] < runLat[j] })
	sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
	res.RunP50, res.RunP99 = percentile(runLat, 0.50), percentile(runLat, 0.99)
	res.ReadP50, res.ReadP99 = percentile(readLat, 0.50), percentile(readLat, 0.99)
	return res, nil
}
