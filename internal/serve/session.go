package serve

import (
	"context"

	"adp/internal/engine"
	"adp/internal/partition"
	"adp/internal/pool"
)

// sessionPool is a bounded pool of engine clusters over one immutable
// epoch partition. A slot holds nil until first use — clusters compile
// their responsibility index at construction, so building them lazily
// keeps epoch publishes cheap for algorithms nobody is running.
// Acquire queues (that is the admission "batching onto session pools":
// excess requests wait for a session, bounded by their own deadline)
// and release returns the cluster for reuse; each cluster is held
// exclusively between the two, which is what makes Configure+Run safe.
type sessionPool struct {
	part  *partition.Partition
	pl    *pool.Pool
	slots chan *engine.Cluster
}

func newSessionPool(part *partition.Partition, pl *pool.Pool, size int) *sessionPool {
	sp := &sessionPool{part: part, pl: pl, slots: make(chan *engine.Cluster, size)}
	for i := 0; i < size; i++ {
		sp.slots <- nil
	}
	return sp
}

func (sp *sessionPool) acquire(ctx context.Context) (*engine.Cluster, error) {
	select {
	case c := <-sp.slots:
		if c == nil {
			// Safe under concurrency: the partition is quiescent (the
			// epoch is immutable) and already compiled, so NewCluster
			// only reads it.
			c = engine.NewCluster(sp.part).UsePool(sp.pl)
		}
		return c, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (sp *sessionPool) release(c *engine.Cluster) { sp.slots <- c }
