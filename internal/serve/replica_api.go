package serve

import (
	"errors"
	"fmt"
	"time"

	"adp/internal/store"
)

// The replication-facing surface of the server. A follower process runs
// the serving plane in read-only mode: the replica pump (internal/
// replica.Follower) is a *client* of this surface, handing pulled WAL
// frames, bootstrap snapshots and the promotion order to the apply loop
// — the single writer — exactly like update batches and maintenance
// swaps. Everything that must be serialized with epoch publishes (the
// durable append, the composite fold, the watermark advance) happens
// inside the apply loop, so readers never see a half-applied batch and
// min_lsn reads never observe a torn epoch.
//
// This package deliberately does not import internal/replica (replica's
// serve adapter imports serve); the wiring — dialer, pump, status
// provider — lives in the process (cmd/adserve) or the test harness.

// ErrNotFollower rejects replication traffic on a leader.
var ErrNotFollower = errors.New("serve: not in follower mode")

// ErrNotLeader is the class behind rejected follower writes.
var ErrNotLeader = errors.New("serve: follower is read-only; write to the leader")

// ReplStatus is the replication /metrics block, registered by the
// process wiring via SetReplStatusFunc (the serve package has no import
// of internal/replica, so the concrete stats are mapped in by the
// caller).
type ReplStatus struct {
	Role               string            `json:"role"` // "leader" | "follower"
	AppliedLSN         uint64            `json:"applied_lsn"`
	LeaderCommittedLSN uint64            `json:"leader_committed_lsn,omitempty"`
	LagFrames          uint64            `json:"lag_frames"`
	Pulls              int64             `json:"pulls,omitempty"`
	PullErrors         int64             `json:"pull_errors,omitempty"`
	FramesReceived     int64             `json:"frames_received,omitempty"`
	SnapshotsInstalled int64             `json:"snapshots_installed,omitempty"`
	Promoted           bool              `json:"promoted,omitempty"`
	LastPullAgeMS      int64             `json:"last_pull_age_ms,omitempty"`
	Followers          map[string]uint64 `json:"followers,omitempty"` // leader side: durably-applied watermarks
}

// SetReplStatusFunc registers the provider behind the /metrics
// "replication" block. Pass nil to unregister.
func (s *Server) SetReplStatusFunc(f func() ReplStatus) {
	s.replMu.Lock()
	s.replStatusFunc = f
	s.replMu.Unlock()
}

func (s *Server) replStatusSnapshot() *ReplStatus {
	s.replMu.Lock()
	f := s.replStatusFunc
	s.replMu.Unlock()
	if f == nil {
		return nil
	}
	rs := f()
	return &rs
}

// ReadOnly reports whether the server is (still) in follower mode.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// AppliedLSN returns the durably-applied replication watermark — the
// staleness bound a follower advertises. Safe for concurrent use.
func (s *Server) AppliedLSN() uint64 { return s.st.CommittedLSN() }

// replReq is one replication request on its way to the apply loop:
// exactly one of frames, snapshot or promote is meaningful.
type replReq struct {
	frames   []store.RawFrame
	snapshot []byte
	snapLSN  uint64
	promote  bool
	reply    chan replRes
}

type replRes struct {
	applied uint64
	commits int
	err     error
}

// sendRepl routes one request through the apply loop, aborting cleanly
// when a drain races it (same discipline as SwapEpoch).
func (s *Server) sendRepl(rr *replReq) replRes {
	select {
	case s.repl <- rr:
	case <-s.baseCtx.Done():
		return replRes{applied: s.st.CommittedLSN(), err: fmt.Errorf("serve: draining; replication request refused")}
	}
	// The apply loop always replies (buffered channel), so this receive
	// cannot block it.
	return <-rr.reply
}

// ReplApply hands a run of pulled leader frames to the apply loop: a
// durable AppendReplicated plus an epoch publish when commit boundaries
// landed. Returns the durable watermark after the call and how many
// commits landed. A *store.GapError is soft (re-pull from AppliedLSN);
// any other error poisons the write path.
func (s *Server) ReplApply(frames []store.RawFrame) (uint64, int, error) {
	if !s.readOnly.Load() {
		return s.st.CommittedLSN(), 0, ErrNotFollower
	}
	res := s.sendRepl(&replReq{frames: frames, reply: make(chan replRes, 1)})
	return res.applied, res.commits, res.err
}

// ReplInstallSnapshot replaces the follower's state with a leader
// snapshot (the catch-up path after the leader compacted frames the
// follower still needed) and publishes the rebased epoch.
func (s *Server) ReplInstallSnapshot(data []byte, lsn uint64) (uint64, error) {
	if !s.readOnly.Load() {
		return s.st.CommittedLSN(), ErrNotFollower
	}
	res := s.sendRepl(&replReq{snapshot: data, snapLSN: lsn, reply: make(chan replRes, 1)})
	return res.applied, res.err
}

// PromoteToLeader fails the follower over: staged-but-uncommitted
// replication state is discarded (the durable committed prefix is
// untouched), the log is fenced with a fresh segment, and the server
// leaves read-only mode — POST /updates starts accepting writes. The
// caller must have stopped the replication pump first.
func (s *Server) PromoteToLeader() error {
	if !s.readOnly.Load() {
		return ErrNotFollower
	}
	res := s.sendRepl(&replReq{promote: true, reply: make(chan replRes, 1)})
	if res.err == nil {
		s.readOnly.Store(false)
		s.logf("serve: promoted to leader at lsn %d", res.applied)
	}
	return res.err
}

// applyRepl executes one replication request (apply loop only).
func (s *Server) applyRepl(rr *replReq) {
	res := replRes{}
	switch {
	case s.storeFailed.Load():
		res.err = fmt.Errorf("serve: store write path failed; restart to recover")
	case rr.promote:
		res.err = s.applyPromote()
	case rr.snapshot != nil:
		res.err = s.applyReplSnapshot(rr.snapshot, rr.snapLSN)
	default:
		res.commits, res.err = s.applyReplFrames(rr.frames)
	}
	s.lastLSN.Store(s.st.LSN())
	s.committed.Store(s.st.Committed())
	res.applied = s.st.CommittedLSN()
	rr.reply <- res
}

// applyReplFrames runs AppendReplicated under the same transient-fsync
// retry ladder as update batches. Re-feeding the full slice after a
// successful RetrySync is safe: the completed commit advanced the
// watermark, so its frames are LSN-skipped and only the unprocessed
// tail applies.
func (s *Server) applyReplFrames(frames []store.RawFrame) (int, error) {
	commits, err := s.st.AppendReplicated(frames)
	if err != nil {
		for attempt := 0; attempt < s.cfg.ApplyRetries && s.st.CanRetrySync(); attempt++ {
			time.Sleep(s.cfg.ApplyRetryBase << attempt)
			s.applyRetries.Add(1)
			if rerr := s.st.RetrySync(); rerr != nil {
				continue
			}
			commits++ // the commit RetrySync completed
			var more int
			more, err = s.st.AppendReplicated(frames)
			commits += more
			if err == nil {
				break
			}
		}
	}
	var gap *store.GapError
	if err != nil && !errors.As(err, &gap) {
		s.storeFailed.Store(true)
		s.logf("serve: replicated apply failed, store poisoned: %v", err)
	}
	if commits > 0 {
		s.publish(s.st.Composite())
		s.epochSwaps.Add(1)
		s.replCommits.Add(int64(commits))
	}
	return commits, err
}

func (s *Server) applyReplSnapshot(data []byte, lsn uint64) error {
	if err := s.st.InstallSnapshot(data, lsn); err != nil {
		// Validation rejections (stale or undecodable snapshots) leave
		// the store healthy; mid-install failures poison it — mirror
		// whichever happened.
		if s.st.Failed() {
			s.storeFailed.Store(true)
		}
		return err
	}
	s.publish(s.st.Composite())
	s.epochSwaps.Add(1)
	s.replSnapshots.Add(1)
	return nil
}

func (s *Server) applyPromote() error {
	s.st.AbortReplicated()
	if err := s.st.RotateSegment(); err != nil {
		s.storeFailed.Store(true)
		return err
	}
	return nil
}
