package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/store"
)

// serveGraph builds the deterministic test graph every serve test runs
// over. Rebuilding it yields an identical graph, which is what lets
// offline oracles replay server state bit-for-bit. Undirected so the
// full algorithm batch (TC included) is servable.
func serveGraph() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 400, AvgDeg: 6, Exponent: 2.1, Directed: false, Seed: 11})
}

// serveComposite bundles an edge-cut and a vertex-assignment partition
// (K=2, 4 fragments) over g — small enough to clone per epoch swap
// quickly, rich enough that the two partitions disagree on placement.
func serveComposite(t testing.TB, g *graph.Graph) *composite.Composite {
	t.Helper()
	p1, err := partitioner.HashEdgeCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 4
	}
	p2, err := partition.FromVertexAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testServer wraps a Server listening on loopback with drain-once
// semantics so tests can Drain explicitly and Cleanup stays safe.
type testServer struct {
	*Server
	URL  string
	Dir  string
	g    *graph.Graph
	once sync.Once
	derr error
}

func (ts *testServer) drain() error {
	ts.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ts.derr = ts.Server.Drain(ctx)
	})
	return ts.derr
}

// startServer creates (fresh=true) or reopens a store in dir and serves
// it on a loopback listener. Cleanup drains unless the test already did.
func startServer(t testing.TB, dir string, fresh bool, cfg Config, sopts store.Options) *testServer {
	t.Helper()
	g := serveGraph()
	var comp *composite.Composite
	if fresh {
		comp = serveComposite(t, g)
	}
	return startServerOn(t, dir, g, comp, cfg, sopts)
}

// startServerOn serves an arbitrary graph/composite pair from dir: a
// non-nil comp creates a fresh store over it, nil reopens the store
// already in dir against g. The write-heavy suites use it to run the
// standard serve tests over larger graphs than the default fixture.
func startServerOn(t testing.TB, dir string, g *graph.Graph, comp *composite.Composite, cfg Config, sopts store.Options) *testServer {
	t.Helper()
	var (
		st  *store.Store
		err error
	)
	if comp != nil {
		st, err = store.Create(dir, comp, sopts)
	} else {
		st, _, err = store.Open(dir, g, sopts)
	}
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	ts := &testServer{Server: srv, URL: "http://" + l.Addr().String(), Dir: dir, g: g}
	t.Cleanup(func() { ts.drain() })
	return ts
}

func newServer(t testing.TB, cfg Config) *testServer {
	t.Helper()
	return startServer(t, filepath.Join(t.TempDir(), "store"), true, cfg, store.Options{})
}

// doJSON performs one request and decodes the response into out (when
// non-nil and the status matched okStatus) or into an errorBody
// otherwise, returning (status, errorBody).
func doJSON(t testing.TB, method, url string, body io.Reader, out any) (int, errorBody) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				t.Fatalf("decoding %s %s: %v (%s)", method, url, err, raw)
			}
		}
		return resp.StatusCode, errorBody{}
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("decoding error body of %s %s (status %d): %v (%s)", method, url, resp.StatusCode, err, raw)
	}
	return resp.StatusCode, eb
}

func (ts *testServer) postRun(t testing.TB, req runRequest) (int, runResponse, errorBody) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	status, eb := doJSON(t, "POST", ts.URL+"/run", bytes.NewReader(b), &rr)
	return status, rr, eb
}

func (ts *testServer) getVertex(t testing.TB, id int) (int, vertexResponse, errorBody) {
	t.Helper()
	var vr vertexResponse
	status, eb := doJSON(t, "GET", fmt.Sprintf("%s/vertex/%d", ts.URL, id), nil, &vr)
	return status, vr, eb
}

func (ts *testServer) getMetrics(t testing.TB) metricsResponse {
	t.Helper()
	var mr metricsResponse
	if status, eb := doJSON(t, "GET", ts.URL+"/metrics", nil, &mr); status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d (%v)", status, eb)
	}
	return mr
}

func (ts *testServer) postUpdates(t testing.TB, stream string) (int, updatesResponse, errorBody) {
	t.Helper()
	var ur updatesResponse
	status, eb := doJSON(t, "POST", ts.URL+"/updates", strings.NewReader(stream), &ur)
	return status, ur, eb
}

var serveAlgoOpts = algorithms.Options{CNTheta: 2, SSSPSource: 1, PRIterations: 3}

func runReqFor(a costmodel.Algo) runRequest {
	return runRequest{
		Algo:       a.String(),
		Theta:      serveAlgoOpts.CNTheta,
		Source:     uint32(serveAlgoOpts.SSSPSource),
		Iterations: serveAlgoOpts.PRIterations,
	}
}

// TestServeRunMatchesOffline: every algorithm served over HTTP returns
// bitwise the Outcome and deterministic Report an offline run over the
// same pristine composite produces — the serving plane adds transport,
// not noise.
func TestServeRunMatchesOffline(t *testing.T) {
	ts := newServer(t, Config{})
	oracle := serveComposite(t, serveGraph())
	for _, a := range costmodel.Algos() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			status, rr, eb := ts.postRun(t, runReqFor(a))
			if status != http.StatusOK {
				t.Fatalf("status %d: %+v", status, eb)
			}
			if rr.Epoch != 1 {
				t.Fatalf("epoch %d, want 1", rr.Epoch)
			}
			part := oracle.Partition(algoIndex(a) % oracle.K())
			want, err := algorithms.Run(engine.NewCluster(part).UsePool(pool.Serial()), a, serveAlgoOpts)
			if err != nil {
				t.Fatal(err)
			}
			if rr.Value != want.Value || rr.Checksum != want.Checksum {
				t.Fatalf("outcome (%v,%d) vs offline (%v,%d)", rr.Value, rr.Checksum, want.Value, want.Checksum)
			}
			if rr.Supersteps != want.Report.Supersteps ||
				rr.CriticalWork != want.Report.CriticalWork ||
				rr.CriticalBytes != want.Report.CriticalBytes ||
				rr.MsgBytes != want.Report.TotalMsgBytes() {
				t.Fatalf("report (%d,%v,%v,%d) vs offline (%d,%v,%v,%d)",
					rr.Supersteps, rr.CriticalWork, rr.CriticalBytes, rr.MsgBytes,
					want.Report.Supersteps, want.Report.CriticalWork, want.Report.CriticalBytes, want.Report.TotalMsgBytes())
			}
		})
	}
}

// TestServeBadRequests: malformed input maps to 400 bad_request, never
// a 500 or a hang.
func TestServeBadRequests(t *testing.T) {
	ts := newServer(t, Config{})
	cases := []struct {
		name   string
		status int
		class  string
		do     func(t *testing.T) (int, errorBody)
	}{
		{"unknown algo", 400, "bad_request", func(t *testing.T) (int, errorBody) {
			s, _, eb := ts.postRun(t, runRequest{Algo: "nope"})
			return s, eb
		}},
		{"run body not json", 400, "bad_request", func(t *testing.T) (int, errorBody) {
			s, eb := doJSON(t, "POST", ts.URL+"/run", strings.NewReader("{"), nil)
			return s, eb
		}},
		{"vertex not a number", 400, "bad_request", func(t *testing.T) (int, errorBody) {
			s, eb := doJSON(t, "GET", ts.URL+"/vertex/abc", nil, nil)
			return s, eb
		}},
		{"vertex out of range", 400, "bad_request", func(t *testing.T) (int, errorBody) {
			s, _, eb := ts.getVertex(t, ts.g.NumVertices()+5)
			return s, eb
		}},
		{"empty update stream", 400, "bad_request", func(t *testing.T) (int, errorBody) {
			s, _, eb := ts.postUpdates(t, "# nothing\n")
			return s, eb
		}},
		{"bad update grammar", 400, "bad_request", func(t *testing.T) (int, errorBody) {
			s, _, eb := ts.postUpdates(t, "x 1 2\n")
			return s, eb
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, eb := tc.do(t)
			if status != tc.status || eb.Class != tc.class {
				t.Fatalf("got status %d class %q, want %d %q (%s)", status, eb.Class, tc.status, tc.class, eb.Error)
			}
		})
	}
}

// TestServeRunTimeout: a deadline that cannot fit the run surfaces as
// 504/timeout with the typed engine error's partial superstep count —
// not a connection reset, not a 500.
func TestServeRunTimeout(t *testing.T) {
	ts := newServer(t, Config{})
	status, _, eb := ts.postRun(t, runRequest{Algo: "PR", Iterations: 100000, TimeoutMS: 1})
	if status != http.StatusGatewayTimeout || eb.Class != "timeout" {
		t.Fatalf("got status %d class %q (%s), want 504 timeout", status, eb.Class, eb.Error)
	}
	if eb.Reason == "" {
		t.Fatal("timeout error carries no engine reason")
	}
}

// TestServeVertexMatchesPartition: the lookup endpoint reports exactly
// what the pristine composite says about placement, status and
// adjacency.
func TestServeVertexMatchesPartition(t *testing.T) {
	ts := newServer(t, Config{})
	oracle := serveComposite(t, serveGraph())
	for _, id := range []int{0, 1, 7, 63, ts.g.NumVertices() - 1} {
		status, vr, eb := ts.getVertex(t, id)
		if status != http.StatusOK {
			t.Fatalf("vertex %d: status %d (%v)", id, status, eb)
		}
		if vr.Epoch != 1 || int(vr.Vertex) != id {
			t.Fatalf("vertex %d: header (%d,%d)", id, vr.Epoch, vr.Vertex)
		}
		if len(vr.Partitions) != oracle.K() {
			t.Fatalf("vertex %d: %d partitions, want %d", id, len(vr.Partitions), oracle.K())
		}
		v := graph.VertexID(id)
		for j, pl := range vr.Partitions {
			p := oracle.Partition(j)
			if pl.Master != p.Master(v) {
				t.Fatalf("vertex %d p%d: master %d vs %d", id, j, pl.Master, p.Master(v))
			}
			copies := p.Copies(v)
			if len(pl.Copies) != len(copies) {
				t.Fatalf("vertex %d p%d: %d copies vs %d", id, j, len(pl.Copies), len(copies))
			}
			for ci, c := range copies {
				if pl.Copies[ci] != int(c) || pl.Status[ci] != p.Status(int(c), v).String() {
					t.Fatalf("vertex %d p%d copy %d: (%d,%q) vs (%d,%q)",
						id, j, ci, pl.Copies[ci], pl.Status[ci], c, p.Status(int(c), v).String())
				}
			}
			at := p.CompleteFragment(v)
			if at < 0 {
				at = p.Master(v)
			}
			adj := p.Fragment(at).Adjacency(v)
			wantOut, wantIn := 0, 0
			if adj != nil {
				wantOut, wantIn = len(adj.Out), len(adj.In)
			}
			if pl.OutDegree != wantOut || pl.InDegree != wantIn || len(pl.Out) != wantOut {
				t.Fatalf("vertex %d p%d: degrees (%d,%d,%d) vs (%d,%d)", id, j, pl.OutDegree, pl.InDegree, len(pl.Out), wantOut, wantIn)
			}
			for oi := range pl.Out {
				if graph.VertexID(pl.Out[oi]) != adj.Out[oi] {
					t.Fatalf("vertex %d p%d: out[%d] = %d vs %d", id, j, oi, pl.Out[oi], adj.Out[oi])
				}
			}
		}
	}
}

// TestServeMetrics: shape and sanity of the stats endpoint on a fresh
// epoch.
func TestServeMetrics(t *testing.T) {
	ts := newServer(t, Config{})
	mr := ts.getMetrics(t)
	if mr.Epoch != 1 || mr.K != 2 || mr.N != 4 {
		t.Fatalf("header (epoch=%d k=%d n=%d), want (1,2,4)", mr.Epoch, mr.K, mr.N)
	}
	if mr.FC <= 0 || mr.StorageArcs <= 0 {
		t.Fatalf("fc=%v storage_arcs=%d, want positive", mr.FC, mr.StorageArcs)
	}
	if len(mr.Algorithms) != len(costmodel.Algos()) {
		t.Fatalf("%d algorithm rows, want %d", len(mr.Algorithms), len(costmodel.Algos()))
	}
	for _, am := range mr.Algorithms {
		if am.ParallelCost <= 0 || am.FV <= 0 {
			t.Fatalf("algo %s: cost=%v fv=%v, want positive", am.Algo, am.ParallelCost, am.FV)
		}
	}
	if mr.Store.Failed || mr.Server.Draining {
		t.Fatal("fresh server reports failure/draining")
	}
}

// pickLiveEdge returns a served edge whose endpoints keep positive base
// out-degree — safe to delete and re-insert under PR (which divides by
// base out-degree).
func pickLiveEdge(t testing.TB, g *graph.Graph) (graph.VertexID, graph.VertexID) {
	t.Helper()
	var eu, ev graph.VertexID
	found := false
	g.Edges(func(u, v graph.VertexID) bool {
		if g.OutDegree(u) > 0 && g.OutDegree(v) > 0 {
			eu, ev, found = u, v, true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("no safe edge in test graph")
	}
	return eu, ev
}

// TestServeUpdatesPublishEpochs: a durable update batch bumps the
// epoch, becomes visible to subsequent reads, and the ack carries the
// store's new LSN.
func TestServeUpdatesPublishEpochs(t *testing.T) {
	ts := newServer(t, Config{})
	u, v := pickLiveEdge(t, ts.g)
	_, before, _ := ts.getVertex(t, int(u))

	status, ur, eb := ts.postUpdates(t, fmt.Sprintf("- %d %d\ncommit\n", u, v))
	if status != http.StatusOK {
		t.Fatalf("updates: status %d (%v)", status, eb)
	}
	if ur.Epoch != 2 || !ur.Durable || !ur.Visible || ur.Deletes != 1 || ur.Inserts != 0 {
		t.Fatalf("ack %+v, want epoch 2, durable+visible, 1 delete", ur)
	}
	if ts.Epoch() != 2 {
		t.Fatalf("server epoch %d, want 2", ts.Epoch())
	}
	_, after, _ := ts.getVertex(t, int(u))
	if after.Epoch != 2 {
		t.Fatalf("read epoch %d, want 2", after.Epoch)
	}
	dropped := false
	for j := range after.Partitions {
		if after.Partitions[j].OutDegree < before.Partitions[j].OutDegree {
			dropped = true
		}
		for _, w := range after.Partitions[j].Out {
			if graph.VertexID(w) == v {
				t.Fatalf("deleted arc (%d,%d) still served in partition %d", u, v, j)
			}
		}
	}
	if !dropped {
		t.Fatalf("delete of (%d,%d) changed no partition's out-degree", u, v)
	}

	status, ur2, eb := ts.postUpdates(t, fmt.Sprintf("+ %d %d\ncommit\n", u, v))
	if status != http.StatusOK || ur2.Epoch != 3 || ur2.Inserts != 1 {
		t.Fatalf("re-insert: status %d ack %+v (%v)", status, ur2, eb)
	}
	if ur2.LSN <= ur.LSN {
		t.Fatalf("LSN did not advance: %d then %d", ur.LSN, ur2.LSN)
	}
	mr := ts.getMetrics(t)
	if mr.Store.LSN != ur2.LSN || mr.Server.EpochSwaps != 2 {
		t.Fatalf("metrics lsn=%d swaps=%d, want lsn=%d swaps=2", mr.Store.LSN, mr.Server.EpochSwaps, ur2.LSN)
	}
}

// TestServeAdmissionControl: more concurrent runs than MaxInflight gets
// 429s, never queue collapse; the admitted requests all succeed.
func TestServeAdmissionControl(t *testing.T) {
	ts := newServer(t, Config{MaxInflight: 2, SessionsPerAlgo: 1})
	const clients = 8
	var ok, rejected, other int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(runRequest{Algo: "WCC"})
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			mu.Lock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				rejected++
			default:
				other++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d unexpected statuses", other)
	}
	if ok == 0 {
		t.Fatal("no run admitted")
	}
	// Re-run sequentially: everything admitted now.
	status, _, eb := ts.postRun(t, runRequest{Algo: "WCC"})
	if status != http.StatusOK {
		t.Fatalf("post-burst run: status %d (%v)", status, eb)
	}
	t.Logf("burst: %d ok, %d rejected", ok, rejected)
}
