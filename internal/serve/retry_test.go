package serve

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"adp/internal/costmodel"
	"adp/internal/fault"
	"adp/internal/graph"
	"adp/internal/store"
)

// TestServeApplyRetryLadder: a transient fsync burst SHORTER than the
// retry ladder is absorbed in place — the batch is acked durable, the
// write path never poisons, and the retries show up in /metrics. A
// reopen then recovers every acked batch.
func TestServeApplyRetryLadder(t *testing.T) {
	// Create issues 2 fsyncs (snapshot + segment header); the first
	// update commit is sync #2. Fail it and the first retry; the second
	// retry (sync #4) lands. Ladder default is 3 retries, so the burst
	// is absorbed.
	inj := fault.NewDiskInjector(
		fault.DiskEvent{Kind: fault.SyncErr, N: 2},
		fault.DiskEvent{Kind: fault.SyncErr, N: 3},
	)
	dir := t.TempDir() + "/store"
	ts := startServer(t, dir, true,
		Config{ApplyRetryBase: time.Millisecond},
		store.Options{Injector: inj})

	var live []graph.VertexID
	ts.g.Edges(func(u, v graph.VertexID) bool {
		if u < v {
			live = append(live, u, v)
		}
		return len(live) < 8
	})

	// The faulted batch still acks: durable, visible in epoch 2.
	stream := fmt.Sprintf("- %d %d\n", live[0], live[1])
	status, ur, eb := ts.postUpdates(t, stream)
	if status != http.StatusOK {
		t.Fatalf("batch under transient fsync burst: status %d (%v)", status, eb)
	}
	if !ur.Durable || ur.Epoch != 2 {
		t.Fatalf("ack = %+v, want durable in epoch 2", ur)
	}

	m := ts.getMetrics(t)
	if m.Store.Failed {
		t.Fatal("transient burst poisoned the write path")
	}
	if m.Server.ApplyRetries != 2 {
		t.Fatalf("apply_retries = %d, want 2", m.Server.ApplyRetries)
	}

	// The write path is fully live afterwards.
	stream2 := fmt.Sprintf("- %d %d\n", live[2], live[3])
	if status, ur2, eb := ts.postUpdates(t, stream2); status != http.StatusOK || ur2.Epoch != 3 {
		t.Fatalf("post-burst batch: status %d epoch %d (%v)", status, ur2.Epoch, eb)
	}

	if err := ts.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Reopen: both acked batches are in the committed prefix.
	st2, info, err := store.Open(dir, ts.g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info.Damage != nil || info.DiscardedMutations != 0 {
		t.Fatalf("recovery not clean: %v", info)
	}
	want := serveComposite(t, serveGraph())
	if !want.DeleteEdge(live[0], live[1]) || !want.DeleteEdge(live[2], live[3]) {
		t.Fatal("oracle delete failed")
	}
	if err := st2.Composite().EqualState(want); err != nil {
		t.Fatalf("recovered state diverges: %v", err)
	}
}

// TestServeApplyRetryExhaustion: a burst longer than the ladder
// poisons exactly as the pre-ladder behavior did, after the configured
// number of retries.
func TestServeApplyRetryExhaustion(t *testing.T) {
	inj := fault.NewDiskInjector(
		fault.DiskEvent{Kind: fault.SyncErr, N: 2},
		fault.DiskEvent{Kind: fault.SyncErr, N: 3},
		fault.DiskEvent{Kind: fault.SyncErr, N: 4},
	)
	ts := startServer(t, t.TempDir()+"/store", true,
		Config{ApplyRetries: 1, ApplyRetryBase: time.Millisecond},
		store.Options{Injector: inj})

	var live []graph.VertexID
	ts.g.Edges(func(u, v graph.VertexID) bool {
		if u < v {
			live = append(live, u, v)
		}
		return len(live) < 4
	})
	stream := fmt.Sprintf("- %d %d\n", live[0], live[1])
	status, _, eb := ts.postUpdates(t, stream)
	if status != http.StatusInternalServerError || eb.Class != "store_failed" {
		t.Fatalf("exhausted ladder: status %d class %q, want 500 store_failed", status, eb.Class)
	}
	m := ts.getMetrics(t)
	if !m.Store.Failed {
		t.Fatal("exhausted ladder did not poison the write path")
	}
	if m.Server.ApplyRetries != 1 {
		t.Fatalf("apply_retries = %d, want 1 (ApplyRetries: 1)", m.Server.ApplyRetries)
	}
	// Reads keep serving the last good epoch.
	if status, rr, _ := ts.postRun(t, runReqFor(costmodel.WCC)); status != http.StatusOK || rr.Epoch != 1 {
		t.Fatalf("post-poison read: status %d epoch %d", status, rr.Epoch)
	}
}
