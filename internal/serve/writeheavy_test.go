package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"adp/internal/composite"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/store"
)

// The write-heavy suite drives the COW publication path the way the
// ISSUE's target workload does: updates-dominant traffic, small waves,
// a graph big enough that an O(graph) publish would dominate. CI's
// serve-matrix runs it under -race (the TestServe name prefix matches
// the suite filter); ADP_WRITEHEAVY_LARGE=1 scales the graph up for
// the dedicated write-heavy job.

// writeHeavyGraph builds the write-heavy fixture: 10x the default
// serve graph (40x with ADP_WRITEHEAVY_LARGE=1), 8 fragments, k=2.
func writeHeavyGraph(t testing.TB) (*graph.Graph, *composite.Composite) {
	t.Helper()
	n := 4000
	if os.Getenv("ADP_WRITEHEAVY_LARGE") != "" {
		n = 16000
	}
	g := gen.PowerLaw(gen.PowerLawConfig{N: n, AvgDeg: 6, Exponent: 2.1, Directed: false, Seed: 17})
	p1, err := partitioner.HashEdgeCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 8
	}
	p2, err := partition.FromVertexAssignment(g, assign, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return g, c
}

// writeHeavyBatches builds numBatches small delete/re-insert waves
// over distinct safe edges of g, returning both the parsed mutations
// (for oracle replay) and the wire streams.
func writeHeavyBatches(t testing.TB, g *graph.Graph, numBatches, waveSize int) (batches [][]store.Mutation, streams []string) {
	t.Helper()
	type edge struct{ u, v graph.VertexID }
	var safe []edge
	g.Edges(func(u, v graph.VertexID) bool {
		if u < v && g.OutDegree(u) > 0 && g.OutDegree(v) > 0 {
			safe = append(safe, edge{u, v})
		}
		return len(safe) < numBatches*waveSize
	})
	if len(safe) < numBatches*waveSize {
		t.Fatalf("only %d safe edges for %d batches of %d", len(safe), numBatches, waveSize)
	}
	for i := 0; i < numBatches; i++ {
		var s string
		for m := 0; m < waveSize; m++ {
			e := safe[i*waveSize+m]
			// Delete then re-insert in the SAME batch: the edge set is
			// unchanged at every epoch boundary, but the coherence index
			// and the touched fragments churn — the pure COW overwrite
			// pattern.
			s += fmt.Sprintf("- %d %d\n+ %d %d\n", e.u, e.v, e.u, e.v)
		}
		s += "commit\n"
		muts, err := store.ParseUpdates(strings.NewReader(s))
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, muts)
		streams = append(streams, s)
	}
	return batches, streams
}

// TestServeWriteHeavyIsolation is the updates-dominant isolation
// suite: one writer saturates /updates with small waves on the large
// graph while readers sample vertices; every response must match an
// offline oracle replay of its epoch's prefix, /metrics must show the
// published epochs actually sharing most fragments, and a drain +
// reopen must recover exactly the acked state.
func TestServeWriteHeavyIsolation(t *testing.T) {
	g, comp := writeHeavyGraph(t)
	dir := filepath.Join(t.TempDir(), "store")
	ts := startServerOn(t, dir, g, comp, Config{SessionsPerAlgo: 2, MaxInflight: 64, UpdateQueue: 64}, store.Options{})

	const (
		numBatches = 24
		waveSize   = 3
	)
	batches, streams := writeHeavyBatches(t, g, numBatches, waveSize)

	// Sample vertices: the endpoints the waves touch.
	var sampleIDs []int
	for _, b := range batches {
		sampleIDs = append(sampleIDs, int(b[0].U), int(b[0].V))
	}

	type vertKey struct {
		epoch uint64
		id    int
	}
	var (
		obsMu   sync.Mutex
		vertObs = map[vertKey]vertexResponse{}
	)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := sampleIDs[(r*13+i)%len(sampleIDs)]
				i++
				status, vr, _ := ts.getVertex(t, id)
				if status == http.StatusOK {
					obsMu.Lock()
					k := vertKey{vr.Epoch, int(vr.Vertex)}
					if _, ok := vertObs[k]; !ok {
						vertObs[k] = vr
					}
					obsMu.Unlock()
				}
			}
		}(r)
	}

	// Updates-dominant writer: back-to-back batches, no pacing beyond a
	// tiny yield so readers sample a few distinct epochs.
	prefixByEpoch := map[uint64]int{1: 0}
	for i := 0; i < numBatches; i++ {
		status, ur, eb := ts.postUpdates(t, streams[i])
		if status != http.StatusOK {
			t.Fatalf("batch %d: status %d (%v)", i, status, eb)
		}
		if !ur.Visible {
			t.Fatalf("batch %d: durable but not visible: %+v", i, ur)
		}
		prefixByEpoch[ur.Epoch] = i + 1
		if i%4 == 3 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The sharing contract, observed not assumed: after small waves on
	// 8-fragment partitions the last publish must have shared most
	// fragments and most index maps, and the newly materialized bytes
	// must be a strict minority of the epoch's resident size.
	mr := ts.getMetrics(t)
	em := mr.Epochs
	if em.SharedFragments <= em.OwnedFragments {
		t.Errorf("COW publish shared %d fragments vs %d owned; small waves should share the majority", em.SharedFragments, em.OwnedFragments)
	}
	// Owned index maps are O(wave), not O(n): each delete+re-insert
	// pair can dirty at most the deleted arc's map and the re-routed
	// destination's map.
	if em.OwnedIndexMaps > 2*waveSize {
		t.Errorf("COW publish owned %d index maps; a %d-edge wave should dirty at most %d", em.OwnedIndexMaps, waveSize, 2*waveSize)
	}
	if em.SharedIndexMaps == 0 {
		t.Error("COW publish shared no index maps")
	}
	if em.ApproxBytes <= 0 || em.ApproxNewBytes <= 0 || em.ApproxNewBytes*2 >= em.ApproxBytes {
		t.Errorf("epoch memory accounting implausible: new=%d total=%d", em.ApproxNewBytes, em.ApproxBytes)
	}
	if em.Retained < 1 {
		t.Errorf("epochs retained = %d, want >= 1", em.Retained)
	}

	close(stop)
	readerWG.Wait()

	// Oracle: replay each epoch's prefix and check every recorded
	// vertex observation bitwise.
	_, oracle := writeHeavyGraph(t)
	epochs := make([]uint64, 0, len(prefixByEpoch))
	for e := range prefixByEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	checked, prefix := 0, 0
	for _, e := range epochs {
		replayPrefix(t, oracle, batches, prefix, prefixByEpoch[e])
		prefix = prefixByEpoch[e]
		for k, vr := range vertObs {
			if k.epoch != e {
				continue
			}
			v := graph.VertexID(k.id)
			for j := 0; j < oracle.K(); j++ {
				p, pl := oracle.Partition(j), vr.Partitions[j]
				if pl.Master != p.Master(v) || len(pl.Copies) != len(p.Copies(v)) {
					t.Errorf("epoch %d vertex %d p%d: placement (%d,%d copies) vs offline (%d,%d)",
						e, k.id, j, pl.Master, len(pl.Copies), p.Master(v), len(p.Copies(v)))
				}
				at := p.CompleteFragment(v)
				if at < 0 {
					at = p.Master(v)
				}
				adj := p.Fragment(at).Adjacency(v)
				wantOut := 0
				if adj != nil {
					wantOut = len(adj.Out)
				}
				if pl.OutDegree != wantOut {
					t.Errorf("epoch %d vertex %d p%d: out-degree %d vs offline %d", e, k.id, j, pl.OutDegree, wantOut)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no vertex observations verified")
	}

	// Drain, reopen, and compare the recovered composite against the
	// full oracle replay — the durable state the COW path must leave
	// behind is exactly what a clean sequential apply produces.
	replayPrefix(t, oracle, batches, prefix, numBatches)
	if err := ts.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, info, err := store.Open(dir, g, store.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	if info.Replayed == 0 {
		t.Error("reopen replayed nothing; expected a committed log")
	}
	if err := st.Composite().EqualState(oracle); err != nil {
		t.Fatalf("recovered state diverges from oracle: %v", err)
	}
	t.Logf("verified %d vertex observations across %d epochs; last publish shared %d/%d fragments",
		checked, len(epochs), em.SharedFragments, em.SharedFragments+em.OwnedFragments)
}

// TestServeWriteHeavyChaos runs the same updates-dominant workload
// with engine faults injected into every /run session: reader crashes
// and stragglers must never perturb the write path or the published
// epochs, and the drained store must still recover to the exact acked
// state.
func TestServeWriteHeavyChaos(t *testing.T) {
	g, comp := writeHeavyGraph(t)
	dir := filepath.Join(t.TempDir(), "store")
	runInj := fault.NewInjector(
		fault.Event{Kind: fault.Crash, Superstep: 1, Worker: 0},
		fault.Event{Kind: fault.Transient, Superstep: 2, Worker: 1},
		fault.Event{Kind: fault.Straggler, Superstep: 1, Worker: 2, Delay: time.Millisecond},
	)
	ts := startServerOn(t, dir, g, comp,
		Config{SessionsPerAlgo: 2, MaxInflight: 32, UpdateQueue: 64, RunInjector: runInj},
		store.Options{})

	const (
		numBatches = 16
		waveSize   = 2
	)
	batches, streams := writeHeavyBatches(t, g, numBatches, waveSize)

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := isolationAlgos[(r+i)%len(isolationAlgos)]
				ts.postRun(t, runReqFor(a)) // faults injected; status may legitimately vary
			}
		}(r)
	}

	lastEpoch := uint64(0)
	for i := 0; i < numBatches; i++ {
		status, ur, eb := ts.postUpdates(t, streams[i])
		if status != http.StatusOK {
			t.Fatalf("batch %d: status %d (%v)", i, status, eb)
		}
		if !ur.Visible {
			t.Fatalf("batch %d: durable but not visible: %+v", i, ur)
		}
		if ur.Epoch <= lastEpoch {
			t.Fatalf("batch %d: epoch went backwards (%d after %d)", i, ur.Epoch, lastEpoch)
		}
		lastEpoch = ur.Epoch
	}
	close(stop)
	readerWG.Wait()

	if err := ts.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, oracle := writeHeavyGraph(t)
	replayPrefix(t, oracle, batches, 0, numBatches)
	st, _, err := store.Open(dir, g, store.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	if err := st.Composite().EqualState(oracle); err != nil {
		t.Fatalf("recovered state diverges from oracle after chaos: %v", err)
	}
}
