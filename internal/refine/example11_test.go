package refine

import (
	"math"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
)

// Example 11 walks E2H over the Fig. 1(b) edge-cut with the learned
// hCN/gCN: budget B = (ChCN(F1)+ChCN(F2))/2 ≈ 1.72e-3 ms, F1
// overloaded, and the refined hybrid cut reduces the parallel cost of
// CN. This test replays it on our reconstruction of G1.
func TestExample11E2HOnFigure1(t *testing.T) {
	b := graph.NewBuilder(10)
	for _, e := range [][2]graph.VertexID{
		{0, 5}, {0, 6}, {0, 7}, {1, 5}, {1, 6}, {2, 6}, {2, 7}, {2, 8},
		{3, 6}, {3, 7}, {3, 9}, {4, 8}, {4, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	p, err := partition.FromVertexAssignment(g, []int{0, 0, 1, 1, 1, 0, 0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.Reference(costmodel.CN)
	before := costmodel.Evaluate(p, m)
	// Example 11 (1): ChCN(F1) = 2.69e-3, ChCN(F2) = 7.45e-4, budget
	// B = 1.72e-3 (within rounding).
	if math.Abs(before[0].Comp-2.69e-3) > 2e-5 || math.Abs(before[1].Comp-7.45e-4) > 2e-5 {
		t.Fatalf("fragment costs %v do not match Example 11", before)
	}
	stats := E2H(p, m, Config{})
	if math.Abs(stats.Budget-1.72e-3) > 2e-5 {
		t.Fatalf("budget = %v, Example 11 computes 1.72e-3", stats.Budget)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Example 11 (6): the hybrid cut's parallel cost drops below the
	// original edge-cut's.
	after := costmodel.Evaluate(p, m)
	if costmodel.ParallelCost(after) >= costmodel.ParallelCost(before) {
		t.Fatalf("E2H did not reduce Fig 1(b)'s parallel cost: %v -> %v",
			costmodel.ParallelCost(before), costmodel.ParallelCost(after))
	}
	// Rebalancing happened. The example's trace migrates t3 and splits
	// t2; our BFS order keeps t3 (it fits the retained sub-fragment)
	// and resolves the overload by splitting t2 alone — same
	// algorithm, different but equally valid greedy trace.
	if stats.Migrated+stats.SplitEdges == 0 {
		t.Error("no rebalancing operation on the Example 11 input")
	}
	if !p.IsBorder(6) { // t2 must now be split across both fragments
		t.Error("t2 was not split")
	}
}
