package refine

import (
	"reflect"
	"runtime"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

func gridPartition(t testing.TB, g *graph.Graph, n int) *partition.Partition {
	t.Helper()
	p, err := partitioner.GridVertexCut(g, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// loadModel is a synthetic destination-capacity model for driving
// parallelMigrate without a real partition: each candidate vertex has
// a fixed weight and a destination accepts it while its accumulated
// load stays within the budget. Probes are read-only between barriers,
// exactly like the tracker-backed probes.
type loadModel struct {
	weight map[graph.VertexID]float64
	loads  map[int]float64
}

func (lm *loadModel) probe(_ *costmodel.Tracker, c candidate, j int, budget float64) bool {
	return lm.loads[j]+lm.weight[c.v] <= budget
}

func (lm *loadModel) apply(t *testing.T, budget float64) applyFunc {
	return func(_ *costmodel.Tracker, c candidate, j int, stats *Stats) {
		if lm.loads[j]+lm.weight[c.v] > budget {
			t.Errorf("barrier overshoot: applying v%d (w=%v) onto %d at load %v exceeds budget %v",
				c.v, lm.weight[c.v], j, lm.loads[j], budget)
		}
		lm.loads[j] += lm.weight[c.v]
		stats.Migrated++
	}
}

func vids(cs []candidate) []graph.VertexID {
	out := []graph.VertexID{}
	for _, c := range cs {
		out = append(out, c.v)
	}
	return out
}

// TestParallelMigrateLeftoverAndBudget is the table test for the
// barrier semantics: candidates rejected by every underloaded
// destination come back as leftovers (the ESplit/VMerge input), and
// concurrent probes against the superstep-start state can never
// overshoot the budget thanks to the apply-time re-check.
func TestParallelMigrateLeftoverAndBudget(t *testing.T) {
	cases := []struct {
		name         string
		weights      map[graph.VertexID]float64
		candidates   []candidate
		under        []int
		budget       float64
		batchSize    int
		wantLeftover []graph.VertexID
		wantLoads    map[int]float64
		wantMigrated int
	}{
		{
			name:         "all fit first destination",
			weights:      map[graph.VertexID]float64{1: 2, 2: 3, 3: 4},
			candidates:   []candidate{{frag: 9, v: 1}, {frag: 9, v: 2}, {frag: 9, v: 3}},
			under:        []int{0, 1},
			budget:       10,
			batchSize:    8,
			wantLeftover: []graph.VertexID{},
			wantLoads:    map[int]float64{0: 9},
			wantMigrated: 3,
		},
		{
			name:         "rejected everywhere returns every candidate",
			weights:      map[graph.VertexID]float64{1: 7, 2: 8},
			candidates:   []candidate{{frag: 9, v: 1}, {frag: 9, v: 2}},
			under:        []int{0, 1, 2},
			budget:       5,
			batchSize:    8,
			wantLeftover: []graph.VertexID{1, 2},
			wantLoads:    map[int]float64{},
			wantMigrated: 0,
		},
		{
			name:    "optimistic batch cannot overshoot at the barrier",
			weights: map[graph.VertexID]float64{1: 6, 2: 6, 3: 6},
			// All three probe against load 0 and pass; only the first
			// survives the apply-time re-check, the rest are rejected
			// by the single destination and become leftovers.
			candidates:   []candidate{{frag: 9, v: 1}, {frag: 9, v: 2}, {frag: 9, v: 3}},
			under:        []int{4},
			budget:       10,
			batchSize:    8,
			wantLeftover: []graph.VertexID{2, 3},
			wantLoads:    map[int]float64{4: 6},
			wantMigrated: 1,
		},
		{
			name:    "rejected by first destination lands on second",
			weights: map[graph.VertexID]float64{1: 6, 2: 6},
			// Superstep 1: both target under[0], one applies. The
			// reject retries under[1] next superstep and fits.
			candidates:   []candidate{{frag: 9, v: 1}, {frag: 9, v: 2}},
			under:        []int{0, 1},
			budget:       6,
			batchSize:    8,
			wantLeftover: []graph.VertexID{},
			wantLoads:    map[int]float64{0: 6, 1: 6},
			wantMigrated: 2,
		},
		{
			name:         "exact budget boundary is accepted",
			weights:      map[graph.VertexID]float64{1: 5, 2: 5},
			candidates:   []candidate{{frag: 9, v: 1}, {frag: 9, v: 2}},
			under:        []int{3},
			budget:       10,
			batchSize:    1,
			wantLeftover: []graph.VertexID{},
			wantLoads:    map[int]float64{3: 10},
			wantMigrated: 2,
		},
		{
			name:    "own fragment is skipped in the rotation",
			weights: map[graph.VertexID]float64{1: 2},
			// under[0] is the candidate's own fragment: the schedule
			// must route it to under[1] instead of migrating in place.
			candidates:   []candidate{{frag: 0, v: 1}},
			under:        []int{0, 1},
			budget:       10,
			batchSize:    8,
			wantLeftover: []graph.VertexID{},
			wantLoads:    map[int]float64{1: 2},
			wantMigrated: 1,
		},
		{
			name:         "no underloaded destinations returns input unchanged",
			weights:      map[graph.VertexID]float64{1: 1, 2: 1},
			candidates:   []candidate{{frag: 9, v: 1}, {frag: 9, v: 2}},
			under:        nil,
			budget:       10,
			batchSize:    8,
			wantLeftover: []graph.VertexID{1, 2},
			wantLoads:    map[int]float64{},
			wantMigrated: 0,
		},
		{
			name:         "zero candidates",
			weights:      map[graph.VertexID]float64{},
			candidates:   nil,
			under:        []int{0},
			budget:       10,
			batchSize:    8,
			wantLeftover: []graph.VertexID{},
			wantLoads:    map[int]float64{},
			wantMigrated: 0,
		},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			pl := pool.New(workers)
			t.Run(tc.name, func(t *testing.T) {
				lm := &loadModel{weight: tc.weights, loads: map[int]float64{}}
				stats := &Stats{}
				leftover := parallelMigrate(pl, nil, tc.candidates, tc.under, tc.budget,
					tc.batchSize, lm.probe, lm.apply(t, tc.budget), stats)
				if got := vids(leftover); !reflect.DeepEqual(got, tc.wantLeftover) {
					t.Errorf("workers=%d: leftover = %v, want %v", workers, got, tc.wantLeftover)
				}
				for j, want := range tc.wantLoads {
					if lm.loads[j] != want {
						t.Errorf("workers=%d: load[%d] = %v, want %v", workers, j, lm.loads[j], want)
					}
				}
				for j, got := range lm.loads {
					if got > tc.budget {
						t.Errorf("workers=%d: destination %d ended over budget: %v > %v", workers, j, got, tc.budget)
					}
					if _, ok := tc.wantLoads[j]; !ok && got != 0 {
						t.Errorf("workers=%d: unexpected load on destination %d: %v", workers, j, got)
					}
				}
				if stats.Migrated != tc.wantMigrated {
					t.Errorf("workers=%d: Migrated = %d, want %d", workers, stats.Migrated, tc.wantMigrated)
				}
			})
			pl.Close()
		}
	}
}

// statsFingerprint projects Stats onto its schedule-dependent fields
// (wall-clock durations excluded).
func statsFingerprint(s *Stats) [5]float64 {
	return [5]float64{s.Budget, float64(s.Migrated), float64(s.SplitEdges), float64(s.Merged), float64(s.MastersMoved)}
}

// TestRefinerStatsDeterministicAcrossWorkerCounts locks in the
// acceptance criterion that refiner Stats — and the refined partition
// costs behind them — are bitwise identical for pool worker counts 1,
// 4 and GOMAXPROCS.
func TestRefinerStatsDeterministicAcrossWorkerCounts(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}

	t.Run("ParE2H", func(t *testing.T) {
		g := skewedDirected()
		m := costmodel.Reference(costmodel.CN)
		base := hubConcentratedEdgeCut(t, g, 4)
		var refStats [5]float64
		var refCosts []costmodel.FragCost
		for i, w := range counts {
			pl := pool.New(w)
			p := base.Clone()
			stats := ParE2H(p, m, Config{Pool: pl})
			costs := costmodel.Evaluate(p, m)
			pl.Close()
			if i == 0 {
				refStats, refCosts = statsFingerprint(stats), costs
				continue
			}
			if got := statsFingerprint(stats); got != refStats {
				t.Errorf("workers=%d: stats %v differ from serial %v", w, got, refStats)
			}
			if !reflect.DeepEqual(costs, refCosts) {
				t.Errorf("workers=%d: refined fragment costs differ from serial run", w)
			}
		}
	})

	t.Run("ParV2H", func(t *testing.T) {
		g := skewedUndirected()
		m := costmodel.Reference(costmodel.TC)
		base := gridPartition(t, g, 4)
		var refStats [5]float64
		var refCosts []costmodel.FragCost
		for i, w := range counts {
			pl := pool.New(w)
			p := base.Clone()
			stats := ParV2H(p, m, Config{Pool: pl})
			costs := costmodel.Evaluate(p, m)
			pl.Close()
			if i == 0 {
				refStats, refCosts = statsFingerprint(stats), costs
				continue
			}
			if got := statsFingerprint(stats); got != refStats {
				t.Errorf("workers=%d: stats %v differ from serial %v", w, got, refStats)
			}
			if !reflect.DeepEqual(costs, refCosts) {
				t.Errorf("workers=%d: refined fragment costs differ from serial run", w)
			}
		}
	})
}
