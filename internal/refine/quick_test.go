package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

// Property: E2H on ANY random edge-cut of ANY random graph, for ANY of
// the five cost models, always yields a valid partition and never
// increases the modelled parallel cost by more than the probe
// tolerance.
func TestQuickE2HAlwaysValid(t *testing.T) {
	f := func(seed int64, algoRaw uint8, nRaw uint8) bool {
		n := int(nRaw)%3 + 2
		algo := costmodel.Algo(int(algoRaw) % 5)
		g := gen.PowerLaw(gen.PowerLawConfig{N: 250, AvgDeg: 5, Exponent: 2.1, Directed: algo != costmodel.TC, Seed: seed})
		rng := rand.New(rand.NewSource(seed + 1))
		assign := make([]int, g.NumVertices())
		for i := range assign {
			assign[i] = rng.Intn(n)
		}
		p, err := partition.FromVertexAssignment(g, assign, n)
		if err != nil {
			return false
		}
		m := costmodel.Reference(algo)
		before := parallelCost(p, m)
		E2H(p, m, Config{})
		if p.Validate() != nil {
			return false
		}
		return parallelCost(p, m) <= before*1.10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: V2H on ANY random vertex-cut keeps the partition valid and
// the cost bounded.
func TestQuickV2HAlwaysValid(t *testing.T) {
	f := func(seed int64, algoRaw uint8, nRaw uint8) bool {
		n := int(nRaw)%3 + 2
		algo := costmodel.Algo(int(algoRaw) % 5)
		g := gen.PowerLaw(gen.PowerLawConfig{N: 220, AvgDeg: 4, Exponent: 2.2, Directed: algo != costmodel.TC, Seed: seed})
		p, err := partitioner.GridVertexCut(g, n)
		if err != nil {
			return false
		}
		m := costmodel.Reference(algo)
		before := parallelCost(p, m)
		V2H(p, m, Config{})
		if p.Validate() != nil {
			return false
		}
		return parallelCost(p, m) <= before*1.10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: refinement never loses or invents graph arcs — coverage is
// exactly E, checked by Validate plus the arc-count lower bound
// (storage ≥ |E|).
func TestQuickRefinementPreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(200, 4, true, seed)
		p, err := partitioner.FennelEdgeCut(g, 3, partitioner.FennelConfig{})
		if err != nil {
			return false
		}
		E2H(p, costmodel.Reference(costmodel.CN), Config{})
		if p.Validate() != nil {
			return false
		}
		return int64(p.StorageArcs()) >= g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: ApplyUpdates with empty update sets drops and routes
// nothing, stays valid, and never worsens the modelled parallel cost
// beyond the rebalance tolerance. (It is not a strict identity: the
// embedded rebalance pass may still shuffle borderline candidates.)
func TestQuickApplyUpdatesIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.PowerLaw(gen.PowerLawConfig{N: 200, AvgDeg: 4, Exponent: 2.3, Directed: true, Seed: seed})
		m := costmodel.Reference(costmodel.PR)
		p, err := partitioner.FennelEdgeCut(g, 3, partitioner.FennelConfig{})
		if err != nil {
			return false
		}
		E2H(p, m, Config{})
		before := parallelCost(p, m)
		np, stats, err := ApplyUpdates(p, m, nil, nil, Config{})
		if err != nil || np.Validate() != nil {
			return false
		}
		if stats.RoutedArcs != 0 || stats.DroppedArcs != 0 {
			return false
		}
		return parallelCost(np, m) <= before*1.10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
