package refine

import (
	"context"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// ProbeLoopAllocs measures the heap allocations of the migrate
// superstep loop on warmed scratch: a deterministic EMigrate workload
// whose probes all reject (so only the probe plane runs — batching,
// routing, concurrent probes, ordered carry-over) is driven repeatedly
// through parallelMigrateCtx with a shared migrateScratch, and the
// marginal allocations per full run are returned via
// testing.AllocsPerRun. Each run spans several supersteps, so 0 here
// bounds the per-superstep count at 0 — the figure adbench reports as
// probe_superstep_allocs. Measured on the serial pool, like the
// engine's step-loop allocation lock: the worker handoff of larger
// pools is the pool package's own concern.
func ProbeLoopAllocs() float64 {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 600, AvgDeg: 6, Exponent: 2.2, Directed: true, Seed: 11})
	m := costmodel.CostModel{
		H: &costmodel.Model{
			Terms:   costmodel.PolyTerms([]costmodel.VarKind{costmodel.DLIn, costmodel.DGIn}, 2),
			Weights: []float64{1.02e-6, 3e-8, 1.04e-6, 2e-9, 9.23e-5, 5e-9},
		},
		G: &costmodel.Model{
			Terms:   costmodel.PolyTerms([]costmodel.VarKind{costmodel.Repl}, 1),
			Weights: []float64{1.1e-4, 6.6e-4},
		},
	}
	ec, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	if err != nil {
		return -1
	}
	tr := costmodel.NewTracker(ec, m)
	candidates := getCandidates(tr, 0, 0, true)
	if len(candidates) == 0 {
		return -1
	}
	under := []int{1, 2, 3}
	pl := pool.Serial()
	sc := &migrateScratch{}
	stats := &Stats{}
	ctx := context.Background()
	run := func() {
		// Budget -1 rejects every probe: nothing is applied, the
		// partition and tracker stay untouched, and every superstep
		// buffer is reused from sc.
		_, _ = parallelMigrateCtx(ctx, pl, tr, candidates, under, -1, 64, eMigrateProbe, eMigrateApply, stats, sc)
	}
	run() // warm the scratch
	return testing.AllocsPerRun(20, run)
}
