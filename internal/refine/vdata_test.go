package refine

import (
	"testing"

	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
)

// The Section-3.1 remark: when vertices carry mutable payloads (a data
// array Ary scanned during computation), the cost model must include
// |Ary| — and a refinement driven by such a model balances *weighted*
// load that degree-only metrics cannot see.
func TestVDataWeightedRefinement(t *testing.T) {
	g := gen.ErdosRenyi(800, 5, true, 33)
	// Uniform hash partition: perfectly balanced by count.
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % 4
	}
	p, err := partition.FromVertexAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fragment 0's vertices carry payloads 50× larger.
	for v := 0; v < g.NumVertices(); v += 4 {
		p.SetVertexWeight(graph.VertexID(v), 50)
	}
	// hA ∝ dL+·|Ary|: scanning the payload per incoming message.
	m := costmodel.CostModel{
		H: costmodel.Func(func(x costmodel.Vars) float64 {
			return x[costmodel.DLIn] * x[costmodel.VData]
		}),
		G: costmodel.Zero,
	}
	before := costmodel.Evaluate(p, m)
	if lam := costmodel.LambdaCost(before); lam < 1.0 {
		t.Fatalf("weighted load should be skewed before refinement, λ = %v", lam)
	}
	E2H(p, m, Config{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	after := costmodel.Evaluate(p, m)
	if lam := costmodel.LambdaCost(after); lam > 0.5 {
		t.Fatalf("weighted load still skewed after refinement, λ = %v", lam)
	}
	if costmodel.ParallelCost(after) >= costmodel.ParallelCost(before) {
		t.Fatal("weighted refinement did not reduce the parallel cost")
	}
}

// Weights survive cloning and default to 1.
func TestVertexWeightPlumbing(t *testing.T) {
	g := gen.ErdosRenyi(20, 2, true, 1)
	p, err := partition.FromVertexAssignment(g, make([]int, 20), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.VertexWeight(3) != 1 {
		t.Fatal("default weight not 1")
	}
	p.SetVertexWeight(3, 7)
	q := p.Clone()
	if q.VertexWeight(3) != 7 || q.VertexWeight(4) != 1 {
		t.Fatal("weights lost in clone")
	}
	x := costmodel.Extract(p, 0, 3)
	if x[costmodel.VData] != 7 {
		t.Fatalf("Extract VData = %v", x[costmodel.VData])
	}
}
