package refine

import (
	"context"
	"sort"
	"time"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
)

// E2H extends the edge-cut partition p into a hybrid partition that
// reduces the parallel cost of the algorithm modelled by m (Fig. 3).
// The partition is refined in place.
func E2H(p *partition.Partition, m costmodel.CostModel, cfg Config) *Stats {
	stats, _ := E2HCtx(context.Background(), p, m, cfg)
	return stats
}

// E2HCtx is E2H under a context. Cancellation is observed between
// candidates, supersteps and phases; the partial Stats and ctx error
// are returned, and the partially refined partition remains valid.
func E2HCtx(ctx context.Context, p *partition.Partition, m costmodel.CostModel, cfg Config) (*Stats, error) {
	cfg.defaults()
	start := time.Now()
	tr := costmodel.NewTracker(p, m)
	stats := &Stats{}

	// Budget B = average computational cost (line 1).
	var total float64
	for i := 0; i < p.NumFragments(); i++ {
		total += tr.Comp(i)
	}
	budget := total / float64(p.NumFragments())
	stats.Budget = budget

	over, under := classify(tr, budget)
	var bs bfsScratch
	var candidates []candidate
	for _, i := range over {
		candidates = append(candidates, getCandidatesScratch(tr, i, budget, !cfg.ArbitraryCandidates, &bs)...)
	}

	// Phase 1: EMigrate (lines 6-10).
	t0 := time.Now()
	var leftover []candidate
	var err error
	if cfg.Parallel {
		leftover, err = parallelMigrateCtx(ctx, cfg.Pool, tr, candidates, under, budget, cfg.BatchSize, eMigrateProbe, eMigrateApply, stats, &migrateScratch{})
	} else {
		for _, c := range candidates {
			if err = ctxErr(ctx); err != nil {
				break
			}
			if !eMigrateTry(tr, c, under, budget, stats) {
				leftover = append(leftover, c)
			}
		}
	}
	stats.PhaseDurations[0] = time.Since(t0)
	if err != nil {
		stats.Total = time.Since(start)
		return stats, err
	}

	// Phase 2: ESplit (lines 11-14).
	if cfg.Phases >= 2 {
		t1 := time.Now()
		for _, c := range leftover {
			if err = ctxErr(ctx); err != nil {
				break
			}
			eSplit(tr, c, stats)
		}
		stats.PhaseDurations[1] = time.Since(t1)
		if err != nil {
			stats.Total = time.Since(start)
			return stats, err
		}
	}

	// Phase 3: MAssign (line 15).
	if cfg.Phases >= 3 {
		if err = ctxErr(ctx); err != nil {
			stats.Total = time.Since(start)
			return stats, err
		}
		t2 := time.Now()
		stats.MastersMoved = mAssign(tr)
		stats.PhaseDurations[2] = time.Since(t2)
	}
	stats.Total = time.Since(start)
	return stats, nil
}

// eMigrateProbe evaluates whether candidate c fits fragment j within
// the budget: ChA(Fj ∪ {(v, Evi)}) ≤ B, approximated by Fj's tracked
// cost plus the candidate's hypothetical contribution as a complete
// copy (its local degrees become its global degrees).
func eMigrateProbe(tr *costmodel.Tracker, c candidate, j int, budget float64) bool {
	p := tr.Partition()
	g := p.Graph()
	h := tr.HypotheticalComp(c.v, g.InDegree(c.v), g.OutDegree(c.v), p.Replication(c.v), false)
	return tr.Comp(j)+h <= budget
}

// eMigrateApply performs the accepted migration.
func eMigrateApply(tr *costmodel.Tracker, c candidate, j int, stats *Stats) {
	touched := moveECutVertex(tr.Partition(), c.v, c.frag, j)
	refreshAll(tr, touched)
	stats.Migrated++
}

// eMigrateTry is the sequential EMigrate inner loop: offer the
// candidate to each underloaded fragment in turn.
func eMigrateTry(tr *costmodel.Tracker, c candidate, under []int, budget float64, stats *Stats) bool {
	for _, j := range under {
		if j == c.frag {
			continue
		}
		if eMigrateProbe(tr, c, j, budget) {
			eMigrateApply(tr, c, j, stats)
			return true
		}
	}
	return false
}

// eSplit cuts the remaining candidate into v-cut pieces, moving its
// incident arcs one by one to the fragment with the minimum
// computational cost (lines 11-14).
func eSplit(tr *costmodel.Tracker, c candidate, stats *Stats) {
	p := tr.Partition()
	adj := p.Fragment(c.frag).Adjacency(c.v)
	if adj == nil {
		return
	}
	type arc struct{ u, w graph.VertexID }
	var arcs []arc
	for _, w := range adj.Out {
		arcs = append(arcs, arc{c.v, w})
	}
	// For undirected graphs the Out list already names every incident
	// edge; the symmetric pair moves together inside moveSingleArc.
	if !p.Graph().Undirected() {
		for _, w := range adj.In {
			arcs = append(arcs, arc{w, c.v})
		}
	}
	sort.Slice(arcs, func(a, b int) bool {
		if arcs[a].u != arcs[b].u {
			return arcs[a].u < arcs[b].u
		}
		return arcs[a].w < arcs[b].w
	})
	for _, a := range arcs {
		t := argminComp(tr)
		if t == c.frag {
			continue // already on the cheapest fragment
		}
		touched := moveSingleArc(p, c.frag, t, a.u, a.w, c.v)
		refreshAll(tr, touched)
		stats.SplitEdges++
	}
}

func argminComp(tr *costmodel.Tracker) int {
	best := 0
	for i := 1; i < tr.Partition().NumFragments(); i++ {
		if tr.Comp(i) < tr.Comp(best) {
			best = i
		}
	}
	return best
}

// mAssign implements the MAssign phase (Eq. 5): border masters are
// re-chosen one pass in ascending vertex order; each vertex's master
// goes to the copy minimising ChA(Fj) + CgA(Fj) + gjA(v), with CgA
// accumulated as assignments are made.
func mAssign(tr *costmodel.Tracker) int {
	p := tr.Partition()
	n := p.NumFragments()
	comm := make([]float64, n)
	moved := 0
	type choice struct {
		v    graph.VertexID
		frag int
	}
	var choices []choice
	for v := 0; v < p.Graph().NumVertices(); v++ {
		vid := graph.VertexID(v)
		if !p.IsBorder(vid) {
			continue
		}
		best, bestCost := -1, 0.0
		for _, cf := range p.Copies(vid) {
			j := int(cf)
			cost := tr.Comp(j) + comm[j] + tr.CommAt(j, vid)
			if best < 0 || cost < bestCost {
				best, bestCost = j, cost
			}
		}
		comm[best] += tr.CommAt(best, vid)
		if p.Master(vid) != best {
			moved++
		}
		choices = append(choices, choice{vid, best})
	}
	for _, c := range choices {
		_ = p.SetMaster(c.v, c.frag)
		tr.Refresh(c.v)
	}
	return moved
}
