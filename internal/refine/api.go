package refine

// Compiled-form invariant: refiners operate on the partition's mutable
// map form. Every structural mutation flows through the partition
// mutators, which drop any compiled CSR form automatically (see
// DESIGN.md "Data layout"), so a refined partition is always safe to
// hand to engine.NewCluster — the cluster recompiles at construction.
// The inverse does not hold: a partition must not be refined while a
// live Cluster executes over it, since the cluster's responsibility
// bitsets are built against the compiled arc slots at construction
// time.

import (
	"context"

	"adp/internal/costmodel"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

// ParE2H is the parallel (BSP-batched) E2H of Section 5.3.
func ParE2H(p *partition.Partition, m costmodel.CostModel, cfg Config) *Stats {
	cfg.Parallel = true
	return E2H(p, m, cfg)
}

// ParV2H is the parallel (BSP-batched) V2H of Section 5.3.
func ParV2H(p *partition.Partition, m costmodel.CostModel, cfg Config) *Stats {
	cfg.Parallel = true
	return V2H(p, m, cfg)
}

// ParE2HCtx is ParE2H under a context: cancellation stops at the next
// phase or migrate-superstep boundary, returning the partial Stats and
// the ctx error. The partition stays structurally valid (every applied
// move preserves the Section-2 invariants).
func ParE2HCtx(ctx context.Context, p *partition.Partition, m costmodel.CostModel, cfg Config) (*Stats, error) {
	cfg.Parallel = true
	return E2HCtx(ctx, p, m, cfg)
}

// ParV2HCtx is ParV2H under a context; see ParE2HCtx for the abort
// contract.
func ParV2HCtx(ctx context.Context, p *partition.Partition, m costmodel.CostModel, cfg Config) (*Stats, error) {
	cfg.Parallel = true
	return V2HCtx(ctx, p, m, cfg)
}

// ctxErr treats a nil context as never-cancelled, so the ctx-less
// entry points share the ctx-aware implementations.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// VMergeSweep runs the VMerge phase alone on p against an explicit
// budget, returning the number of v-cut nodes merged. The composite
// partitioner MV2H reuses it per target partition.
func VMergeSweep(p *partition.Partition, m costmodel.CostModel, budget float64) int {
	tr := costmodel.NewTracker(p, m)
	total := 0
	for pass := 0; pass < 8; pass++ {
		st := &Stats{}
		if vMergePass(tr, budget, st) == 0 {
			break
		}
		total += st.Merged
	}
	return total
}

// MAssignOnly runs the MAssign phase alone on p, returning how many
// masters moved. The composite partitioners reuse it per target
// partition.
func MAssignOnly(p *partition.Partition, m costmodel.CostModel) int {
	tr := costmodel.NewTracker(p, m)
	return mAssign(tr)
}

// ForFamily refines p in place with the refiner matching the family of
// the baseline that produced it: E2H for edge-cuts, V2H for
// vertex-cuts. Hybrid baselines are returned untouched with nil stats,
// mirroring the paper ("we do not extend Ginger and TopoX as they
// already produce hybrid partitions").
func ForFamily(fam partitioner.Family, p *partition.Partition, m costmodel.CostModel, cfg Config) *Stats {
	switch fam {
	case partitioner.EdgeCutFamily:
		return ParE2H(p, m, cfg)
	case partitioner.VertexCutFamily:
		return ParV2H(p, m, cfg)
	}
	return nil
}

// ForFamilyCtx is ForFamily under a context; see ParE2HCtx for the
// abort contract. Hybrid families return (nil, nil).
func ForFamilyCtx(ctx context.Context, fam partitioner.Family, p *partition.Partition, m costmodel.CostModel, cfg Config) (*Stats, error) {
	switch fam {
	case partitioner.EdgeCutFamily:
		return ParE2HCtx(ctx, p, m, cfg)
	case partitioner.VertexCutFamily:
		return ParV2HCtx(ctx, p, m, cfg)
	}
	return nil, nil
}
