// Package refine implements the paper's application-driven hybrid
// partitioners (Section 5): E2H extends any edge-cut partition and V2H
// any vertex-cut partition into a hybrid partition that reduces the
// parallel cost max_i CA(Fi) of a given algorithm A, guided by A's
// learned cost model (hA, gA).
//
// Both refiners run in two stages. Stage one balances computational
// cost against a budget B (the average ChA(Fi)): E2H migrates whole
// e-cut nodes (EMigrate) and then splits the remainder edge by edge
// (ESplit); V2H migrates v-cut copies onto existing copies (VMigrate)
// and merges v-cut nodes back into e-cut nodes (VMerge). Stage two
// (MAssign) redistributes communication cost by re-choosing master
// copies; it never increases the computational cost.
//
// ParE2H and ParV2H are the Section-5.3 parallelisations: candidates
// flow in round-robin batches between overloaded and underloaded
// fragments with cost probes evaluated concurrently, mutations applied
// at superstep barriers.
package refine

import (
	"fmt"
	"sort"
	"time"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/pool"
)

// Config tunes a refinement run.
type Config struct {
	// Phases limits how many phases run (1 = migration only,
	// 2 = +split/merge, 3 = +MAssign). 0 means all three. Used by the
	// Fig.-11 phase-decomposition ablation.
	Phases int
	// BatchSize is the parallel superstep batch size b of
	// Section 5.3. 0 means 64.
	BatchSize int
	// Parallel enables the BSP-batched schedule with concurrent cost
	// probes (ParE2H / ParV2H).
	Parallel bool
	// ArbitraryCandidates disables the BFS locality order inside
	// GetCandidates, evicting vertices in plain id order — the
	// ablation target for the coherent-sub-fragment design choice.
	ArbitraryCandidates bool
	// Pool executes the concurrent probe passes of the parallel
	// schedule. Nil means the process-wide shared pool; pool.Serial()
	// gives the deterministic single-threaded mode. Stats are
	// identical for any pool size: probes are read-only against the
	// superstep-start state and verdicts land in per-candidate slots.
	Pool *pool.Pool
}

func (c *Config) defaults() {
	if c.Phases == 0 {
		c.Phases = 3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.Pool == nil {
		c.Pool = pool.Default()
	}
}

// Stats reports what a refinement run did.
type Stats struct {
	Budget         float64
	Migrated       int // whole-vertex migrations (EMigrate / VMigrate)
	SplitEdges     int // edges moved by ESplit
	Merged         int // v-cut nodes merged by VMerge
	MastersMoved   int
	PhaseDurations [3]time.Duration
	Total          time.Duration
}

// String summarises the run on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("refine{B=%.4g migrated=%d split=%d merged=%d masters=%d in %v}",
		s.Budget, s.Migrated, s.SplitEdges, s.Merged, s.MastersMoved, s.Total.Round(time.Millisecond))
}

// candidate is a migration candidate (v, Evi): a vertex of an
// overloaded fragment marked for migration with its local incident
// arcs.
type candidate struct {
	frag int
	v    graph.VertexID
}

// bfsScratch holds the BFS frontier buffers of getCandidates, reused
// across fragments (and refiner phases) so candidate gathering does
// not rebuild its visited set and queues per call. seen is graph-wide
// and cleared through the visit queue, so reuse is O(visited), not
// O(|V|).
type bfsScratch struct {
	seen  []bool
	queue []graph.VertexID
	nbrs  vidSorter
}

// vidSorter sorts a vertex-id slice through a persistent
// sort.Interface value, avoiding the per-call closure and reflection
// allocations of sort.Slice.
type vidSorter struct{ s []graph.VertexID }

func (x *vidSorter) Len() int           { return len(x.s) }
func (x *vidSorter) Less(a, b int) bool { return x.s[a] < x.s[b] }
func (x *vidSorter) Swap(a, b int)      { x.s[a], x.s[b] = x.s[b], x.s[a] }

// getCandidates implements procedure GetCandidates (Fig. 3): a BFS
// traversal over the fragment's non-dummy nodes greedily retains a
// coherent sub-fragment within budget B; everything else is returned
// as migration candidates in BFS order. With bfs=false the traversal
// degrades to plain id order (the locality ablation).
func getCandidates(tr *costmodel.Tracker, i int, budget float64, bfs bool) []candidate {
	return getCandidatesScratch(tr, i, budget, bfs, &bfsScratch{})
}

// getCandidatesScratch is getCandidates on caller-owned scratch.
func getCandidatesScratch(tr *costmodel.Tracker, i int, budget float64, bfs bool, sc *bfsScratch) []candidate {
	p := tr.Partition()
	f := p.Fragment(i)
	ids := f.SortedVertices()
	if len(ids) == 0 {
		return nil
	}
	order := ids
	if bfs {
		// BFS over the fragment-local adjacency, exhaustive and
		// rooted at the smallest vertex id for determinism. The visit
		// queue doubles as the order: vertices are appended exactly
		// once, in visit order, and the head index walks behind.
		if len(sc.seen) < p.Graph().NumVertices() {
			sc.seen = make([]bool, p.Graph().NumVertices())
		}
		queue := sc.queue[:0]
		if cap(queue) < len(ids) {
			queue = make([]graph.VertexID, 0, len(ids))
		}
		for _, root := range ids {
			if sc.seen[root] {
				continue
			}
			sc.seen[root] = true
			queue = append(queue, root)
			for head := len(queue) - 1; head < len(queue); head++ {
				v := queue[head]
				adj := f.Adjacency(v)
				if adj == nil {
					continue
				}
				// Deterministic neighbour order.
				nbrs := sc.nbrs.s[:0]
				nbrs = append(nbrs, adj.Out...)
				nbrs = append(nbrs, adj.In...)
				sc.nbrs.s = nbrs
				sort.Sort(&sc.nbrs)
				for _, w := range sc.nbrs.s {
					if !sc.seen[w] && f.Has(w) {
						sc.seen[w] = true
						queue = append(queue, w)
					}
				}
			}
		}
		order = queue
		for _, v := range queue {
			sc.seen[v] = false
		}
		sc.queue = queue
	}
	kept := 0.0
	var out []candidate
	for _, v := range order {
		st := p.Status(i, v)
		if st != partition.ECutNode && st != partition.VCutNode {
			continue // dummies carry no computation
		}
		cost := tr.Contribution(i, v)
		if kept+cost <= budget {
			kept += cost
			continue
		}
		out = append(out, candidate{frag: i, v: v})
	}
	return out
}

// classify splits fragments into overloaded and underloaded sets
// against the budget.
func classify(tr *costmodel.Tracker, budget float64) (over, under []int) {
	for i := 0; i < tr.Partition().NumFragments(); i++ {
		if tr.Comp(i) > budget {
			over = append(over, i)
		} else {
			under = append(under, i)
		}
	}
	return over, under
}

// arcRemovableFrom reports whether the arc (u,w) may be dropped from
// fragment i after its subject vertex leaves: it must stay only when
// the other endpoint's copy in i is that vertex's designated e-cut
// node (which owns all its incident edges).
func arcRemovableFrom(p *partition.Partition, i int, other graph.VertexID) bool {
	return p.Status(i, other) != partition.ECutNode
}

// moveVertexArcs migrates every local incident arc of v from fragment
// i to fragment j. Arcs needed by another e-cut node of i remain
// (leaving a dummy copy of v behind, Example 9). For undirected graphs
// each symmetric pair moves atomically — the removability decision is
// made once per edge, because mutations can flip a neighbour's e-cut
// designation mid-move. Returns every vertex whose variables changed.
func moveVertexArcs(p *partition.Partition, v graph.VertexID, i, j int) []graph.VertexID {
	adj := p.Fragment(i).Adjacency(v)
	if adj == nil {
		return nil
	}
	touched := []graph.VertexID{v}
	if p.Graph().Undirected() {
		nbrs := append([]graph.VertexID(nil), adj.Out...)
		for _, w := range nbrs {
			p.AddEdge(j, v, w)
			if arcRemovableFrom(p, i, w) {
				p.RemoveEdge(i, v, w)
			}
			touched = append(touched, w)
		}
		return touched
	}
	outArcs := append([]graph.VertexID(nil), adj.Out...)
	inArcs := append([]graph.VertexID(nil), adj.In...)
	for _, w := range outArcs {
		p.AddArc(j, v, w)
		if arcRemovableFrom(p, i, w) {
			p.RemoveArc(i, v, w)
		}
		touched = append(touched, w)
	}
	for _, w := range inArcs {
		p.AddArc(j, w, v)
		if arcRemovableFrom(p, i, w) {
			p.RemoveArc(i, w, v)
		}
		touched = append(touched, w)
	}
	return touched
}

// moveECutVertex is an EMigrate operation: migrate e-cut node v with
// all its incident arcs from fragment i to fragment j and hand over
// ownership and mastership.
func moveECutVertex(p *partition.Partition, v graph.VertexID, i, j int) []graph.VertexID {
	touched := moveVertexArcs(p, v, i, j)
	if touched == nil {
		return nil
	}
	p.SetOwner(v, j)
	if p.Fragment(j).Has(v) {
		_ = p.SetMaster(v, j)
	}
	return touched
}

// moveSingleArc migrates one arc of vertex v from fragment i to
// fragment t (an ESplit step). The arc leaves i unless another e-cut
// node of i needs it. For undirected graphs the symmetric arc pair
// moves together, preserving the co-location invariant.
func moveSingleArc(p *partition.Partition, i, t int, u, w graph.VertexID, subject graph.VertexID) []graph.VertexID {
	other := u
	if other == subject {
		other = w
	}
	if p.Graph().Undirected() {
		p.AddEdge(t, u, w)
		if arcRemovableFrom(p, i, other) {
			p.RemoveEdge(i, u, w)
		}
	} else {
		p.AddArc(t, u, w)
		if arcRemovableFrom(p, i, other) {
			p.RemoveArc(i, u, w)
		}
	}
	return []graph.VertexID{u, w}
}

// refreshAll refreshes the tracker for a touched-vertex set, each
// distinct vertex once in first-occurrence order (the tracker's
// allocation-free stamp dedup).
func refreshAll(tr *costmodel.Tracker, touched []graph.VertexID) {
	tr.RefreshSet(touched)
}
