package refine

import (
	"math"
	"runtime"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// goldenStats pins the refiner Stats of twelve deterministic workloads
// — all five algorithms through both ParE2H and ParV2H, plus a
// learned-degree polynomial Model through each refiner — to the exact
// values the map-backed Tracker and interpreted Model.Eval produced
// before the refinement plane was flattened (dense slabs + compiled
// kernels). Budget is pinned by Float64bits, so any floating-point
// reordering in the tracker or kernels fails this test: the flattened
// plane must be bitwise-identical to the map-backed implementation,
// not merely close.
type goldenStat struct {
	label      string
	budgetBits uint64
	migrated   int
	splitEdges int
	merged     int
	masters    int
}

var goldenStats = []goldenStat{
	{"CN/e2h", 0x40157ecac543faac, 270, 648, 0, 929},
	{"CN/v2h", 0x40157f43a122ddd5, 215, 0, 53, 1003},
	{"TC/e2h", 0x40125f8789affaeb, 264, 15, 0, 8},
	{"TC/v2h", 0x40125f8789affade, 329, 0, 10, 746},
	{"WCC/e2h", 0x3f9a8c660db456f1, 253, 25, 0, 921},
	{"WCC/v2h", 0x3fa56dda5c65bfed, 405, 0, 8, 897},
	{"PR/e2h", 0x3fc50b0ceb11a308, 219, 7, 0, 850},
	{"PR/v2h", 0x3fd5e1239be67b2d, 306, 0, 7, 874},
	{"SSSP/e2h", 0x3fee0e7bc3c5bd14, 264, 8, 0, 975},
	{"SSSP/v2h", 0x3ff0422a58e0b370, 492, 0, 12, 851},
	{"learned/e2h", 0x4014ebfb50c699d3, 268, 656, 0, 866},
	{"learned/v2h", 0x4014ecc664ce04f0, 214, 0, 69, 1040},
}

// goldenLearnedModel mirrors bench.LearnedDegreeModel (bench imports
// refine, so the model is rebuilt here): a degree-2 hA over
// {d+L, d+G} and a degree-1 gA over r, both in learned Model form.
func goldenLearnedModel() costmodel.CostModel {
	h := &costmodel.Model{
		Terms:   costmodel.PolyTerms([]costmodel.VarKind{costmodel.DLIn, costmodel.DGIn}, 2),
		Weights: []float64{1.02e-6, 3e-8, 1.04e-6, 2e-9, 9.23e-5, 5e-9},
	}
	g := &costmodel.Model{
		Terms:   costmodel.PolyTerms([]costmodel.VarKind{costmodel.Repl}, 1),
		Weights: []float64{1.1e-4, 6.6e-4},
	}
	return costmodel.CostModel{H: h, G: g}
}

// goldenWorkload rebuilds the deterministic workload behind a golden
// label and runs the matching refiner on the given pool.
func goldenWorkload(t *testing.T, label string, pl *pool.Pool) *Stats {
	t.Helper()
	var m costmodel.CostModel
	var seed int64
	directed := true
	switch label[:len(label)-4] {
	case "learned":
		m, seed = goldenLearnedModel(), 99
	default:
		var algo costmodel.Algo
		found := false
		for _, a := range costmodel.Algos() {
			if a.String() == label[:len(label)-4] {
				algo, found = a, true
				break
			}
		}
		if !found {
			t.Fatalf("unknown golden label %q", label)
		}
		m = costmodel.Reference(algo)
		seed = 77 + int64(algo)
		directed = algo != costmodel.TC
	}
	g := gen.PowerLaw(gen.PowerLawConfig{N: 1500, AvgDeg: 6, Exponent: 2.2, Directed: directed, Seed: seed})
	if label[len(label)-3:] == "e2h" {
		ec, err := partitioner.FennelEdgeCut(g, 6, partitioner.FennelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return ParE2H(ec, m, Config{Pool: pl})
	}
	vc, err := partitioner.GridVertexCut(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	return ParV2H(vc, m, Config{Pool: pl})
}

// TestGoldenStatsMatchMapBackedImplementation is the acceptance lock:
// Stats (Budget, Migrated, SplitEdges, Merged, MastersMoved) must be
// bitwise-identical to the retired map-backed implementation for every
// algorithm, through both refiners, across {1, 4, NumCPU} pools.
func TestGoldenStatsMatchMapBackedImplementation(t *testing.T) {
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		pl := pool.New(workers)
		for _, gs := range goldenStats {
			gs := gs
			t.Run(gs.label, func(t *testing.T) {
				s := goldenWorkload(t, gs.label, pl)
				if got := math.Float64bits(s.Budget); got != gs.budgetBits {
					t.Errorf("workers=%d: Budget bits = %#016x (%v), map-backed implementation had %#016x (%v)",
						workers, got, s.Budget, gs.budgetBits, math.Float64frombits(gs.budgetBits))
				}
				if s.Migrated != gs.migrated || s.SplitEdges != gs.splitEdges || s.Merged != gs.merged || s.MastersMoved != gs.masters {
					t.Errorf("workers=%d: counters = {mig=%d split=%d merged=%d masters=%d}, map-backed implementation had {mig=%d split=%d merged=%d masters=%d}",
						workers, s.Migrated, s.SplitEdges, s.Merged, s.MastersMoved,
						gs.migrated, gs.splitEdges, gs.merged, gs.masters)
				}
			})
		}
		pl.Close()
	}
}
