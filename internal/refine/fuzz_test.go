package refine

import (
	"reflect"
	"runtime"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// FuzzParallelMigrate cross-checks the parallel refiners against the
// sequential refiner on small random graphs, mirroring the seeded
// graph fuzzing of internal/graph/fuzz_test.go. For every generated
// input it asserts that:
//
//   - the sequential (Parallel=false) and BSP-batched schedules start
//     from the identical budget B, the shared precondition of the
//     Section-5.3 equivalence argument;
//   - the parallel schedule is a pure function of its input: worker
//     counts 1 and GOMAXPROCS yield bitwise-identical Stats and
//     refined fragment costs;
//   - every refined partition (sequential and parallel) still passes
//     the structural Validate invariants, so neither schedule can
//     corrupt copies, masters or adjacency under concurrency.
func FuzzParallelMigrate(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(4), uint8(0), false)
	f.Add(int64(7), uint8(90), uint8(6), uint8(1), true)
	f.Add(int64(42), uint8(25), uint8(3), uint8(2), false)
	f.Add(int64(99), uint8(120), uint8(5), uint8(4), true)
	f.Add(int64(-3), uint8(0), uint8(0), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, nvRaw, degRaw, algoRaw uint8, vertexCut bool) {
		nv := 16 + int(nvRaw)%140
		avgDeg := 2 + float64(degRaw%6)
		algo := costmodel.Algos()[int(algoRaw)%len(costmodel.Algos())]
		// TC models expect the undirected view; everything else runs
		// directed, matching the bench drivers.
		directed := algo != costmodel.TC
		g := gen.ErdosRenyi(nv, avgDeg, directed, seed)
		m := costmodel.Reference(algo)

		var base *partition.Partition
		var err error
		var run func(p *partition.Partition, m costmodel.CostModel, cfg Config) *Stats
		if vertexCut {
			base, err = partitioner.GridVertexCut(g, 3)
			run = V2H
		} else {
			base, err = partitioner.FennelEdgeCut(g, 3, partitioner.FennelConfig{})
			run = E2H
		}
		if err != nil {
			t.Skip("degenerate partition input")
		}

		type outcome struct {
			stats [5]float64
			costs []costmodel.FragCost
		}
		refineWith := func(cfg Config) outcome {
			p := base.Clone()
			s := run(p, m, cfg)
			if verr := p.Validate(); verr != nil {
				t.Fatalf("refined partition invalid (cfg %+v): %v", cfg, verr)
			}
			return outcome{stats: statsFingerprint(s), costs: costmodel.Evaluate(p, m)}
		}

		seq := refineWith(Config{})
		serial := pool.Serial()
		par1 := refineWith(Config{Parallel: true, Pool: serial})
		serial.Close()
		wide := pool.New(runtime.GOMAXPROCS(0))
		parN := refineWith(Config{Parallel: true, Pool: wide})
		wide.Close()

		if seq.stats[0] != par1.stats[0] {
			t.Fatalf("budget diverged: sequential %v vs parallel %v", seq.stats[0], par1.stats[0])
		}
		if par1.stats != parN.stats {
			t.Fatalf("parallel stats depend on worker count: serial %v vs GOMAXPROCS %v", par1.stats, parN.stats)
		}
		if !reflect.DeepEqual(par1.costs, parN.costs) {
			t.Fatalf("parallel fragment costs depend on worker count:\n 1: %v\n N: %v", par1.costs, parN.costs)
		}
	})
}
