package refine

import (
	"math"
	"math/rand"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/graph"
)

func TestApplyUpdatesCarriesPlacement(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.PR)
	p := hubConcentratedEdgeCut(t, g, 4)
	E2H(p, m, Config{})

	// A light update: 50 random inserts, 50 deletes of existing edges.
	rng := rand.New(rand.NewSource(5))
	edges := g.EdgeList()
	var deletes []graph.Edge
	for _, idx := range rng.Perm(len(edges))[:50] {
		deletes = append(deletes, edges[idx])
	}
	var inserts []graph.Edge
	for len(inserts) < 50 {
		u := graph.VertexID(rng.Intn(g.NumVertices()))
		v := graph.VertexID(rng.Intn(g.NumVertices()))
		if u != v && !g.HasEdge(u, v) {
			inserts = append(inserts, graph.Edge{Src: u, Dst: v})
		}
	}
	np, stats, err := ApplyUpdates(p, m, inserts, deletes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.RoutedArcs != 50 {
		t.Errorf("routed %d arcs, want 50", stats.RoutedArcs)
	}
	if stats.DroppedArcs < 50 {
		t.Errorf("dropped %d arcs, want ≥ 50 (replicated cut arcs drop per copy)", stats.DroppedArcs)
	}
	// Placement churn must be local: the vast majority of vertices
	// keep their owner fragment.
	moved := 0
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if p.Owner(vid) >= 0 && np.Owner(vid) >= 0 && p.Owner(vid) != np.Owner(vid) {
			moved++
		}
	}
	if frac := float64(moved) / float64(g.NumVertices()); frac > 0.10 {
		t.Errorf("%.1f%% of owners moved after a light update; maintenance should be local", frac*100)
	}
	// The maintained partition still runs PR correctly on the NEW
	// graph.
	want := algorithms.SeqOutcome(np.Graph(), costmodel.PR, algorithms.Options{})
	got, err := algorithms.Run(engine.NewCluster(np), costmodel.PR, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Value-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
		t.Fatalf("PR over maintained partition: %v vs oracle %v", got.Value, want.Value)
	}
}

func TestApplyUpdatesRebalancesSkew(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	p := hubConcentratedEdgeCut(t, g, 4)
	E2H(p, m, Config{})

	// A skewing update: attach 300 new in-edges to one vertex owned by
	// fragment 0, inflating its CN cost quadratically.
	target := graph.VertexID(0)
	var inserts []graph.Edge
	for v := 1; v <= 300; v++ {
		if !g.HasEdge(graph.VertexID(v), target) {
			inserts = append(inserts, graph.Edge{Src: graph.VertexID(v), Dst: target})
		}
	}
	np, stats, err := ApplyUpdates(p, m, inserts, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Migrated == 0 && stats.SplitEdges == 0 {
		t.Error("a skewing update should trigger rebalancing work")
	}
	costs := costmodel.Evaluate(np, m)
	if lam := costmodel.LambdaCost(costs); lam > 1.5 {
		t.Errorf("maintained partition still skewed: λCN = %v", lam)
	}
}

func TestApplyUpdatesGrowsVertexSet(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.PR)
	p := hubConcentratedEdgeCut(t, g, 3)
	// Insert edges touching brand-new vertex ids.
	nv := graph.VertexID(g.NumVertices())
	inserts := []graph.Edge{{Src: nv, Dst: 0}, {Src: nv + 1, Dst: nv}, {Src: 1, Dst: nv + 2}}
	np, _, err := ApplyUpdates(p, m, inserts, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	if np.Graph().NumVertices() != g.NumVertices()+3 {
		t.Fatalf("vertex set not grown: %d", np.Graph().NumVertices())
	}
	// New vertices landed near their neighbours.
	if len(np.Copies(nv)) == 0 || len(np.Copies(nv+2)) == 0 {
		t.Fatal("new vertices unplaced")
	}
}

func TestApplyUpdatesUndirected(t *testing.T) {
	g := skewedUndirected()
	m := costmodel.Reference(costmodel.TC)
	p := hubConcentratedEdgeCut(t, g, 3)
	E2H(p, m, Config{})
	var deletes []graph.Edge
	g.Edges(func(u, v graph.VertexID) bool {
		if u < v && len(deletes) < 20 {
			deletes = append(deletes, graph.Edge{Src: u, Dst: v})
		}
		return len(deletes) < 20
	})
	np, _, err := ApplyUpdates(p, m, nil, deletes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	want := algorithms.TCSeq(np.Graph())
	got, _, err := algorithms.RunTC(engine.NewCluster(np))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("TC over maintained partition = %d, want %d", got, want)
	}
}
