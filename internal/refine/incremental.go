package refine

import (
	"fmt"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
)

// The paper's stated future work is "to develop incremental algorithms
// that maintain application-driven partitions in response to updates
// to graphs" (Section 8). ApplyUpdates implements that extension: it
// carries an existing cost-driven partition over to the updated graph
// — keeping every surviving arc exactly where it was, routing new
// edges next to their endpoints — and then rebalances only what the
// update skewed, by running the cost-driven migration phases whose
// candidate sets are empty when no fragment exceeds the budget.
// Compared to re-partitioning from scratch, placement churn is limited
// to the neighbourhood of the update.

// UpdateStats extends Stats with carry-over accounting.
type UpdateStats struct {
	Stats
	CarriedArcs int // arcs kept at their previous fragment
	RoutedArcs  int // newly inserted arcs placed by locality
	DroppedArcs int // deleted arcs removed from fragments
}

// ApplyUpdates returns a partition of the updated graph (the original
// graph with deletes removed and inserts added) that preserves the
// placement of p wherever possible and is re-refined for the cost
// model m. The input partition is not modified.
func ApplyUpdates(p *partition.Partition, m costmodel.CostModel, inserts, deletes []graph.Edge, cfg Config) (*partition.Partition, *UpdateStats, error) {
	old := p.Graph()
	deleted := make(map[uint64]bool, len(deletes))
	key := func(u, v graph.VertexID) uint64 { return uint64(u)<<32 | uint64(v) }
	for _, e := range deletes {
		deleted[key(e.Src, e.Dst)] = true
		if old.Undirected() {
			deleted[key(e.Dst, e.Src)] = true
		}
	}
	// Build the updated graph.
	n := old.NumVertices()
	for _, e := range inserts {
		if int(e.Src) >= n {
			n = int(e.Src) + 1
		}
		if int(e.Dst) >= n {
			n = int(e.Dst) + 1
		}
	}
	var gb *graph.Builder
	if old.Undirected() {
		gb = graph.NewUndirectedBuilder(n)
	} else {
		gb = graph.NewBuilder(n)
	}
	old.Edges(func(u, v graph.VertexID) bool {
		if old.Undirected() && u > v {
			return true
		}
		if !deleted[key(u, v)] {
			gb.AddEdge(u, v)
		}
		return true
	})
	for _, e := range inserts {
		gb.AddEdge(e.Src, e.Dst)
	}
	ng, err := gb.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("refine: rebuilding updated graph: %w", err)
	}

	stats := &UpdateStats{}
	np := partition.NewEmpty(ng, p.NumFragments())
	// Carry surviving arcs over in place.
	for i := 0; i < p.NumFragments(); i++ {
		f := p.Fragment(i)
		f.Vertices(func(v graph.VertexID, adj *partition.Adj) {
			for _, w := range adj.Out {
				if deleted[key(v, w)] {
					stats.DroppedArcs++
					continue
				}
				np.AddArc(i, v, w)
				stats.CarriedArcs++
			}
		})
	}
	// Preserve owners and masters where the copy survived.
	for v := 0; v < old.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if o := p.Owner(vid); o >= 0 && np.Fragment(o).Has(vid) {
			np.SetOwner(vid, o)
		}
		if mfrag := p.Master(vid); mfrag >= 0 && np.Fragment(mfrag).Has(vid) {
			_ = np.SetMaster(vid, mfrag)
		}
	}
	// Route inserted edges next to their endpoints: the fragment
	// already holding the most copies of the endpoints wins; brand-new
	// vertices follow their neighbour.
	for _, e := range inserts {
		dst := RouteFragment(np, e.Src, e.Dst)
		np.AddEdge(dst, e.Src, e.Dst)
		stats.RoutedArcs++
	}
	// Vertices that lost every arc (or brand-new isolated ids) still
	// need a home.
	for v := 0; v < ng.NumVertices(); v++ {
		if len(np.Copies(graph.VertexID(v))) == 0 {
			np.AddVertex(v%np.NumFragments(), graph.VertexID(v))
		}
	}

	// Rebalance: the standard cost-driven phases; with an unskewed
	// update the candidate sets are empty and this is a cheap
	// evaluation pass.
	s := E2H(np, m, cfg)
	stats.Stats = *s
	return np, stats, nil
}

// RouteFragment picks the fragment with the strongest presence of the
// edge's endpoints (owner copies count double), defaulting to the
// least-loaded fragment for fresh vertices. The durable store reuses
// it to derive default destination vectors for logged inserts.
func RouteFragment(p *partition.Partition, u, v graph.VertexID) int {
	votes := make([]int, p.NumFragments())
	for _, vid := range []graph.VertexID{u, v} {
		if int(vid) >= p.Graph().NumVertices() {
			continue
		}
		for _, c := range p.Copies(vid) {
			votes[c]++
			if p.Owner(vid) == int(c) {
				votes[c]++
			}
		}
	}
	best, bestVotes := 0, -1
	for i, n := range votes {
		if n > bestVotes {
			best, bestVotes = i, n
		}
	}
	if bestVotes > 0 {
		return best
	}
	// No presence anywhere: least-loaded fragment.
	best = 0
	for i := 1; i < p.NumFragments(); i++ {
		if p.Fragment(i).NumArcs() < p.Fragment(best).NumArcs() {
			best = i
		}
	}
	return best
}
