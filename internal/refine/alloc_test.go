package refine

import "testing"

// TestProbeLoopAllocFree locks the flattened probe plane: on warmed
// scratch a full parallelMigrate run (several supersteps of batching,
// routing, probing and ordered carry-over) performs zero heap
// allocations.
func TestProbeLoopAllocFree(t *testing.T) {
	if a := ProbeLoopAllocs(); a != 0 {
		t.Fatalf("probe superstep loop: %v allocs/run on warmed scratch, want 0", a)
	}
}
