package refine

import (
	"context"
	"sort"
	"time"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
)

// V2H adjusts the vertex-cut partition p into a hybrid partition that
// reduces the parallel cost of the algorithm modelled by m (Fig. 4).
// The partition is refined in place.
func V2H(p *partition.Partition, m costmodel.CostModel, cfg Config) *Stats {
	stats, _ := V2HCtx(context.Background(), p, m, cfg)
	return stats
}

// V2HCtx is V2H under a context; see E2HCtx for the abort contract.
func V2HCtx(ctx context.Context, p *partition.Partition, m costmodel.CostModel, cfg Config) (*Stats, error) {
	cfg.defaults()
	start := time.Now()
	tr := costmodel.NewTracker(p, m)
	stats := &Stats{}

	var total float64
	for i := 0; i < p.NumFragments(); i++ {
		total += tr.Comp(i)
	}
	budget := total / float64(p.NumFragments())
	stats.Budget = budget

	over, under := classify(tr, budget)
	var bs bfsScratch
	var candidates []candidate
	for _, i := range over {
		candidates = append(candidates, getCandidatesScratch(tr, i, budget, !cfg.ArbitraryCandidates, &bs)...)
	}

	// Phase 1: VMigrate (lines 6-10) — a candidate may only move onto
	// an underloaded fragment that already holds a copy of it, which
	// removes one replica.
	t0 := time.Now()
	var err error
	if cfg.Parallel {
		_, err = parallelMigrateCtx(ctx, cfg.Pool, tr, candidates, under, budget, cfg.BatchSize, vMigrateProbe, vMigrateApply, stats, &migrateScratch{})
	} else {
		for _, c := range candidates {
			if err = ctxErr(ctx); err != nil {
				break
			}
			for _, j := range under {
				if j == c.frag {
					continue
				}
				if vMigrateProbe(tr, c, j, budget) {
					vMigrateApply(tr, c, j, stats)
					break
				}
			}
		}
	}
	stats.PhaseDurations[0] = time.Since(t0)
	if err != nil {
		stats.Total = time.Since(start)
		return stats, err
	}

	// Phase 2: VMerge (lines 11-14) — iteratively turn v-cut nodes of
	// underloaded fragments into e-cut nodes by pulling in their
	// missing arcs, until no valid merge remains.
	if cfg.Phases >= 2 {
		t1 := time.Now()
		for pass := 0; pass < 8; pass++ {
			if err = ctxErr(ctx); err != nil {
				break
			}
			merged := vMergePass(tr, budget, stats)
			if merged == 0 {
				break
			}
		}
		stats.PhaseDurations[1] = time.Since(t1)
		if err != nil {
			stats.Total = time.Since(start)
			return stats, err
		}
	}

	// Phase 3: MAssign (line 15), shared with E2H.
	if cfg.Phases >= 3 {
		if err = ctxErr(ctx); err != nil {
			stats.Total = time.Since(start)
			return stats, err
		}
		t2 := time.Now()
		stats.MastersMoved = mAssign(tr)
		stats.PhaseDurations[2] = time.Since(t2)
	}
	stats.Total = time.Since(start)
	return stats, nil
}

// vMigrateProbe: fragment j must already hold a copy of v, and taking
// over Fi's arcs of v must keep j within budget. The hypothetical
// contribution merges the two copies' local degrees (j's existing
// contribution is already in Comp(j), so only the delta is added).
func vMigrateProbe(tr *costmodel.Tracker, c candidate, j int, budget float64) bool {
	p := tr.Partition()
	fj := p.Fragment(j)
	if !fj.Has(c.v) {
		return false
	}
	src := p.Fragment(c.frag).Adjacency(c.v)
	dst := fj.Adjacency(c.v)
	if src == nil || dst == nil {
		return false
	}
	merged := tr.HypotheticalComp(c.v,
		len(src.In)+len(dst.In), len(src.Out)+len(dst.Out),
		p.Replication(c.v)-1, true)
	delta := merged - tr.Contribution(j, c.v)
	return tr.Comp(j)+delta <= budget
}

// vMigrateApply moves every local arc of v from the source fragment
// onto the existing copy at j, reducing v's replication by one. Arcs
// another e-cut node of the source still needs are kept, exactly as in
// EMigrate.
func vMigrateApply(tr *costmodel.Tracker, c candidate, j int, stats *Stats) {
	touched := moveVertexArcs(tr.Partition(), c.v, c.frag, j)
	if touched == nil {
		return
	}
	refreshAll(tr, touched)
	stats.Migrated++
}

// vMergePass scans underloaded fragments in id order and merges their
// v-cut nodes into e-cut nodes where the budget allows. Missing arcs
// are migrated from overloaded fragments (relieving them) and
// replicated from underloaded ones (leaving them untouched) — the
// "migrate or replicate based on the respective costs" rule.
// Returns the number of merges performed.
func vMergePass(tr *costmodel.Tracker, budget float64, stats *Stats) int {
	p := tr.Partition()
	g := p.Graph()
	merges := 0
	for i := 0; i < p.NumFragments(); i++ {
		if tr.Comp(i) > budget {
			continue
		}
		f := p.Fragment(i)
		for _, v := range f.SortedVertices() {
			if p.Status(i, v) != partition.VCutNode {
				continue
			}
			// ChA(Fi ∪ (v, Ēvi)) ≤ B probe: v as a complete copy.
			h := tr.HypotheticalComp(v, g.InDegree(v), g.OutDegree(v), p.Replication(v), false)
			if tr.Comp(i)-tr.Contribution(i, v)+h > budget {
				continue
			}
			touched := mergeMissingArcs(tr, i, v, budget)
			p.SetOwner(v, i)
			touched = append(touched, v)
			refreshAll(tr, touched)
			stats.Merged++
			merges++
		}
	}
	return merges
}

// mergeMissingArcs brings every arc of Ev missing from fragment i into
// i. Arcs are migrated away from fragments above budget and replicated
// from the rest ("migrate or replicate based on the respective
// costs"). Undirected pairs move atomically.
func mergeMissingArcs(tr *costmodel.Tracker, i int, v graph.VertexID, budget float64) []graph.VertexID {
	p := tr.Partition()
	g := p.Graph()
	undirected := g.Undirected()
	var touched []graph.VertexID
	pull := func(u, w graph.VertexID) {
		if p.Fragment(i).HasArc(u, w) {
			return
		}
		other := u
		if other == v {
			other = w
		}
		// Decide migration sources before mutating: adding the arc to
		// i can flip designations.
		var removeFrom []int
		for k := 0; k < p.NumFragments(); k++ {
			if k == i || !p.Fragment(k).HasArc(u, w) {
				continue
			}
			if tr.Comp(k) > budget && arcRemovableFrom(p, k, other) &&
				p.Status(k, v) != partition.ECutNode {
				removeFrom = append(removeFrom, k)
			}
		}
		if undirected {
			p.AddEdge(i, u, w)
			for _, k := range removeFrom {
				p.RemoveEdge(k, u, w)
			}
		} else {
			p.AddArc(i, u, w)
			for _, k := range removeFrom {
				p.RemoveArc(k, u, w)
			}
		}
		touched = append(touched, other)
	}
	for _, w := range g.OutNeighbors(v) {
		pull(v, w)
	}
	if !undirected {
		for _, w := range g.InNeighbors(v) {
			pull(w, v)
		}
	}
	sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
	return touched
}
