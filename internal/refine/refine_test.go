package refine

import (
	"math"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

func skewedDirected() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 1200, AvgDeg: 8, Exponent: 2.0, Directed: true, Seed: 91})
}

func skewedUndirected() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 900, AvgDeg: 6, Exponent: 2.1, Directed: false, Seed: 92})
}

// hubConcentratedEdgeCut builds an edge-cut that is balanced by vertex
// count but concentrates the low-id hubs of the power-law generator in
// fragment 0 — the Example-1 pathological input for CN.
func hubConcentratedEdgeCut(t testing.TB, g *graph.Graph, n int) *partition.Partition {
	t.Helper()
	nv := g.NumVertices()
	assign := make([]int, nv)
	for v := 0; v < nv; v++ {
		assign[v] = v * n / nv
	}
	p, err := partition.FromVertexAssignment(g, assign, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func parallelCost(p *partition.Partition, m costmodel.CostModel) float64 {
	return costmodel.ParallelCost(costmodel.Evaluate(p, m))
}

// countVCut counts vertices that are not e-cut (split computation).
func countVCut(p *partition.Partition) int {
	n := 0
	for v := 0; v < p.Graph().NumVertices(); v++ {
		if len(p.Copies(graph.VertexID(v))) > 0 && !p.IsECut(graph.VertexID(v)) {
			n++
		}
	}
	return n
}

func TestE2HReducesCNParallelCost(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	p := hubConcentratedEdgeCut(t, g, 4)
	before := parallelCost(p, m)
	stats := E2H(p, m, Config{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	after := parallelCost(p, m)
	if after >= before {
		t.Fatalf("E2H did not reduce parallel cost: %v -> %v", before, after)
	}
	// On this pathological input the reduction should be substantial
	// (the paper reports 4.5-18x for CN; we require at least 1.5x).
	if before/after < 1.5 {
		t.Errorf("E2H speedup only %.2fx (%v -> %v)", before/after, before, after)
	}
	if stats.Migrated == 0 && stats.SplitEdges == 0 {
		t.Error("E2H did nothing on a skewed input")
	}
}

func TestE2HPreservesAlgorithmResults(t *testing.T) {
	g := skewedDirected()
	opts := algorithms.Options{CNTheta: 100, SSSPSource: 3}
	for _, algo := range []costmodel.Algo{costmodel.CN, costmodel.PR, costmodel.WCC, costmodel.SSSP} {
		want := algorithms.SeqOutcome(g, algo, opts)
		p := hubConcentratedEdgeCut(t, g, 4)
		E2H(p, costmodel.Reference(algo), Config{})
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got, err := algorithms.Run(engine.NewCluster(p), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got.Checksum != want.Checksum {
			t.Fatalf("%v: checksum changed after E2H", algo)
		}
		if math.Abs(got.Value-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
			t.Fatalf("%v: value %v vs oracle %v after E2H", algo, got.Value, want.Value)
		}
	}
}

func TestE2HOnUndirectedTC(t *testing.T) {
	g := skewedUndirected()
	want := algorithms.TCSeq(g)
	p := hubConcentratedEdgeCut(t, g, 3)
	before := parallelCost(p, costmodel.Reference(costmodel.TC))
	E2H(p, costmodel.Reference(costmodel.TC), Config{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	after := parallelCost(p, costmodel.Reference(costmodel.TC))
	if after > before*1.05 {
		t.Fatalf("E2H worsened TC cost: %v -> %v", before, after)
	}
	got, _, err := algorithms.RunTC(engine.NewCluster(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("TC after E2H = %d, want %d", got, want)
	}
}

func TestV2HReducesCostAndPreservesResults(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	// Grid vertex-cut: balanced edges but poor locality.
	p, err := partitioner.GridVertexCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := parallelCost(p, m)
	stats := V2H(p, m, Config{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	after := parallelCost(p, m)
	if after > before*1.05 {
		t.Fatalf("V2H worsened parallel cost: %v -> %v", before, after)
	}
	if stats.Migrated == 0 && stats.Merged == 0 && stats.MastersMoved == 0 {
		t.Error("V2H made no changes at all")
	}
	opts := algorithms.Options{CNTheta: 100}
	want := algorithms.SeqOutcome(g, costmodel.CN, opts)
	got, err := algorithms.Run(engine.NewCluster(p), costmodel.CN, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != want.Checksum {
		t.Fatal("CN checksum changed after V2H")
	}
}

func TestV2HMergeReducesTCComm(t *testing.T) {
	g := skewedUndirected()
	m := costmodel.Reference(costmodel.TC)
	p, err := partitioner.GridVertexCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := costmodel.ParallelCost(costmodel.Evaluate(p, m))
	beforeVCut := countVCut(p)
	stats := V2H(p, m, Config{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	after := costmodel.ParallelCost(costmodel.Evaluate(p, m))
	if stats.Merged == 0 {
		t.Error("VMerge merged nothing on a vertex-cut with many splits")
	}
	// Merging turns v-cut nodes into e-cut nodes, killing their gTC
	// term (I(v) = 0 once the master sits on the e-cut copy).
	if afterVCut := countVCut(p); afterVCut >= beforeVCut {
		t.Errorf("v-cut vertices did not decrease: %d -> %d", beforeVCut, afterVCut)
	}
	if after > before*1.05 {
		t.Errorf("V2H worsened the parallel cost: %v -> %v", before, after)
	}
	// Results still correct.
	want := algorithms.TCSeq(g)
	got, _, err := algorithms.RunTC(engine.NewCluster(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("TC after V2H = %d, want %d", got, want)
	}
}

func TestMAssignNeverIncreasesComp(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.PR)
	p2 := hubConcentratedEdgeCut(t, g, 4)
	p3 := p2.Clone()
	E2H(p2, m, Config{Phases: 2})
	E2H(p3, m, Config{Phases: 3})
	comp2 := costmodel.TotalComp(costmodel.Evaluate(p2, m))
	comp3 := costmodel.TotalComp(costmodel.Evaluate(p3, m))
	if math.Abs(comp2-comp3) > 1e-9*(1+comp2) {
		t.Fatalf("MAssign changed computational cost: %v vs %v", comp2, comp3)
	}
}

func TestPhaseConfigMonotone(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	base := hubConcentratedEdgeCut(t, g, 4)
	costs := make([]float64, 4)
	costs[0] = parallelCost(base, m)
	for phases := 1; phases <= 3; phases++ {
		p := base.Clone()
		E2H(p, m, Config{Phases: phases})
		if err := p.Validate(); err != nil {
			t.Fatalf("phases=%d: %v", phases, err)
		}
		costs[phases] = parallelCost(p, m)
	}
	// Each additional phase may only help (small tolerance for the
	// probe approximation).
	for k := 1; k <= 3; k++ {
		if costs[k] > costs[k-1]*1.10 {
			t.Errorf("phase %d made things worse: %v -> %v", k, costs[k-1], costs[k])
		}
	}
}

func TestParallelMatchesValidity(t *testing.T) {
	g := skewedDirected()
	for _, algo := range costmodel.Algos() {
		if algo == costmodel.TC {
			continue
		}
		m := costmodel.Reference(algo)
		seqP := hubConcentratedEdgeCut(t, g, 4)
		parP := seqP.Clone()
		E2H(seqP, m, Config{})
		ParE2H(parP, m, Config{BatchSize: 16})
		if err := parP.Validate(); err != nil {
			t.Fatalf("%v: parallel refinement broke the partition: %v", algo, err)
		}
		seqCost := parallelCost(seqP, m)
		parCost := parallelCost(parP, m)
		if parCost > seqCost*1.25 {
			t.Errorf("%v: ParE2H cost %v far above sequential %v", algo, parCost, seqCost)
		}
	}
}

func TestParV2HValid(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.PR)
	p, err := partitioner.NEVertexCut(g, 4, partitioner.NEConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before := parallelCost(p, m)
	ParV2H(p, m, Config{BatchSize: 8})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if after := parallelCost(p, m); after > before*1.10 {
		t.Errorf("ParV2H worsened cost: %v -> %v", before, after)
	}
}

func TestRefineDeterministic(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	p1 := hubConcentratedEdgeCut(t, g, 4)
	p2 := hubConcentratedEdgeCut(t, g, 4)
	s1 := E2H(p1, m, Config{})
	s2 := E2H(p2, m, Config{})
	if s1.Migrated != s2.Migrated || s1.SplitEdges != s2.SplitEdges || s1.MastersMoved != s2.MastersMoved {
		t.Fatalf("refinement not deterministic: %+v vs %+v", s1, s2)
	}
	for i := 0; i < 4; i++ {
		if p1.Fragment(i).NumArcs() != p2.Fragment(i).NumArcs() {
			t.Fatalf("fragment %d arc counts differ", i)
		}
	}
}

func TestForFamily(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.PR)
	ec, _ := partitioner.HashEdgeCut(g, 3)
	if st := ForFamily(partitioner.EdgeCutFamily, ec, m, Config{}); st == nil {
		t.Fatal("edge-cut family should refine")
	}
	vc, _ := partitioner.GridVertexCut(g, 3)
	if st := ForFamily(partitioner.VertexCutFamily, vc, m, Config{}); st == nil {
		t.Fatal("vertex-cut family should refine")
	}
	hy, _ := partitioner.GingerHybrid(g, 3, partitioner.GingerConfig{})
	if st := ForFamily(partitioner.HybridFamily, hy, m, Config{}); st != nil {
		t.Fatal("hybrid baselines must pass through untouched")
	}
}

func TestGetCandidatesRespectsBudget(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	p := hubConcentratedEdgeCut(t, g, 4)
	tr := costmodel.NewTracker(p, m)
	// A huge budget keeps everything.
	if cands := getCandidates(tr, 0, 1e18, true); len(cands) != 0 {
		t.Fatalf("infinite budget still produced %d candidates", len(cands))
	}
	// A zero budget evicts every computing vertex.
	all := getCandidates(tr, 0, 0, true)
	if len(all) != p.NonDummyCount(0) {
		t.Fatalf("zero budget: %d candidates, want %d", len(all), p.NonDummyCount(0))
	}
}

// Balanced inputs should be (nearly) untouched: SSSP on xtraPuLP is
// the paper's "not much can be improved" case (Exp-1(5)).
func TestBalancedInputMostlyUntouched(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.SSSP)
	p, err := partitioner.HashEdgeCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := parallelCost(p, m)
	E2H(p, m, Config{})
	after := parallelCost(p, m)
	if after > before*1.05 {
		t.Fatalf("E2H hurt an already balanced partition: %v -> %v", before, after)
	}
}
