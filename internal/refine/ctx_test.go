package refine

import (
	"context"
	"errors"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/partitioner"
)

// TestRefineCtxPreCancelled: a dead context stops every ctx-aware
// refiner before it migrates anything; the partial Stats come back with
// the ctx error.
func TestRefineCtxPreCancelled(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	runs := map[string]func() (*Stats, error){
		"E2HCtx": func() (*Stats, error) {
			return E2HCtx(ctx, hubConcentratedEdgeCut(t, g, 4), m, Config{})
		},
		"ParE2HCtx": func() (*Stats, error) {
			return ParE2HCtx(ctx, hubConcentratedEdgeCut(t, g, 4), m, Config{})
		},
		"V2HCtx": func() (*Stats, error) {
			p, err := partitioner.GridVertexCut(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			return V2HCtx(ctx, p, m, Config{})
		},
		"ParV2HCtx": func() (*Stats, error) {
			p, err := partitioner.GridVertexCut(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			return ParV2HCtx(ctx, p, m, Config{})
		},
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			stats, err := run()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if stats == nil {
				t.Fatal("partial stats not returned")
			}
			if stats.Migrated != 0 || stats.SplitEdges != 0 || stats.MastersMoved != 0 {
				t.Fatalf("pre-cancelled refiner still refined: %+v", stats)
			}
		})
	}
}

// TestE2HCtxMidwayKeepsPartitionValid: cancelling after a couple of
// candidates leaves a usable, invariant-clean partition behind — the
// abort contract of the ctx-aware refiners.
func TestE2HCtxMidwayKeepsPartitionValid(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	full := hubConcentratedEdgeCut(t, g, 4)
	fullStats := E2H(full, m, Config{})
	if fullStats.Migrated < 2 {
		t.Skipf("fixture only migrates %d; nothing to interrupt", fullStats.Migrated)
	}

	p := hubConcentratedEdgeCut(t, g, 4)
	ctx, cancel := context.WithCancel(context.Background())
	polls := 0
	// The serial refiner polls the context once per candidate; cancel
	// after the second poll so exactly one candidate was processed.
	watch := &pollCtx{Context: ctx, onErr: func() {
		polls++
		if polls == 2 {
			cancel()
		}
	}}
	stats, err := E2HCtx(watch, p, m, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Migrated >= fullStats.Migrated {
		t.Fatalf("cancelled run migrated %d, full run %d — cancellation did not interrupt",
			stats.Migrated, fullStats.Migrated)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("partition invalid after cancelled refinement: %v", err)
	}
}

// TestE2HCtxUncancelledMatchesPlain: a background context changes
// nothing — the ctx entry point is the same algorithm.
func TestE2HCtxUncancelledMatchesPlain(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	want := E2H(hubConcentratedEdgeCut(t, g, 4), m, Config{})
	got, err := E2HCtx(context.Background(), hubConcentratedEdgeCut(t, g, 4), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Migrated != want.Migrated || got.SplitEdges != want.SplitEdges ||
		got.Merged != want.Merged || got.MastersMoved != want.MastersMoved {
		t.Fatalf("ctx run diverged from plain run:\n got %v\nwant %v", got, want)
	}
}

// TestForFamilyCtxDispatch: the family dispatcher routes to the ctx
// variants and treats hybrid as a no-op.
func TestForFamilyCtxDispatch(t *testing.T) {
	g := skewedDirected()
	m := costmodel.Reference(costmodel.CN)
	p := hubConcentratedEdgeCut(t, g, 4)
	stats, err := ForFamilyCtx(context.Background(), partitioner.EdgeCutFamily, p, m, Config{})
	if err != nil || stats == nil {
		t.Fatalf("edge-cut dispatch: %v, %v", stats, err)
	}
	hs, err := ForFamilyCtx(context.Background(), partitioner.HybridFamily, p, m, Config{})
	if err != nil || hs != nil {
		t.Fatalf("hybrid dispatch should be a no-op, got %v, %v", hs, err)
	}
}

// pollCtx counts Err polls so tests can cancel after a fixed number of
// refiner iterations without touching wall time.
type pollCtx struct {
	context.Context
	onErr func()
}

func (c *pollCtx) Err() error {
	c.onErr()
	return c.Context.Err()
}
