package refine

import (
	"context"
	"sort"

	"adp/internal/costmodel"
	"adp/internal/pool"
)

// probeFunc decides whether a candidate fits fragment j within the
// budget; it must be read-only so probes can run concurrently.
type probeFunc func(tr *costmodel.Tracker, c candidate, j int, budget float64) bool

// applyFunc performs an accepted migration.
type applyFunc func(tr *costmodel.Tracker, c candidate, j int, stats *Stats)

// parallelMigrate is the Section-5.3 BSP schedule for the migrate
// phases: in each superstep every overloaded fragment offers a batch
// of candidates round-robin to the underloaded workers; destinations
// probe their batch concurrently against the superstep-start state
// (on pl, one verdict slot per candidate, so the outcome is identical
// for any worker count), then accepted moves are applied at the
// barrier (with a re-check so a batch cannot overshoot the budget).
// Rejected candidates carry over to the next destination; candidates
// rejected everywhere are returned for ESplit/VMerge.
func parallelMigrate(pl *pool.Pool, tr *costmodel.Tracker, candidates []candidate, under []int, budget float64,
	batchSize int, probe probeFunc, apply applyFunc, stats *Stats) []candidate {
	leftover, _ := parallelMigrateCtx(context.Background(), pl, tr, candidates, under, budget, batchSize, probe, apply, stats)
	return leftover
}

// parallelMigrateCtx is parallelMigrate with cancellation observed at
// superstep boundaries: the supersteps already applied stand, the
// unprocessed queue is abandoned, and the ctx error is returned with
// the leftovers accumulated so far.
func parallelMigrateCtx(ctx context.Context, pl *pool.Pool, tr *costmodel.Tracker, candidates []candidate, under []int, budget float64,
	batchSize int, probe probeFunc, apply applyFunc, stats *Stats) ([]candidate, error) {

	if len(under) == 0 {
		return candidates, nil
	}
	type pending struct {
		c     candidate
		tries int
	}
	queue := make([]pending, 0, len(candidates))
	for _, c := range candidates {
		queue = append(queue, pending{c: c})
	}
	var leftover []candidate
	for len(queue) > 0 {
		if err := ctxErr(ctx); err != nil {
			return leftover, err
		}
		// Each superstep moves at most batchSize candidates per
		// overloaded fragment.
		batchBudget := map[int]int{}
		batch := queue[:0:0]
		var rest []pending
		for _, pd := range queue {
			if batchBudget[pd.c.frag] < batchSize {
				batchBudget[pd.c.frag]++
				batch = append(batch, pd)
			} else {
				rest = append(rest, pd)
			}
		}
		// Route each batched candidate to its round-robin destination.
		dest := make([]int, len(batch))
		for k, pd := range batch {
			j := under[pd.tries%len(under)]
			if j == pd.c.frag {
				pd.tries++
				batch[k] = pd
				j = under[pd.tries%len(under)]
			}
			dest[k] = j
		}
		// Concurrent probe pass against the superstep-start state.
		verdict := make([]bool, len(batch))
		pl.Run(len(batch), func(k int) {
			verdict[k] = probe(tr, batch[k].c, dest[k], budget)
		})
		// Apply at the barrier, destination by destination in order,
		// re-checking so that earlier acceptances are respected.
		order := make([]int, len(batch))
		for k := range order {
			order[k] = k
		}
		sort.SliceStable(order, func(a, b int) bool { return dest[order[a]] < dest[order[b]] })
		for _, k := range order {
			pd := batch[k]
			if verdict[k] && probe(tr, pd.c, dest[k], budget) {
				apply(tr, pd.c, dest[k], stats)
				continue
			}
			pd.tries++
			if pd.tries >= len(under) {
				leftover = append(leftover, pd.c)
			} else {
				rest = append(rest, pd)
			}
		}
		queue = rest
	}
	return leftover, nil
}
