package refine

import (
	"context"

	"adp/internal/costmodel"
	"adp/internal/pool"
)

// probeFunc decides whether a candidate fits fragment j within the
// budget; it must be read-only so probes can run concurrently.
type probeFunc func(tr *costmodel.Tracker, c candidate, j int, budget float64) bool

// applyFunc performs an accepted migration.
type applyFunc func(tr *costmodel.Tracker, c candidate, j int, stats *Stats)

// pending is a candidate in flight through the migrate supersteps with
// its destination-attempt counter.
type pending struct {
	c     candidate
	tries int
}

// migrateScratch holds every buffer the migrate superstep loop needs,
// allocated once per phase and reused across supersteps so the loop
// itself performs no heap allocation (ProbeLoopAllocs locks this). The
// probe pass only writes per-candidate verdict slots, so the scratch
// is owned by the coordinating goroutine and the determinism contract
// — identical Stats for any pool size — is untouched.
type migrateScratch struct {
	queue, rest []pending // double-buffered carry-over queues
	batch       []pending
	dest        []int
	verdict     []bool
	order       []int
	batchBudget []int // per-source-fragment budget, reset each superstep
	leftover    []candidate

	// probeChunk is the chunk function handed to pool.RunChunks; it
	// lives in the scratch (capturing only sc) so neither the superstep
	// loop nor a repeat call on warm scratch allocates a closure —
	// Pool.Run would wrap the per-index function in a fresh chunk
	// closure every superstep. The per-call inputs it reads are
	// re-bound below.
	probeChunk func(lo, hi int)
	tr         *costmodel.Tracker
	probe      probeFunc
	budget     float64
}

// grow readies the per-candidate buffers for n in-flight candidates;
// allocation happens only while a buffer is still cold.
func (s *migrateScratch) grow(n int) {
	if cap(s.batch) < n {
		s.batch = make([]pending, 0, n)
		s.rest = make([]pending, 0, n)
		s.dest = make([]int, 0, n)
		s.verdict = make([]bool, 0, n)
		s.order = make([]int, 0, n)
		s.leftover = make([]candidate, 0, n)
	}
}

// parallelMigrate is the Section-5.3 BSP schedule for the migrate
// phases: in each superstep every overloaded fragment offers a batch
// of candidates round-robin to the underloaded workers; destinations
// probe their batch concurrently against the superstep-start state
// (on pl, one verdict slot per candidate, so the outcome is identical
// for any worker count), then accepted moves are applied at the
// barrier (with a re-check so a batch cannot overshoot the budget).
// Rejected candidates carry over to the next destination; candidates
// rejected everywhere are returned for ESplit/VMerge.
func parallelMigrate(pl *pool.Pool, tr *costmodel.Tracker, candidates []candidate, under []int, budget float64,
	batchSize int, probe probeFunc, apply applyFunc, stats *Stats) []candidate {
	leftover, _ := parallelMigrateCtx(context.Background(), pl, tr, candidates, under, budget, batchSize, probe, apply, stats, nil)
	return leftover
}

// parallelMigrateCtx is parallelMigrate with cancellation observed at
// superstep boundaries: the supersteps already applied stand, the
// unprocessed queue is abandoned, and the ctx error is returned with
// the leftovers accumulated so far. sc supplies the superstep scratch
// (nil allocates a private one); the returned leftover slice aliases
// it, so callers must consume the leftovers before reusing sc.
func parallelMigrateCtx(ctx context.Context, pl *pool.Pool, tr *costmodel.Tracker, candidates []candidate, under []int, budget float64,
	batchSize int, probe probeFunc, apply applyFunc, stats *Stats, sc *migrateScratch) ([]candidate, error) {

	if len(under) == 0 {
		return candidates, nil
	}
	if sc == nil {
		sc = &migrateScratch{}
	}
	sc.grow(len(candidates))
	maxFrag := 0
	for _, c := range candidates {
		if c.frag >= maxFrag {
			maxFrag = c.frag + 1
		}
	}
	if cap(sc.batchBudget) < maxFrag {
		sc.batchBudget = make([]int, maxFrag)
	}
	sc.batchBudget = sc.batchBudget[:maxFrag]

	queue := sc.queue[:0]
	if cap(queue) < len(candidates) {
		queue = make([]pending, 0, len(candidates))
	}
	for _, c := range candidates {
		queue = append(queue, pending{c: c})
	}
	rest := sc.rest[:0]
	leftover := sc.leftover[:0]

	sc.tr, sc.probe, sc.budget = tr, probe, budget
	if sc.probeChunk == nil {
		sc.probeChunk = func(lo, hi int) {
			for k := lo; k < hi; k++ {
				sc.verdict[k] = sc.probe(sc.tr, sc.batch[k].c, sc.dest[k], sc.budget)
			}
		}
	}

	for len(queue) > 0 {
		if err := ctxErr(ctx); err != nil {
			sc.queue, sc.rest, sc.leftover = queue, rest, leftover
			return leftover, err
		}
		// Each superstep moves at most batchSize candidates per
		// overloaded fragment.
		for i := range sc.batchBudget {
			sc.batchBudget[i] = 0
		}
		sc.batch = sc.batch[:0]
		rest = rest[:0]
		for _, pd := range queue {
			if sc.batchBudget[pd.c.frag] < batchSize {
				sc.batchBudget[pd.c.frag]++
				sc.batch = append(sc.batch, pd)
			} else {
				rest = append(rest, pd)
			}
		}
		// Route each batched candidate to its round-robin destination.
		sc.dest = sc.dest[:0]
		for k, pd := range sc.batch {
			j := under[pd.tries%len(under)]
			if j == pd.c.frag {
				pd.tries++
				sc.batch[k] = pd
				j = under[pd.tries%len(under)]
			}
			sc.dest = append(sc.dest, j)
		}
		// Concurrent probe pass against the superstep-start state.
		sc.verdict = sc.verdict[:len(sc.batch)]
		for k := range sc.verdict {
			sc.verdict[k] = false
		}
		pl.RunChunks(len(sc.batch), 0, sc.probeChunk)
		// Apply at the barrier, destination by destination in order,
		// re-checking so that earlier acceptances are respected. The
		// ordering is a stable insertion sort on the destination ids —
		// the same permutation sort.SliceStable produced, without its
		// closure and reflection allocations.
		sc.order = sc.order[:len(sc.batch)]
		for k := range sc.order {
			sc.order[k] = k
		}
		for a := 1; a < len(sc.order); a++ {
			k := sc.order[a]
			b := a
			for b > 0 && sc.dest[sc.order[b-1]] > sc.dest[k] {
				sc.order[b] = sc.order[b-1]
				b--
			}
			sc.order[b] = k
		}
		for _, k := range sc.order {
			pd := sc.batch[k]
			if sc.verdict[k] && probe(tr, pd.c, sc.dest[k], budget) {
				apply(tr, pd.c, sc.dest[k], stats)
				continue
			}
			pd.tries++
			if pd.tries >= len(under) {
				leftover = append(leftover, pd.c)
			} else {
				rest = append(rest, pd)
			}
		}
		queue, rest = rest, queue
	}
	sc.queue, sc.rest, sc.leftover = queue, rest, leftover
	return leftover, nil
}
