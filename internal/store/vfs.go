package store

import (
	"os"
	"path/filepath"
	"sort"

	"adp/internal/fault"
)

// The store reaches the filesystem only through this seam, so a
// fault.DiskInjector can deterministically tear writes, fail fsyncs,
// or kill the "process" mid-write without touching the os package in
// tests.

type vfile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type vfs interface {
	// Create truncates/creates name for writing.
	Create(name string) (vfile, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (vfile, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// Size returns the current length of name in bytes.
	Size(name string) (int64, error)
	// List returns the file names (not paths) in dir, sorted.
	List(dir string) ([]string, error)
}

// osVFS is the real filesystem.
type osVFS struct{}

func (osVFS) Create(name string) (vfile, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osVFS) Append(name string) (vfile, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (osVFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osVFS) Rename(o, n string) error             { return os.Rename(o, n) }
func (osVFS) Remove(name string) error             { return os.Remove(name) }
func (osVFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

func (osVFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osVFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// faultVFS wraps a vfs, threading every write and fsync through a
// DiskInjector. Reads, renames and removals pass through untouched:
// the injector models a dying write path, and metadata operations
// either happen or don't (the crash-point sweep covers the "don't"
// case by truncating copies of the directory instead).
type faultVFS struct {
	base vfs
	inj  *fault.DiskInjector
}

func withInjector(base vfs, inj *fault.DiskInjector) vfs {
	if inj == nil {
		return base
	}
	return &faultVFS{base: base, inj: inj}
}

type faultFile struct {
	f   vfile
	inj *fault.DiskInjector
}

func (v *faultVFS) Create(name string) (vfile, error) {
	if v.inj.Crashed() {
		return nil, fault.ErrCrashed
	}
	f, err := v.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inj: v.inj}, nil
}

func (v *faultVFS) Append(name string) (vfile, error) {
	if v.inj.Crashed() {
		return nil, fault.ErrCrashed
	}
	f, err := v.base.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inj: v.inj}, nil
}

func (v *faultVFS) ReadFile(name string) ([]byte, error) { return v.base.ReadFile(name) }
func (v *faultVFS) Rename(o, n string) error {
	if v.inj.Crashed() {
		return fault.ErrCrashed
	}
	return v.base.Rename(o, n)
}
func (v *faultVFS) Remove(name string) error { return v.base.Remove(name) }
func (v *faultVFS) Truncate(name string, size int64) error {
	if v.inj.Crashed() {
		return fault.ErrCrashed
	}
	return v.base.Truncate(name, size)
}
func (v *faultVFS) Size(name string) (int64, error)   { return v.base.Size(name) }
func (v *faultVFS) List(dir string) ([]string, error) { return v.base.List(dir) }

func (f *faultFile) Write(p []byte) (int, error) {
	allow, ferr := f.inj.BeforeWrite(len(p))
	if ferr == nil {
		return f.f.Write(p)
	}
	n := 0
	if allow > 0 {
		// The surviving prefix really reaches the file: that is what a
		// torn write leaves behind for recovery to find.
		n, _ = f.f.Write(p[:allow])
	}
	return n, ferr
}

func (f *faultFile) Sync() error {
	if err := f.inj.BeforeSync(); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error { return f.f.Close() }

func join(dir, name string) string { return filepath.Join(dir, name) }
