package store

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"adp/internal/composite"
	"adp/internal/graph"
	"adp/internal/refine"
)

// The textual update stream is the WAL record grammar spelled out for
// humans — the `adpart -updates` driver and the tests speak it:
//
//	+ U V [D0 D1 ... Dk-1]   insert edge (U,V); the optional Di name
//	                         the destination fragment per bundled
//	                         partition, defaulting to locality routing
//	- U V                    delete edge (U,V)
//	commit                   batch boundary (ack point)
//
// Blank lines and lines starting with '#' are skipped.

// MutKind enumerates update-stream operations.
type MutKind uint8

const (
	MutInsert MutKind = iota + 1
	MutDelete
	MutCommit
)

// Mutation is one parsed update-stream line.
type Mutation struct {
	Kind MutKind
	U, V graph.VertexID
	// Dest is the explicit destination vector of an insert; nil routes
	// by locality.
	Dest []int
}

// String renders the mutation in the update-stream grammar.
func (m Mutation) String() string {
	switch m.Kind {
	case MutInsert:
		s := fmt.Sprintf("+ %d %d", m.U, m.V)
		for _, d := range m.Dest {
			s += fmt.Sprintf(" %d", d)
		}
		return s
	case MutDelete:
		return fmt.Sprintf("- %d %d", m.U, m.V)
	case MutCommit:
		return "commit"
	}
	return "invalid"
}

// ParseUpdates reads an update stream. Line numbers appear in errors.
func ParseUpdates(r io.Reader) ([]Mutation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var muts []Mutation
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "commit":
			if len(fields) != 1 {
				return nil, fmt.Errorf("updates: line %d: commit takes no operands", line)
			}
			muts = append(muts, Mutation{Kind: MutCommit})
		case "+", "-":
			if len(fields) < 3 {
				return nil, fmt.Errorf("updates: line %d: %q needs two vertex ids", line, fields[0])
			}
			u, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("updates: line %d: bad vertex %q", line, fields[1])
			}
			v, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("updates: line %d: bad vertex %q", line, fields[2])
			}
			m := Mutation{U: graph.VertexID(u), V: graph.VertexID(v)}
			if fields[0] == "-" {
				if len(fields) != 3 {
					return nil, fmt.Errorf("updates: line %d: delete takes no destinations", line)
				}
				m.Kind = MutDelete
			} else {
				m.Kind = MutInsert
				for _, f := range fields[3:] {
					d, err := strconv.Atoi(f)
					if err != nil || d < 0 {
						return nil, fmt.Errorf("updates: line %d: bad destination %q", line, f)
					}
					m.Dest = append(m.Dest, d)
				}
			}
			muts = append(muts, m)
		default:
			return nil, fmt.Errorf("updates: line %d: unknown op %q (want +, - or commit)", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("updates: %w", err)
	}
	return muts, nil
}

// RouteDest derives a destination vector for inserting (u,v): each
// bundled partition routes independently by endpoint locality, the
// same policy refine.ApplyUpdates uses for single partitions.
func RouteDest(c *composite.Composite, u, v graph.VertexID) []int {
	dest := make([]int, c.K())
	for j := range dest {
		dest[j] = refine.RouteFragment(c.Partition(j), u, v)
	}
	return dest
}

// Apply runs a parsed update stream through the store: inserts and
// deletes between commit markers form one durable batch each; a
// trailing unterminated batch is committed at the end. It returns the
// number of applied inserts and deletes.
func (s *Store) Apply(muts []Mutation) (inserts, deletes int, err error) {
	for i, m := range muts {
		switch m.Kind {
		case MutInsert:
			dest := m.Dest
			if len(dest) != 0 && len(dest) != s.comp.K() {
				return inserts, deletes, fmt.Errorf("store: mutation %d: %d destinations for %d partitions", i, len(dest), s.comp.K())
			}
			if len(dest) == 0 {
				dest = nil
			}
			if err := s.Insert(m.U, m.V, dest); err != nil {
				return inserts, deletes, fmt.Errorf("store: mutation %d: %w", i, err)
			}
			inserts++
		case MutDelete:
			if _, err := s.Delete(m.U, m.V); err != nil {
				return inserts, deletes, fmt.Errorf("store: mutation %d: %w", i, err)
			}
			deletes++
		case MutCommit:
			if err := s.Commit(); err != nil {
				return inserts, deletes, fmt.Errorf("store: mutation %d: %w", i, err)
			}
		}
	}
	return inserts, deletes, s.Commit()
}

// SplitEdges separates a mutation stream into the insert and delete
// edge lists refine.ApplyUpdates consumes (commit markers are batch
// framing only).
func SplitEdges(muts []Mutation) (inserts, deletes []graph.Edge) {
	for _, m := range muts {
		switch m.Kind {
		case MutInsert:
			inserts = append(inserts, graph.Edge{Src: m.U, Dst: m.V})
		case MutDelete:
			deletes = append(deletes, graph.Edge{Src: m.U, Dst: m.V})
		}
	}
	return inserts, deletes
}
