package store

import (
	"errors"
	"testing"

	"adp/internal/fault"
)

// catchUp pulls the leader's committed tail into the follower until the
// watermarks meet, max frames per round, and returns rounds used.
func catchUp(t *testing.T, leader, follower *Store, max int) int {
	t.Helper()
	rounds := 0
	for follower.CommittedLSN() < leader.CommittedLSN() {
		rounds++
		if rounds > 10000 {
			t.Fatalf("catch-up stuck at lsn %d (leader %d)", follower.CommittedLSN(), leader.CommittedLSN())
		}
		frames, _, err := leader.TailFrom(follower.CommittedLSN()+1, max)
		if errors.Is(err, ErrCompacted) {
			lsn, data, serr := leader.NewestSnapshot()
			if serr != nil {
				t.Fatal(serr)
			}
			if err := follower.InstallSnapshot(data, lsn); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := follower.AppendReplicated(frames); err != nil {
			t.Fatal(err)
		}
	}
	return rounds
}

// bootstrapReplica clones a follower store off the leader's newest
// snapshot.
func bootstrapReplica(t *testing.T, leader *Store, dir string, opts Options) *Store {
	t.Helper()
	lsn, data, err := leader.NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	f, err := CreateReplica(dir, leader.g, data, lsn, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestReplicaCatchUpBitwise is the core replication oracle: a follower
// bootstrapped from the leader's snapshot and fed the committed tail
// (in small, re-requested chunks) converges to EqualState, its log
// serves the identical frames back out (same LSNs, kinds and payload
// bytes — appendFrame re-framing is bit-exact), and a reopen of the
// follower directory recovers the same state with no damage.
func TestReplicaCatchUpBitwise(t *testing.T) {
	g, c := testComposite(t)
	dirL, dirF := t.TempDir()+"/lead", t.TempDir()+"/fol"
	leader, err := Create(dirL, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	follower := bootstrapReplica(t, leader, dirF, Options{})
	defer follower.Close()
	if got, want := follower.CommittedLSN(), leader.CommittedLSN(); got != want {
		t.Fatalf("bootstrap watermark %d, leader %d", got, want)
	}

	// Mutate the leader in several committed batches.
	muts := genMutations(t, g, c.Clone(), 120, 7)
	for i := 0; i < len(muts); i += 10 {
		end := i + 10
		if end > len(muts) {
			end = len(muts)
		}
		if _, _, err := leader.Apply(append(muts[i:end:end], Mutation{Kind: MutCommit})); err != nil {
			t.Fatal(err)
		}
	}

	catchUp(t, leader, follower, 7) // deliberately small pulls

	if err := follower.Composite().EqualState(leader.Composite()); err != nil {
		t.Fatalf("follower diverged after catch-up: %v", err)
	}

	// Frame-for-frame identity of the two logs over the shared range.
	from := follower.snapLSN + 1
	lf, _, err := leader.TailFrom(from, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ff, _, err := follower.TailFrom(from, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(lf) != len(ff) {
		t.Fatalf("leader serves %d frames, follower %d", len(lf), len(ff))
	}
	for i := range lf {
		if lf[i].LSN != ff[i].LSN || lf[i].Kind != ff[i].Kind || string(lf[i].Body) != string(ff[i].Body) {
			t.Fatalf("frame %d differs: leader (%d,%d,%x) follower (%d,%d,%x)",
				i, lf[i].LSN, lf[i].Kind, lf[i].Body, ff[i].LSN, ff[i].Kind, ff[i].Body)
		}
	}

	// Reopen the follower directory: recovery must land exactly on the
	// replicated committed prefix.
	wm := follower.CommittedLSN()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := Open(dirF, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.Damage != nil {
		t.Fatalf("follower reopen found damage: %v", info)
	}
	if re.CommittedLSN() != wm {
		t.Fatalf("reopened follower watermark %d, want %d", re.CommittedLSN(), wm)
	}
	if err := re.Composite().EqualState(leader.Composite()); err != nil {
		t.Fatalf("reopened follower diverged: %v", err)
	}
}

// TestAppendReplicatedIdempotentAndGapped pins the two stream-anomaly
// behaviours: duplicated (and re-sent) frames are no-ops, and a frame
// skipping ahead returns *GapError without disturbing state, so
// re-pulling from the watermark completes the batch.
func TestAppendReplicatedIdempotentAndGapped(t *testing.T) {
	g, c := testComposite(t)
	leader, err := Create(t.TempDir()+"/lead", c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower := bootstrapReplica(t, leader, t.TempDir()+"/fol", Options{})
	defer follower.Close()

	muts := genMutations(t, g, c.Clone(), 30, 11)
	if _, _, err := leader.Apply(append(muts[:len(muts):len(muts)], Mutation{Kind: MutCommit})); err != nil {
		t.Fatal(err)
	}
	frames, _, err := leader.TailFrom(follower.CommittedLSN()+1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("test needs >= 3 frames, got %d", len(frames))
	}

	// A gap: skip the first frame entirely.
	if _, err := follower.AppendReplicated(frames[1:]); err == nil {
		t.Fatal("gapped stream accepted")
	} else {
		var gap *GapError
		if !errors.As(err, &gap) {
			t.Fatalf("gapped stream returned %v, want *GapError", err)
		}
		if gap.Want != frames[0].LSN || gap.Got != frames[1].LSN {
			t.Fatalf("gap (want=%d got=%d), frames start at %d/%d", gap.Want, gap.Got, frames[0].LSN, frames[1].LSN)
		}
	}

	// Duplicates inside the run and a full re-send: all absorbed.
	dup := append(append([]RawFrame(nil), frames[:2]...), frames...)
	if _, err := follower.AppendReplicated(dup); err != nil {
		t.Fatal(err)
	}
	if _, err := follower.AppendReplicated(frames); err != nil {
		t.Fatal(err)
	}
	if follower.CommittedLSN() != leader.CommittedLSN() {
		t.Fatalf("watermark %d, want %d", follower.CommittedLSN(), leader.CommittedLSN())
	}
	if err := follower.Composite().EqualState(leader.Composite()); err != nil {
		t.Fatalf("follower diverged: %v", err)
	}
}

// TestAbortReplicatedAndRotate exercises the promotion-side primitives:
// a partial (uncommitted) batch is discarded in memory by
// AbortReplicated, RotateSegment fences the log, and the promoted store
// accepts its own writes and reopens cleanly — committed replicated
// state intact, discarded partial batch invisible.
func TestAbortReplicatedAndRotate(t *testing.T) {
	g, c := testComposite(t)
	dirF := t.TempDir() + "/fol"
	leader, err := Create(t.TempDir()+"/lead", c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower := bootstrapReplica(t, leader, dirF, Options{})
	defer follower.Close()

	muts := genMutations(t, g, c.Clone(), 40, 13)
	for i := 0; i < 40; i += 20 {
		if _, _, err := leader.Apply(append(muts[i:i+20:i+20], Mutation{Kind: MutCommit})); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, err := leader.TailFrom(follower.CommittedLSN()+1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Find the first commit boundary; feed one full batch plus a torn
	// prefix of the second.
	firstCommit := -1
	for i, f := range frames {
		if recKind(f.Kind) == recCommit {
			firstCommit = i
			break
		}
	}
	if firstCommit < 0 || firstCommit+2 >= len(frames) {
		t.Fatalf("no usable commit boundary in %d frames", len(frames))
	}
	if _, err := follower.AppendReplicated(frames[:firstCommit+2]); err != nil {
		t.Fatal(err)
	}
	wantWM := frames[firstCommit].LSN
	if follower.CommittedLSN() != wantWM {
		t.Fatalf("watermark %d after torn batch, want %d", follower.CommittedLSN(), wantWM)
	}

	// Promote: discard the torn tail, fence the log.
	follower.AbortReplicated()
	if err := follower.RotateSegment(); err != nil {
		t.Fatal(err)
	}

	// The promoted store accepts its own writes at the fenced LSN.
	own := genMutations(t, g, follower.Composite().Clone(), 10, 17)
	if _, _, err := follower.Apply(append(own[:len(own):len(own)], Mutation{Kind: MutCommit})); err != nil {
		t.Fatal(err)
	}

	want := follower.Composite().Clone()
	wm := follower.CommittedLSN()
	if wm <= wantWM {
		t.Fatalf("own write did not advance the watermark (%d <= %d)", wm, wantWM)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := Open(dirF, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.Damage != nil {
		t.Fatalf("promoted reopen found damage: %v", info)
	}
	if re.CommittedLSN() != wm {
		t.Fatalf("promoted reopen watermark %d, want %d", re.CommittedLSN(), wm)
	}
	if err := re.Composite().EqualState(want); err != nil {
		t.Fatalf("promoted reopen diverged: %v", err)
	}
}

// TestReplicaSnapshotCatchUp drives the compaction path: the leader
// snapshots and compacts its log past the follower's position, TailFrom
// reports ErrCompacted, and InstallSnapshot re-bases the follower — the
// follower's own automatic snapshots (SnapshotEvery) also fire along
// the way, proving follower segments are self-contained (v2 headers
// carry the dest vector across segment boundaries).
func TestReplicaSnapshotCatchUp(t *testing.T) {
	g, c := testComposite(t)
	dirF := t.TempDir() + "/fol"
	leader, err := Create(t.TempDir()+"/lead", c, Options{SnapshotEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower := bootstrapReplica(t, leader, dirF, Options{SnapshotEvery: 10})
	defer follower.Close()

	muts := genMutations(t, g, c.Clone(), 60, 19)
	for i := 0; i < 60; i += 6 {
		if _, _, err := leader.Apply(append(muts[i:i+6:i+6], Mutation{Kind: MutCommit})); err != nil {
			t.Fatal(err)
		}
	}
	// The leader has compacted (SnapshotEvery 25 over 60 mutations), so
	// a follower still at the bootstrap LSN must hit ErrCompacted at
	// least once; catchUp installs the snapshot and resumes.
	if _, _, err := leader.TailFrom(follower.CommittedLSN()+1, 10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("leader did not compact past the follower (err %v)", err)
	}
	catchUp(t, leader, follower, 9)
	if err := follower.Composite().EqualState(leader.Composite()); err != nil {
		t.Fatalf("follower diverged after snapshot catch-up: %v", err)
	}

	// Reopen after the follower's own snapshots + v2 segment headers.
	wm := follower.CommittedLSN()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := Open(dirF, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.Damage != nil {
		t.Fatalf("follower reopen found damage: %v", info)
	}
	if re.CommittedLSN() != wm {
		t.Fatalf("reopened watermark %d, want %d", re.CommittedLSN(), wm)
	}
	if err := re.Composite().EqualState(leader.Composite()); err != nil {
		t.Fatalf("reopened follower diverged: %v", err)
	}
}

// TestReplicaDiskFaultCommittedPrefix injects fsync failures on the
// follower while it replays the leader's stream: every acked
// (committed) batch must survive a reopen bitwise, and the recovered
// watermark equals the last successfully committed LSN.
func TestReplicaDiskFaultCommittedPrefix(t *testing.T) {
	g, c := testComposite(t)
	dirF := t.TempDir() + "/fol"
	leader, err := Create(t.TempDir()+"/lead", c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	inj := fault.NewDiskInjector(
		fault.DiskEvent{Kind: fault.SyncErr, N: 4},
		fault.DiskEvent{Kind: fault.SyncErr, N: 5},
	)
	follower := bootstrapReplica(t, leader, dirF, Options{Injector: inj})
	defer follower.Close()

	muts := genMutations(t, g, c.Clone(), 50, 23)
	for i := 0; i < 50; i += 10 {
		if _, _, err := leader.Apply(append(muts[i:i+10:i+10], Mutation{Kind: MutCommit})); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, err := leader.TailFrom(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Feed everything; the armed fsync failure poisons mid-stream. The
	// retry ladder (RetrySync) then completes the interrupted commit and
	// the rest of the stream re-applies idempotently.
	_, aerr := follower.AppendReplicated(frames)
	if aerr == nil {
		t.Fatal("armed fsync failure never fired")
	}
	for attempt := 0; follower.CanRetrySync() && attempt < 5; attempt++ {
		if err := follower.RetrySync(); err == nil {
			break
		}
	}
	if follower.Failed() {
		t.Fatalf("retry ladder did not clear the poison")
	}
	if _, err := follower.AppendReplicated(frames); err != nil {
		t.Fatal(err)
	}
	if follower.CommittedLSN() != leader.CommittedLSN() {
		t.Fatalf("watermark %d after recovery, leader %d", follower.CommittedLSN(), leader.CommittedLSN())
	}
	if err := follower.Composite().EqualState(leader.Composite()); err != nil {
		t.Fatalf("follower diverged after fsync chaos: %v", err)
	}

	wm := follower.CommittedLSN()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := Open(dirF, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.Damage != nil {
		t.Fatalf("reopen found damage: %v", info)
	}
	if re.CommittedLSN() != wm {
		t.Fatalf("reopened watermark %d, want %d", re.CommittedLSN(), wm)
	}
	if err := re.Composite().EqualState(leader.Composite()); err != nil {
		t.Fatalf("reopened follower diverged: %v", err)
	}
}

// TestWalStats sanity-checks the /metrics wal block numbers.
func TestWalStats(t *testing.T) {
	g, c := testComposite(t)
	st, err := Create(t.TempDir()+"/st", c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	muts := genMutations(t, g, c.Clone(), 10, 29)
	if _, _, err := st.Apply(append(muts[:len(muts):len(muts)], Mutation{Kind: MutCommit})); err != nil {
		t.Fatal(err)
	}
	ws := st.WalStats()
	if ws.CommittedLSN != st.CommittedLSN() {
		t.Fatalf("wal stats lsn %d, store %d", ws.CommittedLSN, st.CommittedLSN())
	}
	if ws.Segments < 1 || ws.Bytes <= 0 {
		t.Fatalf("implausible segment stats: %+v", ws)
	}
	if ws.Snapshots < 1 || ws.SnapshotBytes <= 0 {
		t.Fatalf("implausible snapshot stats: %+v", ws)
	}
}
