package store

import (
	"os"
	"path/filepath"
	"testing"

	"adp/internal/graph"
)

// FuzzWALReplay feeds arbitrary bytes as the WAL segment of an
// otherwise-intact store: Open must never panic, and whenever it
// succeeds the recovered composite must pass full index validation —
// torn, bit-flipped, or adversarial logs degrade to a shorter committed
// prefix, never to a corrupt store.
func FuzzWALReplay(f *testing.F) {
	g, muts, snapBytes, walBytes := recordFuzzRun(f)

	f.Add(walBytes)
	f.Add(walBytes[:len(walBytes)/2])
	f.Add(walBytes[:segHdrLen])
	f.Add([]byte{})
	tampered := append([]byte(nil), walBytes...)
	tampered[len(tampered)/3] ^= 0xFF
	f.Add(tampered)

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName(0)), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName(1)), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		s, info, err := Open(dir, g, Options{})
		if err != nil {
			return // refusing hostile input is fine; panicking is not
		}
		defer s.Close()
		if err := s.Composite().ValidateIndex(); err != nil {
			t.Fatalf("recovered composite fails validation: %v", err)
		}
		if info.Replayed > len(muts) {
			// The log can only ack mutations that were actually recorded;
			// anything more means replay invented state.
			t.Fatalf("replayed %d mutations from a %d-mutation log", info.Replayed, len(muts))
		}
		// And the store fsck sees after recovery must be structurally
		// clean: recovery's truncation is fsck's definition of repair.
		rep, err := Fsck(dir, g, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range rep.Segments {
			if seg.Damage != nil {
				t.Fatalf("damage survives recovery: %v", seg.Damage)
			}
		}
	})
}

// recordFuzzRun is recordRun sized for the fuzz corpus (fewer
// mutations keep per-input work small).
func recordFuzzRun(f *testing.F) (g *graph.Graph, muts []Mutation, snapBytes, walBytes []byte) {
	gg, c := testComposite(f)
	dir := f.TempDir()
	s, err := Create(dir, c, Options{})
	if err != nil {
		f.Fatal(err)
	}
	muts = genMutations(f, gg, s.Composite(), 60, 31)
	for _, m := range muts {
		if m.Kind == MutInsert {
			err = s.Insert(m.U, m.V, m.Dest)
		} else {
			_, err = s.Delete(m.U, m.V)
		}
		if err != nil {
			f.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	snapBytes, err = os.ReadFile(filepath.Join(dir, snapName(0)))
	if err != nil {
		f.Fatal(err)
	}
	walBytes, err = os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		f.Fatal(err)
	}
	return gg, muts, snapBytes, walBytes
}
