package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"adp/internal/composite"
	"adp/internal/fault"
	"adp/internal/graph"
)

// Options tunes a store's durability/throughput trade and threads the
// deterministic disk-fault injector through the write path.
type Options struct {
	// SyncEvery is the number of commits between fsyncs: 0 or 1 syncs
	// every commit (full durability), N>1 batches N commits per fsync
	// (a bounded loss window of up to N-1 acked batches on power
	// failure — never an inconsistent state, recovery still lands on a
	// commit boundary).
	SyncEvery int
	// SnapshotEvery triggers an automatic snapshot + log compaction
	// once this many mutations have committed since the last snapshot;
	// 0 disables automatic snapshots (call Snapshot explicitly).
	SnapshotEvery int
	// Injector, when non-nil, arms deterministic disk faults (short
	// writes, fsync errors, crash-after-N-bytes) on every write and
	// sync the store issues.
	Injector *fault.DiskInjector
}

func (o Options) syncEvery() int {
	if o.SyncEvery < 1 {
		return 1
	}
	return o.SyncEvery
}

// RecoveryInfo describes what Open found and did.
type RecoveryInfo struct {
	// SnapshotLSN is the LSN covered by the snapshot recovery started
	// from.
	SnapshotLSN uint64
	// Replayed counts committed mutations applied on top of the
	// snapshot.
	Replayed int
	// SkippedFrames counts valid frames at or below the snapshot LSN
	// (already folded into the snapshot).
	SkippedFrames int
	// DiscardedMutations counts valid but never-committed mutations
	// dropped from the tail (they were never acked).
	DiscardedMutations int
	// Damage is non-nil when the scan stopped at a torn or corrupt
	// frame; DamagedSegment names the file.
	Damage         *Damage
	DamagedSegment string
	// TruncatedBytes is how many trailing log bytes Open cut away
	// (damage plus uncommitted tail).
	TruncatedBytes int64
	// SnapshotsSkipped counts newer snapshot files that failed to parse
	// and were passed over.
	SnapshotsSkipped int
}

// String summarises the recovery on one line.
func (ri *RecoveryInfo) String() string {
	s := fmt.Sprintf("recovered from snapshot lsn=%d: replayed %d, discarded %d uncommitted, truncated %d bytes",
		ri.SnapshotLSN, ri.Replayed, ri.DiscardedMutations, ri.TruncatedBytes)
	if ri.Damage != nil {
		s += fmt.Sprintf(" (%s: %s at offset %d)", ri.DamagedSegment, ri.Damage.Reason, ri.Damage.Offset)
	}
	return s
}

// Store is a crash-consistent composite partition: an in-memory
// composite fronted by an append-only mutation WAL and periodic full
// snapshots. Not safe for concurrent use; wrap externally if shared.
type Store struct {
	dir  string
	fs   vfs
	opts Options
	g    *graph.Graph
	comp *composite.Composite

	nextLSN uint64 // LSN the next appended frame gets
	snapLSN uint64 // highest LSN folded into the newest snapshot

	// commitLSN is the LSN of the newest durably committed frame — the
	// replication watermark. It is the only Store field readable from
	// other goroutines (TailFrom, /metrics, the replication leader);
	// everything else keeps the single-writer discipline.
	commitLSN atomic.Uint64

	// Replication staging (follower role): mutations decoded from
	// leader frames since the last commit boundary, applied to the
	// composite only when their commit marker lands durably.
	replStaged []replStagedMut
	replDest   []int

	seg     vfile
	segName string

	pending     []byte // encoded frames since the last commit
	pendingMuts int
	lastDest    []int // destination vector of the last logged recDest

	commitsSinceSync int
	mutsSinceSnap    int
	committed        int64

	failed error
	// retrySync marks the poisoning failure as a commit-time fsync
	// error: the batch's bytes already reached the file intact, so a
	// follow-up RetrySync can complete the commit. Short or torn
	// writes never set it.
	retrySync bool
}

func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.comp", lsn) }
func walName(lsn uint64) string  { return fmt.Sprintf("wal-%016x.log", lsn) }

func parseLSNName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	lsn, err := strconv.ParseUint(hex, 16, 64)
	return lsn, err == nil
}

func parseSnapName(name string) (uint64, bool) { return parseLSNName(name, "snap-", ".comp") }
func parseWALName(name string) (uint64, bool)  { return parseLSNName(name, "wal-", ".log") }

// Create initialises dir (created if missing, must not already hold a
// store) with a full snapshot of c at LSN 0 and an empty WAL segment.
// The store mutates c in place from then on.
func Create(dir string, c *composite.Composite, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs := withInjector(vfs(osVFS{}), opts.Injector)
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, n := range names {
		_, isSnap := parseSnapName(n)
		_, isWAL := parseWALName(n)
		if isSnap || isWAL {
			return nil, fmt.Errorf("store: %s already holds a store (found %s); use Open", dir, n)
		}
	}
	s := &Store{
		dir:  dir,
		fs:   fs,
		opts: opts,
		g:    c.Partition(0).Graph(),
		comp: c,
		// LSN 0 is reserved for "nothing logged yet": the first frame
		// gets LSN 1 and the initial snapshot covers LSN 0.
		nextLSN: 1,
	}
	if err := s.writeSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	s.commitLSN.Store(s.nextLSN - 1)
	return s, nil
}

// Open recovers the store in dir over g: it loads the newest readable
// snapshot, replays every committed WAL mutation above its LSN in
// order, truncates the log at the first torn or corrupt frame (and
// drops any valid but uncommitted tail — those mutations were never
// acked), and resumes logging on a fresh segment. Damaged log bytes
// never fail an Open; it fails only when no usable snapshot exists or
// when compaction has discarded frames a fallback snapshot would need.
func Open(dir string, g *graph.Graph, opts Options) (*Store, *RecoveryInfo, error) {
	fs := withInjector(vfs(osVFS{}), opts.Injector)
	names, err := fs.List(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	info := &RecoveryInfo{}

	var snaps []uint64
	segs := make(map[uint64]string)
	var segLSNs []uint64
	for _, n := range names {
		if lsn, ok := parseSnapName(n); ok {
			snaps = append(snaps, lsn)
		}
		if lsn, ok := parseWALName(n); ok {
			segs[lsn] = n
			segLSNs = append(segLSNs, lsn)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segLSNs, func(i, j int) bool { return segLSNs[i] < segLSNs[j] })
	if len(snaps) == 0 {
		return nil, nil, fmt.Errorf("store: %s holds no snapshot", dir)
	}

	// Newest readable snapshot wins.
	var comp *composite.Composite
	var compLSN uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		data, rerr := fs.ReadFile(join(dir, snapName(snaps[i])))
		if rerr == nil {
			var c *composite.Composite
			// Dynamic read: logged inserts put arcs in snapshots that the
			// base graph never had.
			c, rerr = composite.ReadDynamic(bytes.NewReader(data), g)
			if rerr == nil {
				comp, compLSN = c, snaps[i]
				break
			}
		}
		info.SnapshotsSkipped++
	}
	if comp == nil {
		return nil, nil, fmt.Errorf("store: no snapshot in %s is readable (%d tried)", dir, len(snaps))
	}
	if info.SnapshotsSkipped > 0 && len(segLSNs) > 0 && segLSNs[0] > compLSN+1 {
		// A fallback snapshot is only usable while the log still
		// reaches back to it; compaction may have cut that prefix.
		return nil, nil, fmt.Errorf("store: newest snapshot unreadable and log compacted past the %s fallback (log starts at lsn %d)",
			snapName(compLSN), segLSNs[0])
	}
	info.SnapshotLSN = compLSN

	s := &Store{dir: dir, fs: fs, opts: opts, g: g, comp: comp, snapLSN: compLSN, nextLSN: compLSN + 1}
	if err := s.replay(segs, segLSNs, info); err != nil {
		return nil, nil, err
	}
	if err := s.openSegment(); err != nil {
		return nil, nil, err
	}
	s.commitLSN.Store(s.nextLSN - 1)
	return s, info, nil
}

// replay walks the WAL segments in LSN order, applies committed
// batches above the snapshot LSN, and physically truncates the log at
// the first damage or after the last commit.
func (s *Store) replay(segs map[uint64]string, segLSNs []uint64, info *RecoveryInfo) error {
	type batched struct {
		insert bool
		u, v   graph.VertexID
		dest   []int
	}
	var (
		batch   []batched
		curDest []int
		// destAtCommit is the sticky dest vector as of the last commit
		// boundary — recovered into replDest so a restarted follower can
		// keep self-contained segment headers (a recDest in a discarded
		// uncommitted tail must not leak into it).
		destAtCommit []int
		next         = uint64(0) // expected first LSN; 0 accepts any start
	)
	// liveStart is the first segment not fully covered by the snapshot;
	// covered segments are skipped without decoding so bitrot in
	// compacted-but-undeleted history cannot block live replay.
	liveStart := 0
	for si := range segLSNs {
		if si+1 < len(segLSNs) && segLSNs[si+1] <= s.snapLSN+1 {
			liveStart = si + 1
		}
	}
	// Last fully-committed position within the live segments.
	lastCommitSeg, lastCommitOff := -1, int64(segHdrLen)
	// liveHdrLen is the liveStart segment's header length — the
	// truncation floor when no commit survives (v2 headers are longer
	// than the fixed 8 bytes).
	liveHdrLen := int64(segHdrLen)
	damageAt := func(si int, d *Damage) {
		if info.Damage == nil {
			info.Damage = d
			info.DamagedSegment = segs[segLSNs[si]]
		}
	}
	nVerts := uint64(s.g.NumVertices())

scan:
	for si := liveStart; si < len(segLSNs); si++ {
		start := segLSNs[si]
		data, err := s.fs.ReadFile(join(s.dir, segs[start]))
		if err != nil {
			return fmt.Errorf("store: reading segment %s: %w", segs[start], err)
		}
		if next != 0 && start != next {
			// A gap or overlap between segments severs the LSN chain:
			// nothing from here on is trustworthy.
			damageAt(si, &Damage{Offset: 0, Reason: fmt.Sprintf("segment starts at lsn %d, want %d", start, next)})
			break scan
		}
		if next == 0 && start > s.snapLSN+1 {
			// The live log does not reach back to the snapshot: frames
			// between are missing, so nothing here can be applied.
			damageAt(si, &Damage{Offset: 0, Reason: fmt.Sprintf("segment starts at lsn %d, snapshot covers %d", start, s.snapLSN)})
			break scan
		}
		frames, hdrDest, dmg, err := scanSegmentDest(data, start)
		if err != nil {
			damageAt(si, &Damage{Offset: 0, Reason: err.Error()})
			break scan
		}
		if si == liveStart {
			liveHdrLen = segmentHeaderLen(data)
		}
		if hdrDest != nil {
			// A follower-opened segment seeds the sticky dest vector from
			// its header; validate like a recDest frame.
			if len(hdrDest) != s.comp.K() {
				damageAt(si, &Damage{Offset: 0, Reason: fmt.Sprintf("header dest has %d entries, composite has %d partitions", len(hdrDest), s.comp.K())})
				break scan
			}
			ok := true
			for _, d := range hdrDest {
				if d < 0 || d >= s.comp.N() {
					damageAt(si, &Damage{Offset: 0, Reason: fmt.Sprintf("header dest fragment %d out of range [0,%d)", d, s.comp.N())})
					ok = false
					break
				}
			}
			if !ok {
				break scan
			}
			// Segments open only at commit boundaries, so the header dest
			// is also the dest-at-commit state until a commit says
			// otherwise.
			curDest = hdrDest
			destAtCommit = hdrDest
		}
		for _, f := range frames {
			bad := func(reason string) { damageAt(si, &Damage{Offset: f.off, Reason: reason}) }
			switch f.kind {
			case recDest:
				dest, derr := decodeDest(f.body)
				if derr != nil {
					bad(derr.Error())
					break scan
				}
				if len(dest) != s.comp.K() {
					bad(fmt.Sprintf("dest vector has %d entries, composite has %d partitions", len(dest), s.comp.K()))
					break scan
				}
				for _, d := range dest {
					if d < 0 || d >= s.comp.N() {
						bad(fmt.Sprintf("dest fragment %d out of range [0,%d)", d, s.comp.N()))
						break scan
					}
				}
				curDest = dest
			case recInsert, recDelete:
				u, v, derr := decodeEdge(f.body)
				if derr != nil {
					bad(derr.Error())
					break scan
				}
				if uint64(u) >= nVerts || uint64(v) >= nVerts {
					bad(fmt.Sprintf("edge (%d,%d) beyond %d vertices", u, v, nVerts))
					break scan
				}
				if f.kind == recInsert && curDest == nil {
					bad("insert with no destination vector in effect")
					break scan
				}
				if f.lsn > s.snapLSN {
					batch = append(batch, batched{insert: f.kind == recInsert, u: u, v: v, dest: curDest})
				} else {
					info.SkippedFrames++
				}
			case recCommit:
				for _, m := range batch {
					if m.insert {
						if err := s.comp.InsertEdge(m.u, m.v, m.dest); err != nil {
							// Unreachable after the validation above;
							// classified as damage rather than a failed
							// recovery.
							bad(fmt.Sprintf("applying insert: %v", err))
							break scan
						}
					} else {
						s.comp.DeleteEdge(m.u, m.v)
					}
					info.Replayed++
				}
				if f.lsn <= s.snapLSN {
					info.SkippedFrames++
				}
				batch = batch[:0]
				lastCommitSeg, lastCommitOff = si, f.end
				s.nextLSN = f.lsn + 1
				destAtCommit = curDest
			}
		}
		if dmg != nil {
			damageAt(si, dmg)
			break scan
		}
		next = start + uint64(len(frames))
	}
	info.DiscardedMutations = len(batch)

	// Physical truncation: cut the damaged/uncommitted tail so future
	// opens see a log ending exactly at the last acked commit. Live
	// segments past the last commit go entirely; the one holding it is
	// truncated to the commit boundary. With no commit in the live log,
	// the first live segment is reset to its bare header.
	keepSeg, keepOff := lastCommitSeg, lastCommitOff
	if keepSeg < 0 {
		keepSeg, keepOff = liveStart, liveHdrLen
	}
	if destAtCommit != nil {
		s.replDest = append([]int(nil), destAtCommit...)
	}
	for si := len(segLSNs) - 1; si >= liveStart; si-- {
		name := segs[segLSNs[si]]
		path := join(s.dir, name)
		switch {
		case si > keepSeg:
			info.TruncatedBytes += s.fileSizeBeyond(path, 0)
			if err := s.fs.Remove(path); err != nil {
				return fmt.Errorf("store: removing %s: %w", name, err)
			}
		case si == keepSeg:
			if extra := s.fileSizeBeyond(path, keepOff); extra > 0 {
				info.TruncatedBytes += extra
				if err := s.fs.Truncate(path, keepOff); err != nil {
					return fmt.Errorf("store: truncating %s: %w", name, err)
				}
			}
		}
	}
	return nil
}

func (s *Store) fileSizeBeyond(path string, keep int64) int64 {
	data, err := s.fs.ReadFile(path)
	if err != nil || int64(len(data)) <= keep {
		return 0
	}
	return int64(len(data)) - keep
}

// openSegment starts a fresh active segment at the next LSN.
func (s *Store) openSegment() error {
	s.segName = walName(s.nextLSN)
	f, err := s.fs.Create(join(s.dir, s.segName))
	if err != nil {
		return s.fail(fmt.Errorf("store: creating segment: %w", err))
	}
	hdr := newSegmentHeader()
	if len(s.replDest) > 0 {
		// Follower role: replicated frames are appended verbatim, so the
		// fresh segment cannot re-log a recDest without consuming an LSN.
		// Record the sticky dest vector in the header instead, keeping
		// the segment self-contained for replay.
		hdr = newSegmentHeaderDest(s.replDest)
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return s.fail(fmt.Errorf("store: writing segment header: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return s.fail(fmt.Errorf("store: syncing segment header: %w", err))
	}
	s.seg = f
	// A fresh segment re-logs the destination vector on first use.
	s.lastDest = nil
	return nil
}

// fail poisons the store: after a write-path error the in-memory
// composite may be ahead of the acked log, so every further operation
// refuses until the caller reopens (recovering the last acked state).
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	return err
}

var errPoisoned = errors.New("store: previous write failed; reopen to recover")

func (s *Store) ready() error {
	if s.failed != nil {
		return fmt.Errorf("%w (cause: %v)", errPoisoned, s.failed)
	}
	if s.seg == nil {
		return errors.New("store: closed")
	}
	return nil
}

// Failed reports whether the write path is poisoned.
func (s *Store) Failed() bool { return s.failed != nil }

// CanRetrySync reports whether the poisoning failure is a retryable
// commit-time fsync error: the batch's frames reached the file intact
// and only the durability barrier failed, so re-issuing the fsync can
// complete the commit. Short writes, torn frames and failures after
// the segment closed are never retryable.
func (s *Store) CanRetrySync() bool {
	return s.failed != nil && s.retrySync && s.seg != nil
}

// RetrySync re-issues the fsync whose failure poisoned the store. On
// success the interrupted commit's bookkeeping is completed and the
// poison cleared — the store is fully usable again, with every
// previously acked batch durable. On failure the store stays poisoned
// and remains retryable, so callers can ladder a bounded number of
// attempts before giving up and reopening.
func (s *Store) RetrySync() error {
	if !s.CanRetrySync() {
		return fmt.Errorf("store: failure is not a retryable fsync (cause: %v)", s.failed)
	}
	if err := s.seg.Sync(); err != nil {
		s.failed = fmt.Errorf("store: retrying log sync: %w", err)
		return s.failed
	}
	// Durable now: finish what commit() skipped when the sync failed.
	s.commitsSinceSync = 0
	s.committed += int64(s.pendingMuts)
	s.mutsSinceSnap += s.pendingMuts
	s.pending = s.pending[:0]
	s.pendingMuts = 0
	s.failed = nil
	s.retrySync = false
	// A replicated commit interrupted by the failed sync still has its
	// staged mutations to fold into the composite.
	if err := s.applyReplStaged(); err != nil {
		return err
	}
	s.commitLSN.Store(s.nextLSN - 1)
	return nil
}

// Composite exposes the live in-memory composite. Mutate it only
// through the store, or the log diverges from the state.
func (s *Store) Composite() *composite.Composite { return s.comp }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// LSN returns the LSN of the most recently appended frame.
func (s *Store) LSN() uint64 { return s.nextLSN - 1 }

// CommittedLSN returns the LSN of the newest durably committed frame —
// the replication watermark. Unlike every other accessor it is safe to
// call from any goroutine.
func (s *Store) CommittedLSN() uint64 { return s.commitLSN.Load() }

// Committed returns the number of mutations committed through this
// handle.
func (s *Store) Committed() int64 { return s.committed }

// Insert coherently inserts the edge into every bundled partition and
// logs it. dest[j] names the target fragment in partition j; a nil
// dest routes each partition by endpoint locality
// (refine.RouteFragment). Durable only after Commit.
func (s *Store) Insert(u, v graph.VertexID, dest []int) error {
	if err := s.ready(); err != nil {
		return err
	}
	if int64(u) >= int64(s.g.NumVertices()) || int64(v) >= int64(s.g.NumVertices()) {
		return fmt.Errorf("store: edge (%d,%d) beyond %d vertices", u, v, s.g.NumVertices())
	}
	if dest == nil {
		dest = RouteDest(s.comp, u, v)
	}
	if !equalInts(dest, s.lastDest) {
		s.pending = appendFrame(s.pending, s.nextLSN, recDest, encodeDest(dest))
		s.nextLSN++
		s.lastDest = append([]int(nil), dest...)
	}
	if err := s.comp.InsertEdge(u, v, dest); err != nil {
		return err
	}
	var eb [8]byte
	putEdge(eb[:], u, v)
	s.pending = appendFrame(s.pending, s.nextLSN, recInsert, eb[:])
	s.nextLSN++
	s.pendingMuts++
	return nil
}

// Delete coherently deletes the edge from every bundled partition and
// logs it; reports whether any copy existed (absent edges are not
// logged). Durable only after Commit.
func (s *Store) Delete(u, v graph.VertexID) (bool, error) {
	if err := s.ready(); err != nil {
		return false, err
	}
	if !s.comp.DeleteEdge(u, v) {
		return false, nil
	}
	var eb [8]byte
	putEdge(eb[:], u, v)
	s.pending = appendFrame(s.pending, s.nextLSN, recDelete, eb[:])
	s.nextLSN++
	s.pendingMuts++
	return true, nil
}

// Commit appends a commit marker and writes the whole batch to the log
// in one append; the batch is acked once Commit returns nil. Fsync
// cadence follows Options.SyncEvery. A no-op with nothing pending.
func (s *Store) Commit() error { return s.commit(true) }

func (s *Store) commit(allowSnap bool) error {
	if err := s.ready(); err != nil {
		return err
	}
	if len(s.pending) == 0 {
		return nil
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(s.pendingMuts))
	s.pending = appendFrame(s.pending, s.nextLSN, recCommit, cnt[:])
	s.nextLSN++
	if _, err := s.seg.Write(s.pending); err != nil {
		return s.fail(fmt.Errorf("store: appending commit batch: %w", err))
	}
	s.commitsSinceSync++
	if s.commitsSinceSync >= s.opts.syncEvery() {
		if err := s.seg.Sync(); err != nil {
			// The batch (commit frame included) is already in the file;
			// only the fsync failed, so the commit can be completed by
			// RetrySync. pending/committed are deliberately left alone:
			// RetrySync finishes that bookkeeping on success.
			s.retrySync = true
			return s.fail(fmt.Errorf("store: syncing log: %w", err))
		}
		s.commitsSinceSync = 0
	}
	s.committed += int64(s.pendingMuts)
	s.mutsSinceSnap += s.pendingMuts
	s.pending = s.pending[:0]
	s.pendingMuts = 0
	s.commitLSN.Store(s.nextLSN - 1)
	if allowSnap && s.opts.SnapshotEvery > 0 && s.mutsSinceSnap >= s.opts.SnapshotEvery {
		return s.Snapshot()
	}
	return nil
}

// Snapshot commits anything pending, persists the full composite via
// an fsynced temp file plus atomic rename, rotates to a fresh WAL
// segment, and compacts: covered segments and all but one older
// snapshot are deleted.
func (s *Store) Snapshot() error {
	if err := s.commit(false); err != nil {
		return err
	}
	if err := s.ready(); err != nil {
		return err
	}
	if err := s.seg.Sync(); err != nil {
		s.retrySync = true
		return s.fail(fmt.Errorf("store: syncing log before snapshot: %w", err))
	}
	s.commitsSinceSync = 0
	if err := s.seg.Close(); err != nil {
		s.seg = nil
		return s.fail(fmt.Errorf("store: closing segment: %w", err))
	}
	s.seg = nil
	if err := s.writeSnapshot(); err != nil {
		return s.fail(err)
	}
	if err := s.openSegment(); err != nil {
		return err
	}
	s.compact()
	return nil
}

// ReplaceComposite durably replaces the live composite with c — the
// maintenance plane's promotion/rollback primitive. The pending batch
// is committed and synced, the active segment closed, and c persisted
// as a full snapshot (temp file + fsync + atomic rename) before a
// fresh WAL segment opens — so a crash at any byte recovers either the
// previous committed state (rename not yet visible) or exactly c, and
// every update wave after a nil return cuts its epochs from c's
// lineage. The store owns c from then on; the caller must stop
// mutating it. Shape mismatches are rejected before any disk write and
// do not poison the store; disk failures do, like any other write-path
// error, and leave the in-memory composite on the previous state so it
// keeps matching the durable prefix a reopen recovers.
func (s *Store) ReplaceComposite(c *composite.Composite) error {
	if err := s.ready(); err != nil {
		return err
	}
	if c.K() != s.comp.K() || c.N() != s.comp.N() {
		return fmt.Errorf("store: replacement shape (n=%d,k=%d) does not match store (n=%d,k=%d)",
			c.N(), c.K(), s.comp.N(), s.comp.K())
	}
	if c.Partition(0).Graph().NumVertices() != s.g.NumVertices() {
		return fmt.Errorf("store: replacement covers %d vertices, store has %d",
			c.Partition(0).Graph().NumVertices(), s.g.NumVertices())
	}
	if err := s.commit(false); err != nil {
		return err
	}
	if err := s.seg.Sync(); err != nil {
		s.retrySync = true
		return s.fail(fmt.Errorf("store: syncing log before replace: %w", err))
	}
	s.commitsSinceSync = 0
	if err := s.seg.Close(); err != nil {
		s.seg = nil
		return s.fail(fmt.Errorf("store: closing segment: %w", err))
	}
	s.seg = nil
	old := s.comp
	s.comp = c
	if err := s.writeSnapshot(); err != nil {
		s.comp = old
		return s.fail(err)
	}
	if err := s.openSegment(); err != nil {
		return err
	}
	s.compact()
	return nil
}

// compact removes WAL segments covered by the newest snapshot and all
// but one older snapshot (kept as a bitrot fallback). Advisory: a
// failed listing just leaves garbage for the next compaction.
func (s *Store) compact() {
	names, err := s.fs.List(s.dir)
	if err != nil {
		return
	}
	var oldSnaps []uint64
	for _, n := range names {
		if _, ok := parseWALName(n); ok && n != s.segName {
			_ = s.fs.Remove(join(s.dir, n))
		}
		if lsn, ok := parseSnapName(n); ok && lsn < s.snapLSN {
			oldSnaps = append(oldSnaps, lsn)
		}
	}
	sort.Slice(oldSnaps, func(i, j int) bool { return oldSnaps[i] < oldSnaps[j] })
	for i := 0; i+1 < len(oldSnaps); i++ {
		_ = s.fs.Remove(join(s.dir, snapName(oldSnaps[i])))
	}
}

// writeSnapshot persists the composite as snap-<lastLSN> atomically.
func (s *Store) writeSnapshot() error {
	lsn := s.nextLSN - 1
	final := snapName(lsn)
	tmp := final + ".tmp"
	// Encode in memory first: the snapshot lands in one Write call, so
	// injected write faults hit whole-snapshot boundaries and the op
	// count stays deterministic for the fault schedules.
	var buf bytes.Buffer
	if err := composite.Write(&buf, s.comp); err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	f, err := s.fs.Create(join(s.dir, tmp))
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := s.fs.Rename(join(s.dir, tmp), join(s.dir, final)); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	s.snapLSN = lsn
	s.mutsSinceSnap = 0
	return nil
}

// Close commits anything pending, syncs and closes the log. The store
// is unusable afterwards.
func (s *Store) Close() error {
	if s.seg == nil {
		return nil
	}
	if err := s.commit(false); err != nil {
		s.seg.Close()
		s.seg = nil
		return err
	}
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		s.seg = nil
		return s.fail(fmt.Errorf("store: syncing log on close: %w", err))
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
