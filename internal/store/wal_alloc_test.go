package store

import (
	"testing"

	"adp/internal/graph"
)

// TestWalAppendAllocFree pins the framing hot path at zero heap
// allocations per record: the payload prefix and the edge body live on
// the stack and the CRC is chained piecewise, so a steady-state append
// into a buffer with retained capacity never touches the allocator.
// This is the wal_append bench contract — a reintroduced per-frame
// make() shows up here before it shows up in BENCH_*.json.
func TestWalAppendAllocFree(t *testing.T) {
	buf := make([]byte, 0, 1<<12)
	lsn := uint64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		var eb [8]byte
		putEdge(eb[:], 7, 9)
		buf = appendFrame(buf[:0], lsn, recInsert, eb[:])
		lsn++
	})
	if allocs != 0 {
		t.Fatalf("appendFrame allocates %.1f times per record, want 0", allocs)
	}
}

// TestWalAppendRoundTrip checks that the chained-CRC encoder produces
// frames the scanner accepts and decodes bit-for-bit — the equivalence
// that lets appendFrame skip materialising the contiguous payload.
func TestWalAppendRoundTrip(t *testing.T) {
	buf := newSegmentHeader()
	var eb [8]byte
	putEdge(eb[:], 3, 12)
	buf = appendFrame(buf, 1, recInsert, eb[:])
	putEdge(eb[:], graph.VertexID(1<<31), 0xFFFF_FFFF)
	buf = appendFrame(buf, 2, recDelete, eb[:])
	buf = appendFrame(buf, 3, recCommit, []byte{2, 0, 0, 0})

	frames, dmg, err := scanSegment(buf, 1)
	if err != nil || dmg != nil {
		t.Fatalf("scanSegment: err=%v damage=%v", err, dmg)
	}
	if len(frames) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(frames))
	}
	u, v, err := decodeEdgeBody(frames[0].body)
	if err != nil || u != 3 || v != 12 {
		t.Fatalf("frame 0 decoded to (%d,%d), err=%v", u, v, err)
	}
	u, v, err = decodeEdgeBody(frames[1].body)
	if err != nil || u != 1<<31 || v != 0xFFFF_FFFF {
		t.Fatalf("frame 1 decoded to (%d,%d), err=%v", u, v, err)
	}
	if frames[2].kind != recCommit {
		t.Fatalf("frame 2 kind %v, want commit", frames[2].kind)
	}
}

func decodeEdgeBody(body []byte) (uint32, uint32, error) {
	u, v, err := decodeEdge(body)
	return u, v, err
}
