package store

import (
	"errors"
	"fmt"
	"sort"
)

// Segment tailing: the replication leader reads committed WAL frames
// back out of the store directory to ship them to followers. TailFrom
// and NewestSnapshot touch only immutable Store fields (dir, fs) plus
// the commitLSN watermark, so — unlike every other Store method — they
// are safe to call from any goroutine while the single writer appends.
// Frames past the watermark are never returned, which also makes torn
// tails from a racing append invisible: a frame below the watermark was
// durably synced before the watermark advanced.

// RawFrame is one WAL frame in transportable form: the exact LSN, kind
// and body bytes of the leader's frame. Re-appending it through
// appendFrame reproduces the leader's frame bit-for-bit (the CRC covers
// the payload only), so follower logs stay bitwise-identical to the
// leader's committed prefix.
type RawFrame struct {
	LSN  uint64
	Kind uint8
	Body []byte
}

// ErrCompacted reports that the requested tail start has been compacted
// out of the log; the follower must re-bootstrap from a snapshot.
var ErrCompacted = errors.New("store: requested frames compacted away; bootstrap from snapshot")

// GapError reports a replicated frame that does not extend the
// follower's log contiguously — the stream skipped frames (reordering
// beyond the staging window, or a lost message) and the follower must
// re-request from its durable watermark.
type GapError struct {
	Want, Got uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("store: replicated frame gap (want lsn %d, got %d)", e.Want, e.Got)
}

// TailFrom returns committed frames starting at LSN from, in LSN
// order, plus the current committed watermark. max is a soft cap: the
// response extends past it to the commit frame closing the final batch,
// so a follower that pulls from its durable watermark (which advances
// only at commit boundaries) always receives at least one complete
// batch and makes progress no matter how max relates to batch sizes.
// A from beyond the watermark returns no frames (the caller is caught
// up). A from below the start of the retained log returns ErrCompacted.
// Safe for concurrent use with the writing goroutine.
func (s *Store) TailFrom(from uint64, max int) ([]RawFrame, uint64, error) {
	committed := s.commitLSN.Load()
	if from == 0 {
		from = 1
	}
	if max <= 0 {
		max = 1 << 12
	}
	if from > committed {
		return nil, committed, nil
	}
	names, err := s.fs.List(s.dir)
	if err != nil {
		return nil, committed, fmt.Errorf("store: listing segments: %w", err)
	}
	var segLSNs []uint64
	for _, n := range names {
		if lsn, ok := parseWALName(n); ok {
			segLSNs = append(segLSNs, lsn)
		}
	}
	sort.Slice(segLSNs, func(i, j int) bool { return segLSNs[i] < segLSNs[j] })
	if len(segLSNs) == 0 || segLSNs[0] > from {
		return nil, committed, ErrCompacted
	}
	// First segment that can contain `from`: the last one starting at or
	// below it.
	start := 0
	for i, lsn := range segLSNs {
		if lsn <= from {
			start = i
		}
	}
	var out []RawFrame
	// full only once the cap is met AND the run ends on a commit frame;
	// the frame at the watermark is always a commit, so this terminates.
	full := func() bool {
		return len(out) >= max && recKind(out[len(out)-1].Kind) == recCommit
	}
	for si := start; si < len(segLSNs) && !full(); si++ {
		segStart := segLSNs[si]
		if segStart > committed {
			break
		}
		data, rerr := s.fs.ReadFile(join(s.dir, walName(segStart)))
		if rerr != nil {
			// Compaction raced the listing and removed the segment. If we
			// already collected frames the caller can make progress;
			// otherwise the tail start is gone.
			if len(out) > 0 {
				return out, committed, nil
			}
			return nil, committed, ErrCompacted
		}
		frames, _, serr := scanSegment(data, segStart)
		if serr != nil {
			if len(out) > 0 {
				return out, committed, nil
			}
			return nil, committed, fmt.Errorf("store: tailing %s: %w", walName(segStart), serr)
		}
		// Damage past the watermark is a racing append's torn tail and is
		// ignored; below the watermark it would have failed the original
		// commit, so frames up to `committed` are always intact.
		for _, f := range frames {
			if f.lsn > committed || full() {
				break
			}
			if f.lsn < from {
				continue
			}
			out = append(out, RawFrame{LSN: f.lsn, Kind: uint8(f.kind), Body: append([]byte(nil), f.body...)})
		}
	}
	if len(out) == 0 {
		// The log listing covered `from` but the bytes did not (e.g. the
		// covering segment was compacted and recreated above `from`).
		return nil, committed, ErrCompacted
	}
	if out[0].LSN != from {
		return nil, committed, ErrCompacted
	}
	return out, committed, nil
}

// NewestSnapshot returns the raw bytes and covered LSN of the newest
// snapshot file — the bootstrap payload for a follower whose applied
// LSN predates the retained log. Safe for concurrent use with the
// writing goroutine (snapshot files are published atomically and the
// newest is never removed).
func (s *Store) NewestSnapshot() (uint64, []byte, error) {
	for attempt := 0; ; attempt++ {
		names, err := s.fs.List(s.dir)
		if err != nil {
			return 0, nil, fmt.Errorf("store: listing snapshots: %w", err)
		}
		best := uint64(0)
		found := false
		for _, n := range names {
			if lsn, ok := parseSnapName(n); ok && (!found || lsn > best) {
				best, found = lsn, true
			}
		}
		if !found {
			return 0, nil, fmt.Errorf("store: %s holds no snapshot", s.dir)
		}
		data, err := s.fs.ReadFile(join(s.dir, snapName(best)))
		if err == nil {
			return best, data, nil
		}
		// A newer snapshot replaced this one between List and ReadFile;
		// retry against the fresh listing.
		if attempt >= 3 {
			return 0, nil, fmt.Errorf("store: reading snapshot %s: %w", snapName(best), err)
		}
	}
}

// WalStats summarises the on-disk log for /metrics. Safe for
// concurrent use with the writing goroutine; sizes are advisory (a
// racing append or compaction skews them by at most one segment).
type WalStats struct {
	CommittedLSN  uint64 `json:"committed_lsn"`
	Segments      int    `json:"segments"`
	Bytes         int64  `json:"bytes"`
	Snapshots     int    `json:"snapshots"`
	SnapshotLSN   uint64 `json:"snapshot_lsn"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
}

// WalStats reports the committed watermark and the on-disk footprint of
// the log and snapshots.
func (s *Store) WalStats() WalStats {
	st := WalStats{CommittedLSN: s.commitLSN.Load()}
	names, err := s.fs.List(s.dir)
	if err != nil {
		return st
	}
	for _, n := range names {
		if _, ok := parseWALName(n); ok {
			st.Segments++
			if sz, serr := s.fs.Size(join(s.dir, n)); serr == nil {
				st.Bytes += sz
			}
			continue
		}
		if lsn, ok := parseSnapName(n); ok {
			st.Snapshots++
			if lsn > st.SnapshotLSN {
				st.SnapshotLSN = lsn
			}
			if sz, serr := s.fs.Size(join(s.dir, n)); serr == nil {
				st.SnapshotBytes += sz
			}
		}
	}
	return st
}
