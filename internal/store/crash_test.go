package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"adp/internal/graph"
)

// The crash-point sweep is the store's central robustness claim made
// executable: record a 500-mutation run, simulate a process kill at
// every frame boundary of its WAL (and at sampled intra-frame byte
// offsets), reopen, and require the recovered composite to equal a
// clean replay of exactly the acked prefix — same coherence index,
// same placement, bitwise-identical engine report. Fsck must classify
// every cut the same way recovery does.

// dumpFsckArtifact renders the fsck view of a failing store directory
// into the test log and, when ADPART_FSCK_ARTIFACT names a file, appends
// it there so CI can upload the classification alongside the failure.
func dumpFsckArtifact(t *testing.T, dir, context string) {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# %s: %s\n", t.Name(), context)
	rep, err := Fsck(dir, nil, false)
	if err != nil {
		fmt.Fprintf(&buf, "fsck failed: %v\n", err)
	} else {
		rep.Format(&buf)
	}
	if path := os.Getenv("ADPART_FSCK_ARTIFACT"); path != "" {
		if f, ferr := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); ferr == nil {
			f.Write(buf.Bytes())
			f.Close()
		}
	}
	t.Log(buf.String())
}

// recordRun drives nMuts mutations through a fresh store, one commit
// per mutation, and returns the mutation list plus the raw bytes of the
// snapshot and the single WAL segment left on disk.
func recordRun(t *testing.T, nMuts int) (g *graph.Graph, muts []Mutation, snapBytes, walBytes []byte) {
	t.Helper()
	g, c := testComposite(t)
	dir := t.TempDir()
	s, err := Create(dir, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	muts = genMutations(t, g, s.Composite(), nMuts, 29)
	for _, m := range muts {
		if m.Kind == MutInsert {
			err = s.Insert(m.U, m.V, m.Dest)
		} else {
			_, err = s.Delete(m.U, m.V)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapBytes, err = os.ReadFile(filepath.Join(dir, snapName(0)))
	if err != nil {
		t.Fatal(err)
	}
	walBytes, err = os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return g, muts, snapBytes, walBytes
}

// crashDir materialises a store directory as a crash at byte offset
// cut of the WAL would leave it.
func crashDir(t *testing.T, snapBytes, walBytes []byte, cut int64) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapName(0)), snapBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(1)), walBytes[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCrashPointSweep(t *testing.T) {
	g, muts, snapBytes, walBytes := recordRun(t, 500)

	frames, dmg, err := scanSegment(walBytes, 1)
	if err != nil || dmg != nil {
		t.Fatalf("recorded segment does not scan cleanly: %v %v", err, dmg)
	}

	// Per-frame prefix accounting: after a cut at offset L, recovery
	// must land on the last commit with end <= L; that commit covers a
	// known mutation prefix because the run committed per mutation.
	type point struct {
		end       int64
		committed int // mutations acked by this commit
		mutsSeen  int // mutation frames fully on disk at this offset
	}
	boundaries := []point{{end: segHdrLen}}
	mutsSeen, committed := 0, 0
	for _, f := range frames {
		switch f.kind {
		case recInsert, recDelete:
			mutsSeen++
		case recCommit:
			committed = mutsSeen
		}
		boundaries = append(boundaries, point{end: f.end, committed: committed, mutsSeen: mutsSeen})
	}
	if committed != len(muts) {
		t.Fatalf("recorded %d commits for %d mutations", committed, len(muts))
	}

	// The cut set: every frame boundary, plus sampled intra-frame
	// offsets (mid-header and mid-payload of every 7th frame) and two
	// cuts inside the segment header itself. Short mode samples the
	// boundaries instead of visiting all of them.
	type cut struct {
		off      int64
		boundary bool
		prefix   int // committed mutations a reopen must recover
		discard  int // on-disk but never-acked mutations it must drop
	}
	var cuts []cut
	boundaryStride := 1
	frameStride := 7
	if testing.Short() {
		boundaryStride, frameStride = 17, 83
	}
	cuts = append(cuts, cut{off: 0}, cut{off: 3})
	for i, b := range boundaries {
		if i%boundaryStride == 0 || i == len(boundaries)-1 {
			cuts = append(cuts, cut{off: b.end, boundary: true, prefix: b.committed, discard: b.mutsSeen - b.committed})
		}
	}
	for i, f := range frames {
		if i%frameStride != 0 {
			continue
		}
		prev := boundaries[i] // state as of this frame's start
		for _, off := range []int64{f.off + 3, f.off + frameHdr + (f.end-f.off-frameHdr)/2} {
			if off > f.off && off < f.end {
				cuts = append(cuts, cut{off: off, prefix: prev.committed, discard: prev.mutsSeen - prev.committed})
			}
		}
	}
	// Ascending cuts let the clean reference composite advance
	// incrementally instead of replaying from scratch each time.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j].off < cuts[j-1].off; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}

	_, clean := testComposite(t)
	cleanAt := 0
	advance := func(prefix int) {
		for ; cleanAt < prefix; cleanAt++ {
			m := muts[cleanAt]
			if m.Kind == MutInsert {
				if err := clean.InsertEdge(m.U, m.V, m.Dest); err != nil {
					t.Fatal(err)
				}
			} else {
				clean.DeleteEdge(m.U, m.V)
			}
		}
	}

	reportStride := 31
	if testing.Short() {
		reportStride = 200
	}
	for ci, c := range cuts {
		dir := crashDir(t, snapBytes, walBytes, c.off)

		// Fsck first (Open repairs the log in place): an intra-frame cut
		// must be classified as damage at the torn frame's start; a
		// boundary cut is structurally clean, at most an un-acked tail.
		rep, err := Fsck(dir, g, false)
		if err != nil {
			t.Fatalf("cut %d: fsck: %v", c.off, err)
		}
		seg := rep.Segments[0]
		if c.boundary {
			if seg.Damage != nil {
				dumpFsckArtifact(t, dir, fmt.Sprintf("boundary cut at %d misclassified", c.off))
				t.Fatalf("cut %d is a frame boundary, fsck reports damage: %v", c.off, seg.Damage)
			}
		} else {
			if seg.Damage == nil {
				dumpFsckArtifact(t, dir, fmt.Sprintf("intra-frame cut at %d missed", c.off))
				t.Fatalf("cut %d tears a frame, fsck reports no damage", c.off)
			}
			wantOff := int64(0) // header cuts damage the whole file
			for _, b := range boundaries {
				if b.end <= c.off && b.end > wantOff {
					wantOff = b.end
				}
			}
			if c.off < segHdrLen {
				wantOff = 0
			}
			if seg.Damage.Offset != wantOff {
				dumpFsckArtifact(t, dir, fmt.Sprintf("cut at %d mislocalised", c.off))
				t.Fatalf("cut %d: damage at offset %d, want %d", c.off, seg.Damage.Offset, wantOff)
			}
		}

		s, info, err := Open(dir, g, Options{})
		if err != nil {
			dumpFsckArtifact(t, dir, fmt.Sprintf("open failed after cut at %d", c.off))
			t.Fatalf("cut %d: open: %v", c.off, err)
		}
		if info.Replayed != c.prefix {
			dumpFsckArtifact(t, dir, fmt.Sprintf("wrong prefix after cut at %d", c.off))
			t.Fatalf("cut %d: replayed %d mutations, want %d (%v)", c.off, info.Replayed, c.prefix, info)
		}
		if info.DiscardedMutations != c.discard {
			dumpFsckArtifact(t, dir, fmt.Sprintf("wrong discard count after cut at %d", c.off))
			t.Fatalf("cut %d: discarded %d mutations, want %d (%v)", c.off, info.DiscardedMutations, c.discard, info)
		}
		if c.boundary != (info.Damage == nil) {
			t.Fatalf("cut %d: boundary=%v but damage=%v", c.off, c.boundary, info.Damage)
		}

		advance(c.prefix)
		if err := s.Composite().ValidateIndex(); err != nil {
			dumpFsckArtifact(t, dir, fmt.Sprintf("corrupt index after cut at %d", c.off))
			t.Fatalf("cut %d: recovered index invalid: %v", c.off, err)
		}
		if err := s.Composite().EqualState(clean); err != nil {
			dumpFsckArtifact(t, dir, fmt.Sprintf("state divergence after cut at %d", c.off))
			t.Fatalf("cut %d: recovered state is not the %d-mutation prefix: %v", c.off, c.prefix, err)
		}
		if ci%reportStride == 0 || ci == len(cuts)-1 {
			got := runPR(t, s.Composite().Partition(0))
			want := runPR(t, clean.Partition(0))
			if !reportsEqual(got, want) {
				dumpFsckArtifact(t, dir, fmt.Sprintf("report divergence after cut at %d", c.off))
				t.Fatalf("cut %d: engine report diverges from clean prefix replay", c.off)
			}
		}

		// A reopened store must accept new writes: the sweep's final
		// guarantee is recovery into a live store, not a read-only view.
		if ci == len(cuts)-1 {
			if err := s.Insert(1, 2, RouteDest(s.Composite(), 1, 2)); err != nil {
				t.Fatalf("recovered store rejects writes: %v", err)
			}
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", c.off, err)
		}
	}
}

// TestCrashSweepBitFlips corrupts sampled frames of the recorded run
// in place (no truncation) and asserts fsck localises each flip to the
// containing frame, repair truncates there, and the repaired store
// opens to exactly the commits before the flipped frame.
func TestCrashSweepBitFlips(t *testing.T) {
	g, muts, snapBytes, walBytes := recordRun(t, 120)
	frames, dmg, err := scanSegment(walBytes, 1)
	if err != nil || dmg != nil {
		t.Fatalf("recorded segment does not scan cleanly: %v %v", err, dmg)
	}
	committedBefore := make([]int, len(frames))
	mutsSeen, committed := 0, 0
	for i, f := range frames {
		committedBefore[i] = committed
		switch f.kind {
		case recInsert, recDelete:
			mutsSeen++
		case recCommit:
			committed = mutsSeen
		}
	}

	stride := 11
	if testing.Short() {
		stride = 47
	}
	for i := 0; i < len(frames); i += stride {
		f := frames[i]
		corrupt := append([]byte(nil), walBytes...)
		corrupt[f.off+frameHdr+4] ^= 0x08 // payload bit: CRC must catch it
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName(0)), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName(1)), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}

		rep, err := Fsck(dir, g, false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Healthy() {
			t.Fatalf("frame %d: fsck missed a payload bit flip", i)
		}
		if d := rep.Segments[0].Damage; d == nil || d.Offset != f.off {
			dumpFsckArtifact(t, dir, fmt.Sprintf("bit flip in frame %d mislocalised", i))
			t.Fatalf("frame %d: damage %v, want offset %d", i, d, f.off)
		}

		if _, err := Fsck(dir, g, true); err != nil {
			t.Fatal(err)
		}
		rep, err = Fsck(dir, g, false)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Healthy() {
			dumpFsckArtifact(t, dir, fmt.Sprintf("repair of frame %d left damage", i))
			t.Fatalf("frame %d: store unhealthy after repair", i)
		}

		s, info, err := Open(dir, g, Options{})
		if err != nil {
			t.Fatalf("frame %d: open after repair: %v", i, err)
		}
		if info.Replayed != committedBefore[i] {
			t.Fatalf("frame %d: replayed %d, want %d", i, info.Replayed, committedBefore[i])
		}
		_, clean := testComposite(t)
		applyClean(t, clean, muts[:info.Replayed])
		if err := s.Composite().EqualState(clean); err != nil {
			dumpFsckArtifact(t, dir, fmt.Sprintf("divergence after repairing frame %d", i))
			t.Fatalf("frame %d: repaired state diverges: %v", i, err)
		}
		s.Close()
	}
}
