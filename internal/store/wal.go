// Package store is the crash-consistent on-disk home of a composite
// partition: an append-only CRC-framed write-ahead log of coherent
// edge mutations in front of periodic full snapshots in the existing
// composite serialisation format. Recovery (Open) replays the log onto
// the latest snapshot, truncating at the first torn or corrupt frame
// and discarding any un-acked tail, so a process kill at any byte of
// any write leaves a state identical to some committed prefix of the
// mutation history — never a panic, a half-applied batch, or a corrupt
// coherence index. See DESIGN.md, "Durability".
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"adp/internal/graph"
)

// WAL segment wire format (all little-endian):
//
//	header:  [segMagic u32][segVersion u32]
//	v2:      [segMagic u32][2 u32][k u16][k × dest u32]
//	frame:   [payloadLen u32][crc32c u32][payload]
//	payload: [lsn u64][kind u8][body]
//
// A version-2 header additionally records the destination vector in
// effect when the segment was opened. Replication followers append the
// leader's frames verbatim into segments whose boundaries do not line
// up with the leader's, so — unlike the leader, which re-logs a recDest
// on the first insert of every fresh segment — a follower segment may
// open mid-batch with a sticky recDest that lives in an earlier
// (possibly compacted) file. The header extension keeps every segment
// self-contained for replay without consuming an LSN.
//
// The CRC (Castagnoli) covers the payload only; payloadLen covers the
// payload only. Record kinds and bodies:
//
//	recDest   [k u16][k × dest u32]  sets the destination vector for
//	                                 subsequent inserts (sticky state)
//	recInsert [u u32][v u32]         coherent InsertEdge with the
//	                                 current destination vector
//	recDelete [u u32][v u32]         coherent DeleteEdge
//	recCommit [count u32]            batch boundary: everything since
//	                                 the previous commit is now acked
//
// LSNs are assigned per frame, increase by exactly 1, and never reset;
// a snapshot file's name carries the highest LSN it covers, so replay
// skips every frame at or below it.

const (
	segMagic   = uint32(0xAD9A_0005)
	segVersion = uint32(1)
	// segVersionDest marks a header carrying the sticky destination
	// vector (follower-opened segments).
	segVersionDest = uint32(2)
	segHdrLen      = 8
	frameHdr       = 8 // payloadLen + crc
	// maxFramePayload caps what a frame may declare; the largest real
	// payload is a recDest with 32 destinations (~140 bytes), so
	// anything near the cap is corruption, not data.
	maxFramePayload = 1 << 16
)

type recKind uint8

const (
	recDest recKind = iota + 1
	recInsert
	recDelete
	recCommit
)

func (k recKind) String() string {
	switch k {
	case recDest:
		return "dest"
	case recInsert:
		return "ins"
	case recDelete:
		return "del"
	case recCommit:
		return "commit"
	}
	return "invalid"
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded WAL record.
type frame struct {
	lsn  uint64
	kind recKind
	body []byte
	// off and end are the frame's byte extent within the segment
	// (header included), so callers can truncate exactly at a boundary.
	off, end int64
}

// appendFrame encodes one record onto buf and returns the extended
// buffer. The payload is assembled directly in buf and the CRC patched
// in afterwards, so no intermediate payload slice exists: hdr and pfx
// stay on the stack (only their bytes are appended) and crc32.Checksum
// sees only buf, which the caller already owns on the heap. A
// steady-state append into retained capacity therefore performs zero
// heap allocations — the wal_append bench contract, pinned by
// TestWalAppendAllocFree.
func appendFrame(buf []byte, lsn uint64, kind recKind, body []byte) []byte {
	start := len(buf)
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(9+len(body)))
	buf = append(buf, hdr[:]...)
	var pfx [9]byte
	binary.LittleEndian.PutUint64(pfx[:], lsn)
	pfx[8] = byte(kind)
	buf = append(buf, pfx[:]...)
	buf = append(buf, body...)
	crc := crc32.Checksum(buf[start+frameHdr:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start+4:], crc)
	return buf
}

// Damage classifies why a WAL scan stopped before the end of the
// segment bytes.
type Damage struct {
	// Offset is where the undecodable region starts.
	Offset int64 `json:"offset"`
	// Reason is a frame-level diagnosis: torn frame, CRC mismatch,
	// bad kind, or an LSN break.
	Reason string `json:"reason"`
}

func (d *Damage) Error() string {
	return fmt.Sprintf("wal: %s at offset %d", d.Reason, d.Offset)
}

// errBadSegHeader marks a segment whose 8-byte header is wrong; the
// whole file is untrusted.
var errBadSegHeader = errors.New("wal: bad segment header")

// parseSegmentHeader validates a segment header and returns the sticky
// destination vector it carries (nil for version 1) plus the header
// length in bytes.
func parseSegmentHeader(data []byte) ([]int, int64, error) {
	if len(data) < segHdrLen {
		return nil, 0, errBadSegHeader
	}
	if binary.LittleEndian.Uint32(data) != segMagic {
		return nil, 0, errBadSegHeader
	}
	switch v := binary.LittleEndian.Uint32(data[4:]); v {
	case segVersion:
		return nil, segHdrLen, nil
	case segVersionDest:
		if len(data) < segHdrLen+2 {
			return nil, 0, fmt.Errorf("%w: torn dest extension", errBadSegHeader)
		}
		k := int(binary.LittleEndian.Uint16(data[segHdrLen:]))
		if k < 1 || k > 32 {
			return nil, 0, fmt.Errorf("%w: dest extension length %d out of range [1,32]", errBadSegHeader, k)
		}
		end := segHdrLen + 2 + 4*k
		if len(data) < end {
			return nil, 0, fmt.Errorf("%w: torn dest extension", errBadSegHeader)
		}
		dest := make([]int, k)
		for j := range dest {
			dest[j] = int(binary.LittleEndian.Uint32(data[segHdrLen+2+4*j:]))
		}
		return dest, int64(end), nil
	default:
		return nil, 0, fmt.Errorf("%w: version %d", errBadSegHeader, v)
	}
}

// segmentHeaderLen returns the header length of a segment, or segHdrLen
// when the header is unreadable (the legacy truncation floor).
func segmentHeaderLen(data []byte) int64 {
	_, n, err := parseSegmentHeader(data)
	if err != nil {
		return segHdrLen
	}
	return n
}

// scanSegment decodes the frames of one segment. It returns every
// frame that decodes cleanly in order, and a non-nil *Damage when the
// scan stopped early (torn tail, CRC mismatch, kind or LSN breakage).
// wantLSN is the LSN the first frame must carry; pass 0 to accept any
// start. A clean, fully-consumed segment returns (frames, nil, nil).
func scanSegment(data []byte, wantLSN uint64) ([]frame, *Damage, error) {
	frames, _, dmg, err := scanSegmentDest(data, wantLSN)
	return frames, dmg, err
}

// scanSegmentDest is scanSegment plus the header's sticky destination
// vector (nil for a version-1 header).
func scanSegmentDest(data []byte, wantLSN uint64) ([]frame, []int, *Damage, error) {
	hdrDest, off, herr := parseSegmentHeader(data)
	if herr != nil {
		return nil, nil, nil, herr
	}
	var frames []frame
	next := wantLSN
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHdr {
			return frames, hdrDest, &Damage{Offset: off, Reason: fmt.Sprintf("torn frame header (%d trailing bytes)", len(rest))}, nil
		}
		plen := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen < 9 || plen > maxFramePayload {
			return frames, hdrDest, &Damage{Offset: off, Reason: fmt.Sprintf("implausible payload length %d", plen)}, nil
		}
		if int64(len(rest)) < frameHdr+int64(plen) {
			return frames, hdrDest, &Damage{Offset: off, Reason: fmt.Sprintf("torn frame (%d of %d payload bytes)", len(rest)-frameHdr, plen)}, nil
		}
		payload := rest[frameHdr : frameHdr+int(plen)]
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return frames, hdrDest, &Damage{Offset: off, Reason: fmt.Sprintf("crc mismatch (stored %#x, computed %#x)", crc, got)}, nil
		}
		f := frame{
			lsn:  binary.LittleEndian.Uint64(payload),
			kind: recKind(payload[8]),
			body: payload[9:],
			off:  off,
			end:  off + frameHdr + int64(plen),
		}
		if f.kind < recDest || f.kind > recCommit {
			return frames, hdrDest, &Damage{Offset: off, Reason: fmt.Sprintf("unknown record kind %d", payload[8])}, nil
		}
		if next != 0 && f.lsn != next {
			return frames, hdrDest, &Damage{Offset: off, Reason: fmt.Sprintf("lsn break (want %d, got %d)", next, f.lsn)}, nil
		}
		next = f.lsn + 1
		frames = append(frames, f)
		off = f.end
	}
	return frames, hdrDest, nil, nil
}

// decodeDest parses a recDest body.
func decodeDest(body []byte) ([]int, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("wal: dest body too short (%d bytes)", len(body))
	}
	k := int(binary.LittleEndian.Uint16(body))
	if k < 1 || k > 32 {
		return nil, fmt.Errorf("wal: dest vector length %d out of range [1,32]", k)
	}
	if len(body) != 2+4*k {
		return nil, fmt.Errorf("wal: dest body is %d bytes, want %d", len(body), 2+4*k)
	}
	dest := make([]int, k)
	for j := 0; j < k; j++ {
		dest[j] = int(binary.LittleEndian.Uint32(body[2+4*j:]))
	}
	return dest, nil
}

func encodeDest(dest []int) []byte {
	body := make([]byte, 2+4*len(dest))
	binary.LittleEndian.PutUint16(body, uint16(len(dest)))
	for j, d := range dest {
		binary.LittleEndian.PutUint32(body[2+4*j:], uint32(d))
	}
	return body
}

// decodeEdge parses a recInsert/recDelete body.
func decodeEdge(body []byte) (u, v uint32, err error) {
	if len(body) != 8 {
		return 0, 0, fmt.Errorf("wal: edge body is %d bytes, want 8", len(body))
	}
	return binary.LittleEndian.Uint32(body), binary.LittleEndian.Uint32(body[4:]), nil
}

// putEdge fills an 8-byte edge body in place so hot append paths can
// use a stack buffer instead of a per-record heap allocation.
func putEdge(body []byte, u, v graph.VertexID) {
	binary.LittleEndian.PutUint32(body, uint32(u))
	binary.LittleEndian.PutUint32(body[4:], uint32(v))
}

func newSegmentHeader() []byte {
	hdr := make([]byte, segHdrLen)
	binary.LittleEndian.PutUint32(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	return hdr
}

// newSegmentHeaderDest builds a version-2 header carrying the sticky
// destination vector in effect at segment open.
func newSegmentHeaderDest(dest []int) []byte {
	hdr := make([]byte, segHdrLen+2+4*len(dest))
	binary.LittleEndian.PutUint32(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersionDest)
	binary.LittleEndian.PutUint16(hdr[segHdrLen:], uint16(len(dest)))
	for j, d := range dest {
		binary.LittleEndian.PutUint32(hdr[segHdrLen+2+4*j:], uint32(d))
	}
	return hdr
}
