package store

import (
	"errors"
	"os"
	"testing"

	"adp/internal/composite"
	"adp/internal/fault"
	"adp/internal/partition"
)

// TestStoreReplaceComposite proves the maintenance-plane primitive: a
// durable whole-composite swap that survives reopen, accepts further
// mutations afterwards, and compacts the log it obsoletes.
func TestStoreReplaceComposite(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	s, err := Create(dir, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre := genMutations(t, g, s.Composite(), 40, 19)
	if _, _, err := s.Apply(pre); err != nil {
		t.Fatal(err)
	}

	// Build the "refined candidate": a clone nudged by a few more
	// coherent mutations, so it genuinely differs from the live state.
	cand := s.Composite().Clone()
	extra := genMutations(t, g, cand, 10, 23)
	applyClean(t, cand, extra)
	if err := s.ReplaceComposite(cand); err != nil {
		t.Fatal(err)
	}
	if s.Composite() != cand {
		t.Fatal("store did not adopt the replacement composite")
	}

	// The swap is a snapshot: the WAL it covered must be compacted away.
	names, _ := os.ReadDir(dir)
	walFiles := 0
	for _, e := range names {
		if _, ok := parseWALName(e.Name()); ok {
			walFiles++
		}
	}
	if walFiles != 1 {
		t.Fatalf("replace left %d wal segments, want 1", walFiles)
	}

	// Post-swap mutations land on the new lineage.
	post := genMutations(t, g, s.Composite(), 25, 29)
	if _, _, err := s.Apply(post); err != nil {
		t.Fatal(err)
	}
	lsn := s.LSN()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, clean := testComposite(t)
	applyClean(t, clean, pre)
	applyClean(t, clean, extra)
	applyClean(t, clean, post)

	s2, info, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.Damage != nil || info.DiscardedMutations != 0 {
		t.Fatalf("unexpected recovery: %v", info)
	}
	if s2.LSN() != lsn {
		t.Fatalf("reopened LSN %d, want %d", s2.LSN(), lsn)
	}
	if err := s2.Composite().EqualState(clean); err != nil {
		t.Fatalf("reopened state diverges from replaced lineage: %v", err)
	}
	if err := s2.Composite().ValidateIndex(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreReplaceShapeMismatch: a malformed candidate is rejected
// before any disk write and must NOT poison the store.
func TestStoreReplaceShapeMismatch(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	s, err := Create(dir, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Wrong K: a single-partition composite over the same graph.
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % c.N()
	}
	p, err := partition.FromVertexAssignment(g, assign, c.N())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := composite.New(g, []*partition.Partition{p})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceComposite(bad); err == nil {
		t.Fatal("shape-mismatched replacement accepted")
	}
	if s.Failed() {
		t.Fatal("shape mismatch poisoned the store")
	}
	// The write path still works.
	muts := genMutations(t, g, s.Composite(), 5, 31)
	if _, _, err := s.Apply(muts); err != nil {
		t.Fatalf("store unusable after rejected replacement: %v", err)
	}
}

// TestStoreReplaceDiskFault: an injected fsync failure during the
// promotion sync poisons the store but leaves the in-memory composite
// on the previous state, and a faultless reopen recovers a committed
// prefix of the OLD lineage.
func TestStoreReplaceDiskFault(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	inj := fault.NewDiskInjector()
	s, err := Create(dir, c, Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	pre := genMutations(t, g, s.Composite(), 10, 37)
	if _, _, err := s.Apply(pre); err != nil {
		t.Fatal(err)
	}
	before := s.Composite()

	// Swap in a fresh injector whose counters start at zero: sync #0 is
	// ReplaceComposite's pre-snapshot log sync.
	inj2 := fault.NewDiskInjector(fault.DiskEvent{Kind: fault.SyncErr, N: 0})
	s.fs = withInjector(vfs(osVFS{}), inj2)

	cand := s.Composite().Clone()
	if err := s.ReplaceComposite(cand); err == nil {
		t.Fatal("replacement succeeded under injected sync failure")
	} else if !errors.Is(err, fault.ErrDiskFault) {
		t.Fatalf("got %v, want wrapped ErrDiskFault", err)
	}
	if !s.Failed() {
		t.Fatal("store not poisoned after failed replacement")
	}
	if s.Composite() != before {
		t.Fatal("failed replacement swapped the in-memory composite")
	}
	s.Close()

	_, clean := testComposite(t)
	applyClean(t, clean, pre)
	s2, _, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Composite().EqualState(clean); err != nil {
		t.Fatalf("reopen does not recover the pre-replacement lineage: %v", err)
	}
}

// TestStoreRetrySync: a transient commit-time fsync failure poisons
// the store retryably; RetrySync completes the interrupted commit and
// the final state matches a clean replay of every mutation.
func TestStoreRetrySync(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	inj := fault.NewDiskInjector(fault.DiskEvent{Kind: fault.SyncErr, N: storeCreateSyncs})
	s, err := Create(dir, c, Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	muts := genMutations(t, g, s.Composite(), 12, 41)

	m := muts[0]
	if m.Kind == MutInsert {
		err = s.Insert(m.U, m.V, m.Dest)
	} else {
		_, err = s.Delete(m.U, m.V)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err == nil {
		t.Fatal("commit succeeded under injected sync failure")
	} else if !errors.Is(err, fault.ErrDiskFault) {
		t.Fatalf("got %v, want wrapped ErrDiskFault", err)
	}
	if !s.Failed() || !s.CanRetrySync() {
		t.Fatalf("failed=%v retryable=%v, want both true", s.Failed(), s.CanRetrySync())
	}
	if s.Committed() != 0 {
		t.Fatalf("committed=%d before retry, want 0", s.Committed())
	}

	if err := s.RetrySync(); err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	if s.Failed() || s.CanRetrySync() {
		t.Fatal("poison not cleared by successful retry")
	}
	if s.Committed() != 1 {
		t.Fatalf("committed=%d after retry, want 1", s.Committed())
	}

	// The store is fully live again.
	for _, m := range muts[1:] {
		if m.Kind == MutInsert {
			err = s.Insert(m.U, m.V, m.Dest)
		} else {
			_, err = s.Delete(m.U, m.V)
		}
		if err == nil {
			err = s.Commit()
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, clean := testComposite(t)
	applyClean(t, clean, muts)
	s2, info, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.Replayed != len(muts) || info.DiscardedMutations != 0 {
		t.Fatalf("recovery replayed=%d discarded=%d, want %d/0", info.Replayed, info.DiscardedMutations, len(muts))
	}
	if err := s2.Composite().EqualState(clean); err != nil {
		t.Fatalf("recovered state diverges: %v", err)
	}
}

// TestStoreRetrySyncBurst: consecutive SyncErr events keep the store
// poisoned-but-retryable until the burst passes; a short write is NOT
// retryable and RetrySync refuses it.
func TestStoreRetrySyncBurst(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	// A burst of three failing fsyncs starting at the first commit.
	inj := fault.NewDiskInjector(
		fault.DiskEvent{Kind: fault.SyncErr, N: storeCreateSyncs},
		fault.DiskEvent{Kind: fault.SyncErr, N: storeCreateSyncs + 1},
		fault.DiskEvent{Kind: fault.SyncErr, N: storeCreateSyncs + 2},
	)
	s, err := Create(dir, c, Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	muts := genMutations(t, g, s.Composite(), 3, 43)
	m := muts[0]
	if m.Kind == MutInsert {
		err = s.Insert(m.U, m.V, m.Dest)
	} else {
		_, err = s.Delete(m.U, m.V)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err == nil {
		t.Fatal("commit succeeded under injected sync failure")
	}
	// Two retries still inside the burst fail but stay retryable.
	for i := 0; i < 2; i++ {
		if err := s.RetrySync(); err == nil {
			t.Fatalf("retry %d succeeded inside the burst", i)
		}
		if !s.CanRetrySync() {
			t.Fatalf("retry %d lost retryability", i)
		}
	}
	// The burst has passed: the third retry lands.
	if err := s.RetrySync(); err != nil {
		t.Fatalf("retry after burst: %v", err)
	}
	if s.Committed() != 1 {
		t.Fatalf("committed=%d, want 1", s.Committed())
	}

	// Non-retryable class: a short write poisons permanently.
	dir2 := t.TempDir()
	_, c2 := testComposite(t)
	inj2 := fault.NewDiskInjector(fault.DiskEvent{Kind: fault.ShortWrite, N: 6, Bytes: 3})
	s2, err := Create(dir2, c2, Options{Injector: inj2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	muts2 := genMutations(t, g, s2.Composite(), 30, 47)
	var opErr error
	for _, m := range muts2 {
		if m.Kind == MutInsert {
			opErr = s2.Insert(m.U, m.V, m.Dest)
		} else {
			_, opErr = s2.Delete(m.U, m.V)
		}
		if opErr == nil {
			opErr = s2.Commit()
		}
		if opErr != nil {
			break
		}
	}
	if opErr == nil {
		t.Fatal("no operation failed under the short write")
	}
	if s2.CanRetrySync() {
		t.Fatal("short write reported as retryable")
	}
	if err := s2.RetrySync(); err == nil {
		t.Fatal("RetrySync accepted a non-retryable failure")
	}
}

// storeCreateSyncs is the number of fsyncs Create issues before the
// store is ready (snapshot file + fresh segment header). Asserted by
// TestStoreCreateSyncCount so drift is caught, not silently absorbed.
const storeCreateSyncs = 2

func TestStoreCreateSyncCount(t *testing.T) {
	_, c := testComposite(t)
	inj := fault.NewDiskInjector(fault.DiskEvent{Kind: fault.SyncErr, N: storeCreateSyncs})
	s, err := Create(t.TempDir(), c, Options{Injector: inj})
	if err != nil {
		t.Fatalf("Create hit the sync pinned past its own syncs: %v", err)
	}
	defer s.Close()
	// The very next commit must be sync #storeCreateSyncs and fail.
	if err := s.Insert(1, 2, destVec(c, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err == nil {
		t.Fatal("first commit did not hit the pinned sync: storeCreateSyncs is stale")
	}
}

func destVec(c *composite.Composite, frag int) []int {
	d := make([]int, c.K())
	for i := range d {
		d[i] = frag
	}
	return d
}
