package store

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// testComposite builds a small deterministic 2-partition composite:
// a hashed edge-cut bundled with a shifted vertex assignment, so cores
// and residuals are both non-trivial.
func testComposite(t testing.TB) (*graph.Graph, *composite.Composite) {
	t.Helper()
	g := gen.PowerLaw(gen.PowerLawConfig{N: 300, AvgDeg: 5, Exponent: 2.1, Directed: true, Seed: 41})
	p1, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 3
	}
	p2, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return g, c
}

// edgeSet snapshots the live edges of a composite's first partition
// (all partitions agree on the edge set by coherence).
func edgeSet(c *composite.Composite) map[uint64]bool {
	set := map[uint64]bool{}
	p := c.Partition(0)
	for i := 0; i < p.NumFragments(); i++ {
		p.Fragment(i).Vertices(func(v graph.VertexID, adj *partition.Adj) {
			for _, w := range adj.Out {
				set[uint64(v)<<32|uint64(w)] = true
			}
		})
	}
	return set
}

// genMutations produces n seeded insert/delete mutations with explicit
// destination vectors, each guaranteed to change state (inserts pick
// absent edges, deletes pick live ones), mirroring the live set as it
// evolves.
func genMutations(t testing.TB, g *graph.Graph, c *composite.Composite, n int, seed int64) []Mutation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	live := edgeSet(c)
	var liveList []uint64
	for k := range live {
		liveList = append(liveList, k)
	}
	// Deterministic order for the seeded picks.
	for i := 1; i < len(liveList); i++ {
		for j := i; j > 0 && liveList[j] < liveList[j-1]; j-- {
			liveList[j], liveList[j-1] = liveList[j-1], liveList[j]
		}
	}
	nv := uint32(g.NumVertices())
	muts := make([]Mutation, 0, n)
	for len(muts) < n {
		if rng.Intn(3) == 0 && len(liveList) > 0 {
			i := rng.Intn(len(liveList))
			k := liveList[i]
			liveList[i] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			delete(live, k)
			muts = append(muts, Mutation{Kind: MutDelete, U: graph.VertexID(k >> 32), V: graph.VertexID(uint32(k))})
			continue
		}
		u, v := rng.Uint32()%nv, rng.Uint32()%nv
		if u == v || live[uint64(u)<<32|uint64(v)] {
			continue
		}
		dest := make([]int, c.K())
		if rng.Intn(3) == 0 {
			d := rng.Intn(c.N())
			for j := range dest {
				dest[j] = d // all-same: exercises the core fast path
			}
		} else {
			for j := range dest {
				dest[j] = rng.Intn(c.N())
			}
		}
		live[uint64(u)<<32|uint64(v)] = true
		liveList = append(liveList, uint64(u)<<32|uint64(v))
		muts = append(muts, Mutation{Kind: MutInsert, U: graph.VertexID(u), V: graph.VertexID(v), Dest: dest})
	}
	return muts
}

// applyClean replays mutations directly onto a composite — the
// reference the recovered store must match bit for bit.
func applyClean(t testing.TB, c *composite.Composite, muts []Mutation) {
	t.Helper()
	for _, m := range muts {
		switch m.Kind {
		case MutInsert:
			if err := c.InsertEdge(m.U, m.V, m.Dest); err != nil {
				t.Fatal(err)
			}
		case MutDelete:
			c.DeleteEdge(m.U, m.V)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	s, err := Create(dir, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	muts := genMutations(t, g, s.Composite(), 120, 7)
	for _, m := range muts {
		switch m.Kind {
		case MutInsert:
			if err := s.Insert(m.U, m.V, m.Dest); err != nil {
				t.Fatal(err)
			}
		case MutDelete:
			if found, err := s.Delete(m.U, m.V); err != nil || !found {
				t.Fatalf("delete (%d,%d): found=%v err=%v", m.U, m.V, found, err)
			}
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Committed() != 120 {
		t.Fatalf("committed = %d, want 120", s.Committed())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, clean := testComposite(t)
	applyClean(t, clean, muts)

	s2, info, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.Replayed != 120 || info.Damage != nil || info.DiscardedMutations != 0 {
		t.Fatalf("unexpected recovery: %v", info)
	}
	if err := s2.Composite().EqualState(clean); err != nil {
		t.Fatalf("recovered state diverges: %v", err)
	}
	if err := s2.Composite().ValidateIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSnapshotCompaction(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	s, err := Create(dir, c, Options{SnapshotEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	muts := genMutations(t, g, s.Composite(), 150, 11)
	if _, _, err := s.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction must have dropped covered segments: the bytes on disk
	// hold only the newest snapshots plus the short live log suffix.
	names, _ := os.ReadDir(dir)
	walFiles, snapFiles := 0, 0
	for _, e := range names {
		if _, ok := parseWALName(e.Name()); ok {
			walFiles++
		}
		if _, ok := parseSnapName(e.Name()); ok {
			snapFiles++
		}
	}
	if walFiles != 1 {
		t.Fatalf("compaction left %d wal segments, want 1", walFiles)
	}
	if snapFiles > 2 {
		t.Fatalf("compaction left %d snapshots, want <= 2", snapFiles)
	}

	_, clean := testComposite(t)
	applyClean(t, clean, muts)
	s2, info, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Composite().EqualState(clean); err != nil {
		t.Fatalf("recovered state diverges after compaction: %v (info %v)", err, info)
	}
}

func TestStoreUncommittedTailDiscarded(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	s, err := Create(dir, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	muts := genMutations(t, g, s.Composite(), 20, 13)
	for i, m := range muts {
		if m.Kind == MutInsert {
			err = s.Insert(m.U, m.V, m.Dest)
		} else {
			_, err = s.Delete(m.U, m.V)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Commit everything except the last 5 mutations...
		if i < 15 {
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// ...and "crash" without committing them: write the pending frames
	// by hand so the tail is on disk yet unacked.
	f, err := os.OpenFile(filepath.Join(dir, s.segName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(s.pending); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, clean := testComposite(t)
	applyClean(t, clean, muts[:15])
	s2, info, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.Replayed != 15 || info.DiscardedMutations != 5 {
		t.Fatalf("replayed=%d discarded=%d, want 15/5", info.Replayed, info.DiscardedMutations)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("expected the unacked tail to be physically truncated")
	}
	if err := s2.Composite().EqualState(clean); err != nil {
		t.Fatalf("recovered state diverges: %v", err)
	}
}

func TestStoreDiskFaults(t *testing.T) {
	g, base := testComposite(t)
	muts := genMutations(t, g, base, 30, 17)

	cases := []struct {
		name   string
		events []fault.DiskEvent
		// wantErr matches the sentinel Commit (or Insert) must surface.
		wantErr error
	}{
		// Write op 0..1 are segment header + snapshot during Create;
		// later ops are commit batches.
		{"short write", []fault.DiskEvent{{Kind: fault.ShortWrite, N: 6, Bytes: 11}}, fault.ErrDiskFault},
		{"fsync error", []fault.DiskEvent{{Kind: fault.SyncErr, N: 6}}, fault.ErrDiskFault},
		{"crash mid write", []fault.DiskEvent{{Kind: fault.CrashWrite, N: 6, Bytes: 7}}, fault.ErrCrashed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, c := testComposite(t)
			dir := t.TempDir()
			inj := fault.NewDiskInjector(tc.events...)
			s, err := Create(dir, c, Options{Injector: inj})
			if err != nil {
				t.Fatal(err)
			}
			applied := 0
			var opErr error
			for _, m := range muts {
				if m.Kind == MutInsert {
					opErr = s.Insert(m.U, m.V, m.Dest)
				} else {
					_, opErr = s.Delete(m.U, m.V)
				}
				if opErr == nil {
					opErr = s.Commit()
				}
				if opErr != nil {
					break
				}
				applied++
			}
			if opErr == nil {
				t.Fatalf("no operation failed under %v", tc.events)
			}
			if !errors.Is(opErr, tc.wantErr) {
				t.Fatalf("got %v, want %v", opErr, tc.wantErr)
			}
			// The store is poisoned: every later mutation refuses.
			if err := s.Insert(1, 2, make([]int, c.K())); !errors.Is(err, errPoisoned) {
				t.Fatalf("poisoned store accepted a mutation: %v", err)
			}
			s.Close()

			// Reopen without faults: the recovered state must equal a
			// clean replay of some acked prefix (sync batching means the
			// failed op itself may or may not have reached the disk, but
			// never a half batch).
			s2, info, err := Open(dir, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if info.Replayed > applied+1 {
				t.Fatalf("replayed %d, only %d acked (+1 in flight)", info.Replayed, applied)
			}
			_, clean := testComposite(t)
			applyClean(t, clean, muts[:info.Replayed])
			if err := s2.Composite().EqualState(clean); err != nil {
				t.Fatalf("recovered state is not a committed prefix: %v", err)
			}
			if err := s2.Composite().ValidateIndex(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreSyncEveryBatching(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	inj := fault.NewDiskInjector() // pure op counter
	s, err := Create(dir, c, Options{SyncEvery: 8, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	muts := genMutations(t, g, s.Composite(), 32, 19)
	if _, _, err := s.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Apply commits per marker batch; with no markers it is one big
	// commit, so drive per-mutation commits instead to count syncs.
	dir2 := t.TempDir()
	_, c2 := testComposite(t)
	inj2 := fault.NewDiskInjector()
	s2, err := Create(dir2, c2, Options{SyncEvery: 8, Injector: inj2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if m.Kind == MutInsert {
			err = s2.Insert(m.U, m.V, m.Dest)
		} else {
			_, err = s2.Delete(m.U, m.V)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	writesBeforeClose := inj2.Writes()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if writesBeforeClose != 32+2 { // 32 commit batches + header + snapshot
		t.Fatalf("unexpected write count %d", writesBeforeClose)
	}
}

// reportsEqual compares the deterministic fields of two engine
// reports bitwise (WallTime and fault diagnostics excluded, per the
// engine's determinism contract).
func reportsEqual(a, b *engine.Report) bool {
	if a.Supersteps != b.Supersteps ||
		math.Float64bits(a.CriticalWork) != math.Float64bits(b.CriticalWork) ||
		math.Float64bits(a.CriticalBytes) != math.Float64bits(b.CriticalBytes) {
		return false
	}
	if len(a.Work) != len(b.Work) {
		return false
	}
	for i := range a.Work {
		if math.Float64bits(a.Work[i]) != math.Float64bits(b.Work[i]) ||
			a.MsgCount[i] != b.MsgCount[i] || a.MsgBytes[i] != b.MsgBytes[i] {
			return false
		}
	}
	return true
}

// runPR simulates PR over one bundled partition and returns the
// deterministic report.
func runPR(t testing.TB, p *partition.Partition) *engine.Report {
	t.Helper()
	out, err := algorithms.Run(engine.NewCluster(p).UsePool(pool.Serial()), costmodel.PR,
		algorithms.Options{PRIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	return out.Report
}

func TestFsckHealthyAndDamaged(t *testing.T) {
	g, c := testComposite(t)
	dir := t.TempDir()
	s, err := Create(dir, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	muts := genMutations(t, g, s.Composite(), 40, 23)
	if _, _, err := s.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		var buf bytes.Buffer
		rep.Format(&buf)
		t.Fatalf("clean store reported unhealthy:\n%s", buf.String())
	}

	// Bit-flip the middle of the live segment: fsck must localise the
	// damaged frame, and repair must truncate exactly there.
	segPath := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	frames, dmg, err := scanSegment(data, 1)
	if err != nil || dmg != nil {
		t.Fatalf("clean segment does not scan: %v %v", err, dmg)
	}
	victim := frames[len(frames)/2]
	data[victim.off+frameHdr+2] ^= 0x40
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = Fsck(dir, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("fsck missed a bit flip")
	}
	seg := rep.Segments[len(rep.Segments)-1]
	if seg.Damage == nil || seg.Damage.Offset != victim.off {
		t.Fatalf("damage at %v, want offset %d", seg.Damage, victim.off)
	}

	rep, err = Fsck(dir, g, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) != 1 {
		t.Fatalf("repair took %d actions, want 1", len(rep.Repaired))
	}
	rep, err = Fsck(dir, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatal("store still unhealthy after repair")
	}
	// And the repaired store opens to a committed prefix.
	s2, info, err := Open(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, clean := testComposite(t)
	applyClean(t, clean, muts[:info.Replayed])
	if err := s2.Composite().EqualState(clean); err != nil {
		t.Fatalf("repaired store diverges: %v", err)
	}
}

func TestParseUpdatesRoundTrip(t *testing.T) {
	in := `# stream
+ 1 2 0 1
- 3 4

+ 5 6
commit
`
	muts, err := ParseUpdates(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"+ 1 2 0 1", "- 3 4", "+ 5 6", "commit"}
	if len(muts) != len(want) {
		t.Fatalf("parsed %d mutations, want %d", len(muts), len(want))
	}
	for i, m := range muts {
		if m.String() != want[i] {
			t.Fatalf("mutation %d renders %q, want %q", i, m.String(), want[i])
		}
	}
	ins, del := SplitEdges(muts)
	if len(ins) != 2 || len(del) != 1 {
		t.Fatalf("split %d/%d, want 2/1", len(ins), len(del))
	}
	for _, bad := range []string{"x 1 2", "+ 1", "- 1 2 3", "commit now", "+ a b"} {
		if _, err := ParseUpdates(bytes.NewReader([]byte(bad))); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
