package store

import (
	"bytes"
	"fmt"
	"os"

	"adp/internal/composite"
	"adp/internal/graph"
)

// Follower-role store primitives for WAL-shipping replication
// (internal/replica). A follower appends the leader's frames verbatim
// — same LSNs, same payload bytes — so the two logs describe one
// shared LSN space and idempotence reduces to an LSN comparison.
// Mutations are staged in memory and folded into the composite only
// when their commit marker is durably on disk, mirroring replay(): the
// follower's disk always holds a committed prefix of the leader's
// history, no matter where the stream dies.

// replStagedMut is one decoded-but-uncommitted replicated mutation.
type replStagedMut struct {
	insert bool
	u, v   graph.VertexID
	dest   []int
}

// CreateReplica initialises dir (created if missing, must not already
// hold a store) as a follower bootstrapped from a leader snapshot: the
// raw snapshot bytes are persisted verbatim at snapLSN and replication
// resumes at snapLSN+1.
func CreateReplica(dir string, g *graph.Graph, snap []byte, snapLSN uint64, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs := withInjector(vfs(osVFS{}), opts.Injector)
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, n := range names {
		_, isSnap := parseSnapName(n)
		_, isWAL := parseWALName(n)
		if isSnap || isWAL {
			return nil, fmt.Errorf("store: %s already holds a store (found %s); use Open", dir, n)
		}
	}
	comp, err := composite.ReadDynamic(bytes.NewReader(snap), g)
	if err != nil {
		return nil, fmt.Errorf("store: decoding leader snapshot: %w", err)
	}
	s := &Store{
		dir:     dir,
		fs:      fs,
		opts:    opts,
		g:       g,
		comp:    comp,
		snapLSN: snapLSN,
		nextLSN: snapLSN + 1,
	}
	if err := s.writeRawSnapshot(snap, snapLSN); err != nil {
		return nil, err
	}
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	s.commitLSN.Store(snapLSN)
	return s, nil
}

// writeRawSnapshot persists already-encoded snapshot bytes atomically
// (temp file + fsync + rename), bit-identical to the leader's file.
func (s *Store) writeRawSnapshot(data []byte, lsn uint64) error {
	final := snapName(lsn)
	tmp := final + ".tmp"
	f, err := s.fs.Create(join(s.dir, tmp))
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := s.fs.Rename(join(s.dir, tmp), join(s.dir, final)); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	s.snapLSN = lsn
	s.mutsSinceSnap = 0
	return nil
}

// AppendReplicated ingests a run of leader frames. Frames at or below
// the follower's next LSN are idempotent no-ops (duplicates from
// resumes, retries or reordered deliveries); a frame beyond it returns
// a *GapError without disturbing staged state — the caller re-requests
// from CommittedLSN()+1 and the staged prefix deduplicates itself.
// Mutations reach the composite and the commit watermark only when
// their commit marker is durably appended. Returns how many commit
// boundaries landed.
func (s *Store) AppendReplicated(frames []RawFrame) (commits int, err error) {
	if err := s.ready(); err != nil {
		return 0, err
	}
	nVerts := uint64(s.g.NumVertices())
	for _, f := range frames {
		if f.LSN < s.nextLSN {
			continue // already durable or already staged
		}
		if f.LSN > s.nextLSN {
			return commits, &GapError{Want: s.nextLSN, Got: f.LSN}
		}
		switch recKind(f.Kind) {
		case recDest:
			dest, derr := decodeDest(f.Body)
			if derr != nil {
				return commits, s.fail(fmt.Errorf("store: replicated frame %d: %w", f.LSN, derr))
			}
			if len(dest) != s.comp.K() {
				return commits, s.fail(fmt.Errorf("store: replicated dest at lsn %d has %d entries, composite has %d partitions", f.LSN, len(dest), s.comp.K()))
			}
			for _, d := range dest {
				if d < 0 || d >= s.comp.N() {
					return commits, s.fail(fmt.Errorf("store: replicated dest at lsn %d: fragment %d out of range [0,%d)", f.LSN, d, s.comp.N()))
				}
			}
			s.replDest = dest
		case recInsert, recDelete:
			u, v, derr := decodeEdge(f.Body)
			if derr != nil {
				return commits, s.fail(fmt.Errorf("store: replicated frame %d: %w", f.LSN, derr))
			}
			if uint64(u) >= nVerts || uint64(v) >= nVerts {
				return commits, s.fail(fmt.Errorf("store: replicated edge (%d,%d) at lsn %d beyond %d vertices", u, v, f.LSN, nVerts))
			}
			if recKind(f.Kind) == recInsert && s.replDest == nil {
				return commits, s.fail(fmt.Errorf("store: replicated insert at lsn %d with no destination vector in effect", f.LSN))
			}
			s.replStaged = append(s.replStaged, replStagedMut{insert: recKind(f.Kind) == recInsert, u: u, v: v, dest: s.replDest})
			s.pendingMuts++
		case recCommit:
			if len(f.Body) != 4 {
				return commits, s.fail(fmt.Errorf("store: replicated commit at lsn %d has %d body bytes, want 4", f.LSN, len(f.Body)))
			}
		default:
			return commits, s.fail(fmt.Errorf("store: replicated frame %d has unknown kind %d", f.LSN, f.Kind))
		}
		s.pending = appendFrame(s.pending, f.LSN, recKind(f.Kind), f.Body)
		s.nextLSN = f.LSN + 1
		if recKind(f.Kind) == recCommit {
			if err := s.replCommit(); err != nil {
				return commits, err
			}
			commits++
		}
	}
	// Compact only on a commit boundary: a dest-only partial batch still
	// has pending bytes, and Snapshot's implicit commit would mint a
	// commit frame at an LSN the leader owns.
	if s.opts.SnapshotEvery > 0 && s.mutsSinceSnap >= s.opts.SnapshotEvery &&
		len(s.pending) == 0 && len(s.replStaged) == 0 {
		if err := s.Snapshot(); err != nil {
			return commits, err
		}
	}
	return commits, nil
}

// replCommit makes the staged batch durable and visible, mirroring
// commit(): one append of every frame since the last boundary, fsync
// per SyncEvery (a failed fsync poisons retryably — RetrySync finishes
// the bookkeeping AND the staged fold), then the composite apply and
// the watermark advance.
func (s *Store) replCommit() error {
	if _, err := s.seg.Write(s.pending); err != nil {
		return s.fail(fmt.Errorf("store: appending replicated batch: %w", err))
	}
	s.commitsSinceSync++
	if s.commitsSinceSync >= s.opts.syncEvery() {
		if err := s.seg.Sync(); err != nil {
			s.retrySync = true
			return s.fail(fmt.Errorf("store: syncing replicated log: %w", err))
		}
		s.commitsSinceSync = 0
	}
	s.committed += int64(s.pendingMuts)
	s.mutsSinceSnap += s.pendingMuts
	s.pending = s.pending[:0]
	s.pendingMuts = 0
	if err := s.applyReplStaged(); err != nil {
		return err
	}
	s.commitLSN.Store(s.nextLSN - 1)
	return nil
}

// applyReplStaged folds the staged replicated mutations into the
// composite. A failure here is unreachable after frame validation and
// poisons the store (the composite may be half-updated).
func (s *Store) applyReplStaged() error {
	for _, m := range s.replStaged {
		if m.insert {
			if err := s.comp.InsertEdge(m.u, m.v, m.dest); err != nil {
				return s.fail(fmt.Errorf("store: applying replicated insert (%d,%d): %w", m.u, m.v, err))
			}
		} else {
			s.comp.DeleteEdge(m.u, m.v)
		}
	}
	s.replStaged = s.replStaged[:0]
	return nil
}

// AbortReplicated discards staged-but-uncommitted replicated state
// after a stream break: in-memory only (nothing of the partial batch
// has touched disk or the composite), rewinding the next expected LSN
// to just past the durable watermark. Poison is untouched.
func (s *Store) AbortReplicated() {
	s.pending = s.pending[:0]
	s.pendingMuts = 0
	s.replStaged = s.replStaged[:0]
	s.nextLSN = s.commitLSN.Load() + 1
}

// RotateSegment syncs and closes the active segment and opens a fresh
// one at the next LSN — the promotion step that fences a follower's
// log before it starts accepting its own writes. The caller must have
// no pending batch (call AbortReplicated first on a follower).
func (s *Store) RotateSegment() error {
	if err := s.ready(); err != nil {
		return err
	}
	if len(s.pending) > 0 || len(s.replStaged) > 0 {
		return fmt.Errorf("store: rotate with %d pending bytes; abort or commit first", len(s.pending))
	}
	if err := s.seg.Sync(); err != nil {
		s.retrySync = true
		return s.fail(fmt.Errorf("store: syncing log before rotate: %w", err))
	}
	s.commitsSinceSync = 0
	if err := s.seg.Close(); err != nil {
		s.seg = nil
		return s.fail(fmt.Errorf("store: closing segment: %w", err))
	}
	s.seg = nil
	return s.openSegment()
}

// InstallSnapshot replaces the follower's state with a leader snapshot
// taken beyond the follower's position — the catch-up path when the
// leader compacted the frames the follower still needed. The snapshot
// bytes are persisted verbatim, the composite swapped, the log
// re-based at lsn+1 and old segments compacted away. Staged state is
// discarded.
func (s *Store) InstallSnapshot(data []byte, lsn uint64) error {
	if err := s.ready(); err != nil {
		return err
	}
	if lsn <= s.commitLSN.Load() {
		return fmt.Errorf("store: snapshot at lsn %d does not advance the watermark (%d)", lsn, s.commitLSN.Load())
	}
	comp, err := composite.ReadDynamic(bytes.NewReader(data), s.g)
	if err != nil {
		return fmt.Errorf("store: decoding leader snapshot: %w", err)
	}
	s.AbortReplicated()
	s.replDest = nil
	if err := s.seg.Sync(); err != nil {
		s.retrySync = true
		return s.fail(fmt.Errorf("store: syncing log before snapshot install: %w", err))
	}
	s.commitsSinceSync = 0
	if err := s.seg.Close(); err != nil {
		s.seg = nil
		return s.fail(fmt.Errorf("store: closing segment: %w", err))
	}
	s.seg = nil
	if err := s.writeRawSnapshot(data, lsn); err != nil {
		return s.fail(err)
	}
	s.comp = comp
	s.nextLSN = lsn + 1
	if err := s.openSegment(); err != nil {
		return err
	}
	s.commitLSN.Store(lsn)
	s.compact()
	return nil
}
