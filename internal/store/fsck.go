package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"adp/internal/composite"
	"adp/internal/graph"
)

// Fsck is the offline integrity walk behind `adpart -fsck <dir>`: it
// classifies every snapshot and every WAL frame without opening the
// store for writing, and (with repair) truncates frame-level damage
// the way Open's recovery would.

// SnapshotStatus describes one snapshot file.
type SnapshotStatus struct {
	Name  string `json:"name"`
	LSN   uint64 `json:"lsn"`
	Bytes int64  `json:"bytes"`
	// Err is empty for a readable snapshot. Deep parsing requires the
	// graph; with a nil graph only existence and size are checked and
	// Err is empty unless the file is unreadable.
	Err string `json:"error,omitempty"`
}

// SegmentStatus describes one WAL segment file.
type SegmentStatus struct {
	Name     string `json:"name"`
	StartLSN uint64 `json:"start_lsn"`
	Bytes    int64  `json:"bytes"`
	// Frames counts cleanly decoded frames; Commits the commit markers
	// among them; Mutations the insert/delete records.
	Frames    int    `json:"frames"`
	Commits   int    `json:"commits"`
	Mutations int    `json:"mutations"`
	LastLSN   uint64 `json:"last_lsn"`
	// Damage is non-nil when decoding stopped before the end of file.
	Damage *Damage `json:"damage,omitempty"`
	// UncommittedFrames counts clean frames after the last commit
	// marker (an un-acked tail — not damage, but Open will discard it).
	UncommittedFrames int `json:"uncommitted_frames"`
	// CommittedEnd is the byte offset just past the last commit marker
	// (the repair truncation point when Damage is set).
	CommittedEnd int64 `json:"committed_end"`
}

// FsckReport is the full classification of a store directory.
type FsckReport struct {
	Dir       string           `json:"dir"`
	Snapshots []SnapshotStatus `json:"snapshots"`
	Segments  []SegmentStatus  `json:"segments"`
	// ChainBroken notes an LSN discontinuity between segments, with the
	// offending segment name.
	ChainBroken string `json:"chain_broken,omitempty"`
	// Repaired lists the repair actions taken (empty without repair).
	Repaired []string `json:"repaired,omitempty"`
}

// Healthy reports whether every snapshot parses, every frame decodes,
// no un-acked tail lingers, and the segment chain is unbroken.
func (r *FsckReport) Healthy() bool {
	for _, s := range r.Snapshots {
		if s.Err != "" {
			return false
		}
	}
	for _, s := range r.Segments {
		if s.Damage != nil || s.UncommittedFrames > 0 {
			return false
		}
	}
	return r.ChainBroken == ""
}

// Format renders the report for humans, one line per file.
func (r *FsckReport) Format(w io.Writer) {
	fmt.Fprintf(w, "fsck %s: ", r.Dir)
	if r.Healthy() {
		fmt.Fprintln(w, "healthy")
	} else {
		fmt.Fprintln(w, "DAMAGED")
	}
	for _, s := range r.Snapshots {
		status := "ok"
		if s.Err != "" {
			status = "CORRUPT: " + s.Err
		}
		fmt.Fprintf(w, "  %s  lsn=%d  %d bytes  %s\n", s.Name, s.LSN, s.Bytes, status)
	}
	for _, s := range r.Segments {
		span := fmt.Sprintf("lsn=%d..%d", s.StartLSN, s.LastLSN)
		if s.Frames == 0 {
			span = fmt.Sprintf("lsn=%d (empty)", s.StartLSN)
		}
		fmt.Fprintf(w, "  %s  %s  %d bytes  %d frames (%d muts, %d commits)",
			s.Name, span, s.Bytes, s.Frames, s.Mutations, s.Commits)
		if s.UncommittedFrames > 0 {
			fmt.Fprintf(w, "  UNCOMMITTED TAIL: %d frames past offset %d", s.UncommittedFrames, s.CommittedEnd)
		}
		if s.Damage != nil {
			fmt.Fprintf(w, "  DAMAGE: %s at offset %d", s.Damage.Reason, s.Damage.Offset)
		}
		fmt.Fprintln(w)
	}
	if r.ChainBroken != "" {
		fmt.Fprintf(w, "  CHAIN BROKEN at %s\n", r.ChainBroken)
	}
	for _, a := range r.Repaired {
		fmt.Fprintf(w, "  repaired: %s\n", a)
	}
}

// WriteJSON renders the report machine-readably (`adpart -fsck -json`):
// the full classification plus the aggregate health verdict, so chaos
// suites and operators can assert on frame classes programmatically.
func (r *FsckReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Healthy bool `json:"healthy"`
		*FsckReport
	}{r.Healthy(), r})
}

// Fsck walks the store directory and classifies every file. g enables
// deep snapshot verification (composite parse + index validation); a
// nil g checks snapshots for readability only. With repair set,
// damaged segments are truncated at their last commit boundary (the
// same cut Open's recovery makes) and the actions are recorded in
// Repaired.
func Fsck(dir string, g *graph.Graph, repair bool) (*FsckReport, error) {
	fs := vfs(osVFS{})
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("fsck: %w", err)
	}
	rep := &FsckReport{Dir: dir}

	var snapLSNs, segLSNs []uint64
	segName := make(map[uint64]string)
	for _, n := range names {
		if lsn, ok := parseSnapName(n); ok {
			snapLSNs = append(snapLSNs, lsn)
		}
		if lsn, ok := parseWALName(n); ok {
			segLSNs = append(segLSNs, lsn)
			segName[lsn] = n
		}
	}
	sort.Slice(snapLSNs, func(i, j int) bool { return snapLSNs[i] < snapLSNs[j] })
	sort.Slice(segLSNs, func(i, j int) bool { return segLSNs[i] < segLSNs[j] })

	for _, lsn := range snapLSNs {
		st := SnapshotStatus{Name: snapName(lsn), LSN: lsn}
		data, err := fs.ReadFile(join(dir, st.Name))
		if err != nil {
			st.Err = err.Error()
		} else {
			st.Bytes = int64(len(data))
			if g != nil {
				c, err := composite.ReadDynamic(bytes.NewReader(data), g)
				if err != nil {
					st.Err = err.Error()
				} else if err := c.ValidateIndex(); err != nil {
					st.Err = err.Error()
				}
			}
		}
		rep.Snapshots = append(rep.Snapshots, st)
	}

	next := uint64(0)
	for _, lsn := range segLSNs {
		st := SegmentStatus{Name: segName[lsn], StartLSN: lsn, CommittedEnd: segHdrLen}
		data, err := fs.ReadFile(join(dir, st.Name))
		if err != nil {
			st.Damage = &Damage{Offset: 0, Reason: err.Error()}
			rep.Segments = append(rep.Segments, st)
			next = 0
			continue
		}
		st.Bytes = int64(len(data))
		// v2 headers are longer than the fixed 8 bytes; the truncation
		// floor must not cut into them.
		st.CommittedEnd = segmentHeaderLen(data)
		if next != 0 && lsn != next && rep.ChainBroken == "" {
			rep.ChainBroken = fmt.Sprintf("%s (starts at lsn %d, previous segment ends at %d)", st.Name, lsn, next-1)
		}
		frames, dmg, serr := scanSegment(data, lsn)
		if serr != nil {
			st.Damage = &Damage{Offset: 0, Reason: serr.Error()}
		} else {
			st.Damage = dmg
		}
		st.Frames = len(frames)
		sinceCommit := 0
		for _, f := range frames {
			st.LastLSN = f.lsn
			switch f.kind {
			case recCommit:
				st.Commits++
				st.CommittedEnd = f.end
				sinceCommit = 0
			case recInsert, recDelete:
				st.Mutations++
				sinceCommit++
			default:
				sinceCommit++
			}
		}
		st.UncommittedFrames = sinceCommit
		if len(frames) > 0 {
			next = st.LastLSN + 1
		} else if st.Damage == nil {
			next = lsn
		} else {
			next = 0
		}
		rep.Segments = append(rep.Segments, st)
	}

	if repair {
		for i := range rep.Segments {
			st := &rep.Segments[i]
			if st.Damage == nil && st.UncommittedFrames == 0 {
				continue
			}
			if err := fs.Truncate(join(dir, st.Name), st.CommittedEnd); err != nil {
				return rep, fmt.Errorf("fsck: repairing %s: %w", st.Name, err)
			}
			cause := fmt.Sprintf("%d un-acked frames", st.UncommittedFrames)
			if st.Damage != nil {
				cause = fmt.Sprintf("%s at offset %d", st.Damage.Reason, st.Damage.Offset)
			}
			rep.Repaired = append(rep.Repaired,
				fmt.Sprintf("%s truncated from %d to %d bytes (cut %s)",
					st.Name, st.Bytes, st.CommittedEnd, cause))
			st.Bytes = st.CommittedEnd
			st.Damage = nil
			st.UncommittedFrames = 0
		}
	}
	return rep, nil
}
