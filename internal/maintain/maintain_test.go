package maintain

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/serve"
	"adp/internal/store"
	"adp/internal/testutil"
)

// The chaos suite drives live maintenance cycles against a real server
// over HTTP, with both injector families armed, under -race. Its
// contract mirrors the tentpole's acceptance criteria:
//
//	(a) no response is ever inconsistent with some published epoch,
//	(b) only validated candidates are promoted,
//	(c) a seeded post-promotion regression rolls back automatically,
//	(d) every failure mode leaves reads on the last good epoch.

// maintGraph rebuilds the deterministic serve-test graph so offline
// oracles replay server state bit-for-bit.
func maintGraph() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 400, AvgDeg: 6, Exponent: 2.1, Directed: false, Seed: 11})
}

// maintComposite bundles the same two partitions the serve tests use:
// an edge-cut and a vertex-assignment partition, K=2, 4 fragments.
func maintComposite(t testing.TB, g *graph.Graph) *composite.Composite {
	t.Helper()
	p1, err := partitioner.HashEdgeCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 4
	}
	p2, err := partition.FromVertexAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func wccIdx() int {
	for i, a := range costmodel.Algos() {
		if a == costmodel.WCC {
			return i
		}
	}
	return 0
}

// wccOffline runs the placement-independent WCC oracle over c.
func wccOffline(t testing.TB, c *composite.Composite) algorithms.Outcome {
	t.Helper()
	part := c.Partition(wccIdx() % c.K()).Clone().Compile()
	out, err := algorithms.Run(engine.NewCluster(part).UsePool(pool.Serial()), costmodel.WCC, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// absentPairs picks n vertex pairs with no edge in g — safe inserts.
func absentPairs(g *graph.Graph, n int) [][2]graph.VertexID {
	var out [][2]graph.VertexID
	N := g.NumVertices()
	for u := 0; u < N && len(out) < n; u++ {
		for v := u + 1; v < N && len(out) < n; v++ {
			uu, vv := graph.VertexID(u), graph.VertexID(v)
			if !g.HasEdge(uu, vv) && !g.HasEdge(vv, uu) {
				out = append(out, [2]graph.VertexID{uu, vv})
			}
		}
	}
	return out
}

// crossComponentPair returns two vertices in different weakly
// connected components — inserting that edge merges them, so a
// candidate that grew it silently is guaranteed to flip the WCC
// outcome and must be caught by the bitwise oracle.
func crossComponentPair(t testing.TB, g *graph.Graph) (graph.VertexID, graph.VertexID) {
	t.Helper()
	labels, count := algorithms.WCCSeq(g)
	if count < 2 {
		t.Fatalf("test graph has %d component(s); need 2 for the corruption seed", count)
	}
	for v := 1; v < g.NumVertices(); v++ {
		if labels[v] != labels[0] {
			return 0, graph.VertexID(v)
		}
	}
	t.Fatal("no cross-component vertex found")
	return 0, 0
}

// ---- minimal HTTP harness (the serve test helpers are unexported) ----

type maintServer struct {
	Srv  *serve.Server
	URL  string
	Dir  string
	g    *graph.Graph
	once sync.Once
	derr error
}

func (ms *maintServer) drain() error {
	ms.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ms.derr = ms.Srv.Drain(ctx)
	})
	return ms.derr
}

func bootServer(t testing.TB, dir string, cfg serve.Config, sopts store.Options) *maintServer {
	t.Helper()
	g := maintGraph()
	st, err := store.Create(dir, maintComposite(t, g), sopts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	ms := &maintServer{Srv: srv, URL: "http://" + l.Addr().String(), Dir: dir, g: g}
	t.Cleanup(func() { ms.drain() })
	return ms
}

type runResp struct {
	Epoch      uint64  `json:"epoch"`
	Value      float64 `json:"value"`
	Checksum   uint64  `json:"checksum"`
	Recoveries int     `json:"recoveries"`
}

type updResp struct {
	Epoch   uint64 `json:"epoch"`
	LSN     uint64 `json:"lsn"`
	Durable bool   `json:"durable"`
	Visible bool   `json:"visible"`
}

type metricsResp struct {
	Epoch uint64 `json:"epoch"`
	Store struct {
		Failed bool `json:"write_path_failed"`
	} `json:"store"`
	Server struct {
		EpochSwaps      int64 `json:"epoch_swaps"`
		MaintPromotions int64 `json:"maint_promotions"`
		MaintRollbacks  int64 `json:"maint_rollbacks"`
	} `json:"server"`
	Maintenance *serve.MaintStatus `json:"maintenance"`
}

// do posts body (nil for GET) and decodes a 200 into out; non-200
// returns the typed error class.
func do(t testing.TB, method, url string, body io.Reader, out any) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				t.Fatalf("decoding %s %s: %v (%s)", method, url, err, raw)
			}
		}
		return resp.StatusCode, ""
	}
	var eb struct {
		Class string `json:"class"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("decoding error body (%d): %v (%s)", resp.StatusCode, err, raw)
	}
	return resp.StatusCode, eb.Class
}

func (ms *maintServer) run(t testing.TB, algo string) runResp {
	t.Helper()
	b, _ := json.Marshal(map[string]any{"algo": algo, "iterations": 3})
	var rr runResp
	if status, class := do(t, "POST", ms.URL+"/run", bytes.NewReader(b), &rr); status != http.StatusOK {
		t.Fatalf("POST /run %s: status %d class %q", algo, status, class)
	}
	return rr
}

func (ms *maintServer) updates(t testing.TB, stream string) (int, updResp, string) {
	t.Helper()
	var ur updResp
	status, class := do(t, "POST", ms.URL+"/updates", strings.NewReader(stream), &ur)
	return status, ur, class
}

func (ms *maintServer) metrics(t testing.TB) metricsResp {
	t.Helper()
	var mr metricsResp
	if status, class := do(t, "GET", ms.URL+"/metrics", nil, &mr); status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d class %q", status, class)
	}
	return mr
}

// traffic posts n WCC and n PR runs so the observation window carries a
// non-degenerate mix and per-fragment work rows.
func (ms *maintServer) traffic(t testing.TB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ms.run(t, "WCC")
		ms.run(t, "PR")
	}
}

// insertStream renders pairs as explicit-destination inserts into
// fragment 0 of every partition — the drift seed.
func insertStream(pairs [][2]graph.VertexID) string {
	var sb strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&sb, "+ %d %d 0 0\n", p[0], p[1])
	}
	return sb.String()
}

func leakCheck(t *testing.T, base int) {
	t.Helper()
	testutil.CheckGoroutines(t, base, 2)
}

// TestMaintainPromotesUnderDrift is the headline: skewed inserts drive
// the learned-cost imbalance over the threshold, a live cycle refines
// and promotes a candidate while concurrent readers hammer /run with
// engine faults armed on BOTH the serving and the oracle path — and
// every response, before, during and after the promotion, is bitwise
// the WCC outcome of its epoch's edge set. The promoted epoch then
// absorbs further updates and survives a restart.
func TestMaintainPromotesUnderDrift(t *testing.T) {
	g := maintGraph()
	pl := pool.New(4)
	defer pl.Close()
	warm := maintComposite(t, g).Partition(0).Clone().Compile()
	if _, err := algorithms.Run(engine.NewCluster(warm).UsePool(pl), costmodel.WCC, algorithms.Options{}); err != nil {
		t.Fatal(err)
	}
	baseGoroutines := testutil.GoroutineBaseline()

	runInj := fault.NewInjector(
		fault.Event{Kind: fault.Crash, Superstep: 1, Worker: 0},
		fault.Event{Kind: fault.Transient, Superstep: 2, Worker: 1},
	)
	ms := bootServer(t, t.TempDir()+"/store", serve.Config{Pool: pl, RunInjector: runInj, SessionsPerAlgo: 2}, store.Options{})

	// Seed drift: 180 extra edges, all into fragment 0 of both
	// partitions, in 6 batches. The replica replays them for the oracle.
	pairs := absentPairs(g, 185)
	if len(pairs) < 185 {
		t.Fatalf("only %d absent pairs", len(pairs))
	}
	replica := maintComposite(t, g)
	var lastAck uint64
	for b := 0; b < 6; b++ {
		chunk := pairs[b*30 : (b+1)*30]
		status, ur, class := ms.updates(t, insertStream(chunk))
		if status != http.StatusOK || !ur.Durable || !ur.Visible {
			t.Fatalf("skew batch %d: status %d class %q ack %+v", b, status, class, ur)
		}
		lastAck = ur.Epoch
		for _, p := range chunk {
			if err := replica.InsertEdge(p[0], p[1], []int{0, 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantWCC := wccOffline(t, replica)

	lp := New(ms.Srv, Config{
		Interval:       time.Hour, // ticks driven manually
		DriftThreshold: 0.05,
		MinGain:        -0.25,
		RefineTimeout:  20 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxAttempts:    2,
		Watchdog:       WatchdogConfig{Window: 50 * time.Millisecond, CostFactor: 1000, LatFactor: 1000, MinSamples: 1 << 20},
		Pool:           pl,
		OracleInjector: runInj,
		Seed:           7,
		Logf:           t.Logf,
	})
	lp.Start()
	defer lp.Stop()

	// Harvest the skewed workload into the observation window; each
	// faulted response must already be bitwise the epoch's WCC outcome.
	for i := 0; i < 6; i++ {
		rr := ms.run(t, "WCC")
		if rr.Value != wantWCC.Value || rr.Checksum != wantWCC.Checksum {
			t.Fatalf("pre-promotion WCC (%v,%d) vs oracle (%v,%d)", rr.Value, rr.Checksum, wantWCC.Value, wantWCC.Checksum)
		}
		ms.run(t, "PR")
	}

	// Concurrent readers race the promotion; results checked after.
	type obs struct {
		epoch    uint64
		value    float64
		checksum uint64
	}
	var wg sync.WaitGroup
	results := make(chan obs, 3*8)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rr := ms.run(t, "WCC")
				results <- obs{rr.Epoch, rr.Value, rr.Checksum}
			}
		}()
	}
	lp.Tick()
	wg.Wait()
	close(results)
	for o := range results {
		// Promotion preserves the edge set, so every epoch in flight
		// here shares one WCC outcome — criterion (a), bitwise.
		if o.value != wantWCC.Value || o.checksum != wantWCC.Checksum {
			t.Fatalf("reader on epoch %d: (%v,%d) vs oracle (%v,%d)", o.epoch, o.value, o.checksum, wantWCC.Value, wantWCC.Checksum)
		}
	}

	st := lp.Status()
	if st.Promoted != 1 || st.RolledBack != 0 {
		t.Fatalf("status after cycle: %+v (drift %.3f), want 1 promotion", st, st.LastDrift)
	}
	if st.ValidationFailures != 0 || st.RefinePanics != 0 {
		t.Fatalf("clean cycle reported failures: %+v", st)
	}
	if st.LastDrift < lp.cfg.DriftThreshold {
		t.Fatalf("recorded drift %.4f below threshold %.4f yet cycle ran", st.LastDrift, lp.cfg.DriftThreshold)
	}
	mr := ms.metrics(t)
	if mr.Server.MaintPromotions != 1 || mr.Epoch != lastAck+1 {
		t.Fatalf("metrics: promotions=%d epoch=%d, want 1 and %d", mr.Server.MaintPromotions, mr.Epoch, lastAck+1)
	}
	if mr.Maintenance == nil || !mr.Maintenance.Enabled || mr.Maintenance.Promoted != 1 {
		t.Fatalf("metrics maintenance block missing or stale: %+v", mr.Maintenance)
	}

	// The promoted (refined) epoch keeps absorbing updates.
	extra := pairs[180:185]
	status, ur, class := ms.updates(t, insertStream(extra))
	if status != http.StatusOK || ur.Epoch != mr.Epoch+1 {
		t.Fatalf("post-promotion batch: status %d class %q ack %+v", status, class, ur)
	}
	for _, p := range extra {
		if err := replica.InsertEdge(p[0], p[1], []int{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	wantWCC2 := wccOffline(t, replica)
	rr := ms.run(t, "WCC")
	if rr.Epoch != ur.Epoch || rr.Value != wantWCC2.Value || rr.Checksum != wantWCC2.Checksum {
		t.Fatalf("post-promotion WCC: epoch %d (%v,%d) vs epoch %d (%v,%d)",
			rr.Epoch, rr.Value, rr.Checksum, ur.Epoch, wantWCC2.Value, wantWCC2.Checksum)
	}

	lp.Stop()
	if err := ms.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	leakCheck(t, baseGoroutines)

	// Restart: the refined placement plus the post-promotion batch came
	// back off disk, coherent and semantically intact.
	st2, info, err := store.Open(ms.Dir, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info.Damage != nil || info.DiscardedMutations != 0 {
		t.Fatalf("recovery not clean: %v", info)
	}
	if err := st2.Composite().ValidateIndex(); err != nil {
		t.Fatalf("recovered index invalid: %v", err)
	}
	got := wccOffline(t, st2.Composite())
	if got.Value != wantWCC2.Value || got.Checksum != wantWCC2.Checksum {
		t.Fatalf("recovered WCC (%v,%d) vs oracle (%v,%d)", got.Value, got.Checksum, wantWCC2.Value, wantWCC2.Checksum)
	}
}

// TestMaintainChaosDegrade drives three failure families through live
// cycles on one server — refiner panic, a semantically corrupt
// candidate (a dropped bridge edge the bitwise oracle must catch), and
// refinement deadline expiry. Every one degrades to "keep serving the
// last good epoch" with the right typed counter — criteria (b) and (d).
func TestMaintainChaosDegrade(t *testing.T) {
	g := maintGraph()
	ms := bootServer(t, t.TempDir()+"/store", serve.Config{}, store.Options{})
	pristine := wccOffline(t, maintComposite(t, g))
	cu, cv := crossComponentPair(t, g)

	base := Config{
		Interval:       time.Hour,
		DriftThreshold: 1e-9, // any observed imbalance triggers a cycle
		BaseBackoff:    time.Millisecond,
		MaxAttempts:    2,
		Watchdog:       WatchdogConfig{Window: time.Millisecond, CostFactor: 1000, LatFactor: 1000, MinSamples: 1 << 20},
		Logf:           t.Logf,
	}

	cases := []struct {
		name   string
		mut    func(*Config)
		check  func(t *testing.T, st serve.MaintStatus)
		errSub string
	}{
		{
			name: "refiner panic",
			mut: func(c *Config) {
				c.TransformCandidate = func(*composite.Composite) { panic("chaos: seeded refiner panic") }
			},
			check: func(t *testing.T, st serve.MaintStatus) {
				if st.RefinePanics != 2 {
					t.Fatalf("refine_panics = %d, want 2 (one per attempt)", st.RefinePanics)
				}
			},
			errSub: "panicked",
		},
		{
			name: "oracle catches corrupt candidate",
			mut: func(c *Config) {
				// The candidate silently grows a component-merging edge:
				// structurally coherent (index validates), semantically
				// wrong — only the bitwise spot-check can reject it.
				c.TransformCandidate = func(cand *composite.Composite) {
					if err := cand.InsertEdge(cu, cv, []int{0, 0}); err != nil {
						panic(err)
					}
				}
			},
			check: func(t *testing.T, st serve.MaintStatus) {
				if st.ValidationFailures != 2 {
					t.Fatalf("validation_failures = %d, want 2", st.ValidationFailures)
				}
			},
			errSub: "oracle mismatch",
		},
		{
			name: "refinement deadline",
			mut: func(c *Config) {
				c.RefineTimeout = time.Nanosecond
			},
			check: func(t *testing.T, st serve.MaintStatus) {
				if st.RefineFailures < 2 {
					t.Fatalf("refine_failures = %d, want >= 2", st.RefineFailures)
				}
			},
			errSub: "refining partition",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			lp := New(ms.Srv, cfg)
			ms.traffic(t, 2) // fresh observation window per scenario
			lp.Tick()
			st := lp.Status()
			if st.Cycles != 1 {
				t.Fatalf("cycles = %d (drift %.6f), want 1", st.Cycles, st.LastDrift)
			}
			if st.Promoted != 0 || st.RolledBack != 0 {
				t.Fatalf("degraded cycle still swapped epochs: %+v", st)
			}
			tc.check(t, st)
			if !strings.Contains(st.LastError, tc.errSub) {
				t.Fatalf("last_error %q does not mention %q", st.LastError, tc.errSub)
			}
			// The server never left its last good epoch and still
			// serves the exact pristine outcome.
			rr := ms.run(t, "WCC")
			if rr.Epoch != 1 || rr.Value != pristine.Value || rr.Checksum != pristine.Checksum {
				t.Fatalf("post-failure read: epoch %d (%v,%d), want epoch 1 (%v,%d)",
					rr.Epoch, rr.Value, rr.Checksum, pristine.Value, pristine.Checksum)
			}
		})
	}
}

// TestMaintainRollback seeds a regression INTO the watchdog window: the
// cycle promotes a validated candidate, then a burst of fragment-0
// inserts drives the live mix-weighted cost past the rollback factor —
// the watchdog swaps back to the retained base, replaying the burst so
// no acked update is lost. Criterion (c).
func TestMaintainRollback(t *testing.T) {
	g := maintGraph()
	ms := bootServer(t, t.TempDir()+"/store", serve.Config{}, store.Options{})
	lp := New(ms.Srv, Config{
		Interval:       time.Hour,
		DriftThreshold: 1e-9,
		MinGain:        -5, // accept any candidate; the watchdog is under test
		BaseBackoff:    time.Millisecond,
		MaxAttempts:    1,
		Watchdog:       WatchdogConfig{Window: 1200 * time.Millisecond, CostFactor: 1.01, LatFactor: 1000, MinSamples: 1 << 20},
		Seed:           5,
		Logf:           t.Logf,
	})
	ms.traffic(t, 2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		lp.Tick()
	}()

	// Wait for the promotion, then seed the regression inside the
	// watchdog window: 240 extra arcs into fragment 0.
	deadline := time.Now().Add(20 * time.Second)
	for lp.Status().Promoted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion within deadline: %+v", lp.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	pairs := absentPairs(g, 240)
	replica := maintComposite(t, g)
	status, ur, class := ms.updates(t, insertStream(pairs))
	if status != http.StatusOK {
		t.Fatalf("regression batch: status %d class %q", status, class)
	}
	for _, p := range pairs {
		if err := replica.InsertEdge(p[0], p[1], []int{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	st := lp.Status()
	if st.Promoted != 1 || st.RolledBack != 1 {
		t.Fatalf("status: %+v, want 1 promotion + 1 rollback", st)
	}
	if !strings.Contains(st.LastError, "rolled back") {
		t.Fatalf("last_error %q does not record the rollback", st.LastError)
	}
	mr := ms.metrics(t)
	if mr.Server.MaintRollbacks != 1 || mr.Server.MaintPromotions != 1 {
		t.Fatalf("metrics: promotions=%d rollbacks=%d", mr.Server.MaintPromotions, mr.Server.MaintRollbacks)
	}
	// Epochs: 1 (base) -> 2 (promotion) -> 3 (regression batch) -> 4
	// (rollback, burst replayed onto the base placement).
	if mr.Epoch != ur.Epoch+1 {
		t.Fatalf("epoch %d after rollback, want %d", mr.Epoch, ur.Epoch+1)
	}
	want := wccOffline(t, replica)
	rr := ms.run(t, "WCC")
	if rr.Epoch != mr.Epoch || rr.Value != want.Value || rr.Checksum != want.Checksum {
		t.Fatalf("post-rollback WCC: epoch %d (%v,%d), want epoch %d (%v,%d)",
			rr.Epoch, rr.Value, rr.Checksum, mr.Epoch, want.Value, want.Checksum)
	}

	// The rollback was durable: a restart lands on it.
	if err := ms.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st2, info, err := store.Open(ms.Dir, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info.Damage != nil {
		t.Fatalf("recovery found damage: %v", info)
	}
	got := wccOffline(t, st2.Composite())
	if got.Value != want.Value || got.Checksum != want.Checksum {
		t.Fatalf("recovered WCC (%v,%d) vs oracle (%v,%d)", got.Value, got.Checksum, want.Value, want.Checksum)
	}
}

// TestMaintainDiskFaultDuringPromotion arms a disk fault on the exact
// fsync the durable swap issues first: the promotion fails, the write
// path poisons like any other write error, and the maintenance loop
// degrades — readers never leave the last good epoch. Criterion (d).
func TestMaintainDiskFaultDuringPromotion(t *testing.T) {
	g := maintGraph()
	// store.Create fsyncs twice (snapshot + segment header); with no
	// update traffic the next sync is ReplaceComposite's pre-replace
	// log flush.
	inj := fault.NewDiskInjector(fault.DiskEvent{Kind: fault.SyncErr, N: 2})
	ms := bootServer(t, t.TempDir()+"/store", serve.Config{}, store.Options{Injector: inj})
	pristine := wccOffline(t, maintComposite(t, g))

	lp := New(ms.Srv, Config{
		Interval:       time.Hour,
		DriftThreshold: 1e-9,
		MinGain:        -5,
		BaseBackoff:    time.Millisecond,
		MaxAttempts:    2,
		Watchdog:       WatchdogConfig{Window: time.Millisecond, CostFactor: 1000, LatFactor: 1000, MinSamples: 1 << 20},
		Logf:           t.Logf,
	})
	ms.traffic(t, 2)
	lp.Tick()

	st := lp.Status()
	if st.Promoted != 0 || st.SwapFailures != 2 {
		t.Fatalf("status: %+v, want 0 promotions and 2 swap failures (disk fault, then fail-fast)", st)
	}
	if st.LastError == "" {
		t.Fatal("no last_error after a failed durable swap")
	}
	mr := ms.metrics(t)
	if !mr.Store.Failed {
		t.Fatal("failed durable swap did not poison the write path")
	}
	if mr.Epoch != 1 {
		t.Fatalf("epoch %d after failed swap, want 1", mr.Epoch)
	}
	rr := ms.run(t, "WCC")
	if rr.Epoch != 1 || rr.Value != pristine.Value || rr.Checksum != pristine.Checksum {
		t.Fatalf("post-fault read: epoch %d (%v,%d), want pristine epoch 1", rr.Epoch, rr.Value, rr.Checksum)
	}
	if status, _, class := ms.updates(t, "+ 0 1 0 0\n"); status != http.StatusServiceUnavailable || class != "store_failed" {
		t.Fatalf("post-poison update: status %d class %q, want 503 store_failed", status, class)
	}

	// Drain may surface the poisoned close; restart recovers the
	// pristine committed state — the aborted swap left no trace.
	t.Logf("drain after poisoned swap: %v", ms.drain())
	st2, info, err := store.Open(ms.Dir, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info.Damage != nil {
		t.Fatalf("recovery found damage: %v", info)
	}
	if err := st2.Composite().EqualState(maintComposite(t, g)); err != nil {
		t.Fatalf("recovered state diverged from pristine: %v", err)
	}
}

// TestMaintainDrainRace races SIGTERM-style drains against in-flight
// epoch promotions at shifting interleavings: each run must either
// complete the promotion before the drain or abort it atomically — a
// reopen shows exactly the base state or exactly the promoted state,
// and nothing leaks.
func TestMaintainDrainRace(t *testing.T) {
	g := maintGraph()
	baseGoroutines := testutil.GoroutineBaseline()
	marker := absentPairs(g, 1)[0]
	promoted, aborted := 0, 0

	for i := 0; i < 8; i++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("s%d", i))
		st, err := store.Create(dir, maintComposite(t, g), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(st, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		base, seq, err := srv.BeginMaintenance()
		if err != nil {
			t.Fatal(err)
		}
		// The candidate carries a marker edge so the reopen can tell a
		// promoted store from an aborted one.
		cand := base.Clone()
		if err := cand.InsertEdge(marker[0], marker[1], []int{0, 0}); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		var swapErr, drainErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 300 * time.Microsecond)
			_, swapErr = srv.SwapEpoch(cand, seq, false)
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(7-i) * 300 * time.Microsecond)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			drainErr = srv.Drain(ctx)
		}()
		wg.Wait()
		if drainErr != nil {
			t.Fatalf("iter %d: drain: %v", i, drainErr)
		}

		st2, info, err := store.Open(dir, g, store.Options{})
		if err != nil {
			t.Fatalf("iter %d: reopen: %v", i, err)
		}
		if info.Damage != nil {
			t.Fatalf("iter %d: damage: %v", i, info)
		}
		want := maintComposite(t, g)
		if swapErr == nil {
			promoted++
			if err := want.InsertEdge(marker[0], marker[1], []int{0, 0}); err != nil {
				t.Fatal(err)
			}
		} else {
			aborted++
		}
		if err := st2.Composite().EqualState(want); err != nil {
			t.Fatalf("iter %d (swapErr=%v): reopened state is neither base nor promoted: %v", i, swapErr, err)
		}
		st2.Close()
	}
	t.Logf("drain races: %d promoted, %d aborted", promoted, aborted)
	leakCheck(t, baseGoroutines)
}
