// Package maintain closes the loop the paper names as its key
// extension (Section 8, ROADMAP item 1): incremental maintenance of an
// application-driven partitioning under workload drift. A background
// control loop watches the serving plane's harvested per-fragment cost
// reports and live algorithm mix, and when the learned-cost imbalance
// crosses a threshold it cuts a candidate composite from the current
// epoch, re-refines it with ParE2H/ParV2H off the serving path, and
// asks the server to promote it — but only after the candidate passes
// a three-gate validation (coherence index, bitwise oracle spot-check,
// cost-improvement floor). A post-promotion regression watchdog
// compares the observed window against the pre-promotion state and
// rolls back to the retained base epoch if the promotion made things
// worse.
//
// The loop treats itself as a fallible component: refiner panics,
// injected engine or disk faults, deadline expiry and repeated
// validation failure all degrade to "keep serving the last good epoch"
// with typed counters — never to a corrupted or half-promoted state.
// The chaos suite drives both injector families through live
// maintenance cycles under -race to prove it.
package maintain

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/pool"
	"adp/internal/refine"
	"adp/internal/serve"
)

// WatchdogConfig tunes the post-promotion regression watchdog.
type WatchdogConfig struct {
	// Window is how long the promoted epoch observes traffic before
	// the keep/rollback verdict. Default 2s.
	Window time.Duration
	// MinSamples is the minimum number of /run latency samples on EACH
	// side of the promotion boundary before the latency comparison is
	// trusted. Default 8.
	MinSamples int
	// LatFactor rolls back when post-promotion p99 exceeds
	// pre-promotion p99 by this factor. Default 2.0.
	LatFactor float64
	// CostFactor rolls back when the live epoch's mix-weighted
	// simulated cost exceeds the pre-promotion base cost by this
	// factor. Default 1.05. Zero disables the cost check.
	CostFactor float64
}

// Config tunes the maintenance loop. The zero value picks defaults.
type Config struct {
	// Interval is the drift-detector tick. Default 5s.
	Interval time.Duration
	// DriftThreshold triggers a re-refinement cycle when the
	// mix-weighted learned-cost imbalance (max/mean - 1 of the
	// aggregate per-fragment load) crosses it. Default 0.5.
	DriftThreshold float64
	// MinGain is the cost-improvement floor: a candidate is promoted
	// only if its mix-weighted simulated cost is at most
	// (1 - MinGain) x the base cost. 0 accepts any non-worsening
	// candidate; negative values (tests) accept regressions. Default 0.
	MinGain float64
	// RefineTimeout bounds one candidate refinement. Default 30s.
	RefineTimeout time.Duration
	// BaseBackoff/MaxBackoff shape the exponential retry ladder
	// between failed attempts within a cycle (full jitter). Defaults
	// 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds refine+validate+swap attempts per cycle.
	// Default 3.
	MaxAttempts int
	// Watchdog tunes the post-promotion regression check.
	Watchdog WatchdogConfig
	// Refine is the refiner configuration used for every candidate
	// (Parallel is forced on; Pool defaults to Pool below).
	Refine refine.Config
	// Pool runs refinement probes and oracle spot-checks. Nil uses the
	// process-wide shared pool.
	Pool *pool.Pool
	// OracleInjector, when non-nil, is cloned into every oracle
	// spot-check run — the chaos suite proves validation still reaches
	// bitwise-correct verdicts under engine faults.
	OracleInjector *fault.Injector
	// Seed drives the backoff jitter. Default 1.
	Seed int64
	// TransformCandidate, when non-nil, runs on each candidate after
	// refinement and before validation — the test seam for seeding
	// regressions, corruption or panics into live cycles.
	TransformCandidate func(*composite.Composite)
	// Logf, when non-nil, receives one line per maintenance event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.5
	}
	if c.RefineTimeout <= 0 {
		c.RefineTimeout = 30 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Watchdog.Window <= 0 {
		c.Watchdog.Window = 2 * time.Second
	}
	if c.Watchdog.MinSamples <= 0 {
		c.Watchdog.MinSamples = 8
	}
	if c.Watchdog.LatFactor <= 0 {
		c.Watchdog.LatFactor = 2.0
	}
	if c.Watchdog.CostFactor < 0 {
		c.Watchdog.CostFactor = 0
	} else if c.Watchdog.CostFactor == 0 {
		c.Watchdog.CostFactor = 1.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Refine.Parallel = true
	if c.Refine.Pool == nil {
		c.Refine.Pool = c.Pool
	}
}

// Loop is one maintenance control loop bound to one server.
type Loop struct {
	cfg Config
	srv *serve.Server

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	rng    *rand.Rand // loop goroutine only

	mu        sync.Mutex
	state     string
	lastError string

	cycles             atomic.Int64
	promotions         atomic.Int64
	rollbacks          atomic.Int64
	validationFailures atomic.Int64
	refineFailures     atomic.Int64
	refinePanics       atomic.Int64
	swapFailures       atomic.Int64
	lastDrift          atomic.Uint64 // Float64bits
}

// New builds a loop over srv. Start launches it; a Loop can also be
// driven synchronously with Tick (tests, cron-style callers).
func New(srv *serve.Server, cfg Config) *Loop {
	cfg.fill()
	l := &Loop{cfg: cfg, srv: srv, state: "idle", rng: rand.New(rand.NewSource(cfg.Seed))}
	l.ctx, l.cancel = context.WithCancel(context.Background())
	return l
}

// Start launches the background loop and registers the /metrics
// maintenance block on the server.
func (l *Loop) Start() {
	l.srv.SetMaintStatusFunc(l.Status)
	l.wg.Add(1)
	go l.run()
}

// Stop cancels the loop and waits for the current cycle to unwind.
// The /metrics block stays registered so post-mortem counters remain
// visible.
func (l *Loop) Stop() {
	l.cancel()
	l.wg.Wait()
}

// Status snapshots the loop's counters for /metrics.
func (l *Loop) Status() serve.MaintStatus {
	l.mu.Lock()
	state, lastErr := l.state, l.lastError
	l.mu.Unlock()
	return serve.MaintStatus{
		Enabled:            true,
		State:              state,
		Cycles:             l.cycles.Load(),
		Promoted:           l.promotions.Load(),
		RolledBack:         l.rollbacks.Load(),
		ValidationFailures: l.validationFailures.Load(),
		RefineFailures:     l.refineFailures.Load(),
		RefinePanics:       l.refinePanics.Load(),
		SwapFailures:       l.swapFailures.Load(),
		LastDrift:          math.Float64frombits(l.lastDrift.Load()),
		Threshold:          l.cfg.DriftThreshold,
		LastError:          lastErr,
	}
}

func (l *Loop) setState(s string) {
	l.mu.Lock()
	l.state = s
	l.mu.Unlock()
}

func (l *Loop) setError(err error) {
	l.mu.Lock()
	if err == nil {
		l.lastError = ""
	} else {
		l.lastError = err.Error()
	}
	l.mu.Unlock()
}

func (l *Loop) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}

func (l *Loop) pool() *pool.Pool {
	if l.cfg.Pool != nil {
		return l.cfg.Pool
	}
	return pool.Default()
}

func (l *Loop) run() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.ctx.Done():
			return
		case <-ticker.C:
			l.Tick()
		}
	}
}

// Tick runs one detector pass and, if the drift signal crosses the
// threshold, one full maintenance cycle synchronously. Safe to call
// from tests instead of Start; not safe concurrently with itself.
func (l *Loop) Tick() {
	drift, weights := l.detect()
	l.lastDrift.Store(math.Float64bits(drift))
	if drift < l.cfg.DriftThreshold {
		l.setState("idle")
		return
	}
	l.logf("maintain: drift %.3f >= %.3f, starting cycle", drift, l.cfg.DriftThreshold)
	l.cycle(weights)
}

// detect folds the server's observation window into the drift signal:
// per-algorithm per-fragment load rows (the engine's harvested Work
// vectors when the window saw traffic for that algorithm, reference
// cost-model evaluation as fallback) weighted by the observed mix.
func (l *Loop) detect() (float64, []float64) {
	counts, work := l.srv.ObservedWindow()
	weights := costmodel.MixWeights(counts)
	nonzero := false
	for _, w := range weights {
		if w > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		return 0, weights
	}
	comp, _ := l.srv.CurrentComposite()
	algos := costmodel.Algos()
	rows := make([][]float64, len(algos))
	for i, a := range algos {
		if i >= len(weights) || weights[i] == 0 {
			continue
		}
		if i < len(work) && vectorSum(work[i]) > 0 {
			rows[i] = work[i]
			continue
		}
		costs := costmodel.Evaluate(comp.Partition(i%comp.K()), costmodel.Reference(a))
		rows[i] = costmodel.FragTotals(costs)
	}
	return costmodel.WeightedImbalance(rows, weights), weights
}

func vectorSum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// cycle runs refine → validate → promote with bounded retries and
// exponential backoff + jitter, then hands the promoted epoch to the
// regression watchdog. Every failure path leaves the server on its
// last good epoch; the deferred EndMaintenance releases delta capture
// whatever happens.
func (l *Loop) cycle(weights []float64) {
	l.cycles.Add(1)
	base, baseSeq, err := l.srv.BeginMaintenance()
	if err != nil {
		l.setError(err)
		l.swapFailures.Add(1)
		return
	}
	defer l.srv.EndMaintenance()
	defer l.setState("idle")

	baseCost := l.weightedCost(base, weights)
	baseOracle, err := l.oracleRun(base)
	if err != nil {
		// The base itself cannot run the oracle (it IS the serving
		// state): nothing to compare candidates against — bail.
		l.setError(fmt.Errorf("maintain: base oracle run: %w", err))
		l.refineFailures.Add(1)
		return
	}

	for attempt := 0; attempt < l.cfg.MaxAttempts; attempt++ {
		if attempt > 0 && !l.backoff(attempt) {
			return // cancelled mid-backoff
		}
		cand, err := l.buildCandidate(base)
		if err != nil {
			l.setError(err)
			continue // counters bumped inside buildCandidate
		}
		if err := l.validate(cand, baseOracle, baseCost, weights); err != nil {
			l.validationFailures.Add(1)
			l.setError(err)
			l.logf("maintain: attempt %d: candidate rejected: %v", attempt, err)
			continue
		}
		l.setState("promoting")
		newSeq, err := l.srv.SwapEpoch(cand, baseSeq, false)
		if err != nil {
			l.swapFailures.Add(1)
			l.setError(err)
			l.logf("maintain: attempt %d: swap failed: %v", attempt, err)
			continue
		}
		l.promotions.Add(1)
		l.setError(nil)
		l.logf("maintain: promoted epoch %d (base %d)", newSeq, baseSeq)
		l.watchdog(base, baseSeq, newSeq, baseCost, weights)
		return
	}
	l.logf("maintain: cycle abandoned after %d attempts; serving last good epoch", l.cfg.MaxAttempts)
}

// backoff sleeps the exponential full-jitter ladder; false means the
// loop was cancelled while waiting.
func (l *Loop) backoff(attempt int) bool {
	d := l.cfg.BaseBackoff << (attempt - 1)
	if d > l.cfg.MaxBackoff {
		d = l.cfg.MaxBackoff
	}
	d = time.Duration(l.rng.Int63n(int64(d) + 1)) // full jitter: [0, d]
	l.setState("backoff")
	select {
	case <-time.After(d):
		return true
	case <-l.ctx.Done():
		return false
	}
}

// buildCandidate clones the base and re-refines every bundled
// partition off the serving path, bounded by RefineTimeout. A refiner
// panic is contained here (counted, candidate discarded). The refined
// partitions are reassembled through composite.New, which rebuilds the
// coherence index refinement invalidated.
func (l *Loop) buildCandidate(base *composite.Composite) (cand *composite.Composite, err error) {
	l.setState("refining")
	defer func() {
		if r := recover(); r != nil {
			l.refinePanics.Add(1)
			cand, err = nil, fmt.Errorf("maintain: refiner panicked: %v", r)
		}
	}()
	// COW cut: the refiners mutate work through exported mutators only,
	// which thaw (copy) a fragment before writing, so base's shared
	// compiled fragments stay intact for the rollback path.
	work := base.CloneCOW()
	ctx, cancel := context.WithTimeout(l.ctx, l.cfg.RefineTimeout)
	defer cancel()
	for j := 0; j < work.K(); j++ {
		p := work.Partition(j)
		model := l.partitionModel(j, work.K())
		var rerr error
		if hasVCut(p) {
			_, rerr = refine.ParV2HCtx(ctx, p, model, l.cfg.Refine)
		} else {
			_, rerr = refine.ParE2HCtx(ctx, p, model, l.cfg.Refine)
		}
		if rerr != nil {
			l.refineFailures.Add(1)
			return nil, fmt.Errorf("maintain: refining partition %d: %w", j, rerr)
		}
	}
	if l.cfg.TransformCandidate != nil {
		l.cfg.TransformCandidate(work)
	}
	rebuilt, nerr := composite.New(work.Partition(0).Graph(), work.Partitions())
	if nerr != nil {
		l.refineFailures.Add(1)
		return nil, fmt.Errorf("maintain: reassembling candidate: %w", nerr)
	}
	return rebuilt, nil
}

// partitionModel picks the cost model partition j is refined against:
// the reference model of the algorithm that maps onto j (the serving
// plane routes algorithm i to partition i % K). When several
// algorithms share j, the first wins — their reference models agree on
// the load-balance direction that matters for drift.
func (l *Loop) partitionModel(j, k int) costmodel.CostModel {
	algos := costmodel.Algos()
	for i, a := range algos {
		if i%k == j {
			return costmodel.Reference(a)
		}
	}
	return costmodel.Reference(algos[0])
}

// hasVCut reports whether p contains a v-cut vertex (multiple copies,
// none complete) — the shape ParV2H exists for; pure edge-cut-ish
// partitions take the ParE2H path instead.
func hasVCut(p *partition.Partition) bool {
	n := p.Graph().NumVertices()
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if len(p.Copies(id)) > 1 && p.CompleteFragment(id) < 0 {
			return true
		}
	}
	return false
}

// oracleOpts: WCC needs no knobs, and its label checksum is
// placement-independent — bitwise comparable across refinements.
var oracleOpts = algorithms.Options{}

// oracleRun executes the WCC spot-check over c's first partition with
// the oracle injector armed. WCC is the one algorithm whose Outcome
// (Value and Checksum) is bitwise placement-independent, so base and
// candidate must agree exactly even though their placements differ.
func (l *Loop) oracleRun(c *composite.Composite) (algorithms.Outcome, error) {
	part := c.Partition(algoIndexOf(costmodel.WCC) % c.K())
	cl := engine.NewCluster(part).UsePool(l.pool())
	opts := engine.Options{Context: l.ctx}
	if l.cfg.OracleInjector != nil {
		opts.Injector = l.cfg.OracleInjector.Clone()
	}
	cl.Configure(opts)
	return algorithms.Run(cl, costmodel.WCC, oracleOpts)
}

func algoIndexOf(a costmodel.Algo) int {
	for i, x := range costmodel.Algos() {
		if x == a {
			return i
		}
	}
	return 0
}

// validate is the promotion gate: coherence index, bitwise oracle
// spot-check against the base outcome, and the cost-improvement floor.
func (l *Loop) validate(cand *composite.Composite, baseOracle algorithms.Outcome, baseCost float64, weights []float64) error {
	l.setState("validating")
	if err := cand.ValidateIndex(); err != nil {
		return fmt.Errorf("coherence index: %w", err)
	}
	out, err := l.oracleRun(cand)
	if err != nil {
		return fmt.Errorf("oracle run: %w", err)
	}
	if math.Float64bits(out.Value) != math.Float64bits(baseOracle.Value) || out.Checksum != baseOracle.Checksum {
		return fmt.Errorf("oracle mismatch: candidate (%v,%d) vs base (%v,%d)",
			out.Value, out.Checksum, baseOracle.Value, baseOracle.Checksum)
	}
	candCost := l.weightedCost(cand, weights)
	if candCost > baseCost*(1-l.cfg.MinGain) {
		return fmt.Errorf("cost floor: candidate %.4g > %.4g (base %.4g, min gain %.2f)",
			candCost, baseCost*(1-l.cfg.MinGain), baseCost, l.cfg.MinGain)
	}
	return nil
}

// weightedCost is the mix-weighted simulated parallel cost of a
// composite: sum over observed algorithms of w_a x ParallelCost of the
// partition serving a. Zero-weight algorithms are skipped; an all-zero
// mix falls back to uniform weights so the floor still bites.
func (l *Loop) weightedCost(c *composite.Composite, weights []float64) float64 {
	algos := costmodel.Algos()
	uniform := true
	for _, w := range weights {
		if w > 0 {
			uniform = false
			break
		}
	}
	var total float64
	for i, a := range algos {
		w := 1.0 / float64(len(algos))
		if !uniform {
			if i >= len(weights) || weights[i] == 0 {
				continue
			}
			w = weights[i]
		}
		costs := costmodel.Evaluate(c.Partition(i%c.K()), costmodel.Reference(a))
		total += w * costmodel.ParallelCost(costs)
	}
	return total
}

// watchdog observes the promoted epoch for the configured window and
// rolls back to the retained base if the live cost or tail latency
// regressed past the configured factors. Rollback reuses the same
// guarded swap path as promotion, so a mid-rollback fault degrades the
// same way: last good epoch keeps serving.
func (l *Loop) watchdog(base *composite.Composite, baseSeq, promotedSeq uint64, baseCost float64, weights []float64) {
	l.setState("watchdog")
	pre := l.p99Before(promotedSeq)
	select {
	case <-time.After(l.cfg.Watchdog.Window):
	case <-l.ctx.Done():
		return
	}
	regressed := ""
	if l.cfg.Watchdog.CostFactor > 0 && baseCost > 0 {
		comp, _ := l.srv.CurrentComposite()
		if cur := l.weightedCost(comp, weights); cur > baseCost*l.cfg.Watchdog.CostFactor {
			regressed = fmt.Sprintf("cost %.4g > %.4g (base %.4g x %.2f)", cur, baseCost*l.cfg.Watchdog.CostFactor, baseCost, l.cfg.Watchdog.CostFactor)
		}
	}
	if regressed == "" && pre > 0 {
		if post, n := l.p99Since(promotedSeq); n >= l.cfg.Watchdog.MinSamples && post > time.Duration(float64(pre)*l.cfg.Watchdog.LatFactor) {
			regressed = fmt.Sprintf("p99 %v > %v x %.2f", post, pre, l.cfg.Watchdog.LatFactor)
		}
	}
	if regressed == "" {
		l.logf("maintain: epoch %d survived the watchdog window", promotedSeq)
		return
	}
	l.logf("maintain: epoch %d regressed (%s); rolling back to base of epoch %d", promotedSeq, regressed, baseSeq)
	if _, err := l.srv.SwapEpoch(base.CloneCOW(), baseSeq, true); err != nil {
		l.swapFailures.Add(1)
		l.setError(fmt.Errorf("maintain: rollback: %w", err))
		l.logf("maintain: rollback failed: %v", err)
		return
	}
	l.rollbacks.Add(1)
	l.setError(fmt.Errorf("maintain: rolled back epoch %d: %s", promotedSeq, regressed))
}

// p99Before computes p99 wall time of latency samples served by epochs
// before seq; zero when the window is too thin.
func (l *Loop) p99Before(seq uint64) time.Duration {
	var walls []time.Duration
	for _, s := range l.srv.LatencySamples() {
		if s.Epoch < seq {
			walls = append(walls, s.Wall)
		}
	}
	if len(walls) < l.cfg.Watchdog.MinSamples {
		return 0
	}
	return p99(walls)
}

// p99Since computes p99 wall time of samples served by epoch seq or
// later, plus the sample count.
func (l *Loop) p99Since(seq uint64) (time.Duration, int) {
	var walls []time.Duration
	for _, s := range l.srv.LatencySamples() {
		if s.Epoch >= seq {
			walls = append(walls, s.Wall)
		}
	}
	if len(walls) == 0 {
		return 0, 0
	}
	return p99(walls), len(walls)
}

func p99(walls []time.Duration) time.Duration {
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	idx := (len(walls)*99 + 99) / 100
	if idx > len(walls) {
		idx = len(walls)
	}
	return walls[idx-1]
}
