package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList: arbitrary text input must never panic, and any
// successfully parsed graph must satisfy the CSR invariants and
// round-trip through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# vertices 4 directed\n0 1\n1 2\n")
	f.Add("# vertices 3 undirected\n0 1\n")
	f.Add("% comment\n5 5\n1 2\n")
	f.Add("0 1\n\n\n2 3")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph invalid: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g, g2)
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic the binary reader.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	g := NewBuilder(4)
	g.AddEdge(0, 1)
	_ = WriteBinary(&seed, g.MustBuild())
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph invalid: %v", verr)
		}
	})
}
