package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarises a graph's degree structure — the quantities that
// decide how much an application-driven refinement can gain (hub skew
// drives CN/TC imbalance; diameter drives SSSP supersteps).
type Stats struct {
	Vertices   int
	Arcs       int64
	Undirected bool
	MaxInDeg   int
	MaxOutDeg  int
	AvgDeg     float64
	// P90/P99 of the in-degree distribution.
	P90InDeg, P99InDeg int
	// Skew is max in-degree over average degree: >100 marks a
	// Twitter-like hub structure.
	Skew float64
	// GiniInDeg is the Gini coefficient of the in-degree
	// distribution: 0 uniform, →1 hub-dominated.
	GiniInDeg float64
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Vertices:   g.NumVertices(),
		Arcs:       g.NumEdges(),
		Undirected: g.Undirected(),
		AvgDeg:     g.AvgDegree(),
	}
	if s.Vertices == 0 {
		return s
	}
	in := make([]int, s.Vertices)
	for v := 0; v < s.Vertices; v++ {
		in[v] = g.InDegree(VertexID(v))
		if in[v] > s.MaxInDeg {
			s.MaxInDeg = in[v]
		}
		if d := g.OutDegree(VertexID(v)); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
	}
	sort.Ints(in)
	s.P90InDeg = in[int(float64(len(in))*0.90)]
	s.P99InDeg = in[int(float64(len(in))*0.99)]
	if s.AvgDeg > 0 {
		s.Skew = float64(s.MaxInDeg) / s.AvgDeg
	}
	s.GiniInDeg = gini(in)
	return s
}

// gini computes the Gini coefficient of a sorted non-negative slice.
func gini(sorted []int) float64 {
	n := len(sorted)
	var sum, weighted float64
	for i, d := range sorted {
		sum += float64(d)
		weighted += float64(i+1) * float64(d)
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*sum) / (float64(n) * sum)
}

// String renders the stats on one line.
func (s Stats) String() string {
	kind := "directed"
	if s.Undirected {
		kind = "undirected"
	}
	return fmt.Sprintf("%s |V|=%d |E|=%d avg=%.1f maxIn=%d p99In=%d skew=%.0fx gini=%.2f",
		kind, s.Vertices, s.Arcs, s.AvgDeg, s.MaxInDeg, s.P99InDeg, math.Round(s.Skew), s.GiniInDeg)
}
