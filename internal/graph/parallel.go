package graph

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"slices"
	"strconv"
	"strings"

	"adp/internal/pool"
)

// Big-graph ingestion: the sequential Builder walks every edge twice
// through a sort of the whole arc slice, which dominates wall time on
// 10M-edge inputs. The parallel path below splits the work into
// data-determined chunks (fixed byte/arc extents, never dependent on
// the worker count), processes chunks on an internal/pool instance,
// and merges per-chunk results with a deterministic k-way merge — so
// the resulting Graph is bitwise identical for any Workers value,
// including 1, and identical to what the sequential Builder produces.

// LoadOptions tunes the parallel ingestion paths.
type LoadOptions struct {
	// Workers bounds the pool; <= 0 uses GOMAXPROCS.
	Workers int
	// ChunkBytes is the target text-chunk size for ParallelReadEdgeList;
	// <= 0 selects 4 MiB. Chunk boundaries extend to the next newline,
	// so they are a function of the input bytes only.
	ChunkBytes int
}

func (o LoadOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o LoadOptions) chunkBytes() int {
	if o.ChunkBytes <= 0 {
		return 4 << 20
	}
	return o.ChunkBytes
}

// arcChunk is the fixed arc-extent processed per pool task when
// sorting and expanding edge slices; a function of the data size only.
const arcChunk = 1 << 17

// textChunk is one newline-aligned byte range of an edge-list input.
type textChunk struct {
	data      []byte
	firstLine int // 1-based global line number of the chunk's first line
}

// parsedChunk is the outcome of parsing one textChunk.
type parsedChunk struct {
	edges      []Edge
	maxV       VertexID
	headerN    int  // last header's vertex count, -1 if none
	headerDir  bool // last header's undirected flag
	sawHeader  bool
	err        error
	undirected bool
}

// splitLines reads r fully and cuts it into newline-aligned chunks of
// roughly chunkBytes each, recording global first-line numbers so
// parse errors keep exact line attribution.
func splitLines(r io.Reader, chunkBytes int) ([]textChunk, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var chunks []textChunk
	line := 1
	for {
		buf := make([]byte, chunkBytes)
		n, err := io.ReadFull(br, buf)
		buf = buf[:n]
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if len(buf) > 0 {
				chunks = append(chunks, textChunk{data: buf, firstLine: line})
			}
			return chunks, nil
		}
		if err != nil {
			return nil, err
		}
		// Extend to the end of the current line.
		tail, rerr := br.ReadBytes('\n')
		buf = append(buf, tail...)
		chunks = append(chunks, textChunk{data: buf, firstLine: line})
		for _, b := range buf {
			if b == '\n' {
				line++
			}
		}
		if rerr == io.EOF {
			return chunks, nil
		}
		if rerr != nil {
			return nil, rerr
		}
	}
}

// parseChunk parses one newline-aligned byte range with the exact
// per-line grammar of ReadEdgeList. Range checks against a declared n
// happen at merge time (the header may live in another chunk).
func parseChunk(c textChunk) parsedChunk {
	out := parsedChunk{headerN: -1}
	lineNo := c.firstLine - 1
	data := c.data
	for len(data) > 0 {
		lineNo++
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		var raw []byte
		if nl < 0 {
			raw, data = data, nil
		} else {
			raw, data = data[:nl], data[nl+1:]
		}
		line := strings.TrimSpace(string(raw))
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "vertices" {
				v, err := strconv.Atoi(fields[2])
				if err != nil {
					out.err = fmt.Errorf("graph: line %d: bad header vertex count: %w", lineNo, err)
					return out
				}
				if v < 0 || v > maxDeclaredVertices {
					out.err = fmt.Errorf("graph: line %d: header declares %d vertices (cap %d)", lineNo, v, maxDeclaredVertices)
					return out
				}
				out.headerN = v
				out.headerDir = fields[3] == "undirected"
				out.sawHeader = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			out.err = fmt.Errorf("graph: line %d: expected 'src dst'", lineNo)
			return out
		}
		s, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			out.err = fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
			return out
		}
		d, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			out.err = fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
			return out
		}
		e := Edge{VertexID(s), VertexID(d)}
		if e.Src > out.maxV {
			out.maxV = e.Src
		}
		if e.Dst > out.maxV {
			out.maxV = e.Dst
		}
		out.edges = append(out.edges, e)
	}
	return out
}

// ParallelReadEdgeList parses the WriteEdgeList/SNAP text format with
// chunked parallel parsing and a parallel CSR build. The result is
// bitwise identical to ReadEdgeList for well-formed inputs (header, if
// any, preceding out-of-range data) and independent of opt.Workers.
func ParallelReadEdgeList(r io.Reader, opt LoadOptions) (*Graph, error) {
	pl := pool.New(opt.workers())
	defer pl.Close()
	n, edges, undirected, err := parseEdgeListChunks(r, opt, pl)
	if err != nil {
		return nil, err
	}
	return FromEdgesParallel(n, edges, undirected, pl)
}

// ParallelReadEdgeListStreaming is ParallelReadEdgeList fused with
// BuildStreaming: the text is parsed chunk-parallel and the consumer
// receives every finished forward star during the build — the one-pass
// load-and-partition path for edge-list files.
func ParallelReadEdgeListStreaming(r io.Reader, opt LoadOptions, consume VertexConsumer) (*Graph, error) {
	pl := pool.New(opt.workers())
	n, edges, undirected, err := parseEdgeListChunks(r, opt, pl)
	pl.Close()
	if err != nil {
		return nil, err
	}
	return BuildStreaming(n, edges, undirected, opt, consume)
}

// parseEdgeListChunks runs the chunk-parallel text parse and header
// merge shared by the parallel readers, returning the declared (or
// inferred) vertex count and the raw edge stream in input order.
func parseEdgeListChunks(r io.Reader, opt LoadOptions, pl *pool.Pool) (int, []Edge, bool, error) {
	chunks, err := splitLines(r, opt.chunkBytes())
	if err != nil {
		return 0, nil, false, fmt.Errorf("graph: reading edge list: %w", err)
	}
	parsed := pool.Map(pl, len(chunks), func(i int) parsedChunk {
		return parseChunk(chunks[i])
	})
	n := -1
	undirected := false
	maxV := VertexID(0)
	total := 0
	for _, pc := range parsed {
		if pc.err != nil {
			return 0, nil, false, pc.err
		}
		if pc.sawHeader {
			n = pc.headerN
			undirected = pc.headerDir
		}
		if pc.maxV > maxV {
			maxV = pc.maxV
		}
		total += len(pc.edges)
	}
	edges := make([]Edge, 0, total)
	for _, pc := range parsed {
		edges = append(edges, pc.edges...)
	}
	if n >= 0 {
		for _, e := range edges {
			if int64(e.Src) >= int64(n) || int64(e.Dst) >= int64(n) {
				return 0, nil, false, fmt.Errorf("graph: edge (%d,%d) out of declared range [0,%d)", e.Src, e.Dst, n)
			}
		}
	} else {
		n = int(maxV) + 1
		if len(edges) == 0 {
			n = 0
		}
	}
	return n, edges, undirected, nil
}

// FromEdgesParallel builds the same Graph as FromEdges — bitwise — by
// expanding, sorting, and filling the CSR in parallel on pl. Chunk
// extents depend only on len(edges), so the output does not vary with
// the pool's worker count.
func FromEdgesParallel(n int, edges []Edge, undirected bool, pl *pool.Pool) (*Graph, error) {
	if len(edges) == 0 {
		return FromEdges(n, nil, undirected)
	}
	arcs, err := expandSortMerge(n, edges, undirected, pl)
	if err != nil {
		return nil, err
	}

	g := &Graph{n: n, undirected: undirected}
	g.outIndex = make([]int64, n+1)
	for _, e := range arcs {
		g.outIndex[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		g.outIndex[v+1] += g.outIndex[v]
	}
	// Sorted by (src,dst), the out-adjacency is simply the dst column.
	g.outAdj = make([]VertexID, len(arcs))
	pl.RunChunks(len(arcs), arcChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.outAdj[i] = arcs[i].Dst
		}
	})
	g.buildInAdjacency(arcs)
	return g, nil
}

// expandSortMerge bounds-checks edges, expands them per fixed-extent
// chunk (loop drop + symmetrise), sorts each chunk, and k-way-merges
// the sorted runs into one sorted duplicate-free arc slice — the same
// arcs Builder.Build derives, computed chunk-parallel.
func expandSortMerge(n int, edges []Edge, undirected bool, pl *pool.Pool) ([]Edge, error) {
	nchunks := (len(edges) + arcChunk - 1) / arcChunk
	if nchunks == 0 {
		return nil, nil
	}
	errs := make([]error, nchunks)
	runs := make([][]Edge, nchunks)
	pl.Run(nchunks, func(c int) {
		lo, hi := c*arcChunk, min((c+1)*arcChunk, len(edges))
		for _, e := range edges[lo:hi] {
			if int(e.Src) >= n || int(e.Dst) >= n {
				errs[c] = fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, n)
				return
			}
		}
		run := make([]Edge, 0, (hi-lo)*2)
		for _, e := range edges[lo:hi] {
			if e.Src == e.Dst {
				continue
			}
			run = append(run, e)
			if undirected {
				run = append(run, Edge{e.Dst, e.Src})
			}
		}
		slices.SortFunc(run, cmpEdge)
		runs[c] = run
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeRuns(runs), nil
}

// buildInAdjacency fills inIndex/inAdj from sorted deduped arcs; the
// arc-order scatter yields sorted in-lists (sources ascend per
// destination bucket), matching Builder.Build.
func (g *Graph) buildInAdjacency(arcs []Edge) {
	g.inIndex = make([]int64, g.n+1)
	g.inAdj = make([]VertexID, len(arcs))
	for _, e := range arcs {
		g.inIndex[e.Dst+1]++
	}
	for v := 0; v < g.n; v++ {
		g.inIndex[v+1] += g.inIndex[v]
	}
	cursor := make([]int64, g.n)
	copy(cursor, g.inIndex[:g.n])
	for _, e := range arcs {
		g.inAdj[cursor[e.Dst]] = e.Src
		cursor[e.Dst]++
	}
}

func cmpEdge(a, b Edge) int {
	if a.Src != b.Src {
		if a.Src < b.Src {
			return -1
		}
		return 1
	}
	switch {
	case a.Dst < b.Dst:
		return -1
	case a.Dst > b.Dst:
		return 1
	}
	return 0
}

// mergeRuns k-way-merges sorted runs into one sorted duplicate-free
// slice. The result depends only on the multiset of arcs, so any run
// partitioning — and therefore any worker count — converges to the
// same bytes.
func mergeRuns(runs [][]Edge) []Edge {
	total := 0
	live := runs[:0]
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
			total += len(r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return dedupSorted(live[0])
	}
	// Small binary heap keyed by each run's head arc.
	heap := make([]int, len(live)) // indexes into live
	pos := make([]int, len(live))
	for i := range heap {
		heap[i] = i
	}
	less := func(a, b int) bool {
		ea, eb := live[a][pos[a]], live[b][pos[b]]
		if c := cmpEdge(ea, eb); c != 0 {
			return c < 0
		}
		return a < b
	}
	var down func(i, n int)
	down = func(i, n int) {
		for {
			l := 2*i + 1
			if l >= n {
				return
			}
			j := l
			if r := l + 1; r < n && less(heap[r], heap[l]) {
				j = r
			}
			if !less(heap[j], heap[i]) {
				return
			}
			heap[i], heap[j] = heap[j], heap[i]
			i = j
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i, len(heap))
	}
	out := make([]Edge, 0, total)
	hn := len(heap)
	for hn > 0 {
		r := heap[0]
		e := live[r][pos[r]]
		if len(out) == 0 || out[len(out)-1] != e {
			out = append(out, e)
		}
		pos[r]++
		if pos[r] == len(live[r]) {
			heap[0] = heap[hn-1]
			hn--
		}
		down(0, hn)
	}
	return out
}

// VertexConsumer receives the finished forward stars of a streaming
// build in ascending id order. Begin runs before the first Vertex call
// with the final vertex and arc counts (streaming partitioners need
// |E| for their objective before the first placement).
type VertexConsumer interface {
	Begin(nv int, m int64)
	Vertex(v VertexID, out []VertexID)
}

// BuildStreaming is FromEdgesParallel with a consumer bolted onto the
// out-CSR: once the forward stars are final it streams every vertex to
// consume in id order while the in-adjacency builds concurrently, so a
// one-pass streaming partitioner runs during — not after — ingestion.
// The consumer sees exactly the adjacency the finished graph will
// expose (sorted, deduped, loops dropped).
func BuildStreaming(n int, edges []Edge, undirected bool, opt LoadOptions, consume VertexConsumer) (*Graph, error) {
	pl := pool.New(opt.workers())
	defer pl.Close()
	arcs, err := expandSortMerge(n, edges, undirected, pl)
	if err != nil {
		return nil, err
	}
	g := &Graph{n: n, undirected: undirected}
	g.outIndex = make([]int64, n+1)
	for _, e := range arcs {
		g.outIndex[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		g.outIndex[v+1] += g.outIndex[v]
	}
	g.outAdj = make([]VertexID, len(arcs))
	for i, e := range arcs {
		g.outAdj[i] = e.Dst
	}
	// Overlap: the consumer streams forward stars on this goroutine
	// while the in-adjacency scatter proceeds on a helper.
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.buildInAdjacency(arcs)
	}()
	if consume != nil {
		consume.Begin(n, int64(len(arcs)))
		for v := 0; v < n; v++ {
			consume.Vertex(VertexID(v), g.outAdj[g.outIndex[v]:g.outIndex[v+1]])
		}
	}
	<-done
	return g, nil
}
