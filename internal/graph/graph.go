// Package graph provides an immutable directed graph in compressed
// sparse row (CSR) form, together with builders, traversals and
// edge-list I/O. It is the substrate every other package in this
// repository works against.
//
// Vertices are dense identifiers in [0, NumVertices). Both the
// out-adjacency and the in-adjacency are materialised so that the
// degree metrics of the paper's cost model (d+G, d-G) are O(1).
package graph

import "fmt"

// VertexID identifies a vertex. Dense in [0, NumVertices).
type VertexID = uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Graph is an immutable directed graph in CSR form. The zero value is
// an empty graph. Use a Builder to construct one.
//
// For undirected graphs every edge {u,v} is stored as the two arcs
// (u,v) and (v,u), and Undirected reports true; NumEdges still counts
// stored arcs, while NumUndirectedEdges halves it.
type Graph struct {
	n          int
	outIndex   []int64 // len n+1; outAdj[outIndex[v]:outIndex[v+1]] are v's successors
	outAdj     []VertexID
	inIndex    []int64
	inAdj      []VertexID
	undirected bool
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of stored directed arcs.
func (g *Graph) NumEdges() int64 { return int64(len(g.outAdj)) }

// NumUndirectedEdges returns the number of undirected edges when the
// graph is symmetric (each counted once). For directed graphs it
// returns NumEdges.
func (g *Graph) NumUndirectedEdges() int64 {
	if g.undirected {
		return int64(len(g.outAdj)) / 2
	}
	return int64(len(g.outAdj))
}

// Undirected reports whether the graph was built as an undirected
// (symmetrised) graph.
func (g *Graph) Undirected() bool { return g.undirected }

// OutDegree returns the out-degree of v (d-G in the paper's notation).
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outIndex[v+1] - g.outIndex[v])
}

// InDegree returns the in-degree of v (d+G in the paper's notation).
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inIndex[v+1] - g.inIndex[v])
}

// Degree returns the total degree of v: in+out for directed graphs,
// the undirected degree for symmetric graphs.
func (g *Graph) Degree(v VertexID) int {
	if g.undirected {
		return g.OutDegree(v)
	}
	return g.OutDegree(v) + g.InDegree(v)
}

// OutNeighbors returns the successors of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outAdj[g.outIndex[v]:g.outIndex[v+1]]
}

// InNeighbors returns the predecessors of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inAdj[g.inIndex[v]:g.inIndex[v+1]]
}

// AvgDegree returns D = Σ d+G(v) / |V|, the constant metric variable of
// the paper's cost model. Zero for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.outAdj)) / float64(g.n)
}

// HasEdge reports whether the arc (u,v) exists. Binary search over the
// sorted adjacency, O(log d).
func (g *Graph) HasEdge(u, v VertexID) bool {
	adj := g.OutNeighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// Edges calls fn for every stored arc in (src, dst) order. If fn
// returns false, iteration stops early.
func (g *Graph) Edges(fn func(src, dst VertexID) bool) {
	for v := 0; v < g.n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			if !fn(VertexID(v), w) {
				return
			}
		}
	}
}

// EdgeList materialises all stored arcs.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, len(g.outAdj))
	g.Edges(func(s, d VertexID) bool {
		out = append(out, Edge{s, d})
		return true
	})
	return out
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	kind := "directed"
	if g.undirected {
		kind = "undirected"
	}
	return fmt.Sprintf("graph{%s |V|=%d |E|=%d}", kind, g.n, g.NumEdges())
}

// Validate checks internal CSR invariants. It is intended for tests
// and costs O(|V|+|E|).
func (g *Graph) Validate() error {
	if len(g.outIndex) != g.n+1 || len(g.inIndex) != g.n+1 {
		return fmt.Errorf("graph: index length mismatch: n=%d out=%d in=%d", g.n, len(g.outIndex), len(g.inIndex))
	}
	if len(g.outAdj) != len(g.inAdj) {
		return fmt.Errorf("graph: arc count mismatch out=%d in=%d", len(g.outAdj), len(g.inAdj))
	}
	for v := 0; v < g.n; v++ {
		if g.outIndex[v] > g.outIndex[v+1] || g.inIndex[v] > g.inIndex[v+1] {
			return fmt.Errorf("graph: non-monotone index at %d", v)
		}
		adj := g.OutNeighbors(VertexID(v))
		for i, w := range adj {
			if int(w) >= g.n {
				return fmt.Errorf("graph: out-neighbor %d of %d out of range", w, v)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: out-adjacency of %d not strictly sorted", v)
			}
		}
		in := g.InNeighbors(VertexID(v))
		for i, w := range in {
			if int(w) >= g.n {
				return fmt.Errorf("graph: in-neighbor %d of %d out of range", w, v)
			}
			if i > 0 && in[i-1] >= w {
				return fmt.Errorf("graph: in-adjacency of %d not strictly sorted", v)
			}
		}
	}
	if g.undirected {
		for v := 0; v < g.n; v++ {
			for _, w := range g.OutNeighbors(VertexID(v)) {
				if !g.HasEdge(w, VertexID(v)) {
					return fmt.Errorf("graph: undirected graph missing reverse arc (%d,%d)", w, v)
				}
			}
		}
	}
	return nil
}
