package graph

// BFSOrder returns the vertices of g reachable along out-edges from
// the given roots, in breadth-first order. Vertices not listed in
// roots and not reachable are appended afterwards in id order, so the
// result is always a permutation prefix covering all n vertices when
// exhaustive is true.
func BFSOrder(g *Graph, roots []VertexID, exhaustive bool) []VertexID {
	n := g.NumVertices()
	seen := make([]bool, n)
	order := make([]VertexID, 0, n)
	queue := make([]VertexID, 0, n)
	enqueue := func(v VertexID) {
		if !seen[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for _, r := range roots {
		enqueue(r)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		order = append(order, v)
		for _, w := range g.OutNeighbors(v) {
			enqueue(w)
		}
		if g.Undirected() {
			continue
		}
		for _, w := range g.InNeighbors(v) {
			enqueue(w)
		}
	}
	if exhaustive {
		for v := 0; v < n; v++ {
			if !seen[VertexID(v)] {
				enqueue(VertexID(v))
				for head := len(order); head < len(queue); head++ {
					u := queue[head]
					order = append(order, u)
					for _, w := range g.OutNeighbors(u) {
						enqueue(w)
					}
					if !g.Undirected() {
						for _, w := range g.InNeighbors(u) {
							enqueue(w)
						}
					}
				}
			}
		}
	}
	return order
}

// ConnectedComponents labels each vertex with the smallest vertex id
// in its weakly connected component and returns the labels plus the
// number of components. Used both as the sequential WCC oracle and by
// generators.
func ConnectedComponents(g *Graph) ([]VertexID, int) {
	n := g.NumVertices()
	label := make([]VertexID, n)
	for i := range label {
		label[i] = VertexID(n) // sentinel: unvisited
	}
	count := 0
	queue := make([]VertexID, 0, 64)
	for s := 0; s < n; s++ {
		if label[s] != VertexID(n) {
			continue
		}
		count++
		root := VertexID(s)
		label[s] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.OutNeighbors(v) {
				if label[w] == VertexID(n) {
					label[w] = root
					queue = append(queue, w)
				}
			}
			for _, w := range g.InNeighbors(v) {
				if label[w] == VertexID(n) {
					label[w] = root
					queue = append(queue, w)
				}
			}
		}
	}
	return label, count
}

// MaxDegreeVertex returns the vertex with the largest total degree,
// breaking ties toward the smaller id. Returns 0 for an empty graph.
func MaxDegreeVertex(g *Graph) VertexID {
	best := VertexID(0)
	bestDeg := -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > bestDeg {
			bestDeg = d
			best = VertexID(v)
		}
	}
	return best
}
