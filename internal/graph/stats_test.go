package graph

import (
	"math"
	"strings"
	"testing"
)

func TestComputeStatsStar(t *testing.T) {
	// A 101-vertex star: hub 0 receives 100 in-arcs.
	b := NewBuilder(101)
	for v := 1; v <= 100; v++ {
		b.AddEdge(VertexID(v), 0)
	}
	g := b.MustBuild()
	s := ComputeStats(g)
	if s.MaxInDeg != 100 || s.MaxOutDeg != 1 {
		t.Fatalf("degrees: %+v", s)
	}
	if s.P99InDeg != 0 {
		t.Fatalf("p99 in-degree = %d, want 0 (only the hub has in-arcs)", s.P99InDeg)
	}
	if s.Skew < 50 {
		t.Fatalf("star skew = %v", s.Skew)
	}
	// A single hub holding all mass: Gini near 1.
	if s.GiniInDeg < 0.9 {
		t.Fatalf("star gini = %v, want ≈1", s.GiniInDeg)
	}
	if !strings.Contains(s.String(), "|V|=101") {
		t.Fatalf("stats string: %s", s)
	}
}

func TestComputeStatsUniform(t *testing.T) {
	// A directed cycle: perfectly uniform in-degrees, Gini 0.
	b := NewBuilder(50)
	for v := 0; v < 50; v++ {
		b.AddEdge(VertexID(v), VertexID((v+1)%50))
	}
	g := b.MustBuild()
	s := ComputeStats(g)
	if math.Abs(s.GiniInDeg) > 1e-9 {
		t.Fatalf("cycle gini = %v, want 0", s.GiniInDeg)
	}
	if s.MaxInDeg != 1 || s.Skew != 1 {
		t.Fatalf("cycle stats: %+v", s)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	s := ComputeStats(g)
	if s.Vertices != 0 || s.GiniInDeg != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}
