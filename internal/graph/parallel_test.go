package graph

import (
	"bytes"
	"math/rand"
	"runtime"
	"slices"
	"strings"
	"testing"

	"adp/internal/pool"
)

// graphBitwiseEqual compares every CSR array byte for byte.
func graphBitwiseEqual(t *testing.T, want, got *Graph, label string) {
	t.Helper()
	if want.n != got.n || want.undirected != got.undirected {
		t.Fatalf("%s: shape %v vs %v", label, want, got)
	}
	if !slices.Equal(want.outIndex, got.outIndex) || !slices.Equal(want.inIndex, got.inIndex) {
		t.Fatalf("%s: index arrays differ", label)
	}
	if !slices.Equal(want.outAdj, got.outAdj) || !slices.Equal(want.inAdj, got.inAdj) {
		t.Fatalf("%s: adjacency arrays differ", label)
	}
}

// randomEdges draws a messy edge multiset: duplicates, self loops,
// skewed endpoints.
func randomEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if rng.Intn(10) == 0 {
			v = u // deliberate self loop
		}
		edges = append(edges, Edge{u, v})
		if rng.Intn(5) == 0 {
			edges = append(edges, Edge{u, v}) // deliberate duplicate
		}
	}
	return edges
}

// TestFromEdgesParallelMatchesBuild: the chunk-parallel build must be
// bitwise the sequential Builder across worker counts, directions, and
// messy inputs.
func TestFromEdgesParallelMatchesBuild(t *testing.T) {
	workersSweep := []int{1, 4, runtime.NumCPU()}
	for _, undirected := range []bool{false, true} {
		for seed := int64(0); seed < 3; seed++ {
			edges := randomEdges(500, 4000, seed)
			want, err := FromEdges(500, edges, undirected)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workersSweep {
				pl := pool.New(w)
				got, err := FromEdgesParallel(500, edges, undirected, pl)
				pl.Close()
				if err != nil {
					t.Fatal(err)
				}
				graphBitwiseEqual(t, want, got, "undirected="+boolStr(undirected))
				if err := got.Validate(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// TestFromEdgesParallelRange pins the out-of-range error message to
// Builder.Build's.
func TestFromEdgesParallelRange(t *testing.T) {
	pl := pool.New(2)
	defer pl.Close()
	_, err := FromEdgesParallel(3, []Edge{{0, 1}, {2, 9}}, false, pl)
	if err == nil || !strings.Contains(err.Error(), "edge (2,9) out of range for n=3") {
		t.Fatalf("out-of-range edge not rejected: %v", err)
	}
}

// TestParallelReadEdgeListMatchesSequential: tiny chunk sizes force
// many parse chunks; every worker count must reproduce the sequential
// reader bitwise.
func TestParallelReadEdgeListMatchesSequential(t *testing.T) {
	for _, header := range []string{"# vertices 300 directed\n", "# vertices 300 undirected\n", ""} {
		var text bytes.Buffer
		text.WriteString(header)
		text.WriteString("% a comment line\n\n")
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 5000; i++ {
			s, d := rng.Intn(300), rng.Intn(300)
			text.WriteString(itoa(s) + " " + itoa(d) + "\n")
		}
		want, err := ReadEdgeList(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4, runtime.NumCPU()} {
			got, err := ParallelReadEdgeList(bytes.NewReader(text.Bytes()),
				LoadOptions{Workers: w, ChunkBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			graphBitwiseEqual(t, want, got, "workers="+itoa(w))
		}
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for x > 0 {
		i--
		b[i] = byte('0' + x%10)
		x /= 10
	}
	return string(b[i:])
}

// TestParallelReadEdgeListErrors: parse failures keep exact global
// line attribution even when the offending line sits deep inside a
// later chunk.
func TestParallelReadEdgeListErrors(t *testing.T) {
	var text bytes.Buffer
	for i := 0; i < 200; i++ {
		text.WriteString("0 1\n")
	}
	text.WriteString("zz 1\n") // line 201
	_, err := ParallelReadEdgeList(bytes.NewReader(text.Bytes()), LoadOptions{Workers: 4, ChunkBytes: 128})
	if err == nil || !strings.Contains(err.Error(), "line 201") {
		t.Fatalf("error lost line attribution: %v", err)
	}
	_, err = ParallelReadEdgeList(strings.NewReader("# vertices 3 directed\n0 1\n1 9\n"),
		LoadOptions{Workers: 2, ChunkBytes: 8})
	if err == nil || !strings.Contains(err.Error(), "out of declared range") {
		t.Fatalf("range violation not rejected: %v", err)
	}
}

// streamRecorder checks the BuildStreaming consumer contract: Begin
// before any vertex, ids ascending and complete, stars matching the
// finished graph.
type streamRecorder struct {
	nv    int
	m     int64
	stars [][]VertexID
}

func (r *streamRecorder) Begin(nv int, m int64) {
	r.nv, r.m = nv, m
	r.stars = make([][]VertexID, 0, nv)
}

func (r *streamRecorder) Vertex(v VertexID, out []VertexID) {
	if int(v) != len(r.stars) {
		panic("stream out of order")
	}
	r.stars = append(r.stars, append([]VertexID(nil), out...))
}

// TestBuildStreamingConsumer: the stream must deliver exactly the
// finished graph's forward stars, in id order, with counts announced
// up front, at every worker count.
func TestBuildStreamingConsumer(t *testing.T) {
	edges := randomEdges(400, 3000, 5)
	want, err := FromEdges(400, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		rec := &streamRecorder{}
		got, err := BuildStreaming(400, edges, false, LoadOptions{Workers: w}, rec)
		if err != nil {
			t.Fatal(err)
		}
		graphBitwiseEqual(t, want, got, "streamed")
		if rec.nv != want.NumVertices() || rec.m != want.NumEdges() {
			t.Fatalf("Begin announced (%d,%d), want (%d,%d)", rec.nv, rec.m, want.NumVertices(), want.NumEdges())
		}
		if len(rec.stars) != want.NumVertices() {
			t.Fatalf("streamed %d vertices of %d", len(rec.stars), want.NumVertices())
		}
		for v, star := range rec.stars {
			if !slices.Equal(star, want.OutNeighbors(VertexID(v))) {
				t.Fatalf("vertex %d: streamed star differs from final graph", v)
			}
		}
	}
}

// FuzzParallelReadEdgeList: the chunked parallel parser must never
// panic, and whenever the sequential reader accepts an input the
// parallel one must produce the identical graph.
func FuzzParallelReadEdgeList(f *testing.F) {
	f.Add("# vertices 4 directed\n0 1\n1 2\n")
	f.Add("# vertices 3 undirected\n0 1\n")
	f.Add("% comment\n5 5\n1 2\n")
	f.Add("0 1\n\n\n2 3")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		got, perr := ParallelReadEdgeList(strings.NewReader(input), LoadOptions{Workers: 3, ChunkBytes: 16})
		want, serr := ReadEdgeList(strings.NewReader(input))
		if serr != nil {
			// The parallel reader resolves headers before range checks,
			// so it may accept inputs the line-ordered reader rejects;
			// it must still never produce an invalid graph.
			if perr == nil {
				if verr := got.Validate(); verr != nil {
					t.Fatalf("parallel reader accepted invalid graph: %v", verr)
				}
			}
			return
		}
		if perr != nil {
			t.Fatalf("sequential accepted, parallel rejected: %v", perr)
		}
		graphBitwiseEqual(t, want, got, "fuzz")
	})
}
