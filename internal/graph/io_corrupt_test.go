package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"
)

// TestReadEdgeListCorrupt tables the malformed-text failure modes: each
// must produce an error naming the offending line, never a panic or a
// silently wrong graph.
func TestReadEdgeListCorrupt(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring the error must contain
	}{
		{"non-numeric header count", "# vertices x directed\n0 1\n", "line 1"},
		{"negative header count", "# vertices -5 directed\n", "line 1"},
		{"header count over cap", "# vertices 999999999999 directed\n", "cap"},
		{"missing dst field", "# vertices 3 directed\n0\n", "line 2"},
		{"non-numeric src", "zz 1\n", "line 1"},
		{"non-numeric dst", "1 zz\n", "line 1"},
		{"negative vertex id", "-1 2\n", "line 1"},
		{"edge beyond declared range", "# vertices 3 directed\n0 5\n", "line 2"},
		{"later line beyond range", "# vertices 4 directed\n0 1\n1 2\n2 9\n", "line 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("corrupt input accepted: %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadEdgeListWrapsParseError: the %w chain must expose the
// underlying strconv failure to errors.As.
func TestReadEdgeListWrapsParseError(t *testing.T) {
	_, err := ReadEdgeList(strings.NewReader("abc 1\n"))
	var numErr *strconv.NumError
	if !errors.As(err, &numErr) {
		t.Fatalf("error %v does not wrap a *strconv.NumError", err)
	}
}

// binFixture serialises a small valid graph for byte-patching.
func binFixture(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadBinaryCorrupt tables the binary failure modes. Wire layout:
// magic u32 @0, flags u32 @4, n u32 @8, m i64 @12, outIndex (n+1)×i64
// @20, outAdj m×u32.
func TestReadBinaryCorrupt(t *testing.T) {
	valid := binFixture(t)
	patch := func(off int, vals ...byte) []byte {
		b := append([]byte(nil), valid...)
		copy(b[off:], vals)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "header"},
		{"truncated header", valid[:6], "header"},
		{"bad magic", patch(0, 0xde, 0xad), "magic"},
		{"vertex count over cap", patch(8, 0xff, 0xff, 0xff, 0x7f), "cap"},
		{"negative arc count", patch(12, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), "cap"},
		{"non-monotone index", patch(20, 0x40, 0, 0, 0, 0, 0, 0, 0), "corrupt index"},
		{"truncated index", valid[:24], "out-index"},
		{"truncated adjacency", valid[:len(valid)-2], "adjacency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadBinaryWrapsIOError: truncation mid-section must surface
// io.ErrUnexpectedEOF through the wrap chain.
func TestReadBinaryWrapsIOError(t *testing.T) {
	valid := binFixture(t)
	_, err := ReadBinary(bytes.NewReader(valid[:len(valid)-2]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error %v does not wrap io.ErrUnexpectedEOF", err)
	}
}

// TestReadBinaryHeaderCapBeforeAlloc: a hostile header demanding huge
// arrays must be rejected by the cap check, not by attempting the
// allocation.
func TestReadBinaryHeaderCapBeforeAlloc(t *testing.T) {
	var buf bytes.Buffer
	le := binary.LittleEndian
	_ = binary.Write(&buf, le, binaryMagic)
	_ = binary.Write(&buf, le, uint32(0))
	_ = binary.Write(&buf, le, uint32(1<<30)) // n over cap
	_ = binary.Write(&buf, le, int64(8))
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized header not capped: %v", err)
	}
}
