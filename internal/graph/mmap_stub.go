//go:build !unix

package graph

import "fmt"

// Mapping is a placeholder on platforms without mmap support.
type Mapping struct{}

// Close is a no-op on platforms without mmap support.
func (m *Mapping) Close() error { return nil }

// MapFlatBinary is unavailable on this platform; use ReadFlatBinary.
func MapFlatBinary(path string) (*Graph, *Mapping, error) {
	return nil, nil, fmt.Errorf("graph: mmap unsupported on this platform; use ReadFlatBinary")
}
