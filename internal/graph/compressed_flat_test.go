package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func roundTripGraph(t *testing.T, directed bool, seed int64) *Graph {
	t.Helper()
	g, err := FromEdges(120, randomEdges(120, 900, seed), !directed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCompressedRoundTrip: write→read is bitwise lossless for directed
// and undirected graphs, including an empty one.
func TestCompressedRoundTrip(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for seed := int64(0); seed < 3; seed++ {
			g := roundTripGraph(t, directed, seed)
			var buf bytes.Buffer
			if err := WriteBinaryCompressed(&buf, g); err != nil {
				t.Fatal(err)
			}
			if int64(buf.Len()) != CompressedSizeBytes(g) {
				t.Fatalf("CompressedSizeBytes=%d but encoder wrote %d", CompressedSizeBytes(g), buf.Len())
			}
			got, err := ReadBinaryCompressed(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			graphBitwiseEqual(t, g, got, "compressed round trip")
		}
	}
	empty, _ := FromEdges(0, nil, false)
	var buf bytes.Buffer
	if err := WriteBinaryCompressed(&buf, empty); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinaryCompressed(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty graph round trip: %v", err)
	}
}

// TestFlatRoundTrip: the flat format survives both the portable reader
// and (on unix) the mmap view, bitwise.
func TestFlatRoundTrip(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := roundTripGraph(t, directed, 7)
		var buf bytes.Buffer
		if err := WriteFlatBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != FixedSizeBytes(g) {
			t.Fatalf("FixedSizeBytes=%d but encoder wrote %d", FixedSizeBytes(g), buf.Len())
		}
		got, err := ReadFlatBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		graphBitwiseEqual(t, g, got, "flat round trip")

		path := filepath.Join(t.TempDir(), "g.flat")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		mg, mapping, err := MapFlatBinary(path)
		if err != nil {
			if strings.Contains(err.Error(), "unsupported on this platform") {
				continue
			}
			t.Fatal(err)
		}
		graphBitwiseEqual(t, g, mg, "mmap view")
		if err := mapping.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// compressedFixture encodes a tiny valid compressed graph for the
// corruption table to mangle: 3 vertices, arcs 0→{1,2}, 1→{2}.
func compressedFixture() []byte {
	g, err := FromEdges(3, []Edge{{0, 1}, {0, 2}, {1, 2}}, false)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryCompressed(&buf, g); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestReadBinaryCompressedCorrupt mirrors io_corrupt_test.go: each row
// mangles one aspect of the fixture and pins the error substring.
func TestReadBinaryCompressedCorrupt(t *testing.T) {
	base := compressedFixture()
	// Layout: [0:4 magic][4:8 flags][8:12 n][12:20 m][20 deg0][21 first0]
	// [22 gap][23 deg1][24 first1][25 deg2]
	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   string
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, "reading compressed header"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "bad compressed magic"},
		{"vertex cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 1<<29)
			return b
		}, "vertices (cap"},
		{"arc cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:], 1<<40)
			return b
		}, "arcs (cap"},
		{"truncated degree", func(b []byte) []byte { return b[:23] }, "reading degree of vertex 1"},
		{"truncated gap", func(b []byte) []byte { return b[:22] }, "reading neighbor 1 of vertex 0"},
		{"degree overflow", func(b []byte) []byte { b[20] = 200; return b }, "degrees exceed declared"},
		{"zero gap", func(b []byte) []byte { b[22] = 0; return b }, "zero gap"},
		{"neighbor out of range", func(b []byte) []byte { b[21] = 9; return b }, "beyond 3 vertices"},
		{"degree sum short", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:], 5)
			return b
		}, "degrees sum to 3 arcs, header declares 5"},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0x00) }, "trailing bytes"},
		{"false undirected flag", func(b []byte) []byte { b[4] = 1; return b }, "undirected flag set"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mangle(append([]byte(nil), base...))
			_, err := ReadBinaryCompressed(bytes.NewReader(b))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// flatFixture encodes the same tiny graph in the flat format.
func flatFixture() []byte {
	g, err := FromEdges(3, []Edge{{0, 1}, {0, 2}, {1, 2}}, false)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := WriteFlatBinary(&buf, g); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestReadFlatBinaryCorrupt: every flat-format invariant violation must
// error, not panic — the same bytes the mmap path maps.
func TestReadFlatBinaryCorrupt(t *testing.T) {
	base := flatFixture()
	// Layout for n=3, m=3: [0:24 header][24:56 outIndex 4×i64]
	// [56:88 inIndex 4×i64][88:100 outAdj 3×u32][100:112 inAdj 3×u32]
	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   string
	}{
		{"truncated header", func(b []byte) []byte { return b[:12] }, "reading flat header"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "bad flat magic"},
		{"vertex cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<29)
			return b
		}, "vertices (cap"},
		{"arc cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 1<<40)
			return b
		}, "arcs (cap"},
		{"truncated index", func(b []byte) []byte { return b[:40] }, "reading flat out-index"},
		{"truncated adjacency", func(b []byte) []byte { return b[:90] }, "reading flat out-adjacency"},
		{"index span", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[48:], 99) // outIndex[3] != m
			return b
		}, "does not span"},
		{"index non-monotone", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:], 4) // outIndex[1]=4 > outIndex[2]=3
			return b
		}, "non-monotone"},
		{"neighbor out of range", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[88:], 7)
			return b
		}, "out of range"},
		{"adjacency unsorted", func(b []byte) []byte {
			// outAdj row of vertex 0 becomes [2,1]: sorted-order violation.
			binary.LittleEndian.PutUint32(b[88:], 2)
			binary.LittleEndian.PutUint32(b[92:], 1)
			return b
		}, "not strictly sorted"},
		{"transpose broken", func(b []byte) []byte {
			// inAdj[0] (in-neighbor of 1, which is 0) becomes 1 → arc
			// (0,1) vanishes from the in-view but stays sorted.
			binary.LittleEndian.PutUint32(b[100:], 1)
			return b
		}, "in-adjacency missing arc"},
		{"false undirected flag", func(b []byte) []byte { b[4] = 1; return b }, "undirected flag set"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mangle(append([]byte(nil), base...))
			_, err := ReadFlatBinary(bytes.NewReader(b))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
			// The mmap path must reject the same bytes (size-mismatch
			// truncations surface as a different message; any error is
			// the contract).
			path := filepath.Join(t.TempDir(), "bad.flat")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if g, mapping, err := MapFlatBinary(path); err == nil {
				mapping.Close()
				t.Fatalf("mmap accepted corrupt fixture, graph n=%d", g.NumVertices())
			}
		})
	}
}

// FuzzReadBinaryCompressed: arbitrary bytes must never panic, and
// accepted graphs must validate and re-encode to the same bytes.
func FuzzReadBinaryCompressed(f *testing.F) {
	f.Add(compressedFixture())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinaryCompressed(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinaryCompressed(&buf, g); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted non-canonical encoding (%d bytes in, %d out)", len(data), buf.Len())
		}
	})
}

// FuzzReadFlatBinary: arbitrary bytes must never panic, and accepted
// graphs must pass full validation.
func FuzzReadFlatBinary(f *testing.F) {
	f.Add(flatFixture())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFlatBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}
