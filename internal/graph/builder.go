package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and constructs an immutable Graph.
// Builders are not safe for concurrent use.
type Builder struct {
	n          int
	edges      []Edge
	undirected bool
	keepLoops  bool
}

// NewBuilder returns a Builder for a directed graph over n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NewUndirectedBuilder returns a Builder that symmetrises every added
// edge, producing a Graph with Undirected() == true.
func NewUndirectedBuilder(n int) *Builder {
	return &Builder{n: n, undirected: true}
}

// KeepSelfLoops makes Build retain self loops, which are dropped by
// default (none of the paper's algorithms are defined on them).
func (b *Builder) KeepSelfLoops() *Builder {
	b.keepLoops = true
	return b
}

// AddEdge records the arc (u,v); for undirected builders the reverse
// arc is implied. Duplicate edges are removed at Build time.
func (b *Builder) AddEdge(u, v VertexID) {
	b.edges = append(b.edges, Edge{u, v})
}

// NumPendingEdges reports how many arcs have been added so far
// (before dedup, excluding implied reverse arcs).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build constructs the Graph. It deduplicates edges, drops self loops
// (unless KeepSelfLoops), sorts adjacency lists, and verifies vertex
// ranges.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if int(e.Src) >= b.n || int(e.Dst) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, b.n)
		}
	}
	arcs := make([]Edge, 0, len(b.edges)*2)
	for _, e := range b.edges {
		if e.Src == e.Dst && !b.keepLoops {
			continue
		}
		arcs = append(arcs, e)
		if b.undirected && e.Src != e.Dst {
			arcs = append(arcs, Edge{e.Dst, e.Src})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Src != arcs[j].Src {
			return arcs[i].Src < arcs[j].Src
		}
		return arcs[i].Dst < arcs[j].Dst
	})
	arcs = dedupSorted(arcs)

	g := &Graph{n: b.n, undirected: b.undirected}
	g.outIndex = make([]int64, b.n+1)
	g.outAdj = make([]VertexID, len(arcs))
	for _, e := range arcs {
		g.outIndex[e.Src+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outIndex[v+1] += g.outIndex[v]
	}
	cursor := make([]int64, b.n)
	copy(cursor, g.outIndex[:b.n])
	for _, e := range arcs {
		g.outAdj[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}

	// In-adjacency via a counting pass over the same arcs.
	g.inIndex = make([]int64, b.n+1)
	g.inAdj = make([]VertexID, len(arcs))
	for _, e := range arcs {
		g.inIndex[e.Dst+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inIndex[v+1] += g.inIndex[v]
	}
	copy(cursor, g.inIndex[:b.n])
	// Iterating arcs in (src,dst) order yields sorted in-adjacency
	// because sources ascend for each fixed destination bucket.
	for _, e := range arcs {
		g.inAdj[cursor[e.Dst]] = e.Src
		cursor[e.Dst]++
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators
// whose inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func dedupSorted(arcs []Edge) []Edge {
	if len(arcs) == 0 {
		return arcs
	}
	out := arcs[:1]
	for _, e := range arcs[1:] {
		if last := out[len(out)-1]; last != e {
			out = append(out, e)
		}
	}
	return out
}

// FromEdges is a convenience constructor over an explicit edge list.
func FromEdges(n int, edges []Edge, undirected bool) (*Graph, error) {
	var b *Builder
	if undirected {
		b = NewUndirectedBuilder(n)
	} else {
		b = NewBuilder(n)
	}
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

// Symmetrize returns the undirected version of g: every arc gains its
// reverse and Undirected() reports true.
func Symmetrize(g *Graph) *Graph {
	b := NewUndirectedBuilder(g.NumVertices())
	g.Edges(func(s, d VertexID) bool {
		b.AddEdge(s, d)
		return true
	})
	return b.MustBuild()
}
