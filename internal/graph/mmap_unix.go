//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Mapping owns the mmap'd bytes backing a flat-format Graph. The Graph
// returned by MapFlatBinary aliases the mapping; Close unmaps it and
// every adjacency slice becomes invalid, so close only after the graph
// is no longer referenced.
type Mapping struct {
	data []byte
}

// Close unmaps the file.
func (m *Mapping) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// MapFlatBinary memory-maps a WriteFlatBinary file read-only and
// returns a Graph whose four CSR arrays alias the mapping — zero
// copies, zero decode, resident pages shared across processes. The
// whole file is validated (see validateFlat) before the graph is
// returned, so a corrupt file yields an error, never a panic in some
// later traversal. The caller must keep the Mapping alive for the
// graph's lifetime and Close it afterwards.
func MapFlatBinary(path string) (*Graph, *Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < flatHeaderLen {
		return nil, nil, fmt.Errorf("graph: flat file is %d bytes, want at least %d", size, flatHeaderLen)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	mp := &Mapping{data: data}
	g, err := flatFromBytes(data)
	if err != nil {
		mp.Close()
		return nil, nil, err
	}
	return g, mp, nil
}

// flatFromBytes builds the aliasing Graph over a flat-format byte
// image. Only valid on little-endian hosts (every supported target);
// the arrays are reinterpreted in place.
func flatFromBytes(data []byte) (*Graph, error) {
	flags, n, m, err := parseFlatHeader(data[:flatHeaderLen])
	if err != nil {
		return nil, err
	}
	need := int64(flatHeaderLen) + 2*8*int64(n+1) + 2*4*m
	if int64(len(data)) != need {
		return nil, fmt.Errorf("graph: flat file is %d bytes, header implies %d", len(data), need)
	}
	g := &Graph{n: n, undirected: flags&1 != 0}
	off := int64(flatHeaderLen)
	g.outIndex = unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), n+1)
	off += 8 * int64(n+1)
	g.inIndex = unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), n+1)
	off += 8 * int64(n+1)
	if m > 0 {
		g.outAdj = unsafe.Slice((*VertexID)(unsafe.Pointer(&data[off])), m)
		off += 4 * m
		g.inAdj = unsafe.Slice((*VertexID)(unsafe.Pointer(&data[off])), m)
	} else {
		g.outAdj, g.inAdj = []VertexID{}, []VertexID{}
	}
	if err := validateFlat(g); err != nil {
		return nil, err
	}
	return g, nil
}
