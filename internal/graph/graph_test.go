package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge, undirected bool) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges, undirected)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, 0, nil, false)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph reports %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("empty graph AvgDegree = %v", g.AvgDegree())
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 1}, {1, 1}, {1, 2}, {2, 0}}
	g := mustGraph(t, 3, edges, false)
	if g.NumEdges() != 3 {
		t.Fatalf("expected 3 arcs after dedup+loop drop, got %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Fatal("missing expected arcs")
	}
	if g.HasEdge(1, 1) {
		t.Fatal("self loop survived")
	}
}

func TestKeepSelfLoops(t *testing.T) {
	b := NewBuilder(2).KeepSelfLoops()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if !g.HasEdge(0, 0) {
		t.Fatal("self loop not retained with KeepSelfLoops")
	}
}

func TestDegrees(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 2}}
	g := mustGraph(t, 4, edges, false)
	cases := []struct {
		v       VertexID
		in, out int
	}{
		{0, 0, 2}, {1, 1, 1}, {2, 3, 0}, {3, 0, 1},
	}
	for _, c := range cases {
		if got := g.InDegree(c.v); got != c.in {
			t.Errorf("InDegree(%d) = %d, want %d", c.v, got, c.in)
		}
		if got := g.OutDegree(c.v); got != c.out {
			t.Errorf("OutDegree(%d) = %d, want %d", c.v, got, c.out)
		}
	}
	if got := g.AvgDegree(); got != 1.0 {
		t.Errorf("AvgDegree = %v, want 1.0", got)
	}
}

func TestUndirectedSymmetrisation(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}, {1, 2}}, true)
	if g.NumEdges() != 4 {
		t.Fatalf("undirected graph should store 4 arcs, has %d", g.NumEdges())
	}
	if g.NumUndirectedEdges() != 2 {
		t.Fatalf("NumUndirectedEdges = %d, want 2", g.NumUndirectedEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Fatal("reverse arcs missing")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestSymmetrize(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}, {1, 2}, {2, 1}}, false)
	u := Symmetrize(g)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if !u.Undirected() {
		t.Fatal("Symmetrize result not marked undirected")
	}
	if u.NumUndirectedEdges() != 2 {
		t.Fatalf("NumUndirectedEdges = %d, want 2", u.NumUndirectedEdges())
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	b := NewBuilder(n)
	for i := 0; i < 2000; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	g := b.MustBuild()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every arc visible via out-adjacency must appear in the
	// destination's in-adjacency, and the totals must agree.
	var outTotal, inTotal int
	for v := 0; v < n; v++ {
		outTotal += g.OutDegree(VertexID(v))
		inTotal += g.InDegree(VertexID(v))
		for _, w := range g.OutNeighbors(VertexID(v)) {
			found := false
			for _, u := range g.InNeighbors(w) {
				if u == VertexID(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("arc (%d,%d) missing from in-adjacency", v, w)
			}
		}
	}
	if outTotal != inTotal || int64(outTotal) != g.NumEdges() {
		t.Fatalf("degree totals disagree: out=%d in=%d m=%d", outTotal, inTotal, g.NumEdges())
	}
}

func TestEdgeRangeError(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestEdgeListRoundTripText(t *testing.T) {
	for _, undirected := range []bool{false, true} {
		g := mustGraph(t, 5, []Edge{{0, 1}, {1, 2}, {3, 4}, {4, 0}}, undirected)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("text round trip mismatch (undirected=%v)", undirected)
		}
	}
}

func TestEdgeListReaderSNAPStyle(t *testing.T) {
	in := "% comment\n# some header\n0 1\n2\t3\n\n1 2\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
}

func TestEdgeListReaderErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 x\n"} {
		if _, err := ReadEdgeList(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q: expected parse error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, undirected := range []bool{false, true} {
		b := NewBuilder(50)
		if undirected {
			b = NewUndirectedBuilder(50)
		}
		for i := 0; i < 300; i++ {
			b.AddEdge(VertexID(rng.Intn(50)), VertexID(rng.Intn(50)))
		}
		g := b.MustBuild()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("binary round trip mismatch (undirected=%v)", undirected)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBuffer(make([]byte, 32))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() || a.Undirected() != b.Undirected() {
		return false
	}
	return reflect.DeepEqual(a.EdgeList(), b.EdgeList())
}

func TestBFSOrderCoversAll(t *testing.T) {
	g := mustGraph(t, 6, []Edge{{0, 1}, {1, 2}, {4, 5}}, false)
	order := BFSOrder(g, []VertexID{0}, true)
	if len(order) != 6 {
		t.Fatalf("exhaustive BFS covered %d of 6", len(order))
	}
	seen := map[VertexID]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d visited twice", v)
		}
		seen[v] = true
	}
	if order[0] != 0 {
		t.Fatalf("BFS must start at root, started at %d", order[0])
	}
}

func TestBFSOrderNonExhaustive(t *testing.T) {
	g := mustGraph(t, 6, []Edge{{0, 1}, {1, 2}, {4, 5}}, false)
	order := BFSOrder(g, []VertexID{0}, false)
	if len(order) != 3 {
		t.Fatalf("component BFS covered %d, want 3", len(order))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := mustGraph(t, 7, []Edge{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 5}}, false)
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component {0,1,2} split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("component {3,4} wrong")
	}
	if labels[5] != labels[6] || labels[5] == labels[3] {
		t.Fatal("component {5,6} wrong")
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}, {2, 1}, {3, 1}, {1, 0}}, false)
	if got := MaxDegreeVertex(g); got != 1 {
		t.Fatalf("MaxDegreeVertex = %d, want 1", got)
	}
}

// Property: for any random arc set, building a graph preserves exactly
// the distinct non-loop arcs.
func TestQuickBuildPreservesArcs(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 32
		want := map[Edge]bool{}
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			e := Edge{VertexID(raw[i] % n), VertexID(raw[i+1] % n)}
			b.AddEdge(e.Src, e.Dst)
			if e.Src != e.Dst {
				want[e] = true
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if int(g.NumEdges()) != len(want) {
			return false
		}
		ok := true
		g.Edges(func(s, d VertexID) bool {
			if !want[Edge{s, d}] {
				ok = false
				return false
			}
			return true
		})
		return ok && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adjacency lists are sorted so HasEdge agrees with a linear
// scan.
func TestQuickHasEdge(t *testing.T) {
	f := func(raw []uint16, qs, qd uint16) bool {
		const n = 24
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(VertexID(raw[i]%n), VertexID(raw[i+1]%n))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		u, v := VertexID(qs%n), VertexID(qd%n)
		linear := false
		for _, w := range g.OutNeighbors(u) {
			if w == v {
				linear = true
			}
		}
		return g.HasEdge(u, v) == linear
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(40)
	for i := 0; i < 400; i++ {
		b.AddEdge(VertexID(rng.Intn(40)), VertexID(rng.Intn(40)))
	}
	g := b.MustBuild()
	el := g.EdgeList()
	if !sort.SliceIsSorted(el, func(i, j int) bool {
		if el[i].Src != el[j].Src {
			return el[i].Src < el[j].Src
		}
		return el[i].Dst < el[j].Dst
	}) {
		t.Fatal("EdgeList not sorted")
	}
}
