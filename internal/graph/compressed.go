package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Compressed binary format: the CSR with each vertex's sorted
// out-adjacency stored as uvarint gaps instead of fixed 4-byte ids.
//
//	header:  [magic u32][flags u32][n u32][m i64]   (little-endian)
//	vertex:  [degree uvarint][first uvarint][gap uvarint]...
//
// Adjacency lists are strictly ascending, so every gap after the first
// neighbour is >= 1 and a zero gap is corruption, not data. On social
// and power-law graphs neighbour gaps are small, so the payload runs
// 2-4x smaller than WriteBinary's fixed-width adjacency.
const compressedMagic = uint32(0xAD9A_0006)

// WriteBinaryCompressed writes g in the gap-compressed CSR format.
func WriteBinaryCompressed(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	flags := uint32(0)
	if g.Undirected() {
		flags = 1
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], compressedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], flags)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		k := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:k])
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.OutNeighbors(VertexID(v))
		if err := putUvarint(uint64(len(adj))); err != nil {
			return err
		}
		prev := uint64(0)
		for i, w := range adj {
			x := uint64(w)
			if i == 0 {
				if err := putUvarint(x); err != nil {
					return err
				}
			} else if err := putUvarint(x - prev); err != nil {
				return err
			}
			prev = x
		}
	}
	return bw.Flush()
}

// ReadBinaryCompressed parses the format produced by
// WriteBinaryCompressed and rebuilds the in-adjacency. Every count,
// gap, and id is validated before use: truncated, bit-flipped, or
// hostile input yields a wrapped error naming the failing vertex,
// never a panic, an oversized allocation, or a graph that violates CSR
// invariants. The result is bitwise identical to the graph written.
func ReadBinaryCompressed(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading compressed header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	flags := binary.LittleEndian.Uint32(hdr[4:])
	n := binary.LittleEndian.Uint32(hdr[8:])
	m := int64(binary.LittleEndian.Uint64(hdr[12:]))
	if magic != compressedMagic {
		return nil, fmt.Errorf("graph: bad compressed magic %#x", magic)
	}
	const maxVertices, maxArcs = 1 << 28, 1 << 31
	if n > maxVertices {
		return nil, fmt.Errorf("graph: header declares %d vertices (cap %d)", n, maxVertices)
	}
	if m < 0 || m > maxArcs {
		return nil, fmt.Errorf("graph: header declares %d arcs (cap %d)", m, int64(maxArcs))
	}
	g := &Graph{n: int(n), undirected: flags&1 != 0}
	g.outIndex = make([]int64, n+1)
	g.outAdj = make([]VertexID, 0, min(m, 1<<20))
	var total int64
	for v := 0; v < int(n); v++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: reading degree of vertex %d: %w", v, err)
		}
		if total+int64(deg) > m {
			return nil, fmt.Errorf("graph: vertex %d: degrees exceed declared %d arcs", v, m)
		}
		prev := uint64(0)
		for i := uint64(0); i < deg; i++ {
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: reading neighbor %d of vertex %d: %w", i, v, err)
			}
			var w uint64
			if i == 0 {
				w = gap
			} else {
				if gap == 0 {
					return nil, fmt.Errorf("graph: vertex %d: zero gap at neighbor %d (adjacency not strictly sorted)", v, i)
				}
				w = prev + gap
			}
			if w >= uint64(n) {
				return nil, fmt.Errorf("graph: vertex %d: neighbor %d beyond %d vertices", v, w, n)
			}
			g.outAdj = append(g.outAdj, VertexID(w))
			prev = w
		}
		total += int64(deg)
		g.outIndex[v+1] = total
	}
	if total != m {
		return nil, fmt.Errorf("graph: degrees sum to %d arcs, header declares %d", total, m)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: trailing bytes after compressed adjacency")
	}
	g.inAdjFromCSR()
	if g.undirected {
		// A strictly-sorted graph is symmetric exactly when the
		// in-adjacency equals the out-adjacency.
		for v := 0; v <= int(n); v++ {
			if g.outIndex[v] != g.inIndex[v] {
				return nil, fmt.Errorf("graph: undirected flag set but vertex %d has in/out degree mismatch", v-1)
			}
		}
		for i := range g.outAdj {
			if g.outAdj[i] != g.inAdj[i] {
				return nil, fmt.Errorf("graph: undirected flag set but adjacency is asymmetric")
			}
		}
	}
	return g, nil
}

// inAdjFromCSR fills inIndex/inAdj from the finished out-CSR with the
// same arc-order counting scatter Builder.Build uses, so in-lists come
// out sorted.
func (g *Graph) inAdjFromCSR() {
	g.inIndex = make([]int64, g.n+1)
	g.inAdj = make([]VertexID, len(g.outAdj))
	for _, w := range g.outAdj {
		g.inIndex[w+1]++
	}
	for v := 0; v < g.n; v++ {
		g.inIndex[v+1] += g.inIndex[v]
	}
	cursor := make([]int64, g.n)
	copy(cursor, g.inIndex[:g.n])
	for v := 0; v < g.n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			g.inAdj[cursor[w]] = VertexID(v)
			cursor[w]++
		}
	}
}

// CompressedSizeBytes returns the exact encoded size of g under
// WriteBinaryCompressed without materialising the bytes — the
// csr_bytes_compressed bench series.
func CompressedSizeBytes(g *Graph) int64 {
	size := int64(20)
	var buf [binary.MaxVarintLen64]byte
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.OutNeighbors(VertexID(v))
		size += int64(binary.PutUvarint(buf[:], uint64(len(adj))))
		prev := uint64(0)
		for i, w := range adj {
			x := uint64(w)
			if i == 0 {
				size += int64(binary.PutUvarint(buf[:], x))
			} else {
				size += int64(binary.PutUvarint(buf[:], x-prev))
			}
			prev = x
		}
	}
	return size
}

// FixedSizeBytes returns the size of the fixed-width flat CSR
// (WriteFlatBinary): the packed baseline the compressed format is
// measured against.
func FixedSizeBytes(g *Graph) int64 {
	return flatHeaderLen + 2*8*int64(g.NumVertices()+1) + 2*4*g.NumEdges()
}
