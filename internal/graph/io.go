package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as a text edge list: a header line
// "# vertices N directed|undirected" followed by one "src dst" pair
// per stored arc (for undirected graphs only arcs with src <= dst are
// written, so a round trip reproduces the graph).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "directed"
	if g.Undirected() {
		kind = "undirected"
	}
	if _, err := fmt.Fprintf(bw, "# vertices %d %s\n", g.NumVertices(), kind); err != nil {
		return err
	}
	var werr error
	g.Edges(func(s, d VertexID) bool {
		if g.Undirected() && s > d {
			return true
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", s, d); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// maxDeclaredVertices caps the vertex count a header may declare, so a
// corrupt or hostile input cannot demand huge allocations up front.
const maxDeclaredVertices = 1 << 28

// ReadEdgeList parses the format produced by WriteEdgeList. Lines
// starting with '%' or additional '#' lines are skipped, so common
// SNAP-style edge lists also parse (pass explicit n via the header or
// the maximum seen vertex + 1 is used). Malformed input fails with the
// offending line number; errors wrap the underlying parse/IO cause.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	undirected := false
	var edges []Edge
	maxV := VertexID(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "vertices" {
				v, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad header vertex count: %w", lineNo, err)
				}
				if v < 0 || v > maxDeclaredVertices {
					return nil, fmt.Errorf("graph: line %d: header declares %d vertices (cap %d)", lineNo, v, maxDeclaredVertices)
				}
				n = v
				undirected = fields[3] == "undirected"
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected 'src dst'", lineNo)
		}
		s, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		d, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		if n >= 0 && (s >= uint64(n) || d >= uint64(n)) {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of declared range [0,%d)", lineNo, s, d, n)
		}
		e := Edge{VertexID(s), VertexID(d)}
		if e.Src > maxV {
			maxV = e.Src
		}
		if e.Dst > maxV {
			maxV = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list after line %d: %w", lineNo, err)
	}
	if n < 0 {
		n = int(maxV) + 1
		if len(edges) == 0 {
			n = 0
		}
	}
	return FromEdges(n, edges, undirected)
}

const binaryMagic = uint32(0xAD9A_0001)

// WriteBinary writes g in a compact little-endian binary format:
// magic, flags, n, m, then the out-index and out-adjacency arrays.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	flags := uint32(0)
	if g.Undirected() {
		flags = 1
	}
	hdr := []uint32{binaryMagic, flags, uint32(g.NumVertices())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.NumEdges()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outIndex); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the format produced by WriteBinary and rebuilds
// the in-adjacency. Truncated or corrupt input yields a wrapped error
// naming the section that failed, never a panic.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, flags, n uint32
	var m int64
	for _, p := range []any{&magic, &flags, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	// Sanity-cap the declared sizes before allocating: a corrupt or
	// hostile header must not be able to demand gigabytes.
	const maxVertices, maxArcs = 1 << 28, 1 << 31
	if n > maxVertices {
		return nil, fmt.Errorf("graph: header declares %d vertices (cap %d)", n, maxVertices)
	}
	if m < 0 || m > maxArcs {
		return nil, fmt.Errorf("graph: header declares %d arcs (cap %d)", m, int64(maxArcs))
	}
	outIndex := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, outIndex); err != nil {
		return nil, fmt.Errorf("graph: reading out-index (%d vertices): %w", n, err)
	}
	// The index must be monotone within [0, m] or the slicing below
	// would panic on corrupt input.
	for v := 0; v < int(n); v++ {
		if outIndex[v] < 0 || outIndex[v] > outIndex[v+1] || outIndex[v+1] > m {
			return nil, fmt.Errorf("graph: corrupt index at vertex %d", v)
		}
	}
	if n > 0 && outIndex[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt index origin")
	}
	outAdj := make([]VertexID, m)
	if err := binary.Read(br, binary.LittleEndian, outAdj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency (%d arcs): %w", m, err)
	}
	b := NewBuilder(int(n))
	if flags&1 != 0 {
		b = NewUndirectedBuilder(int(n))
	}
	for v := 0; v < int(n); v++ {
		for _, w := range outAdj[outIndex[v]:outIndex[v+1]] {
			if flags&1 != 0 && VertexID(v) > w {
				continue
			}
			b.AddEdge(VertexID(v), w)
		}
	}
	return b.Build()
}
