package graph

import (
	"strings"
	"testing"
)

func TestGraphString(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}}, false)
	if s := g.String(); !strings.Contains(s, "directed") || !strings.Contains(s, "|V|=3") {
		t.Fatalf("String() = %q", s)
	}
	u := mustGraph(t, 2, []Edge{{0, 1}}, true)
	if s := u.String(); !strings.Contains(s, "undirected") {
		t.Fatalf("String() = %q", s)
	}
}

func TestNumPendingEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	if got := b.NumPendingEdges(); got != 2 {
		t.Fatalf("NumPendingEdges = %d (pre-dedup count expected)", got)
	}
}

func TestNumUndirectedEdgesDirectedGraph(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}, {1, 2}}, false)
	if got := g.NumUndirectedEdges(); got != 2 {
		t.Fatalf("directed NumUndirectedEdges = %d, want arc count", got)
	}
}
