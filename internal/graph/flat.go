package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Flat binary format: the complete CSR — both directions — laid out so
// a reader can map the file and serve adjacency queries directly from
// page cache, with no decode pass and no per-arc copy.
//
//	header:   [magic u32][flags u32][n u64][m u64]       24 bytes
//	outIndex: (n+1) × i64
//	inIndex:  (n+1) × i64
//	outAdj:   m × u32
//	inAdj:    m × u32
//
// All fields little-endian. The 24-byte header keeps every i64 array
// 8-aligned from the start of the file, which is what makes the
// zero-copy mmap view legal.
const (
	flatMagic     = uint32(0xAD9A_0007)
	flatHeaderLen = 24
)

// WriteFlatBinary writes g in the flat mmap-able CSR format.
func WriteFlatBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [flatHeaderLen]byte
	flags := uint32(0)
	if g.Undirected() {
		flags = 1
	}
	binary.LittleEndian.PutUint32(hdr[0:], flatMagic)
	binary.LittleEndian.PutUint32(hdr[4:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	for _, arr := range [][]int64{g.outIndex, g.inIndex} {
		for _, x := range arr {
			var b [8]byte
			le.PutUint64(b[:], uint64(x))
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	for _, arr := range [][]VertexID{g.outAdj, g.inAdj} {
		for _, x := range arr {
			var b [4]byte
			le.PutUint32(b[:], x)
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// parseFlatHeader validates the flat header and returns (flags, n, m).
func parseFlatHeader(hdr []byte) (uint32, int, int64, error) {
	magic := binary.LittleEndian.Uint32(hdr[0:])
	flags := binary.LittleEndian.Uint32(hdr[4:])
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	if magic != flatMagic {
		return 0, 0, 0, fmt.Errorf("graph: bad flat magic %#x", magic)
	}
	const maxVertices, maxArcs = 1 << 28, 1 << 31
	if n > maxVertices {
		return 0, 0, 0, fmt.Errorf("graph: header declares %d vertices (cap %d)", n, maxVertices)
	}
	if m > maxArcs {
		return 0, 0, 0, fmt.Errorf("graph: header declares %d arcs (cap %d)", m, int64(maxArcs))
	}
	return flags, int(n), int64(m), nil
}

// validateFlat checks the CSR invariants of a flat-format graph before
// it is handed to callers: monotone in-range indexes, strictly sorted
// in-range adjacency both ways, and the in-adjacency being the exact
// transpose of the out-adjacency. Without this a mapped (attacker- or
// bitrot-controlled) file could panic any traversal.
func validateFlat(g *Graph) error {
	m := int64(len(g.outAdj))
	for _, idx := range [][]int64{g.outIndex, g.inIndex} {
		if idx[0] != 0 || idx[g.n] != m {
			return fmt.Errorf("graph: flat index does not span [0,%d]", m)
		}
		for v := 0; v < g.n; v++ {
			if idx[v] > idx[v+1] {
				return fmt.Errorf("graph: flat index non-monotone at vertex %d", v)
			}
		}
	}
	for dir, adj := range [][]VertexID{g.outAdj, g.inAdj} {
		idx := g.outIndex
		if dir == 1 {
			idx = g.inIndex
		}
		for v := 0; v < g.n; v++ {
			row := adj[idx[v]:idx[v+1]]
			for i, w := range row {
				if int64(w) >= int64(g.n) {
					return fmt.Errorf("graph: flat neighbor %d of vertex %d out of range", w, v)
				}
				if i > 0 && row[i-1] >= w {
					return fmt.Errorf("graph: flat adjacency of vertex %d not strictly sorted", v)
				}
			}
		}
	}
	// Transpose check: every out-arc (v,w) must appear as v in w's
	// in-list and the totals already match, so per-arc membership is
	// sufficient. Binary search keeps this allocation-free.
	for v := 0; v < g.n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			in := g.InNeighbors(w)
			lo, hi := 0, len(in)
			for lo < hi {
				mid := (lo + hi) / 2
				if in[mid] < VertexID(v) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo >= len(in) || in[lo] != VertexID(v) {
				return fmt.Errorf("graph: flat in-adjacency missing arc (%d,%d)", v, w)
			}
		}
	}
	if g.undirected {
		for v := 0; v <= g.n; v++ {
			if g.outIndex[v] != g.inIndex[v] {
				return fmt.Errorf("graph: undirected flag set but vertex %d has in/out degree mismatch", v-1)
			}
		}
		for i := range g.outAdj {
			if g.outAdj[i] != g.inAdj[i] {
				return fmt.Errorf("graph: undirected flag set but adjacency is asymmetric")
			}
		}
	}
	return nil
}

// ReadFlatBinary parses the flat format with plain reads (the portable
// path; see MapFlatBinary for the zero-copy variant). All invariants
// are validated, so corrupt input errors out instead of panicking
// later.
func ReadFlatBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [flatHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading flat header: %w", err)
	}
	flags, n, m, err := parseFlatHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	g := &Graph{n: n, undirected: flags&1 != 0}
	scratch := make([]byte, 1<<16)
	readI64s := func(dst []int64, what string) error {
		for done := 0; done < len(dst); {
			chunk := min(len(dst)-done, len(scratch)/8)
			buf := scratch[:chunk*8]
			if _, err := io.ReadFull(br, buf); err != nil {
				return fmt.Errorf("graph: reading flat %s: %w", what, err)
			}
			for k := 0; k < chunk; k++ {
				dst[done+k] = int64(binary.LittleEndian.Uint64(buf[k*8:]))
			}
			done += chunk
		}
		return nil
	}
	readU32s := func(dst []VertexID, what string) error {
		for done := 0; done < len(dst); {
			chunk := min(len(dst)-done, len(scratch)/4)
			buf := scratch[:chunk*4]
			if _, err := io.ReadFull(br, buf); err != nil {
				return fmt.Errorf("graph: reading flat %s: %w", what, err)
			}
			for k := 0; k < chunk; k++ {
				dst[done+k] = binary.LittleEndian.Uint32(buf[k*4:])
			}
			done += chunk
		}
		return nil
	}
	g.outIndex = make([]int64, n+1)
	g.inIndex = make([]int64, n+1)
	g.outAdj = make([]VertexID, m)
	g.inAdj = make([]VertexID, m)
	if err := readI64s(g.outIndex, "out-index"); err != nil {
		return nil, err
	}
	if err := readI64s(g.inIndex, "in-index"); err != nil {
		return nil, err
	}
	if err := readU32s(g.outAdj, "out-adjacency"); err != nil {
		return nil, err
	}
	if err := readU32s(g.inAdj, "in-adjacency"); err != nil {
		return nil, err
	}
	if err := validateFlat(g); err != nil {
		return nil, err
	}
	return g, nil
}
