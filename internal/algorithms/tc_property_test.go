package algorithms

import (
	"testing"
	"testing/quick"

	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partitioner"
)

// bruteTriangles counts triangles by enumerating all vertex triples —
// the unimpeachable O(n³) oracle for small graphs.
func bruteTriangles(g *graph.Graph) int64 {
	n := g.NumVertices()
	var count int64
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(graph.VertexID(a), graph.VertexID(b)) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(graph.VertexID(a), graph.VertexID(c)) &&
					g.HasEdge(graph.VertexID(b), graph.VertexID(c)) {
					count++
				}
			}
		}
	}
	return count
}

// Property: the degree-ordered TCSeq agrees with brute-force triple
// enumeration on arbitrary random undirected graphs (including heavy
// degree ties, which stress the (degree, id) tie-break).
func TestQuickTCSeqMatchesBruteForce(t *testing.T) {
	f := func(seed int64, density uint8) bool {
		avg := float64(density%5) + 1
		g := gen.ErdosRenyi(40, avg, false, seed)
		return TCSeq(g) == bruteTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: distributed TC agrees with TCSeq over random vertex-cut
// partitions of random graphs.
func TestQuickRunTCMatchesSeq(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(60, 3, false, seed)
		p, err := partitioner.GridVertexCut(g, 3)
		if err != nil {
			return false
		}
		got, _, err := RunTC(engine.NewCluster(p))
		if err != nil {
			return false
		}
		return got == TCSeq(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Degree ties everywhere: complete graphs have uniform degree, so the
// ordering falls back to ids; K_n has C(n,3) triangles.
func TestTCCompleteGraphs(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 8} {
		g := gen.CliqueCollection([]int{n})
		want := int64(n * (n - 1) * (n - 2) / 6)
		if got := TCSeq(g); got != want {
			t.Fatalf("K%d: TCSeq = %d, want %d", n, got, want)
		}
		p, err := partitioner.HDRFVertexCut(g, 2, partitioner.HDRFConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunTC(engine.NewCluster(p))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("K%d distributed: %d, want %d", n, got, want)
		}
	}
}
