// Package algorithms implements the paper's five evaluation algorithms
// — CN (common neighbours), TC (triangle counting), WCC (weakly
// connected components), PR (PageRank) and SSSP (single-source
// shortest path) — in two forms: partition-transparent BSP programs
// that run over any hybrid partition through the engine (the [20,21]
// algorithms of Section 7), and single-machine sequential references
// that serve as correctness oracles and as the "no partitioning"
// comparator of the Exp-6 remark.
package algorithms

import (
	"container/heap"
	"sort"

	"adp/internal/graph"
)

// EdgeWeight is the deterministic pseudo-weight shared by the
// sequential and distributed SSSP implementations.
func EdgeWeight(u, v graph.VertexID) float64 {
	return 1 + float64((uint64(u)*31+uint64(v)*17)%9)
}

// pairHash combines a CN triple (u1, u2, w) into an order-independent
// checksum contribution, so distributed and sequential enumeration
// orders agree.
func pairHash(u1, u2, w graph.VertexID) uint64 {
	x := uint64(u1)*0x9e3779b97f4a7c15 ^ uint64(u2)*0xc2b2ae3d27d4eb4f ^ uint64(w)*0x165667b19e3779f9
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// CNResult summarises a common-neighbour run: the number of
// (u1, u2, w) triples with u1 < u2 both pointing at w (w's in-degree
// within the θ filter), plus an order-independent checksum over the
// triples so two runs can be compared exactly.
type CNResult struct {
	Triples  int64
	Checksum uint64
}

// CNSeq enumerates common-neighbour triples sequentially. Vertices
// with in-degree above theta are skipped (theta ≤ 0 disables the
// filter), mirroring the paper's memory-bounding practice on Twitter.
func CNSeq(g *graph.Graph, theta int) CNResult {
	var res CNResult
	for w := 0; w < g.NumVertices(); w++ {
		in := g.InNeighbors(graph.VertexID(w))
		if theta > 0 && len(in) > theta {
			continue
		}
		for i := 0; i < len(in); i++ {
			for j := i + 1; j < len(in); j++ {
				u1, u2 := in[i], in[j]
				if u1 > u2 {
					u1, u2 = u2, u1
				}
				res.Triples++
				res.Checksum += pairHash(u1, u2, graph.VertexID(w))
			}
		}
	}
	return res
}

// TCLess is the degree ordering TC processes edges in ("we only check
// the neighbors of v with smaller degrees", Example 6): a ≺ b when
// a's degree is smaller, ties toward the smaller id. Triangle
// {x ≺ y ≺ z} is counted exactly once, at the edge (x,y).
func TCLess(g *graph.Graph, a, b graph.VertexID) bool {
	da, db := g.Degree(a), g.Degree(b)
	if da != db {
		return da < db
	}
	return a < b
}

// TCSeq counts the triangles of an undirected graph with
// degree-ordered neighbour intersection.
func TCSeq(g *graph.Graph) int64 {
	var count int64
	for a := 0; a < g.NumVertices(); a++ {
		va := graph.VertexID(a)
		na := g.OutNeighbors(va) // sorted by CSR construction
		for _, b := range na {
			if !TCLess(g, va, b) {
				continue
			}
			nb := g.OutNeighbors(b)
			count += intersectOrdered(g, na, nb, b)
		}
	}
	return count
}

// intersectOrdered counts common elements c of two id-sorted lists
// with floor ≺ c in the TC degree order.
func intersectOrdered(g *graph.Graph, a, b []graph.VertexID, floor graph.VertexID) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if TCLess(g, floor, a[i]) {
				n++
			}
			i++
			j++
		}
	}
	return n
}

// intersectAbove counts common elements of two sorted lists strictly
// greater than floor (plain id order); kept for CN-style uses and
// tests.
func intersectAbove(a, b []graph.VertexID, floor graph.VertexID) int64 {
	i := sort.Search(len(a), func(k int) bool { return a[k] > floor })
	j := sort.Search(len(b), func(k int) bool { return b[k] > floor })
	var n int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// WCCSeq returns per-vertex component labels (smallest member id) and
// the component count.
func WCCSeq(g *graph.Graph) ([]graph.VertexID, int) {
	labels, count := graph.ConnectedComponents(g)
	// Canonicalise to smallest member id (ConnectedComponents already
	// labels by BFS root which is the smallest unvisited id, hence
	// already canonical).
	return labels, count
}

// PRSeq runs iterations of PageRank with the given damping factor and
// returns the rank vector. Dangling mass is redistributed uniformly.
func PRSeq(g *graph.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		var dangling float64
		for v := range next {
			next[v] = 0
		}
		for v := 0; v < n; v++ {
			d := g.OutDegree(graph.VertexID(v))
			if d == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(d)
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				next[w] += share
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := range next {
			next[v] = base + damping*next[v]
		}
		rank, next = next, rank
	}
	return rank
}

// SSSPSeq runs Dijkstra from source over out-edges with EdgeWeight and
// returns the distance vector (+Inf for unreachable vertices encoded
// as math.MaxFloat64).
func SSSPSeq(g *graph.Graph, source graph.VertexID) []float64 {
	const inf = 1e300
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = inf
	}
	if int(source) >= g.NumVertices() {
		return dist
	}
	dist[source] = 0
	pq := &distHeap{{source, 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.v] {
			continue
		}
		for _, w := range g.OutNeighbors(top.v) {
			nd := top.d + EdgeWeight(top.v, w)
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, distEntry{w, nd})
			}
		}
	}
	return dist
}

type distEntry struct {
	v graph.VertexID
	d float64
}

type distHeap []distEntry

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
