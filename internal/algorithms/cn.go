package algorithms

import (
	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/partition"
)

const kindCNCount uint8 = 31

// CNOptions configures a common-neighbour run.
type CNOptions struct {
	// Theta filters out aggregation vertices with global in-degree
	// above the threshold (≤ 0 disables), the paper's memory-bounding
	// practice for Twitter-scale hubs.
	Theta int
}

type cnState struct {
	exch *exchState
	// total is worker 0's aggregate; it lives in State (not a closure)
	// so a checkpoint rollback rewinds it instead of double-counting
	// on replay.
	total CNResult
}

// Snapshot deep-copies the state for engine checkpointing.
func (st *cnState) Snapshot() any {
	return &cnState{exch: st.exch.clone(), total: st.total}
}

// RunCN enumerates common-out-neighbour triples (u1, u2, w): u1 < u2
// both with arcs into w. Pairs at vertex w are formed at the worker
// responsible for the arc (u1, w), pairing it with every later
// in-neighbour from w's FULL in-list (fetched via the neighbour
// exchange when w is split). The per-copy work is therefore
// ~ d+L(w)·d+G(w) — the shape hCN learns. Count and checksum aggregate
// at worker 0 and match CNSeq exactly.
func RunCN(c *engine.Cluster, opts CNOptions) (CNResult, *engine.Report, error) {
	g := c.Partition().Graph()
	inTheta := func(w graph.VertexID) bool {
		return opts.Theta <= 0 || g.InDegree(w) <= opts.Theta
	}
	exch := &neighborExchange{
		list: func(adj *partition.Adj) []graph.VertexID { return adj.In },
		needs: func(w *engine.WorkerCtx) map[graph.VertexID]bool {
			need := map[graph.VertexID]bool{}
			w.Fragment().Vertices(func(v graph.VertexID, adj *partition.Adj) {
				if !inTheta(v) || g.InDegree(v) < 2 {
					return
				}
				for _, u := range adj.In {
					if w.ResponsibleFor(v, u, v) {
						need[v] = true
						return
					}
				}
			})
			return need
		},
	}
	step := func(w *engine.WorkerCtx, s int, inbox []engine.Message) bool {
		switch s {
		case 0:
			w.State = &cnState{exch: exch.step0(w)}
			return false
		case 1:
			st := w.State.(*cnState)
			exch.step1(w, st.exch, inbox)
			return false
		case 2:
			st := w.State.(*cnState)
			exch.step2(w, st.exch, inbox)
			var count int64
			var checksum uint64
			w.Fragment().Vertices(func(v graph.VertexID, adj *partition.Adj) {
				if !inTheta(v) {
					return
				}
				fullIn := st.exch.full[v]
				if fullIn == nil {
					return
				}
				work := 0
				for _, u := range adj.In {
					if !w.ResponsibleFor(v, u, v) {
						continue
					}
					work += len(fullIn)
					for _, u2 := range fullIn {
						if u2 <= u {
							continue
						}
						count++
						checksum += pairHash(u, u2, v)
					}
				}
				if work > 0 {
					w.ChargeVertex(v, float64(work))
				}
			})
			// The checksum ships as two exact 32-bit halves: float64
			// represents integers below 2^53 exactly, while raw bit
			// reinterpretation would risk NaN payload trouble.
			w.Send(0, engine.Message{Kind: kindCNCount, Data: []float64{
				float64(count), float64(checksum >> 32), float64(checksum & 0xffffffff),
			}})
			return false
		case 3:
			if w.ID() == 0 {
				st := w.State.(*cnState)
				for _, m := range inbox {
					if m.Kind == kindCNCount {
						st.total.Triples += int64(m.Data[0])
						st.total.Checksum += uint64(m.Data[1])<<32 | uint64(m.Data[2])
					}
				}
			}
			return true
		}
		return true
	}
	rep, err := c.Run(nil, step, 5)
	if err != nil {
		return CNResult{}, rep, err
	}
	st, _ := c.Worker(0).State.(*cnState)
	if st == nil {
		return CNResult{}, rep, nil
	}
	return st.total, rep, nil
}
