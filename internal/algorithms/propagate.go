package algorithms

import (
	"math"

	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/partition"
)

// propEntry / propHeap implement the value-ordered local sweep. The
// heap is hand-rolled (instead of container/heap) so pushes don't box
// entries into interfaces — the sweep is the innermost loop of WCC and
// SSSP and must not allocate per relaxation.
type propEntry struct {
	v   graph.VertexID
	l   int // local id of v (dense state index)
	val float64
}

type propHeap []propEntry

func (h *propHeap) push(e propEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].val <= s[i].val {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *propHeap) pop() propEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		c := 2*i + 1
		if c >= len(s) {
			break
		}
		if c+1 < len(s) && s[c+1].val < s[c].val {
			c++
		}
		if s[i].val <= s[c].val {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// propagation implements the shared skeleton of WCC and SSSP: a
// monotone min-value propagation. Each superstep a worker (1) applies
// incoming value updates, (2) relaxes values to a local fixpoint over
// its fragment's arcs, and (3) synchronises changed border values
// through the master copy (mirror → master → mirrors), the
// master-mirror protocol whose cost gA models.
//
// Because min is idempotent and commutative, replicated arcs need no
// responsibility dedup.
type propagation struct {
	// relaxTargets yields the (neighbour, newValue) relaxations of v.
	relax func(v graph.VertexID, val float64, adj *partition.Adj, visit func(w graph.VertexID, nv float64))
	// init returns the starting value of v.
	init func(v graph.VertexID) float64
	// scanDegree is the number of arcs relax scans for v — the
	// per-vertex cost unit (full local degree for WCC, out-degree for
	// SSSP, matching hWCC and hSSSP).
	scanDegree func(adj *partition.Adj) int
}

// propState keeps per-vertex values in dense slices indexed by the
// fragment's compiled local id, plus the reusable sweep heap and
// mirror scratch, so steady-state supersteps allocate nothing.
type propState struct {
	val   []float64 // by local id
	dirty []bool    // border copies whose value changed since last sync
	// synced marks border masters that already contributed a
	// communication training sample; per-vertex comm cost is charged
	// once (∝ r(v)), matching the gWCC/gSSSP shape, while every
	// broadcast still pays wire bytes.
	synced  []bool
	pq      propHeap // reusable sweep buffer
	scratch []int    // AppendMirrors scratch
}

// Snapshot deep-copies the state for engine checkpointing.
func (st *propState) Snapshot() any {
	return &propState{
		val:    append([]float64(nil), st.val...),
		dirty:  append([]bool(nil), st.dirty...),
		synced: append([]bool(nil), st.synced...),
	}
}

const (
	kindToMaster uint8 = iota + 1
	kindToMirror
)

// run executes the propagation and returns per-vertex values read from
// master copies.
func (pr *propagation) run(c *engine.Cluster, maxSupersteps int) (map[graph.VertexID]float64, *engine.Report, error) {
	p := c.Partition()
	step := func(w *engine.WorkerCtx, s int, inbox []engine.Message) bool {
		frag := w.Fragment()
		var st *propState
		if w.State == nil {
			nl := frag.NumVertices()
			st = &propState{val: make([]float64, nl), dirty: make([]bool, nl), synced: make([]bool, nl)}
			l := 0
			frag.Vertices(func(v graph.VertexID, _ *partition.Adj) {
				st.val[l] = pr.init(v)
				l++
			})
			w.State = st
		} else {
			st = w.State.(*propState)
		}
		// (1) apply incoming updates.
		st.pq = st.pq[:0]
		for _, m := range inbox {
			if lv := frag.LocalIndex(m.V); lv >= 0 && m.Data[0] < st.val[lv] {
				st.val[lv] = m.Data[0]
				st.pq.push(propEntry{m.V, lv, m.Data[0]})
				if p.IsBorder(m.V) {
					st.dirty[lv] = true
				}
			}
			w.AddWork(1)
		}
		// On the first superstep every vertex is a seed, and the full
		// scan is where per-vertex cost samples come from: each vertex
		// is charged its local degree exactly once (the hWCC/hSSSP
		// shape); all later incremental relaxations count as fragment
		// work only.
		if s == 0 {
			l := 0
			frag.Vertices(func(v graph.VertexID, adj *partition.Adj) {
				st.pq.push(propEntry{v, l, st.val[l]})
				w.ChargeVertex(v, float64(pr.scanDegree(adj)))
				l++
			})
		}
		// (2) local fixpoint as a value-ordered sweep (a local
		// Dijkstra): values only decrease, so popping in ascending
		// order settles each vertex at most once per superstep and
		// keeps the work insensitive to relaxation order. The visit
		// closure is hoisted out of the pop loop so the sweep itself
		// allocates nothing.
		visit := func(u graph.VertexID, nv float64) {
			if lu := frag.LocalIndex(u); lu >= 0 && nv < st.val[lu] {
				st.val[lu] = nv
				st.pq.push(propEntry{u, lu, nv})
				if p.IsBorder(u) {
					st.dirty[lu] = true
				}
			}
		}
		for len(st.pq) > 0 {
			top := st.pq.pop()
			if top.val > st.val[top.l] {
				continue // stale entry
			}
			adj := frag.Adjacency(top.v)
			if adj == nil {
				continue
			}
			w.AddWork(float64(pr.scanDegree(adj)))
			pr.relax(top.v, top.val, adj, visit)
		}
		// (3) synchronise borders through masters, in ascending local
		// id order (the former map walk visited them in random order;
		// per-vertex messages are independent, so the report is
		// unchanged and delivery becomes deterministic for free).
		changed := false
		for l, d := range st.dirty {
			if !d {
				continue
			}
			changed = true
			st.dirty[l] = false
			v := frag.VertexAt(l)
			if w.IsMaster(v) {
				st.scratch = w.AppendMirrors(st.scratch[:0], v)
				for _, dst := range st.scratch {
					w.SendVal(dst, v, kindToMirror, st.val[l])
				}
				if !st.synced[l] {
					st.synced[l] = true
					w.ChargeVertexComm(v, float64(len(st.scratch)))
				}
			} else {
				w.SendVal(p.Master(v), v, kindToMaster, st.val[l])
			}
		}
		return !changed
	}
	rep, err := c.Run(nil, step, maxSupersteps)
	if err != nil {
		return nil, rep, err
	}
	// Collect values from master copies.
	out := make(map[graph.VertexID]float64, p.Graph().NumVertices())
	for i := 0; i < p.NumFragments(); i++ {
		st, _ := c.Worker(i).State.(*propState)
		if st == nil {
			continue
		}
		l := 0
		p.Fragment(i).Vertices(func(v graph.VertexID, _ *partition.Adj) {
			if p.Master(v) == i {
				out[v] = st.val[l]
			}
			l++
		})
	}
	return out, rep, nil
}

// WCCResult holds per-vertex component labels from a distributed run.
type WCCResult struct {
	Labels []graph.VertexID
	Count  int
}

// RunWCC computes weakly connected components over the cluster's
// partition by min-label propagation.
func RunWCC(c *engine.Cluster) (WCCResult, *engine.Report, error) {
	pr := &propagation{
		init:       func(v graph.VertexID) float64 { return float64(v) },
		scanDegree: func(adj *partition.Adj) int { return adj.LocalDegree() },
		relax: func(v graph.VertexID, val float64, adj *partition.Adj, visit func(graph.VertexID, float64)) {
			for _, u := range adj.Out {
				visit(u, val)
			}
			for _, u := range adj.In {
				visit(u, val)
			}
		},
	}
	vals, rep, err := pr.run(c, 10000)
	if err != nil {
		return WCCResult{}, rep, err
	}
	n := c.Partition().Graph().NumVertices()
	res := WCCResult{Labels: make([]graph.VertexID, n)}
	roots := map[graph.VertexID]bool{}
	for v := 0; v < n; v++ {
		label := graph.VertexID(vals[graph.VertexID(v)])
		res.Labels[v] = label
		roots[label] = true
	}
	res.Count = len(roots)
	return res, rep, nil
}

// SSSPResult holds per-vertex shortest distances (Unreachable when no
// path exists).
type SSSPResult struct {
	Dist []float64
}

// Unreachable is the distance reported for vertices with no path from
// the source.
const Unreachable = 1e300

// RunSSSP computes single-source shortest paths over out-edges with
// EdgeWeight, matching SSSPSeq.
func RunSSSP(c *engine.Cluster, source graph.VertexID) (SSSPResult, *engine.Report, error) {
	pr := &propagation{
		init: func(v graph.VertexID) float64 {
			if v == source {
				return 0
			}
			return Unreachable
		},
		scanDegree: func(adj *partition.Adj) int { return len(adj.Out) },
		relax: func(v graph.VertexID, val float64, adj *partition.Adj, visit func(graph.VertexID, float64)) {
			if val >= Unreachable {
				return
			}
			for _, u := range adj.Out {
				visit(u, val+EdgeWeight(v, u))
			}
		},
	}
	vals, rep, err := pr.run(c, 10000)
	if err != nil {
		return SSSPResult{}, rep, err
	}
	n := c.Partition().Graph().NumVertices()
	res := SSSPResult{Dist: make([]float64, n)}
	for v := 0; v < n; v++ {
		d, ok := vals[graph.VertexID(v)]
		if !ok {
			d = Unreachable
		}
		res.Dist[v] = math.Min(d, Unreachable)
	}
	return res, rep, nil
}
