package algorithms

import (
	"container/heap"
	"math"

	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/partition"
)

// propEntry / propHeap implement the value-ordered local sweep.
type propEntry struct {
	v   graph.VertexID
	val float64
}

type propHeap []propEntry

func (h propHeap) Len() int           { return len(h) }
func (h propHeap) Less(i, j int) bool { return h[i].val < h[j].val }
func (h propHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *propHeap) Push(x any)        { *h = append(*h, x.(propEntry)) }
func (h *propHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// propagation implements the shared skeleton of WCC and SSSP: a
// monotone min-value propagation. Each superstep a worker (1) applies
// incoming value updates, (2) relaxes values to a local fixpoint over
// its fragment's arcs, and (3) synchronises changed border values
// through the master copy (mirror → master → mirrors), the
// master-mirror protocol whose cost gA models.
//
// Because min is idempotent and commutative, replicated arcs need no
// responsibility dedup.
type propagation struct {
	// relaxTargets yields the (neighbour, newValue) relaxations of v.
	relax func(v graph.VertexID, val float64, adj *partition.Adj, visit func(w graph.VertexID, nv float64))
	// init returns the starting value of v.
	init func(v graph.VertexID) float64
	// scanDegree is the number of arcs relax scans for v — the
	// per-vertex cost unit (full local degree for WCC, out-degree for
	// SSSP, matching hWCC and hSSSP).
	scanDegree func(adj *partition.Adj) int
}

type propState struct {
	val   map[graph.VertexID]float64
	dirty map[graph.VertexID]bool // border copies whose value changed since last sync
	// synced marks border masters that already contributed a
	// communication training sample; per-vertex comm cost is charged
	// once (∝ r(v)), matching the gWCC/gSSSP shape, while every
	// broadcast still pays wire bytes.
	synced map[graph.VertexID]bool
}

// Snapshot deep-copies the state for engine checkpointing.
func (st *propState) Snapshot() any {
	return &propState{
		val:    cloneValMap(st.val),
		dirty:  cloneSetMap(st.dirty),
		synced: cloneSetMap(st.synced),
	}
}

const (
	kindToMaster uint8 = iota + 1
	kindToMirror
)

// run executes the propagation and returns per-vertex values read from
// master copies.
func (pr *propagation) run(c *engine.Cluster, maxSupersteps int) (map[graph.VertexID]float64, *engine.Report, error) {
	p := c.Partition()
	step := func(w *engine.WorkerCtx, s int, inbox []engine.Message) bool {
		var st *propState
		if w.State == nil {
			st = &propState{val: map[graph.VertexID]float64{}, dirty: map[graph.VertexID]bool{}, synced: map[graph.VertexID]bool{}}
			w.Fragment().Vertices(func(v graph.VertexID, _ *partition.Adj) {
				st.val[v] = pr.init(v)
			})
			w.State = st
		} else {
			st = w.State.(*propState)
		}
		// (1) apply incoming updates.
		var pq propHeap
		for _, m := range inbox {
			if cur, ok := st.val[m.V]; ok && m.Data[0] < cur {
				st.val[m.V] = m.Data[0]
				heap.Push(&pq, propEntry{m.V, m.Data[0]})
				if p.IsBorder(m.V) {
					st.dirty[m.V] = true
				}
			}
			w.AddWork(1)
		}
		// On the first superstep every vertex is a seed, and the full
		// scan is where per-vertex cost samples come from: each vertex
		// is charged its local degree exactly once (the hWCC/hSSSP
		// shape); all later incremental relaxations count as fragment
		// work only.
		if s == 0 {
			w.Fragment().Vertices(func(v graph.VertexID, adj *partition.Adj) {
				heap.Push(&pq, propEntry{v, st.val[v]})
				w.ChargeVertex(v, float64(pr.scanDegree(adj)))
			})
		}
		// (2) local fixpoint as a value-ordered sweep (a local
		// Dijkstra): values only decrease, so popping in ascending
		// order settles each vertex at most once per superstep and
		// keeps the work insensitive to relaxation order.
		frag := w.Fragment()
		for pq.Len() > 0 {
			top := heap.Pop(&pq).(propEntry)
			if top.val > st.val[top.v] {
				continue // stale entry
			}
			adj := frag.Adjacency(top.v)
			if adj == nil {
				continue
			}
			w.AddWork(float64(pr.scanDegree(adj)))
			pr.relax(top.v, top.val, adj, func(u graph.VertexID, nv float64) {
				if cur, ok := st.val[u]; ok && nv < cur {
					st.val[u] = nv
					heap.Push(&pq, propEntry{u, nv})
					if p.IsBorder(u) {
						st.dirty[u] = true
					}
				}
			})
		}
		// (3) synchronise borders through masters.
		for v := range st.dirty {
			if w.IsMaster(v) {
				mirrors := w.Mirrors(v)
				for _, dst := range mirrors {
					w.Send(dst, engine.Message{V: v, Kind: kindToMirror, Data: []float64{st.val[v]}})
				}
				if !st.synced[v] {
					st.synced[v] = true
					w.ChargeVertexComm(v, float64(len(mirrors)))
				}
			} else {
				w.Send(p.Master(v), engine.Message{V: v, Kind: kindToMaster, Data: []float64{st.val[v]}})
			}
		}
		changed := len(st.dirty) > 0
		st.dirty = map[graph.VertexID]bool{}
		return !changed
	}
	rep, err := c.Run(nil, step, maxSupersteps)
	if err != nil {
		return nil, rep, err
	}
	// Collect values from master copies.
	out := make(map[graph.VertexID]float64, p.Graph().NumVertices())
	for i := 0; i < p.NumFragments(); i++ {
		st, _ := c.Worker(i).State.(*propState)
		if st == nil {
			continue
		}
		for v, val := range st.val {
			if p.Master(v) == i {
				out[v] = val
			}
		}
	}
	return out, rep, nil
}

// WCCResult holds per-vertex component labels from a distributed run.
type WCCResult struct {
	Labels []graph.VertexID
	Count  int
}

// RunWCC computes weakly connected components over the cluster's
// partition by min-label propagation.
func RunWCC(c *engine.Cluster) (WCCResult, *engine.Report, error) {
	pr := &propagation{
		init:       func(v graph.VertexID) float64 { return float64(v) },
		scanDegree: func(adj *partition.Adj) int { return adj.LocalDegree() },
		relax: func(v graph.VertexID, val float64, adj *partition.Adj, visit func(graph.VertexID, float64)) {
			for _, u := range adj.Out {
				visit(u, val)
			}
			for _, u := range adj.In {
				visit(u, val)
			}
		},
	}
	vals, rep, err := pr.run(c, 10000)
	if err != nil {
		return WCCResult{}, rep, err
	}
	n := c.Partition().Graph().NumVertices()
	res := WCCResult{Labels: make([]graph.VertexID, n)}
	roots := map[graph.VertexID]bool{}
	for v := 0; v < n; v++ {
		label := graph.VertexID(vals[graph.VertexID(v)])
		res.Labels[v] = label
		roots[label] = true
	}
	res.Count = len(roots)
	return res, rep, nil
}

// SSSPResult holds per-vertex shortest distances (Unreachable when no
// path exists).
type SSSPResult struct {
	Dist []float64
}

// Unreachable is the distance reported for vertices with no path from
// the source.
const Unreachable = 1e300

// RunSSSP computes single-source shortest paths over out-edges with
// EdgeWeight, matching SSSPSeq.
func RunSSSP(c *engine.Cluster, source graph.VertexID) (SSSPResult, *engine.Report, error) {
	pr := &propagation{
		init: func(v graph.VertexID) float64 {
			if v == source {
				return 0
			}
			return Unreachable
		},
		scanDegree: func(adj *partition.Adj) int { return len(adj.Out) },
		relax: func(v graph.VertexID, val float64, adj *partition.Adj, visit func(graph.VertexID, float64)) {
			if val >= Unreachable {
				return
			}
			for _, u := range adj.Out {
				visit(u, val+EdgeWeight(v, u))
			}
		},
	}
	vals, rep, err := pr.run(c, 10000)
	if err != nil {
		return SSSPResult{}, rep, err
	}
	n := c.Partition().Graph().NumVertices()
	res := SSSPResult{Dist: make([]float64, n)}
	for v := 0; v < n; v++ {
		d, ok := vals[graph.VertexID(v)]
		if !ok {
			d = Unreachable
		}
		res.Dist[v] = math.Min(d, Unreachable)
	}
	return res, rep, nil
}
