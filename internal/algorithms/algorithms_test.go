package algorithms

import (
	"math"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

// directedTestGraph is shared by the directed-algorithm oracles.
func directedTestGraph() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 800, AvgDeg: 6, Exponent: 2.1, Directed: true, Seed: 55})
}

func undirectedTestGraph() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 600, AvgDeg: 5, Exponent: 2.2, Directed: false, Seed: 56})
}

// partitionsUnderTest builds one partition per family, plus the
// degenerate single-fragment case, to exercise every status
// combination (e-cut, v-cut, dummy).
func partitionsUnderTest(t testing.TB, g *graph.Graph) map[string]*partition.Partition {
	t.Helper()
	out := map[string]*partition.Partition{}
	for _, spec := range partitioner.Baselines() {
		p, err := spec.Run(g, 4)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		out[spec.Name] = p
	}
	single, err := partitioner.HashEdgeCut(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	out["single"] = single
	return out
}

func TestPRMatchesSequential(t *testing.T) {
	g := directedTestGraph()
	want := PRSeq(g, 10, 0.85)
	for name, p := range partitionsUnderTest(t, g) {
		c := engine.NewCluster(p)
		got, rep, err := RunPR(c, PROptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.CriticalWork <= 0 {
			t.Errorf("%s: no work recorded", name)
		}
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9*(1+want[v]) {
				t.Fatalf("%s: rank[%d] = %v, want %v", name, v, got[v], want[v])
			}
		}
	}
}

func TestPRDanglingMassConserved(t *testing.T) {
	// A graph with dangling vertices: ranks must sum to 1.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 2) // 2, 4, 5 dangling
	g := b.MustBuild()
	p, err := partitioner.HashEdgeCut(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := RunPR(engine.NewCluster(p), PROptions{Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank mass = %v, want 1", sum)
	}
	want := PRSeq(g, 15, 0.85)
	for v := range want {
		if math.Abs(rank[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, rank[v], want[v])
		}
	}
}

func TestWCCMatchesSequential(t *testing.T) {
	g := directedTestGraph()
	_, wantCount := WCCSeq(g)
	wantSum := labelChecksum(mustLabels(g))
	for name, p := range partitionsUnderTest(t, g) {
		res, _, err := RunWCC(engine.NewCluster(p))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Count != wantCount {
			t.Fatalf("%s: %d components, want %d", name, res.Count, wantCount)
		}
		if labelChecksum(res.Labels) != wantSum {
			t.Fatalf("%s: label checksum mismatch", name)
		}
	}
}

func mustLabels(g *graph.Graph) []graph.VertexID {
	labels, _ := WCCSeq(g)
	return labels
}

func TestSSSPMatchesSequential(t *testing.T) {
	g := directedTestGraph()
	src := graph.VertexID(0)
	want := SSSPSeq(g, src)
	for name, p := range partitionsUnderTest(t, g) {
		res, _, err := RunSSSP(engine.NewCluster(p), src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := range want {
			got := res.Dist[v]
			if want[v] >= 1e300 {
				if got < Unreachable {
					t.Fatalf("%s: vertex %d should be unreachable, got %v", name, v, got)
				}
				continue
			}
			if math.Abs(got-want[v]) > 1e-9 {
				t.Fatalf("%s: dist[%d] = %v, want %v", name, v, got, want[v])
			}
		}
	}
}

func TestSSSPHighDiameter(t *testing.T) {
	g := gen.Grid2D(20, 20)
	src := graph.VertexID(0)
	want := SSSPSeq(g, src)
	p, err := partitioner.GridVertexCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := RunSSSP(engine.NewCluster(p), src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Supersteps < 3 {
		t.Errorf("high-diameter SSSP converged suspiciously fast: %d supersteps", rep.Supersteps)
	}
	for v := range want {
		if math.Abs(res.Dist[v]-want[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Dist[v], want[v])
		}
	}
}

func TestTCMatchesSequential(t *testing.T) {
	g := undirectedTestGraph()
	want := TCSeq(g)
	if want == 0 {
		t.Fatal("test graph has no triangles; pick a denser generator")
	}
	for name, p := range partitionsUnderTest(t, g) {
		got, rep, err := RunTC(engine.NewCluster(p))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: %d triangles, want %d", name, got, want)
		}
		if rep.Supersteps != 4 {
			t.Errorf("%s: TC took %d supersteps, want 4", name, rep.Supersteps)
		}
	}
}

func TestTCCliques(t *testing.T) {
	// K5 + K4 + K3: C(5,3)+C(4,3)+C(3,3) = 10+4+1 triangles.
	g := gen.CliqueCollection([]int{5, 4, 3})
	if got := TCSeq(g); got != 15 {
		t.Fatalf("TCSeq = %d, want 15", got)
	}
	p, err := partitioner.NEVertexCut(g, 3, partitioner.NEConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunTC(engine.NewCluster(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("RunTC = %d, want 15", got)
	}
}

func TestTCRejectsDirected(t *testing.T) {
	g := directedTestGraph()
	p, err := partitioner.HashEdgeCut(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunTC(engine.NewCluster(p)); err == nil {
		t.Fatal("TC must reject directed graphs")
	}
}

func TestCNMatchesSequential(t *testing.T) {
	g := directedTestGraph()
	for _, theta := range []int{0, 30} {
		want := CNSeq(g, theta)
		if want.Triples == 0 {
			t.Fatalf("theta=%d: oracle found no triples", theta)
		}
		for name, p := range partitionsUnderTest(t, g) {
			got, _, err := RunCN(engine.NewCluster(p), CNOptions{Theta: theta})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got != want {
				t.Fatalf("%s theta=%d: %+v, want %+v", name, theta, got, want)
			}
		}
	}
}

func TestCNThetaFilters(t *testing.T) {
	g := directedTestGraph()
	all := CNSeq(g, 0)
	filtered := CNSeq(g, 5)
	if filtered.Triples >= all.Triples {
		t.Fatalf("theta filter did not reduce triples: %d vs %d", filtered.Triples, all.Triples)
	}
}

func TestRunDispatcherAgainstOracle(t *testing.T) {
	gd := directedTestGraph()
	gu := undirectedTestGraph()
	pd, err := partitioner.FennelEdgeCut(gd, 3, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := partitioner.GridVertexCut(gu, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{CNTheta: 50, SSSPSource: 1}
	for _, algo := range costmodel.Algos() {
		g, p := gd, pd
		if algo == costmodel.TC {
			g, p = gu, pu
		}
		got, err := Run(engine.NewCluster(p), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		want := SeqOutcome(g, algo, opts)
		if got.Checksum != want.Checksum {
			t.Errorf("%v: checksum %d vs oracle %d", algo, got.Checksum, want.Checksum)
		}
		if math.Abs(got.Value-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
			t.Errorf("%v: value %v vs oracle %v", algo, got.Value, want.Value)
		}
		if got.Report == nil || got.Report.CriticalWork <= 0 {
			t.Errorf("%v: missing report", algo)
		}
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	g := directedTestGraph()
	p, _ := partitioner.HashEdgeCut(g, 2)
	if _, err := Run(engine.NewCluster(p), costmodel.Algo(42), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// Workload skew must show up in the engine's critical path: CN on a
// balanced-by-count but hub-concentrated edge-cut must cost more than
// on a spread-out one. This is the Example-1 effect end to end.
func TestCNWorkloadSkewVisible(t *testing.T) {
	g := directedTestGraph()
	// Concentrated: vertices sorted by id; hubs (low ids in our
	// power-law generator) land together in fragment 0.
	nv := g.NumVertices()
	concentrated := make([]int, nv)
	for v := 0; v < nv; v++ {
		concentrated[v] = v * 4 / nv
	}
	spread := make([]int, nv)
	for v := 0; v < nv; v++ {
		spread[v] = v % 4
	}
	pc, err := partition.FromVertexAssignment(g, concentrated, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := partition.FromVertexAssignment(g, spread, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, repC, err := RunCN(engine.NewCluster(pc), CNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, repS, err := RunCN(engine.NewCluster(ps), CNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if repC.CriticalWork <= repS.CriticalWork {
		t.Fatalf("hub-concentrated partition should cost more: %v vs %v",
			repC.CriticalWork, repS.CriticalWork)
	}
}

func TestHarvestProducesTrainableSamples(t *testing.T) {
	g := directedTestGraph()
	p, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := engine.NewCluster(p)
	c.EnableCostRecording()
	if _, _, err := RunPR(c, PROptions{Iterations: 3}); err != nil {
		t.Fatal(err)
	}
	comp, _ := c.HarvestSamples()
	if len(comp) < 100 {
		t.Fatalf("only %d computation samples harvested", len(comp))
	}
	vars, degree := costmodel.LearnableVars(costmodel.PR)
	m, err := costmodel.Train(costmodel.PolyTerms(vars, degree), comp, costmodel.TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if msre := costmodel.MSRE(m, comp); msre > 0.2 {
		t.Fatalf("model trained on engine logs has MSRE %v", msre)
	}
}

func TestEdgeWeightDeterministicPositive(t *testing.T) {
	for u := graph.VertexID(0); u < 20; u++ {
		for v := graph.VertexID(0); v < 20; v++ {
			w1, w2 := EdgeWeight(u, v), EdgeWeight(u, v)
			if w1 != w2 || w1 < 1 {
				t.Fatalf("EdgeWeight(%d,%d) = %v/%v", u, v, w1, w2)
			}
		}
	}
}

func TestIntersectAbove(t *testing.T) {
	a := []graph.VertexID{1, 3, 5, 7, 9}
	b := []graph.VertexID{3, 4, 5, 9, 11}
	if got := intersectAbove(a, b, 4); got != 2 { // {5, 9}
		t.Fatalf("intersectAbove = %d, want 2", got)
	}
	if got := intersectAbove(a, b, 0); got != 3 { // {3, 5, 9}
		t.Fatalf("intersectAbove floor 0 = %d, want 3", got)
	}
	if got := intersectAbove(nil, b, 0); got != 0 {
		t.Fatalf("intersectAbove nil = %d", got)
	}
}

// Isolated vertices are their own components and unreachable in SSSP,
// even when the partitioners scatter them.
func TestIsolatedVerticesAcrossAlgorithms(t *testing.T) {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	// Vertices 3..7 isolated.
	g := b.MustBuild()
	p, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunWCC(engine.NewCluster(p))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 6 {
		t.Fatalf("components = %d, want 6", res.Count)
	}
	sssp, _, err := RunSSSP(engine.NewCluster(p), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sssp.Dist[7] < Unreachable {
		t.Fatal("isolated vertex reachable")
	}
	if sssp.Dist[2] >= Unreachable {
		t.Fatal("connected vertex unreachable")
	}
	rank, _, err := RunPR(engine.NewCluster(p), PROptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank mass %v with isolated vertices", sum)
	}
}
