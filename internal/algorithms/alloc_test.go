package algorithms

import (
	"testing"

	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// The PR superstep loop — dense state updates, SendVal partials and
// rank broadcasts, delivery, accounting — must not allocate once
// buffers are warm. Measured as a delta so per-Run fixed allocations
// (state, report, result collection) cancel out: extra iterations must
// come allocation-free.
func TestRunPRSteadyStateZeroAllocs(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 1500, AvgDeg: 6, Exponent: 2.1, Directed: true, Seed: 11})
	p, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := engine.NewCluster(p).UsePool(pool.Serial())
	run := func(iters int) func() {
		o := Options{PRIterations: iters}
		return func() {
			if _, err := Run(c, costmodel.PR, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(24)() // warm outboxes, inboxes, arenas and state capacities
	short := testing.AllocsPerRun(5, run(3))
	long := testing.AllocsPerRun(5, run(24))
	if long > short {
		t.Fatalf("24-iteration PR allocates %.1f, 3-iteration PR %.1f: %.2f allocs per extra superstep, want 0",
			long, short, (long-short)/42)
	}
}
