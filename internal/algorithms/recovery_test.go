package algorithms

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/refine"
)

// recoverySchedule mixes every fault class at coordinates every
// algorithm reaches (all five run at least three supersteps over four
// workers). Crash and transient trigger rollback-replay; drop/dup
// trigger redelivery; slow perturbs wall time only.
func recoverySchedule(t *testing.T) []fault.Event {
	t.Helper()
	events, err := fault.Parse("slow@0:w2:1ms,crash@1:w0,drop@1:d3#1,err@2:w1,dup@2:d2#0")
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestRecoveryDeterminism is the headline contract of the
// fault-tolerant runtime: for every algorithm, a run that crashes
// twice, loses and duplicates deliveries, and straggles must produce
// the exact outcome and Report of the fault-free run — SimCost,
// per-worker Work, MsgCount, MsgBytes and Supersteps bitwise
// identical. Swept over seeds and pool sizes (the CI fault matrix runs
// this test under -race).
func TestRecoveryDeterminism(t *testing.T) {
	opts := Options{CNTheta: 10, SSSPSource: 1}
	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			for _, algo := range costmodel.Algos() {
				t.Run(fmt.Sprintf("%v/seed=%d/workers=%d", algo, seed, workers), func(t *testing.T) {
					g := gen.PowerLaw(gen.PowerLawConfig{
						N: 300, AvgDeg: 5, Exponent: 2.2,
						Directed: algo != costmodel.TC, Seed: seed,
					})
					p, err := partitioner.HashEdgeCut(g, 4)
					if err != nil {
						t.Fatal(err)
					}
					// Refine so the run covers e-cut, v-cut and dummy
					// statuses, and check the invariants survived.
					refine.E2H(p, costmodel.Reference(algo), refine.Config{})
					if err := p.Validate(); err != nil {
						t.Fatalf("invalid partition after refinement: %v", err)
					}
					pl := pool.New(workers)
					defer pl.Close()

					want, err := Run(engine.NewCluster(p).UsePool(pl), algo, opts)
					if err != nil {
						t.Fatal(err)
					}
					inj := fault.NewInjector(recoverySchedule(t)...)
					got, err := Run(engine.NewCluster(p).UsePool(pl).Configure(engine.Options{Injector: inj}), algo, opts)
					if err != nil {
						t.Fatalf("recovered run failed: %v", err)
					}

					if got.Value != want.Value || got.Checksum != want.Checksum {
						t.Fatalf("outcome diverged: (%v,%d) vs (%v,%d)",
							got.Value, got.Checksum, want.Value, want.Checksum)
					}
					wr, gr := want.Report, got.Report
					if gr.Supersteps != wr.Supersteps {
						t.Fatalf("Supersteps: %d vs %d", gr.Supersteps, wr.Supersteps)
					}
					if gr.SimCost(engine.DefaultBytesWeight) != wr.SimCost(engine.DefaultBytesWeight) {
						t.Fatalf("SimCost: %v vs %v",
							gr.SimCost(engine.DefaultBytesWeight), wr.SimCost(engine.DefaultBytesWeight))
					}
					if !reflect.DeepEqual(gr.Work, wr.Work) {
						t.Fatalf("Work: %v vs %v", gr.Work, wr.Work)
					}
					if !reflect.DeepEqual(gr.MsgCount, wr.MsgCount) {
						t.Fatalf("MsgCount: %v vs %v", gr.MsgCount, wr.MsgCount)
					}
					if !reflect.DeepEqual(gr.MsgBytes, wr.MsgBytes) {
						t.Fatalf("MsgBytes: %v vs %v", gr.MsgBytes, wr.MsgBytes)
					}
					if gr.Recoveries < 2 { // crash@1 + err@2 both fire
						t.Fatalf("Recoveries = %d, want >= 2", gr.Recoveries)
					}
					// The partition is read-only to the engine: recovery
					// must leave the invariants intact.
					if err := p.Validate(); err != nil {
						t.Fatalf("invalid partition after recovery: %v", err)
					}
					// And the recovered outcome still matches the
					// sequential oracle.
					oracle := SeqOutcome(g, algo, opts)
					if got.Checksum != oracle.Checksum ||
						math.Abs(got.Value-oracle.Value) > 1e-6*(1+math.Abs(oracle.Value)) {
						t.Fatalf("recovered outcome diverged from oracle: (%v,%d) vs (%v,%d)",
							got.Value, got.Checksum, oracle.Value, oracle.Checksum)
					}
				})
			}
		}
	}
}

// TestRunnerAttachesPartialReport: when a run fails (here:
// non-convergence via a tiny superstep budget), the dispatcher must
// still hand back the engine's partial Report instead of discarding it.
func TestRunnerAttachesPartialReport(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 200, AvgDeg: 5, Exponent: 2.2, Directed: true, Seed: 7})
	p, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := engine.NewCluster(p).Configure(engine.Options{MaxSupersteps: 2})
	out, err := Run(c, costmodel.PR, Options{PRIterations: 10})
	if err == nil {
		t.Fatal("budget-2 PageRank run converged unexpectedly")
	}
	var fre *engine.FailedRunError
	if !errors.As(err, &fre) {
		t.Fatalf("err = %v, want *engine.FailedRunError", err)
	}
	if out.Report == nil || out.Report.Supersteps != 2 {
		t.Fatalf("partial report missing or wrong: %+v", out.Report)
	}
	if out.Report != fre.Report {
		t.Fatal("outcome report is not the error's partial report")
	}
}

// TestRecoveryWithRandomSchedule: a Random(seed)-generated schedule is
// replayable — two injectors built from the same seed drive two runs to
// identical reports.
func TestRecoveryWithRandomSchedule(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 250, AvgDeg: 5, Exponent: 2.2, Directed: true, Seed: 11})
	p, err := partitioner.HashEdgeCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{SSSPSource: 0}
	run := func() Outcome {
		t.Helper()
		inj := fault.NewInjector(fault.Random(99, 6, 4, 8)...)
		out, err := Run(engine.NewCluster(p).Configure(engine.Options{Injector: inj}), costmodel.WCC, opts)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Value != b.Value || a.Checksum != b.Checksum {
		t.Fatalf("outcomes diverged across identical seeds: (%v,%d) vs (%v,%d)",
			a.Value, a.Checksum, b.Value, b.Checksum)
	}
	if a.Report.SimCost(engine.DefaultBytesWeight) != b.Report.SimCost(engine.DefaultBytesWeight) {
		t.Fatal("SimCost diverged across identical seeds")
	}
}
