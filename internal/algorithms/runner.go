package algorithms

import (
	"fmt"

	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/graph"
)

// Options bundles the per-algorithm knobs for the uniform Run entry
// point used by the experiment drivers.
type Options struct {
	CNTheta      int            // CN in-degree filter (≤0 disables)
	SSSPSource   graph.VertexID // SSSP source vertex
	PRIterations int            // PageRank iterations (0 = default 10)
}

// Outcome summarises one distributed run in a partition-independent
// way: Value and Checksum must agree (Value within float tolerance for
// PR/SSSP) across any two correct partitions of the same graph.
type Outcome struct {
	Algo     costmodel.Algo
	Value    float64
	Checksum uint64
	Report   *engine.Report
}

// Run executes the algorithm over the cluster's partition. On failure
// the returned Outcome still carries the engine's partial Report (the
// error is typically an *engine.FailedRunError), so callers can
// account for interrupted runs instead of discarding them.
func Run(c *engine.Cluster, algo costmodel.Algo, opts Options) (Outcome, error) {
	out := Outcome{Algo: algo}
	switch algo {
	case costmodel.CN:
		res, rep, err := RunCN(c, CNOptions{Theta: opts.CNTheta})
		if err != nil {
			out.Report = rep
			return out, err
		}
		out.Value, out.Checksum, out.Report = float64(res.Triples), res.Checksum, rep
	case costmodel.TC:
		count, rep, err := RunTC(c)
		if err != nil {
			out.Report = rep
			return out, err
		}
		out.Value, out.Report = float64(count), rep
	case costmodel.WCC:
		res, rep, err := RunWCC(c)
		if err != nil {
			out.Report = rep
			return out, err
		}
		out.Value, out.Checksum, out.Report = float64(res.Count), labelChecksum(res.Labels), rep
	case costmodel.PR:
		rank, rep, err := RunPR(c, PROptions{Iterations: opts.PRIterations})
		if err != nil {
			out.Report = rep
			return out, err
		}
		out.Value, out.Report = weightedSum(rank), rep
	case costmodel.SSSP:
		res, rep, err := RunSSSP(c, opts.SSSPSource)
		if err != nil {
			out.Report = rep
			return out, err
		}
		reach := 0
		sum := 0.0
		for _, d := range res.Dist {
			if d < Unreachable {
				reach++
				sum += d
			}
		}
		out.Value, out.Checksum, out.Report = sum, uint64(reach), rep
	default:
		return out, fmt.Errorf("algorithms: unknown algorithm %v", algo)
	}
	return out, nil
}

// SeqOutcome computes the same Outcome on the unpartitioned graph —
// the correctness oracle and "no partitioning" comparator.
func SeqOutcome(g *graph.Graph, algo costmodel.Algo, opts Options) Outcome {
	out := Outcome{Algo: algo}
	switch algo {
	case costmodel.CN:
		res := CNSeq(g, opts.CNTheta)
		out.Value, out.Checksum = float64(res.Triples), res.Checksum
	case costmodel.TC:
		out.Value = float64(TCSeq(g))
	case costmodel.WCC:
		labels, count := WCCSeq(g)
		out.Value, out.Checksum = float64(count), labelChecksum(labels)
	case costmodel.PR:
		iters := opts.PRIterations
		if iters == 0 {
			iters = 10
		}
		out.Value = weightedSum(PRSeq(g, iters, 0.85))
	case costmodel.SSSP:
		dist := SSSPSeq(g, opts.SSSPSource)
		reach := 0
		sum := 0.0
		for _, d := range dist {
			if d < Unreachable {
				reach++
				sum += d
			}
		}
		out.Value, out.Checksum = sum, uint64(reach)
	}
	return out
}

// labelChecksum is an order-independent digest of a component
// labelling that is invariant to which member names the component:
// each vertex contributes a hash of (v, its component's smallest id).
// WCC labellings produced here always use smallest-member labels.
func labelChecksum(labels []graph.VertexID) uint64 {
	var sum uint64
	for v, l := range labels {
		sum += pairHash(graph.VertexID(v), l, 0)
	}
	return sum
}

// weightedSum reduces a rank vector to a comparable scalar with
// per-vertex weights, so permuted errors cannot cancel.
func weightedSum(rank []float64) float64 {
	s := 0.0
	for v, r := range rank {
		s += r * float64(v%97+1)
	}
	return s
}
