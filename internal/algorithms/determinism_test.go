package algorithms

import (
	"testing"

	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/partitioner"
)

// The engine's cost accounting must be deterministic: two runs of the
// same algorithm over the same partition produce identical work,
// message and critical-path numbers even though workers execute on
// concurrent goroutines. This is what makes the Fig-9 benches
// reproducible.
func TestReportsDeterministic(t *testing.T) {
	gd := directedTestGraph()
	gu := undirectedTestGraph()
	pd, err := partitioner.FennelEdgeCut(gd, 4, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := partitioner.GridVertexCut(gu, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{CNTheta: 50, SSSPSource: 2, PRIterations: 4}
	for _, algo := range costmodel.Algos() {
		p := pd
		if algo == costmodel.TC {
			p = pu
		}
		a, err := Run(engine.NewCluster(p), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		b, err := Run(engine.NewCluster(p), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if a.Report.CriticalWork != b.Report.CriticalWork {
			t.Errorf("%v: critical work differs: %v vs %v", algo, a.Report.CriticalWork, b.Report.CriticalWork)
		}
		if a.Report.CriticalBytes != b.Report.CriticalBytes {
			t.Errorf("%v: critical bytes differ: %v vs %v", algo, a.Report.CriticalBytes, b.Report.CriticalBytes)
		}
		if a.Report.Supersteps != b.Report.Supersteps {
			t.Errorf("%v: superstep counts differ", algo)
		}
		for i := range a.Report.Work {
			if a.Report.Work[i] != b.Report.Work[i] {
				t.Errorf("%v: worker %d work differs", algo, i)
			}
			if a.Report.MsgBytes[i] != b.Report.MsgBytes[i] {
				t.Errorf("%v: worker %d bytes differ", algo, i)
			}
		}
		if a.Value != b.Value || a.Checksum != b.Checksum {
			t.Errorf("%v: results differ across runs", algo)
		}
	}
}
