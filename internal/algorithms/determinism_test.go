package algorithms

import (
	"runtime"
	"testing"

	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// The engine's cost accounting must be deterministic: two runs of the
// same algorithm over the same partition produce identical work,
// message and critical-path numbers even though workers execute on
// concurrent goroutines. This is what makes the Fig-9 benches
// reproducible.
func TestReportsDeterministic(t *testing.T) {
	gd := directedTestGraph()
	gu := undirectedTestGraph()
	pd, err := partitioner.FennelEdgeCut(gd, 4, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := partitioner.GridVertexCut(gu, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{CNTheta: 50, SSSPSource: 2, PRIterations: 4}
	for _, algo := range costmodel.Algos() {
		p := pd
		if algo == costmodel.TC {
			p = pu
		}
		a, err := Run(engine.NewCluster(p), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		b, err := Run(engine.NewCluster(p), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if a.Report.CriticalWork != b.Report.CriticalWork {
			t.Errorf("%v: critical work differs: %v vs %v", algo, a.Report.CriticalWork, b.Report.CriticalWork)
		}
		if a.Report.CriticalBytes != b.Report.CriticalBytes {
			t.Errorf("%v: critical bytes differ: %v vs %v", algo, a.Report.CriticalBytes, b.Report.CriticalBytes)
		}
		if a.Report.Supersteps != b.Report.Supersteps {
			t.Errorf("%v: superstep counts differ", algo)
		}
		for i := range a.Report.Work {
			if a.Report.Work[i] != b.Report.Work[i] {
				t.Errorf("%v: worker %d work differs", algo, i)
			}
			if a.Report.MsgBytes[i] != b.Report.MsgBytes[i] {
				t.Errorf("%v: worker %d bytes differ", algo, i)
			}
		}
		if a.Value != b.Value || a.Checksum != b.Checksum {
			t.Errorf("%v: results differ across runs", algo)
		}
	}
}

// TestSimCostDeterministicAcrossWorkerCounts pins the pool contract
// end to end: the engine's Report — and therefore SimCost, the number
// every Fig-9 table is built from — is bitwise identical whether
// supersteps run single-threaded, on 4 workers, or on the whole
// machine. This is what makes bench output portable between hosts.
func TestSimCostDeterministicAcrossWorkerCounts(t *testing.T) {
	gd := directedTestGraph()
	gu := undirectedTestGraph()
	pd, err := partitioner.FennelEdgeCut(gd, 4, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := partitioner.GridVertexCut(gu, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{CNTheta: 50, SSSPSource: 2, PRIterations: 4}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, algo := range costmodel.Algos() {
		p := pd
		if algo == costmodel.TC {
			p = pu
		}
		var ref Outcome
		for i, w := range counts {
			pl := pool.New(w)
			out, err := Run(engine.NewCluster(p).UsePool(pl), algo, opts)
			pl.Close()
			if err != nil {
				t.Fatalf("%v workers=%d: %v", algo, w, err)
			}
			if i == 0 {
				ref = out
				continue
			}
			if got, want := out.Report.SimCost(engine.DefaultBytesWeight), ref.Report.SimCost(engine.DefaultBytesWeight); got != want {
				t.Errorf("%v: SimCost with %d workers = %v, want %v (serial)", algo, w, got, want)
			}
			if out.Report.CriticalWork != ref.Report.CriticalWork ||
				out.Report.CriticalBytes != ref.Report.CriticalBytes ||
				out.Report.Supersteps != ref.Report.Supersteps {
				t.Errorf("%v: report shape differs at %d workers: %v vs %v", algo, w, out.Report, ref.Report)
			}
			for i := range ref.Report.Work {
				if out.Report.Work[i] != ref.Report.Work[i] || out.Report.MsgBytes[i] != ref.Report.MsgBytes[i] ||
					out.Report.MsgCount[i] != ref.Report.MsgCount[i] {
					t.Errorf("%v: worker %d accounting differs at %d pool workers", algo, i, w)
				}
			}
			if out.Value != ref.Value || out.Checksum != ref.Checksum {
				t.Errorf("%v: algorithm output differs at %d workers", algo, w)
			}
		}
	}
}
