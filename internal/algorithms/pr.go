package algorithms

import (
	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/partition"
)

// PROptions configures a PageRank run.
type PROptions struct {
	Iterations int     // default 10
	Damping    float64 // default 0.85
}

func (o *PROptions) defaults() {
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	if o.Damping == 0 {
		o.Damping = 0.85
	}
}

// prState keeps per-vertex values in dense slices indexed by the
// fragment's compiled local id (see partition.Fragment.LocalIndex), so
// the inner loops are array reads instead of map probes and a
// superstep allocates nothing.
type prState struct {
	rank    []float64 // by local id
	partial []float64 // by local id; valid where has[l]
	has     []bool    // partial accumulated this iteration
	scratch []int     // AppendMirrors scratch
}

// Snapshot deep-copies the state for engine checkpointing.
func (st *prState) Snapshot() any {
	return &prState{
		rank:    append([]float64(nil), st.rank...),
		partial: append([]float64(nil), st.partial...),
		has:     append([]bool(nil), st.has...),
	}
}

const (
	kindPartial uint8 = iota + 10
	kindRank
	kindDangling
)

// RunPR computes PageRank over the cluster's partition. Each iteration
// is two supersteps:
//
//	even: every copy accumulates partials over its RESPONSIBLE local
//	      in-arcs (replicated arcs contribute exactly once cluster-
//	      wide), ships border partials to the vertex master and
//	      broadcasts its local dangling mass;
//	odd:  masters fold partials + dangling base into new ranks and
//	      broadcast them to mirrors, which apply them at the start of
//	      the next even superstep.
//
// The result matches PRSeq bit-for-bit up to floating-point summation
// order.
func RunPR(c *engine.Cluster, opts PROptions) ([]float64, *engine.Report, error) {
	opts.defaults()
	p := c.Partition()
	g := p.Graph()
	n := g.NumVertices()
	invN := 1 / float64(n)

	step := func(w *engine.WorkerCtx, s int, inbox []engine.Message) bool {
		frag := w.Fragment()
		var st *prState
		if w.State == nil {
			nl := frag.NumVertices()
			st = &prState{rank: make([]float64, nl), partial: make([]float64, nl), has: make([]bool, nl)}
			for l := range st.rank {
				st.rank[l] = invN
			}
			w.State = st
		} else {
			st = w.State.(*prState)
		}
		iter := s / 2
		if iter >= opts.Iterations {
			return true
		}
		if s%2 == 0 {
			// Apply rank broadcasts from the previous odd superstep.
			for _, m := range inbox {
				if m.Kind == kindRank {
					st.rank[frag.LocalIndex(m.V)] = m.Data[0]
				}
				w.AddWork(1)
			}
			// Accumulate partials over responsible in-arcs. Vertices
			// walks the compiled form in ascending id order, so the
			// running counter l is exactly the local id.
			for l := range st.partial {
				st.partial[l] = 0
				st.has[l] = false
			}
			var dangling float64
			l := 0
			frag.Vertices(func(v graph.VertexID, adj *partition.Adj) {
				sum := 0.0
				any := false
				for _, u := range adj.In {
					if !w.ResponsibleFor(v, u, v) {
						continue
					}
					sum += st.rank[frag.LocalIndex(u)] / float64(g.OutDegree(u))
					any = true
				}
				// The scan walks every local in-arc (the responsibility
				// check is part of it), so the true per-vertex work is
				// d+L(v) — the shape hPR learns.
				if len(adj.In) > 0 {
					w.ChargeVertex(v, float64(len(adj.In)))
				}
				if any {
					st.partial[l] = sum
					st.has[l] = true
				}
				// Dangling mass: counted once at the vertex's compute
				// copy (e-cut node, or master among v-cut copies).
				if g.OutDegree(v) == 0 && prCountsDangling(p, w.ID(), v) {
					dangling += st.rank[l]
				}
				l++
			})
			// Ship border partials to masters; keep local ones.
			for l, ok := range st.has {
				if !ok {
					continue
				}
				v := frag.VertexAt(l)
				if p.IsBorder(v) && !w.IsMaster(v) {
					w.SendVal(p.Master(v), v, kindPartial, st.partial[l])
					st.partial[l] = 0
					st.has[l] = false
				}
			}
			// Dangling mass to every worker so all masters share the
			// same base next superstep.
			for dst := 0; dst < w.NumWorkers(); dst++ {
				w.SendVal(dst, 0, kindDangling, dangling)
			}
			return false
		}
		// Odd superstep: masters combine.
		var danglingTerm float64
		for _, m := range inbox {
			switch m.Kind {
			case kindPartial:
				st.partial[frag.LocalIndex(m.V)] += m.Data[0]
			case kindDangling:
				danglingTerm += m.Data[0]
			}
			w.AddWork(1)
		}
		base := (1-opts.Damping)*invN + opts.Damping*danglingTerm*invN
		l := 0
		frag.Vertices(func(v graph.VertexID, _ *partition.Adj) {
			lv := l
			l++
			if !w.IsMaster(v) {
				return
			}
			newRank := base + opts.Damping*st.partial[lv]
			st.rank[lv] = newRank
			w.AddWork(1)
			st.scratch = w.AppendMirrors(st.scratch[:0], v)
			for _, dst := range st.scratch {
				w.SendVal(dst, v, kindRank, newRank)
			}
			if len(st.scratch) > 0 {
				w.ChargeVertexComm(v, float64(len(st.scratch)))
			}
		})
		for i := range st.partial {
			st.partial[i] = 0
			st.has[i] = false
		}
		return iter+1 >= opts.Iterations
	}
	rep, err := c.Run(nil, step, 2*opts.Iterations+3)
	if err != nil {
		return nil, rep, err
	}
	rank := make([]float64, n)
	for i := 0; i < p.NumFragments(); i++ {
		st, _ := c.Worker(i).State.(*prState)
		if st == nil {
			continue
		}
		frag := p.Fragment(i)
		l := 0
		frag.Vertices(func(v graph.VertexID, _ *partition.Adj) {
			if p.Master(v) == i {
				rank[v] = st.rank[l]
			}
			l++
		})
	}
	return rank, rep, nil
}

// prCountsDangling designates exactly one copy of a dangling vertex to
// contribute its mass: the e-cut node when v is e-cut, otherwise the
// master copy.
func prCountsDangling(p *partition.Partition, frag int, v graph.VertexID) bool {
	switch p.Status(frag, v) {
	case partition.ECutNode:
		return true
	case partition.VCutNode:
		return p.Master(v) == frag
	}
	return false
}
