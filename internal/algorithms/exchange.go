package algorithms

import (
	"sort"

	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/partition"
)

// neighborExchange is the shared mirror→master→requester adjacency
// protocol used by TC and CN (Example 1(2): split vertices must ship
// their neighbour lists before triangles/pairs can be verified).
//
// Superstep 0: every copy of a border vertex whose MASTER copy is
// incomplete ships its local list to the master; workers resolve
// locally-complete needs and send requests for the rest.
// Superstep 1: masters merge their own list with the shares and answer
// requests — incurring the dG(v)·r(v)·I(v)-shaped communication that
// gTC models.
// Superstep 2: requesters install the responses; compute can start.
type neighborExchange struct {
	// list extracts the relevant local adjacency (undirected
	// neighbours for TC, in-neighbours for CN).
	list func(adj *partition.Adj) []graph.VertexID
	// needs lists the vertices this worker must know the full list of.
	needs func(w *engine.WorkerCtx) map[graph.VertexID]bool
}

type exchState struct {
	full       map[graph.VertexID][]graph.VertexID
	shares     map[graph.VertexID][][]graph.VertexID
	pendingOwn map[graph.VertexID]bool
}

// clone deep-copies the exchange state (adjacency slices included) so
// checkpointed copies share no memory with the live run.
func (st *exchState) clone() *exchState {
	if st == nil {
		return nil
	}
	out := &exchState{pendingOwn: cloneSetMap(st.pendingOwn)}
	if st.full != nil {
		out.full = make(map[graph.VertexID][]graph.VertexID, len(st.full))
		for v, l := range st.full {
			out.full[v] = append([]graph.VertexID(nil), l...)
		}
	}
	if st.shares != nil {
		out.shares = make(map[graph.VertexID][][]graph.VertexID, len(st.shares))
		for v, ls := range st.shares {
			cp := make([][]graph.VertexID, len(ls))
			for i, l := range ls {
				cp[i] = append([]graph.VertexID(nil), l...)
			}
			out.shares[v] = cp
		}
	}
	return out
}

// cloneValMap / cloneSetMap are the shared deep-copy helpers behind
// the algorithm states' Snapshot methods.
func cloneValMap(m map[graph.VertexID]float64) map[graph.VertexID]float64 {
	if m == nil {
		return nil
	}
	out := make(map[graph.VertexID]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneSetMap(m map[graph.VertexID]bool) map[graph.VertexID]bool {
	if m == nil {
		return nil
	}
	out := make(map[graph.VertexID]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

const (
	kindAdjShare uint8 = iota + 20
	kindAdjReq
	kindAdjResp
)

func (e *neighborExchange) step0(w *engine.WorkerCtx) *exchState {
	p := w.Partition()
	st := &exchState{
		full:       map[graph.VertexID][]graph.VertexID{},
		shares:     map[graph.VertexID][][]graph.VertexID{},
		pendingOwn: map[graph.VertexID]bool{},
	}
	// Share local lists of border vertices whose master is incomplete.
	w.Fragment().Vertices(func(x graph.VertexID, adj *partition.Adj) {
		if !p.IsBorder(x) {
			return
		}
		m := p.Master(x)
		if m == w.ID() || p.IsComplete(m, x) {
			return
		}
		local := sortedCopy(e.list(adj))
		w.Send(m, engine.Message{V: x, Kind: kindAdjShare, Adj: local})
	})
	// Resolve needs.
	for x := range e.needs(w) {
		adj := w.Fragment().Adjacency(x)
		switch {
		case adj != nil && p.IsComplete(w.ID(), x):
			st.full[x] = sortedCopy(e.list(adj))
		case p.Master(x) == w.ID():
			st.pendingOwn[x] = true
		default:
			// The requester id rides in Data[0] so the master knows
			// where to respond.
			w.Send(p.Master(x), engine.Message{V: x, Kind: kindAdjReq, Data: []float64{float64(w.ID())}})
		}
	}
	return st
}

func (e *neighborExchange) step1(w *engine.WorkerCtx, st *exchState, inbox []engine.Message) {
	p := w.Partition()
	var requests []engine.Message
	for _, m := range inbox {
		switch m.Kind {
		case kindAdjShare:
			st.shares[m.V] = append(st.shares[m.V], m.Adj)
		case kindAdjReq:
			requests = append(requests, m)
		}
	}
	merged := map[graph.VertexID][]graph.VertexID{}
	mergedList := func(x graph.VertexID) []graph.VertexID {
		if l, ok := merged[x]; ok {
			return l
		}
		var own []graph.VertexID
		if adj := w.Fragment().Adjacency(x); adj != nil {
			own = sortedCopy(e.list(adj))
		}
		l := mergeSorted(own, st.shares[x])
		w.ChargeVertex(x, float64(len(l)))
		merged[x] = l
		return l
	}
	for _, m := range requests {
		requester := int(m.Data[0])
		l := mergedList(m.V)
		w.Send(requester, engine.Message{V: m.V, Kind: kindAdjResp, Adj: l})
		w.ChargeVertexComm(m.V, float64(len(l)))
	}
	for x := range st.pendingOwn {
		st.full[x] = mergedList(x)
	}
	// Shares for un-requested vertices still incurred wire cost;
	// attribute it to the master copy for the training log.
	for x, sh := range st.shares {
		if p.Master(x) == w.ID() {
			total := 0
			for _, l := range sh {
				total += len(l)
			}
			w.ChargeVertexComm(x, float64(total))
		}
	}
	st.shares = nil
}

func (e *neighborExchange) step2(w *engine.WorkerCtx, st *exchState, inbox []engine.Message) {
	for _, m := range inbox {
		if m.Kind == kindAdjResp {
			st.full[m.V] = m.Adj
		}
	}
}

func sortedCopy(s []graph.VertexID) []graph.VertexID {
	out := append([]graph.VertexID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeSorted unions the base sorted list with additional sorted
// lists, removing duplicates.
func mergeSorted(base []graph.VertexID, extra [][]graph.VertexID) []graph.VertexID {
	all := append([]graph.VertexID(nil), base...)
	for _, l := range extra {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, v := range all {
		if i == 0 || all[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
