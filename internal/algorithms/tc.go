package algorithms

import (
	"errors"

	"adp/internal/engine"
	"adp/internal/graph"
	"adp/internal/partition"
)

const kindTCCount uint8 = 30

// sortCost is the n·log2(n) work of sorting/indexing a neighbour list.
func sortCost(n int) float64 {
	if n < 2 {
		return float64(n)
	}
	f := float64(n)
	logN := 1.0
	for m := n; m > 1; m >>= 1 {
		logN++
	}
	return f * logN
}

type tcState struct {
	exch *exchState
	// total is worker 0's aggregate; kept in State so checkpoint
	// rollback rewinds it (see cnState.total).
	total int64
}

// Snapshot deep-copies the state for engine checkpointing.
func (st *tcState) Snapshot() any {
	return &tcState{exch: st.exch.clone(), total: st.total}
}

// RunTC counts the triangles of the cluster's (undirected) graph.
// Triangle {a<b<c} is counted at the worker responsible for edge
// (a,b) after the neighbour exchange delivers full adjacency of split
// vertices (the Fig. 1(e)/(f) communication TC incurs on v-cut
// vertices). The total lands on worker 0.
func RunTC(c *engine.Cluster) (int64, *engine.Report, error) {
	g := c.Partition().Graph()
	if !g.Undirected() {
		return 0, nil, errors.New("algorithms: TC requires an undirected graph")
	}
	exch := &neighborExchange{
		list: func(adj *partition.Adj) []graph.VertexID { return adj.Out },
		needs: func(w *engine.WorkerCtx) map[graph.VertexID]bool {
			need := map[graph.VertexID]bool{}
			w.Fragment().Vertices(func(a graph.VertexID, adj *partition.Adj) {
				for _, b := range adj.Out {
					if TCLess(g, a, b) && w.ResponsibleFor(a, a, b) {
						need[a] = true
						need[b] = true
					}
				}
			})
			return need
		},
	}
	step := func(w *engine.WorkerCtx, s int, inbox []engine.Message) bool {
		switch s {
		case 0:
			w.State = &tcState{exch: exch.step0(w)}
			return false
		case 1:
			st := w.State.(*tcState)
			exch.step1(w, st.exch, inbox)
			return false
		case 2:
			st := w.State.(*tcState)
			exch.step2(w, st.exch, inbox)
			var count int64
			w.Fragment().Vertices(func(a graph.VertexID, adj *partition.Adj) {
				na := st.exch.full[a]
				if na == nil {
					return
				}
				// Preparing a vertex costs dL (edge-list scan) plus
				// dG·log(dG) (sorting/indexing its full neighbour
				// list) regardless of how many of its edges end up
				// responsible here — the α·dL term of hTC, which the
				// paper's learned model shows dominating until
				// dL·dG grows large.
				w.ChargeVertex(a, float64(len(adj.Out))+sortCost(len(na)))
				for _, b := range adj.Out {
					if !TCLess(g, a, b) || !w.ResponsibleFor(a, a, b) {
						continue
					}
					nb := st.exch.full[b]
					count += intersectOrdered(g, na, nb, b)
					// Each endpoint pays for scanning its own list:
					// a vertex's total cost is then (edges it leads)
					// × its degree — the β·dL·dG shape of hTC —
					// rather than inheriting its neighbours' degrees.
					w.ChargeVertex(a, float64(len(na)))
					w.ChargeVertex(b, float64(len(nb)))
				}
			})
			w.Send(0, engine.Message{Kind: kindTCCount, Data: []float64{float64(count)}})
			return false
		case 3:
			if w.ID() == 0 {
				st := w.State.(*tcState)
				for _, m := range inbox {
					if m.Kind == kindTCCount {
						st.total += int64(m.Data[0])
					}
				}
			}
			return true
		}
		return true
	}
	rep, err := c.Run(nil, step, 5)
	if err != nil {
		return 0, rep, err
	}
	st, _ := c.Worker(0).State.(*tcState)
	if st == nil {
		return 0, rep, nil
	}
	return st.total, rep, nil
}
