package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Panic carries a panic captured on a pool worker back to the caller
// of Run. The pool re-raises it as panic(*Panic) once every in-flight
// chunk has drained, so the first worker failure is observed exactly
// once, on the submitting goroutine, with the worker's stack attached.
type Panic struct {
	// Value is the value originally passed to panic on the worker.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error makes *Panic usable with recover-and-inspect error handling.
func (p *Panic) Error() string {
	return fmt.Sprintf("pool: worker panic: %v", p.Value)
}

// String returns the panic value with the captured worker stack.
func (p *Panic) String() string {
	return fmt.Sprintf("pool: worker panic: %v\n%s", p.Value, p.Stack)
}

// Pool is a bounded, reusable fan-out runtime for index-range
// parallelism. A Pool of k workers executes Run/RunChunks/Map calls on
// at most k goroutines total: the caller's own goroutine plus up to
// k-1 long-lived helpers that park on a channel between jobs. Chunks
// are claimed from a shared atomic cursor ("work-stealing lite"), so
// load balances dynamically without per-item goroutine spawns.
//
// A Pool with one worker runs everything on the caller's goroutine in
// ascending index order — the deterministic single-threaded mode the
// determinism tests pin engine and refiner outputs against. Because
// every Run writes result i to a caller-presized slot i, outputs are
// required to be bitwise identical across worker counts; the pool's
// tests and the engine/refine determinism tests enforce this.
//
// Nested Run calls are safe: helper handoff is non-blocking, so a
// worker that itself calls Run simply executes the inner job on its
// own goroutine when no sibling is idle. The wait graph is therefore
// acyclic and the pool cannot deadlock on itself.
type Pool struct {
	workers int
	// perItem marks the Unbounded legacy mode: one goroutine per
	// chunk of one item, kept only as a benchmark baseline.
	perItem bool

	once sync.Once
	jobs chan *job
}

// New returns a pool of the given worker count. workers <= 0 sizes the
// pool to runtime.GOMAXPROCS(0). Helper goroutines start lazily on the
// first parallel Run and persist until Close.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, jobs: make(chan *job)}
}

// Serial returns a single-worker pool: every job runs on the caller's
// goroutine in ascending index order. This is the deterministic mode
// used by tests.
func Serial() *Pool { return New(1) }

// Unbounded returns a pool that spawns one goroutine per item — the
// legacy fan-out strategy every call site used before the shared pool
// existed. It is retained solely as the baseline for the
// pooled-vs-spawn benchmarks and must not be used on hot paths.
func Unbounded() *Pool { return &Pool{perItem: true} }

// Workers returns the concurrency bound (0 for an Unbounded pool).
func (p *Pool) Workers() int {
	if p.perItem {
		return 0
	}
	return p.workers
}

// Close releases the helper goroutines. The pool must not be used
// after Close; the process-wide Default pool is never closed.
func (p *Pool) Close() {
	if p.perItem {
		return
	}
	p.once.Do(func() {}) // forbid a post-Close lazy start
	if p.jobs != nil {
		close(p.jobs)
	}
}

var (
	defaultMu   sync.Mutex
	defaultPool *Pool
)

// Default returns the process-wide shared pool, created on first use
// with GOMAXPROCS workers. Engine supersteps, parallel refiners,
// metric evaluation and the bench drivers all share it, so total
// fan-out stays bounded by one audited knob.
func Default() *Pool {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultPool = New(0)
	}
	return defaultPool
}

// SetDefaultWorkers replaces the process-wide pool with one of the
// given size (<= 0 restores GOMAXPROCS sizing). Intended for cmd-layer
// flags at startup; callers holding the previous Default pool keep a
// working (closed-helper-free) handle because the old pool is closed
// only after the swap.
func SetDefaultWorkers(workers int) {
	defaultMu.Lock()
	old := defaultPool
	defaultPool = New(workers)
	defaultMu.Unlock()
	if old != nil {
		old.Close()
	}
}

// job is one Run invocation: a shared cursor over n items that workers
// drain in chunk-sized claims.
type job struct {
	n     int
	chunk int
	fn    func(lo, hi int)
	// ctx, when non-nil, aborts further chunk claims once cancelled;
	// in-flight chunks always finish (cancellation is a barrier-level
	// contract, not a preemption).
	ctx context.Context

	next   atomic.Int64
	failed atomic.Bool
	pval   atomic.Pointer[Panic]
	wg     sync.WaitGroup
}

// work drains the cursor until the job is exhausted, cancelled, or a
// worker panicked.
func (j *job) work() {
	for !j.failed.Load() {
		if j.ctx != nil && j.ctx.Err() != nil {
			return
		}
		hi := int(j.next.Add(int64(j.chunk)))
		lo := hi - j.chunk
		if lo >= j.n {
			return
		}
		if hi > j.n {
			hi = j.n
		}
		j.call(lo, hi)
	}
}

// call executes one chunk, recording the first panic and aborting the
// remaining chunks.
func (j *job) call(lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			if j.failed.CompareAndSwap(false, true) {
				j.pval.Store(&Panic{Value: r, Stack: debug.Stack()})
			}
		}
	}()
	j.fn(lo, hi)
}

// start launches the workers-1 long-lived helpers (the caller of every
// Run is the pool's remaining worker).
func (p *Pool) start() {
	for i := 0; i < p.workers-1; i++ {
		go func() {
			for j := range p.jobs {
				j.work()
				j.wg.Done()
			}
		}()
	}
}

// Run invokes fn(i) for every i in [0, n), distributing contiguous
// index chunks over the pool's workers, and returns when all n calls
// completed. If any call panics, Run waits for in-flight chunks,
// skips unstarted ones, and re-panics with a *Panic on the caller.
//
// fn must not mutate state shared across indexes; writes belong in
// pre-sized per-index slots so the result is independent of worker
// count and chunk schedule.
func (p *Pool) Run(n int, fn func(i int)) {
	p.RunChunks(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// RunChunks is Run with caller-visible chunking: fn is invoked with
// disjoint half-open ranges [lo, hi) covering [0, n). chunk <= 0
// selects a size that yields ~8 claims per worker, balancing steal
// granularity against cursor contention; chunk = 1 forces per-item
// claims (useful when per-item cost is large and skewed).
func (p *Pool) RunChunks(n, chunk int, fn func(lo, hi int)) {
	p.runChunksCtx(nil, n, chunk, fn) // nil ctx: never returns an error
}

// RunCtx is Run with cancellation: once ctx is cancelled no further
// items start, in-flight items finish, and the ctx error is returned.
// A worker panic still re-raises as *Panic and takes precedence over
// the ctx error.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(i int)) error {
	return p.RunChunksCtx(ctx, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// RunChunksCtx is RunChunks with cancellation; see RunCtx for the
// abort contract.
func (p *Pool) RunChunksCtx(ctx context.Context, n, chunk int, fn func(lo, hi int)) error {
	return p.runChunksCtx(ctx, n, chunk, fn)
}

func (p *Pool) runChunksCtx(ctx context.Context, n, chunk int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if p.perItem {
		runPerItem(ctx, n, fn)
		return ctxErr(ctx)
	}
	if p.workers == 1 {
		return p.runSerial(ctx, n, chunk, fn)
	}
	if chunk <= 0 {
		chunk = n / (p.workers * 8)
		if chunk < 1 {
			chunk = 1
		}
	}
	j := &job{n: n, chunk: chunk, fn: fn, ctx: ctx}
	chunks := (n + chunk - 1) / chunk
	if helpers := min(p.workers, chunks) - 1; helpers > 0 {
		p.once.Do(p.start)
		for i := 0; i < helpers; i++ {
			j.wg.Add(1)
			select {
			case p.jobs <- j:
			default:
				// No helper is parked right now (they are busy or we
				// are inside a nested Run): do the work ourselves
				// rather than queueing — this keeps the wait graph
				// acyclic.
				j.wg.Done()
				i = helpers
			}
		}
	}
	j.work()
	j.wg.Wait()
	if pv := j.pval.Load(); pv != nil {
		panic(pv)
	}
	return ctxErr(ctx)
}

// runSerial is the single-worker fast path: chunks run on the caller's
// goroutine in ascending order with no job bookkeeping, so a serial
// fan-out performs zero heap allocations (the engine's steady-state
// allocation guards run against pool.Serial and rely on this). The
// panic contract is unchanged: the first chunk panic re-raises as
// *Panic and the remaining chunks are skipped.
func (p *Pool) runSerial(ctx context.Context, n, chunk int, fn func(lo, hi int)) error {
	if chunk <= 0 {
		chunk = n
	}
	for lo := 0; lo < n; lo += chunk {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		callSerial(fn, lo, hi)
	}
	return ctxErr(ctx)
}

func callSerial(fn func(lo, hi int), lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			panic(&Panic{Value: r, Stack: debug.Stack()})
		}
	}()
	fn(lo, hi)
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// runPerItem is the Unbounded legacy schedule: one goroutine per item.
func runPerItem(ctx context.Context, n int, fn func(lo, hi int)) {
	j := &job{n: n, chunk: 1, fn: fn, ctx: ctx}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if j.ctx != nil && j.ctx.Err() != nil {
				return
			}
			j.call(i, i+1)
		}(i)
	}
	wg.Wait()
	if pv := j.pval.Load(); pv != nil {
		panic(pv)
	}
}

// Map runs fn over [0, n) on p and collects the results into a
// pre-sized slice, one slot per index — the write discipline that
// makes pool output independent of worker count.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.Run(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapCtx is Map with cancellation: slots whose items never started
// (because ctx was cancelled) keep their zero value, and the ctx error
// is returned alongside the partial result.
func MapCtx[T any](p *Pool, ctx context.Context, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := p.RunCtx(ctx, n, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}
