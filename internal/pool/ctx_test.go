package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunCtxPreCancelled: a dead context runs nothing on a multi-worker
// pool and returns its error.
func TestRunCtxPreCancelled(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.RunCtx(ctx, 1000, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The submitting goroutine claims one chunk before its first ctx
	// check only if cancellation raced the claim; with a pre-cancelled
	// ctx nothing may run.
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}

// TestRunCtxCancelMidJob: after cancellation no further chunks start;
// in-flight items finish, so the executed count is a prefix-complete
// subset strictly smaller than n.
func TestRunCtxCancelMidJob(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 100_000
	var ran atomic.Int64
	err := p.RunChunksCtx(ctx, n, 1, func(lo, hi int) {
		if lo == 10 {
			cancel()
		}
		ran.Add(int64(hi - lo))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 0 || got >= n {
		t.Fatalf("ran %d of %d items, want a proper non-empty subset", got, n)
	}
}

// TestRunCtxNilAndUncancelled: a nil-free happy path returns nil error
// and covers every index exactly once.
func TestRunCtxUncancelled(t *testing.T) {
	p := New(3)
	defer p.Close()
	const n = 512
	counts := make([]atomic.Int32, n)
	if err := p.RunCtx(context.Background(), n, func(i int) { counts[i].Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, counts[i].Load())
		}
	}
}

// TestPanicPrecedenceOverCancellation: when a worker panics and the ctx
// is also cancelled, exactly one *Panic reaches the caller (panic wins
// over the error return) and the pool remains usable.
func TestPanicPrecedenceOverCancellation(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	panics := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*Panic); !ok {
					t.Fatalf("recovered %v, want *Panic", r)
				}
				panics++
			}
		}()
		_ = p.RunChunksCtx(ctx, 10_000, 1, func(lo, hi int) {
			if lo == 5 {
				cancel()
				panic("boom")
			}
		})
	}()
	if panics != 1 {
		t.Fatalf("saw %d panics, want exactly 1", panics)
	}
	// All workers released: the next job completes fully.
	var ran atomic.Int64
	p.Run(256, func(int) { ran.Add(1) })
	if ran.Load() != 256 {
		t.Fatalf("pool degraded after panic: %d/256", ran.Load())
	}
}

// TestMapCtxPartialResults: cancelled MapCtx returns the error and a
// full-length slice where unstarted slots hold zero values and started
// slots hold real results.
func TestMapCtxPartialResults(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(p, ctx, 64, func(i int) int { return i + 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 64 {
		t.Fatalf("len(out) = %d, want 64", len(out))
	}
	for i, v := range out {
		if v != 0 && v != i+1 {
			t.Fatalf("slot %d holds %d, want 0 or %d", i, v, i+1)
		}
	}
	// Uncancelled MapCtx matches Map.
	out2, err := MapCtx(p, context.Background(), 8, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out2 {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunChunksNilCtxUnchanged: the ctx-free entry points keep their
// original signature and never error internally.
func TestRunChunksNilCtxUnchanged(t *testing.T) {
	p := Serial()
	defer p.Close()
	var order []int
	p.RunChunks(6, 2, func(lo, hi int) { order = append(order, lo, hi) })
	want := []int{0, 2, 2, 4, 4, 6}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("serial chunk order = %v, want %v", order, want)
		}
	}
}

// TestUnboundedRunCtx: the legacy per-item mode honours cancellation
// too (items check ctx before running).
func TestUnboundedRunCtx(t *testing.T) {
	p := Unbounded()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.RunCtx(ctx, 64, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}
