package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// workerCounts are the pool sizes every behavioural property is
// checked under: serial, a small fixed fan-out, and the machine size.
func workerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, w := range workerCounts() {
		p := New(w)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			hits := make([]int32, n)
			p.Run(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", w, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestRunZeroAndOneItem(t *testing.T) {
	p := New(4)
	defer p.Close()
	ran := false
	p.Run(0, func(i int) { ran = true })
	if ran {
		t.Fatal("Run(0) invoked fn")
	}
	count := 0
	p.Run(1, func(i int) {
		if i != 0 {
			t.Fatalf("Run(1) got index %d", i)
		}
		count++
	})
	if count != 1 {
		t.Fatalf("Run(1) invoked fn %d times", count)
	}
}

func TestWorkersExceedItems(t *testing.T) {
	// n smaller than the worker count must still cover every index
	// once, with surplus workers left parked.
	p := New(runtime.GOMAXPROCS(0) + 7)
	defer p.Close()
	const n = 3
	hits := make([]int32, n)
	p.Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

func TestRunChunksPartitionRange(t *testing.T) {
	for _, w := range workerCounts() {
		p := New(w)
		for _, chunk := range []int{0, 1, 3, 100} {
			const n = 257
			var covered [n]int32
			p.RunChunks(n, chunk, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d)", lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d chunk=%d: index %d covered %d times", w, chunk, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestPanicPropagation(t *testing.T) {
	pools := map[string]*Pool{"serial": Serial(), "bounded": New(4), "unbounded": Unbounded()}
	for name, p := range pools {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: panic did not propagate", name)
				}
				pv, ok := r.(*Panic)
				if !ok {
					t.Fatalf("%s: recovered %T, want *Panic", name, r)
				}
				if pv.Value != "boom 7" {
					t.Fatalf("%s: panic value %v", name, pv.Value)
				}
				if len(pv.Stack) == 0 {
					t.Fatalf("%s: no worker stack captured", name)
				}
				if pv.Error() == "" || pv.String() == "" {
					t.Fatalf("%s: empty panic rendering", name)
				}
			}()
			p.Run(64, func(i int) {
				if i == 7 {
					panic("boom 7")
				}
			})
		}()
		p.Close()
	}
}

func TestPanicAbortsRemainingChunks(t *testing.T) {
	// After the first panic the pool stops claiming chunks; with
	// per-item chunks on a serial pool the abort point is exact.
	p := Serial()
	defer p.Close()
	var ran int32
	func() {
		defer func() { recover() }()
		p.RunChunks(100, 1, func(lo, hi int) {
			atomic.AddInt32(&ran, 1)
			if lo == 5 {
				panic("stop")
			}
		})
	}()
	if ran != 6 {
		t.Fatalf("serial pool ran %d chunks after panic at 5, want 6", ran)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// The contract: with results written to pre-sized slots, the
	// output is bitwise identical for every worker count. The work
	// mixes float accumulation per slot (order-sensitive if chunking
	// leaked across slots) to make schedule bugs visible.
	const n = 4096
	ref := computeSlots(Serial(), n)
	for _, w := range workerCounts() {
		p := New(w)
		for rep := 0; rep < 3; rep++ {
			got := computeSlots(p, n)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d rep=%d: slot %d = %v, want %v", w, rep, i, got[i], ref[i])
				}
			}
		}
		p.Close()
	}
}

func computeSlots(p *Pool, n int) []float64 {
	return Map(p, n, func(i int) float64 {
		s := 0.0
		for k := 1; k <= 50; k++ {
			s += 1.0 / float64(i*50+k)
		}
		return s
	})
}

func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(2)
	defer p.Close()
	var total atomic.Int64
	p.Run(8, func(i int) {
		p.Run(8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("nested runs executed %d inner items, want 64", total.Load())
	}
}

func TestPoolReuseAcrossJobs(t *testing.T) {
	// Helpers persist between jobs: after a warm-up job the goroutine
	// count must not grow linearly with the number of Run calls.
	p := New(4)
	defer p.Close()
	p.Run(128, func(i int) {})
	before := runtime.NumGoroutine()
	for r := 0; r < 50; r++ {
		p.Run(128, func(i int) {})
	}
	after := runtime.NumGoroutine()
	if after > before+4 {
		t.Fatalf("goroutines grew from %d to %d over 50 reused jobs", before, after)
	}
}

func TestWorkersAccessorAndSizing(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
	if got := Unbounded().Workers(); got != 0 {
		t.Fatalf("Unbounded().Workers() = %d, want 0", got)
	}
	if got := Serial().Workers(); got != 1 {
		t.Fatalf("Serial().Workers() = %d, want 1", got)
	}
}

func TestDefaultPoolAndResize(t *testing.T) {
	d := Default()
	if d == nil || d.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() = %v", d)
	}
	if Default() != d {
		t.Fatal("Default() not a singleton")
	}
	SetDefaultWorkers(2)
	if got := Default().Workers(); got != 2 {
		t.Fatalf("after SetDefaultWorkers(2), Workers() = %d", got)
	}
	// The pre-swap handle keeps working for in-flight holders.
	sum := 0
	Serial().Run(3, func(i int) { sum += i })
	if sum != 3 {
		t.Fatalf("serial run after swap computed %d", sum)
	}
	SetDefaultWorkers(0)
	if got := Default().Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("after SetDefaultWorkers(0), Workers() = %d", got)
	}
}

func TestUnboundedCoversAllItems(t *testing.T) {
	p := Unbounded()
	const n = 500
	hits := make([]int32, n)
	p.Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("unbounded: index %d executed %d times", i, h)
		}
	}
}

func TestMapTypesAndOrder(t *testing.T) {
	p := New(4)
	defer p.Close()
	got := Map(p, 10, func(i int) string {
		return string(rune('a' + i))
	})
	want := "abcdefghij"
	for i, s := range got {
		if s != string(want[i]) {
			t.Fatalf("Map slot %d = %q", i, s)
		}
	}
	if empty := Map(p, 0, func(i int) int { return i }); len(empty) != 0 {
		t.Fatalf("Map over 0 items returned %v", empty)
	}
}
