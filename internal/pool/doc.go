// Package pool is the repository's single bounded concurrency
// primitive: a reusable worker pool over index ranges that every
// parallel fan-out — BSP engine supersteps, the Section-5.3 parallel
// refiners, per-fragment metric evaluation, and the bench batch
// drivers — runs on instead of spawning ad-hoc goroutines.
//
// # Why a shared pool
//
// The paper's parallel refiners (ParE2H/ParV2H) and the BSP engine
// both fan out per superstep: one cost probe per batched migration
// candidate and one step call per fragment. Spawning a goroutine per
// item made the spawn count proportional to the input (thousands per
// superstep at Fig-9 scale), unbounded under concurrent benches, and
// left panics crashing the process from anonymous goroutines. The pool
// replaces that with ~GOMAXPROCS long-lived workers per process,
// chunked index claims from an atomic cursor, and first-panic capture
// re-raised on the submitting goroutine.
//
// # BSP supersteps on the pool
//
// A BSP superstep is exactly one Pool.Run: the barrier is the return
// of Run, compute is fn, and the per-index output slots are the
// "local state" workers may write. Because every site writes only
// slot i of a pre-sized slice, the memory effects of a superstep are
// a deterministic function of the input regardless of worker count or
// chunk schedule — which is what lets the engine's Report and the
// refiners' Stats stay bitwise identical between a laptop and a
// many-core CI runner (see the determinism tests).
//
// # Modes
//
//   - New(k): bounded pool, k workers (caller + k-1 parked helpers).
//   - New(0)/Default(): GOMAXPROCS-sized; Default() is the shared
//     process-wide instance, resizable once at startup via
//     SetDefaultWorkers (cmd-layer -workers flags).
//   - Serial(): one worker, caller's goroutine, ascending index
//     order — the deterministic single-threaded mode tests pin
//     against.
//   - Unbounded(): the legacy goroutine-per-item schedule, retained
//     only as the benchmark baseline.
package pool
