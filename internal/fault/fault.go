// Package fault provides deterministic fault injection for the BSP
// runtime. An Injector is armed with a Schedule of events — worker
// crashes, transient step errors, dropped or duplicated message
// batches, and simulated stragglers — each pinned to a (superstep,
// worker) coordinate. Schedules are either written out explicitly
// (Parse) or generated from a seed (Random); either way a schedule is
// a pure value, so any run under it is replayable bit for bit.
//
// The injector never consults the wall clock or global randomness:
// whether an event fires depends only on the schedule and the
// coordinates the engine asks about, which is what makes the
// engine's recovery-determinism contract testable (see DESIGN.md,
// "Fault tolerance").
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// Crash kills a worker at the start of a superstep: its step does
	// not run and the engine must roll back to the last checkpoint.
	Crash Kind = iota + 1
	// Transient is a recoverable per-step failure (poisoned input,
	// allocation failure): same recovery path as Crash, distinct class
	// for diagnostics.
	Transient
	// Drop removes one message from a delivery batch in flight; the
	// engine's reliable-delivery layer detects and redelivers.
	Drop
	// Duplicate repeats one message of a delivery batch; detected and
	// deduplicated by the same layer.
	Duplicate
	// Straggler delays a worker's step by Event.Delay of wall time.
	// It perturbs WallTime only — never the deterministic report.
	Straggler
)

// String names the kind using the Parse spelling.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Transient:
		return "err"
	case Drop:
		return "drop"
	case Duplicate:
		return "dup"
	case Straggler:
		return "slow"
	}
	return "invalid"
}

// Event is one scheduled fault.
type Event struct {
	Kind      Kind
	Superstep int
	// Worker is the faulting worker for Crash/Transient/Straggler and
	// the destination worker for Drop/Duplicate.
	Worker int
	// Index selects which message of the delivery batch a
	// Drop/Duplicate targets (taken modulo the batch length).
	Index int
	// Delay is the Straggler wall-time delay (default 1ms).
	Delay time.Duration
}

// String renders the event in the Parse grammar.
func (e Event) String() string {
	switch e.Kind {
	case Drop, Duplicate:
		return fmt.Sprintf("%s@%d:d%d#%d", e.Kind, e.Superstep, e.Worker, e.Index)
	case Straggler:
		return fmt.Sprintf("%s@%d:w%d:%s", e.Kind, e.Superstep, e.Worker, e.Delay)
	}
	return fmt.Sprintf("%s@%d:w%d", e.Kind, e.Superstep, e.Worker)
}

// Injector arms a schedule of events for one or more engine runs.
// Every event fires at most once (a crash that fired is consumed, so
// the recovery replay passes the same coordinate cleanly); Reset
// re-arms the full schedule. All methods are safe for concurrent use
// from pool workers; determinism holds because firing depends only on
// the queried coordinates, never on call order across workers.
type Injector struct {
	mu     sync.Mutex
	events []Event
	fired  []bool
}

// NewInjector arms the given schedule. The slice is copied.
func NewInjector(events ...Event) *Injector {
	inj := &Injector{events: append([]Event(nil), events...)}
	inj.fired = make([]bool, len(inj.events))
	return inj
}

// Armed reports whether any event is scheduled (fired or not).
func (inj *Injector) Armed() bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.events) > 0
}

// Schedule returns a copy of the armed schedule.
func (inj *Injector) Schedule() []Event {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Event(nil), inj.events...)
}

// Fired returns the events that have fired so far, in schedule order.
func (inj *Injector) Fired() []Event {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out []Event
	for i, f := range inj.fired {
		if f {
			out = append(out, inj.events[i])
		}
	}
	return out
}

// Reset re-arms every event, so the same injector can drive another
// identical run.
func (inj *Injector) Reset() {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.fired {
		inj.fired[i] = false
	}
}

// Clone returns a fresh injector armed with the same schedule and no
// fired events. Callers that share one schedule across concurrent
// runs clone per run so each run consumes its own copy.
func (inj *Injector) Clone() *Injector {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return NewInjector(inj.events...)
}

// take fires and consumes the first unfired event matching the
// predicate.
func (inj *Injector) take(match func(Event) bool) (Event, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i, e := range inj.events {
		if !inj.fired[i] && match(e) {
			inj.fired[i] = true
			return e, true
		}
	}
	return Event{}, false
}

// WorkerFault fires the scheduled Crash/Transient/Straggler for
// worker w at superstep s, if any. The event is consumed.
func (inj *Injector) WorkerFault(s, w int) (Event, bool) {
	if inj == nil {
		return Event{}, false
	}
	return inj.take(func(e Event) bool {
		return e.Superstep == s && e.Worker == w &&
			(e.Kind == Crash || e.Kind == Transient || e.Kind == Straggler)
	})
}

// DeliveryFault fires the scheduled Drop/Duplicate against the batch
// delivered to worker dst at superstep s, if any. The event is
// consumed.
func (inj *Injector) DeliveryFault(s, dst int) (Event, bool) {
	if inj == nil {
		return Event{}, false
	}
	return inj.take(func(e Event) bool {
		return e.Superstep == s && e.Worker == dst &&
			(e.Kind == Drop || e.Kind == Duplicate)
	})
}

// Random generates a deterministic schedule of n events from the
// seed, spread over supersteps [0, maxSuperstep) and workers
// [0, workers). The same (seed, n, workers, maxSuperstep) always
// yields the same schedule — the CLI's "-seed N -faults rand:K"
// reproducibility contract.
func Random(seed int64, n, workers, maxSuperstep int) []Event {
	if n <= 0 || workers <= 0 || maxSuperstep <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{Crash, Transient, Drop, Duplicate, Straggler}
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		e := Event{
			Kind:      kinds[rng.Intn(len(kinds))],
			Superstep: rng.Intn(maxSuperstep),
			Worker:    rng.Intn(workers),
		}
		switch e.Kind {
		case Drop, Duplicate:
			e.Index = rng.Intn(8)
		case Straggler:
			e.Delay = time.Duration(rng.Intn(3)+1) * time.Millisecond
		}
		events = append(events, e)
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].Superstep != events[b].Superstep {
			return events[a].Superstep < events[b].Superstep
		}
		return events[a].Worker < events[b].Worker
	})
	return events
}

// Parse reads a comma- or semicolon-separated schedule in the grammar
// Format/Event.String emit:
//
//	crash@S:wW    worker W crashes at superstep S
//	err@S:wW      worker W sees a transient step error at S
//	slow@S:wW[:DUR]  worker W straggles at S (DUR a Go duration, default 1ms)
//	drop@S:dD[#K] message K of the batch delivered to worker D at S is dropped
//	dup@S:dD[#K]  message K of that batch is duplicated
func Parse(spec string) ([]Event, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var events []Event
	for _, tok := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		e, err := parseOne(tok)
		if err != nil {
			return nil, fmt.Errorf("fault: bad event %q: %w", tok, err)
		}
		events = append(events, e)
	}
	return events, nil
}

func parseOne(tok string) (Event, error) {
	kind, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return Event{}, fmt.Errorf("missing '@'")
	}
	e := Event{}
	switch kind {
	case "crash":
		e.Kind = Crash
	case "err":
		e.Kind = Transient
	case "slow":
		e.Kind = Straggler
		e.Delay = time.Millisecond
	case "drop":
		e.Kind = Drop
	case "dup":
		e.Kind = Duplicate
	default:
		return Event{}, fmt.Errorf("unknown kind %q", kind)
	}
	stepStr, target, ok := strings.Cut(rest, ":")
	if !ok {
		return Event{}, fmt.Errorf("missing ':target'")
	}
	s, err := strconv.Atoi(stepStr)
	if err != nil || s < 0 {
		return Event{}, fmt.Errorf("bad superstep %q", stepStr)
	}
	e.Superstep = s
	switch e.Kind {
	case Drop, Duplicate:
		body, idx, hasIdx := strings.Cut(target, "#")
		if !strings.HasPrefix(body, "d") {
			return Event{}, fmt.Errorf("drop/dup target must be dN, got %q", target)
		}
		w, err := strconv.Atoi(body[1:])
		if err != nil || w < 0 {
			return Event{}, fmt.Errorf("bad destination %q", body)
		}
		e.Worker = w
		if hasIdx {
			k, err := strconv.Atoi(idx)
			if err != nil || k < 0 {
				return Event{}, fmt.Errorf("bad message index %q", idx)
			}
			e.Index = k
		}
	case Straggler:
		body, durStr, hasDur := strings.Cut(target, ":")
		if !strings.HasPrefix(body, "w") {
			return Event{}, fmt.Errorf("slow target must be wN, got %q", target)
		}
		w, err := strconv.Atoi(body[1:])
		if err != nil || w < 0 {
			return Event{}, fmt.Errorf("bad worker %q", body)
		}
		e.Worker = w
		if hasDur {
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return Event{}, fmt.Errorf("bad delay %q", durStr)
			}
			e.Delay = d
		}
	default:
		if !strings.HasPrefix(target, "w") {
			return Event{}, fmt.Errorf("crash/err target must be wN, got %q", target)
		}
		w, err := strconv.Atoi(target[1:])
		if err != nil || w < 0 {
			return Event{}, fmt.Errorf("bad worker %q", target)
		}
		e.Worker = w
	}
	return e, nil
}

// Format renders a schedule in the Parse grammar, one token per
// event, comma separated. Parse(Format(s)) round-trips.
func Format(events []Event) string {
	toks := make([]string, len(events))
	for i, e := range events {
		toks[i] = e.String()
	}
	return strings.Join(toks, ",")
}
