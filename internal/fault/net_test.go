package fault

import (
	"reflect"
	"testing"
	"time"
)

func TestNetInjectorSchedule(t *testing.T) {
	inj := NewNetInjector(
		NetEvent{Kind: NetDrop, N: 0},
		NetEvent{Kind: NetDup, N: 2},
		NetEvent{Kind: NetReorder, N: 3},
		NetEvent{Kind: NetDelay, N: 4, Delay: 5 * time.Millisecond},
		NetEvent{Kind: NetPartition, N: 6, Count: 3},
	)
	want := []NetAction{
		{Drop: true},                  // 0: drop
		{},                            // 1: clean
		{Dup: true},                   // 2: dup
		{Hold: true},                  // 3: reorder
		{Delay: 5 * time.Millisecond}, // 4: delay
		{},                            // 5: clean
		{Drop: true},                  // 6,7,8: partition window
		{Drop: true},
		{Drop: true},
		{}, // 9: window over
	}
	for i, w := range want {
		if got := inj.Plan(); got != w {
			t.Fatalf("send %d planned %+v, want %+v", i, got, w)
		}
	}
	if inj.Sends() != len(want) {
		t.Fatalf("Sends() = %d, want %d", inj.Sends(), len(want))
	}
}

func TestNetInjectorOverlap(t *testing.T) {
	// Multiple events on one index compose; the longest delay wins.
	inj := NewNetInjector(
		NetEvent{Kind: NetDup, N: 0},
		NetEvent{Kind: NetDelay, N: 0, Delay: time.Millisecond},
		NetEvent{Kind: NetDelay, N: 0, Delay: 3 * time.Millisecond},
	)
	if got := inj.Plan(); !got.Dup || got.Delay != 3*time.Millisecond {
		t.Fatalf("overlapping events planned %+v", got)
	}
}

func TestNetInjectorPartitionMinWindow(t *testing.T) {
	// Count below 1 still drops the targeted message.
	inj := NewNetInjector(NetEvent{Kind: NetPartition, N: 1})
	if got := inj.Plan(); got.Drop {
		t.Fatalf("send 0 planned %+v, want clean", got)
	}
	if got := inj.Plan(); !got.Drop {
		t.Fatalf("send 1 planned %+v, want drop", got)
	}
	if got := inj.Plan(); got.Drop {
		t.Fatalf("send 2 planned %+v, want clean", got)
	}
}

func TestNetInjectorNilIsTransparent(t *testing.T) {
	var inj *NetInjector
	for i := 0; i < 4; i++ {
		if got := inj.Plan(); got != (NetAction{}) {
			t.Fatalf("nil injector planned %+v", got)
		}
	}
	if inj.Sends() != 0 || inj.Events() != nil {
		t.Fatal("nil injector is not inert")
	}
}

func TestRandomNetDeterministic(t *testing.T) {
	a := RandomNet(99, 20, 500, 10*time.Millisecond)
	b := RandomNet(99, 20, 500, 10*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := RandomNet(100, 20, 500, 10*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) != 20 {
		t.Fatalf("got %d events, want 20", len(a))
	}
	seen := map[NetKind]bool{}
	for _, e := range a {
		seen[e.Kind] = true
		if e.N < 0 || e.N >= 500 {
			t.Fatalf("event %s outside horizon", e)
		}
		switch e.Kind {
		case NetPartition:
			if e.Count < 1 || e.Count > 4 {
				t.Fatalf("partition window %s out of range", e)
			}
		case NetDelay:
			if e.Delay <= 0 || e.Delay > 10*time.Millisecond {
				t.Fatalf("delay %s out of range", e)
			}
		}
	}
	for _, k := range []NetKind{NetDrop, NetDup, NetReorder, NetDelay, NetPartition} {
		if !seen[k] {
			t.Fatalf("20-event schedule never exercises %s", k)
		}
	}
	if RandomNet(1, 0, 100, 0) != nil || RandomNet(1, 5, 0, 0) != nil {
		t.Fatal("degenerate inputs should produce no schedule")
	}
}

func TestNetEventString(t *testing.T) {
	cases := []struct {
		e    NetEvent
		want string
	}{
		{NetEvent{Kind: NetDrop, N: 3}, "netdrop@3"},
		{NetEvent{Kind: NetDup, N: 0}, "netdup@0"},
		{NetEvent{Kind: NetReorder, N: 7}, "netreorder@7"},
		{NetEvent{Kind: NetDelay, N: 2, Delay: time.Millisecond}, "netdelay@2:1ms"},
		{NetEvent{Kind: NetPartition, N: 5, Count: 4}, "netpart@5:4"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("%+v renders %q, want %q", tc.e, got, tc.want)
		}
	}
}
