package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// FromFlag interprets a -faults command-line value: either an explicit
// schedule in the Parse grammar ("crash@1:w0,drop@2:d1#0"), or
// "rand:N", which draws N events from seed across the given worker and
// superstep ranges. An empty spec yields a nil schedule (no
// injection).
func FromFlag(spec string, seed int64, workers, maxSuperstep int) ([]Event, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if rest, ok := strings.CutPrefix(spec, "rand:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("fault: bad spec %q: want rand:N with N > 0", spec)
		}
		return Random(seed, n, workers, maxSuperstep), nil
	}
	return Parse(spec)
}
