package fault

import (
	"errors"
	"testing"
)

func TestDiskInjectorShortWrite(t *testing.T) {
	inj := NewDiskInjector(DiskEvent{Kind: ShortWrite, N: 2, Bytes: 5})
	for i := 0; i < 2; i++ {
		if allow, err := inj.BeforeWrite(100); err != nil || allow != 100 {
			t.Fatalf("write %d: allow=%d err=%v", i, allow, err)
		}
	}
	allow, err := inj.BeforeWrite(100)
	if !errors.Is(err, ErrDiskFault) {
		t.Fatalf("op 2: err=%v, want ErrDiskFault", err)
	}
	if allow != 5 {
		t.Fatalf("op 2: surviving prefix %d, want 5", allow)
	}
	// Later writes proceed: a short write is transient, not a crash.
	if allow, err := inj.BeforeWrite(7); err != nil || allow != 7 {
		t.Fatalf("op 3: allow=%d err=%v", allow, err)
	}
	if inj.Writes() != 4 {
		t.Fatalf("counted %d writes, want 4", inj.Writes())
	}
}

func TestDiskInjectorShortWriteClamped(t *testing.T) {
	inj := NewDiskInjector(DiskEvent{Kind: ShortWrite, N: 0, Bytes: 50})
	// The surviving prefix can never exceed the attempted write.
	if allow, err := inj.BeforeWrite(10); !errors.Is(err, ErrDiskFault) || allow != 10 {
		t.Fatalf("allow=%d err=%v", allow, err)
	}
}

func TestDiskInjectorSyncErr(t *testing.T) {
	inj := NewDiskInjector(DiskEvent{Kind: SyncErr, N: 1})
	if err := inj.BeforeSync(); err != nil {
		t.Fatal(err)
	}
	if err := inj.BeforeSync(); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("sync 1: err=%v, want ErrDiskFault", err)
	}
	if err := inj.BeforeSync(); err != nil {
		t.Fatalf("sync 2 after transient failure: %v", err)
	}
}

func TestDiskInjectorCrash(t *testing.T) {
	inj := NewDiskInjector(DiskEvent{Kind: CrashWrite, N: 1, Bytes: 3})
	if allow, err := inj.BeforeWrite(10); err != nil || allow != 10 {
		t.Fatalf("write 0: allow=%d err=%v", allow, err)
	}
	allow, err := inj.BeforeWrite(10)
	if !errors.Is(err, ErrCrashed) || allow != 3 {
		t.Fatalf("crash write: allow=%d err=%v", allow, err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not marked crashed")
	}
	// A dead process issues no more io: everything fails from here on.
	if _, err := inj.BeforeWrite(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write allowed: %v", err)
	}
	if err := inj.BeforeSync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync allowed: %v", err)
	}
}

func TestDiskInjectorNilIsTransparent(t *testing.T) {
	var inj *DiskInjector
	if allow, err := inj.BeforeWrite(42); err != nil || allow != 42 {
		t.Fatalf("nil injector interfered: allow=%d err=%v", allow, err)
	}
	if err := inj.BeforeSync(); err != nil {
		t.Fatal(err)
	}
	if inj.Crashed() {
		t.Fatal("nil injector crashed")
	}
}
