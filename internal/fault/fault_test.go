package fault

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestParseFormatRoundTrip(t *testing.T) {
	specs := []string{
		"crash@3:w1",
		"err@0:w0",
		"slow@2:w3:5ms",
		"drop@1:d2#4",
		"dup@7:d0#0",
		"crash@3:w1,err@4:w0,drop@5:d1#2,dup@6:d2#0,slow@7:w2:1ms",
	}
	for _, spec := range specs {
		events, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		got := Format(events)
		events2, err := Parse(got)
		if err != nil {
			t.Fatalf("Parse(Format(%q)) = Parse(%q): %v", spec, got, err)
		}
		if !reflect.DeepEqual(events, events2) {
			t.Fatalf("round trip changed schedule: %v vs %v", events, events2)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	events, err := Parse("slow@1:w2, drop@3:d4; dup@5:d6")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}
	if events[0].Delay != time.Millisecond {
		t.Fatalf("slow default delay = %v, want 1ms", events[0].Delay)
	}
	if events[1].Index != 0 || events[2].Index != 0 {
		t.Fatal("drop/dup default index should be 0")
	}
	if got, err := Parse("  "); err != nil || got != nil {
		t.Fatalf("blank spec should parse to nil schedule, got %v, %v", got, err)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"boom@1:w0",     // unknown kind
		"crash@1",       // missing target
		"crash@x:w0",    // bad superstep
		"crash@-1:w0",   // negative superstep
		"crash@1:d0",    // wrong target prefix for crash
		"drop@1:w0",     // wrong target prefix for drop
		"drop@1:d0#x",   // bad message index
		"slow@1:w0:abc", // bad duration
		"crash1:w0",     // missing '@'
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(42, 10, 4, 20)
	b := Random(42, 10, 4, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 10 {
		t.Fatalf("generated %d events, want 10", len(a))
	}
	c := Random(43, 10, 4, 20)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i, e := range a {
		if e.Superstep < 0 || e.Superstep >= 20 || e.Worker < 0 || e.Worker >= 4 {
			t.Fatalf("event %d out of range: %v", i, e)
		}
		if i > 0 && a[i-1].Superstep > e.Superstep {
			t.Fatalf("schedule not sorted by superstep at %d", i)
		}
	}
	// A random schedule must survive the textual round trip too.
	parsed, err := Parse(Format(a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, parsed) {
		t.Fatal("random schedule did not survive Format/Parse")
	}
	if Random(1, 0, 4, 20) != nil || Random(1, 5, 0, 20) != nil {
		t.Fatal("degenerate parameters should yield a nil schedule")
	}
}

func TestInjectorOneShotConsumption(t *testing.T) {
	inj := NewInjector(
		Event{Kind: Crash, Superstep: 2, Worker: 1},
		Event{Kind: Drop, Superstep: 2, Worker: 1, Index: 3},
	)
	if !inj.Armed() {
		t.Fatal("armed injector reports unarmed")
	}
	// Wrong coordinates never fire.
	if _, ok := inj.WorkerFault(1, 1); ok {
		t.Fatal("fired at wrong superstep")
	}
	if _, ok := inj.WorkerFault(2, 0); ok {
		t.Fatal("fired at wrong worker")
	}
	// WorkerFault only sees Crash; DeliveryFault only sees Drop.
	e, ok := inj.WorkerFault(2, 1)
	if !ok || e.Kind != Crash {
		t.Fatalf("WorkerFault(2,1) = %v, %v", e, ok)
	}
	if _, ok := inj.WorkerFault(2, 1); ok {
		t.Fatal("crash fired twice")
	}
	e, ok = inj.DeliveryFault(2, 1)
	if !ok || e.Kind != Drop || e.Index != 3 {
		t.Fatalf("DeliveryFault(2,1) = %v, %v", e, ok)
	}
	if _, ok := inj.DeliveryFault(2, 1); ok {
		t.Fatal("drop fired twice")
	}
	if got := len(inj.Fired()); got != 2 {
		t.Fatalf("Fired() has %d events, want 2", got)
	}
	// Reset re-arms everything.
	inj.Reset()
	if got := len(inj.Fired()); got != 0 {
		t.Fatalf("Fired() after Reset has %d events", got)
	}
	if _, ok := inj.WorkerFault(2, 1); !ok {
		t.Fatal("crash did not re-arm after Reset")
	}
}

func TestInjectorClone(t *testing.T) {
	inj := NewInjector(Event{Kind: Transient, Superstep: 0, Worker: 0})
	if _, ok := inj.WorkerFault(0, 0); !ok {
		t.Fatal("event did not fire")
	}
	cl := inj.Clone()
	if len(cl.Fired()) != 0 {
		t.Fatal("clone inherited fired state")
	}
	if _, ok := cl.WorkerFault(0, 0); !ok {
		t.Fatal("clone is not re-armed")
	}
	// Clone consumption must not affect the original.
	if len(inj.Fired()) != 1 {
		t.Fatal("original lost its fired state")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var inj *Injector
	if inj.Armed() {
		t.Fatal("nil injector armed")
	}
	if _, ok := inj.WorkerFault(0, 0); ok {
		t.Fatal("nil injector fired")
	}
	if _, ok := inj.DeliveryFault(0, 0); ok {
		t.Fatal("nil injector fired")
	}
	if inj.Schedule() != nil || inj.Fired() != nil || inj.Clone() != nil {
		t.Fatal("nil injector leaked state")
	}
	inj.Reset() // must not panic
}

// TestInjectorConcurrentProbe: concurrent probes at the same coordinate
// fire each event exactly once (the engine probes from pool workers).
func TestInjectorConcurrentProbe(t *testing.T) {
	inj := NewInjector(Event{Kind: Crash, Superstep: 0, Worker: 0})
	var fired int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := inj.WorkerFault(0, 0); ok {
				mu.Lock()
				fired++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("event fired %d times under concurrency", fired)
	}
}
