package fault

import (
	"errors"
	"fmt"
	"sync"
)

// Disk faults extend the injector family from the BSP message plane to
// the storage plane: the crash-consistent store (internal/store)
// threads every file write and fsync through a DiskInjector, so torn
// frames, failed syncs, and mid-write process deaths are deterministic,
// replayable events rather than rare hardware accidents. Like the BSP
// Injector, a DiskInjector never consults the wall clock or global
// randomness: whether an operation faults depends only on the armed
// schedule and the operation counters.

// ErrDiskFault is the sentinel wrapped by every injected disk error
// that is NOT a simulated process death; callers distinguish injected
// faults from real I/O errors with errors.Is.
var ErrDiskFault = errors.New("injected disk fault")

// ErrCrashed is returned by every operation after a CrashWrite event
// fires: the process is "dead" and the store must be reopened (in a
// test, on the bytes that actually reached the file) to make progress.
var ErrCrashed = errors.New("injected crash: process considered dead")

// DiskKind enumerates the injectable disk-fault classes.
type DiskKind uint8

const (
	// ShortWrite lets only Bytes bytes of the targeted write through,
	// then fails the call. The store sees the error and poisons itself;
	// the on-disk tail is a torn frame for recovery to truncate.
	ShortWrite DiskKind = iota + 1
	// SyncErr fails the targeted fsync. Data may or may not be durable
	// — exactly the ambiguity a real EIO leaves behind.
	SyncErr
	// CrashWrite lets Bytes bytes of the targeted write through and
	// then kills the process model: the write fails with ErrCrashed and
	// every later operation fails the same way.
	CrashWrite
)

// String names the kind using the flag spelling.
func (k DiskKind) String() string {
	switch k {
	case ShortWrite:
		return "shortw"
	case SyncErr:
		return "syncerr"
	case CrashWrite:
		return "crashw"
	}
	return "invalid"
}

// DiskEvent is one scheduled disk fault, pinned to an operation
// counter: the Nth write (ShortWrite/CrashWrite) or the Nth fsync
// (SyncErr) issued through the injector, counting from 0.
type DiskEvent struct {
	Kind DiskKind
	// N is the 0-based index of the targeted operation within its class
	// (write ops for ShortWrite/CrashWrite, sync ops for SyncErr).
	N int
	// Bytes is how many bytes of the targeted write survive before the
	// fault (clamped to the write's length).
	Bytes int
}

// String renders the event as kind@N[:bytes].
func (e DiskEvent) String() string {
	if e.Kind == SyncErr {
		return fmt.Sprintf("%s@%d", e.Kind, e.N)
	}
	return fmt.Sprintf("%s@%d:%d", e.Kind, e.N, e.Bytes)
}

// DiskInjector arms a schedule of disk faults for one store instance.
// All methods are safe for concurrent use; determinism holds because
// firing depends only on the armed schedule and the operation
// counters, and the store issues its writes in a fixed order.
type DiskInjector struct {
	mu      sync.Mutex
	events  []DiskEvent
	writes  int
	syncs   int
	crashed bool
}

// NewDiskInjector arms the given schedule. The slice is copied.
func NewDiskInjector(events ...DiskEvent) *DiskInjector {
	return &DiskInjector{events: append([]DiskEvent(nil), events...)}
}

// Crashed reports whether a CrashWrite event has fired.
func (d *DiskInjector) Crashed() bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Writes returns the number of write operations observed so far —
// handy for pinning a follow-up schedule to a recorded run.
func (d *DiskInjector) Writes() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// BeforeWrite consults the schedule for the next write of length n.
// It returns how many bytes the caller should actually write and the
// error the caller must return after doing so (nil for a clean write).
func (d *DiskInjector) BeforeWrite(n int) (allow int, err error) {
	if d == nil {
		return n, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrCrashed
	}
	idx := d.writes
	d.writes++
	for _, e := range d.events {
		if e.N != idx {
			continue
		}
		switch e.Kind {
		case ShortWrite:
			b := e.Bytes
			if b > n {
				b = n
			}
			return b, fmt.Errorf("short write after %d of %d bytes: %w", b, n, ErrDiskFault)
		case CrashWrite:
			d.crashed = true
			b := e.Bytes
			if b > n {
				b = n
			}
			return b, ErrCrashed
		}
	}
	return n, nil
}

// BeforeSync consults the schedule for the next fsync; a non-nil error
// means the sync must fail without reaching the disk.
func (d *DiskInjector) BeforeSync() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	idx := d.syncs
	d.syncs++
	for _, e := range d.events {
		if e.Kind == SyncErr && e.N == idx {
			return fmt.Errorf("fsync failed: %w", ErrDiskFault)
		}
	}
	return nil
}
