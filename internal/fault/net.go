package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Network faults extend the injector family to the replication plane:
// the WAL-shipping transport (internal/replica) consults a NetInjector
// before every message it puts on the wire, so dropped, duplicated,
// reordered and delayed frames — and whole partition windows — are
// deterministic, replayable events. Like the BSP and disk injectors, a
// NetInjector never consults the wall clock or global randomness:
// whether a message faults depends only on the armed schedule and the
// per-injector send counter. (NetDelay perturbs delivery *timing*, like
// the BSP Straggler, but which message is delayed is still pinned.)

// NetKind enumerates the injectable network-fault classes.
type NetKind uint8

const (
	// NetDrop silently discards the targeted message.
	NetDrop NetKind = iota + 1
	// NetDup delivers the targeted message twice.
	NetDup
	// NetReorder holds the targeted message back and delivers it after
	// the next delivered message on the same link.
	NetReorder
	// NetDelay delivers the targeted message after Delay.
	NetDelay
	// NetPartition discards Count consecutive messages starting at the
	// targeted one — a link outage window.
	NetPartition
)

// String names the kind using the flag spelling.
func (k NetKind) String() string {
	switch k {
	case NetDrop:
		return "netdrop"
	case NetDup:
		return "netdup"
	case NetReorder:
		return "netreorder"
	case NetDelay:
		return "netdelay"
	case NetPartition:
		return "netpart"
	}
	return "invalid"
}

// NetEvent is one scheduled network fault, pinned to the 0-based index
// of a message sent through the injector's link.
type NetEvent struct {
	Kind NetKind
	// N is the 0-based send index of the targeted message.
	N int
	// Count is the partition window length (NetPartition only; minimum 1).
	Count int
	// Delay is the delivery delay (NetDelay only).
	Delay time.Duration
}

// String renders the event as kind@N, kind@N:count or kind@N:delay.
func (e NetEvent) String() string {
	switch e.Kind {
	case NetPartition:
		return fmt.Sprintf("%s@%d:%d", e.Kind, e.N, e.Count)
	case NetDelay:
		return fmt.Sprintf("%s@%d:%s", e.Kind, e.N, e.Delay)
	}
	return fmt.Sprintf("%s@%d", e.Kind, e.N)
}

// NetAction tells a link what to do with one outgoing message.
type NetAction struct {
	// Drop discards the message entirely (also covers partition windows).
	Drop bool
	// Dup delivers the message twice.
	Dup bool
	// Hold delays the message until the next delivered message has been
	// enqueued, reordering the two.
	Hold bool
	// Delay postpones delivery by this much (0 = immediate).
	Delay time.Duration
}

// NetInjector arms a schedule of network faults for one direction of a
// replication link. All methods are safe for concurrent use; a nil
// injector passes every message through untouched.
type NetInjector struct {
	mu     sync.Mutex
	events []NetEvent
	sends  int
}

// NewNetInjector arms the given schedule. The slice is copied.
func NewNetInjector(events ...NetEvent) *NetInjector {
	return &NetInjector{events: append([]NetEvent(nil), events...)}
}

// Plan consumes the next send index and returns the action the link
// must apply to that message.
func (n *NetInjector) Plan() NetAction {
	if n == nil {
		return NetAction{}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := n.sends
	n.sends++
	var act NetAction
	for _, e := range n.events {
		switch e.Kind {
		case NetPartition:
			cnt := e.Count
			if cnt < 1 {
				cnt = 1
			}
			if idx >= e.N && idx < e.N+cnt {
				act.Drop = true
			}
		case NetDrop:
			if e.N == idx {
				act.Drop = true
			}
		case NetDup:
			if e.N == idx {
				act.Dup = true
			}
		case NetReorder:
			if e.N == idx {
				act.Hold = true
			}
		case NetDelay:
			if e.N == idx && e.Delay > act.Delay {
				act.Delay = e.Delay
			}
		}
	}
	return act
}

// Sends returns the number of messages planned so far — handy for
// pinning a follow-up schedule to a recorded run.
func (n *NetInjector) Sends() int {
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sends
}

// Events returns a copy of the armed schedule, for logging failures.
func (n *NetInjector) Events() []NetEvent {
	if n == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]NetEvent(nil), n.events...)
}

// RandomNet derives a reproducible schedule of count events spread over
// the first horizon sends of a link. Partitions get small windows and
// delays stay under maxDelay so chaos runs terminate; every class is
// exercised when count permits.
func RandomNet(seed int64, count, horizon int, maxDelay time.Duration) []NetEvent {
	if count <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []NetKind{NetDrop, NetDup, NetReorder, NetDelay, NetPartition}
	events := make([]NetEvent, 0, count)
	for i := 0; i < count; i++ {
		e := NetEvent{Kind: kinds[i%len(kinds)], N: rng.Intn(horizon)}
		switch e.Kind {
		case NetPartition:
			e.Count = 1 + rng.Intn(4)
		case NetDelay:
			if maxDelay > 0 {
				e.Delay = time.Duration(1 + rng.Int63n(int64(maxDelay)))
			}
		}
		events = append(events, e)
	}
	return events
}
