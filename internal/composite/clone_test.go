package composite

import (
	"testing"

	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

func buildTwoPartComposite(t *testing.T) *Composite {
	t.Helper()
	g := testGraph()
	p1, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 2) % 3
	}
	p2, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCloneIsDeepAndEqual: a clone is bitwise-equal state over the
// same graph, and mutating either side never leaks into the other —
// the isolation the serving plane's epoch snapshots rest on.
func TestCloneIsDeepAndEqual(t *testing.T) {
	c := buildTwoPartComposite(t)
	snap := c.Clone()
	if snap.Partition(0).Graph() != c.Partition(0).Graph() {
		t.Fatal("clone does not share the immutable graph")
	}
	if err := c.EqualState(snap); err != nil {
		t.Fatalf("fresh clone diverges: %v", err)
	}
	if err := snap.ValidateIndex(); err != nil {
		t.Fatalf("clone index invalid: %v", err)
	}

	// Mutate the original: insert a fresh edge and delete a live one.
	g := c.Partition(0).Graph()
	nv := graph.VertexID(g.NumVertices())
	if err := c.InsertEdge(nv-1, nv-2, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	var du, dv graph.VertexID
	found := false
	g.Edges(func(s, d graph.VertexID) bool {
		du, dv, found = s, d, true
		return false
	})
	if !found {
		t.Fatal("test graph has no edges")
	}
	if !c.DeleteEdge(du, dv) {
		t.Fatalf("edge (%d,%d) not deletable", du, dv)
	}

	// The clone must still equal a second pristine build.
	pristine := buildTwoPartComposite(t)
	if err := snap.EqualState(pristine); err != nil {
		t.Fatalf("clone changed when the original was mutated: %v", err)
	}
	if err := c.EqualState(pristine); err == nil {
		t.Fatal("original should have diverged from pristine after mutation")
	}
	// And mutating the clone must not touch the (already mutated)
	// original's state.
	before := c.StorageArcs()
	if err := snap.InsertEdge(nv-3, nv-4, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if c.StorageArcs() != before {
		t.Fatal("mutating the clone changed the original's storage")
	}
	if err := snap.ValidateIndex(); err != nil {
		t.Fatalf("mutated clone index invalid: %v", err)
	}
}
