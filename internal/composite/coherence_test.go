package composite

import (
	"math/rand"
	"testing"

	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
)

// The composite's contract is coherence: however inserts and deletes
// interleave, all k bundled partitions describe the same edge set and
// the arc index stays exact. This property test drives a long seeded
// random interleaving — including deliberate no-op deletes and repeat
// inserts — and re-checks both invariants after every single step.

// arcSet collects the distinct arcs a partition stores (union over
// fragments, replicas deduplicated).
func arcSet(p *partition.Partition) map[uint64]bool {
	set := map[uint64]bool{}
	for i := 0; i < p.NumFragments(); i++ {
		p.Fragment(i).Vertices(func(v graph.VertexID, adj *partition.Adj) {
			for _, w := range adj.Out {
				set[uint64(v)<<32|uint64(w)] = true
			}
		})
	}
	return set
}

func TestCoherenceUnderRandomInterleavings(t *testing.T) {
	g := testGraph()
	p1, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 2) % 3
	}
	p2, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}

	steps := 400
	if testing.Short() {
		steps = 120
	}
	rng := rand.New(rand.NewSource(97))
	live := arcSet(c.Partition(0))
	var liveList []uint64
	for k := range live {
		liveList = append(liveList, k)
	}
	nv := uint32(g.NumVertices())

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert a fresh edge
			u, v := rng.Uint32()%nv, rng.Uint32()%nv
			if u == v || live[uint64(u)<<32|uint64(v)] {
				step--
				continue
			}
			dest := []int{rng.Intn(c.N()), rng.Intn(c.N())}
			if err := c.InsertEdge(graph.VertexID(u), graph.VertexID(v), dest); err != nil {
				t.Fatalf("step %d: insert (%d,%d): %v", step, u, v, err)
			}
			live[uint64(u)<<32|uint64(v)] = true
			liveList = append(liveList, uint64(u)<<32|uint64(v))
		case op < 7: // delete a live edge
			if len(liveList) == 0 {
				step--
				continue
			}
			i := rng.Intn(len(liveList))
			k := liveList[i]
			liveList[i] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			delete(live, k)
			if !c.DeleteEdge(graph.VertexID(k>>32), graph.VertexID(uint32(k))) {
				t.Fatalf("step %d: live edge (%d,%d) not found", step, k>>32, uint32(k))
			}
		case op < 8: // re-insert a live edge (must be a coherent no-op)
			if len(liveList) == 0 {
				step--
				continue
			}
			k := liveList[rng.Intn(len(liveList))]
			dest := []int{rng.Intn(c.N()), rng.Intn(c.N())}
			if err := c.InsertEdge(graph.VertexID(k>>32), graph.VertexID(uint32(k)), dest); err != nil {
				t.Fatalf("step %d: repeat insert: %v", step, err)
			}
		default: // delete an absent edge (must report not-found, change nothing)
			u, v := rng.Uint32()%nv, rng.Uint32()%nv
			if live[uint64(u)<<32|uint64(v)] {
				step--
				continue
			}
			if c.DeleteEdge(graph.VertexID(u), graph.VertexID(v)) {
				t.Fatalf("step %d: absent edge (%d,%d) reported deleted", step, u, v)
			}
		}

		if err := c.ValidateIndex(); err != nil {
			t.Fatalf("step %d: index invalid: %v", step, err)
		}
		ref := arcSet(c.Partition(0))
		if len(ref) != len(live) {
			t.Fatalf("step %d: partition 0 holds %d arcs, live set has %d", step, len(ref), len(live))
		}
		for k := range ref {
			if !live[k] {
				t.Fatalf("step %d: partition 0 holds untracked arc (%d,%d)", step, k>>32, uint32(k))
			}
		}
		for j := 1; j < c.K(); j++ {
			other := arcSet(c.Partition(j))
			if len(other) != len(ref) {
				t.Fatalf("step %d: partition %d holds %d arcs, partition 0 holds %d", step, j, len(other), len(ref))
			}
			for k := range other {
				if !ref[k] {
					t.Fatalf("step %d: partition %d holds arc (%d,%d) that partition 0 lacks", step, j, k>>32, uint32(k))
				}
			}
		}
	}
}
