package composite

import (
	"time"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/refine"
)

// MV2H builds a composite hybrid partition for the k algorithms
// modelled by models from the vertex-cut partition base (Section 6.3).
// The unit of assignment is a vertex copy with its base-local arc set
// (v, Evi); after assignment each target partition gets a VMerge sweep
// (turning v-cut nodes into e-cut nodes within budget) and MAssign.
// The input partition is not modified.
func MV2H(base *partition.Partition, models []costmodel.CostModel, opts Options) (*Composite, *BuildStats, error) {
	b := newBuilder(base, models)
	b.naiveDest = opts.NaiveDest
	start := time.Now()

	// Init: keep each base copy in place for every algorithm whose
	// budget allows, growing the core.
	for i := 0; i < b.n; i++ {
		for _, v := range b.bfsOrderCached(i) {
			if !isComputeCopy(base, i, v) {
				continue
			}
			shared := 0
			for j := range b.parts {
				if b.fitsLocal(j, i, i, v) {
					b.assignLocal(j, i, i, v)
					shared++
				}
			}
			if shared == len(b.parts) {
				b.stats.InitShared++
			}
		}
	}

	b.rebuildTrackers()

	// VAssign: route leftover copies with the GetDest greedy cover.
	for i := 0; i < b.n; i++ {
		src := i
		for _, v := range b.bfsOrderCached(i) {
			if !isComputeCopy(base, i, v) {
				continue
			}
			b.vAssignLocal(src, v)
		}
	}

	b.rebuildTrackers()

	// Residuals: split edge by edge.
	for j := range b.parts {
		for i := 0; i < b.n; i++ {
			for _, v := range base.Fragment(i).SortedVertices() {
				if !isComputeCopy(base, i, v) || b.localAssigned(j, i, v) {
					continue
				}
				b.eAssign(j, v, localArcs(base, i, v))
				b.markLocal(j, i, v)
			}
		}
	}

	// VMerge + MAssign per algorithm.
	for j, p := range b.parts {
		b.stats.Merged += refine.VMergeSweep(p, b.models[j], b.budgets[j])
		refine.MAssignOnly(p, b.models[j])
	}
	b.stats.Total = time.Since(start)

	comp, err := New(b.g, b.parts)
	if err != nil {
		return nil, nil, err
	}
	return comp, b.stats, nil
}

// isComputeCopy reports whether the copy of v in base fragment i
// carries computation (e-cut node or v-cut node).
func isComputeCopy(base *partition.Partition, i int, v graph.VertexID) bool {
	s := base.Status(i, v)
	return s == partition.ECutNode || s == partition.VCutNode
}

func (b *builder) localAssigned(j, i int, v graph.VertexID) bool {
	return b.assignedCopy(j)[copyKey(i, v)]
}

func (b *builder) markLocal(j, i int, v graph.VertexID) {
	b.assignedCopy(j)[copyKey(i, v)] = true
}

func copyKey(i int, v graph.VertexID) uint64 { return uint64(i)<<32 | uint64(v) }

// assignedCopy lazily materialises the per-copy assignment set for
// algorithm j (stored beside the per-vertex map used by ME2H).
func (b *builder) assignedCopy(j int) map[uint64]bool {
	if b.copyAssigned == nil {
		b.copyAssigned = make([]map[uint64]bool, len(b.parts))
	}
	if b.copyAssigned[j] == nil {
		b.copyAssigned[j] = map[uint64]bool{}
	}
	return b.copyAssigned[j]
}

// fitsLocal probes ChAj(F^j_x ∪ (v,Evi)) ≤ Bj for base copy (i,v).
func (b *builder) fitsLocal(j, i, x int, v graph.VertexID) bool {
	adj := b.base.Fragment(i).Adjacency(v)
	if adj == nil {
		return true
	}
	dstAdj := b.parts[j].Fragment(x).Adjacency(v)
	in, out := len(adj.In), len(adj.Out)
	if dstAdj != nil {
		in += len(dstAdj.In)
		out += len(dstAdj.Out)
	}
	h := b.trs[j].HypotheticalComp(v, in, out, b.base.Replication(v), !b.base.IsComplete(i, v))
	delta := h - b.trs[j].Contribution(x, v)
	return b.trs[j].Comp(x)+delta <= b.budgets[j]
}

// assignLocal places base copy (i,v) — its local arc set — into
// fragment x of partition j.
func (b *builder) assignLocal(j, i, x int, v graph.VertexID) {
	p := b.parts[j]
	adj := b.base.Fragment(i).Adjacency(v)
	if adj != nil {
		for _, w := range adj.Out {
			p.AddArc(x, v, w)
		}
		for _, w := range adj.In {
			p.AddArc(x, w, v)
		}
	}
	if adj == nil || adj.LocalDegree() == 0 {
		p.AddVertex(x, v)
	}
	b.markLocal(j, i, v)
	// Light refresh; see assignWhole.
	b.trs[j].Refresh(v)
	b.stats.Assigned++
}

// vAssignLocal is GetDest for a base copy.
func (b *builder) vAssignLocal(i int, v graph.VertexID) {
	var ov []int
	for j := range b.parts {
		if !b.localAssigned(j, i, v) {
			ov = append(ov, j)
		}
	}
	if b.naiveDest {
		for _, j := range ov {
			for x := 0; x < b.n; x++ {
				if b.fitsLocal(j, i, x, v) {
					b.assignLocal(j, i, x, v)
					break
				}
			}
		}
		return
	}
	for len(ov) > 0 {
		bestX, bestCover := -1, 0
		for _, x := range b.fragOrder(i) {
			cover := 0
			for _, j := range ov {
				if b.fitsLocal(j, i, x, v) {
					cover++
				}
			}
			if cover > bestCover {
				bestX, bestCover = x, cover
			}
		}
		if bestX < 0 {
			// See vAssign: route whole copies to the cheapest fragment
			// unless the copy alone blows the budget.
			for _, j := range ov {
				x := b.argminComp(j)
				if b.fitsLocal(j, i, x, v) || b.localCost(j, i, v) <= 0.25*b.budgets[j] {
					b.assignLocal(j, i, x, v)
				}
			}
			return
		}
		var rest []int
		for _, j := range ov {
			if b.fitsLocal(j, i, bestX, v) {
				b.assignLocal(j, i, bestX, v)
			} else {
				rest = append(rest, j)
			}
		}
		ov = rest
	}
}

// localCost is base copy (i,v)'s hypothetical contribution under
// model j.
func (b *builder) localCost(j, i int, v graph.VertexID) float64 {
	adj := b.base.Fragment(i).Adjacency(v)
	if adj == nil {
		return 0
	}
	return b.trs[j].HypotheticalComp(v, len(adj.In), len(adj.Out), b.base.Replication(v), !b.base.IsComplete(i, v))
}

// localArcs lists the base-local incident arcs of copy (i,v),
// canonical single direction for undirected graphs.
func localArcs(base *partition.Partition, i int, v graph.VertexID) []arcT {
	adj := base.Fragment(i).Adjacency(v)
	if adj == nil {
		return nil
	}
	g := base.Graph()
	var arcs []arcT
	for _, w := range adj.Out {
		if g.Undirected() && v > w {
			continue
		}
		arcs = append(arcs, arcT{v, w})
	}
	for _, w := range adj.In {
		if g.Undirected() {
			if w < v {
				arcs = append(arcs, arcT{w, v})
			}
			continue
		}
		arcs = append(arcs, arcT{w, v})
	}
	return arcs
}
