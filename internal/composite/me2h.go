package composite

import (
	"sort"
	"time"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/refine"
)

// BuildStats reports what a composite build did.
type BuildStats struct {
	Budgets    []float64
	InitShared int // vertices placed identically for every algorithm by Init
	Assigned   int // whole-vertex VAssign placements
	SplitEdges int // per-edge EAssign placements
	Merged     int // MV2H VMerge merges
	Total      time.Duration
}

// Options tunes a composite build.
type Options struct {
	// NaiveDest disables the GetDest greedy set cover: each algorithm
	// independently takes the first fragment that fits, scattering
	// replicas. The fc ablation target.
	NaiveDest bool
}

// ME2H builds a composite hybrid partition for the k algorithms
// modelled by models from the edge-cut partition base (Fig. 6). The
// input partition is not modified.
func ME2H(base *partition.Partition, models []costmodel.CostModel, opts Options) (*Composite, *BuildStats, error) {
	b := newBuilder(base, models)
	b.naiveDest = opts.NaiveDest
	start := time.Now()

	// Init (Fig. 7): per input fragment, walk e-cut nodes in BFS order
	// and keep each one in place for every algorithm whose budget
	// allows — growing the shared core Ci.
	for i := 0; i < b.n; i++ {
		for _, v := range b.bfsOrderCached(i) {
			if base.Status(i, v) != partition.ECutNode {
				continue
			}
			shared := 0
			for j := range b.parts {
				if b.fitsWhole(j, i, v) {
					b.assignWhole(j, i, v)
					shared++
				}
			}
			if shared == len(b.parts) {
				b.stats.InitShared++
			}
		}
	}

	b.rebuildTrackers()

	// VAssign (lines 8-13): route each leftover candidate for the
	// algorithms that still need it, minimising the number of distinct
	// destinations via the GetDest greedy set cover.
	for i := 0; i < b.n; i++ {
		for _, v := range b.bfsOrderCached(i) {
			if base.Status(i, v) != partition.ECutNode {
				continue
			}
			b.vAssign(i, v, func(j int, x int) bool { return b.fitsWhole(j, x, v) },
				func(j, x int) { b.assignWhole(j, x, v) })
		}
	}

	b.rebuildTrackers()

	// EAssign (lines 14-18): split what remains edge by edge onto the
	// cheapest fragment per algorithm.
	for j := range b.parts {
		for v := 0; v < b.g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			if b.assigned[j][vid] {
				continue
			}
			b.eAssign(j, vid, wholeArcs(b.g, vid))
		}
	}

	// MAssign (line 19) per algorithm.
	for j, p := range b.parts {
		refine.MAssignOnly(p, b.models[j])
	}
	b.stats.Total = time.Since(start)

	comp, err := New(b.g, b.parts)
	if err != nil {
		return nil, nil, err
	}
	return comp, b.stats, nil
}

// builder carries the shared state of ME2H/MV2H.
type builder struct {
	g        *graph.Graph
	base     *partition.Partition
	models   []costmodel.CostModel
	n        int
	parts    []*partition.Partition
	trs      []*costmodel.Tracker
	budgets  []float64
	assigned []map[graph.VertexID]bool // per algorithm: vertex fully routed (ME2H)
	// copyAssigned tracks per-copy routing for MV2H, keyed by
	// (fragment, vertex).
	copyAssigned []map[uint64]bool
	naiveDest    bool
	bfsCache     map[int][]graph.VertexID
	stats        *BuildStats
}

// bfsOrderCached memoises bfsOrder per input fragment: Init and
// VAssign walk the same order.
func (b *builder) bfsOrderCached(i int) []graph.VertexID {
	if b.bfsCache == nil {
		b.bfsCache = map[int][]graph.VertexID{}
	}
	if o, ok := b.bfsCache[i]; ok {
		return o
	}
	o := bfsOrder(b.base, i)
	b.bfsCache[i] = o
	return o
}

// rebuildTrackers re-evaluates every target partition from scratch,
// clearing the drift the light per-vertex refreshes accumulate.
func (b *builder) rebuildTrackers() {
	for j := range b.parts {
		b.trs[j] = costmodel.NewTracker(b.parts[j], b.models[j])
	}
}

func newBuilder(base *partition.Partition, models []costmodel.CostModel) *builder {
	g := base.Graph()
	n := base.NumFragments()
	b := &builder{g: g, base: base, models: models, n: n, stats: &BuildStats{}}
	for _, m := range models {
		// Budget Bj = average ChAj over the INPUT partition (line 1),
		// with 5% slack so that algorithms the input already balances
		// keep their vertices in place (scattering them would trade
		// locality for nothing).
		costs := costmodel.Evaluate(base, m)
		b.budgets = append(b.budgets, 1.05*costmodel.TotalComp(costs)/float64(n))
		p := partition.NewEmpty(g, n)
		b.parts = append(b.parts, p)
		b.trs = append(b.trs, costmodel.NewTracker(p, m))
		b.assigned = append(b.assigned, map[graph.VertexID]bool{})
	}
	b.stats.Budgets = b.budgets
	return b
}

// fitsWhole probes ChAj(F^j_x ∪ (v,Ev)) ≤ Bj for a complete copy.
func (b *builder) fitsWhole(j, x int, v graph.VertexID) bool {
	h := b.trs[j].HypotheticalComp(v, b.g.InDegree(v), b.g.OutDegree(v), 0, false)
	return b.trs[j].Comp(x)+h <= b.budgets[j]
}

// assignWhole places v with every incident arc into fragment x of
// partition j.
func (b *builder) assignWhole(j, x int, v graph.VertexID) {
	p := b.parts[j]
	for _, w := range b.g.OutNeighbors(v) {
		p.AddArc(x, v, w)
	}
	for _, w := range b.g.InNeighbors(v) {
		p.AddArc(x, w, v)
	}
	if b.g.OutDegree(v) == 0 && b.g.InDegree(v) == 0 {
		p.AddVertex(x, v)
	}
	p.SetOwner(v, x)
	_ = p.SetMaster(v, x)
	b.assigned[j][v] = true
	// Only the subject vertex is refreshed during the bulk build;
	// neighbour contributions drift slightly and are reconciled by
	// rebuildTrackers at the phase boundaries. Exact per-arc refreshes
	// would cost O(deg·n) per assignment and dominate the build (the
	// whole point of ME2H is to be cheaper than k separate refiners).
	b.trs[j].Refresh(v)
	b.stats.Assigned++
}

// vAssign implements procedure GetDest (Fig. 7): given the set Ov of
// algorithms that still need candidate v placed, repeatedly pick the
// destination fragment accepted by the most remaining algorithms —
// a greedy minimum set cover that minimises v's replication across
// the composite and with it fc.
func (b *builder) vAssign(src int, v graph.VertexID, fits func(j, x int) bool, apply func(j, x int)) {
	var ov []int
	for j := range b.parts {
		if !b.assigned[j][v] {
			ov = append(ov, j)
		}
	}
	if b.naiveDest {
		for _, j := range ov {
			for x := 0; x < b.n; x++ {
				if fits(j, x) {
					apply(j, x)
					break
				}
			}
		}
		return
	}
	for len(ov) > 0 {
		bestX, bestCover := -1, 0
		// The source fragment is probed first so that cover ties keep
		// the candidate where its neighbours are (locality).
		for _, x := range b.fragOrder(src) {
			cover := 0
			for _, j := range ov {
				if fits(j, x) {
					cover++
				}
			}
			if cover > bestCover {
				bestX, bestCover = x, cover
			}
		}
		if bestX < 0 {
			// No fragment fits any remaining algorithm within budget.
			// A vertex that would fit an empty fragment still goes
			// WHOLE to the currently cheapest one (the budgets hover
			// at the average late in the pass, and shredding such a
			// vertex via EAssign would destroy locality for nothing);
			// only genuine over-budget hubs are left for EAssign.
			for _, j := range ov {
				// Keep only small vertices whole: a large one would
				// overload the destination (quadratic-cost algorithms
				// care), so it is left for EAssign to split.
				if b.wholeCost(j, v) > 0.25*b.budgets[j] {
					continue
				}
				apply(j, b.argminComp(j))
			}
			return
		}
		var rest []int
		for _, j := range ov {
			if fits(j, bestX) {
				apply(j, bestX)
			} else {
				rest = append(rest, j)
			}
		}
		ov = rest
	}
}

// wholeCost is v's hypothetical contribution as a complete copy under
// model j.
func (b *builder) wholeCost(j int, v graph.VertexID) float64 {
	return b.trs[j].HypotheticalComp(v, b.g.InDegree(v), b.g.OutDegree(v), 0, false)
}

// argminComp returns partition j's cheapest fragment.
func (b *builder) argminComp(j int) int {
	best := 0
	for x := 1; x < b.n; x++ {
		if b.trs[j].Comp(x) < b.trs[j].Comp(best) {
			best = x
		}
	}
	return best
}

// fragOrder yields fragment indices with src first.
func (b *builder) fragOrder(src int) []int {
	order := make([]int, 0, b.n)
	if src >= 0 && src < b.n {
		order = append(order, src)
	}
	for x := 0; x < b.n; x++ {
		if x != src {
			order = append(order, x)
		}
	}
	return order
}

// arcT is one arc to place.
type arcT struct{ u, w graph.VertexID }

// wholeArcs lists every incident arc of v (canonical single direction
// for undirected graphs).
func wholeArcs(g *graph.Graph, v graph.VertexID) []arcT {
	var arcs []arcT
	for _, w := range g.OutNeighbors(v) {
		if g.Undirected() && v > w {
			continue
		}
		arcs = append(arcs, arcT{v, w})
	}
	if !g.Undirected() {
		for _, w := range g.InNeighbors(v) {
			arcs = append(arcs, arcT{w, v})
		}
	} else {
		for _, w := range g.InNeighbors(v) {
			if w < v {
				arcs = append(arcs, arcT{w, v})
			}
		}
	}
	sort.Slice(arcs, func(a, c int) bool {
		if arcs[a].u != arcs[c].u {
			return arcs[a].u < arcs[c].u
		}
		return arcs[a].w < arcs[c].w
	})
	return arcs
}

// eAssign splits v's arcs one by one onto the cheapest fragment of
// partition j.
func (b *builder) eAssign(j int, v graph.VertexID, arcs []arcT) {
	p := b.parts[j]
	tr := b.trs[j]
	for _, a := range arcs {
		x := 0
		for y := 1; y < b.n; y++ {
			if tr.Comp(y) < tr.Comp(x) {
				x = y
			}
		}
		p.AddEdge(x, a.u, a.w)
		refreshTracker(tr, []graph.VertexID{a.u, a.w})
		b.stats.SplitEdges++
	}
	if len(arcs) == 0 && len(p.Copies(v)) == 0 {
		p.AddVertex(int(v)%b.n, v)
	}
	b.assigned[j][v] = true
}

// bfsOrder walks the non-dummy nodes of base fragment i in BFS order
// (the locality-preserving order of procedure Init).
func bfsOrder(base *partition.Partition, i int) []graph.VertexID {
	f := base.Fragment(i)
	ids := f.SortedVertices()
	seen := make(map[graph.VertexID]bool, len(ids))
	order := make([]graph.VertexID, 0, len(ids))
	queue := make([]graph.VertexID, 0, len(ids))
	enqueue := func(v graph.VertexID) {
		if !seen[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for _, root := range ids {
		if seen[root] {
			continue
		}
		enqueue(root)
		for head := len(order); head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			adj := f.Adjacency(v)
			if adj == nil {
				continue
			}
			nbrs := append([]graph.VertexID(nil), adj.Out...)
			nbrs = append(nbrs, adj.In...)
			sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
			for _, w := range nbrs {
				if f.Has(w) {
					enqueue(w)
				}
			}
		}
	}
	return order
}

func refreshTracker(tr *costmodel.Tracker, touched []graph.VertexID) {
	seen := map[graph.VertexID]bool{}
	for _, v := range touched {
		if !seen[v] {
			seen[v] = true
			tr.Refresh(v)
		}
	}
}
