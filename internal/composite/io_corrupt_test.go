package composite

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"adp/internal/partitioner"
)

// validCompositeBytes serialises a small real composite for the
// corruption fixtures to damage.
func validCompositeBytes(t testing.TB) []byte {
	t.Helper()
	g := testGraph()
	base, err := partitioner.FennelEdgeCut(g, 3, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := ME2H(base, batchModels(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, comp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompositeReadCorruptFixtures damages a valid stream in targeted
// ways and requires Read to fail with a contextual error — naming the
// header field or partition at fault — rather than panic or return a
// malformed composite.
func TestCompositeReadCorruptFixtures(t *testing.T) {
	valid := validCompositeBytes(t)
	g := testGraph()

	cases := []struct {
		name string
		mut  func(b []byte) []byte
		want string // substring the error must carry
	}{
		{"empty stream", func(b []byte) []byte { return nil }, "reading magic"},
		{"truncated magic", func(b []byte) []byte { return b[:3] }, "reading magic"},
		{"flipped magic", func(b []byte) []byte { b[1] ^= 0x10; return b }, "bad magic"},
		{"truncated before k", func(b []byte) []byte { return b[:5] }, "reading partition count"},
		{"zero partitions", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 0)
			return b
		}, "out of range"},
		{"absurd partition count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 1<<30)
			return b
		}, "out of range"},
		{"count just past cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 33)
			return b
		}, "out of range"},
		{"truncated first partition", func(b []byte) []byte { return b[:12] }, "partition 0"},
		{"truncated mid stream", func(b []byte) []byte { return b[:len(b)/2] }, "partition"},
		{"extra trailing partition expected", func(b []byte) []byte {
			k := binary.LittleEndian.Uint32(b[4:])
			binary.LittleEndian.PutUint32(b[4:], k+1)
			return b
		}, "partition"},
		{"flipped partition magic", func(b []byte) []byte { b[8] ^= 0xFF; return b }, "partition 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), valid...))
			_, err := Read(bytes.NewReader(data), g)
			if err == nil {
				t.Fatal("corrupt stream accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The dynamic reader must reject structural corruption the
			// same way (it only relaxes graph-membership checks).
			if _, err := ReadDynamic(bytes.NewReader(data), g); err == nil {
				t.Fatal("corrupt stream accepted by ReadDynamic")
			}
		})
	}
}

// FuzzCompositeRead throws arbitrary bytes at Read: it must never
// panic, and any composite it does accept must satisfy the full
// coherence-index invariant.
func FuzzCompositeRead(f *testing.F) {
	valid := validCompositeBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	tampered := append([]byte(nil), valid...)
	tampered[len(tampered)/3] ^= 0x44
	f.Add(tampered)

	g := testGraph()
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		if err := c.ValidateIndex(); err != nil {
			t.Fatalf("accepted composite fails validation: %v", err)
		}
		d, err := ReadDynamic(bytes.NewReader(data), g)
		if err != nil {
			t.Fatalf("strict reader accepted what the dynamic reader refused: %v", err)
		}
		if err := d.ValidateIndex(); err != nil {
			t.Fatalf("dynamic composite fails validation: %v", err)
		}
	})
}
