package composite

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adp/internal/graph"
	"adp/internal/partition"
)

const compositeMagic = uint32(0xAD9A_0003)

// Write serialises the composite: a header plus each bundled partition
// in the partition binary format. The coherence index and cores are
// recomputed on load (they are derived state).
func Write(w io.Writer, c *Composite) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	if err := binary.Write(bw, le, compositeMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(c.k)); err != nil {
		return err
	}
	for _, p := range c.parts {
		if err := partition.Write(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxPartitions caps the bundle size a stored composite may declare;
// it mirrors the residualSet bitset width, so anything past it is
// corrupt input, not a big bundle.
const maxPartitions = 32

// Read reconstructs a composite over g from the format produced by
// Write.
//
// Header fields are validated before any allocation scales with them —
// a truncated, bit-flipped, or hostile stream yields a wrapped error,
// never a panic or an oversized allocation.
func Read(r io.Reader, g *graph.Graph) (*Composite, error) {
	return read(r, g, partition.Read)
}

// ReadDynamic is Read for composites whose edge set has drifted from g
// through logged inserts and deletes (the durable store's snapshots):
// it delegates to partition.ReadDynamic, so stored arcs need not exist
// in g.
func ReadDynamic(r io.Reader, g *graph.Graph) (*Composite, error) {
	return read(r, g, partition.ReadDynamic)
}

func read(r io.Reader, g *graph.Graph, readPart func(io.Reader, *graph.Graph) (*partition.Partition, error)) (*Composite, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic, k uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, fmt.Errorf("composite: reading magic: %w", err)
	}
	if magic != compositeMagic {
		return nil, fmt.Errorf("composite: bad magic %#x", magic)
	}
	if err := binary.Read(br, le, &k); err != nil {
		return nil, fmt.Errorf("composite: reading partition count: %w", err)
	}
	if k == 0 || k > maxPartitions {
		return nil, fmt.Errorf("composite: stored partition count %d out of range [1,%d]", k, maxPartitions)
	}
	parts := make([]*partition.Partition, 0, k)
	for j := uint32(0); j < k; j++ {
		p, err := readPart(br, g)
		if err != nil {
			return nil, fmt.Errorf("composite: partition %d: %w", j, err)
		}
		parts = append(parts, p)
	}
	return New(g, parts)
}
