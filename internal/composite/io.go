package composite

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adp/internal/graph"
	"adp/internal/partition"
)

const compositeMagic = uint32(0xAD9A_0003)

// Write serialises the composite: a header plus each bundled partition
// in the partition binary format. The coherence index and cores are
// recomputed on load (they are derived state).
func Write(w io.Writer, c *Composite) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	if err := binary.Write(bw, le, compositeMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(c.k)); err != nil {
		return err
	}
	for _, p := range c.parts {
		if err := partition.Write(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read reconstructs a composite over g from the format produced by
// Write.
func Read(r io.Reader, g *graph.Graph) (*Composite, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic, k uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, err
	}
	if magic != compositeMagic {
		return nil, fmt.Errorf("composite: bad magic %#x", magic)
	}
	if err := binary.Read(br, le, &k); err != nil {
		return nil, err
	}
	parts := make([]*partition.Partition, 0, k)
	for j := uint32(0); j < k; j++ {
		p, err := partition.Read(br, g)
		if err != nil {
			return nil, fmt.Errorf("composite: partition %d: %w", j, err)
		}
		parts = append(parts, p)
	}
	return New(g, parts)
}
