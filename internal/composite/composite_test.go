package composite

import (
	"math"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

func testGraph() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 900, AvgDeg: 7, Exponent: 2.1, Directed: true, Seed: 71})
}

func batchModels() []costmodel.CostModel {
	var out []costmodel.CostModel
	for _, a := range []costmodel.Algo{costmodel.CN, costmodel.WCC, costmodel.PR, costmodel.SSSP} {
		out = append(out, costmodel.Reference(a))
	}
	return out
}

func TestNewCompositeAndCore(t *testing.T) {
	g := testGraph()
	p1, _ := partitioner.HashEdgeCut(g, 3)
	p2 := p1.Clone()
	c, err := New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Identical partitions: everything is core, fc = fe of one copy.
	if c.StorageArcs() != p1.StorageArcs() {
		t.Fatalf("identical partitions should share all storage: %d vs %d",
			c.StorageArcs(), p1.StorageArcs())
	}
	if c.SeparateStorageArcs() != 2*p1.StorageArcs() {
		t.Fatal("separate storage accounting wrong")
	}
}

func TestCompositeDisjointPartitions(t *testing.T) {
	g := testGraph()
	p1, _ := partitioner.HashEdgeCut(g, 3)
	// A shifted assignment shares almost nothing fragment-by-fragment.
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 3
	}
	p2, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	// Misaligned partitions share little (only coincidental cut-arc
	// replicas), so composite storage sits strictly between one copy
	// and the separate total.
	if c.StorageArcs() <= p1.StorageArcs() {
		t.Fatalf("misaligned partitions cannot be fully shared: %d vs %d",
			c.StorageArcs(), p1.StorageArcs())
	}
	if c.StorageArcs() > c.SeparateStorageArcs() {
		t.Fatalf("composite storage exceeds separate storage: %d vs %d",
			c.StorageArcs(), c.SeparateStorageArcs())
	}
}

func TestCompositeErrors(t *testing.T) {
	g := testGraph()
	if _, err := New(g, nil); err == nil {
		t.Fatal("empty partition list accepted")
	}
	p1, _ := partitioner.HashEdgeCut(g, 2)
	p2, _ := partitioner.HashEdgeCut(g, 3)
	if _, err := New(g, []*partition.Partition{p1, p2}); err == nil {
		t.Fatal("mismatched fragment counts accepted")
	}
	other := gen.ErdosRenyi(50, 2, true, 1)
	p3, _ := partitioner.HashEdgeCut(other, 2)
	if _, err := New(g, []*partition.Partition{p1, p3}); err == nil {
		t.Fatal("partition over a different graph accepted")
	}
}

func TestME2HEndToEnd(t *testing.T) {
	g := testGraph()
	models := batchModels()
	base, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	comp, stats, err := ME2H(base, models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.InitShared == 0 {
		t.Error("Init shared nothing — the core would be empty")
	}
	// (1) Compactness: the composite must beat separate storage.
	if comp.StorageArcs() >= comp.SeparateStorageArcs() {
		t.Errorf("no space saving: composite %d vs separate %d",
			comp.StorageArcs(), comp.SeparateStorageArcs())
	}
	// (2) Effectiveness: each bundled partition keeps its algorithm's
	// parallel cost within range of a dedicated E2H refinement.
	algos := []costmodel.Algo{costmodel.CN, costmodel.WCC, costmodel.PR, costmodel.SSSP}
	for j, algo := range algos {
		dedicated := base.Clone()
		refine.E2H(dedicated, models[j], refine.Config{})
		dedCost := costmodel.ParallelCost(costmodel.Evaluate(dedicated, models[j]))
		compCost := costmodel.ParallelCost(costmodel.Evaluate(comp.Partition(j), models[j]))
		if compCost > dedCost*1.6 {
			t.Errorf("%v: composite cost %v far above dedicated %v", algo, compCost, dedCost)
		}
	}
	// (3) Correctness: every algorithm still computes the right
	// answer over its bundled partition.
	opts := algorithms.Options{CNTheta: 80, SSSPSource: 2}
	for j, algo := range algos {
		want := algorithms.SeqOutcome(g, algo, opts)
		got, err := algorithms.Run(engine.NewCluster(comp.Partition(j)), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got.Checksum != want.Checksum || math.Abs(got.Value-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
			t.Fatalf("%v: wrong result over composite partition %d", algo, j)
		}
	}
}

func TestMV2HEndToEnd(t *testing.T) {
	g := testGraph()
	models := batchModels()
	base, err := partitioner.GridVertexCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp, stats, err := MV2H(base, models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Assigned == 0 {
		t.Error("MV2H assigned nothing")
	}
	if comp.StorageArcs() >= comp.SeparateStorageArcs() {
		t.Errorf("no space saving: composite %d vs separate %d",
			comp.StorageArcs(), comp.SeparateStorageArcs())
	}
	opts := algorithms.Options{CNTheta: 80, SSSPSource: 2}
	for j, algo := range []costmodel.Algo{costmodel.CN, costmodel.WCC, costmodel.PR, costmodel.SSSP} {
		want := algorithms.SeqOutcome(g, algo, opts)
		got, err := algorithms.Run(engine.NewCluster(comp.Partition(j)), algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got.Checksum != want.Checksum || math.Abs(got.Value-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
			t.Fatalf("%v: wrong result over composite partition %d", algo, j)
		}
	}
}

func TestME2HUndirectedTC(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 500, AvgDeg: 5, Exponent: 2.2, Directed: false, Seed: 72})
	models := []costmodel.CostModel{costmodel.Reference(costmodel.TC), costmodel.Reference(costmodel.WCC)}
	base, err := partitioner.FennelEdgeCut(g, 3, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := ME2H(base, models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Validate(); err != nil {
		t.Fatal(err)
	}
	want := algorithms.TCSeq(g)
	got, _, err := algorithms.RunTC(engine.NewCluster(comp.Partition(0)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("TC over composite = %d, want %d", got, want)
	}
}

func TestCompositeSingleAlgorithmDegenerates(t *testing.T) {
	// ME2H with k=1 is (the assignment formulation of) E2H: same cost
	// ballpark as the in-place refiner.
	g := testGraph()
	m := costmodel.Reference(costmodel.CN)
	base, _ := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	comp, _, err := ME2H(base, []costmodel.CostModel{m}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inPlace := base.Clone()
	refine.E2H(inPlace, m, refine.Config{})
	c1 := costmodel.ParallelCost(costmodel.Evaluate(comp.Partition(0), m))
	c2 := costmodel.ParallelCost(costmodel.Evaluate(inPlace, m))
	if c1 > c2*1.5 {
		t.Fatalf("ME2H(k=1) cost %v far above E2H %v", c1, c2)
	}
}

func TestDeleteEdgeCoherent(t *testing.T) {
	g := testGraph()
	models := batchModels()
	base, _ := partitioner.FennelEdgeCut(g, 3, partitioner.FennelConfig{})
	comp, _, err := ME2H(base, models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick an existing arc.
	var u, w graph.VertexID
	g.Edges(func(a, b graph.VertexID) bool { u, w = a, b; return false })
	if !comp.DeleteEdge(u, w) {
		t.Fatal("DeleteEdge found no copies")
	}
	for j := 0; j < comp.K(); j++ {
		p := comp.Partition(j)
		for i := 0; i < comp.N(); i++ {
			if p.Fragment(i).HasArc(u, w) {
				t.Fatalf("partition %d fragment %d still holds the deleted arc", j, i)
			}
		}
	}
	if err := comp.ValidateIndex(); err != nil {
		t.Fatal(err)
	}
	if comp.DeleteEdge(u, w) {
		t.Fatal("double delete reported copies")
	}
}

func TestInsertEdgeCoherent(t *testing.T) {
	g := testGraph()
	p1, _ := partitioner.HashEdgeCut(g, 3)
	p2 := p1.Clone()
	comp, err := New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	beforeCore := comp.CoreArcs(1)
	// Aligned insertion lands in the core.
	if err := comp.InsertEdge(10, 20, []int{1, 1}); err != nil {
		t.Fatal(err)
	}
	if comp.CoreArcs(1) != beforeCore+1 {
		t.Fatalf("aligned insert should grow the core: %d -> %d", beforeCore, comp.CoreArcs(1))
	}
	core, _, present := comp.Locate(1, 10, 20)
	if !present || !core {
		t.Fatal("inserted arc not indexed as core")
	}
	// Divergent insertion lands in residuals.
	if err := comp.InsertEdge(11, 21, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if core, res, present := comp.Locate(0, 11, 21); !present || core || len(res) != 1 || res[0] != 0 {
		t.Fatalf("divergent insert misindexed: core=%v res=%v present=%v", core, res, present)
	}
	if err := comp.ValidateIndex(); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if err := comp.InsertEdge(1, 2, []int{0}); err == nil {
		t.Fatal("short destination list accepted")
	}
	if err := comp.InsertEdge(1, 2, []int{0, 9}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestGetDestMinimisesReplication(t *testing.T) {
	// Build a scenario mirroring Example 14: four algorithms, four
	// fragments; fragment capacities arranged so one fragment accepts
	// three of the algorithms.
	g := testGraph()
	models := batchModels() // CN, WCC, PR, SSSP
	base, _ := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	comp, _, err := ME2H(base, models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The effect of GetDest shows up as fc well below k·fe_avg:
	// destinations overlap instead of scattering.
	var sepFE float64
	for j := 0; j < comp.K(); j++ {
		sepFE += float64(comp.Partition(j).StorageArcs())
	}
	if comp.FC() >= sepFE/float64(g.NumEdges())*0.9 {
		t.Errorf("fc = %v shows almost no overlap (separate = %v)",
			comp.FC(), sepFE/float64(g.NumEdges()))
	}
}
