package composite

import (
	"bytes"
	"testing"

	"adp/internal/partitioner"
)

func TestCompositeWriteReadRoundTrip(t *testing.T) {
	g := testGraph()
	base, err := partitioner.FennelEdgeCut(g, 3, partitioner.FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := ME2H(base, batchModels(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, comp); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.K() != comp.K() || back.N() != comp.N() {
		t.Fatalf("shape changed: k=%d n=%d", back.K(), back.N())
	}
	if back.StorageArcs() != comp.StorageArcs() {
		t.Fatalf("storage changed: %d vs %d", back.StorageArcs(), comp.StorageArcs())
	}
	if back.FC() != comp.FC() {
		t.Fatalf("fc changed: %v vs %v", back.FC(), comp.FC())
	}
	for i := 0; i < comp.N(); i++ {
		if back.CoreArcs(i) != comp.CoreArcs(i) {
			t.Fatalf("core %d changed: %d vs %d", i, back.CoreArcs(i), comp.CoreArcs(i))
		}
	}
}

func TestCompositeReadBadMagic(t *testing.T) {
	g := testGraph()
	if _, err := Read(bytes.NewReader(make([]byte, 16)), g); err == nil {
		t.Fatal("bad magic accepted")
	}
}
