// Package composite implements Section 6 of the paper: composite
// partitions HP(n,k) — a compact representation of k per-algorithm
// hybrid partitions sharing a per-fragment core Ci — and the composite
// partitioners ME2H and MV2H that build one from an edge-cut or a
// vertex-cut for a batch of algorithms A1..Ak at once.
package composite

import (
	"fmt"
	"sync/atomic"

	"adp/internal/graph"
	"adp/internal/partition"
)

// residualSet is a bitset over the k partitions (k ≤ 32).
type residualSet uint32

// indexEntry is the per-arc coherence index of Section 6.1: whether
// the arc sits in the fragment's core, and otherwise which residual
// fragments F̂ji hold it.
type indexEntry struct {
	core      bool
	residuals residualSet
}

// Composite is a composite partition HP(n,k) =
// {HP1(n), ..., HPk(n)}: each fragment F^j_i is stored as the shared
// core Ci plus the residual F̂ji.
type Composite struct {
	g     *graph.Graph
	n, k  int
	parts []*partition.Partition
	// coreArcs[i] counts |Ci| (in arcs); the explicit arc sets live in
	// the coherence index.
	coreArcs []int
	// index[i] maps arc key -> placement inside composite fragment i.
	index []map[uint64]indexEntry
	// sharedIdx[i] marks index[i] as shared with a CloneCOW sibling
	// (typically a published epoch): the next write to that fragment's
	// index must replace the map with a private copy (ownIndex), never
	// mutate the shared one. Always non-nil, same length as index.
	sharedIdx []bool
	// idxStamp[i] identifies the map object behind index[i]: fresh maps
	// get fresh stamps, COW clones share them. Stamp equality across two
	// composites therefore means "same map" — the basis of the epoch
	// memory accounting in ShareStats.
	idxStamp []uint64
}

// idxStampCounter issues process-unique index-map stamps.
var idxStampCounter atomic.Uint64

func freshStamps(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = idxStampCounter.Add(1)
	}
	return s
}

func arcKey(u, v graph.VertexID) uint64 { return uint64(u)<<32 | uint64(v) }

// New assembles a composite from k individual partitions of the same
// graph with the same fragment count, computing cores and the
// coherence index.
func New(g *graph.Graph, parts []*partition.Partition) (*Composite, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("composite: no partitions")
	}
	if len(parts) > 32 {
		return nil, fmt.Errorf("composite: at most 32 partitions supported, got %d", len(parts))
	}
	n := parts[0].NumFragments()
	for j, p := range parts {
		if p.Graph() != g {
			return nil, fmt.Errorf("composite: partition %d is over a different graph", j)
		}
		if p.NumFragments() != n {
			return nil, fmt.Errorf("composite: partition %d has %d fragments, want %d", j, p.NumFragments(), n)
		}
	}
	c := &Composite{g: g, n: n, k: len(parts), parts: parts}
	c.rebuildIndex()
	return c, nil
}

// rebuildIndex recomputes cores and the coherence index from the
// individual partitions. Each fragment's k sorted arc-key lists are
// k-way merged so every unique arc costs exactly one map insert with
// its residual set and core bit already complete — on the recovery
// path (all fragments frozen, arc arrays presorted) this replaces the
// old get+set per arc occurrence plus a full rewrite pass, the
// dominant hashing cost of reopening a store.
func (c *Composite) rebuildIndex() {
	c.coreArcs = make([]int, c.n)
	c.index = make([]map[uint64]indexEntry, c.n)
	full := residualSet(1<<uint(c.k) - 1)
	lists := make([][]uint64, c.k)
	pos := make([]int, c.k)
	for i := 0; i < c.n; i++ {
		// Presize to the summed per-partition arc counts (an upper
		// bound: shared arcs are counted once per partition) so the
		// recovery path never pays incremental map growth.
		est := 0
		for j, p := range c.parts {
			lists[j] = p.Fragment(i).AppendSortedArcKeys(lists[j][:0])
			pos[j] = 0
			est += len(lists[j])
		}
		idx := make(map[uint64]indexEntry, est)
		for {
			min, any := ^uint64(0), false
			for j := 0; j < c.k; j++ {
				if pos[j] < len(lists[j]) {
					if k := lists[j][pos[j]]; !any || k < min {
						min, any = k, true
					}
				}
			}
			if !any {
				break
			}
			var e indexEntry
			for j := 0; j < c.k; j++ {
				if pos[j] < len(lists[j]) && lists[j][pos[j]] == min {
					e.residuals |= 1 << uint(j)
					pos[j]++
				}
			}
			if e.residuals == full {
				e = indexEntry{core: true}
				c.coreArcs[i]++
			}
			idx[min] = e
		}
		c.index[i] = idx
	}
	c.sharedIdx = make([]bool, c.n)
	c.idxStamp = freshStamps(c.n)
}

// ownIndex returns index[i] for writing, first replacing it with a
// private copy when the current map is shared with a COW clone. The
// copy costs O(|index[i]|) once per fragment per publish cycle — the
// "touched index vertices" term of the O(delta) epoch cut.
func (c *Composite) ownIndex(i int) map[uint64]indexEntry {
	if c.sharedIdx[i] {
		m := c.index[i]
		nm := make(map[uint64]indexEntry, len(m))
		for k, e := range m {
			nm[k] = e
		}
		c.index[i] = nm
		c.sharedIdx[i] = false
		c.idxStamp[i] = idxStampCounter.Add(1)
	}
	return c.index[i]
}

// K returns the number of bundled partitions.
func (c *Composite) K() int { return c.k }

// N returns the fragment count.
func (c *Composite) N() int { return c.n }

// Partition returns the j-th individual hybrid partition HPj(n).
func (c *Composite) Partition(j int) *partition.Partition { return c.parts[j] }

// Partitions returns all bundled partitions.
func (c *Composite) Partitions() []*partition.Partition { return c.parts }

// CoreArcs returns |Ci| in arcs for fragment i.
func (c *Composite) CoreArcs(i int) int { return c.coreArcs[i] }

// StorageArcs returns the composite storage cost
// Σ_i (|Ci| + Σ_j |F̂ji|): arcs in a core are stored once regardless
// of how many partitions share them.
func (c *Composite) StorageArcs() int {
	total := 0
	for i := 0; i < c.n; i++ {
		total += c.coreArcs[i]
		for _, e := range c.index[i] {
			if !e.core {
				total += popcount(e.residuals)
			}
		}
	}
	return total
}

// SeparateStorageArcs returns what storing the k partitions separately
// would cost — the Exp-4 comparison baseline.
func (c *Composite) SeparateStorageArcs() int {
	total := 0
	for _, p := range c.parts {
		total += p.StorageArcs()
	}
	return total
}

// FC returns the composite replication ratio fc =
// StorageArcs / |E(G)| (Section 6.1).
func (c *Composite) FC() float64 {
	if c.g.NumEdges() == 0 {
		return 0
	}
	return float64(c.StorageArcs()) / float64(c.g.NumEdges())
}

// Locate returns, for composite fragment i, whether the arc lies in
// the core and the list of partitions whose residual holds it
// (empty for core arcs, per the (ci, ri) index of Section 6.1).
func (c *Composite) Locate(i int, u, v graph.VertexID) (core bool, residuals []int, present bool) {
	e, ok := c.index[i][arcKey(u, v)]
	if !ok {
		return false, nil, false
	}
	if e.core {
		return true, nil, true
	}
	for j := 0; j < c.k; j++ {
		if e.residuals&(1<<uint(j)) != 0 {
			residuals = append(residuals, j)
		}
	}
	return false, residuals, true
}

// DeleteEdge deletes the edge coherently from every bundled partition
// using the index to locate copies, then updates the index. For
// undirected graphs both arcs go — independently, because a vertex- or
// edge-cut partition may store (u,v) and (v,u) in different fragments
// (each arc routes by its own source), so the two keys carry their own
// index entries. It reports whether any copy existed.
func (c *Composite) DeleteEdge(u, v graph.VertexID) bool {
	found := c.deleteArc(u, v)
	if c.g.Undirected() && u != v {
		if c.deleteArc(v, u) {
			found = true
		}
	}
	return found
}

// deleteArc removes the single arc key (u,v): every partition copy in
// every fragment whose index holds the key, the key's index entries,
// and its core count contributions.
func (c *Composite) deleteArc(u, v graph.VertexID) bool {
	found := false
	for i := 0; i < c.n; i++ {
		e, ok := c.index[i][arcKey(u, v)]
		if !ok {
			continue
		}
		found = true
		for j := 0; j < c.k; j++ {
			if e.core || e.residuals&(1<<uint(j)) != 0 {
				c.parts[j].RemoveArc(i, u, v)
			}
		}
		if e.core {
			c.coreArcs[i]--
		}
		delete(c.ownIndex(i), arcKey(u, v))
	}
	return found
}

// InsertEdge inserts the edge into every bundled partition; dest[j]
// names the target fragment for partition j (the edge "carries its
// target fragments", Section 6.1). When all destinations agree the
// arc lands in the core and is indexed once.
func (c *Composite) InsertEdge(u, v graph.VertexID, dest []int) error {
	if len(dest) != c.k {
		return fmt.Errorf("composite: %d destinations for %d partitions", len(dest), c.k)
	}
	allSame := true
	for _, d := range dest[1:] {
		if d != dest[0] {
			allSame = false
			break
		}
	}
	for j, d := range dest {
		if d < 0 || d >= c.n {
			return fmt.Errorf("composite: destination %d out of range", d)
		}
		c.parts[j].AddEdge(d, u, v)
	}
	full := residualSet(1<<uint(c.k) - 1)
	stamp := func(key uint64) {
		if allSame {
			idx := c.ownIndex(dest[0])
			e := idx[key]
			if !e.core {
				idx[key] = indexEntry{core: true}
				c.coreArcs[dest[0]]++
			}
			return
		}
		for j, d := range dest {
			idx := c.ownIndex(d)
			e := idx[key]
			if !e.core {
				e.residuals |= 1 << uint(j)
				// A residual set that fills up across inserts IS the core
				// case — every partition holds the arc in this fragment —
				// and rebuildIndex classifies it as such on recovery; the
				// incremental path must agree.
				if e.residuals == full {
					e = indexEntry{core: true}
					c.coreArcs[d]++
				}
				idx[key] = e
			}
		}
	}
	stamp(arcKey(u, v))
	if c.g.Undirected() {
		stamp(arcKey(v, u))
	}
	return nil
}

// Clone returns a deep copy sharing only the immutable graph: every
// bundled partition is cloned and the coherence index is copied rather
// than rebuilt (mutation order is preserved, so a clone's adjacency is
// bitwise the original's). The serving plane clones the store's live
// composite to publish immutable epoch snapshots.
func (c *Composite) Clone() *Composite {
	out := &Composite{
		g: c.g, n: c.n, k: c.k,
		parts:    make([]*partition.Partition, c.k),
		coreArcs: append([]int(nil), c.coreArcs...),
		index:    make([]map[uint64]indexEntry, c.n),
	}
	for j, p := range c.parts {
		out.parts[j] = p.Clone()
	}
	for i, m := range c.index {
		nm := make(map[uint64]indexEntry, len(m))
		for k, e := range m {
			nm[k] = e
		}
		out.index[i] = nm
	}
	out.sharedIdx = make([]bool, c.n)
	out.idxStamp = freshStamps(c.n)
	return out
}

// CloneCOW returns a structurally-sharing snapshot of the composite:
// every bundled partition is cloned through Partition.CloneCOW (shared
// immutable compiled fragments, copied spines) and the coherence index
// maps are shared outright — both sides are flagged so the next index
// write on either side copies the touched fragment's map first
// (ownIndex). Only the spines (coreArcs, the index slice, the flags)
// are copied eagerly, so a cut costs O(touched fragments + touched
// index vertices) since the previous cut instead of O(graph). The
// serving plane publishes epoch snapshots through this path; Clone
// remains the full-deep-copy oracle.
func (c *Composite) CloneCOW() *Composite {
	out := &Composite{
		g: c.g, n: c.n, k: c.k,
		parts:     make([]*partition.Partition, c.k),
		coreArcs:  append([]int(nil), c.coreArcs...),
		index:     append([]map[uint64]indexEntry(nil), c.index...),
		sharedIdx: make([]bool, c.n),
		idxStamp:  append([]uint64(nil), c.idxStamp...),
	}
	for j, p := range c.parts {
		out.parts[j] = p.CloneCOW()
	}
	for i := range c.sharedIdx {
		c.sharedIdx[i] = true
		out.sharedIdx[i] = true
	}
	return out
}

// ShareStats describes how much of c's storage is shared with prev
// (typically the previous epoch's composite): fragments and index maps
// that are the same objects cost no marginal memory; owned ones are
// summed at approximate resident bytes. prev == nil counts everything
// as owned — the full materialized size of one epoch.
type ShareStats struct {
	SharedFragments int
	OwnedFragments  int
	SharedIndexMaps int
	OwnedIndexMaps  int
	OwnedBytes      int64
}

// indexEntryApproxBytes is the rough per-entry resident cost of a
// coherence-index map cell (8-byte key + padded entry + map overhead).
const indexEntryApproxBytes = 24

// ShareStats computes the sharing breakdown of c against prev.
func (c *Composite) ShareStats(prev *Composite) ShareStats {
	var st ShareStats
	for j, p := range c.parts {
		var pp *partition.Partition
		if prev != nil && j < len(prev.parts) {
			pp = prev.parts[j]
		}
		sh, ow, ob := p.ShareStats(pp)
		st.SharedFragments += sh
		st.OwnedFragments += ow
		st.OwnedBytes += ob
	}
	for i := 0; i < c.n; i++ {
		if prev != nil && i < prev.n && c.idxStamp[i] == prev.idxStamp[i] {
			st.SharedIndexMaps++
		} else {
			st.OwnedIndexMaps++
			st.OwnedBytes += int64(len(c.index[i])) * indexEntryApproxBytes
		}
	}
	return st
}

// Validate checks every bundled partition plus index consistency.
// It assumes the composite still matches the graph it was built from;
// after coherent updates (InsertEdge/DeleteEdge) use ValidateIndex,
// since the immutable Graph no longer reflects the edits.
func (c *Composite) Validate() error {
	for j, p := range c.parts {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("composite partition %d: %w", j, err)
		}
	}
	return c.ValidateIndex()
}

// ValidateIndex checks that the coherence index agrees with the
// bundled partitions' contents.
func (c *Composite) ValidateIndex() error {
	// The index must agree with the partitions.
	for i := 0; i < c.n; i++ {
		for j, p := range c.parts {
			f := p.Fragment(i)
			count := 0
			f.Vertices(func(v graph.VertexID, adj *partition.Adj) {
				for _, w := range adj.Out {
					e, ok := c.index[i][arcKey(v, w)]
					if !ok || (!e.core && e.residuals&(1<<uint(j)) == 0) {
						count++
					}
				}
			})
			if count > 0 {
				return fmt.Errorf("composite: index misses %d arcs of partition %d fragment %d", count, j, i)
			}
		}
	}
	return nil
}

// EqualState reports whether o holds exactly the same composite state:
// same shape, per-partition placement (partition.EqualPlacement), core
// sizes, and per-arc coherence index entries. Nil on equality, an
// error naming the first divergence otherwise.
func (c *Composite) EqualState(o *Composite) error {
	if c.k != o.k || c.n != o.n {
		return fmt.Errorf("composite: shape (n=%d,k=%d) vs (n=%d,k=%d)", c.n, c.k, o.n, o.k)
	}
	for j := range c.parts {
		if err := c.parts[j].EqualPlacement(o.parts[j]); err != nil {
			return fmt.Errorf("composite: partition %d: %w", j, err)
		}
	}
	for i := 0; i < c.n; i++ {
		if c.coreArcs[i] != o.coreArcs[i] {
			return fmt.Errorf("composite: core of fragment %d is %d arcs vs %d", i, c.coreArcs[i], o.coreArcs[i])
		}
		if len(c.index[i]) != len(o.index[i]) {
			return fmt.Errorf("composite: index of fragment %d has %d arcs vs %d", i, len(c.index[i]), len(o.index[i]))
		}
		for k, e := range c.index[i] {
			oe, ok := o.index[i][k]
			if !ok || e != oe {
				return fmt.Errorf("composite: index of fragment %d diverges at arc (%d,%d)", i, uint32(k>>32), uint32(k))
			}
		}
	}
	return nil
}

func popcount(x residualSet) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
