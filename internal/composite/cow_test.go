package composite

import (
	"math/rand"
	"sync"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

// TestCloneCOWOracleWaves is the COW-publication property test: random
// update waves flow through the CloneCOW path exactly as the serving
// plane's apply loop publishes epochs, and every published epoch must
// be bitwise-equal to a full Clone()+Compile() oracle cut at the same
// point — EqualState in both directions, a valid coherence index, and
// (periodically) identical engine fingerprints. Concurrent readers
// hold all previously published epochs for the whole run, so under
// -race any write that leaks through the structural sharing into an
// already-published snapshot is caught.
func TestCloneCOWOracleWaves(t *testing.T) {
	const (
		numFrags = 6
		waves    = 40
		waveSize = 6
	)
	g := gen.PowerLaw(gen.PowerLawConfig{N: 400, AvgDeg: 5, Exponent: 2.1, Directed: true, Seed: 13})
	p1, err := partitioner.HashEdgeCut(g, numFrags)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % numFrags
	}
	p2, err := partition.FromVertexAssignment(g, assign, numFrags)
	if err != nil {
		t.Fatal(err)
	}
	live, err := New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}

	// Track the live arc set so waves only delete present edges and
	// insert absent ones.
	key := func(u, v graph.VertexID) uint64 { return uint64(u)<<32 | uint64(v) }
	present := make(map[uint64][2]graph.VertexID)
	g.Edges(func(s, d graph.VertexID) bool {
		present[key(s, d)] = [2]graph.VertexID{s, d}
		return true
	})
	liveKeys := make([]uint64, 0, len(present))
	for k := range present {
		liveKeys = append(liveKeys, k)
	}

	type published struct {
		epoch  *Composite
		oracle *Composite
	}
	var (
		mu    sync.Mutex
		hist  []published
		done  = make(chan struct{})
		wg    sync.WaitGroup
		nVert = g.NumVertices()
	)

	// Concurrent pinned readers: each keeps re-reading every epoch
	// published so far (old epochs included) while the writer keeps
	// mutating the live composite and cutting new ones.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				snap := append([]published(nil), hist...)
				mu.Unlock()
				for _, pub := range snap {
					c := pub.epoch
					_ = c.StorageArcs()
					for j := 0; j < c.K(); j++ {
						p := c.Partition(j)
						v := graph.VertexID(rng.Intn(nVert))
						m := p.Master(v)
						for _, cp := range p.Copies(v) {
							_ = p.Status(int(cp), v)
						}
						if m >= 0 {
							if adj := p.Fragment(m).Adjacency(v); adj != nil {
								_ = len(adj.Out) + len(adj.In)
							}
						}
					}
				}
			}
		}(int64(100 + r))
	}

	rng := rand.New(rand.NewSource(7))
	randDest := func() []int {
		d := make([]int, live.K())
		for j := range d {
			d[j] = rng.Intn(numFrags)
		}
		return d
	}
	for w := 0; w < waves; w++ {
		// One wave: a mix of deletes of live edges and inserts of new
		// (or previously deleted) arcs, exactly what one POST /updates
		// batch does to the store's composite.
		for m := 0; m < waveSize; m++ {
			if rng.Intn(2) == 0 && len(liveKeys) > 0 {
				i := rng.Intn(len(liveKeys))
				k := liveKeys[i]
				uv := present[k]
				if !live.DeleteEdge(uv[0], uv[1]) {
					t.Fatalf("wave %d: edge (%d,%d) not deletable", w, uv[0], uv[1])
				}
				delete(present, k)
				liveKeys[i] = liveKeys[len(liveKeys)-1]
				liveKeys = liveKeys[:len(liveKeys)-1]
			} else {
				var u, v graph.VertexID
				for {
					u = graph.VertexID(rng.Intn(nVert))
					v = graph.VertexID(rng.Intn(nVert))
					if u != v {
						if _, ok := present[key(u, v)]; !ok {
							break
						}
					}
				}
				if err := live.InsertEdge(u, v, randDest()); err != nil {
					t.Fatalf("wave %d: insert (%d,%d): %v", w, u, v, err)
				}
				present[key(u, v)] = [2]graph.VertexID{u, v}
				liveKeys = append(liveKeys, key(u, v))
			}
		}

		// COW publish vs full-clone oracle, cut at the same point.
		epoch := live.CloneCOW()
		oracle := live.Clone()
		for j := 0; j < oracle.K(); j++ {
			oracle.Partition(j).Compile()
		}
		if err := epoch.EqualState(oracle); err != nil {
			t.Fatalf("wave %d: COW epoch diverges from oracle: %v", w, err)
		}
		if err := oracle.EqualState(epoch); err != nil {
			t.Fatalf("wave %d: oracle diverges from COW epoch: %v", w, err)
		}
		if err := epoch.ValidateIndex(); err != nil {
			t.Fatalf("wave %d: COW epoch index invalid: %v", w, err)
		}
		if w%8 == 7 {
			for j := 0; j < epoch.K(); j++ {
				a := runWCC(t, epoch.Partition(j))
				b := runWCC(t, oracle.Partition(j))
				if a != b {
					t.Fatalf("wave %d partition %d: engine fingerprint diverged: %+v vs %+v", w, j, a, b)
				}
			}
		}
		mu.Lock()
		hist = append(hist, published{epoch: epoch, oracle: oracle})
		mu.Unlock()
	}

	close(done)
	wg.Wait()

	// Every retained epoch must still equal its oracle: a later wave
	// scribbling through shared state would show up here even if the
	// wave-time comparison raced past it.
	for i, pub := range hist {
		if err := pub.epoch.EqualState(pub.oracle); err != nil {
			t.Fatalf("retained epoch %d corrupted after later waves: %v", i, err)
		}
		if err := pub.epoch.ValidateIndex(); err != nil {
			t.Fatalf("retained epoch %d index corrupted: %v", i, err)
		}
	}
}

type wccFingerprint struct {
	value      float64
	checksum   uint64
	supersteps int
}

func runWCC(t *testing.T, p *partition.Partition) wccFingerprint {
	t.Helper()
	out, err := algorithms.Run(engine.NewCluster(p).UsePool(pool.Serial()), costmodel.WCC, algorithms.Options{})
	if err != nil {
		t.Fatalf("WCC run: %v", err)
	}
	return wccFingerprint{value: out.Value, checksum: out.Checksum, supersteps: out.Report.Supersteps}
}
