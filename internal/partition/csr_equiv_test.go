package partition_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

// buildShape produces one of the partition shapes the engine executes
// over: a random edge-cut, a refined edge-cut (E2H output, so hybrid
// with v-cut splits), or a refined vertex-cut (V2H output).
func buildShape(t testing.TB, seed int64, mode int) *partition.Partition {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 260, AvgDeg: 5, Exponent: 2.1, Directed: true, Seed: seed})
	switch mode % 3 {
	case 0:
		rng := rand.New(rand.NewSource(seed + 1))
		assign := make([]int, g.NumVertices())
		for i := range assign {
			assign[i] = rng.Intn(4)
		}
		p, err := partition.FromVertexAssignment(g, assign, 4)
		if err != nil {
			t.Fatal(err)
		}
		return p
	case 1:
		p, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		refine.E2H(p, costmodel.Reference(costmodel.PR), refine.Config{})
		return p
	default:
		p, err := partitioner.GridVertexCut(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		refine.V2H(p, costmodel.Reference(costmodel.WCC), refine.Config{})
		return p
	}
}

// sameFragment compares every accessor the engine relies on between a
// map-form fragment and its compiled twin.
func sameFragment(t *testing.T, p, q *partition.Partition, i int) {
	t.Helper()
	f, cf := p.Fragment(i), q.Fragment(i)
	if f.NumVertices() != cf.NumVertices() {
		t.Fatalf("frag %d: NumVertices %d vs %d", i, f.NumVertices(), cf.NumVertices())
	}
	if f.NumArcs() != cf.NumArcSlots() {
		t.Fatalf("frag %d: NumArcs %d vs NumArcSlots %d", i, f.NumArcs(), cf.NumArcSlots())
	}
	// Vertices must visit the same ids in the same (ascending) order
	// with identical adjacency contents and order.
	var mv, cv []graph.VertexID
	f.Vertices(func(v graph.VertexID, _ *partition.Adj) { mv = append(mv, v) })
	cf.Vertices(func(v graph.VertexID, _ *partition.Adj) { cv = append(cv, v) })
	if len(mv) != len(cv) {
		t.Fatalf("frag %d: vertex walk lengths %d vs %d", i, len(mv), len(cv))
	}
	for k := range mv {
		if mv[k] != cv[k] {
			t.Fatalf("frag %d: vertex walk order differs at %d: %d vs %d", i, k, mv[k], cv[k])
		}
	}
	for l, v := range cv {
		ma, ca := f.Adjacency(v), cf.Adjacency(v)
		if len(ma.Out) != len(ca.Out) || len(ma.In) != len(ca.In) {
			t.Fatalf("frag %d vertex %d: degrees (%d,%d) vs (%d,%d)",
				i, v, len(ma.Out), len(ma.In), len(ca.Out), len(ca.In))
		}
		for k := range ma.Out {
			if ma.Out[k] != ca.Out[k] {
				t.Fatalf("frag %d vertex %d: out-adjacency order differs at %d", i, v, k)
			}
		}
		for k := range ma.In {
			if ma.In[k] != ca.In[k] {
				t.Fatalf("frag %d vertex %d: in-adjacency order differs at %d", i, v, k)
			}
		}
		if cf.LocalIndex(v) != l || cf.VertexAt(l) != v {
			t.Fatalf("frag %d vertex %d: LocalIndex/VertexAt roundtrip broke (l=%d)", i, v, l)
		}
		if p.Status(i, v) != q.Status(i, v) {
			t.Fatalf("frag %d vertex %d: status %v vs %v", i, v, p.Status(i, v), q.Status(i, v))
		}
	}
}

// Property: on randomized partitions of every family — including
// post-refinement hybrid shapes — the compiled accessors agree with
// the mutable map form on everything the engine reads.
func TestQuickCompileEquivalence(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		mode := int(modeRaw) % 3
		p := buildShape(t, seed, mode)
		q := p.Clone()
		q.Compile()
		for i := 0; i < p.NumFragments(); i++ {
			if q.Fragment(i).Compiled() != true {
				return false
			}
			sameFragment(t, p, q, i)
		}
		// HasArc: every graph arc, probed both ways round (the reverse
		// direction is usually a miss), at every fragment.
		ok := true
		p.Graph().Edges(func(u, v graph.VertexID) bool {
			for i := 0; i < p.NumFragments(); i++ {
				if p.Fragment(i).HasArc(u, v) != q.Fragment(i).HasArc(u, v) ||
					p.Fragment(i).HasArc(v, u) != q.Fragment(i).HasArc(v, u) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Structural mutation must drop the compiled form, fall back to the
// map path coherently, and recompile to the updated structure.
func TestCompileInvalidatedByMutation(t *testing.T) {
	p := buildShape(t, 42, 0)
	p.Compile()
	f := p.Fragment(0)
	if !f.Compiled() {
		t.Fatal("fragment not compiled after Compile")
	}
	// Pick an arc not yet present in fragment 0.
	var u, v graph.VertexID
	found := false
	p.Graph().Edges(func(a, b graph.VertexID) bool {
		if !f.HasArc(a, b) {
			u, v, found = a, b, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("fragment 0 holds every arc")
	}
	p.AddArc(0, u, v)
	if f.Compiled() {
		t.Fatal("AddArc did not invalidate the compiled form")
	}
	if !f.HasArc(u, v) {
		t.Fatal("map fallback does not see the new arc")
	}
	p.Compile()
	if !f.Compiled() || !f.HasArc(u, v) {
		t.Fatal("recompiled form does not see the new arc")
	}
	if _, ok := f.ArcIndex(u, v); !ok {
		t.Fatal("recompiled arc index misses the new arc")
	}
	if p.Validate() != nil {
		t.Fatal("partition invalid after mutation")
	}
}

// BenchmarkFragmentHasArc compares arc-presence probes on the mutable
// map form against the compiled CSR form, over every graph arc at
// every fragment (hits and misses mixed, as in engine execution).
func BenchmarkFragmentHasArc(b *testing.B) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 4000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 7})
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v * 13) % 8
	}
	p, err := partition.FromVertexAssignment(g, assign, 8)
	if err != nil {
		b.Fatal(err)
	}
	type arc struct{ u, v graph.VertexID }
	var arcsList []arc
	g.Edges(func(u, v graph.VertexID) bool {
		arcsList = append(arcsList, arc{u, v})
		return true
	})
	probe := func(b *testing.B, p *partition.Partition) {
		b.ReportAllocs()
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			for _, a := range arcsList {
				for f := 0; f < p.NumFragments(); f++ {
					if p.Fragment(f).HasArc(a.u, a.v) {
						hits++
					}
				}
			}
		}
		if hits == 0 {
			b.Fatal("no hits")
		}
	}
	compiled := p.Clone().Compile()
	b.Run("map", func(b *testing.B) { probe(b, p) })
	b.Run("csr", func(b *testing.B) { probe(b, compiled) })
}
