package partition

import (
	"testing"

	"adp/internal/graph"
)

// Vertex ids for the paper's Fig. 1(a) graph G1: sources s1..s5 are
// 0..4, targets t1..t5 are 5..9. The edge set is reconstructed from
// the workload numbers of Example 1 (in-degrees t1..t5 = 2,4,3,2,2;
// |E| = 13; fragment F1 of Fig. 1(b) holds 9 arcs, F2 holds 8).
const (
	s1 = graph.VertexID(iota)
	s2
	s3
	s4
	s5
	t1
	t2
	t3
	t4
	t5
)

// figure1G1 builds G1 of Fig. 1(a).
func figure1G1(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	edges := []graph.Edge{
		{Src: s1, Dst: t1}, {Src: s1, Dst: t2}, {Src: s1, Dst: t3},
		{Src: s2, Dst: t1}, {Src: s2, Dst: t2},
		{Src: s3, Dst: t2}, {Src: s3, Dst: t3}, {Src: s3, Dst: t4},
		{Src: s4, Dst: t2}, {Src: s4, Dst: t3}, {Src: s4, Dst: t5},
		{Src: s5, Dst: t4}, {Src: s5, Dst: t5},
	}
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	g := b.MustBuild()
	if g.NumEdges() != 13 {
		t.Fatalf("G1 should have 13 arcs, has %d", g.NumEdges())
	}
	return g
}

// figure1bPartition is the balanced edge-cut of Fig. 1(b):
// F1 owns {s1,s2,t1,t2,t3}, F2 owns {s3,s4,s5,t4,t5}.
func figure1bPartition(t testing.TB, g *graph.Graph) *Partition {
	t.Helper()
	assign := []int{0, 0, 1, 1, 1, 0, 0, 0, 1, 1}
	p, err := FromVertexAssignment(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// figure1cPartition is the CN-workload-balanced edge-cut of Fig. 1(c):
// F1 owns {s1(*),t2}, wait — per the figure F1 = {t2, plus its
// in-sources as dummies} with workload 6 on both sides. The paper's
// F1 holds 3 vertices / 6 edges and F2 holds 7 vertices / 11 edges;
// CN workload (Σ d(d-1)/2 over owned targets) is 6 on each side. That
// is achieved by F1 owning {t2} (cost 6) plus two sources, and F2
// owning the rest (t1,t3,t4,t5: cost 1+3+1+1 = 6).
func figure1cPartition(t testing.TB, g *graph.Graph) *Partition {
	t.Helper()
	assign := []int{0, 0, 1, 1, 1, 1, 0, 1, 1, 1}
	p, err := FromVertexAssignment(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cnWorkload computes Σ ½·d⁺(v)(d⁺(v)−1) over the targets owned by a
// fragment under an edge-cut — the CN computation load of Example 1.
func cnWorkload(g *graph.Graph, assign []int, frag int) int {
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		if assign[v] != frag {
			continue
		}
		d := g.InDegree(graph.VertexID(v))
		total += d * (d - 1) / 2
	}
	return total
}
