package partition

import (
	"fmt"

	"adp/internal/graph"
)

// EqualPlacement reports whether q places exactly what p places: same
// fragment count, identical per-fragment vertex and arc sets, and
// identical owner, master and weight maps. It returns nil on equality
// and an error naming the first divergence otherwise — the comparison
// the crash-recovery tests use to assert a reopened store is bitwise
// the state a clean prefix replay produces.
func (p *Partition) EqualPlacement(q *Partition) error {
	if p.NumFragments() != q.NumFragments() {
		return fmt.Errorf("partition: %d fragments vs %d", p.NumFragments(), q.NumFragments())
	}
	if len(p.master) != len(q.master) {
		return fmt.Errorf("partition: %d vertices vs %d", len(p.master), len(q.master))
	}
	for i := range p.frags {
		pf, qf := p.frags[i], q.frags[i]
		if pf.NumVertices() != qf.NumVertices() {
			return fmt.Errorf("partition: fragment %d holds %d vertices vs %d", i, pf.NumVertices(), qf.NumVertices())
		}
		if pf.NumArcs() != qf.NumArcs() {
			return fmt.Errorf("partition: fragment %d holds %d arcs vs %d", i, pf.NumArcs(), qf.NumArcs())
		}
		var diverged error
		pf.eachArcKey(func(k uint64) bool {
			if !qf.hasArcKey(k) {
				diverged = fmt.Errorf("partition: fragment %d arc (%d,%d) missing from other", i, uint32(k>>32), uint32(k))
				return false
			}
			return true
		})
		if diverged != nil {
			return diverged
		}
		pf.eachVertexID(func(v graph.VertexID) bool {
			if !qf.Has(v) {
				diverged = fmt.Errorf("partition: fragment %d vertex %d missing from other", i, v)
				return false
			}
			return true
		})
		if diverged != nil {
			return diverged
		}
	}
	for v := range p.master {
		if p.master[v] != q.master[v] {
			return fmt.Errorf("partition: master of vertex %d is %d vs %d", v, p.master[v], q.master[v])
		}
		if p.owner[v] != q.owner[v] {
			return fmt.Errorf("partition: owner of vertex %d is %d vs %d", v, p.owner[v], q.owner[v])
		}
		if p.VertexWeight(graph.VertexID(v)) != q.VertexWeight(graph.VertexID(v)) {
			return fmt.Errorf("partition: weight of vertex %d differs", v)
		}
	}
	return nil
}
