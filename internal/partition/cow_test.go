package partition

import (
	"testing"

	"adp/internal/graph"
)

// TestCloneCOWSharesAndIsolates: a COW clone shares every compiled
// fragment by pointer, yet mutations on either side never leak into
// the other — including the copies-slice COW branch that guards the
// shared per-vertex backing arrays.
func TestCloneCOWSharesAndIsolates(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	q := p.CloneCOW()

	if err := p.EqualPlacement(q); err != nil {
		t.Fatalf("fresh COW clone diverges: %v", err)
	}
	for i := range p.frags {
		pc, qc := p.frags[i].cf.Load(), q.frags[i].cf.Load()
		if pc == nil || pc != qc {
			t.Fatalf("fragment %d compiled form not shared after CloneCOW", i)
		}
	}
	sh, ow, _ := q.ShareStats(p)
	if sh != p.NumFragments() || ow != 0 {
		t.Fatalf("ShareStats after clean clone: shared=%d owned=%d, want %d/0", sh, ow, p.NumFragments())
	}

	// Snapshot q's copy sets (values, not slice headers) so an in-place
	// scribble through the shared backing arrays is caught by value.
	wantCopies := make([][]int32, g.NumVertices())
	for v := range wantCopies {
		wantCopies[v] = append([]int32(nil), q.Copies(graph.VertexID(v))...)
	}
	wantMaster := make([]int, g.NumVertices())
	for v := range wantMaster {
		wantMaster[v] = q.Master(graph.VertexID(v))
	}

	// Mutate p: grow a copy set (s5 gains a copy in F1 via a new arc)
	// and shrink one (delete s5→t4 and s5→t5 from F2, isolating s5
	// there). Both paths exercise the copiesShared allocation branch.
	p.AddArc(0, s5, t1)
	if !p.RemoveArc(1, s5, t4) || !p.RemoveArc(1, s5, t5) {
		t.Fatal("expected arcs s5→t4, s5→t5 in F2")
	}

	for v := 0; v < g.NumVertices(); v++ {
		got := q.Copies(graph.VertexID(v))
		want := wantCopies[v]
		if len(got) != len(want) {
			t.Fatalf("vertex %d: clone copy set changed: %v vs %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("vertex %d: clone copy set scribbled: %v vs %v", v, got, want)
			}
		}
		if q.Master(graph.VertexID(v)) != wantMaster[v] {
			t.Fatalf("vertex %d: clone master changed", v)
		}
	}
	pristine := figure1bPartition(t, g)
	if err := q.EqualPlacement(pristine); err != nil {
		t.Fatalf("clone changed while original was mutated: %v", err)
	}
	if err := p.Validate(); err == nil {
		// p no longer matches g, so Validate should flag it; if the
		// fixture ever changes such that it stays valid that is fine —
		// the isolation assertions above are the point.
		_ = err
	}

	// Recompile p: only the two touched fragments should be owned now.
	p.Compile()
	sh, ow, bytes := p.ShareStats(q)
	if ow != 2 || sh != p.NumFragments()-2 {
		t.Fatalf("ShareStats after touching both fragments: shared=%d owned=%d", sh, ow)
	}
	if bytes <= 0 {
		t.Fatalf("owned fragments should report positive approx bytes, got %d", bytes)
	}

	// Mutating the clone must not touch the original either.
	before := p.frags[0].NumArcs()
	q.AddArc(0, s3, t1)
	if p.frags[0].NumArcs() != before {
		t.Fatal("mutating the clone changed the original fragment")
	}
}

// TestCloneCOWChain: repeated COW clones (epoch after epoch) stay
// isolated — each epoch keeps the state at its cut while the live
// partition keeps moving.
func TestCloneCOWChain(t *testing.T) {
	g := figure1G1(t)
	live := figure1bPartition(t, g)
	oracle := figure1bPartition(t, g)

	type step struct {
		add  bool
		frag int
		u, v graph.VertexID
	}
	steps := []step{
		{true, 0, s5, t1},
		{false, 1, s5, t4},
		{true, 1, s1, t5},
		{false, 0, s1, t2},
		{true, 0, s4, t1},
	}
	var epochs []*Partition
	for _, st := range steps {
		if st.add {
			live.AddArc(st.frag, st.u, st.v)
			oracle.AddArc(st.frag, st.u, st.v)
		} else {
			if !live.RemoveArc(st.frag, st.u, st.v) || !oracle.RemoveArc(st.frag, st.u, st.v) {
				t.Fatalf("arc (%d,%d) missing from fragment %d", st.u, st.v, st.frag)
			}
		}
		epochs = append(epochs, live.CloneCOW())
	}
	// Replay the prefix onto fresh builds and compare each epoch.
	for n := range epochs {
		ref := figure1bPartition(t, g)
		for _, st := range steps[:n+1] {
			if st.add {
				ref.AddArc(st.frag, st.u, st.v)
			} else {
				ref.RemoveArc(st.frag, st.u, st.v)
			}
		}
		if err := epochs[n].EqualPlacement(ref); err != nil {
			t.Fatalf("epoch %d diverged from replayed prefix: %v", n, err)
		}
	}
	if err := live.EqualPlacement(oracle); err != nil {
		t.Fatalf("live partition diverged from oracle: %v", err)
	}
}
